// Thread-safety compile-fail fixture: a GUARDED_BY field touched
// without its mutex. Under `clang++ -Wthread-safety -Wthread-safety-beta
// -Werror=thread-safety-analysis` this file MUST fail to compile — the
// CI thread-safety job and lint.thread_safety prove that the repo's
// annotation macros actually expand to enforced attributes (a silent
// no-op expansion would pass everything).
//
// Build (fixture only, never part of the library):
//   clang++ -std=c++20 -I src -Wthread-safety -Wthread-safety-beta \
//       -Werror=thread-safety-analysis -fsyntax-only \
//       tools/lint/fixtures/thread_safety/bad_unguarded_field.cpp
#include "exec/sync.h"
#include "netbase/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  void Increment() {
    // error: writing variable 'value_' requires holding mutex 'mutex_'
    value_ += 1;
  }

  [[nodiscard]] int value() {
    // error: reading variable 'value_' requires holding mutex 'mutex_'
    return value_;
  }

 private:
  wormhole::exec::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture

int main() {
  fixture::Counter counter;
  counter.Increment();
  return counter.value();
}
