// Fixture: ordered containers (or pre-sorted copies) are the approved way
// to feed report output.
#include <cstdio>
#include <map>
#include <string>

struct Report {
  std::map<int, std::string> sorted_rows_;

  void Print() const {
    for (const auto& [id, text] : sorted_rows_) {
      std::printf("%d %s\n", id, text.c_str());
    }
  }
};
