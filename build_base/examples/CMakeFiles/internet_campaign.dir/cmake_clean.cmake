file(REMOVE_RECURSE
  "CMakeFiles/internet_campaign.dir/internet_campaign.cpp.o"
  "CMakeFiles/internet_campaign.dir/internet_campaign.cpp.o.d"
  "internet_campaign"
  "internet_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internet_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
