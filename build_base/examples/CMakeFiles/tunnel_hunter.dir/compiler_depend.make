# Empty compiler generated dependencies file for tunnel_hunter.
# This may be replaced when dependencies are built.
