# Empty dependencies file for wormhole.
# This may be replaced when dependencies are built.
