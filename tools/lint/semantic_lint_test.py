#!/usr/bin/env python3
"""Unit tests for semantic_lint.py against its fixture mini-trees.

Three trees under fixtures/semantic/, all linted with fixtures/
semantic/rules.json:

  bad/        one violation shape per rule — every rule must fire, at
              the expected file, and nowhere else
  good/       the clean counterpart of each shape — zero findings
  suppressed/ the bad shapes silenced with each suppression form
              (inline, next-line, file-level) — zero findings

Plus model-level tests pinning the parser facts the rules depend on
(field flags, call-graph edges, const-method detection).
"""

from __future__ import annotations

import json
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))

import semantic_lint  # noqa: E402

FIXTURES = HERE / "fixtures" / "semantic"
CONFIG = json.loads((FIXTURES / "rules.json").read_text())


def run_tree(tree: str) -> list[semantic_lint.Finding]:
    root = FIXTURES / tree
    files = semantic_lint.gather_files(root, [], None)
    model = semantic_lint.build_model(files)
    return semantic_lint.Analyzer(model, CONFIG).run()


def build_tree_model(tree: str) -> semantic_lint.Model:
    root = FIXTURES / tree
    files = semantic_lint.gather_files(root, [], None)
    return semantic_lint.build_model(files)


class BadTreeTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.findings = run_tree("bad")

    def by_rule(self, rule: str) -> list[semantic_lint.Finding]:
        return [f for f in self.findings if f.rule == rule]

    def test_every_rule_fires(self):
        self.assertEqual(
            {f.rule for f in self.findings}, set(semantic_lint.RULES)
        )

    def test_hot_alloc(self):
        found = self.by_rule("sem-hot-alloc")
        self.assertEqual(
            {f.path for f in found}, {"src/hot_alloc.cpp"}
        )
        messages = "\n".join(f.message for f in found)
        # One `new`, one owning-container local — and the call chain
        # from the entry point is named in the message.
        self.assertEqual(len(found), 2)
        self.assertIn("Engine::Send -> Engine::Step -> Engine::Classify",
                      messages)
        self.assertIn("'hops'", messages)

    def test_hot_alloc_exemption(self):
        # ColdRebuild allocates and is reachable from Send, but it is
        # listed in hot_alloc_exempt: the documented lazy cold path.
        for finding in self.by_rule("sem-hot-alloc"):
            self.assertNotIn("ColdRebuild", finding.message)

    def test_unordered_flow_crosses_files(self):
        found = self.by_rule("sem-unordered-flow")
        self.assertEqual(len(found), 1)
        # The violation is OUTSIDE the output dirs — only reachability
        # from tools/report.cpp makes it a finding.
        self.assertEqual(found[0].path, "src/core.cpp")
        self.assertIn("table_", found[0].message)
        self.assertIn("Report", found[0].message)

    def test_const_mutation(self):
        found = self.by_rule("sem-const-mutation")
        self.assertEqual(len(found), 1)
        self.assertEqual(found[0].path, "src/const_mutation.cpp")
        self.assertIn("'hits_'", found[0].message)
        self.assertIn("Cache::Get", found[0].message)

    def test_nondet_reach(self):
        found = self.by_rule("sem-nondet-reach")
        self.assertEqual(len(found), 2)
        self.assertEqual({f.path for f in found}, {"src/nondet.cpp"})
        kinds = {f.message.split(" source", 1)[0] for f in found}
        self.assertEqual(kinds, {"raw-RNG", "wall-clock"})

    def test_findings_are_line_anchored(self):
        for finding in self.findings:
            self.assertGreater(finding.line, 0, msg=str(finding))


class GoodTreeTest(unittest.TestCase):
    def test_clean(self):
        findings = run_tree("good")
        self.assertEqual(
            [], [str(f) for f in findings],
            "good fixtures must produce zero findings",
        )


class SuppressedTreeTest(unittest.TestCase):
    def test_all_suppression_forms_honored(self):
        findings = run_tree("suppressed")
        self.assertEqual(
            [], [str(f) for f in findings],
            "inline, next-line and file-level allows must all silence",
        )


class ModelTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.model = build_tree_model("good")

    def test_fields_and_flags(self):
        cache = self.model.classes["fix::AnnotatedCache"]
        self.assertTrue(cache.fields["hits_"].is_mutable)
        self.assertTrue(cache.fields["hits_"].guarded)
        atomic_cache = self.model.classes["fix::AtomicCache"]
        self.assertTrue(atomic_cache.fields["hits_"].atomic)

    def test_brace_initialized_field_is_recorded(self):
        engine = self.model.classes["fix::Engine"]
        self.assertIn("scratch_", engine.fields)

    def test_const_method_detected(self):
        defs = self.model.functions["fix::LockedCache::Get"]
        self.assertTrue(all(d.is_const for d in defs))

    def test_receiver_resolved_through_param_type(self):
        self.assertIn(
            "fix::Core::DumpTable",
            self.model.calls.get("fix::ReportHelper", set()),
        )

    def test_receiver_resolved_through_field_type(self):
        self.assertIn(
            "fix::SeededRng::Next",
            self.model.calls.get("fix::Probe::Jitter", set()),
        )

    def test_out_of_line_methods_attach_to_class(self):
        self.assertIn(
            "fix::Engine::Step",
            self.model.calls.get("fix::Engine::Send", set()),
        )


class RealTreeTest(unittest.TestCase):
    """The tool must understand the real tree's load-bearing shapes."""

    @classmethod
    def setUpClass(cls):
        root = HERE.parent.parent
        files = semantic_lint.gather_files(
            root, ["src"], root / "build" / "compile_commands.json"
        )
        cls.model = semantic_lint.build_model(files)

    def test_engine_send_edges(self):
        calls = self.model.calls.get("wormhole::sim::Engine::Send", set())
        self.assertIn("wormhole::sim::Engine::ProcessAt", calls)
        self.assertIn("wormhole::sim::Engine::CommitStats", calls)

    def test_fib_seal_is_hot_reachable_but_exempt(self):
        lookup = "wormhole::routing::Fib::Lookup"
        self.assertIn(
            "wormhole::routing::Fib::Seal",
            self.model.calls.get(lookup, set()),
        )
        config = semantic_lint.DEFAULT_CONFIG
        self.assertTrue(
            semantic_lint.matches_any(
                "wormhole::routing::Fib::Seal",
                config["hot_alloc_exempt"],
            )
        )

    def test_fib_mutable_query_side_is_modeled(self):
        fib = self.model.classes["wormhole::routing::Fib"]
        self.assertTrue(fib.fields["slots_"].is_mutable)
        self.assertTrue(fib.fields["sealed_"].atomic)

    def test_stat_shard_is_an_atomic_aggregate(self):
        shard = self.model.classes["wormhole::sim::Engine::StatShard"]
        self.assertTrue(shard.all_fields_atomic())

    def test_spf_guarded_fields(self):
        spf = self.model.classes["wormhole::routing::SpfEngine"]
        self.assertTrue(spf.fields["seen_version_"].guarded)
        self.assertTrue(spf.fields["serial_scratch_"].guarded)


if __name__ == "__main__":
    unittest.main(verbosity=2)
