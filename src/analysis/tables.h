// Per-AS aggregation of campaign results into the paper's Table 4
// (discovery) and Table 5 (deployment) rows.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.h"

namespace wormhole::analysis {

/// Table 4: invisible MPLS tunnel discovery per AS of interest.
struct DiscoveryRow {
  topo::AsNumber asn = 0;
  std::string name;
  std::size_t hdns_itdk = 0;       ///< HDN nodes of this AS in the dataset
  std::size_t hdns_candidate = 0;  ///< HDNs that showed up as I or E
  std::size_t ie_pairs = 0;        ///< candidate Ingress–Egress pairs
  double pct_revealed = 0.0;
  std::size_t raw_lsps = 0;   ///< unique revealed LSPs (IP sequences)
  std::size_t lsr_ips = 0;    ///< unique revealed LSR addresses
  double pct_ips_lers = 0.0;  ///< revealed IPs also acting as I/E somewhere
  double density_before = 0.0;
  double density_after = 0.0;
};

std::vector<DiscoveryRow> MakeDiscoveryTable(
    const campaign::CampaignResult& result,
    const topo::ItdkDataset& corrected, const topo::Topology& topology,
    std::size_t hdn_threshold);

/// Table 5: MPLS deployment per AS.
struct DeploymentRow {
  topo::AsNumber asn = 0;
  // TTL signature mix over this AS's responding addresses (percent).
  double pct_cisco = 0.0;      ///< <255,255>
  double pct_junos = 0.0;      ///< <255,64>
  double pct_6464 = 0.0;       ///< <64,64>
  double pct_other = 0.0;      ///< anything else
  // Hidden-hop discovery mix over this AS's revealed tunnels (percent).
  double pct_dpr = 0.0;
  double pct_brpr = 0.0;
  double pct_either = 0.0;
  double pct_hybrid = 0.0;
  // Median hidden hop estimates.
  std::optional<int> frpla_median;
  std::optional<int> rtla_median;
  std::optional<int> ftl_median;  ///< revealed forward tunnel LSR count
};

std::vector<DeploymentRow> MakeDeploymentTable(
    const campaign::CampaignResult& result, const topo::Topology& topology);

}  // namespace wormhole::analysis
