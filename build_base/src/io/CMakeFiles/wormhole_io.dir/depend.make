# Empty dependencies file for wormhole_io.
# This may be replaced when dependencies are built.
