
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/bgp.cpp" "src/routing/CMakeFiles/wormhole_routing.dir/bgp.cpp.o" "gcc" "src/routing/CMakeFiles/wormhole_routing.dir/bgp.cpp.o.d"
  "/root/repo/src/routing/fib.cpp" "src/routing/CMakeFiles/wormhole_routing.dir/fib.cpp.o" "gcc" "src/routing/CMakeFiles/wormhole_routing.dir/fib.cpp.o.d"
  "/root/repo/src/routing/igp.cpp" "src/routing/CMakeFiles/wormhole_routing.dir/igp.cpp.o" "gcc" "src/routing/CMakeFiles/wormhole_routing.dir/igp.cpp.o.d"
  "/root/repo/src/routing/spf_engine.cpp" "src/routing/CMakeFiles/wormhole_routing.dir/spf_engine.cpp.o" "gcc" "src/routing/CMakeFiles/wormhole_routing.dir/spf_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_base/src/topo/CMakeFiles/wormhole_topo.dir/DependInfo.cmake"
  "/root/repo/build_base/src/exec/CMakeFiles/wormhole_exec.dir/DependInfo.cmake"
  "/root/repo/build_base/src/netbase/CMakeFiles/wormhole_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
