# Empty compiler generated dependencies file for internet_campaign.
# This may be replaced when dependencies are built.
