file(REMOVE_RECURSE
  "CMakeFiles/test_convergence_parity.dir/test_convergence_parity.cpp.o"
  "CMakeFiles/test_convergence_parity.dir/test_convergence_parity.cpp.o.d"
  "test_convergence_parity"
  "test_convergence_parity.pdb"
  "test_convergence_parity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_convergence_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
