// Convenience facade: computes the full converged control plane (IGP, BGP,
// LDP) for a topology + MPLS configuration and exposes a ready Engine.
#pragma once

#include <memory>
#include <vector>

#include "mpls/config.h"
#include "mpls/ldp.h"
#include "mpls/segment_routing.h"
#include "routing/bgp.h"
#include "routing/fib.h"
#include "sim/engine.h"
#include "topo/topology.h"

namespace wormhole::sim {

class Network {
 public:
  /// `topology`, `configs` and `te` (if given) must outlive the network.
  Network(const topo::Topology& topology, const mpls::MplsConfigMap& configs,
          routing::BgpPolicy bgp_policy = {}, EngineOptions options = {},
          const mpls::TeDatabase* te = nullptr,
          const mpls::SrDatabase* sr = nullptr);

  [[nodiscard]] Engine& engine() { return *engine_; }
  [[nodiscard]] const std::vector<routing::Fib>& fibs() const { return fibs_; }
  [[nodiscard]] const mpls::LdpTables& ldp() const { return ldp_; }
  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }

 private:
  const topo::Topology* topology_;
  std::vector<routing::Fib> fibs_;
  mpls::LdpTables ldp_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace wormhole::sim
