// The convergence delta: what one Network::OnLinkStateChange actually
// changed, exported so the measurement plane can invalidate cached traces
// instead of re-running whole campaigns (docs/incremental.md).
//
// The delta is deliberately conservative and coarse: it names the touched
// AS, the SPF trees that were dropped (sources + the union of their
// router-id windows), the LDP label range the domain rebuild may have
// re-allocated, and the BGP aggregate the AS announces. A consumer may
// over-approximate dirtiness from it freely; it must never under-
// approximate (the exhaustive per-link flap test in
// tests/test_convergence_parity.cpp pins that).
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/label.h"
#include "topo/topology.h"

namespace wormhole::routing {

struct ConvergenceDelta {
  /// How far the reconvergence reached.
  ///  * kNone: nothing changed (no reconvergence ran).
  ///  * kIntraAs: one AS's SPF trees / routes / LDP domain were rebuilt;
  ///    the AS-level BGP state is untouched and still exact.
  ///  * kGlobal: the AS graph moved — every FIB was rebuilt and any
  ///    inter-AS path may have changed. Consumers should treat every
  ///    cached result as dirty.
  enum class Scope : std::uint8_t { kNone, kIntraAs, kGlobal };

  /// The engine's convergence epoch AFTER this reconvergence (see
  /// sim::Engine::convergence_epoch()). Epochs advance by exactly one
  /// per reconvergence, so `epoch - 1` names the state a still-clean
  /// cache entry was recorded under.
  std::uint64_t epoch = 0;

  Scope scope = Scope::kNone;

  /// kIntraAs only: the AS whose internal link flipped.
  topo::AsNumber touched_as = 0;

  /// The SPF sources whose trees were dropped (the touched AS's members).
  std::vector<topo::RouterId> stale_spf_sources;
  /// Union of the dropped trees' router-id windows; empty when lo > hi
  /// (no dropped source had a primed tree). Routers outside the window
  /// were unreachable from every dropped source, so a hop on a router
  /// outside it cannot have been routed by a dropped tree.
  topo::RouterId spf_window_lo = 1;
  topo::RouterId spf_window_hi = 0;

  /// kIntraAs only: the label range the AS's LDP domain may have
  /// re-allocated, inclusive; empty when lo > hi (AS not MPLS-enabled).
  /// Covers max(before, after) of the rebuild — a shrinking domain still
  /// invalidates the labels it used to bind.
  std::uint32_t label_lo = netbase::kFirstUnreservedLabel;
  std::uint32_t label_hi = 0;

  /// kIntraAs only: the prefix the touched AS announces to the rest of
  /// the world (its aggregate in hierarchical BGP, its own block
  /// otherwise). Any address inside it may now route differently.
  netbase::Prefix touched_aggregate{};

  [[nodiscard]] bool has_spf_window() const {
    return spf_window_lo <= spf_window_hi;
  }
  [[nodiscard]] bool has_label_range() const { return label_lo <= label_hi; }
};

}  // namespace wormhole::routing
