file(REMOVE_RECURSE
  "../bench/table03_crossval"
  "../bench/table03_crossval.pdb"
  "CMakeFiles/table03_crossval.dir/table03_crossval.cpp.o"
  "CMakeFiles/table03_crossval.dir/table03_crossval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_crossval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
