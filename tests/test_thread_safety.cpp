// Runtime pins for the thread-safety annotation layer (exec/sync.h) and
// the locking contracts it cannot express statically.
//
// The annotations themselves are verified at compile time by clang's
// -Wthread-safety (the CI thread-safety job and lint.thread_safety);
// these tests pin the RUNTIME semantics the annotated primitives promise
// — and the two dynamic disciplines the analysis cannot name:
//
//   * Fib's lazy seal stripe: the seal mutex is picked per-object from a
//     dynamic StripedMutex, so `slots_` cannot be GUARDED_BY a nameable
//     capability (fib.cpp documents this); concurrent first-Lookup
//     racing the seal is pinned here instead.
//   * Fib's moved-from invalidation: element-wise moves gut the source
//     map's nodes in place, so a moved-from FIB must drop its sealed
//     index — the annotation layer has nothing to say about moves.
//
// Run under the TSan CI job as well: the stress tests double as data-race
// probes.
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>  // lint:allow-file(raw-threading): exercises exec primitives
#include <utility>
#include <vector>

#include "exec/sync.h"
#include "netbase/ipv4.h"
#include "netbase/thread_annotations.h"
#include "routing/fib.h"

namespace wormhole {
namespace {

using netbase::Ipv4Address;
using netbase::Prefix;

// A counter whose annotations mirror the repo convention: the field is
// GUARDED_BY, the private helper REQUIRES, the public surface EXCLUDES.
// Under clang TSA this class is the compile-time regression: deleting
// any one annotation (or bypassing the lock) breaks the CI
// thread-safety build — see tools/lint/fixtures/thread_safety/.
class AnnotatedCounter {
 public:
  void Add(int amount) EXCLUDES(mutex_) {
    exec::MutexLock lock(mutex_);
    AddLocked(amount);
  }

  [[nodiscard]] int value() EXCLUDES(mutex_) {
    exec::MutexLock lock(mutex_);
    return value_;
  }

 private:
  void AddLocked(int amount) REQUIRES(mutex_) { value_ += amount; }

  exec::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

TEST(ThreadSafety, AnnotatedCounterIsExactUnderContention) {
  AnnotatedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
}

TEST(ThreadSafety, CondVarHandsOffUnderAnnotatedMutex) {
  exec::Mutex mutex;
  exec::CondVar cv;
  // A local cannot be GUARDED_BY (the attribute is for members and
  // globals); the discipline here is by construction: every access is
  // under `mutex`.
  int stage = 0;

  std::thread consumer([&] {
    exec::MutexLock lock(mutex);
    while (stage != 1) cv.Wait(mutex);
    stage = 2;
    cv.NotifyAll();
  });

  {
    exec::MutexLock lock(mutex);
    stage = 1;
    cv.NotifyAll();
    while (stage != 2) cv.Wait(mutex);
  }
  consumer.join();
  exec::MutexLock lock(mutex);
  EXPECT_EQ(stage, 2);
}

TEST(ThreadSafety, RoleLockIsAZeroCostScope) {
  // The Role capability has no runtime state: acquiring it is free and
  // purely a compile-time phase token. This pins that it stays
  // constructible/scopable (the static side lives in the CI clang job).
  exec::Role role;
  {
    exec::RoleLock scope(role);
    exec::RoleLock nested_is_not_a_deadlock(role);
  }
  {
    exec::RoleLock again(role);
  }
  SUCCEED();
}

TEST(ThreadSafety, StripedMutexMapsHashesToStableStripes) {
  exec::StripedMutex striped(8);
  exec::Mutex& a = striped.For(13);
  exec::Mutex& b = striped.For(13 + 8);
  exec::Mutex& c = striped.For(14);
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  exec::MutexLock lock(a);  // and the stripe is lockable via the RAII type
}

Prefix MakePrefix(std::uint32_t address, int length) {
  return Prefix{Ipv4Address{address}, length};
}

routing::Fib BuildFib(std::size_t routes) {
  routing::Fib fib;
  for (std::size_t i = 0; i < routes; ++i) {
    routing::FibEntry entry;
    entry.prefix = MakePrefix(0x0A000000u + (static_cast<std::uint32_t>(i)
                                             << 8),
                              24);
    entry.source = routing::RouteSource::kIgp;
    entry.metric = static_cast<int>(i % 7);
    entry.next_hops.push_back(
        routing::NextHop{static_cast<topo::LinkId>(i % 3),
                         static_cast<topo::RouterId>(i % 5)});
    fib.AddRoute(entry);
  }
  return fib;
}

TEST(ThreadSafety, ConcurrentFirstLookupSealsOnce) {
  // The lazy-seal discipline fib.cpp documents: many threads hitting an
  // unsealed FIB race to Seal() under the per-object stripe; every
  // thread must observe a fully built index (no torn slots_, no lost
  // lengths). TSan runs this too.
  constexpr int kRounds = 16;
  constexpr int kThreads = 8;
  for (int round = 0; round < kRounds; ++round) {
    routing::Fib fib = BuildFib(64);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    std::vector<int> hits(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&fib, &hits, t] {
        for (std::uint32_t i = 0; i < 64; ++i) {
          const Ipv4Address dst{0x0A000001u + (i << 8)};
          if (fib.Lookup(dst) != nullptr) ++hits[t];
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (int t = 0; t < kThreads; ++t) EXPECT_EQ(hits[t], 64);
  }
}

TEST(ThreadSafety, MovedFromFibDropsItsSealedIndex) {
  // Element-wise moves gut the source map's nodes in place; a moved-from
  // FIB that kept its sealed index would serve pointers to gutted
  // entries. The move must invalidate the source (and the target
  // re-seals lazily over its own nodes).
  routing::Fib source = BuildFib(32);
  const Ipv4Address probe{0x0A000001u};
  ASSERT_NE(source.Lookup(probe), nullptr);  // seals `source`

  routing::Fib target(std::move(source));
  const routing::FibEntry* moved = target.Lookup(probe);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->source, routing::RouteSource::kIgp);
  EXPECT_EQ(moved->next_hops.size(), 1u);

  // The moved-from FIB is valid-but-unspecified as a container, but its
  // sealed index must be gone: a fresh build starts from scratch and
  // lookups reflect only the new routes.
  source = routing::Fib{};
  routing::FibEntry fresh;
  fresh.prefix = MakePrefix(0xC0A80000u, 16);
  fresh.source = routing::RouteSource::kBgp;
  source.AddRoute(fresh);
  const routing::FibEntry* entry =
      source.Lookup(Ipv4Address{0xC0A80101u});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->source, routing::RouteSource::kBgp);
  EXPECT_EQ(source.Lookup(probe), nullptr);

  // Move-assignment invalidates both sides the same way: the target
  // serves exactly the moved table, re-sealed over its own nodes.
  routing::Fib assigned = BuildFib(8);
  ASSERT_NE(assigned.Lookup(probe), nullptr);
  routing::Fib other = BuildFib(4);
  ASSERT_NE(other.Lookup(probe), nullptr);
  assigned = std::move(other);
  EXPECT_EQ(assigned.size(), 4u);
  const routing::FibEntry* after = assigned.Lookup(probe);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->next_hops.size(), 1u);
}

}  // namespace
}  // namespace wormhole
