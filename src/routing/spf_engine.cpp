#include "routing/spf_engine.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <utility>

#include "exec/thread_pool.h"
#include "netbase/contracts.h"

namespace wormhole::routing {

SpfEngine::SpfEngine(const topo::Topology& topology)
    : topology_(&topology) {
  exec::RoleLock build(build_role_);
  seen_version_ = topology.version();
  RebuildAdjacency();
  trees_.resize(topology.router_count());
}

void SpfEngine::SyncVersion() {
  if (seen_version_ == topology_->version()) return;
  seen_version_ = topology_->version();
  RebuildAdjacency();
  trees_.clear();
  trees_.resize(topology_->router_count());
}

void SpfEngine::RebuildAdjacency() {
  const std::size_t n = topology_->router_count();
  adjacency_begin_.assign(n + 1, 0);
  arcs_.clear();
  for (RouterId u = 0; u < n; ++u) {
    adjacency_begin_[u] = static_cast<std::uint32_t>(arcs_.size());
    for (const topo::InterfaceId iid : topology_->router(u).interfaces) {
      const topo::Interface& iface = topology_->interface(iid);
      if (iface.link == topo::kNoLink) continue;  // host stub
      const topo::Link& link = topology_->link(iface.link);
      if (!link.up || !topology_->IsInternalLink(iface.link)) continue;
      arcs_.push_back(
          Arc{topology_->Neighbor(iface.link, u), iface.link,
              link.igp_metric});
    }
  }
  adjacency_begin_[n] = static_cast<std::uint32_t>(arcs_.size());
}

const SpfTree& SpfEngine::TreeOf(RouterId source) {
  exec::RoleLock build(build_role_);
  SyncVersion();
  auto& slot = trees_.at(source);
  if (slot == nullptr) {
    auto tree = std::make_unique<SpfTree>();
    ComputeInto(source, *tree, serial_scratch_);
    slot = std::move(tree);
  }
  return *slot;
}

const SpfTree& SpfEngine::CachedTree(RouterId source) const {
  const auto& slot = trees_.at(source);
  WORMHOLE_ASSERT(slot != nullptr,
                  "CachedTree on a source that was never primed");
  return *slot;
}

void SpfEngine::Prime(const std::vector<RouterId>& sources,
                      exec::ThreadPool* pool) {
  exec::RoleLock build(build_role_);
  SyncVersion();
  std::vector<RouterId> missing;
  missing.reserve(sources.size());
  for (const RouterId source : sources) {
    if (trees_.at(source) == nullptr) missing.push_back(source);
  }
  if (missing.empty()) return;

  const std::size_t workers = pool == nullptr ? 1 : pool->size();
  const std::size_t shards = std::min(missing.size(), workers);
  if (shards <= 1) {
    for (const RouterId source : missing) {
      auto tree = std::make_unique<SpfTree>();
      ComputeInto(source, *tree, serial_scratch_);
      trees_[source] = std::move(tree);
    }
    return;
  }

  // Fixed contiguous shards over the missing list: every shard's work set
  // is decided before any thread runs, each tree slot is written by
  // exactly one shard, and each tree's content is schedule-independent —
  // so the primed cache is bit-identical at any worker count.
  exec::ParallelFor(*pool, shards, [&](std::size_t shard) {
    Scratch scratch;
    const std::size_t begin = shard * missing.size() / shards;
    const std::size_t end = (shard + 1) * missing.size() / shards;
    for (std::size_t i = begin; i < end; ++i) {
      auto tree = std::make_unique<SpfTree>();
      ComputeInto(missing[i], *tree, scratch);
      trees_[missing[i]] = std::move(tree);
    }
  });
}

namespace {

/// Collects the invalidation summary for `sources` from the trees as they
/// stand, BEFORE they are reset: the window union must describe the trees
/// being dropped, not their replacements.
SpfInvalidation SummarizeDrop(
    const std::vector<std::unique_ptr<SpfTree>>& trees,
    const std::vector<RouterId>& sources) {
  SpfInvalidation invalidation;
  invalidation.sources = sources;
  for (const RouterId source : sources) {
    if (source >= trees.size()) continue;  // tree table not grown yet
    const SpfTree* tree = trees[source].get();
    if (tree == nullptr || tree->distance.empty()) continue;
    const RouterId lo = tree->base;
    const RouterId hi =
        tree->base + static_cast<RouterId>(tree->distance.size()) - 1;
    if (!invalidation.has_window()) {
      invalidation.window_lo = lo;
      invalidation.window_hi = hi;
    } else {
      invalidation.window_lo = std::min(invalidation.window_lo, lo);
      invalidation.window_hi = std::max(invalidation.window_hi, hi);
    }
  }
  return invalidation;
}

}  // namespace

SpfInvalidation SpfEngine::ApplyTopologyChange(
    const std::vector<RouterId>& stale_sources) {
  exec::RoleLock build(build_role_);
  SpfInvalidation invalidation = SummarizeDrop(trees_, stale_sources);
  seen_version_ = topology_->version();
  RebuildAdjacency();
  trees_.resize(topology_->router_count());
  for (const RouterId source : stale_sources) trees_.at(source).reset();
  return invalidation;
}

SpfInvalidation SpfEngine::InvalidateTrees(
    const std::vector<RouterId>& sources) {
  exec::RoleLock build(build_role_);
  SpfInvalidation invalidation = SummarizeDrop(trees_, sources);
  for (const RouterId source : sources) trees_.at(source).reset();
  return invalidation;
}

void SpfEngine::ComputeInto(RouterId source, SpfTree& tree,
                            Scratch& s) const {
  computations_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = topology_->router_count();
  if (s.distance.size() < n) {
    s.distance.assign(n, kUnreachable);
    s.hops.assign(n, kUnreachable);
  }

  // The source's arcs, ranked by (link, neighbor): rank order is NextHop
  // order, so expanding a bitmask lowest-bit-first emits each first-hop
  // set already sorted and deduplicated — the exact sequence the
  // historical per-relaxation sort+unique produced.
  const std::size_t row = adjacency_begin_[source];
  const std::size_t degree = adjacency_begin_[source + 1] - row;
  s.order.resize(degree);
  for (std::uint32_t i = 0; i < degree; ++i) s.order[i] = i;
  std::sort(s.order.begin(), s.order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const Arc& x = arcs_[row + a];
              const Arc& y = arcs_[row + b];
              return std::make_pair(x.link, x.to) <
                     std::make_pair(y.link, y.to);
            });
  s.arc_rank.resize(degree);
  s.source_hops.resize(degree);
  for (std::uint32_t rank = 0; rank < degree; ++rank) {
    const std::uint32_t position = s.order[rank];
    s.arc_rank[position] = rank;
    const Arc& arc = arcs_[row + position];
    s.source_hops[rank] = NextHop{arc.link, arc.to};
  }

  const std::size_t words = std::max<std::size_t>(1, (degree + 63) / 64);
  s.words = words;
  if (s.mask.size() < n * words) s.mask.resize(n * words);
  // Stale mask contents are harmless: the first write to any touched
  // router's mask is a full overwrite (fill or copy), never a merge.

  s.distance[source] = 0;
  s.hops[source] = 0;
  s.touched.push_back(source);
  s.heap.emplace_back(0, source);

  while (!s.heap.empty()) {
    std::pop_heap(s.heap.begin(), s.heap.end(), std::greater<>());
    const auto [dist, u] = s.heap.back();
    s.heap.pop_back();
    // Strict-improvement pushes mean at most one queued entry carries a
    // node's final distance; anything else here is stale.
    if (dist != s.distance[u]) continue;

    const int u_hops = s.hops[u];
    const std::uint64_t* u_mask = &s.mask[std::size_t{u} * words];
    const std::size_t u_row = adjacency_begin_[u];
    const std::size_t u_end = adjacency_begin_[u + 1];
    for (std::size_t a = u_row; a < u_end; ++a) {
      const Arc& arc = arcs_[a];
      const RouterId v = arc.to;
      const int candidate = dist + arc.metric;
      std::uint64_t* v_mask = &s.mask[std::size_t{v} * words];
      if (candidate < s.distance[v]) {
        if (s.distance[v] == kUnreachable) s.touched.push_back(v);
        s.distance[v] = candidate;
        s.hops[v] = u_hops + 1;
        if (u == source) {
          std::fill_n(v_mask, words, 0);
          const std::uint32_t rank = s.arc_rank[a - u_row];
          v_mask[rank >> 6] = std::uint64_t{1} << (rank & 63);
        } else {
          std::copy_n(u_mask, words, v_mask);
        }
        s.heap.emplace_back(candidate, v);
        std::push_heap(s.heap.begin(), s.heap.end(), std::greater<>());
      } else if (candidate == s.distance[v]) {
        // Equal-cost path: union the first-hop sets — one OR instead of
        // the old insert + sort + unique per relaxation.
        if (u == source) {
          const std::uint32_t rank = s.arc_rank[a - u_row];
          v_mask[rank >> 6] |= std::uint64_t{1} << (rank & 63);
        } else {
          for (std::size_t w = 0; w < words; ++w) v_mask[w] |= u_mask[w];
        }
        s.hops[v] = std::min(s.hops[v], u_hops + 1);
      }
    }
  }

  // Window the output over the id-range actually reached (the source's
  // AS). The touched set is schedule-independent, so base/span — and with
  // them the tree bytes — stay deterministic.
  RouterId lo = source, hi = source;
  for (const RouterId r : s.touched) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  const std::size_t span = std::size_t{hi} - lo + 1;

  tree.source = source;
  tree.base = lo;
  tree.distance.assign(span, kUnreachable);
  tree.hop_count.assign(span, kUnreachable);
  tree.first_hop_begin.assign(span + 1, 0);

  std::uint32_t total = 0;
  for (RouterId r = lo; r <= hi; ++r) {
    tree.first_hop_begin[r - lo] = total;
    const int d = s.distance[r];
    if (d == kUnreachable) continue;
    tree.distance[r - lo] = d;
    tree.hop_count[r - lo] = s.hops[r];
    if (r == source) continue;  // empty first-hop set; mask never written
    const std::uint64_t* r_mask = &s.mask[std::size_t{r} * words];
    for (std::size_t w = 0; w < words; ++w) {
      total += static_cast<std::uint32_t>(std::popcount(r_mask[w]));
    }
  }
  tree.first_hop_begin[span] = total;

  tree.first_hop_pool.clear();
  tree.first_hop_pool.reserve(total);
  for (RouterId r = lo; r <= hi; ++r) {
    if (s.distance[r] == kUnreachable || r == source) continue;
    const std::uint64_t* r_mask = &s.mask[std::size_t{r} * words];
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = r_mask[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        tree.first_hop_pool.push_back(s.source_hops[(w << 6) | bit]);
      }
    }
  }
  WORMHOLE_DCHECK(tree.first_hop_pool.size() == total,
                  "first-hop pool size must match the popcount prepass");

  for (const RouterId r : s.touched) {
    s.distance[r] = kUnreachable;
    s.hops[r] = kUnreachable;
  }
  s.touched.clear();
  s.heap.clear();
}

}  // namespace wormhole::routing
