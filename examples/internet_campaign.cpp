// internet_campaign — the paper's Sec. 4 pipeline end to end on a synthetic
// Internet: plain discovery, HDN detection, targeted probing, revelation,
// fingerprinting, per-AS reporting, and persisting the raw traces.
//
// Usage: internet_campaign [seed] [tracefile.out]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "analysis/correct.h"
#include "analysis/report.h"
#include "analysis/tables.h"
#include "campaign/campaign.h"
#include "gen/internet.h"
#include "io/tracefile.h"

using namespace wormhole;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 29;

  std::cout << "building synthetic Internet (seed " << seed << ")...\n";
  gen::SyntheticInternet net({.seed = seed});
  std::cout << "  " << net.profiles().size() << " ASes, "
            << net.topology().router_count() << " routers, "
            << net.topology().link_count() << " links, "
            << net.vantage_points().size() << " vantage points\n";
  int invisible = 0;
  for (const auto& [asn, profile] : net.profiles()) {
    if (profile.invisible_tunnels()) ++invisible;
  }
  std::cout << "  ground truth: " << invisible
            << " ASes hide their MPLS tunnels (no-ttl-propagate)\n\n";

  campaign::Campaign campaign(net.engine(), net.vantage_points(), {});
  std::cout << "running campaign (discovery + HDN-guided probing)...\n";
  const auto result = campaign.Run(net.AllLoopbacks());
  std::cout << "  " << result.probes_sent << " probes, "
            << result.traces.size() << " targeted traces, "
            << result.targets.hdns.size() << " HDNs, "
            << result.revelations.size() << " candidate tunnels, "
            << result.revealed_count() << " revealed\n\n";

  const auto corrected = analysis::CorrectedCopy(
      result.inferred, result.revelations,
      campaign::TruthResolver(net.topology()), net.topology());

  std::cout << "--- discovery per AS (Table 4 style) ---\n";
  const auto discovery =
      analysis::MakeDiscoveryTable(result, corrected, net.topology(), 8);
  analysis::TextTable table(
      {"AS", "I-E pairs", "%Rev.", "LSR IPs", "density", "->", "truth"});
  for (const auto& row : discovery) {
    const auto& profile = net.profile(row.asn);
    table.AddRow({"AS" + std::to_string(row.asn),
                  analysis::TextTable::Num(row.ie_pairs),
                  analysis::TextTable::Pct(row.pct_revealed, 0),
                  analysis::TextTable::Num(row.lsr_ips),
                  analysis::TextTable::Real(row.density_before, 2),
                  analysis::TextTable::Real(row.density_after, 2),
                  profile.invisible_tunnels() ? "invisible" : "visible"});
  }
  std::cout << table.ToString() << "\n";

  std::cout << "--- graph correction ---\n";
  const auto before = result.inferred.DegreeDistribution();
  const auto after = corrected.DegreeDistribution();
  std::cout << "max node degree: " << before.Max() << " -> " << after.Max()
            << "\nmean path length: "
            << analysis::TextTable::Real(result.path_length_invisible.Mean(),
                                         2)
            << " -> "
            << analysis::TextTable::Real(result.path_length_visible.Mean(),
                                         2)
            << " (over tunnel-crossing traces)\n";

  if (argc > 2) {
    std::ofstream out(argv[2]);
    io::WriteTraces(out, result.traces);
    std::cout << "\nwrote " << result.traces.size() << " traces to "
              << argv[2] << "\n";
  }
  return 0;
}
