// sem-nondet-reach fixture: the raw RNG and the wall clock are buried
// in helpers, but both are reachable from the deterministic entry
// point, so a replayed campaign would diverge.
#include <chrono>
#include <cstdlib>

namespace fix {

class Probe {
 public:
  int Send(int packet) { return Jitter(packet) + Stamp(packet); }

 private:
  int Jitter(int value) {
    return value + rand() % 3;  // BAD: raw RNG on a replayable path
  }
  int Stamp(int value) {
    // BAD: wall clock on a replayable path
    auto now = std::chrono::steady_clock::now();
    return value + static_cast<int>(now.time_since_epoch().count() % 2);
  }
};

}  // namespace fix
