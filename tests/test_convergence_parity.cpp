// Convergence parity: the phased, thread-pooled control-plane build and the
// incremental reconvergence path must both be *byte-identical* to the serial
// full rebuild — same sealed FIB contents, same LDP label tables — in the
// style of test_golden_campaign. Also pins the SpfEngine's "exactly one SPF
// per (AS, router) per convergence" contract via the counting hook.
//
// These tests run in the TSan CI matrix: the jobs>1 builds exercise the
// parallel Prime / install / seal phases under the race detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "gen/internet.h"
#include "mpls/ldp.h"
#include "routing/fib.h"
#include "routing/igp.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace wormhole {
namespace {

gen::InternetOptions SmallWorld() {
  gen::InternetOptions options;
  options.seed = 17;
  options.tier1_count = 2;
  options.transit_count = 4;
  options.stub_count = 10;
  options.vp_count = 3;
  return options;
}

/// Serializes every sealed FIB entry and every LDP binding of `net` into
/// one deterministic blob. Two Networks with equal dumps forward packets
/// identically.
std::string DumpControlPlane(sim::Network& net) {
  const topo::Topology& topology = net.topology();
  std::ostringstream out;
  for (std::size_t r = 0; r < topology.router_count(); ++r) {
    out << "R " << r << "\n";
    for (const routing::FibEntry* entry : net.fibs()[r].Entries()) {
      out << "F " << entry->prefix.ToString() << " s"
          << static_cast<int>(entry->source) << " m" << entry->metric
          << " nh[";
      for (const routing::NextHop& hop : entry->next_hops) {
        out << hop.link << ":" << hop.neighbor << ",";
      }
      out << "] bgp " << entry->bgp_next_hop.ToString() << "\n";
    }
  }
  for (const topo::AsNumber asn : topology.AsNumbers()) {
    const mpls::LdpDomain* domain = net.ldp().DomainOf(asn);
    if (domain == nullptr) continue;
    out << "L " << asn << "\n";
    for (const topo::RouterId rid : topology.as(asn).routers) {
      std::vector<netbase::Prefix> fecs = domain->FecsOf(rid);
      std::sort(fecs.begin(), fecs.end());
      for (const netbase::Prefix& fec : fecs) {
        const auto binding = domain->BindingOf(rid, fec);
        EXPECT_TRUE(binding.has_value()) << "advertised FEC without binding";
        if (!binding.has_value()) continue;
        out << "B " << rid << " " << fec.ToString() << " k"
            << static_cast<int>(binding->kind) << " l" << binding->label
            << "\n";
      }
    }
  }
  return out.str();
}

void ExpectSameDump(const std::string& got, const std::string& want) {
  ASSERT_EQ(got.size(), want.size());
  const auto mismatch =
      std::mismatch(got.begin(), got.end(), want.begin()).first;
  EXPECT_TRUE(mismatch == got.end())
      << "first divergence at byte " << (mismatch - got.begin()) << ": ..."
      << got.substr(static_cast<std::size_t>(std::max<std::ptrdiff_t>(
                        0, mismatch - got.begin() - 40)),
                    80)
      << "...";
}

TEST(ConvergenceParity, ParallelBuildMatchesSerialByteForByte) {
  gen::SyntheticInternet world(SmallWorld());
  sim::Network serial(world.topology(), world.configs(), world.bgp_policy(),
                      {}, nullptr, nullptr, /*convergence_jobs=*/1);
  const std::string want = DumpControlPlane(serial);
  ASSERT_FALSE(want.empty());

  for (const std::size_t jobs : {std::size_t{3}, std::size_t{8}}) {
    sim::Network parallel(world.topology(), world.configs(),
                          world.bgp_policy(), {}, nullptr, nullptr, jobs);
    const std::string got = DumpControlPlane(parallel);
    ExpectSameDump(got, want);
  }
}

/// The first internal link of an MPLS-enabled AS (an LSP hop, so the flap
/// also churns the LDP domain), or any internal link as fallback.
topo::LinkId PickInternalLink(const gen::SyntheticInternet& world) {
  const topo::Topology& topology = world.topology();
  topo::LinkId fallback = topo::kNoLink;
  for (topo::LinkId l = 0; l < topology.link_count(); ++l) {
    if (!topology.IsInternalLink(l)) continue;
    if (fallback == topo::kNoLink) fallback = l;
    const topo::AsNumber asn =
        topology.router(topology.interface(topology.link(l).a).router).asn;
    if (world.profile(asn).mpls) return l;
  }
  return fallback;
}

topo::LinkId PickExternalLink(const gen::SyntheticInternet& world) {
  const topo::Topology& topology = world.topology();
  for (topo::LinkId l = 0; l < topology.link_count(); ++l) {
    if (!topology.IsInternalLink(l)) return l;
  }
  return topo::kNoLink;
}

TEST(ConvergenceParity, IncrementalInternalFlapMatchesFullRebuild) {
  gen::SyntheticInternet world(SmallWorld());
  topo::Topology& topology = world.mutable_topology();
  const topo::LinkId link = PickInternalLink(world);
  ASSERT_NE(link, topo::kNoLink);

  sim::Network incremental(topology, world.configs(), world.bgp_policy(), {},
                           nullptr, nullptr, /*convergence_jobs=*/2);
  const std::string before = DumpControlPlane(incremental);

  topology.SetLinkUp(link, false);
  incremental.OnLinkStateChange(link);
  sim::Network rebuilt(topology, world.configs(), world.bgp_policy(), {},
                       nullptr, nullptr, /*convergence_jobs=*/1);
  ExpectSameDump(DumpControlPlane(incremental), DumpControlPlane(rebuilt));

  // Restoring the link must restore the original control plane exactly.
  topology.SetLinkUp(link, true);
  incremental.OnLinkStateChange(link);
  ExpectSameDump(DumpControlPlane(incremental), before);
}

TEST(ConvergenceParity, IncrementalExternalFlapMatchesFullRebuild) {
  gen::SyntheticInternet world(SmallWorld());
  topo::Topology& topology = world.mutable_topology();
  const topo::LinkId link = PickExternalLink(world);
  ASSERT_NE(link, topo::kNoLink);

  sim::Network incremental(topology, world.configs(), world.bgp_policy(), {},
                           nullptr, nullptr, /*convergence_jobs=*/2);
  const std::string before = DumpControlPlane(incremental);

  topology.SetLinkUp(link, false);
  incremental.OnLinkStateChange(link);
  sim::Network rebuilt(topology, world.configs(), world.bgp_policy(), {},
                       nullptr, nullptr, /*convergence_jobs=*/1);
  ExpectSameDump(DumpControlPlane(incremental), DumpControlPlane(rebuilt));

  topology.SetLinkUp(link, true);
  incremental.OnLinkStateChange(link);
  ExpectSameDump(DumpControlPlane(incremental), before);
}

TEST(ConvergenceParity, OneSpfPerRouterPerConvergence) {
  gen::SyntheticInternet world(SmallWorld());
  topo::Topology& topology = world.mutable_topology();
  sim::Network net(topology, world.configs(), world.bgp_policy(), {},
                   nullptr, nullptr, /*convergence_jobs=*/2);

  // Full convergence: IGP install, BGP hot-potato and LDP all shared the
  // cache — exactly one Dijkstra per router, none duplicated.
  EXPECT_EQ(net.spf().computations(), topology.router_count());

  // Ground-truth queries ride the cache too.
  const topo::AsNumber asn = topology.AsNumbers().front();
  const std::vector<topo::RouterId>& members = topology.as(asn).routers;
  ASSERT_GE(members.size(), 2u);
  (void)routing::IgpDistance(net.spf(), members[0], members[1]);
  (void)routing::IgpHopDistance(net.spf(), members[0], members[1]);
  EXPECT_EQ(net.spf().computations(), topology.router_count());

  // An internal flap recomputes only the affected AS's members.
  const topo::LinkId link = PickInternalLink(world);
  ASSERT_NE(link, topo::kNoLink);
  const topo::AsNumber flapped =
      topology.router(topology.interface(topology.link(link).a).router).asn;
  topology.SetLinkUp(link, false);
  net.OnLinkStateChange(link);
  EXPECT_EQ(net.spf().computations(),
            topology.router_count() + topology.as(flapped).routers.size());

  // An external flap reuses every cached tree: zero new SPF runs.
  const topo::LinkId external = PickExternalLink(world);
  ASSERT_NE(external, topo::kNoLink);
  topology.SetLinkUp(external, false);
  net.OnLinkStateChange(external);
  EXPECT_EQ(net.spf().computations(),
            topology.router_count() + topology.as(flapped).routers.size());
}

}  // namespace
}  // namespace wormhole
