// Fixture: matches inside comments and string literals must NOT fire.
#include <string>

// std::random_device in a comment is fine; so is rand().
/* block comment: std::mutex, std::chrono::system_clock::now() */
std::string Describe() {
  return "uses std::random_device and time(nullptr) and label = 5";
}
