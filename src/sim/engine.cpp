#include "sim/engine.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "exec/thread_pool.h"
#include "netbase/contracts.h"
#include "sim/vendor.h"

namespace wormhole::sim {

namespace {

using netbase::LabelStack;
using netbase::LabelStackEntry;
using netbase::Packet;
using netbase::PacketKind;
using routing::FibEntry;
using routing::NextHop;
using topo::RouterId;

constexpr std::uint32_t kExplicitNull =
    static_cast<std::uint32_t>(netbase::ReservedLabel::kIpv4ExplicitNull);

// Deterministic per-(probe, router) coin for ICMP loss injection: the same
// probe always sees the same outcome, a retransmission (new probe id)
// re-rolls — like a token-bucket rate limiter seen from outside.
bool IcmpLost(const Packet& p, RouterId router, double probability) {
  if (probability <= 0.0) return false;
  // splitmix64 finalizer: avalanches small inputs over all 64 bits.
  std::uint64_t h = (std::uint64_t{p.probe_id} << 32) ^ router;
  h += 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  const double draw =
      static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
  return draw < probability;
}

std::uint64_t FlowHash(const Packet& p) {
  // FNV-1a over the ECMP key: (src, dst, flow id). Paris traceroute keeps
  // flow_id constant so every probe of a trace hashes identically.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(p.src.value());
  mix(p.dst.value());
  mix(p.flow_id);
  return h;
}

}  // namespace

Engine::Engine(const topo::Topology& topology,
               const mpls::MplsConfigMap& configs,
               const std::vector<routing::Fib>& fibs,
               const mpls::LdpTables& ldp, EngineOptions options,
               const mpls::TeDatabase* te, const mpls::SrDatabase* sr,
               exec::ThreadPool* pool)
    : topology_(&topology),
      configs_(&configs),
      fibs_(&fibs),
      ldp_(&ldp),
      te_(te),
      sr_(sr),
      options_(options) {
  // Resolve every per-router hash lookup (config, LDP domain, FIB) once,
  // up front; the forwarding loop then indexes straight into this vector.
  // Each slot is written by exactly one task and each cache's content
  // depends only on this router's converged state, so the parallel build
  // is bit-identical to the serial one.
  router_cache_.resize(topology.router_count());
  exec::ParallelFor(pool, topology.router_count(), [&](std::size_t r) {
    router_cache_[r] = BuildRouterCache(static_cast<RouterId>(r));
  });
  for (const topo::Host& host : topology.hosts()) {
    router_cache_[host.gateway].hosts.push_back(
        AttachedHost{host.address, host.stub_interface});
  }
}

Engine::RouterCache Engine::BuildRouterCache(topo::RouterId r) const {
  const topo::Topology& topology = *topology_;
  RouterCache rc;
  rc.router = &topology.router(r);
  rc.config = &configs_->For(r);
  rc.domain = ldp_->DomainOf(rc.router->asn);
  rc.fib = &fibs_->at(r);

  rc.local_addresses.reserve(rc.router->interfaces.size() + 1);
  rc.local_addresses.push_back(rc.router->loopback);
  for (const topo::InterfaceId iid : rc.router->interfaces) {
    rc.local_addresses.push_back(topology.interface(iid).address);
  }
  rc.addr_lo = *std::min_element(rc.local_addresses.begin(),
                                 rc.local_addresses.end());
  rc.addr_hi = *std::max_element(rc.local_addresses.begin(),
                                 rc.local_addresses.end());

  // Pre-resolve every LDP in-label this router can receive into the
  // per-next-hop LabelOp the swap path would compute: exactly the
  // FecOfLabel → LookupExact → BindingOf chain of the converged
  // tables, evaluated once per (label, neighbor) here instead of per
  // packet. Labels are allocated densely from kFirstUnreservedLabel in
  // ascending FEC order, so walking the sorted bindings appends both CSR
  // arrays in final order with no per-label vectors.
  if (rc.domain != nullptr) {
    // Neighbor bindings are consulted in ascending FEC order (the outer
    // walk is sorted), so a monotone cursor per neighbor replaces a
    // binary search per (label, next hop). The neighbor set of one
    // router is small; linear scan beats a hash.
    struct NeighborCursor {
      RouterId neighbor;
      std::span<const std::pair<netbase::Prefix, mpls::Binding>> bindings;
      std::size_t pos = 0;
    };
    std::vector<NeighborCursor> cursors;
    const auto neighbor_binding =
        [&](RouterId neighbor,
            const netbase::Prefix& fec) -> const mpls::Binding* {
      NeighborCursor* cursor = nullptr;
      for (NeighborCursor& c : cursors) {
        if (c.neighbor == neighbor) {
          cursor = &c;
          break;
        }
      }
      if (cursor == nullptr) {
        cursors.push_back({neighbor, rc.domain->BindingsOf(neighbor)});
        cursor = &cursors.back();
      }
      while (cursor->pos < cursor->bindings.size() &&
             cursor->bindings[cursor->pos].first < fec) {
        ++cursor->pos;
      }
      if (cursor->pos < cursor->bindings.size() &&
          cursor->bindings[cursor->pos].first == fec) {
        return &cursor->bindings[cursor->pos].second;
      }
      return nullptr;
    };

    rc.ldp_op_offsets.push_back(0);
    for (const auto& [fec, own] : rc.domain->BindingsOf(r)) {
      if (own.kind != mpls::BindingKind::kLabel) continue;
      // CSR validity: the dense (label - 16) indexing below is only
      // sound for labels in the unreserved 20-bit range.
      WORMHOLE_ASSERT(own.label >= netbase::kFirstUnreservedLabel &&
                          own.label <= netbase::kMaxLabel,
                      "LDP binding outside the unreserved label range");
      const std::size_t index = own.label - netbase::kFirstUnreservedLabel;
      WORMHOLE_DCHECK(index + 1 == rc.ldp_op_offsets.size(),
                      "LDP labels must arrive densely, in binding order");
      const routing::FibEntry* route = rc.fib->LookupExact(fec);
      if (route != nullptr) {
        for (const NextHop& hop : route->next_hops) {
          LabelOp op;
          op.hop = hop;
          const mpls::Binding* out = neighbor_binding(hop.neighbor, fec);
          if (out == nullptr ||
              out->kind == mpls::BindingKind::kImplicitNull) {
            op.kind = LabelOp::Kind::kPop;
          } else if (out->kind == mpls::BindingKind::kExplicitNull) {
            op.kind = LabelOp::Kind::kSwapExplicitNull;
          } else {
            op.kind = LabelOp::Kind::kSwap;
            op.out_label = out->label;
          }
          rc.ldp_op_pool.push_back(op);
        }
      }
      rc.ldp_op_offsets.push_back(
          static_cast<std::uint32_t>(rc.ldp_op_pool.size()));
    }
  }
  return rc;
}

void Engine::RefreshRouters(const std::vector<topo::RouterId>& routers) {
  ++convergence_epoch_;
  for (const RouterId r : routers) {
    router_cache_[r] = BuildRouterCache(r);
  }
  // Re-attach hosts lost with the replaced caches.
  for (const topo::Host& host : topology_->hosts()) {
    if (std::find(routers.begin(), routers.end(), host.gateway) ==
        routers.end()) {
      continue;
    }
    router_cache_[host.gateway].hosts.push_back(
        AttachedHost{host.address, host.stub_interface});
  }
}

bool Engine::RepliesDependOnProbeIds() const {
  for (RouterId r = 0; r < topology_->router_count(); ++r) {
    if (configs_->For(r).icmp_loss > 0.0) return true;
  }
  return false;
}

std::optional<Engine::LabelOp> Engine::ResolveLabel(
    topo::RouterId router, std::uint32_t label,
    const netbase::Packet& packet) const {
  WORMHOLE_DCHECK(router < router_cache_.size(),
                  "ResolveLabel router id outside the cache");
  WORMHOLE_ASSERT(label <= netbase::kMaxLabel,
                  "label exceeds the 20-bit MPLS label space");
  // SR node SIDs: forward towards the SID's router along the IGP path; the
  // penultimate hop pops the segment (PHP), so the waypoint receives the
  // next SID (or the bare IP packet) directly.
  if (sr_ != nullptr) {
    if (const auto target = sr_->RouterOfSid(label)) {
      const FibEntry* route = router_cache_[router].fib->LookupExact(
          netbase::Prefix::Host(topology_->router(*target).loopback));
      if (route != nullptr && !route->next_hops.empty()) {
        LabelOp op;
        op.hop = PickNextHop(route->next_hops, packet);
        if (op.hop.neighbor == *target) {
          op.kind = LabelOp::Kind::kPop;
        } else {
          op.kind = LabelOp::Kind::kSwap;
          op.out_label = label;  // global SID: unchanged along the segment
        }
        return op;
      }
      return std::nullopt;
    }
  }

  // RSVP-TE labels live in their own range; check the TE database first.
  if (te_ != nullptr) {
    if (const auto te_op = te_->OpFor(router, label)) {
      LabelOp op;
      op.hop = routing::NextHop{te_op->link, te_op->next};
      op.out_label = te_op->out_label;
      switch (te_op->kind) {
        case mpls::TeLabelOp::Kind::kSwap:
          op.kind = LabelOp::Kind::kSwap;
          break;
        case mpls::TeLabelOp::Kind::kPop:
          op.kind = LabelOp::Kind::kPop;
          break;
        case mpls::TeLabelOp::Kind::kSwapExplicitNull:
          op.kind = LabelOp::Kind::kSwapExplicitNull;
          break;
      }
      return op;
    }
  }

  // LDP: the constructor pre-resolved every (in-label, next hop) pair
  // into router_cache_; what remains is the ECMP choice, which must match
  // PickNextHop bit-for-bit (the ops are parallel to the route's sorted
  // next_hops).
  if (label < netbase::kFirstUnreservedLabel) return std::nullopt;
  const RouterCache& rc = router_cache_[router];
  const std::size_t index = label - netbase::kFirstUnreservedLabel;
  if (index + 1 >= rc.ldp_op_offsets.size()) return std::nullopt;
  const std::uint32_t begin = rc.ldp_op_offsets[index];
  const std::uint32_t count = rc.ldp_op_offsets[index + 1] - begin;
  if (count == 0) return std::nullopt;
  const LabelOp* per_hop = rc.ldp_op_pool.data() + begin;
  if (count == 1 || !options_.ecmp_enabled) return per_hop[0];
  return per_hop[FlowHash(packet) % count];
}

EngineStats Engine::stats() const {
  EngineStats total;
  for (const StatShard& shard : stat_shards_) {
    total.packets_injected +=
        shard.packets_injected.load(std::memory_order_relaxed);
    total.hops_processed +=
        shard.hops_processed.load(std::memory_order_relaxed);
    total.icmp_generated +=
        shard.icmp_generated.load(std::memory_order_relaxed);
    total.labels_pushed +=
        shard.labels_pushed.load(std::memory_order_relaxed);
    total.labels_popped +=
        shard.labels_popped.load(std::memory_order_relaxed);
  }
  return total;
}

Engine::Outcome Engine::Send(netbase::Packet probe) const {
  const topo::Host* origin = topology_->FindHost(probe.src);
  if (origin == nullptr) {
    throw std::invalid_argument("Send: probe.src is not an attached host");
  }
  EngineStats local;
  ++local.packets_injected;

  // The by-value parameter is the packet's storage for the whole walk:
  // the transit points at it and every hop mutates it in place.
  Transit transit;
  transit.packet = &probe;
  probe.elapsed_ms += options_.host_stub_delay_ms;
  transit.router = origin->gateway;
  transit.in_interface = origin->stub_interface;

  const netbase::Ipv4Address origin_address = origin->address;
  Outcome final;
  while (true) {
    if (probe.hops_traversed > options_.max_hops) {
      final = Outcome{.received = false, .loss = LossReason::kTtlLoop};
      break;
    }
    ++local.hops_processed;

    // Delivery to the origin host happens at its gateway, after the
    // gateway's normal forwarding decrement (handled inside ProcessIp).
    // Each step advances `transit` in place.
    StepResult step = ProcessAt(transit, local);
    if (step.outcome) {
      // Only packets addressed to the origin terminate the simulation.
      final = step.outcome->reply.dst == origin_address
                  ? std::move(*step.outcome)
                  : Outcome{.received = false, .loss = LossReason::kDropped};
      break;
    }
    if (step.loss != LossReason::kNone) {
      final = Outcome{.received = false, .loss = step.loss};
      break;
    }
  }

  CommitStats(local);
  return final;
}

void Engine::CommitStats(const EngineStats& stats) const {
  StatShard& shard = stat_shards_[exec::ThreadSlot(kStatShards)];
  shard.packets_injected.fetch_add(stats.packets_injected,
                                   std::memory_order_relaxed);
  shard.hops_processed.fetch_add(stats.hops_processed,
                                 std::memory_order_relaxed);
  shard.icmp_generated.fetch_add(stats.icmp_generated,
                                 std::memory_order_relaxed);
  shard.labels_pushed.fetch_add(stats.labels_pushed,
                                std::memory_order_relaxed);
  shard.labels_popped.fetch_add(stats.labels_popped,
                                std::memory_order_relaxed);
}

Engine::StepResult Engine::ProcessAt(Transit& t, EngineStats& stats) const {
  if (t.packet->has_labels()) return ProcessMpls(t, stats);
  return ProcessIp(t, stats);
}

Engine::StepResult Engine::ProcessMpls(Transit& t, EngineStats& stats) const {
  const RouterId r = t.router;
  WORMHOLE_DCHECK(t.packet->has_labels(),
                  "ProcessMpls entered without a label stack");
  // In-flight stacks keep the top of stack at the BACK: push/swap/pop are
  // O(1) writes at the end, and the expiry path below is the only place
  // the stack is ever copied (for the RFC 4950 quotation) — an untouched
  // pre-decrement stack is quoted directly, so the non-expiring hop never
  // copies anything.
  LabelStackEntry& top = t.packet->labels.back();

  if (top.label == kExplicitNull) {
    // UHP disposition at the Egress LER. The LSE-TTL check still applies
    // (it can only fire under ttl-propagate).
    const auto decremented = static_cast<std::uint8_t>(top.ttl - 1);
    if (decremented == 0) {
      if (t.packet->kind != PacketKind::kEchoRequest) {
        return StepResult{.loss = LossReason::kReplyExpired};
      }
      // Stack still as received: quote it. No table maps explicit-null,
      // so there is no label operation to forward the ICMP along.
      return OriginateError(t, PacketKind::kTimeExceeded,
                            /*quote_labels=*/true, stats);
    }
    t.packet->labels.pop_back();
    ++stats.labels_popped;
    // Emulation-calibrated: decrement without an expiry check, no min copy
    // (see engine.h); then a fresh IP pass with no further decrement.
    if (t.packet->ip_ttl > 0) --t.packet->ip_ttl;
    t.skip_ip_decrement = true;
    return ProcessIp(t, stats);
  }

  const auto op = ResolveLabel(r, top.label, *t.packet);
  if (!op) return StepResult{.loss = LossReason::kDropped};

  const auto decremented = static_cast<std::uint8_t>(top.ttl - 1);
  if (decremented == 0) {
    if (t.packet->kind != PacketKind::kEchoRequest) {
      return StepResult{.loss = LossReason::kReplyExpired};
    }
    // Stack still holds the pre-decrement values (RFC 4950 quotes the
    // packet as received); reuse the op resolved above for the
    // ICMP-along-the-LSP decision instead of resolving again.
    return OriginateError(t, PacketKind::kTimeExceeded,
                          /*quote_labels=*/true, stats, &*op);
  }
  top.ttl = decremented;

  switch (op->kind) {
    case LabelOp::Kind::kPop: {
      // PHP pop (or a neighbor without a binding — same data-plane
      // effect): the min rule applies between the popped LSE-TTL and
      // whatever gets exposed — the inner label of a stacked packet (SR
      // SID lists) or the IP header (RFC 3443 §5.4).
      const auto popped = static_cast<int>(decremented);
      t.packet->labels.pop_back();
      ++stats.labels_popped;
      if (router_cache_[r].config->min_ttl_on_pop) {
        if (!t.packet->labels.empty()) {
          LabelStackEntry& exposed = t.packet->labels.back();
          exposed.ttl = static_cast<std::uint8_t>(
              std::min(static_cast<int>(exposed.ttl), popped));
        } else {
          t.packet->ip_ttl = std::min(t.packet->ip_ttl, popped);
        }
      }
      break;
    }
    case LabelOp::Kind::kSwapExplicitNull:
      top.label = kExplicitNull;
      break;
    case LabelOp::Kind::kSwap:
      top.label = op->out_label;
      break;
  }
  Forward(t, op->hop);
  return {};
}

Engine::StepResult Engine::ProcessIp(Transit& t, EngineStats& stats) const {
  const RouterId r = t.router;
  // RFC 3443 TTL domain: the IP TTL is an 8-bit field; `int` storage only
  // exists so arithmetic never silently wraps (see Packet::ip_ttl).
  WORMHOLE_ASSERT(t.packet->ip_ttl >= 0 && t.packet->ip_ttl <= 255,
                  "IP TTL outside [0, 255]");
  const RouterCache& rc = router_cache_[r];
  const topo::Router& router = *rc.router;
  // One config resolution per hop: the SR check, the TE check and
  // MaybeImpose below all read this reference instead of re-fetching.
  const mpls::MplsConfig& config = *rc.config;
  Packet& p = *t.packet;

  // Delivery to one of this router's own addresses happens before any
  // decrement (the packet has arrived).
  if (IsLocalAddress(r, p.dst)) {
    if (p.kind != PacketKind::kEchoRequest) {
      // A reply addressed to a router: nothing is waiting for it.
      return StepResult{.loss = LossReason::kDropped};
    }
    if (config.icmp_silent || IcmpLost(p, r, config.icmp_loss)) {
      return StepResult{.loss = LossReason::kDropped};
    }
    const VendorBehavior behavior = BehaviorOf(router.vendor);
    Packet reply = MakeEchoReply(t, p.dst, behavior.initial_ttl_echo_reply);
    ++stats.icmp_generated;
    *t.packet = std::move(reply);  // answered at the same router
    t.locally_originated = true;
    return {};
  }

  // Transit decrement (skipped right after local origination or UHP pop).
  if (!t.locally_originated && !t.skip_ip_decrement) {
    --p.ip_ttl;
    if (p.ip_ttl <= 0) {
      if (p.kind != PacketKind::kEchoRequest) {
        return StepResult{.loss = LossReason::kReplyExpired};
      }
      return OriginateError(t, PacketKind::kTimeExceeded,
                            /*quote_labels=*/false, stats);
    }
  }
  t.locally_originated = false;
  t.skip_ip_decrement = false;

  // Delivery to an attached host (after the decrement — the stub segment
  // is an ordinary IP hop). Only hosts gatewayed by THIS router matter,
  // so the cached per-router list replaces the global host hash.
  for (const AttachedHost& host : rc.hosts) {
    if (host.address != p.dst) continue;
    if (p.is_reply()) {
      Outcome outcome;
      outcome.received = true;
      outcome.rtt_ms = p.elapsed_ms + options_.host_stub_delay_ms;
      outcome.reply = std::move(p);
      return StepResult{.outcome = std::move(outcome)};
    }
    // An echo-request probing the host itself: the host answers.
    Packet reply = MakeEchoReply(t, p.dst, kHostEchoReplyTtl);
    reply.elapsed_ms += 2 * options_.host_stub_delay_ms;
    ++stats.icmp_generated;
    *t.packet = std::move(reply);
    t.in_interface = host.stub_interface;
    // The gateway forwards (and decrements) the host's reply normally:
    // locally_originated stays false.
    return {};
  }

  // SR steering: the ingress imposes the policy's SID list; the packet
  // then waypoint-hops through the domain.
  if (sr_ != nullptr && config.enabled) {
    if (const mpls::SrPolicy* policy = sr_->PolicyFor(r, p.dst)) {
      const FibEntry* route = rc.fib->LookupExact(netbase::Prefix::Host(
          topology_->router(policy->waypoints.front()).loopback));
      if (route != nullptr && !route->next_hops.empty()) {
        const NextHop hop = PickNextHop(route->next_hops, p);
        const bool propagate = config.ttl_propagate;
        // Impose the SID list directly onto the in-flight stack: deepest
        // segment first, so the first waypoint's SID ends up on top (the
        // back). The deepest new entry carries the bottom-of-stack flag.
        const std::size_t before = p.labels.size();
        const auto& waypoints = policy->waypoints;
        WORMHOLE_DCHECK(!propagate || (p.ip_ttl >= 1 && p.ip_ttl <= 255),
                        "propagated LSE TTL outside [1, 255]");
        for (auto it = waypoints.rbegin(); it != waypoints.rend(); ++it) {
          LabelStackEntry lse;
          lse.label = mpls::NodeSid(*it);
          WORMHOLE_ASSERT(lse.label <= netbase::kMaxLabel,
                          "SR node SID exceeds the 20-bit label space");
          lse.ttl = static_cast<std::uint8_t>(propagate ? p.ip_ttl : 255);
          lse.bottom_of_stack = false;
          p.labels.push_back(lse);
        }
        if (p.labels.size() > before) {
          p.labels[before].bottom_of_stack = true;
        }
        if (hop.neighbor == waypoints.front()) {
          p.labels.pop_back();  // PHP at push for the first segment
        }
        stats.labels_pushed += p.labels.size() - before;
        Forward(t, hop);
        return {};
      }
    }
  }

  // RSVP-TE steering: a tunnel ingress pins selected prefixes onto an
  // explicit route, overriding the IGP next hop.
  if (te_ != nullptr && config.enabled) {
    if (const mpls::TeSteering* steering = te_->SteeringFor(r, p.dst)) {
      if (steering->labeled) {
        LabelStackEntry lse;
        lse.label = steering->label;
        WORMHOLE_ASSERT(lse.label <= netbase::kMaxLabel,
                        "TE steering label exceeds the 20-bit label space");
        WORMHOLE_DCHECK(
            !config.ttl_propagate || (p.ip_ttl >= 1 && p.ip_ttl <= 255),
            "propagated LSE TTL outside [1, 255]");
        lse.ttl = static_cast<std::uint8_t>(
            config.ttl_propagate ? p.ip_ttl : 255);
        p.labels.push_back(lse);
        ++stats.labels_pushed;
      }
      Forward(t, NextHop{steering->link, steering->next});
      return {};
    }
  }

  const FibEntry* entry = rc.fib->Lookup(p.dst);
  if (entry == nullptr) {
    if (p.kind != PacketKind::kEchoRequest) {
      return StepResult{.loss = LossReason::kNoRoute};
    }
    return OriginateError(t, PacketKind::kDestinationUnreachable,
                          /*quote_labels=*/false, stats);
  }

  if (entry->next_hops.empty()) {
    // Connected subnet: the destination is the far end of one of our links
    // (or an unassigned address => unreachable).
    for (const topo::InterfaceId iid : router.interfaces) {
      const topo::Interface& iface = topology_->interface(iid);
      if (iface.link == topo::kNoLink || iface.subnet != entry->prefix ||
          !topology_->link(iface.link).up) {
        continue;
      }
      const topo::Interface& peer = topology_->OtherEnd(iface.link, r);
      if (peer.address == p.dst) {
        Forward(t, NextHop{iface.link, peer.router});
        return {};
      }
    }
    if (p.kind != PacketKind::kEchoRequest) {
      return StepResult{.loss = LossReason::kNoRoute};
    }
    return OriginateError(t, PacketKind::kDestinationUnreachable,
                          /*quote_labels=*/false, stats);
  }

  const NextHop& hop = PickNextHop(entry->next_hops, p);
  MaybeImpose(rc, *entry, hop, p, stats);
  Forward(t, hop);
  return {};
}

Engine::StepResult Engine::OriginateError(Transit& t,
                                          netbase::PacketKind kind,
                                          bool quote_labels,
                                          EngineStats& stats,
                                          const LabelOp* lsp_op) const {
  const RouterId r = t.router;
  const RouterCache& rc = router_cache_[r];
  const mpls::MplsConfig& config = *rc.config;
  if (config.icmp_silent || IcmpLost(*t.packet, r, config.icmp_loss)) {
    return StepResult{.loss = LossReason::kDropped};
  }
  const VendorBehavior behavior = BehaviorOf(rc.router->vendor);
  ++stats.icmp_generated;

  Packet reply;
  reply.kind = kind;
  reply.src = topology_->interface(t.in_interface).address;
  reply.dst = t.packet->src;
  reply.ip_ttl = behavior.initial_ttl_time_exceeded;
  reply.flow_id = t.packet->flow_id;
  reply.probe_id = t.packet->probe_id;
  reply.quoted_dst = t.packet->dst;
  reply.elapsed_ms = t.packet->elapsed_ms;
  reply.hops_traversed = t.packet->hops_traversed;
  if (quote_labels && config.rfc4950) {
    reply.quoted_labels = netbase::QuoteStack(t.packet->labels);
  }

  // An error generated mid-LSP is first forwarded along the tunnel: it is
  // sent out with the label the offending packet would have carried
  // (`lsp_op`, resolved once by the caller). When the operation is a PHP
  // pop (no label left), the reply is routed directly instead.
  if (quote_labels && config.icmp_along_lsp && !t.packet->labels.empty()) {
    if (lsp_op != nullptr && lsp_op->kind != LabelOp::Kind::kPop) {
      LabelStackEntry lse;
      lse.label = lsp_op->kind == LabelOp::Kind::kSwapExplicitNull
                      ? kExplicitNull
                      : lsp_op->out_label;
      lse.ttl = static_cast<std::uint8_t>(
          config.ttl_propagate ? reply.ip_ttl : 255);
      reply.labels = {lse};
      ++stats.labels_pushed;
      *t.packet = std::move(reply);  // same router, same incoming
      Forward(t, lsp_op->hop);
      return {};
    }
  }

  *t.packet = std::move(reply);
  t.locally_originated = true;
  t.skip_ip_decrement = false;
  return {};
}

netbase::Packet Engine::MakeEchoReply(const Transit& t,
                                      netbase::Ipv4Address reply_src,
                                      int initial_ttl) const {
  Packet reply;
  reply.kind = PacketKind::kEchoReply;
  reply.src = reply_src;
  reply.dst = t.packet->src;
  reply.ip_ttl = initial_ttl;
  reply.flow_id = t.packet->flow_id;
  reply.probe_id = t.packet->probe_id;
  reply.elapsed_ms = t.packet->elapsed_ms;
  reply.hops_traversed = t.packet->hops_traversed;
  return reply;
}

namespace {

// Deterministic per (probe, link) jitter in [-f, +f] of the base delay.
// Shared by Forward and the batched run fast path so both compute
// bit-identical elapsed times.
double JitteredDelay(double delay, double fraction, std::uint32_t probe_id,
                     topo::LinkId link) {
  if (fraction > 0.0) {
    std::uint64_t h = (std::uint64_t{probe_id} << 32) ^
                      (std::uint64_t{link} * 0x9E3779B97F4A7C15ull);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
    const double unit =
        static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
    delay *= 1.0 + fraction * (2.0 * unit - 1.0);
  }
  return delay;
}

}  // namespace

void Engine::Forward(Transit& t, const routing::NextHop& hop) const {
  WORMHOLE_DCHECK(hop.link != topo::kNoLink && hop.neighbor != topo::kNoRouter,
                  "Forward over an unresolved next hop");
  t.packet->elapsed_ms += JitteredDelay(topology_->link(hop.link).delay_ms,
                                        options_.delay_jitter_fraction,
                                        t.packet->probe_id, hop.link);
  ++t.packet->hops_traversed;
  t.router = hop.neighbor;
  t.in_interface = topology_->EndOn(hop.link, hop.neighbor).id;
  // The one-shot flags describe the router the packet just left, never the
  // neighbor it arrives at.
  t.locally_originated = false;
  t.skip_ip_decrement = false;
}

const routing::NextHop& Engine::PickNextHop(
    const routing::NextHopSet& hops,
    const netbase::Packet& packet) const {
  if (hops.size() == 1 || !options_.ecmp_enabled) return hops.front();
  return hops[FlowHash(packet) % hops.size()];
}

void Engine::MaybeImpose(const RouterCache& rc,
                         const routing::FibEntry& entry,
                         const routing::NextHop& hop,
                         netbase::Packet& packet,
                         EngineStats& stats) const {
  const mpls::MplsConfig& config = *rc.config;
  if (!config.enabled) return;
  const mpls::LdpDomain* domain = rc.domain;
  if (domain == nullptr) return;

  netbase::Prefix fec;
  switch (entry.source) {
    case routing::RouteSource::kBgp:
      // External traffic is switched via the LSP towards the BGP next hop
      // (the egress LER's loopback, next-hop-self).
      if (entry.bgp_next_hop.is_unspecified()) return;  // eBGP exit
      fec = netbase::Prefix::Host(entry.bgp_next_hop);
      break;
    case routing::RouteSource::kIgp:
      fec = entry.prefix;
      break;
    case routing::RouteSource::kConnected:
      return;
  }

  const auto binding = domain->BindingOf(hop.neighbor, fec);
  if (!binding) return;
  if (binding->kind == mpls::BindingKind::kImplicitNull) return;  // pop+push

  LabelStackEntry lse;
  lse.label = binding->kind == mpls::BindingKind::kExplicitNull
                  ? kExplicitNull
                  : binding->label;
  WORMHOLE_ASSERT(lse.label == kExplicitNull ||
                      (lse.label >= netbase::kFirstUnreservedLabel &&
                       lse.label <= netbase::kMaxLabel),
                  "imposed label outside the unreserved range");
  WORMHOLE_DCHECK(
      !config.ttl_propagate || (packet.ip_ttl >= 1 && packet.ip_ttl <= 255),
      "propagated LSE TTL outside [1, 255]");
  lse.ttl =
      static_cast<std::uint8_t>(config.ttl_propagate ? packet.ip_ttl : 255);
  packet.labels.push_back(lse);  // in-flight order: new top goes at the back
  ++stats.labels_pushed;
}

bool Engine::IsLocalAddress(topo::RouterId router,
                            netbase::Ipv4Address address) const {
  // Scanning this router's few addresses beats the global address hash;
  // the set is exactly what FindRouterByAddress would map to `router`.
  // The [lo, hi] bracket rejects nearly all transit traffic first: a
  // router's addresses cluster inside its AS block, so a packet merely
  // passing through fails the range check with two compares.
  const RouterCache& rc = router_cache_[router];
  if (address < rc.addr_lo || rc.addr_hi < address) return false;
  for (const netbase::Ipv4Address local : rc.local_addresses) {
    if (local == address) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Batched stepping (SendBatch).
// ---------------------------------------------------------------------------

namespace {

/// SoA top_label sentinel for an unlabelled in-flight packet. Real labels
/// are 20-bit, so this can never collide (explicit-null is label 0, which
/// must stay distinguishable from "no label at all").
constexpr std::uint32_t kNoTopLabel = 0xFFFFFFFFu;

// Transit flag bits packed into the SoA `flags` column.
constexpr std::uint8_t kFlagLocallyOriginated = 1u << 0;
constexpr std::uint8_t kFlagSkipIpDecrement = 1u << 1;
// Scheduler-only bit: this row's forwarding key equals the key of the row
// immediately before it (set by a shared run step, which applies the same
// label transform to every member and so preserves key equality; cleared
// whenever that predecessor row dies or the rows stop being adjacent).
// Lets run detection skip the per-member SameForwardKey compare on every
// round after a run's first.
constexpr std::uint8_t kFlagSameKeyAsPrev = 1u << 2;
// Set when a shared run advanced this row's column-resident state (top of
// stack, elapsed, hops) past its arena packet; tells StepBatchRow's
// prologue that a write-back is due. Rows that only ever step generically
// never pay the packet restore.
constexpr std::uint8_t kFlagColumnsDirty = 1u << 3;
constexpr std::uint8_t kTransitFlags =
    kFlagLocallyOriginated | kFlagSkipIpDecrement;

// Prefetch distances, in grouped rows. The far stage pulls the row's
// RouterCache and arena packet towards L1; by the time the row is
// kPrefetchNear away its RouterCache is resident, so the near stage can
// chase one level deeper into the FIB hash / ldp_op_offsets lines the
// step will touch.
constexpr std::size_t kPrefetchFar = 8;
constexpr std::size_t kPrefetchNear = 3;

/// True when two in-flight packets are guaranteed to get the identical
/// forwarding decision at the same router: everything the routing layer
/// reads must agree — kind, addressing, ECMP flow key, loop-guard count
/// and the label *values* of the stack. Per-entry TTLs, probe ids and
/// elapsed times may differ; they only feed member-local arithmetic.
/// The hop counts and top labels come from the SoA columns (the
/// authoritative copy for live rows); the packets supply only the fields
/// that stay coherent while a row is column-resident (kind, addressing,
/// flow key, stack depth and the buried label values).
bool SameForwardKey(const Packet& a, const Packet& b, std::int32_t hops_a,
                    std::int32_t hops_b, std::uint32_t top_a,
                    std::uint32_t top_b) {
  if (a.kind != b.kind || a.src != b.src || a.dst != b.dst ||
      a.flow_id != b.flow_id || hops_a != hops_b || top_a != top_b ||
      a.labels.size() != b.labels.size()) {
    return false;
  }
  for (std::size_t i = 0; i + 1 < a.labels.size(); ++i) {
    if (a.labels[i].label != b.labels[i].label) return false;
  }
  return true;
}

}  // namespace

void Engine::RefreshBatchRow(BatchResult& b, std::size_t pos,
                             const Transit& t) const {
  const Packet& p = *t.packet;
  b.router[pos] = t.router;
  b.in_iface[pos] = t.in_interface;
  b.flags[pos] = static_cast<std::uint8_t>(
      (t.locally_originated ? kFlagLocallyOriginated : 0) |
      (t.skip_ip_decrement ? kFlagSkipIpDecrement : 0));
  if (p.has_labels()) {
    b.top_label[pos] = p.labels.back().label;
    b.ttl[pos] = p.labels.back().ttl;
  } else {
    b.top_label[pos] = kNoTopLabel;
    b.ttl[pos] = static_cast<std::uint8_t>(std::clamp(p.ip_ttl, 0, 255));
  }
  b.elapsed[pos] = p.elapsed_ms;
  b.hops[pos] = p.hops_traversed;
}

void Engine::WriteBackBatchRow(BatchResult& b, std::size_t pos) const {
  if ((b.flags[pos] & kFlagColumnsDirty) == 0) return;
  b.flags[pos] &= static_cast<std::uint8_t>(~kFlagColumnsDirty);
  Packet& p = b.arena[b.slot[pos]];
  p.elapsed_ms = b.elapsed[pos];
  p.hops_traversed = b.hops[pos];
  if (p.has_labels()) {
    LabelStackEntry& top = p.labels.back();
    top.label = b.top_label[pos];
    top.ttl = b.ttl[pos];
  } else {
    p.ip_ttl = b.ttl[pos];
  }
}

void Engine::StepBatchRow(BatchResult& b, std::size_t pos) const {
  const std::uint32_t s = b.slot[pos];
  EngineStats& pstats = b.per_slot_stats[s];
  // Restore packet coherence: shared runs may have advanced this row's
  // top-of-stack / elapsed / hop-count columns without touching the arena.
  WriteBackBatchRow(b, pos);
  Transit t;
  t.packet = &b.arena[s];
  t.router = b.router[pos];
  t.in_interface = b.in_iface[pos];
  t.locally_originated = (b.flags[pos] & kFlagLocallyOriginated) != 0;
  t.skip_ip_decrement = (b.flags[pos] & kFlagSkipIpDecrement) != 0;

  // Iterations of Send's hop loop, verbatim. A request steps exactly once
  // and returns to the round scheduler (it may join a shared run next
  // round); a reply drains to completion here in Send's own tight loop —
  // replies carry a unique src, so no other row can ever share their
  // forwarding key, and keeping them in the round loop would only pay the
  // regroup machinery once per hop for no batching gain.
  for (;;) {
    if (t.packet->hops_traversed > options_.max_hops) {
      b.outcomes[s] = Outcome{.received = false, .loss = LossReason::kTtlLoop};
      b.router[pos] = topo::kNoRouter;
      return;
    }
    ++pstats.hops_processed;
    StepResult step = ProcessAt(t, pstats);
    if (step.outcome) {
      b.outcomes[s] =
          step.outcome->reply.dst == b.origin[s]
              ? std::move(*step.outcome)
              : Outcome{.received = false, .loss = LossReason::kDropped};
      b.router[pos] = topo::kNoRouter;
      return;
    }
    if (step.loss != LossReason::kNone) {
      b.outcomes[s] = Outcome{.received = false, .loss = step.loss};
      b.router[pos] = topo::kNoRouter;
      return;
    }
    if (!t.packet->is_reply()) break;
  }
  RefreshBatchRow(b, pos, t);
}

std::size_t Engine::GroupLiveByRouter(BatchResult& b,
                                      std::size_t live) const {
  // Fast path: a fan that stepped together last round is still compacted
  // and grouped (run members move to one neighbor, batch order is never
  // reordered), so the stable sort below would be the identity
  // permutation. Detect that with one cheap ordered-scan over the live
  // rows and, when it holds, slide rows down over any tombstones in
  // place — no permutation build, no six-column gather.
  bool grouped = true;
  {
    RouterId prev = 0;
    bool first = true;
    for (std::size_t pos = 0; pos < live; ++pos) {
      const RouterId r = b.router[pos];
      if (r == topo::kNoRouter) continue;
      if (!first && r < prev) {
        grouped = false;
        break;
      }
      prev = r;
      first = false;
    }
  }
  if (grouped) {
    std::size_t alive = 0;
    bool prev_dead = false;
    for (std::size_t pos = 0; pos < live; ++pos) {
      if (b.router[pos] == topo::kNoRouter) {
        prev_dead = true;
        continue;
      }
      if (alive != pos) {
        b.slot[alive] = b.slot[pos];
        b.router[alive] = b.router[pos];
        b.in_iface[alive] = b.in_iface[pos];
        b.ttl[alive] = b.ttl[pos];
        b.top_label[alive] = b.top_label[pos];
        b.flags[alive] = b.flags[pos];
        b.elapsed[alive] = b.elapsed[pos];
        b.hops[alive] = b.hops[pos];
      }
      // The same-key bit speaks about the immediately preceding row; it
      // survives compaction only when that row did.
      if (prev_dead) b.flags[alive] &= ~kFlagSameKeyAsPrev;
      prev_dead = false;
      ++alive;
    }
    return alive;
  }

  auto& order = b.order;
  order.clear();
  const std::size_t routers = router_cache_.size();
  // Hybrid stable grouping: a permutation sort when the live set is much
  // smaller than the router space (skips the O(routers) counting pass), a
  // counting sort otherwise. Both are stable on batch order, so the
  // grouped sequence — and therefore every outcome — is identical
  // whichever branch runs.
  if (live * 8 < routers) {
    for (std::size_t pos = 0; pos < live; ++pos) {
      if (b.router[pos] != topo::kNoRouter) {
        order.push_back(static_cast<std::uint32_t>(pos));
      }
    }
    std::stable_sort(order.begin(), order.end(),
                     [&b](std::uint32_t x, std::uint32_t y) {
                       return b.router[x] < b.router[y];
                     });
  } else {
    b.counts.assign(routers, 0);
    std::size_t alive = 0;
    for (std::size_t pos = 0; pos < live; ++pos) {
      if (b.router[pos] != topo::kNoRouter) {
        ++b.counts[b.router[pos]];
        ++alive;
      }
    }
    // Exclusive prefix sum: counts[r] becomes the first output index of
    // router r's group.
    std::uint32_t begin = 0;
    for (std::size_t r = 0; r < routers; ++r) {
      const std::uint32_t count = b.counts[r];
      b.counts[r] = begin;
      begin += count;
    }
    order.resize(alive);
    for (std::size_t pos = 0; pos < live; ++pos) {
      if (b.router[pos] != topo::kNoRouter) {
        order[b.counts[b.router[pos]]++] = static_cast<std::uint32_t>(pos);
      }
    }
  }

  // Gather every SoA column through the permutation, then adopt the
  // gathered buffers (capacities were reserved at injection — steady
  // state allocates nothing).
  const std::size_t alive = order.size();
  b.slot2.resize(alive);
  b.router2.resize(alive);
  b.in_iface2.resize(alive);
  b.ttl2.resize(alive);
  b.top_label2.resize(alive);
  b.flags2.resize(alive);
  b.elapsed2.resize(alive);
  b.hops2.resize(alive);
  for (std::size_t k = 0; k < alive; ++k) {
    const std::uint32_t from = order[k];
    b.slot2[k] = b.slot[from];
    b.router2[k] = b.router[from];
    b.in_iface2[k] = b.in_iface[from];
    b.ttl2[k] = b.ttl[from];
    b.top_label2[k] = b.top_label[from];
    b.flags2[k] = b.flags[from];
    b.elapsed2[k] = b.elapsed[from];
    b.hops2[k] = b.hops[from];
    // The same-key bit only survives when the row it speaks about — the
    // old immediate predecessor — is still the immediate predecessor.
    if (k == 0 || order[k - 1] + 1 != from) {
      b.flags2[k] &= static_cast<std::uint8_t>(~kFlagSameKeyAsPrev);
    }
  }
  b.slot.swap(b.slot2);
  b.router.swap(b.router2);
  b.in_iface.swap(b.in_iface2);
  b.ttl.swap(b.ttl2);
  b.top_label.swap(b.top_label2);
  b.flags.swap(b.flags2);
  b.elapsed.swap(b.elapsed2);
  b.hops.swap(b.hops2);
  return alive;
}

bool Engine::TryStepRunShared(BatchResult& b, std::size_t begin,
                              std::size_t end) const {
  const RouterId r = b.router[begin];
  const RouterCache& rc = router_cache_[r];
  // Read-only: the run decision is resolved on the leader, applied to
  // every member later (misc-const-correctness would flag a `Packet&`).
  // The leader packet supplies only its column-coherent fields (kind,
  // addressing, flow key, stack depth); hop count and top label come
  // from the authoritative SoA columns.
  const Packet& leader = b.arena[b.slot[begin]];
  if (b.hops[begin] > options_.max_hops) return false;

  // Resolve the shared routing decision once, on the leader. Anything
  // outside the four plain forwarding shapes (delivery, steering with SID
  // lists, expiry, errors, black holes) bails out to the generic path.
  enum class Run : std::uint8_t { kSwap, kSwapExplicitNull, kPop, kIp };
  Run run = Run::kIp;
  NextHop hop;
  std::uint32_t out_label = 0;
  bool impose = false;
  std::uint32_t imposed_label = 0;

  if (leader.has_labels()) {
    const auto op = ResolveLabel(r, b.top_label[begin], leader);
    if (!op) return false;
    switch (op->kind) {
      case LabelOp::Kind::kSwap:
        run = Run::kSwap;
        out_label = op->out_label;
        break;
      case LabelOp::Kind::kSwapExplicitNull:
        run = Run::kSwapExplicitNull;
        break;
      case LabelOp::Kind::kPop:
        run = Run::kPop;
        break;
    }
    hop = op->hop;
  } else {
    const mpls::MplsConfig& config = *rc.config;
    if (IsLocalAddress(r, leader.dst)) return false;
    for (const AttachedHost& host : rc.hosts) {
      if (host.address == leader.dst) return false;
    }
    if (sr_ != nullptr && config.enabled &&
        sr_->PolicyFor(r, leader.dst) != nullptr) {
      return false;
    }
    if (te_ != nullptr && config.enabled &&
        te_->SteeringFor(r, leader.dst) != nullptr) {
      return false;
    }
    const FibEntry* entry = rc.fib->Lookup(leader.dst);
    if (entry == nullptr || entry->next_hops.empty()) return false;
    hop = PickNextHop(entry->next_hops, leader);
    // MaybeImpose's binding-resolution half, hoisted out of the member
    // loop; only the TTL-propagation arithmetic is member-local.
    if (config.enabled && rc.domain != nullptr) {
      netbase::Prefix fec;
      bool has_fec = true;
      switch (entry->source) {
        case routing::RouteSource::kBgp:
          if (entry->bgp_next_hop.is_unspecified()) {
            has_fec = false;  // eBGP exit
          } else {
            fec = netbase::Prefix::Host(entry->bgp_next_hop);
          }
          break;
        case routing::RouteSource::kIgp:
          fec = entry->prefix;
          break;
        case routing::RouteSource::kConnected:
          has_fec = false;
          break;
      }
      if (has_fec) {
        const auto binding = rc.domain->BindingOf(hop.neighbor, fec);
        if (binding && binding->kind != mpls::BindingKind::kImplicitNull) {
          impose = true;
          imposed_label =
              binding->kind == mpls::BindingKind::kExplicitNull
                  ? kExplicitNull
                  : binding->label;
        }
      }
    }
  }

  // Hoisted Forward(): same link, same arrival interface for the whole
  // run; only the jitter draw (per probe id) stays member-local.
  WORMHOLE_DCHECK(
      hop.link != topo::kNoLink && hop.neighbor != topo::kNoRouter,
      "run fast path over an unresolved next hop");
  const double base_delay = topology_->link(hop.link).delay_ms;
  const topo::InterfaceId arrival =
      topology_->EndOn(hop.link, hop.neighbor).id;
  const bool min_ttl_on_pop = rc.config->min_ttl_on_pop;
  const bool propagate = rc.config->ttl_propagate;
  const bool jitter = options_.delay_jitter_fraction > 0.0;

  // The member loop advances the SoA columns only. Swap-family runs (the
  // common LSP-interior case) never touch the arena packet at all — its
  // top-of-stack, elapsed time and hop count go stale and are written
  // back by StepBatchRow's prologue when the row next leaves the fast
  // path. Pops and impositions must restructure the label stack, so they
  // re-coherence exactly the packet fields they expose.
  for (std::size_t pos = begin; pos < end; ++pos) {
    const std::uint32_t s = b.slot[pos];
    EngineStats& pstats = b.per_slot_stats[s];
    ++pstats.hops_processed;
    switch (run) {
      case Run::kSwap: {
        b.ttl[pos] = static_cast<std::uint8_t>(b.ttl[pos] - 1);
        b.top_label[pos] = out_label;
        break;
      }
      case Run::kSwapExplicitNull: {
        b.ttl[pos] = static_cast<std::uint8_t>(b.ttl[pos] - 1);
        b.top_label[pos] = kExplicitNull;
        break;
      }
      case Run::kPop: {
        Packet& p = b.arena[s];
        const auto popped = static_cast<int>(
            static_cast<std::uint8_t>(b.ttl[pos] - 1));
        p.labels.pop_back();
        ++pstats.labels_popped;
        if (!p.labels.empty()) {
          // The buried entries were never column-resident, so the newly
          // exposed top is coherent in the packet.
          LabelStackEntry& exposed = p.labels.back();
          if (min_ttl_on_pop) {
            exposed.ttl = static_cast<std::uint8_t>(
                std::min(static_cast<int>(exposed.ttl), popped));
          }
          b.top_label[pos] = exposed.label;
          b.ttl[pos] = exposed.ttl;
        } else {
          if (min_ttl_on_pop) p.ip_ttl = std::min(p.ip_ttl, popped);
          b.top_label[pos] = kNoTopLabel;
          b.ttl[pos] =
              static_cast<std::uint8_t>(std::clamp(p.ip_ttl, 0, 255));
        }
        break;
      }
      case Run::kIp: {
        // Member eligibility guaranteed ip_ttl > 1, so the decrement
        // cannot expire here. Unlabelled rows keep the IP TTL in the
        // ttl column.
        b.ttl[pos] = static_cast<std::uint8_t>(b.ttl[pos] - 1);
        if (impose) {
          Packet& p = b.arena[s];
          p.ip_ttl = static_cast<int>(b.ttl[pos]);
          LabelStackEntry lse;
          lse.label = imposed_label;
          lse.ttl =
              static_cast<std::uint8_t>(propagate ? p.ip_ttl : 255);
          p.labels.push_back(lse);
          ++pstats.labels_pushed;
          b.top_label[pos] = lse.label;
          b.ttl[pos] = lse.ttl;
        }
        break;
      }
    }
    b.elapsed[pos] +=
        jitter ? JitteredDelay(base_delay, options_.delay_jitter_fraction,
                               b.arena[s].probe_id, hop.link)
               : base_delay;
    ++b.hops[pos];
    b.router[pos] = hop.neighbor;
    b.in_iface[pos] = arrival;
    // Every member got the identical label transform, so key equality
    // with the preceding member is preserved — record it so the next
    // round's run detection skips the full compare. The dirty bit defers
    // the packet write-back until the row next steps generically.
    b.flags[pos] = static_cast<std::uint8_t>(
        (pos == begin ? 0 : kFlagSameKeyAsPrev) | kFlagColumnsDirty);
  }
  return true;
}

void Engine::SendBatch(std::span<netbase::Packet> probes, BatchResult& b,
                       SendBatchOptions batch_options) const {
  const std::size_t n = probes.size();
  b.outcomes.clear();
  b.outcomes.resize(n);
  b.per_slot_stats.clear();
  b.per_slot_stats.resize(n);
  b.arena.clear();
  b.origin.clear();
  b.slot.clear();
  b.router.clear();
  b.in_iface.clear();
  b.ttl.clear();
  b.top_label.clear();
  b.flags.clear();
  b.elapsed.clear();
  b.hops.clear();
  b.arena.reserve(n);  // slot pointers must stay stable for the batch
  b.origin.reserve(n);
  b.slot.reserve(n);
  b.router.reserve(n);
  b.in_iface.reserve(n);
  b.ttl.reserve(n);
  b.top_label.reserve(n);
  b.flags.reserve(n);
  b.elapsed.reserve(n);
  b.hops.reserve(n);

  // Injection: exactly Send's preamble, per slot. Campaign batches share
  // one origin host, so the FindHost hash lookup is memoized on src.
  const topo::Host* origin = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    if (origin == nullptr || origin->address != probes[i].src) {
      origin = topology_->FindHost(probes[i].src);
      if (origin == nullptr) {
        throw std::invalid_argument(
            "SendBatch: probe.src is not an attached host");
      }
    }
    ++b.per_slot_stats[i].packets_injected;
    b.arena.push_back(std::move(probes[i]));
    Packet& p = b.arena.back();
    p.elapsed_ms += options_.host_stub_delay_ms;
    b.origin.push_back(origin->address);
    b.slot.push_back(static_cast<std::uint32_t>(i));
    b.router.push_back(origin->gateway);
    b.in_iface.push_back(origin->stub_interface);
    b.flags.push_back(0);
    if (p.has_labels()) {
      b.top_label.push_back(p.labels.back().label);
      b.ttl.push_back(p.labels.back().ttl);
    } else {
      b.top_label.push_back(kNoTopLabel);
      b.ttl.push_back(static_cast<std::uint8_t>(std::clamp(p.ip_ttl, 0, 255)));
    }
    b.elapsed.push_back(p.elapsed_ms);
    b.hops.push_back(p.hops_traversed);
  }

  // A row is run-shareable when its one-shot transit flags are clear,
  // nothing can expire this hop, and the top of stack is routable without
  // the UHP/reserved-label special cases.
  const auto eligible = [&b](std::size_t pos) {
    return (b.flags[pos] & kTransitFlags) == 0 && b.ttl[pos] > 1 &&
           (b.top_label[pos] == kNoTopLabel ||
            b.top_label[pos] >= netbase::kFirstUnreservedLabel);
  };

  // The prefetch ladder only pays for itself when the router caches and
  // sealed FIBs outrun the last-level working set; on testbed-size worlds
  // every line is already resident and the prefetches are pure issue
  // cost.
  const bool want_prefetch = router_cache_.size() >= 64;

  // lint:batch-hot-begin
  std::size_t live = n;
  while (live > 0) {
    live = GroupLiveByRouter(b, live);
    std::size_t pos = 0;
    while (pos < live) {
      // Two-stage software prefetch down the grouped order.
      if (want_prefetch && pos + kPrefetchFar < live) {
        const std::size_t ahead = pos + kPrefetchFar;
        __builtin_prefetch(&router_cache_[b.router[ahead]]);
        __builtin_prefetch(&b.arena[b.slot[ahead]]);
      }
      if (want_prefetch && pos + kPrefetchNear < live) {
        const std::size_t ahead = pos + kPrefetchNear;
        const RouterCache& rc = router_cache_[b.router[ahead]];
        const std::uint32_t label = b.top_label[ahead];
        if (label == kNoTopLabel) {
          rc.fib->PrefetchLookup(b.arena[b.slot[ahead]].dst);
        } else if (label >= netbase::kFirstUnreservedLabel) {
          const std::size_t index = label - netbase::kFirstUnreservedLabel;
          if (index + 1 < rc.ldp_op_offsets.size()) {
            __builtin_prefetch(&rc.ldp_op_offsets[index]);
          }
        }
      }

      // Grow a shared-decision run: adjacent rows at this router whose
      // packets carry the same forwarding key (batch order is preserved
      // by the stable grouping, so fan probes sit next to each other).
      // After a run's first round the members carry the same-key bit and
      // the compare short-circuits.
      std::size_t run_end = pos;
      if (eligible(pos)) {
        const Packet& lead = b.arena[b.slot[pos]];
        run_end = pos + 1;
        while (run_end < live && b.router[run_end] == b.router[pos] &&
               eligible(run_end) &&
               ((b.flags[run_end] & kFlagSameKeyAsPrev) != 0 ||
                SameForwardKey(lead, b.arena[b.slot[run_end]], b.hops[pos],
                               b.hops[run_end], b.top_label[pos],
                               b.top_label[run_end]))) {
          ++run_end;
        }
      }
      if (run_end - pos >= 2 && TryStepRunShared(b, pos, run_end)) {
        pos = run_end;
        continue;
      }
      StepBatchRow(b, pos);
      ++pos;
    }
  }
  // lint:batch-hot-end

  if (batch_options.commit_stats) {
    EngineStats total;
    for (const EngineStats& s : b.per_slot_stats) total += s;
    CommitStats(total);
  }
}

}  // namespace wormhole::sim
