# Empty dependencies file for fig08_rfa_probes.
# This may be replaced when dependencies are built.
