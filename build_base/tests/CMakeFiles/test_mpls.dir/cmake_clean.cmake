file(REMOVE_RECURSE
  "CMakeFiles/test_mpls.dir/test_mpls.cpp.o"
  "CMakeFiles/test_mpls.dir/test_mpls.cpp.o.d"
  "test_mpls"
  "test_mpls.pdb"
  "test_mpls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
