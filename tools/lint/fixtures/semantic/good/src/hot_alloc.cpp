// sem-hot-alloc fixture, clean counterpart: the hot path writes into a
// pre-sized member scratch buffer. Growth calls on members are owned by
// the batch-heap region lint, not this rule — steady-state appends into
// reserved capacity are the repo's documented pattern.
#include <array>

namespace fix {

class Engine {
 public:
  int Send(int packet);

 private:
  int Step(int value);
  int Classify(int value);

  std::array<int, 8> scratch_{};
};

int Engine::Send(int packet) { return Step(packet); }

int Engine::Step(int value) { return Classify(value + 1); }

int Engine::Classify(int value) {
  scratch_[0] = value;  // caller-owned storage, no allocation
  return scratch_[0];
}

}  // namespace fix
