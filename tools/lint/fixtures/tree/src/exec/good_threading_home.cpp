// Fixture: src/exec is the designated home for threading primitives.
#include <mutex>
#include <thread>

void Fine() {
  std::mutex m;
  std::thread t([] {});
  m.lock();
  m.unlock();
  t.join();
}
