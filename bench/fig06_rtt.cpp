// Fig. 6: RTT step decomposition. An invisible tunnel with slow interior
// links shows up as one large RTT jump between the Ingress and Egress LER;
// revealing the hops and measuring them directly decomposes the jump
// across the interior.
#include <iomanip>
#include <iostream>

#include "bench/common.h"
#include "mpls/config.h"
#include "probe/prober.h"
#include "reveal/revelator.h"
#include "sim/network.h"
#include "topo/topology.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader("RTT correction with hop revelation", "Fig. 6");

  // A transit AS with seven slow interior hops (the paper's AS3549 case
  // showed a ~50 ms jump decomposed over 7 hops).
  topo::Topology topology;
  topology.AddAs(1, "src");
  topology.AddAs(2, "slow-mpls");
  topology.AddAs(3, "dst");
  const auto gw = topology.AddRouter(1, "gw", topo::Vendor::kCiscoIos);
  const auto in = topology.AddRouter(2, "in", topo::Vendor::kCiscoIos);
  topo::RouterId previous = in;
  for (int i = 0; i < 7; ++i) {
    const auto m = topology.AddRouter(2, "lsr" + std::to_string(i),
                                      topo::Vendor::kCiscoIos);
    topology.AddLink(previous, m, {.delay_ms = 7.0});
    previous = m;
  }
  const auto out = topology.AddRouter(2, "out", topo::Vendor::kCiscoIos);
  topology.AddLink(previous, out, {.delay_ms = 7.0});
  const auto dst = topology.AddRouter(3, "dst", topo::Vendor::kCiscoIos);
  topology.AddLink(gw, in, {.delay_ms = 1.0});
  topology.AddLink(out, dst, {.delay_ms = 1.0});
  const auto vp = topology.AttachHost(gw, "VP");

  mpls::MplsConfigMap configs(topology);
  configs.EnableAs(2, {.ttl_propagate = false,
                       .ldp_policy = mpls::LdpPolicy::kAllPrefixes});
  sim::Network network(topology, configs,
                       routing::BgpPolicy{.stub_ases = {1, 3}});
  probe::Prober prober(network.engine(), vp);

  // The monitoring view: one huge step between the LERs.
  const auto invisible = prober.Traceroute(topology.router(dst).loopback);
  std::cout << std::fixed << std::setprecision(1);
  std::cout << "--- invisible trace (what a monitor sees) ---\n";
  std::cout << "hop   RTT (ms)   step\n";
  double previous_rtt = 0.0;
  double jump = 0.0;
  for (const auto& hop : invisible.hops) {
    if (!hop.responded()) continue;
    const double step = hop.rtt_ms - previous_rtt;
    jump = std::max(jump, step);
    std::cout << std::setw(3) << hop.probe_ttl << std::setw(11)
              << hop.rtt_ms << std::setw(9) << step << "\n";
    previous_rtt = hop.rtt_ms;
  }

  // Reveal the tunnel (BRPR here: all-prefix LDP), then measure each
  // hidden hop directly — the paper's corrected curve.
  const auto last3 = invisible.LastResponders(3);
  reveal::Revelator revelator(prober);
  const auto revelation = revelator.Reveal(last3[0], last3[1]);
  std::cout << "\n--- after revelation (" << reveal::ToString(
                   revelation.method)
            << ", " << revelation.revealed.size()
            << " hidden hops, pinged directly) ---\n";
  std::cout << "hop            RTT (ms)   step\n";
  previous_rtt = prober.Ping(last3[0]).rtt_ms;
  std::cout << "  ingress" << std::setw(11) << previous_rtt << "\n";
  std::vector<netbase::Ipv4Address> path = revelation.revealed;
  path.push_back(revelation.egress);
  int index = 1;
  for (const auto hop : path) {
    const auto ping = prober.Ping(hop);
    if (!ping.responded) continue;
    std::cout << std::setw(9) << ("+" + std::to_string(index++))
              << std::setw(11) << ping.rtt_ms << std::setw(9)
              << ping.rtt_ms - previous_rtt << "\n";
    previous_rtt = ping.rtt_ms;
  }

  std::cout << "\ninvisible trace: one jump of " << jump
            << " ms between the LERs; the revealed interior decomposes it "
               "into ~14 ms per-hop steps\n(paper: a ~50 ms one-way jump "
               "decomposed over 7 hops in AS3549).\n";
  return 0;
}
