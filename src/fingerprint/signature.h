// TTL-based router fingerprinting [Vanaubel et al., IMC 2013] — paper
// Sec. 2.3 / Table 1.
//
// A router's pair-signature is <iTTL(time-exceeded), iTTL(echo-reply)>,
// each initial TTL inferred by rounding the received TTL up to the nearest
// of {64, 128, 255}. The signature classes map to vendors:
//   <255,255> Cisco (IOS, IOS XR)   <255,64> Juniper (Junos)
//   <128,128> Juniper (JunosE)      <64,64>  Brocade/Alcatel/Linux
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netbase/ipv4.h"
#include "probe/prober.h"

namespace wormhole::fingerprint {

struct Signature {
  int time_exceeded_initial = 0;
  int echo_reply_initial = 0;

  friend auto operator<=>(const Signature&, const Signature&) = default;

  [[nodiscard]] std::string ToString() const {
    return "<" + std::to_string(time_exceeded_initial) + "," +
           std::to_string(echo_reply_initial) + ">";
  }
};

/// Vendor classes distinguishable by pair-signature.
enum class SignatureClass : std::uint8_t {
  kCisco,          ///< <255,255>
  kJuniperJunos,   ///< <255,64>
  kJuniperJunosE,  ///< <128,128>
  kBrocadeLinux,   ///< <64,64>
  kUnknown,
};

const char* ToString(SignatureClass cls);

/// Maps a signature to its class (Table 1).
SignatureClass Classify(const Signature& signature);

/// True when the signature behaves like Juniper Junos for RTLA purposes
/// (the echo-reply initial TTL is strictly below the time-exceeded one).
bool UsableForRtla(const Signature& signature);

/// Collects signatures of addresses seen in traces: the time-exceeded
/// initial TTL comes from the trace hop, the echo-reply one from a
/// dedicated ping. Caches per address.
class SignatureCollector {
 public:
  /// Records a time-exceeded reply TTL observed for `address`.
  void RecordTimeExceeded(netbase::Ipv4Address address, int reply_ip_ttl);
  /// Records an echo-reply TTL observed for `address`.
  void RecordEchoReply(netbase::Ipv4Address address, int reply_ip_ttl);

  /// Probes `address` with `prober` (ping) if no echo-reply seen yet.
  void EnsureEchoReply(probe::Prober& prober, netbase::Ipv4Address address);

  /// Would EnsureEchoReply ping? (No echo-reply initial TTL recorded for
  /// `address` yet.) Lets callers route the ping through a cache while
  /// keeping EnsureEchoReply's exact trigger condition.
  [[nodiscard]] bool NeedsEchoReply(netbase::Ipv4Address address) const;

  /// The pair-signature of `address`, if both halves were observed.
  [[nodiscard]] std::optional<Signature> SignatureOf(
      netbase::Ipv4Address address) const;
  [[nodiscard]] SignatureClass ClassOf(netbase::Ipv4Address address) const;

  /// Every (address, signature) pair observed so far, sorted by address.
  /// The store itself is a hash map (the campaign reduce records per
  /// hop, so lookups are the hot path); report code must iterate this
  /// sorted copy.
  [[nodiscard]] std::vector<std::pair<netbase::Ipv4Address, Signature>>
  SortedEntries() const;

  [[nodiscard]] std::size_t size() const { return partial_.size(); }

 private:
  // initial TTLs; 0 = not yet observed.
  std::unordered_map<netbase::Ipv4Address, Signature> partial_;
};

}  // namespace wormhole::fingerprint
