// Suppression fixture: the same violations as the bad tree, silenced
// with each of the three determinism-lint suppression forms. The
// semantic lint must honor all of them.
// lint:allow-file(sem-hot-alloc): fixture exercises file-level allows
#include <cstdlib>
#include <vector>

namespace fix {

class Engine {
 public:
  int Send(int packet);

 private:
  int Classify(int value);
};

class Probe {
 public:
  int Send(int packet) { return Jitter(packet); }

 private:
  int Jitter(int value);
};

int Engine::Send(int packet) { return Classify(packet); }

int Engine::Classify(int value) {
  std::vector<int> hops;  // silenced by the file-level allow above
  hops.push_back(value);
  return static_cast<int>(hops.size());
}

int Probe::Jitter(int value) {
  // lint:allow-next-line(sem-nondet-reach): fixture exercises next-line
  return value + rand() % 3;
}

class Cache {
 public:
  int Get(int key) const {
    hits_ = hits_ + 1;  // lint:allow(sem-const-mutation): fixture inline
    return key + hits_;
  }

 private:
  mutable int hits_ = 0;
};

}  // namespace fix
