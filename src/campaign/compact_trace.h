// Packed per-VP trace storage for the streaming campaign.
//
// A full probe::TraceResult costs ~64 bytes per hop plus a label-stack
// allocation per labelled hop — a million-trace campaign buffers over a
// gigabyte before the reduce even starts. The streaming pipeline instead
// compacts each retired shard of traces into this log (8 bytes per hop,
// 12 per trace) and frees the originals; the sequential reduce later
// re-inflates one trace at a time.
//
// Contract: Inflate(i) reproduces every field the campaign reduce reads —
// target, flow id, reached/unreachable flags, and per hop the probe TTL,
// responder address, reply kind and reply IP-TTL. Label stacks and RTTs
// are NOT retained: no streaming consumer (dataset building, UHP/candidate
// analysis, fingerprinting, FRPLA/RTLA, the report) reads them, and
// keeping them is exactly the memory the mode exists to not spend.
#pragma once

#include <cstdint>
#include <vector>

#include "probe/trace.h"

namespace wormhole::campaign {

class CompactTraceLog {
 public:
  /// Appends one finished trace (hop TTLs must be consecutive from
  /// hops[0].probe_ttl, which is what the tracer produces).
  void Append(const probe::TraceResult& trace);

  /// Rebuilds trace `i` (labels empty, RTTs zero — see file comment).
  [[nodiscard]] probe::TraceResult Inflate(std::size_t i) const;

  /// Rebuilds trace `i` into `out`, reusing its hop storage. The reduce
  /// inflates every trace up to three times (dataset, analysis, FRPLA);
  /// a reused scratch keeps those passes allocation-free after the first
  /// trace.
  void InflateInto(std::size_t i, probe::TraceResult& out) const;

  /// Appends trace `i` of `other` verbatim (header rebased onto this
  /// log's hop array). This is how delta re-probing splices cached traces
  /// into a fresh per-VP log without an Inflate/Append round trip.
  void AppendFrom(const CompactTraceLog& other, std::size_t i);

  [[nodiscard]] std::size_t size() const { return traces_.size(); }
  [[nodiscard]] bool empty() const { return traces_.empty(); }
  [[nodiscard]] std::size_t hop_count() const { return hops_.size(); }

  /// Bytes retained, for memory accounting in benches/tests.
  [[nodiscard]] std::size_t RetainedBytes() const {
    return traces_.capacity() * sizeof(Header) +
           hops_.capacity() * sizeof(PackedHop);
  }

 private:
  struct Header {
    netbase::Ipv4Address source;
    netbase::Ipv4Address target;
    std::uint32_t hop_begin = 0;
    std::uint16_t flow_id = 0;
    std::uint8_t first_ttl = 0;
    std::uint8_t flags = 0;  ///< bit 0: reached, bit 1: unreachable
  };
  struct PackedHop {
    std::uint32_t address = 0;  ///< 0 = timeout ("*")
    std::uint8_t reply_kind = 0;
    std::uint8_t reply_ip_ttl = 0;
  };

  std::vector<Header> traces_;
  std::vector<PackedHop> hops_;
};

}  // namespace wormhole::campaign
