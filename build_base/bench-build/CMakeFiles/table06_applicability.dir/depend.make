# Empty dependencies file for table06_applicability.
# This may be replaced when dependencies are built.
