file(REMOVE_RECURSE
  "../bench/fig06_rtt"
  "../bench/fig06_rtt.pdb"
  "CMakeFiles/fig06_rtt.dir/fig06_rtt.cpp.o"
  "CMakeFiles/fig06_rtt.dir/fig06_rtt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
