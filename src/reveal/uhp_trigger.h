// UHP presence detection.
//
// A totally invisible (UHP + no-ttl-propagate) cloud leaves no LSR, no
// egress, no RFC4950 label — the paper's techniques cannot reveal it
// (Sec. 3.4). But it is not traceless: the UHP egress consumes one IP-TTL
// without ever answering, so the first router *behind* the cloud responds
// to two consecutive probe TTLs. This duplicate-hop artifact — which our
// calibrated data plane reproduces — is exactly the UHP trigger the
// authors' follow-up work (TNT) built on, and the natural completion of
// the paper's "traceroute with triggers" vision (Sec. 8).
#pragma once

#include <vector>

#include "probe/trace.h"

namespace wormhole::reveal {

struct UhpSuspicion {
  /// The address that answered twice (the router just behind the cloud).
  netbase::Ipv4Address duplicate;
  /// Probe TTL of the first of the duplicated answers.
  int first_ttl = 0;
  /// The last responding hop before the duplicate — the suspected Ingress
  /// LER side of the invisible UHP cloud (unset if the trace starts here).
  std::optional<netbase::Ipv4Address> before;
};

/// Scans a trace for consecutive duplicate responders. Each run of k+1
/// identical answers suggests k absorbed TTLs (k UHP tunnel exits in
/// series is rare; k is reported via consecutive suspicions).
std::vector<UhpSuspicion> DetectUhpSuspicions(const probe::TraceResult& trace);

/// Convenience: true if the trace carries at least one UHP signature.
bool LooksLikeUhp(const probe::TraceResult& trace);

}  // namespace wormhole::reveal
