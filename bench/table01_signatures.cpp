// Table 1: router signatures <iTTL(time-exceeded), iTTL(echo-reply)> per
// vendor, inferred purely from probing the emulation testbed.
#include <iostream>

#include "analysis/report.h"
#include "bench/common.h"
#include "fingerprint/signature.h"
#include "gen/gns3.h"
#include "probe/prober.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader("Router signatures by vendor (probed, not assumed)",
                     "Table 1");

  analysis::TextTable table(
      {"Router Signature", "Router Brand and OS", "probed routers"});

  for (const auto vendor :
       {topo::Vendor::kCiscoIos, topo::Vendor::kJuniperJunos,
        topo::Vendor::kJuniperJunosE, topo::Vendor::kBrocade}) {
    gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault,
                              .as2_vendor = vendor});
    probe::Prober prober(testbed.engine(), testbed.vantage_point());
    fingerprint::SignatureCollector collector;
    const auto trace = prober.Traceroute(testbed.Address("CE2.left"));
    int probed = 0;
    std::optional<fingerprint::Signature> signature;
    for (const auto& hop : trace.hops) {
      if (!hop.address) continue;
      if (testbed.topology().AsOfAddress(*hop.address) != 2) continue;
      collector.RecordTimeExceeded(*hop.address, hop.reply_ip_ttl);
      collector.EnsureEchoReply(prober, *hop.address);
      if (const auto s = collector.SignatureOf(*hop.address)) {
        signature = s;
        ++probed;
      }
    }
    table.AddRow({signature ? signature->ToString() : "?",
                  signature ? std::string(fingerprint::ToString(
                                  fingerprint::Classify(*signature)))
                            : "?",
                  analysis::TextTable::Num(static_cast<std::size_t>(probed))});
  }
  std::cout << table.ToString();
  std::cout << "\npaper: <255,255> Cisco, <255,64> Juniper Junos, "
               "<128,128> JunosE, <64,64> Brocade/Alcatel/Linux\n";
  return 0;
}
