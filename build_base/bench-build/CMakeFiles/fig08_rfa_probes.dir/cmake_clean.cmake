file(REMOVE_RECURSE
  "../bench/fig08_rfa_probes"
  "../bench/fig08_rfa_probes.pdb"
  "CMakeFiles/fig08_rfa_probes.dir/fig08_rfa_probes.cpp.o"
  "CMakeFiles/fig08_rfa_probes.dir/fig08_rfa_probes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_rfa_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
