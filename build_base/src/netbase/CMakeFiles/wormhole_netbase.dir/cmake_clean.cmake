file(REMOVE_RECURSE
  "CMakeFiles/wormhole_netbase.dir/ipv4.cpp.o"
  "CMakeFiles/wormhole_netbase.dir/ipv4.cpp.o.d"
  "CMakeFiles/wormhole_netbase.dir/stats.cpp.o"
  "CMakeFiles/wormhole_netbase.dir/stats.cpp.o.d"
  "libwormhole_netbase.a"
  "libwormhole_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
