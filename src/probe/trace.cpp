#include "probe/trace.h"

#include <sstream>

namespace wormhole::probe {

std::optional<int> TraceResult::HopOf(Ipv4Address address) const {
  for (const Hop& hop : hops) {
    if (hop.address == address) return hop.probe_ttl;
  }
  return std::nullopt;
}

std::vector<Ipv4Address> TraceResult::LastResponders(std::size_t n) const {
  std::vector<Ipv4Address> out;
  for (auto it = hops.rbegin(); it != hops.rend() && out.size() < n; ++it) {
    if (it->address) out.push_back(*it->address);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

bool TraceResult::HasExplicitMpls() const {
  for (const Hop& hop : hops) {
    if (hop.has_labels()) return true;
  }
  return false;
}

int TraceResult::LastRespondingTtl() const {
  for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
    if (it->address) return it->probe_ttl;
  }
  return 0;
}

std::string TraceResult::Format(
    const std::function<std::string(Ipv4Address)>& name_of) const {
  std::ostringstream os;
  os << "pt " << name_of(target) << "\n";
  for (const Hop& hop : hops) {
    os << "  " << hop.probe_ttl << "  ";
    if (!hop.address) {
      os << "*\n";
      continue;
    }
    os << name_of(*hop.address);
    if (hop.reply_kind == netbase::PacketKind::kEchoReply) {
      // Reached the destination.
    } else if (hop.reply_kind ==
               netbase::PacketKind::kDestinationUnreachable) {
      os << " !U";
    }
    os << " [" << hop.reply_ip_ttl << "]";
    for (const auto& lse : hop.labels) {
      os << "\n        MPLS " << netbase::ToString(lse);
    }
    os << "\n";
  }
  return os.str();
}

int InferInitialTtl(int received_ttl) {
  if (received_ttl <= 64) return 64;
  if (received_ttl <= 128) return 128;
  return 255;
}

int PathLengthFromTtl(int received_ttl) {
  return InferInitialTtl(received_ttl) - received_ttl;
}

}  // namespace wormhole::probe
