// Direct data-plane semantics tests on hand-built topologies (the GNS3
// byte-level checks live in test_gns3.cpp).
#include <gtest/gtest.h>

#include "mpls/config.h"
#include "probe/multipath.h"
#include "probe/prober.h"
#include "sim/network.h"
#include "sim/vendor.h"
#include "topo/topology.h"

namespace wormhole::sim {
namespace {

using netbase::Ipv4Address;
using netbase::Packet;
using netbase::PacketKind;
using topo::RouterId;
using topo::Vendor;

TEST(VendorBehavior, Table1InitialTtls) {
  EXPECT_EQ(BehaviorOf(Vendor::kCiscoIos).initial_ttl_time_exceeded, 255);
  EXPECT_EQ(BehaviorOf(Vendor::kCiscoIos).initial_ttl_echo_reply, 255);
  EXPECT_EQ(BehaviorOf(Vendor::kJuniperJunos).initial_ttl_echo_reply, 64);
  EXPECT_EQ(BehaviorOf(Vendor::kJuniperJunosE).initial_ttl_time_exceeded,
            128);
  EXPECT_EQ(BehaviorOf(Vendor::kBrocade).initial_ttl_echo_reply, 64);
}

// One AS, a plain IP chain: r0 - r1 - ... - r(n-1), host behind r0.
struct Chain {
  topo::Topology topology;
  std::unique_ptr<mpls::MplsConfigMap> configs;
  std::unique_ptr<Network> network;
  Ipv4Address vp;

  explicit Chain(int n, Vendor vendor = Vendor::kCiscoIos) {
    topology.AddAs(1, "chain");
    for (int i = 0; i < n; ++i) {
      topology.AddRouter(1, "r" + std::to_string(i), vendor);
    }
    for (int i = 0; i + 1 < n; ++i) {
      topology.AddLink(static_cast<RouterId>(i),
                       static_cast<RouterId>(i + 1));
    }
    vp = topology.AttachHost(0, "VP");
    configs = std::make_unique<mpls::MplsConfigMap>(topology);
    network = std::make_unique<Network>(topology, *configs);
  }
};

TEST(Engine, TraceOfPlainChainShowsEveryHop) {
  Chain chain(5);
  probe::Prober prober(chain.network->engine(), chain.vp);
  const auto trace = prober.Traceroute(chain.topology.router(4).loopback);
  ASSERT_TRUE(trace.reached);
  ASSERT_EQ(trace.hops.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(trace.hops[static_cast<std::size_t>(i)].address.has_value());
    // Hop i+1 replies from router i (its incoming interface or loopback).
    const auto owner = chain.topology.FindRouterByAddress(
        *trace.hops[static_cast<std::size_t>(i)].address);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(*owner, static_cast<RouterId>(i));
  }
}

TEST(Engine, ReturnTtlCountsThePathBack) {
  Chain chain(5);
  probe::Prober prober(chain.network->engine(), chain.vp);
  const auto trace = prober.Traceroute(chain.topology.router(4).loopback);
  // Router i is i hops from the gateway; its 255-initial reply loses i
  // decrements on the way back (i-1 routers + the gateway's own forward).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(trace.hops[static_cast<std::size_t>(i)].reply_ip_ttl, 255 - i);
  }
}

TEST(Engine, EchoRepliesDieOnVeryLongPaths) {
  // 70 routers: a Linux-like <64,64> responder's echo-reply cannot make it
  // back, while Cisco time-exceeded (255) can. traceroute "sees" the hop,
  // ping does not — a classic asymmetry the fingerprinting must survive.
  Chain chain(70, Vendor::kLinux);
  probe::Prober prober(chain.network->engine(), chain.vp);
  const auto far = chain.topology.router(69).loopback;
  const auto ping = prober.Ping(far);
  EXPECT_FALSE(ping.responded);
  const auto trace = prober.Traceroute(far, {.max_ttl = 80});
  // The trace stalls near the far end: time-exceeded replies (initial 64
  // for Linux) from the last routers can't survive the return path.
  EXPECT_FALSE(trace.reached);
}

TEST(Engine, SendRejectsNonHostSource) {
  Chain chain(3);
  Packet p;
  p.src = chain.topology.router(1).loopback;  // not a host
  p.dst = chain.topology.router(2).loopback;
  EXPECT_THROW(chain.network->engine().Send(std::move(p)),
               std::invalid_argument);
}

TEST(Engine, HostToHostProbeGetsHostReply) {
  Chain chain(3);
  const Ipv4Address other = chain.topology.AttachHost(2, "target");
  // Hosts were added after route computation for VP... rebuild.
  chain.network = std::make_unique<Network>(chain.topology, *chain.configs);
  probe::Prober prober(chain.network->engine(), chain.vp);
  const auto ping = prober.Ping(other);
  ASSERT_TRUE(ping.responded);
  // Host initial TTL 64, 3 routers + delivery decrements on the way back.
  EXPECT_EQ(ping.reply_ip_ttl, 64 - 3);
}

// --- ECMP -------------------------------------------------------------------

// Two equal-cost disjoint paths:  r0 -< r1 | r2 >- r3 - r4(target side)
struct Diamond {
  topo::Topology topology;
  std::unique_ptr<mpls::MplsConfigMap> configs;
  std::unique_ptr<Network> network;
  Ipv4Address vp;

  explicit Diamond(bool ecmp = true) {
    topology.AddAs(1, "diamond");
    for (int i = 0; i < 5; ++i) {
      topology.AddRouter(1, "d" + std::to_string(i), Vendor::kCiscoIos);
    }
    topology.AddLink(0, 1);
    topology.AddLink(0, 2);
    topology.AddLink(1, 3);
    topology.AddLink(2, 3);
    topology.AddLink(3, 4);
    vp = topology.AttachHost(0, "VP");
    configs = std::make_unique<mpls::MplsConfigMap>(topology);
    network = std::make_unique<Network>(topology, *configs,
                                        routing::BgpPolicy{},
                                        EngineOptions{.ecmp_enabled = ecmp});
  }
};

TEST(Engine, ParisTracerouteIsFlowStable) {
  Diamond diamond;
  probe::Prober prober(diamond.network->engine(), diamond.vp);
  const auto target = diamond.topology.router(4).loopback;
  // Same flow id: repeated traces take the identical path.
  const auto t1 = prober.Traceroute(target, {.flow_id = 7});
  const auto t2 = prober.Traceroute(target, {.flow_id = 7});
  ASSERT_EQ(t1.hops.size(), t2.hops.size());
  for (std::size_t i = 0; i < t1.hops.size(); ++i) {
    EXPECT_EQ(t1.hops[i].address, t2.hops[i].address);
  }
}

TEST(Engine, DifferentFlowsCanTakeDifferentBranches) {
  Diamond diamond;
  probe::Prober prober(diamond.network->engine(), diamond.vp);
  const auto target = diamond.topology.router(4).loopback;
  std::set<Ipv4Address> second_hops;
  for (std::uint16_t flow = 0; flow < 32; ++flow) {
    const auto trace = prober.Traceroute(target, {.flow_id = flow});
    ASSERT_GE(trace.hops.size(), 2u);
    ASSERT_TRUE(trace.hops[1].address.has_value());
    second_hops.insert(*trace.hops[1].address);
  }
  EXPECT_EQ(second_hops.size(), 2u);  // both branches exercised
}

TEST(Engine, EcmpDisabledPinsOnePath) {
  Diamond diamond(/*ecmp=*/false);
  probe::Prober prober(diamond.network->engine(), diamond.vp);
  const auto target = diamond.topology.router(4).loopback;
  std::set<Ipv4Address> second_hops;
  for (std::uint16_t flow = 0; flow < 32; ++flow) {
    const auto trace = prober.Traceroute(target, {.flow_id = flow});
    second_hops.insert(*trace.hops[1].address);
  }
  EXPECT_EQ(second_hops.size(), 1u);
}

TEST(Engine, JitterVariesRttsDeterministically) {
  Chain chain(6);
  chain.network = std::make_unique<Network>(
      chain.topology, *chain.configs, routing::BgpPolicy{},
      EngineOptions{.delay_jitter_fraction = 0.3});
  probe::Prober prober(chain.network->engine(), chain.vp);
  const auto target = chain.topology.router(5).loopback;

  // Different probe ids => different RTTs; the spread stays within the
  // jitter envelope (base path is 2*5 links of 1 ms + stubs).
  std::set<double> rtts;
  for (int i = 0; i < 10; ++i) {
    const auto ping = prober.Ping(target);
    ASSERT_TRUE(ping.responded);
    rtts.insert(ping.rtt_ms);
    EXPECT_GT(ping.rtt_ms, 10.0 * 0.7);
    EXPECT_LT(ping.rtt_ms, 10.0 * 1.3 + 1.0);
  }
  EXPECT_GT(rtts.size(), 5u);

  // Zero jitter: every ping takes exactly the same time.
  Chain steady(6);
  probe::Prober steady_prober(steady.network->engine(), steady.vp);
  const auto first = steady_prober.Ping(steady.topology.router(5).loopback);
  const auto second = steady_prober.Ping(steady.topology.router(5).loopback);
  EXPECT_DOUBLE_EQ(first.rtt_ms, second.rtt_ms);
}

TEST(MultiPath, EnumeratesBothBranchesOfADiamond) {
  Diamond diamond;
  probe::Prober prober(diamond.network->engine(), diamond.vp);
  const auto result = probe::EnumeratePaths(
      prober, diamond.topology.router(4).loopback, {.flows = 32});
  EXPECT_EQ(result.distinct_paths(), 2u);
  EXPECT_EQ(result.MaxWidth(), 2u);  // the fan-out at the branch hop
  EXPECT_EQ(result.flows_probed, 32);
}

TEST(MultiPath, SinglePathOnAChain) {
  Chain chain(4);
  probe::Prober prober(chain.network->engine(), chain.vp);
  const auto result = probe::EnumeratePaths(
      prober, chain.topology.router(3).loopback, {.flows = 8});
  EXPECT_EQ(result.distinct_paths(), 1u);
  EXPECT_EQ(result.MaxWidth(), 1u);
}

// --- MPLS TTL mechanics on a purpose-built tunnel ---------------------------

// AS1(h-gw) -- AS2: in - m1 - m2 - out -- AS3(dst)
struct TunnelWorld {
  topo::Topology topology;
  std::unique_ptr<mpls::MplsConfigMap> configs;
  std::unique_ptr<Network> network;
  Ipv4Address vp;

  TunnelWorld(bool propagate, mpls::Popping popping,
              Vendor vendor = Vendor::kCiscoIos) {
    topology.AddAs(1, "src");
    topology.AddAs(2, "mpls");
    topology.AddAs(3, "dst");
    const RouterId gw = topology.AddRouter(1, "gw", Vendor::kCiscoIos);
    const RouterId in = topology.AddRouter(2, "in", vendor);
    const RouterId m1 = topology.AddRouter(2, "m1", vendor);
    const RouterId m2 = topology.AddRouter(2, "m2", vendor);
    const RouterId out = topology.AddRouter(2, "out", vendor);
    const RouterId dst = topology.AddRouter(3, "dst", Vendor::kCiscoIos);
    topology.AddLink(gw, in);
    topology.AddLink(in, m1);
    topology.AddLink(m1, m2);
    topology.AddLink(m2, out);
    topology.AddLink(out, dst);
    vp = topology.AttachHost(gw, "VP");
    configs = std::make_unique<mpls::MplsConfigMap>(topology);
    mpls::MplsConfigMap::AsOptions options;
    options.ttl_propagate = propagate;
    options.popping = popping;
    options.ldp_policy = mpls::LdpPolicy::kAllPrefixes;
    configs->EnableAs(2, options);
    routing::BgpPolicy policy;
    policy.stub_ases = {1, 3};
    network = std::make_unique<Network>(topology, *configs, policy);
  }
};

TEST(MplsTtl, PropagateExposesInteriorWithQuotedLabels) {
  TunnelWorld world(/*propagate=*/true, mpls::Popping::kPhp);
  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace =
      prober.Traceroute(world.topology.router(5).loopback);  // dst
  ASSERT_TRUE(trace.reached);
  EXPECT_EQ(trace.hops.size(), 6u);
  EXPECT_TRUE(trace.HasExplicitMpls());
  // m1 and m2 quote labels; the Egress LER does not.
  EXPECT_TRUE(trace.hops[2].has_labels());
  EXPECT_TRUE(trace.hops[3].has_labels());
  EXPECT_FALSE(trace.hops[4].has_labels());
}

TEST(MplsTtl, NoPropagateHidesInterior) {
  TunnelWorld world(/*propagate=*/false, mpls::Popping::kPhp);
  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace = prober.Traceroute(world.topology.router(5).loopback);
  ASSERT_TRUE(trace.reached);
  // gw, in, out, dst — m1/m2 gone.
  EXPECT_EQ(trace.hops.size(), 4u);
  EXPECT_FALSE(trace.HasExplicitMpls());
}

TEST(MplsTtl, UhpHidesTheEgressToo) {
  TunnelWorld world(/*propagate=*/false, mpls::Popping::kUhp);
  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace = prober.Traceroute(world.topology.router(5).loopback);
  ASSERT_TRUE(trace.reached);
  // gw, in, dst — even "out" is gone.
  EXPECT_EQ(trace.hops.size(), 3u);
}

TEST(MplsTtl, Rfc4950CanBeDisabled) {
  TunnelWorld world(/*propagate=*/true, mpls::Popping::kPhp);
  for (const topo::Router& router : world.topology.routers()) {
    if (router.asn == 2) world.configs->Mutable(router.id).rfc4950 = false;
  }
  world.network =
      std::make_unique<Network>(world.topology, *world.configs,
                                routing::BgpPolicy{.stub_ases = {1, 3}});
  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace = prober.Traceroute(world.topology.router(5).loopback);
  ASSERT_TRUE(trace.reached);
  // Interior hops still visible (ttl-propagate) but nothing is quoted.
  EXPECT_EQ(trace.hops.size(), 6u);
  EXPECT_FALSE(trace.HasExplicitMpls());
}

TEST(MplsTtl, IcmpAlongLspInflatesInteriorReturnPaths) {
  TunnelWorld world(/*propagate=*/true, mpls::Popping::kPhp);
  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace = prober.Traceroute(world.topology.router(5).loopback);
  // The first LSR's reply detours via the tunnel end: its return TTL is
  // *lower* than the second LSR's (the inversion seen in Fig. 4a).
  EXPECT_LT(trace.hops[2].reply_ip_ttl, trace.hops[3].reply_ip_ttl);

  // With the behaviour off, the detour disappears and return TTLs become
  // monotonically decreasing again.
  for (const topo::Router& router : world.topology.routers()) {
    if (router.asn == 2) {
      world.configs->Mutable(router.id).icmp_along_lsp = false;
    }
  }
  world.network =
      std::make_unique<Network>(world.topology, *world.configs,
                                routing::BgpPolicy{.stub_ases = {1, 3}});
  probe::Prober direct_prober(world.network->engine(), world.vp);
  const auto direct =
      direct_prober.Traceroute(world.topology.router(5).loopback);
  EXPECT_GT(direct.hops[2].reply_ip_ttl, direct.hops[3].reply_ip_ttl);
}

TEST(MplsTtl, MinRuleCopiesLseTtlOnlyWhenLower) {
  // Cisco egress (reply initial 255): the return tunnel decrements count.
  TunnelWorld cisco(/*propagate=*/false, mpls::Popping::kPhp,
                    Vendor::kCiscoIos);
  probe::Prober cisco_prober(cisco.network->engine(), cisco.vp);
  const auto cisco_ping =
      cisco_prober.Ping(cisco.topology.router(4).loopback);  // "out"
  ASSERT_TRUE(cisco_ping.responded);
  // 255 initial; return tunnel out->in hides m1,m2 but min rule charges
  // them: path out..gw = 4 hops + VP delivery.
  EXPECT_EQ(cisco_ping.reply_ip_ttl, 251);

  // Juniper egress (echo-reply initial 64): LSE-TTL (255-) never dips below
  // 64, so the interior is NOT charged: only in->gw + delivery remain.
  TunnelWorld juniper(/*propagate=*/false, mpls::Popping::kPhp,
                      Vendor::kJuniperJunos);
  probe::Prober juniper_prober(juniper.network->engine(), juniper.vp);
  const auto juniper_ping =
      juniper_prober.Ping(juniper.topology.router(4).loopback);
  ASSERT_TRUE(juniper_ping.responded);
  EXPECT_EQ(juniper_ping.reply_ip_ttl, 62);
}

}  // namespace
}  // namespace wormhole::sim
