
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_golden_campaign.cpp" "tests/CMakeFiles/test_golden_campaign.dir/test_golden_campaign.cpp.o" "gcc" "tests/CMakeFiles/test_golden_campaign.dir/test_golden_campaign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_base/src/analysis/CMakeFiles/wormhole_analysis.dir/DependInfo.cmake"
  "/root/repo/build_base/src/campaign/CMakeFiles/wormhole_campaign.dir/DependInfo.cmake"
  "/root/repo/build_base/src/gen/CMakeFiles/wormhole_gen.dir/DependInfo.cmake"
  "/root/repo/build_base/src/reveal/CMakeFiles/wormhole_reveal.dir/DependInfo.cmake"
  "/root/repo/build_base/src/io/CMakeFiles/wormhole_io.dir/DependInfo.cmake"
  "/root/repo/build_base/src/fingerprint/CMakeFiles/wormhole_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build_base/src/probe/CMakeFiles/wormhole_probe.dir/DependInfo.cmake"
  "/root/repo/build_base/src/sim/CMakeFiles/wormhole_sim.dir/DependInfo.cmake"
  "/root/repo/build_base/src/mpls/CMakeFiles/wormhole_mpls.dir/DependInfo.cmake"
  "/root/repo/build_base/src/routing/CMakeFiles/wormhole_routing.dir/DependInfo.cmake"
  "/root/repo/build_base/src/topo/CMakeFiles/wormhole_topo.dir/DependInfo.cmake"
  "/root/repo/build_base/src/netbase/CMakeFiles/wormhole_netbase.dir/DependInfo.cmake"
  "/root/repo/build_base/src/exec/CMakeFiles/wormhole_exec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
