#include "sim/network.h"

#include <algorithm>
#include <utility>

#include "exec/thread_pool.h"
#include "netbase/label.h"
#include "routing/igp.h"

namespace wormhole::sim {

Network::Network(const topo::Topology& topology,
                 const mpls::MplsConfigMap& configs,
                 routing::BgpPolicy bgp_policy, EngineOptions options,
                 const mpls::TeDatabase* te, const mpls::SrDatabase* sr,
                 std::size_t convergence_jobs)
    : topology_(&topology),
      configs_(&configs),
      bgp_policy_(std::move(bgp_policy)),
      options_(options),
      te_(te),
      sr_(sr),
      spf_(topology) {
  const std::size_t jobs = exec::ResolveJobs(convergence_jobs);
  if (jobs > 1) pool_ = std::make_unique<exec::ThreadPool>(jobs);
  exec::RoleLock converge(convergence_role_);
  ConvergeFull();
}

Network::~Network() = default;

void Network::ConvergeFull() {
  const std::size_t n = topology_->router_count();
  fibs_.resize(n);
  std::vector<topo::RouterId> all(n);
  for (std::size_t r = 0; r < n; ++r) {
    all[r] = static_cast<topo::RouterId>(r);
  }

  // Phase 1: every (AS, source) SPF tree, exactly once, fanned out in
  // fixed shards.
  spf_.Prime(all, pool_.get());

  // Phase 2: per-AS IGP prefix plans and the AS-level BGP state. Neither
  // reads any FIB.
  const std::vector<topo::AsNumber> as_numbers = topology_->AsNumbers();
  std::vector<routing::IgpPlan> plans(as_numbers.size());
  exec::ParallelFor(pool_.get(), as_numbers.size(), [&](std::size_t i) {
    plans[i] = routing::BuildIgpPlan(*topology_, as_numbers[i]);
  });
  bgp_level_ = routing::ComputeBgpLevel(*topology_, bgp_policy_);

  // Phase 3: per-router route installation + seal (each task owns its
  // router's FIB — disjoint writes, shared read-only inputs).
  InstallRoutes(all, plans);

  // Phase 4: LDP domains from the sealed FIBs; then the engine's
  // per-router hot-path caches.
  ldp_ = mpls::LdpTables(*topology_, *configs_, fibs_, pool_.get());
  engine_ = std::make_unique<Engine>(*topology_, *configs_, fibs_, ldp_,
                                     options_, te_, sr_, pool_.get());
}

void Network::InstallRoutes(const std::vector<topo::RouterId>& routers,
                            const std::vector<routing::IgpPlan>& plans) {
  std::unordered_map<topo::AsNumber, const routing::IgpPlan*> plan_of;
  plan_of.reserve(plans.size());
  for (const routing::IgpPlan& plan : plans) plan_of[plan.asn] = &plan;

  exec::ParallelFor(pool_.get(), routers.size(), [&](std::size_t i) {
    const topo::RouterId rid = routers[i];
    routing::Fib& fib = fibs_[rid];
    const routing::SpfTree& tree = spf_.CachedTree(rid);
    const routing::IgpPlan& plan =
        *plan_of.at(topology_->router(rid).asn);
    routing::InstallIgpRoutesForRouter(*topology_, plan, tree, rid, fib);
    routing::InstallBgpRoutesForRouter(*topology_, bgp_level_, tree, rid,
                                       fib);
    // Seal here, off the packet path, while the FIB is cache-hot.
    fib.Seal();
  });
}

routing::ConvergenceDelta Network::OnLinkStateChange(topo::LinkId link) {
  // The exclusive write phase: no probe may be in flight (see header).
  exec::RoleLock converge(convergence_role_);
  const topo::Link& l = topology_->link(link);
  const topo::AsNumber as_a =
      topology_->router(topology_->interface(l.a).router).asn;
  const topo::AsNumber as_b =
      topology_->router(topology_->interface(l.b).router).asn;
  routing::ConvergenceDelta delta;
  if (as_a == as_b) {
    ReconvergeAs(as_a, delta);
  } else {
    ReconvergeInterAs(delta);
  }
  // Stamp AFTER the rebuild: this is the epoch the new state lives under.
  delta.epoch = engine_->convergence_epoch();
  return delta;
}

void Network::ReconvergeAs(topo::AsNumber asn,
                           routing::ConvergenceDelta& delta) {
  const std::vector<topo::RouterId>& members = topology_->as(asn).routers;
  delta.scope = routing::ConvergenceDelta::Scope::kIntraAs;
  delta.touched_as = asn;
  // The AS announces one prefix to the world; any address under it may
  // route differently inside the AS now.
  const auto aggregate = bgp_policy_.aggregates.find(asn);
  delta.touched_aggregate = aggregate != bgp_policy_.aggregates.end()
                                ? aggregate->second
                                : topology_->as(asn).block;
  // Label range before the LDP rebuild (the rebuild below may shrink it;
  // a label the old domain bound is touched either way).
  const mpls::LdpDomain* domain = ldp_.DomainOf(asn);
  std::uint32_t label_ceiling =
      domain == nullptr ? netbase::kFirstUnreservedLabel
                        : domain->LabelCeiling();

  // Only this AS's shortest paths can have moved: drop and recompute its
  // members' trees, keep every other AS's.
  const routing::SpfInvalidation dropped =
      spf_.ApplyTopologyChange(members);
  delta.stale_spf_sources = dropped.sources;
  delta.spf_window_lo = dropped.window_lo;
  delta.spf_window_hi = dropped.window_hi;
  spf_.Prime(members, pool_.get());

  // Slot-stable clear: the Engine caches `const Fib*` per router, so the
  // Fib objects must keep their addresses.
  for (const topo::RouterId rid : members) fibs_[rid] = routing::Fib{};

  // An intra-AS flip is invisible at the AS level (the adjacency only
  // counts inter-AS links), so the cached bgp_level_ is still exact.
  std::vector<routing::IgpPlan> plans(1);
  plans[0] = routing::BuildIgpPlan(*topology_, asn);
  InstallRoutes(members, plans);

  // The flipped link's subnet enters/leaves the AS's FEC set and routes
  // to every internal prefix may have moved: rebuild this one domain.
  // InstallDomain reuses the map node, keeping engine pointers valid.
  const bool any_enabled =
      std::any_of(members.begin(), members.end(), [&](topo::RouterId rid) {
        return configs_->For(rid).enabled;
      });
  if (any_enabled) {
    ldp_.InstallDomain(
        asn, mpls::LdpDomain(*topology_, *configs_, asn, fibs_));
    label_ceiling = std::max(
        label_ceiling, ldp_.DomainOf(asn)->LabelCeiling());
  }
  if (label_ceiling > netbase::kFirstUnreservedLabel) {
    delta.label_lo = netbase::kFirstUnreservedLabel;
    delta.label_hi = label_ceiling - 1;
  }

  engine_->RefreshRouters(members);
}

void Network::ReconvergeInterAs(routing::ConvergenceDelta& delta) {
  delta.scope = routing::ConvergenceDelta::Scope::kGlobal;
  // No intra-AS shortest path moved: adopt the new topology version with
  // every cached SPF tree intact.
  spf_.ApplyTopologyChange({});

  // What did move: the AS graph (best AS paths, border-link sets) and the
  // two endpoint borders' connected/injected eBGP subnets. Both are woven
  // through every FIB, so rebuild all routes — from cached trees, which
  // is the expensive part saved.
  bgp_level_ = routing::ComputeBgpLevel(*topology_, bgp_policy_);

  const std::size_t n = topology_->router_count();
  std::vector<topo::RouterId> all(n);
  for (std::size_t r = 0; r < n; ++r) {
    all[r] = static_cast<topo::RouterId>(r);
  }
  for (routing::Fib& fib : fibs_) fib = routing::Fib{};

  const std::vector<topo::AsNumber> as_numbers = topology_->AsNumbers();
  std::vector<routing::IgpPlan> plans(as_numbers.size());
  exec::ParallelFor(pool_.get(), as_numbers.size(), [&](std::size_t i) {
    plans[i] = routing::BuildIgpPlan(*topology_, as_numbers[i]);
  });
  InstallRoutes(all, plans);

  // LDP is untouched: FECs are internal prefixes only, and the routes to
  // them did not move — an identical rebuild would be wasted work.
  engine_->RefreshRouters(all);
}

}  // namespace wormhole::sim
