file(REMOVE_RECURSE
  "CMakeFiles/wormhole_fingerprint.dir/signature.cpp.o"
  "CMakeFiles/wormhole_fingerprint.dir/signature.cpp.o.d"
  "libwormhole_fingerprint.a"
  "libwormhole_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
