#include "campaign/trace_cache.h"

#include <algorithm>

#include "netbase/contracts.h"

namespace wormhole::campaign {

void TraceCache::Begin(const topo::Topology& topology,
                       std::size_t vp_count) {
  if (topology_ != &topology || vp_count_ != vp_count) {
    slots_.clear();
    ping_slots_.clear();
    topology_ = &topology;
    vp_count_ = vp_count;
  }
  slots_.resize(2 * vp_count_);
  ping_slots_.resize(vp_count_);
}

const TraceCache::Slot& TraceCache::SlotOf(Phase phase,
                                           std::size_t vp) const {
  return slots_.at(static_cast<std::size_t>(phase) * vp_count_ + vp);
}

TraceCache::Slot& TraceCache::SlotOf(Phase phase, std::size_t vp) {
  return slots_.at(static_cast<std::size_t>(phase) * vp_count_ + vp);
}

topo::AsNumber TraceCache::AddressAs(netbase::Ipv4Address address) const {
  if (const auto rid = topology_->FindRouterByAddress(address)) {
    return topology_->router(*rid).asn;
  }
  if (const topo::Host* host = topology_->FindHost(address)) {
    return topology_->router(host->gateway).asn;
  }
  return 0;
}

TraceCache::Lookup TraceCache::Find(Phase phase, std::size_t vp,
                                    netbase::Ipv4Address target,
                                    std::uint64_t epoch,
                                    std::uint64_t probes_sent,
                                    bool strict_offsets) const {
  const Slot& slot = SlotOf(phase, vp);
  const auto it = slot.index.find(target.value());
  if (it == slot.index.end()) return {};
  const Entry& entry = slot.entries[it->second];
  if (entry.epoch != epoch) return {};
  if (strict_offsets && entry.start_probe_count != probes_sent) return {};
  return Lookup{.hit = true,
                .trace_index = entry.trace_index,
                .probes_used = entry.probes_used};
}

void TraceCache::Record(Phase phase, std::size_t vp,
                        const probe::TraceResult& trace, std::uint64_t epoch,
                        std::uint64_t start_probe_count,
                        std::uint64_t probes_used) {
  Slot& slot = SlotOf(phase, vp);
  if (!slot.bound) {
    slot.vantage_point = trace.source;
    slot.vp_as = AddressAs(trace.source);
    slot.bound = true;
  }
  WORMHOLE_DCHECK(slot.vantage_point == trace.source,
                  "one TraceCache slot per vantage point");

  Entry entry;
  entry.target = trace.target;
  entry.trace_index = static_cast<std::uint32_t>(slot.log.size());
  entry.epoch = epoch;
  entry.start_probe_count = start_probe_count;
  entry.probes_used = static_cast<std::uint32_t>(probes_used);

  // The entry's AS footprint: every AS whose routing state the trace
  // bytes can depend on through responders (return paths start in the
  // responder's AS). The vantage point and the oracle's forward walk are
  // folded in at Invalidate time.
  std::vector<topo::AsNumber> ases;
  ases.reserve(trace.hops.size() + 1);
  const topo::AsNumber target_as = AddressAs(trace.target);
  if (target_as == 0) entry.any_unknown_as = true;
  else ases.push_back(target_as);
  for (const probe::Hop& hop : trace.hops) {
    if (!hop.address) continue;
    const topo::AsNumber asn = AddressAs(*hop.address);
    if (asn == 0) entry.any_unknown_as = true;
    else ases.push_back(asn);
  }
  std::sort(ases.begin(), ases.end());
  ases.erase(std::unique(ases.begin(), ases.end()), ases.end());
  entry.as_begin = static_cast<std::uint32_t>(slot.as_pool.size());
  slot.as_pool.insert(slot.as_pool.end(), ases.begin(), ases.end());
  entry.as_end = static_cast<std::uint32_t>(slot.as_pool.size());

  slot.log.Append(trace);
  slot.index[trace.target.value()] =
      static_cast<std::uint32_t>(slot.entries.size());
  slot.entries.push_back(entry);
}

const CompactTraceLog& TraceCache::LogOf(Phase phase, std::size_t vp) const {
  return SlotOf(phase, vp).log;
}

TraceCache::PingLookup TraceCache::FindPing(std::size_t vp,
                                            netbase::Ipv4Address address,
                                            std::uint64_t epoch,
                                            std::uint64_t probes_sent,
                                            bool strict_offsets) const {
  const PingSlot& slot = ping_slots_.at(vp);
  const auto it = slot.index.find(address.value());
  if (it == slot.index.end()) return {};
  const PingEntry& entry = slot.entries[it->second];
  if (entry.epoch != epoch) return {};
  if (strict_offsets && entry.start_probe_count != probes_sent) return {};
  PingLookup lookup;
  lookup.hit = true;
  lookup.result.target = entry.address;
  lookup.result.responded = entry.responded;
  lookup.result.reply_ip_ttl = entry.reply_ip_ttl;
  lookup.result.rtt_ms = entry.rtt_ms;
  lookup.probes_used = entry.probes_used;
  return lookup;
}

void TraceCache::RecordPing(std::size_t vp, netbase::Ipv4Address source,
                            const probe::PingResult& ping,
                            std::uint64_t epoch,
                            std::uint64_t start_probe_count,
                            std::uint64_t probes_used) {
  PingSlot& slot = ping_slots_.at(vp);
  if (!slot.bound) {
    slot.vantage_point = source;
    slot.vp_as = AddressAs(source);
    slot.bound = true;
  }
  WORMHOLE_DCHECK(slot.vantage_point == source,
                  "one ping slot per vantage point");
  PingEntry entry;
  entry.address = ping.target;
  entry.asn = AddressAs(ping.target);
  entry.epoch = epoch;
  entry.start_probe_count = start_probe_count;
  entry.probes_used = static_cast<std::uint32_t>(probes_used);
  entry.responded = ping.responded;
  entry.reply_ip_ttl = ping.reply_ip_ttl;
  entry.rtt_ms = ping.rtt_ms;
  slot.index[ping.target.value()] =
      static_cast<std::uint32_t>(slot.entries.size());
  slot.entries.push_back(entry);
}

void TraceCache::Invalidate(const routing::ConvergenceDelta& delta,
                            const routing::AsPathOracle& oracle) {
  if (delta.scope == routing::ConvergenceDelta::Scope::kGlobal) {
    // The AS level itself moved: every path may differ and the oracle's
    // pre-flap answers say nothing. Drop everything.
    for (Slot& slot : slots_) slot = Slot{};
    for (PingSlot& slot : ping_slots_) slot = PingSlot{};
    return;
  }

  const topo::AsNumber touched =
      delta.scope == routing::ConvergenceDelta::Scope::kIntraAs
          ? delta.touched_as
          : 0;
  // Both phase slots of a vantage point share its address and source AS,
  // so the (expensive to warm) walk memos below are built once per VP
  // and reused across the phases.
  for (std::size_t vp = 0; vp < vp_count_; ++vp) {
    Slot* const phase_slots[] = {&SlotOf(Phase::kDiscovery, vp),
                                 &SlotOf(Phase::kTargeted, vp)};
    PingSlot& pings = ping_slots_.at(vp);
    netbase::Ipv4Address vantage_point{};
    topo::AsNumber vp_as = 0;
    bool bound = false;
    for (const Slot* slot : phase_slots) {
      if (slot->bound) {
        vantage_point = slot->vantage_point;
        vp_as = slot->vp_as;
        bound = true;
      }
    }
    if (pings.bound) {
      WORMHOLE_DCHECK(!bound || pings.vantage_point == vantage_point,
                      "ping slot of one VP shares the vantage point");
      vantage_point = pings.vantage_point;
      vp_as = pings.vp_as;
      bound = true;
    }
    if (!bound) continue;

    // Per-VP classifier: "can a reply from AS `a` to this vantage point
    // cross the touched AS?" — responders repeat across entries and
    // their walks share tails, so verdicts amortize to O(1). Note
    // reply.MayContain(touched) is trivially true (a path starts in its
    // own AS), so scanning an entry's recorded footprint also catches
    // footprints that contain the touched AS itself.
    routing::ReturnPathClassifier reply(oracle, vantage_point, touched);
    const auto reply_path_touched = [&](topo::AsNumber a) {
      return reply.MayContain(a);
    };

    // Per-VP forward classifier: "may the forward path from this VP to
    // the target cross the touched AS, or any AS on it have a dirty
    // return path?" (a previously silent hop could start or stop
    // replying if its reply's path moved). Announcer- and owner-level
    // memos make it amortized O(1) per entry; the one per-address walk
    // element — RouterOwnerOf(target) — is exactly AddressAs(target),
    // which Record folded into the entry's footprint slice, so the
    // slice scan below covers it. (Targets whose address does not
    // resolve were already marked any_unknown_as at Record time.)
    routing::ForwardPathClassifier forward(oracle, reply, vp_as);

    for (Slot* const slot : phase_slots) {
      if (!slot->bound || slot->entries.empty()) continue;
      WORMHOLE_DCHECK(slot->vantage_point == vantage_point,
                      "phase slots of one VP share the vantage point");
      // Walking the flat entries vector visits superseded entries too,
      // but they sit at older epochs (their replacement was recorded at
      // the epoch that superseded them), so the promotability test
      // skips them; only live entries can move. Promotion is per-entry,
      // so visit order cannot change the outcome.
      for (Entry& entry : slot->entries) {
        // Only previous-epoch entries are promotable; older ones
        // already miss and will be re-traced (self-healing after an
        // uninvalidated reconvergence).
        if (entry.epoch + 1 != delta.epoch) continue;
        if (delta.scope == routing::ConvergenceDelta::Scope::kNone) {
          entry.epoch = delta.epoch;
          continue;
        }

        bool dirty = entry.any_unknown_as || vp_as == 0;
        // Cheap pre-filter: anything under the touched AS's announced
        // aggregate routes toward (or through) it — dirty without a
        // walk.
        if (!dirty && delta.touched_aggregate.Contains(entry.target)) {
          dirty = true;
        }
        // Return paths from every AS holding an observed responder —
        // including AddressAs(target), which doubles as the walk's
        // per-address RouterOwnerOf element (see the memo note above).
        for (std::uint32_t a = entry.as_begin; !dirty && a < entry.as_end;
             ++a) {
          dirty = reply_path_touched(slot->as_pool[a]);
        }
        if (!dirty) {
          dirty = forward.Dirty(entry.target,
                                oracle.BlockOwnerOf(entry.target));
        }
        if (!dirty) entry.epoch = delta.epoch;
      }
    }

    // Reduce-time echo pings: the trace dirty rule with the pinged
    // address in the role of the target. A ping has exactly one
    // responder (the address itself), so the footprint scan collapses
    // to one reply-path check of its AS.
    for (PingEntry& entry : pings.entries) {
      if (entry.epoch + 1 != delta.epoch) continue;
      if (delta.scope == routing::ConvergenceDelta::Scope::kNone) {
        entry.epoch = delta.epoch;
        continue;
      }
      bool dirty = entry.asn == 0 || vp_as == 0;
      if (!dirty && delta.touched_aggregate.Contains(entry.address)) {
        dirty = true;
      }
      if (!dirty) dirty = reply_path_touched(entry.asn);
      if (!dirty) {
        dirty = forward.Dirty(entry.address,
                              oracle.BlockOwnerOf(entry.address));
      }
      if (!dirty) entry.epoch = delta.epoch;
    }
  }
}

std::size_t TraceCache::entry_count() const {
  std::size_t live = 0;
  for (const Slot& slot : slots_) live += slot.index.size();
  return live;
}

std::size_t TraceCache::RetainedBytes() const {
  std::size_t bytes = 0;
  for (const Slot& slot : slots_) {
    bytes += slot.log.RetainedBytes();
    bytes += slot.entries.capacity() * sizeof(Entry);
    bytes += slot.as_pool.capacity() * sizeof(topo::AsNumber);
    // Node-based map: key+value plus per-node bookkeeping.
    bytes += slot.index.size() *
             (sizeof(std::uint32_t) * 2 + 4 * sizeof(void*));
  }
  for (const PingSlot& slot : ping_slots_) {
    bytes += slot.entries.capacity() * sizeof(PingEntry);
    bytes += slot.index.size() *
             (sizeof(std::uint32_t) * 2 + 4 * sizeof(void*));
  }
  return bytes;
}

}  // namespace wormhole::campaign
