// RTLA — Return Tunnel Length Analysis (paper Sec. 3.1, Fig. 3).
//
// Works for egress LERs with a <255,64> signature (Juniper Junos): the
// time-exceeded reply starts at 255 so the min(TTL) rule at the return
// tunnel's exit *copies the decremented LSE-TTL* into the IP header — the
// tunnel hops count; the echo-reply starts at 64 so the LSE-TTL (from 255)
// stays above it and the IP header passes through unchanged — the tunnel
// hops do not count. The gap between the two inferred return path lengths
// is exactly the return tunnel length h(I,E):
//
//   RTL = (255 - ttl_received(time-exceeded)) - (64 - ttl_received(echo)).
#pragma once

#include <map>
#include <optional>

#include "fingerprint/signature.h"
#include "netbase/stats.h"
#include "topo/topology.h"

namespace wormhole::reveal {

struct RtlaObservation {
  netbase::Ipv4Address responder;
  /// Return path length from the time-exceeded reply (tunnel included).
  int te_return_length = 0;
  /// Return path length from the echo-reply (tunnel excluded).
  int er_return_length = 0;

  /// The inferred return tunnel length (can be negative under ECMP noise).
  [[nodiscard]] int return_tunnel_length() const {
    return te_return_length - er_return_length;
  }
};

/// Computes the observation from the raw received TTLs of the two probe
/// kinds. Returns nullopt when the responder's signature is not RTLA-usable
/// (the echo-reply initial TTL must be strictly below the time-exceeded
/// one, e.g. <255,64>).
std::optional<RtlaObservation> ObserveRtla(netbase::Ipv4Address responder,
                                           int te_reply_ttl,
                                           int er_reply_ttl);

/// Per-AS aggregation (Fig. 9a and Table 5's RTLA column).
class RtlaAnalysis {
 public:
  void Add(topo::AsNumber asn, const RtlaObservation& observation);

  [[nodiscard]] const netbase::IntDistribution& Distribution(
      topo::AsNumber asn) const;
  [[nodiscard]] netbase::IntDistribution Combined() const;
  /// Median return tunnel length for an AS (Table 5 "RTLA").
  [[nodiscard]] std::optional<int> EstimatedTunnelLength(
      topo::AsNumber asn) const;

 private:
  std::map<topo::AsNumber, netbase::IntDistribution> per_as_;
};

}  // namespace wormhole::reveal
