// Plain-text report rendering: aligned tables and PDF series for the bench
// binaries that regenerate the paper's tables and figures.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "netbase/stats.h"

namespace wormhole::analysis {

/// Minimal fixed-width table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  [[nodiscard]] std::string ToString() const;

  // Cell helpers.
  static std::string Num(std::size_t v);
  static std::string Num(int v);
  static std::string Pct(double v, int decimals = 1);
  static std::string Real(double v, int decimals = 3);
  static std::string Opt(const std::optional<int>& v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a PDF as "value  probability" rows plus a text sparkline, for
/// figure benches. Buckets outside [min,max] are clamped into the ends.
std::string RenderPdf(const netbase::IntDistribution& d, int min_value,
                      int max_value, const std::string& label);

/// Renders several distributions side by side over a shared support.
std::string RenderPdfComparison(
    const std::vector<std::pair<std::string, const netbase::IntDistribution*>>&
        series,
    int min_value, int max_value);

}  // namespace wormhole::analysis
