// Failure injection: anonymous routers and ICMP rate limiting, and the
// measurement pipeline's robustness against them (the real-world effects
// behind the paper's unvalidated/failed revelation shares).
#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "gen/gns3.h"
#include "gen/internet.h"
#include "probe/prober.h"
#include "reveal/revelator.h"

namespace wormhole {
namespace {

TEST(FailureInjection, SilentRouterShowsAsAnonymousHop) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  const auto p2 = *testbed.topology().FindRouterByName("P2");
  testbed.configs().Mutable(p2).icmp_silent = true;
  testbed.Reconverge();

  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto trace = prober.Traceroute(testbed.Address("CE2.left"));
  ASSERT_TRUE(trace.reached);
  ASSERT_EQ(trace.hops.size(), 7u);
  EXPECT_FALSE(trace.hops[3].address.has_value()) << "P2 must be silent";
  // Its neighbours still answer.
  EXPECT_TRUE(trace.hops[2].address.has_value());
  EXPECT_TRUE(trace.hops[4].address.has_value());
  // Pings to the silent router's addresses go unanswered too.
  EXPECT_FALSE(prober.Ping(testbed.Address("P2.left")).responded);
}

TEST(FailureInjection, LossIsDeterministicPerProbeId) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  const auto p2 = *testbed.topology().FindRouterByName("P2");
  testbed.configs().Mutable(p2).icmp_loss = 0.5;
  testbed.Reconverge();

  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  // Over many pings, roughly half are answered; an exact re-run from a
  // fresh prober (same probe-id sequence) gives the identical pattern.
  std::vector<bool> outcomes;
  for (int i = 0; i < 64; ++i) {
    outcomes.push_back(prober.Ping(testbed.Address("P2.left")).responded);
  }
  const auto answered =
      std::count(outcomes.begin(), outcomes.end(), true);
  EXPECT_GT(answered, 16);
  EXPECT_LT(answered, 48);

  probe::Prober rerun(testbed.engine(), testbed.vantage_point());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(rerun.Ping(testbed.Address("P2.left")).responded,
              outcomes[static_cast<std::size_t>(i)]);
  }
}

TEST(FailureInjection, RetriesRecoverLossyHops) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  for (const topo::Router& router : testbed.topology().routers()) {
    if (router.asn == 2) {
      testbed.configs().Mutable(router.id).icmp_loss = 0.4;
    }
  }
  testbed.Reconverge();
  probe::Prober prober(testbed.engine(), testbed.vantage_point());

  const auto count_responding = [&](int attempts) {
    int responding = 0;
    for (int i = 0; i < 10; ++i) {
      const auto trace = prober.Traceroute(testbed.Address("CE2.left"),
                                           {.attempts = attempts});
      for (const auto& hop : trace.hops) {
        if (hop.responded()) ++responding;
      }
    }
    return responding;
  };
  const int one_shot = count_responding(1);
  const int with_retries = count_responding(4);
  EXPECT_GT(with_retries, one_shot);
}

TEST(FailureInjection, RevelatorStopsCleanlyOnAnonymousLsr) {
  // Backward-recursive scenario, but P2 is anonymous: BRPR can peel P3,
  // then the trace to P3 shows "*" where P2 should be — the revelator
  // must stop without inventing hops.
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kBackwardRecursive});
  const auto p2 = *testbed.topology().FindRouterByName("P2");
  testbed.configs().Mutable(p2).icmp_silent = true;
  testbed.Reconverge();

  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  reveal::Revelator revelator(prober);
  const auto result = revelator.Reveal(testbed.Address("PE1.left"),
                                       testbed.Address("PE2.left"));
  // Partial revelation: P3 only (the recursion window is spoiled by the
  // anonymous hop).
  ASSERT_LE(result.revealed.size(), 1u);
  for (const auto hop : result.revealed) {
    EXPECT_EQ(testbed.NameOf(hop), "P3.left");
  }
}

TEST(FailureInjection, CampaignSurvivesLossAndAnonymity) {
  gen::InternetOptions options;
  options.seed = 29;
  options.tier1_count = 3;
  options.transit_count = 12;
  options.stub_count = 40;
  options.vp_count = 12;
  options.anonymous_router_probability = 0.03;
  options.icmp_loss = 0.05;
  gen::SyntheticInternet net(options);

  campaign::Campaign campaign(net.engine(), net.vantage_points(), {});
  const auto result = campaign.Run(net.AllLoopbacks());
  // The pipeline still finds and reveals tunnels...
  EXPECT_GT(result.revelations.size(), 0u);
  EXPECT_GT(result.revealed_count(), 0u);
  // ...and never produces a false positive even under packet loss.
  for (const auto& [pair, revelation] : result.revelations) {
    if (!revelation.succeeded()) continue;
    const auto asn = net.topology().AsOfAddress(pair.egress);
    EXPECT_TRUE(net.profile(asn).invisible_tunnels())
        << "false positive in AS" << asn;
  }
}

TEST(FailureInjection, SilentRoutersNeverEnterTheDataset) {
  gen::InternetOptions options;
  options.seed = 3;
  options.tier1_count = 2;
  options.transit_count = 4;
  options.stub_count = 8;
  options.vp_count = 4;
  options.anonymous_router_probability = 0.2;
  gen::SyntheticInternet net(options);

  campaign::Campaign campaign(net.engine(), net.vantage_points(), {});
  const auto result = campaign.Run(net.AllLoopbacks());
  for (const topo::Router& router : net.topology().routers()) {
    if (!net.configs().For(router.id).icmp_silent) continue;
    EXPECT_FALSE(result.inferred.FindNode(router.loopback).has_value())
        << router.name << " is silent but appears in the dataset";
  }
}

}  // namespace
}  // namespace wormhole
