# Empty compiler generated dependencies file for wormhole_sim.
# This may be replaced when dependencies are built.
