// sem-unordered-flow fixture, callee side: this file is NOT in an
// output directory, so the per-file determinism lint would never flag
// it — but Report() in tools/ calls into it, so hash-order leaks into
// the report anyway.
#include <unordered_map>

namespace fix {

class Core {
 public:
  int DumpTable(int base) {
    int sum = base;
    for (const auto& kv : table_) {  // BAD: unordered order reaches output
      sum += kv.second;
    }
    return sum;
  }

 private:
  std::unordered_map<int, int> table_;
};

int ReportHelper(Core& core) { return core.DumpTable(0); }

}  // namespace fix
