# Empty dependencies file for fig09_rtla.
# This may be replaced when dependencies are built.
