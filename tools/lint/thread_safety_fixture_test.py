#!/usr/bin/env python3
"""Compile-fail test for the clang thread-safety annotation layer.

Proves the annotations are ENFORCED, not decorative:

  bad_unguarded_field.cpp   must FAIL under -Wthread-safety
                            -Wthread-safety-beta
                            -Werror=thread-safety-analysis, with a
                            thread-safety diagnostic (an unguarded
                            GUARDED_BY access)
  good_guarded_field.cpp    must PASS under the same flags (the RAII /
                            REQUIRES / EXCLUDES / Role vocabulary all
                            analyze cleanly)

Requires a clang++ (the analysis is clang-only; the macros expand to
nothing elsewhere). When no clang++ is on PATH the test exits 77 — the
ctest SKIP_RETURN_CODE — so gcc-only environments skip instead of
passing vacuously. CI runs it in the clang thread-safety job.

Exit status: 0 = both fixtures behave, 77 = no clang++, 1 = failure.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parent.parent
FIXTURES = HERE / "fixtures" / "thread_safety"

FLAGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-I",
    str(ROOT / "src"),
    "-Wthread-safety",
    "-Wthread-safety-beta",
    "-Werror=thread-safety-analysis",
]


def find_clang() -> str | None:
    env_cxx = os.environ.get("CXX", "")
    candidates = [env_cxx] if "clang" in env_cxx else []
    candidates += ["clang++"] + [f"clang++-{v}" for v in range(21, 13, -1)]
    for candidate in candidates:
        path = shutil.which(candidate)
        if path:
            return path
    return None


def compile_fixture(clang: str, source: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [clang, *FLAGS, str(source)],
        capture_output=True,
        text=True,
        check=False,
    )


def main() -> int:
    clang = find_clang()
    if clang is None:
        print(
            "thread-safety fixture test: no clang++ on PATH; skipping "
            "(the analysis is clang-only)"
        )
        return 77

    failures: list[str] = []

    good = compile_fixture(clang, FIXTURES / "good_guarded_field.cpp")
    if good.returncode != 0:
        failures.append(
            "good_guarded_field.cpp must compile cleanly but failed:\n"
            + good.stderr
        )

    bad = compile_fixture(clang, FIXTURES / "bad_unguarded_field.cpp")
    if bad.returncode == 0:
        failures.append(
            "bad_unguarded_field.cpp compiled — the annotations are not "
            "being enforced (macro layer expanded to nothing under clang?)"
        )
    elif "thread-safety" not in bad.stderr and "guarded_by" not in (
        bad.stderr.lower()
    ):
        failures.append(
            "bad_unguarded_field.cpp failed for the wrong reason (expected "
            "a thread-safety diagnostic):\n" + bad.stderr
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"thread-safety fixtures behave correctly under {clang}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
