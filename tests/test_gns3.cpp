// Emulation validation: the simulator must reproduce the paper's Fig. 4
// outputs (hop addresses AND return TTLs) on the Fig. 2 testbed, for all
// four configuration scenarios.
#include <gtest/gtest.h>

#include "gen/gns3.h"
#include "probe/prober.h"
#include "reveal/rtla.h"

namespace wormhole::gen {
namespace {

using netbase::PacketKind;

struct ExpectedHop {
  const char* name;
  int return_ttl;
  bool labeled = false;
};

class Gns3Test : public ::testing::Test {
 protected:
  void Build(Gns3Scenario scenario,
             topo::Vendor vendor = topo::Vendor::kCiscoIos) {
    testbed_ = std::make_unique<Gns3Testbed>(
        Gns3Options{.scenario = scenario, .as2_vendor = vendor});
    prober_ = std::make_unique<probe::Prober>(testbed_->engine(),
                                              testbed_->vantage_point());
  }

  probe::TraceResult Trace(const char* target) {
    return prober_->Traceroute(testbed_->Address(target));
  }

  void ExpectTrace(const probe::TraceResult& trace,
                   const std::vector<ExpectedHop>& expected) {
    ASSERT_EQ(trace.hops.size(), expected.size())
        << trace.Format([&](netbase::Ipv4Address a) {
             return testbed_->NameOf(a);
           });
    for (std::size_t i = 0; i < expected.size(); ++i) {
      const probe::Hop& hop = trace.hops[i];
      ASSERT_TRUE(hop.address.has_value()) << "hop " << i + 1;
      EXPECT_EQ(testbed_->NameOf(*hop.address), expected[i].name)
          << "hop " << i + 1;
      EXPECT_EQ(hop.reply_ip_ttl, expected[i].return_ttl)
          << "hop " << i + 1 << " (" << expected[i].name << ")";
      EXPECT_EQ(hop.has_labels(), expected[i].labeled)
          << "hop " << i + 1 << " (" << expected[i].name << ")";
    }
  }

  std::unique_ptr<Gns3Testbed> testbed_;
  std::unique_ptr<probe::Prober> prober_;
};

// --- Fig. 4a: Default configuration — explicit tunnel ----------------------
TEST_F(Gns3Test, Fig4aDefaultConfiguration) {
  Build(Gns3Scenario::kDefault);
  const auto trace = Trace("CE2.left");
  EXPECT_TRUE(trace.reached);
  ExpectTrace(trace, {{"CE1.left", 255},
                      {"PE1.left", 254},
                      {"P1.left", 247, true},
                      {"P2.left", 248, true},
                      {"P3.left", 251, true},
                      {"PE2.left", 250},
                      {"CE2.left", 249}});
  // The quoted LSE-TTL is 1 at every expiring LSR (ttl-propagate copies the
  // dying IP-TTL into the label).
  for (const auto& hop : trace.hops) {
    if (hop.has_labels()) {
      EXPECT_EQ(static_cast<int>(hop.labels[0].ttl), 1);
    }
  }
}

// --- Fig. 4b: Backward Recursive — invisible, BRPR peels it ----------------
TEST_F(Gns3Test, Fig4bInvisibleTunnelHidesLsrs) {
  Build(Gns3Scenario::kBackwardRecursive);
  const auto trace = Trace("CE2.left");
  EXPECT_TRUE(trace.reached);
  ExpectTrace(trace, {{"CE1.left", 255},
                      {"PE1.left", 254},
                      {"PE2.left", 250},
                      {"CE2.left", 250}});
  EXPECT_FALSE(trace.HasExplicitMpls());
}

TEST_F(Gns3Test, Fig4bRecursiveTracesRevealOneHopAtATime) {
  Build(Gns3Scenario::kBackwardRecursive);
  ExpectTrace(Trace("PE2.left"), {{"CE1.left", 255},
                                  {"PE1.left", 254},
                                  {"P3.left", 251},
                                  {"PE2.left", 250}});
  ExpectTrace(Trace("P3.left"), {{"CE1.left", 255},
                                 {"PE1.left", 254},
                                 {"P2.left", 252},
                                 {"P3.left", 251}});
  ExpectTrace(Trace("P2.left"), {{"CE1.left", 255},
                                 {"PE1.left", 254},
                                 {"P1.left", 253},
                                 {"P2.left", 252}});
  ExpectTrace(Trace("P1.left"), {{"CE1.left", 255},
                                 {"PE1.left", 254},
                                 {"P1.left", 253}});
}

// --- Fig. 4c: Explicit Route — DPR reveals in one probe --------------------
TEST_F(Gns3Test, Fig4cDirectPathRevelation) {
  Build(Gns3Scenario::kExplicitRoute);
  ExpectTrace(Trace("CE2.left"), {{"CE1.left", 255},
                                  {"PE1.left", 254},
                                  {"PE2.left", 250},
                                  {"CE2.left", 250}});
  // Targeting the Egress LER's incoming interface rides the plain IGP
  // route and exposes the whole path, label-free.
  const auto trace = Trace("PE2.left");
  ExpectTrace(trace, {{"CE1.left", 255},
                      {"PE1.left", 254},
                      {"P1.left", 253},
                      {"P2.left", 252},
                      {"P3.left", 251},
                      {"PE2.left", 250}});
  EXPECT_FALSE(trace.HasExplicitMpls());
}

// --- Fig. 4d: Totally Invisible (UHP) ---------------------------------------
TEST_F(Gns3Test, Fig4dUhpHidesEvenTheEgress) {
  Build(Gns3Scenario::kTotallyInvisible);
  ExpectTrace(Trace("CE2.left"), {{"CE1.left", 255},
                                  {"PE1.left", 254},
                                  {"CE2.left", 252}});
  ExpectTrace(Trace("PE2.left"), {{"CE1.left", 255},
                                  {"PE1.left", 254},
                                  {"PE2.left", 253}});
}

// --- Cross-cutting checks ---------------------------------------------------

TEST_F(Gns3Test, DefaultTunnelQuotesDistinctLabelsPerLsr) {
  Build(Gns3Scenario::kDefault);
  const auto trace = Trace("CE2.left");
  std::vector<std::uint32_t> labels;
  for (const auto& hop : trace.hops) {
    if (hop.has_labels()) labels.push_back(hop.labels[0].label);
  }
  ASSERT_EQ(labels.size(), 3u);
  for (const auto label : labels) {
    EXPECT_GE(label, netbase::kFirstUnreservedLabel);
  }
}

TEST_F(Gns3Test, PingReturnsEchoReplyWithVendorTtl) {
  Build(Gns3Scenario::kBackwardRecursive);
  const auto ping = prober_->Ping(testbed_->Address("PE2.left"));
  ASSERT_TRUE(ping.responded);
  // Cisco echo-reply initial 255, minus 5 effective return hops (the return
  // LSP hides its interior; min rule applies at the LH).
  EXPECT_EQ(ping.reply_ip_ttl, 250);
}

TEST_F(Gns3Test, JuniperEgressShowsTtlGapBetweenProbeKinds) {
  Build(Gns3Scenario::kBackwardRecursive, topo::Vendor::kJuniperJunos);
  const auto trace = Trace("CE2.left");
  ASSERT_TRUE(trace.reached);
  // Hop 3 is PE2 (time-exceeded, initial 255). The return tunnel PE2->PE1
  // is counted: 255 - 250 = 5 return hops.
  const auto& pe2_hop = trace.hops[2];
  ASSERT_TRUE(pe2_hop.address.has_value());
  EXPECT_EQ(testbed_->NameOf(*pe2_hop.address), "PE2.left");
  EXPECT_EQ(pe2_hop.reply_ip_ttl, 250);
  // Ping the same address: echo-reply initial 64, and the return tunnel is
  // *not* counted (LSE-TTL 255-ish stays above 64): 64 - 62 = 2 hops.
  const auto ping = prober_->Ping(*pe2_hop.address);
  ASSERT_TRUE(ping.responded);
  EXPECT_EQ(ping.reply_ip_ttl, 62);
  // The gap (255-250) - (64-62) = 3 equals the return tunnel length h(I,E)
  // — the paper's worked example of Sec. 3.1.
  EXPECT_EQ((255 - pe2_hop.reply_ip_ttl) - (64 - ping.reply_ip_ttl), 3);
}

TEST_F(Gns3Test, JunosEClouldUsesInitial128Everywhere) {
  Build(Gns3Scenario::kBackwardRecursive, topo::Vendor::kJuniperJunosE);
  const auto trace = Trace("CE2.left");
  ASSERT_TRUE(trace.reached);
  // AS2 hops reply with initial TTL 128; inference must round to 128.
  const auto& pe2_hop = trace.hops[2];
  ASSERT_TRUE(pe2_hop.address.has_value());
  EXPECT_LE(pe2_hop.reply_ip_ttl, 128);
  EXPECT_GT(pe2_hop.reply_ip_ttl, 64);
  // Crucial FRPLA limitation: a 128-initial reply never triggers the min
  // rule against a 255-initialised return LSE — the return tunnel is NOT
  // counted. Only PE1 and CE1 decrement the reply: 128 - 126 = 2, the
  // hops outside the tunnel.
  EXPECT_EQ(128 - pe2_hop.reply_ip_ttl, 2);
  // And RTLA is inapplicable: <128,128> has no te/er gap.
  const auto ping = prober_->Ping(*pe2_hop.address);
  ASSERT_TRUE(ping.responded);
  EXPECT_FALSE(reveal::ObserveRtla(*pe2_hop.address, pe2_hop.reply_ip_ttl,
                                   ping.reply_ip_ttl)
                   .has_value());
}

TEST_F(Gns3Test, BrocadeCloudBehavesLikeJuniperForLdpPolicy) {
  // <64,64> boxes default to loopback-only advertisement in our model (the
  // paper's AS3549 observation): targeting the egress interface rides the
  // plain IGP route.
  Build(Gns3Scenario::kBackwardRecursive, topo::Vendor::kBrocade);
  // Backward-recursive forces all-prefix; undo to the vendor default.
  mpls::MplsConfigMap::AsOptions options;
  options.ttl_propagate = false;
  testbed_->configs().EnableAs(2, options);
  testbed_->Reconverge();
  probe::Prober prober(testbed_->engine(), testbed_->vantage_point());
  const auto trace = prober.Traceroute(testbed_->Address("PE2.left"));
  ASSERT_TRUE(trace.reached);
  // DPR-style full revelation: 6 hops.
  EXPECT_EQ(trace.hops.size(), 6u);
}

TEST_F(Gns3Test, UnassignedAddressYieldsDestinationUnreachable) {
  Build(Gns3Scenario::kDefault);
  // An address inside AS2's block that no router owns.
  const auto block = testbed_->topology().as(2).block;
  const auto bogus = block.At(block.size() - 2);
  const auto trace = prober_->Traceroute(bogus);
  EXPECT_TRUE(trace.unreachable);
  EXPECT_FALSE(trace.reached);
}

TEST_F(Gns3Test, RttAccumulatesLinkDelays) {
  Build(Gns3Scenario::kDefault);
  const auto trace = Trace("CE2.left");
  ASSERT_TRUE(trace.reached);
  // RTTs must be positive and non-trivially ordered: the last hop's RTT is
  // the largest (longest forward path).
  double max_rtt = 0.0;
  for (const auto& hop : trace.hops) {
    EXPECT_GT(hop.rtt_ms, 0.0);
    max_rtt = std::max(max_rtt, hop.rtt_ms);
  }
  EXPECT_DOUBLE_EQ(trace.hops.back().rtt_ms, max_rtt);
}

TEST_F(Gns3Test, EngineCountsWork) {
  Build(Gns3Scenario::kDefault);
  Trace("CE2.left");
  const auto& stats = testbed_->engine().stats();
  EXPECT_GT(stats.packets_injected, 0u);
  EXPECT_GT(stats.icmp_generated, 0u);
  EXPECT_GT(stats.labels_pushed, 0u);
  EXPECT_GT(stats.labels_popped, 0u);
}

}  // namespace
}  // namespace wormhole::gen
