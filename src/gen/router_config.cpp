#include "gen/router_config.h"

#include <sstream>

namespace wormhole::gen {

namespace {

using mpls::LdpPolicy;
using mpls::MplsConfig;
using mpls::Popping;
using topo::Interface;
using topo::Router;
using topo::RouterId;
using topo::Topology;

std::string SubnetMask(int prefix_length) {
  const std::uint32_t mask =
      prefix_length == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_length);
  return netbase::Ipv4Address(mask).ToString();
}

/// Is this router a border (has an inter-AS link)?
bool IsBorder(const Topology& topology, RouterId router) {
  for (const topo::InterfaceId iid : topology.router(router).interfaces) {
    const Interface& iface = topology.interface(iid);
    if (iface.link != topo::kNoLink && !topology.IsInternalLink(iface.link)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string CiscoStyleConfig(const Topology& topology,
                             const mpls::MplsConfigMap& configs,
                             RouterId router_id) {
  const Router& router = topology.router(router_id);
  const MplsConfig& config = configs.For(router_id);
  std::ostringstream os;

  os << "hostname " << router.name << "\n!\n";
  if (config.enabled && !config.ttl_propagate) {
    os << "no mpls ip propagate-ttl\n";
  }
  if (config.enabled && config.ldp_policy == LdpPolicy::kLoopbacksOnly) {
    os << "mpls ldp label allocate global host-routes\n";
  }
  if (config.enabled && config.popping == Popping::kUhp) {
    os << "mpls ldp explicit-null\n";
  }
  os << "!\ninterface Loopback0\n ip address " << router.loopback
     << " 255.255.255.255\n!\n";

  int index = 0;
  for (const topo::InterfaceId iid : router.interfaces) {
    const Interface& iface = topology.interface(iid);
    os << "interface GigabitEthernet0/" << index++ << "\n"
       << " description " << iface.name << "\n"
       << " ip address " << iface.address << ' '
       << SubnetMask(iface.subnet.length()) << "\n";
    const bool internal =
        iface.link == topo::kNoLink || topology.IsInternalLink(iface.link);
    if (config.enabled && internal) os << " mpls ip\n";
    os << " no shutdown\n!\n";
  }

  // IGP: OSPF over every connected prefix (eBGP link subnets excluded,
  // matching the simulated control plane).
  os << "router ospf 1\n router-id " << router.loopback << "\n";
  os << " network " << router.loopback << " 0.0.0.0 area 0\n";
  for (const topo::InterfaceId iid : router.interfaces) {
    const Interface& iface = topology.interface(iid);
    if (iface.link != topo::kNoLink && !topology.IsInternalLink(iface.link)) {
      continue;
    }
    os << " network " << iface.subnet.address() << ' '
       << netbase::Ipv4Address(~(
              ~std::uint32_t{0} << (32 - iface.subnet.length())))
       << " area 0\n";
  }
  os << "!\n";

  // BGP on border routers: eBGP to each external neighbor, iBGP
  // next-hop-self implied by the simulated model.
  if (IsBorder(topology, router_id)) {
    os << "router bgp " << router.asn << "\n bgp router-id "
       << router.loopback << "\n";
    for (const topo::InterfaceId iid : router.interfaces) {
      const Interface& iface = topology.interface(iid);
      if (iface.link == topo::kNoLink ||
          topology.IsInternalLink(iface.link)) {
        continue;
      }
      const Interface& peer = topology.OtherEnd(iface.link, router_id);
      os << " neighbor " << peer.address << " remote-as "
         << topology.router(peer.router).asn << "\n";
    }
    const auto& block = topology.as(router.asn).block;
    os << " network " << block.address() << " mask "
       << SubnetMask(block.length()) << "\n!\n";
  }
  return os.str();
}

std::string JunosStyleConfig(const Topology& topology,
                             const mpls::MplsConfigMap& configs,
                             RouterId router_id) {
  const Router& router = topology.router(router_id);
  const MplsConfig& config = configs.For(router_id);
  std::ostringstream os;

  os << "set system host-name " << router.name << "\n";
  os << "set interfaces lo0 unit 0 family inet address " << router.loopback
     << "/32\n";
  int index = 0;
  for (const topo::InterfaceId iid : router.interfaces) {
    const Interface& iface = topology.interface(iid);
    const std::string name = "ge-0/0/" + std::to_string(index++);
    os << "set interfaces " << name << " unit 0 family inet address "
       << iface.address << '/' << iface.subnet.length() << "\n";
    const bool internal =
        iface.link == topo::kNoLink || topology.IsInternalLink(iface.link);
    if (config.enabled && internal) {
      os << "set interfaces " << name << " unit 0 family mpls\n"
         << "set protocols ldp interface " << name << "\n"
         << "set protocols mpls interface " << name << "\n";
    }
    if (internal) {
      os << "set protocols ospf area 0.0.0.0 interface " << name << "\n";
    }
  }
  if (config.enabled && !config.ttl_propagate) {
    os << "set protocols mpls no-propagate-ttl\n";
  }
  if (config.enabled && config.popping == Popping::kUhp) {
    os << "set protocols ldp explicit-null\n";
  }
  if (config.enabled && config.ldp_policy == LdpPolicy::kAllPrefixes) {
    // Junos defaults to loopback-only; advertising everything needs an
    // egress policy.
    os << "set protocols ldp egress-policy advertise-all-igp\n";
  }
  if (IsBorder(topology, router_id)) {
    for (const topo::InterfaceId iid : router.interfaces) {
      const Interface& iface = topology.interface(iid);
      if (iface.link == topo::kNoLink ||
          topology.IsInternalLink(iface.link)) {
        continue;
      }
      const Interface& peer = topology.OtherEnd(iface.link, router_id);
      os << "set protocols bgp group ebgp neighbor " << peer.address
         << " peer-as " << topology.router(peer.router).asn << "\n";
    }
  }
  return os.str();
}

std::string TestbedConfigs(const Topology& topology,
                           const mpls::MplsConfigMap& configs) {
  std::ostringstream os;
  for (const Router& router : topology.routers()) {
    os << "!=== " << router.name << " (" << ToString(router.vendor)
       << ") ===\n";
    switch (router.vendor) {
      case topo::Vendor::kJuniperJunos:
      case topo::Vendor::kJuniperJunosE:
        os << JunosStyleConfig(topology, configs, router.id);
        break;
      default:
        os << CiscoStyleConfig(topology, configs, router.id);
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace wormhole::gen
