// Per-router MPLS configuration knobs — the exact set the paper varies in
// its GNS3 scenarios (Sec. 3.3):
//   * LDP advertisement policy (all IGP prefixes vs loopbacks only,
//     `mpls ldp label allocate global host-routes`),
//   * TTL propagation (`no mpls ip propagate-ttl`),
//   * PHP vs UHP (`mpls ldp explicit-null`),
// plus the implementation behaviours that matter for measurement:
// RFC 4950 LSE quoting and Cisco's "ICMP forwarded along the LSP".
#pragma once

#include <unordered_map>

#include "topo/topology.h"

namespace wormhole::mpls {

enum class LdpPolicy : std::uint8_t {
  /// Advertise a label for every prefix in the IGP routing table
  /// (Cisco IOS default).
  kAllPrefixes,
  /// Advertise labels for loopback /32s only (Juniper default, or Cisco with
  /// `mpls ldp label allocate global host-routes`).
  kLoopbacksOnly,
};

enum class Popping : std::uint8_t {
  kPhp,  ///< advertise implicit-null: penultimate hop pops (default)
  kUhp,  ///< advertise explicit-null: egress pops (ultimate hop popping)
};

struct MplsConfig {
  bool enabled = false;
  LdpPolicy ldp_policy = LdpPolicy::kAllPrefixes;
  /// Ingress copies IP-TTL into the LSE-TTL (`ttl-propagate`). Disabling it
  /// is what makes a tunnel invisible.
  bool ttl_propagate = true;
  Popping popping = Popping::kPhp;
  /// Quote the MPLS stack in ICMP time-exceeded (RFC 4950); on for all
  /// recent OSes.
  bool rfc4950 = true;
  /// Forward ICMP errors generated mid-LSP to the tunnel end before routing
  /// them back (Cisco/Juniper behaviour on label-switched replies).
  bool icmp_along_lsp = true;
  /// Copy min(IP-TTL, LSE-TTL) into the exposed header on a PHP pop
  /// (RFC 3443; "the min behaviour is implemented by Cisco", Sec. 3.1).
  /// Disabling it models non-compliant hardware — and kills the FRPLA and
  /// RTLA signals, which is exactly what bench/ablation_knobs measures.
  bool min_ttl_on_pop = true;

  // --- failure injection (not MPLS per se, but per-router behaviour) -----
  /// Router never originates ICMP replies: an "anonymous router" in
  /// topology-discovery terms. Its hops show up as "*".
  bool icmp_silent = false;
  /// Probability that an individual ICMP reply is dropped/rate-limited.
  /// Deterministic per (probe id, router): re-probing the same TTL with a
  /// new probe id re-rolls the dice, like real rate limiting.
  double icmp_loss = 0.0;

  friend bool operator==(const MplsConfig&, const MplsConfig&) = default;
};

/// Vendor-default config (MPLS disabled until enabled explicitly; the LDP
/// policy reflects the vendor default the paper leans on for DPR vs BRPR).
MplsConfig DefaultConfigFor(topo::Vendor vendor);

/// The MPLS configuration of every router in a topology. Routers without an
/// explicit entry fall back to their vendor default (MPLS disabled).
class MplsConfigMap {
 public:
  explicit MplsConfigMap(const topo::Topology& topology)
      : topology_(&topology) {}

  /// Per-AS enablement with uniform overrides; individual routers can then
  /// be tweaked via Set().
  struct AsOptions {
    bool ttl_propagate = true;
    Popping popping = Popping::kPhp;
    /// If set, overrides each router's vendor-default LDP policy.
    std::optional<LdpPolicy> ldp_policy;
  };
  void EnableAs(topo::AsNumber asn, const AsOptions& options);

  void Set(topo::RouterId router, MplsConfig config);
  [[nodiscard]] const MplsConfig& For(topo::RouterId router) const;
  [[nodiscard]] MplsConfig& Mutable(topo::RouterId router);

  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }

 private:
  const topo::Topology* topology_;
  mutable std::unordered_map<topo::RouterId, MplsConfig> configs_;
};

}  // namespace wormhole::mpls
