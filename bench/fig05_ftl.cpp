// Fig. 5: forward tunnel length distribution — number of hops to reach the
// tunnel exit (revealed LSRs + 1), split by revelation technique.
#include <iostream>

#include "analysis/report.h"
#include "bench/common.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader("Forward Tunnel Length (FTL) by technique", "Fig. 5");

  const auto world = bench::RunFlagshipCampaign();
  const auto& result = world.result;

  const auto dpr = result.TunnelLengths(reveal::RevelationMethod::kDpr);
  const auto brpr = result.TunnelLengths(reveal::RevelationMethod::kBrpr);
  const auto either =
      result.TunnelLengths(reveal::RevelationMethod::kEither);
  const auto all = result.AllTunnelLengths();

  std::cout << analysis::RenderPdfComparison(
      {{"DPR", &dpr}, {"BRPR", &brpr}, {"either", &either}, {"all", &all}},
      2, all.empty() ? 8 : std::max(8, all.Max()));
  std::cout << "\n"
            << analysis::RenderPdf(all, 2,
                                   all.empty() ? 8 : std::max(8, all.Max()),
                                   "all revealed tunnels");
  if (!all.empty()) {
    std::cout << "median FTL: " << all.Median()
              << "  max: " << all.Max() << "\n";
  }
  std::cout << "shape (paper): strongly decreasing, short tunnels dominate "
               "(red-dot mass at length 2 = single-LSR tunnels where DPR and "
               "BRPR are indistinguishable); very few exceed 12 hops.\n";
  return 0;
}
