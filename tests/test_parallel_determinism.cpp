// The parallel campaign must be a pure optimisation: running the same
// campaign with any number of worker threads yields bit-identical results
// — traces, revelations, analyses, probe accounting, and merged engine
// stats. Failure injection is switched on so the test also covers the
// probe-id-sensitive paths (deterministic ICMP loss draws).
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/campaign_report.h"
#include "campaign/campaign.h"
#include "gen/internet.h"
#include "io/tracefile.h"

namespace wormhole::campaign {
namespace {

gen::InternetOptions WorldOptions() {
  gen::InternetOptions options;
  options.seed = 17;
  options.tier1_count = 2;
  options.transit_count = 5;
  options.stub_count = 12;
  options.vp_count = 5;
  options.anonymous_router_probability = 0.02;
  options.icmp_loss = 0.05;
  return options;
}

struct Outcome {
  CampaignResult result;
  sim::EngineStats stats;
  std::string traces_text;
  std::string report_text;
};

Outcome RunWith(std::size_t jobs) {
  // A fresh world per run: engine stat shards start from zero, so the
  // merged EngineStats can be compared exactly.
  gen::SyntheticInternet net(WorldOptions());
  Campaign campaign(net.engine(), net.vantage_points(), {.jobs = jobs});
  Outcome outcome;
  outcome.result = campaign.Run(net.AllLoopbacks());
  outcome.stats = net.engine().stats();
  std::ostringstream traces;
  io::WriteTraces(traces, outcome.result.traces);
  outcome.traces_text = traces.str();
  std::ostringstream report;
  analysis::WriteCampaignReport(report, outcome.result, net.topology());
  outcome.report_text = report.str();
  return outcome;
}

TEST(ParallelDeterminism, CampaignIsIdenticalAcrossJobCounts) {
  const Outcome seq = RunWith(1);
  const Outcome par = RunWith(4);

  // Sanity: the campaign did real work.
  ASSERT_GT(seq.result.traces.size(), 0u);
  ASSERT_GT(seq.result.revelations.size(), 0u);
  ASSERT_GT(seq.result.probes_sent, 0u);

  // Every trace, hop by hop (serialised form covers addresses, TTLs,
  // labels, RTTs).
  EXPECT_EQ(seq.traces_text, par.traces_text);

  // Revelation dedup map: same pairs, same revealed hops, same methods.
  ASSERT_EQ(seq.result.revelations.size(), par.result.revelations.size());
  auto it_par = par.result.revelations.begin();
  for (const auto& [pair, revelation] : seq.result.revelations) {
    ASSERT_EQ(pair, it_par->first);
    EXPECT_EQ(revelation.revealed, it_par->second.revealed);
    EXPECT_EQ(revelation.method, it_par->second.method);
    EXPECT_EQ(revelation.traces_used, it_par->second.traces_used);
    EXPECT_EQ(revelation.batch_sizes, it_par->second.batch_sizes);
    ++it_par;
  }

  // Candidate records in merge order.
  ASSERT_EQ(seq.result.candidates.size(), par.result.candidates.size());
  for (std::size_t i = 0; i < seq.result.candidates.size(); ++i) {
    const CandidateRecord& a = seq.result.candidates[i];
    const CandidateRecord& b = par.result.candidates[i];
    EXPECT_EQ(a.pair, b.pair);
    EXPECT_EQ(a.asn, b.asn);
    EXPECT_EQ(a.egress_forward_ttl, b.egress_forward_ttl);
    EXPECT_EQ(a.egress_return_ttl, b.egress_return_ttl);
    EXPECT_EQ(a.egress_echo_ttl, b.egress_echo_ttl);
    EXPECT_EQ(a.revealed, b.revealed);
    EXPECT_EQ(a.revealed_count, b.revealed_count);
  }

  // FRPLA / RTLA / fingerprints / UHP suspicions / Fig. 11 distributions —
  // all serialised into the campaign report.
  EXPECT_EQ(seq.report_text, par.report_text);

  // Probe accounting and the merged per-thread engine stat shards.
  EXPECT_EQ(seq.result.probes_sent, par.result.probes_sent);
  EXPECT_EQ(seq.result.revelation_traces, par.result.revelation_traces);
  EXPECT_EQ(seq.stats, par.stats);
  EXPECT_EQ(seq.stats.packets_injected, seq.result.probes_sent);
}

TEST(ParallelDeterminism, DiscoveryMergesInVantagePointOrder) {
  gen::SyntheticInternet net(WorldOptions());
  gen::SyntheticInternet net2(WorldOptions());
  Campaign seq(net.engine(), net.vantage_points(), {.jobs = 1});
  Campaign par(net2.engine(), net2.vantage_points(), {.jobs = 4});
  EXPECT_EQ(seq.jobs(), 1u);
  EXPECT_EQ(par.jobs(), 4u);

  const auto targets = net.AllLoopbacks();
  const auto a = seq.RunDiscovery(targets);
  const auto b = par.RunDiscovery(targets);
  std::ostringstream sa, sb;
  io::WriteTraces(sa, a);
  io::WriteTraces(sb, b);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(ParallelDeterminism, ConcurrentSendBatchMatchesSequentialSend) {
  // Many threads stepping batches against one shared engine (each with
  // its own BatchResult, per the contract) must neither race — this test
  // runs under TSan in CI — nor perturb results: every thread's outcomes
  // equal the sequential Send outcomes for the same probes.
  gen::SyntheticInternet net(WorldOptions());
  const sim::Engine& engine = net.engine();
  const auto vps = net.vantage_points();
  const auto loopbacks = net.AllLoopbacks();

  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<netbase::Packet>> per_thread(kThreads);
  for (std::size_t w = 0; w < kThreads; ++w) {
    std::uint32_t id = 0;
    for (std::size_t t = w; t < loopbacks.size(); t += kThreads) {
      for (int ttl = 1; ttl <= 10; ++ttl) {
        netbase::Packet probe;
        probe.kind = netbase::PacketKind::kEchoRequest;
        probe.src = vps[w % vps.size()];
        probe.dst = loopbacks[t];
        probe.ip_ttl = ttl;
        probe.probe_id = ++id;
        per_thread[w].push_back(probe);
      }
    }
  }

  std::vector<std::vector<sim::Engine::Outcome>> expected(kThreads);
  for (std::size_t w = 0; w < kThreads; ++w) {
    for (const netbase::Packet& probe : per_thread[w]) {
      expected[w].push_back(engine.Send(probe));
    }
  }

  exec::ThreadPool pool(kThreads);
  std::vector<std::vector<sim::Engine::Outcome>> got(kThreads);
  exec::ParallelFor(pool, kThreads, [&](std::size_t w) {
    sim::Engine::BatchResult batch;
    // Two batches per thread through one recycled BatchResult, so the
    // concurrent run also covers arena reuse.
    auto first_half = per_thread[w];
    first_half.resize(per_thread[w].size() / 2);
    auto second_half = std::vector<netbase::Packet>(
        per_thread[w].begin() +
            static_cast<std::ptrdiff_t>(first_half.size()),
        per_thread[w].end());
    engine.SendBatch(first_half, batch);
    got[w] = batch.outcomes;
    engine.SendBatch(second_half, batch);
    got[w].insert(got[w].end(), batch.outcomes.begin(),
                  batch.outcomes.end());
  });

  for (std::size_t w = 0; w < kThreads; ++w) {
    ASSERT_EQ(got[w].size(), expected[w].size()) << "thread " << w;
    for (std::size_t i = 0; i < got[w].size(); ++i) {
      EXPECT_EQ(got[w][i], expected[w][i]) << "thread " << w << " slot " << i;
    }
  }
}

TEST(ParallelDeterminism, ZeroJobsResolvesToHardwareConcurrency) {
  gen::SyntheticInternet net(WorldOptions());
  Campaign campaign(net.engine(), net.vantage_points(), {});
  EXPECT_EQ(campaign.jobs(), exec::HardwareConcurrency());
}

}  // namespace
}  // namespace wormhole::campaign
