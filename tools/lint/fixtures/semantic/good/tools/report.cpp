// sem-unordered-flow fixture, clean counterpart (entry side).
namespace fix {

class Core;

int ReportHelper(Core& core);

int Report(Core& core) { return ReportHelper(core); }

}  // namespace fix
