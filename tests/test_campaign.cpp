// Integration tests of the full measurement pipeline against ground truth.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/campaign_report.h"
#include "analysis/correct.h"
#include "analysis/tables.h"
#include "campaign/campaign.h"
#include "campaign/crossval.h"
#include "gen/internet.h"

namespace wormhole::campaign {
namespace {

// One shared campaign over the default synthetic Internet (runs in well
// under a second).
class CampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new gen::SyntheticInternet({.seed = 7});
    Campaign campaign(net_->engine(), net_->vantage_points(), {});
    result_ = new CampaignResult(campaign.Run(net_->AllLoopbacks()));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete net_;
    net_ = nullptr;
    result_ = nullptr;
  }
  static gen::SyntheticInternet* net_;
  static CampaignResult* result_;
};

gen::SyntheticInternet* CampaignTest::net_ = nullptr;
CampaignResult* CampaignTest::result_ = nullptr;

TEST_F(CampaignTest, FindsHdnsAndTargets) {
  EXPECT_GT(result_->targets.hdns.size(), 0u);
  EXPECT_GT(result_->targets.all.size(), 0u);
  EXPECT_GE(result_->targets.set_a.size() + result_->targets.set_b.size(),
            result_->targets.all.size());
}

TEST_F(CampaignTest, RevealsTunnels) {
  EXPECT_GT(result_->revelations.size(), 0u);
  EXPECT_GT(result_->revealed_count(), 0u);
}

TEST_F(CampaignTest, RevelationsOnlyInInvisiblePhpAses) {
  for (const auto& [pair, revelation] : result_->revelations) {
    const topo::AsNumber asn =
        net_->topology().AsOfAddress(pair.egress);
    ASSERT_NE(asn, 0u);
    const gen::AsProfile& profile = net_->profile(asn);
    if (revelation.succeeded()) {
      EXPECT_TRUE(profile.invisible_tunnels())
          << "revealed a tunnel in visible AS" << asn;
      EXPECT_EQ(profile.popping, mpls::Popping::kPhp);
    }
  }
}

TEST_F(CampaignTest, EveryCandidateInInvisiblePhpAsIsRevealed) {
  // The paper's claim: PHP + LDP implies at least one technique works.
  for (const auto& [pair, revelation] : result_->revelations) {
    const topo::AsNumber asn = net_->topology().AsOfAddress(pair.egress);
    const gen::AsProfile& profile = net_->profile(asn);
    if (profile.invisible_tunnels() &&
        profile.popping == mpls::Popping::kPhp) {
      EXPECT_TRUE(revelation.succeeded())
          << "unrevealed PHP tunnel in AS" << asn;
    }
  }
}

TEST_F(CampaignTest, RevealedHopsAreTrueRouterAddressesOfTheSameAs) {
  for (const auto& [pair, revelation] : result_->revelations) {
    if (!revelation.succeeded()) continue;
    const topo::AsNumber asn = net_->topology().AsOfAddress(pair.egress);
    for (const netbase::Ipv4Address hop : revelation.revealed) {
      const auto router = net_->topology().FindRouterByAddress(hop);
      ASSERT_TRUE(router.has_value());
      EXPECT_EQ(net_->topology().router(*router).asn, asn);
    }
  }
}

TEST_F(CampaignTest, RevealedPathMatchesGroundTruthAdjacency) {
  // Consecutive revealed hops (plus the LER endpoints) must be physically
  // adjacent routers — the revelation reconstructs a real path.
  const topo::Topology& topology = net_->topology();
  const auto router_of = [&](netbase::Ipv4Address a) {
    return *topology.FindRouterByAddress(a);
  };
  const auto adjacent = [&](topo::RouterId a, topo::RouterId b) {
    for (const auto& [neighbor, link] : topology.Neighbors(a)) {
      if (neighbor == b) return true;
    }
    return false;
  };
  for (const auto& [pair, revelation] : result_->revelations) {
    if (!revelation.succeeded()) continue;
    std::vector<topo::RouterId> chain{router_of(pair.ingress)};
    for (const auto hop : revelation.revealed) {
      chain.push_back(router_of(hop));
    }
    chain.push_back(router_of(pair.egress));
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      EXPECT_TRUE(adjacent(chain[i], chain[i + 1]))
          << "non-adjacent revealed hop pair";
    }
  }
}

TEST_F(CampaignTest, MethodMixMatchesLdpPolicies) {
  // Cisco-profile (all-prefix) ASes must be peeled by BRPR, Juniper-profile
  // (loopback-only) ones by DPR; single-LSR tunnels stay ambiguous.
  for (const auto& [pair, revelation] : result_->revelations) {
    if (!revelation.succeeded()) continue;
    if (revelation.method == reveal::RevelationMethod::kEither) continue;
    const topo::AsNumber asn = net_->topology().AsOfAddress(pair.egress);
    const gen::AsProfile& profile = net_->profile(asn);
    if (profile.hardware == gen::HardwareProfile::kCisco) {
      EXPECT_EQ(revelation.method, reveal::RevelationMethod::kBrpr)
          << "AS" << asn;
    }
    if (profile.hardware == gen::HardwareProfile::kJuniper ||
        profile.hardware == gen::HardwareProfile::kMixed) {
      EXPECT_EQ(revelation.method, reveal::RevelationMethod::kDpr)
          << "AS" << asn;
    }
  }
}

TEST(CampaignFrpla, ShiftsPositiveOnRevealedEgresses) {
  // FRPLA needs egress LERs whose time-exceeded replies start at 255 — for
  // a <128,128> or <64,64> egress the return LSE-TTL (from 255) always
  // exceeds the reply's IP-TTL, the min rule never fires, and the return
  // tunnel stays uncounted (a real limitation, see Table 1 discussion).
  // Use a Cisco/Juniper world, as in the paper's Fig. 7.
  gen::InternetOptions options;
  options.seed = 7;
  options.cisco_weight = 0.55;
  options.juniper_weight = 0.45;
  options.mixed_weight = 0.0;
  options.other_weight = 0.0;
  gen::SyntheticInternet net(options);
  Campaign campaign(net.engine(), net.vantage_points(), {});
  const CampaignResult result = campaign.Run(net.AllLoopbacks());

  const auto egress =
      result.frpla.Combined(reveal::ResponderRole::kEgressRevealed);
  const auto others = result.frpla.Combined(reveal::ResponderRole::kOther);
  ASSERT_FALSE(egress.empty());
  ASSERT_FALSE(others.empty());
  // Fig. 7a: the egress PDF shifts right of the others.
  EXPECT_GE(egress.Median(), others.Median() + 1);
  EXPECT_GT(egress.Mean(), others.Mean());
  EXPECT_LE(std::abs(others.Mean()), 1.5);
}

TEST_F(CampaignTest, RtlaMatchesRevealedTunnelLengths) {
  // Fig. 9b: return tunnel length (RTLA) minus forward tunnel length
  // (revealed) centres near 0 when routing is near-symmetric.
  netbase::IntDistribution asymmetry;
  for (const CandidateRecord& record : result_->candidates) {
    if (!record.revealed || !record.egress_echo_ttl) continue;
    const auto obs = reveal::ObserveRtla(
        record.pair.egress, record.egress_return_ttl,
        *record.egress_echo_ttl);
    if (!obs) continue;
    asymmetry.Add(obs->return_tunnel_length() - record.revealed_count);
  }
  if (!asymmetry.empty()) {
    EXPECT_LE(std::abs(asymmetry.Median()), 1);
  }
}

TEST_F(CampaignTest, PathLengthsGrowAfterCorrection) {
  ASSERT_FALSE(result_->path_length_invisible.empty());
  EXPECT_GT(result_->path_length_visible.Mean(),
            result_->path_length_invisible.Mean());
}

TEST_F(CampaignTest, CorrectionReducesDegreeAndDensity) {
  const auto corrected = analysis::CorrectedCopy(
      result_->inferred, result_->revelations,
      TruthResolver(net_->topology()), net_->topology());
  // Max degree must not grow; at least one HDN deflates.
  const auto before = result_->inferred.DegreeDistribution();
  const auto after = corrected.DegreeDistribution();
  EXPECT_LE(after.Max(), before.Max());

  const auto rows = analysis::MakeDiscoveryTable(
      *result_, corrected, net_->topology(), 8);
  ASSERT_FALSE(rows.empty());
  bool any_denser_before = false;
  for (const auto& row : rows) {
    if (row.pct_revealed > 50.0 && row.density_before > row.density_after) {
      any_denser_before = true;
    }
  }
  EXPECT_TRUE(any_denser_before);
}

TEST_F(CampaignTest, DeploymentTableReflectsHardwareProfiles) {
  const auto rows =
      analysis::MakeDeploymentTable(*result_, net_->topology());
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    const gen::AsProfile& profile = net_->profile(row.asn);
    switch (profile.hardware) {
      case gen::HardwareProfile::kCisco:
        EXPECT_GT(row.pct_cisco, 80.0) << "AS" << row.asn;
        break;
      case gen::HardwareProfile::kJuniper:
        EXPECT_GT(row.pct_junos, 80.0) << "AS" << row.asn;
        break;
      case gen::HardwareProfile::kMixed:
        EXPECT_GT(row.pct_junos + row.pct_6464 + row.pct_cisco, 80.0);
        break;
      case gen::HardwareProfile::kOther:
        EXPECT_GT(row.pct_other + row.pct_6464, 50.0);
        break;
    }
    // Sane percentages.
    EXPECT_LE(row.pct_dpr + row.pct_brpr + row.pct_either + row.pct_hybrid,
              100.001);
  }
}

TEST_F(CampaignTest, DatasetBuilderPrunesPrivateAddressesAndGaps) {
  probe::TraceResult trace;
  trace.hops.resize(4);
  trace.hops[0] = {.probe_ttl = 1,
                   .address = netbase::Ipv4Address(5, 0, 0, 1)};
  trace.hops[1] = {.probe_ttl = 2,
                   .address = netbase::Ipv4Address(192, 168, 0, 1)};
  trace.hops[2] = {.probe_ttl = 3};  // timeout
  trace.hops[3] = {.probe_ttl = 4,
                   .address = netbase::Ipv4Address(5, 0, 0, 2)};
  topo::ItdkDataset dataset;
  const auto identity = [](netbase::Ipv4Address a) { return a; };
  AddTraceToDataset(dataset, trace, identity, net_->topology());
  EXPECT_EQ(dataset.node_count(), 2u);  // private hop pruned
  EXPECT_EQ(dataset.link_count(), 0u);  // gap broke adjacency
}

TEST(CampaignUhp, UhpSuspicionsPointAtUhpAses) {
  // Force a world with UHP clouds and check the duplicate-hop signal is
  // attributed to them (and overwhelmingly to actual UHP deployments).
  gen::InternetOptions options;
  options.seed = 5;
  options.tier1_count = 2;
  options.transit_count = 6;
  options.stub_count = 12;
  options.vp_count = 6;
  options.uhp_probability = 0.5;
  options.no_ttl_propagate_probability = 1.0;
  gen::SyntheticInternet net(options);
  bool has_uhp = false;
  for (const auto& [asn, profile] : net.profiles()) {
    if (profile.mpls && profile.popping == mpls::Popping::kUhp) {
      has_uhp = true;
    }
  }
  ASSERT_TRUE(has_uhp);

  Campaign campaign(net.engine(), net.vantage_points(), {});
  const auto result = campaign.Run(net.AllLoopbacks());
  ASSERT_FALSE(result.uhp_suspicions.empty());
  std::size_t at_uhp = 0, elsewhere = 0;
  for (const auto& [asn, count] : result.uhp_suspicions) {
    if (net.profile(asn).popping == mpls::Popping::kUhp &&
        net.profile(asn).mpls) {
      at_uhp += count;
    } else {
      elsewhere += count;
    }
  }
  EXPECT_GT(at_uhp, 0u);
  EXPECT_GT(at_uhp, elsewhere * 3);
}

TEST_F(CampaignTest, ReportContainsTheHeadlineSections) {
  std::stringstream report;
  analysis::WriteCampaignReport(report, *result_, net_->topology());
  const std::string text = report.str();
  for (const char* expected :
       {"campaign report", "Graph correction", "Discovery per AS",
        "Deployment per AS", "tunnels revealed", "forward tunnel length"}) {
    EXPECT_NE(text.find(expected), std::string::npos) << expected;
  }
}

TEST_F(CampaignTest, DistributionCsvIsWellFormed) {
  std::stringstream csv;
  analysis::WriteDistributionCsv(csv, result_->path_length_invisible);
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  EXPECT_EQ(line, "value,count,pdf");
  std::size_t rows = 0;
  while (std::getline(csv, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 2) << line;
    ++rows;
  }
  EXPECT_EQ(rows, result_->path_length_invisible.buckets().size());
}

TEST_F(CampaignTest, AliasResolutionMergesNodesAndLinks) {
  // Alias resolution can only merge: fewer (or equal) nodes and links than
  // the raw per-interface graph, and every interface-level address must
  // resolve into some truth-level node.
  const auto none = BuildDataset(result_->traces, InterfaceResolver(),
                                 net_->topology());
  const auto truth = BuildDataset(result_->traces,
                                  TruthResolver(net_->topology()),
                                  net_->topology());
  EXPECT_GE(none.node_count(), truth.node_count());
  EXPECT_GE(none.link_count(), truth.link_count());
  for (const topo::ItdkNode& node : none.nodes()) {
    EXPECT_TRUE(truth.FindNode(node.addresses.front()).has_value());
  }
}

TEST_F(CampaignTest, NoisyResolverInterpolatesBetweenExtremes) {
  const auto truth = BuildDataset(result_->traces,
                                  TruthResolver(net_->topology()),
                                  net_->topology());
  const auto noisy = BuildDataset(
      result_->traces, NoisyResolver(net_->topology(), 0.3, 1),
      net_->topology());
  const auto none = BuildDataset(result_->traces, InterfaceResolver(),
                                 net_->topology());
  EXPECT_GE(noisy.node_count(), truth.node_count());
  EXPECT_LE(noisy.node_count(), none.node_count());
  // Determinism: the same seed merges the same addresses.
  const auto again = BuildDataset(
      result_->traces, NoisyResolver(net_->topology(), 0.3, 1),
      net_->topology());
  EXPECT_EQ(noisy.node_count(), again.node_count());
  EXPECT_EQ(noisy.link_count(), again.link_count());
}

// --- Cross-validation (Table 3) ---------------------------------------------

TEST(CrossValidation, ValidatesDprAndBrprOnExplicitTunnels) {
  gen::SyntheticInternet net({.seed = 11});
  net.ForceTtlPropagation(true);

  std::vector<probe::Prober> probers;
  for (const auto vp : net.vantage_points()) {
    probers.emplace_back(net.engine(), vp);
  }
  // Collect explicit tunnels with plain traces to every loopback.
  std::vector<probe::TraceResult> traces;
  for (std::size_t i = 0; i < probers.size(); ++i) {
    for (const auto loopback : net.AllLoopbacks()) {
      traces.push_back(probers[i].Traceroute(loopback, {.first_ttl = 2}));
    }
  }
  const auto tunnels = ExtractExplicitTunnels(traces, net.topology());
  ASSERT_GT(tunnels.size(), 0u);

  const auto summary = CrossValidateAll(probers, tunnels, {.first_ttl = 2});
  EXPECT_EQ(summary.pairs_total, tunnels.size());
  // The bulk must validate: DPR on loopback-only ASes, BRPR on all-prefix
  // ones, "either" for single-LSR tunnels.
  const std::size_t ok =
      summary.dpr + summary.brpr + summary.either + summary.hybrid;
  EXPECT_GT(ok, 0u);
  EXPECT_GE(static_cast<double>(ok),
            0.8 * static_cast<double>(summary.validated()));
}

TEST(CrossValidation, ExtractsOnlySameAsCleanTunnels) {
  gen::SyntheticInternet net({.seed = 11});
  net.ForceTtlPropagation(true);
  probe::Prober prober(net.engine(), net.vantage_points().front());
  std::vector<probe::TraceResult> traces;
  for (const auto loopback : net.AllLoopbacks()) {
    traces.push_back(prober.Traceroute(loopback, {.first_ttl = 2}));
  }
  for (const auto& tunnel :
       ExtractExplicitTunnels(traces, net.topology())) {
    EXPECT_FALSE(tunnel.lsrs.empty());
    EXPECT_EQ(net.topology().AsOfAddress(tunnel.ingress), tunnel.asn);
    EXPECT_EQ(net.topology().AsOfAddress(tunnel.egress), tunnel.asn);
    for (const auto lsr : tunnel.lsrs) {
      EXPECT_EQ(net.topology().AsOfAddress(lsr), tunnel.asn);
    }
  }
}

}  // namespace
}  // namespace wormhole::campaign
