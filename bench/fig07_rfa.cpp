// Fig. 7: Return-vs-Forward path Asymmetry (RFA) PDFs.
//  (a) Others / Ingress LERs vs Egress LERs with path revelation: the
//      egress curve shifts right (the return path counts the tunnel).
//  (b) Correcting the forward length with the revealed hop count recentres
//      the egress curve on 0.
#include <iostream>

#include "analysis/report.h"
#include "bench/common.h"
#include "probe/trace.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader("Return vs Forward path Asymmetry", "Fig. 7a/7b");

  const auto world = bench::RunFlagshipCampaign();
  const auto& result = world.result;

  const auto others = result.frpla.Combined(reveal::ResponderRole::kOther);
  const auto ingress =
      result.frpla.Combined(reveal::ResponderRole::kIngress);
  const auto egress_pr =
      result.frpla.Combined(reveal::ResponderRole::kEgressRevealed);
  const auto egress_npr =
      result.frpla.Combined(reveal::ResponderRole::kEgressHidden);

  std::cout << "--- (a) RFA by responder role ---\n";
  std::cout << analysis::RenderPdfComparison({{"Others", &others},
                                              {"Ingress", &ingress},
                                              {"EgressPR", &egress_pr},
                                              {"EgressNPR", &egress_npr}},
                                             -8, 12);
  if (!others.empty() && !egress_pr.empty()) {
    std::cout << "\nmedians: others " << others.Median() << ", ingress "
              << (ingress.empty() ? 0 : ingress.Median()) << ", egress-PR "
              << egress_pr.Median()
              << "  (paper: ~1 vs ~1 vs ~4)\n";
  }

  // (b) corrected: add the revealed hop count to the forward length.
  netbase::IntDistribution corrected;
  for (const auto& record : result.candidates) {
    if (!record.revealed) continue;
    const int return_length =
        probe::PathLengthFromTtl(record.egress_return_ttl);
    corrected.Add(return_length -
                  (record.egress_forward_ttl + record.revealed_count));
  }
  std::cout << "\n--- (b) corrected egress RFA (forward += revealed) ---\n";
  std::cout << analysis::RenderPdfComparison(
      {{"EgressPR", &egress_pr}, {"Corrected", &corrected}}, -8, 12);
  if (!corrected.empty()) {
    std::cout << "\ncorrected median: " << corrected.Median()
              << " (paper: recentred at ~0)\n";
  }
  return 0;
}
