#include "sim/vendor.h"

namespace wormhole::sim {

VendorBehavior BehaviorOf(topo::Vendor vendor) {
  switch (vendor) {
    case topo::Vendor::kCiscoIos:
    case topo::Vendor::kCiscoIosXr:
      return {255, 255};
    case topo::Vendor::kJuniperJunos:
      return {255, 64};
    case topo::Vendor::kJuniperJunosE:
      return {128, 128};
    case topo::Vendor::kBrocade:
    case topo::Vendor::kLinux:
      return {64, 64};
  }
  return {255, 255};
}

}  // namespace wormhole::sim
