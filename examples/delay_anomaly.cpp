// delay_anomaly — the paper's Sec. 1 / Fig. 6 motivation: an invisible
// tunnel makes the delay between its endpoints look anomalously large
// ("where did my 50 ms go?"); revealing the hidden hops decomposes the
// jump and exonerates the inter-LER "link".
#include <iomanip>
#include <iostream>

#include "mpls/config.h"
#include "probe/prober.h"
#include "reveal/revelator.h"
#include "sim/network.h"
#include "topo/topology.h"

using namespace wormhole;

int main() {
  // A transcontinental MPLS cloud: six slow interior hops.
  topo::Topology topology;
  topology.AddAs(1, "access");
  topology.AddAs(2, "backbone");
  topology.AddAs(3, "content");
  const auto gw = topology.AddRouter(1, "gw", topo::Vendor::kCiscoIos);
  const auto in = topology.AddRouter(2, "ingress", topo::Vendor::kCiscoIos);
  topo::RouterId previous = in;
  for (int i = 0; i < 6; ++i) {
    const auto lsr = topology.AddRouter(2, "lsr" + std::to_string(i),
                                        topo::Vendor::kCiscoIos);
    topology.AddLink(previous, lsr, {.delay_ms = 8.0});
    previous = lsr;
  }
  const auto out = topology.AddRouter(2, "egress", topo::Vendor::kCiscoIos);
  topology.AddLink(previous, out, {.delay_ms = 8.0});
  const auto server = topology.AddRouter(3, "server", topo::Vendor::kLinux);
  topology.AddLink(gw, in, {.delay_ms = 1.0});
  topology.AddLink(out, server, {.delay_ms = 1.0});
  const auto vp = topology.AttachHost(gw, "monitor");

  mpls::MplsConfigMap configs(topology);
  configs.EnableAs(2, {.ttl_propagate = false});
  sim::Network network(topology, configs,
                       routing::BgpPolicy{.stub_ases = {1, 3}});
  probe::Prober prober(network.engine(), vp);

  const auto name_of = [&](netbase::Ipv4Address a) {
    const auto router = topology.FindRouterByAddress(a);
    return router ? topology.router(*router).name : a.ToString();
  };

  std::cout << "A monitoring system traces its content server:\n\n";
  const auto trace = prober.Traceroute(topology.router(server).loopback);
  std::cout << std::fixed << std::setprecision(1);
  double previous_rtt = 0.0;
  for (const auto& hop : trace.hops) {
    if (!hop.address) continue;
    std::cout << "  " << hop.probe_ttl << "  " << std::left << std::setw(10)
              << name_of(*hop.address) << std::right << std::setw(7)
              << hop.rtt_ms << " ms";
    if (hop.rtt_ms - previous_rtt > 20.0) {
      std::cout << "   <-- +" << hop.rtt_ms - previous_rtt
                << " ms in \"one\" hop?!";
    }
    previous_rtt = hop.rtt_ms;
    std::cout << "\n";
  }

  std::cout << "\nThe ingress-egress 'link' looks terrible. Reveal it:\n\n";
  const auto last3 = trace.LastResponders(3);
  reveal::Revelator revelator(prober);
  const auto revelation = revelator.Reveal(last3[0], last3[1]);
  if (!revelation.succeeded()) {
    std::cout << "  nothing revealed (UHP cloud)\n";
    return 0;
  }
  std::cout << "  " << reveal::ToString(revelation.method) << " revealed "
            << revelation.revealed.size() << " hidden hops:\n";
  // Ping each revealed hop to decompose the RTT across the interior.
  previous_rtt = 0.0;
  std::vector<netbase::Ipv4Address> path = revelation.revealed;
  path.push_back(revelation.egress);
  for (const auto hop : path) {
    const auto ping = prober.Ping(hop);
    if (!ping.responded) continue;
    std::cout << "     " << std::left << std::setw(10) << name_of(hop)
              << std::right << std::setw(7) << ping.rtt_ms << " ms   (+"
              << ping.rtt_ms - previous_rtt << ")\n";
    previous_rtt = ping.rtt_ms;
  }
  std::cout << "\nThe 'anomaly' was " << revelation.revealed.size()
            << " invisible MPLS hops of ~8 ms each — not a broken link.\n";
  return 0;
}
