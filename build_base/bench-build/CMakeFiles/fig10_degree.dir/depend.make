# Empty dependencies file for fig10_degree.
# This may be replaced when dependencies are built.
