#include "routing/fib.h"

#include <algorithm>

namespace wormhole::routing {

void Fib::AddRoute(FibEntry entry) {
  std::sort(entry.next_hops.begin(), entry.next_hops.end());
  entry.next_hops.erase(
      std::unique(entry.next_hops.begin(), entry.next_hops.end()),
      entry.next_hops.end());
  const auto key = std::make_pair(entry.prefix.address().value(),
                                  entry.prefix.length());
  routes_.insert_or_assign(key, std::move(entry));
}

const FibEntry* Fib::Lookup(Ipv4Address dst) const {
  // Probe each possible length from most to least specific; with at most 33
  // probes into a flat map this is plenty fast for simulation scale.
  for (int length = 32; length >= 0; --length) {
    const Prefix candidate(dst, length);
    const auto it = routes_.find(
        {candidate.address().value(), candidate.length()});
    if (it != routes_.end()) return &it->second;
  }
  return nullptr;
}

const FibEntry* Fib::LookupExact(const Prefix& prefix) const {
  const auto it = routes_.find({prefix.address().value(), prefix.length()});
  return it == routes_.end() ? nullptr : &it->second;
}

std::vector<const FibEntry*> Fib::Entries() const {
  std::vector<const FibEntry*> out;
  out.reserve(routes_.size());
  for (const auto& [key, entry] : routes_) out.push_back(&entry);
  return out;
}

}  // namespace wormhole::routing
