// Performance micro-benchmarks (google-benchmark): control-plane
// convergence, data-plane forwarding throughput, probing and revelation
// speed. These are not paper results — they document that the simulator
// scales to campaign sizes.
#include <benchmark/benchmark.h>

#include "campaign/campaign.h"
#include "gen/gns3.h"
#include "gen/internet.h"
#include "mpls/ldp.h"
#include "probe/prober.h"
#include "reveal/revelator.h"
#include "routing/igp.h"

namespace {

using namespace wormhole;

const gen::SyntheticInternet& SharedNet() {
  static gen::SyntheticInternet* net =
      new gen::SyntheticInternet({.seed = 42});
  return *net;
}

void BM_SpfSingleSource(benchmark::State& state) {
  const auto& net = SharedNet();
  // The largest AS.
  topo::AsNumber biggest = 0;
  std::size_t best = 0;
  for (const auto asn : net.topology().AsNumbers()) {
    if (net.topology().as(asn).routers.size() > best) {
      best = net.topology().as(asn).routers.size();
      biggest = asn;
    }
  }
  const auto source = net.topology().as(biggest).routers.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::ComputeSpf(net.topology(), source));
  }
  state.counters["routers_in_as"] = static_cast<double>(best);
}
BENCHMARK(BM_SpfSingleSource);

void BM_FullControlPlaneConvergence(benchmark::State& state) {
  gen::InternetOptions options;
  options.seed = 42;
  for (auto _ : state) {
    gen::SyntheticInternet net(options);
    benchmark::DoNotOptimize(net.topology().router_count());
  }
}
BENCHMARK(BM_FullControlPlaneConvergence)->Unit(benchmark::kMillisecond);

void BM_LdpDomainBuild(benchmark::State& state) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  for (auto _ : state) {
    mpls::LdpTables tables(testbed.topology(), testbed.configs(),
                           testbed.network().fibs());
    benchmark::DoNotOptimize(tables.DomainOf(2));
  }
}
BENCHMARK(BM_LdpDomainBuild);

void BM_TracerouteThroughTunnel(benchmark::State& state) {
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kBackwardRecursive});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto target = testbed.Address("CE2.left");
  for (auto _ : state) {
    benchmark::DoNotOptimize(prober.Traceroute(target));
  }
  state.counters["probes/s"] = benchmark::Counter(
      static_cast<double>(prober.probes_sent()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TracerouteThroughTunnel);

void BM_PingAcrossInternet(benchmark::State& state) {
  auto& net = const_cast<gen::SyntheticInternet&>(SharedNet());
  probe::Prober prober(net.engine(), net.vantage_points().front());
  const auto loopbacks = net.AllLoopbacks();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prober.Ping(loopbacks[i % loopbacks.size()]));
    ++i;
  }
}
BENCHMARK(BM_PingAcrossInternet);

void BM_TunnelRevelation(benchmark::State& state) {
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kBackwardRecursive});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto x = testbed.Address("PE1.left");
  const auto y = testbed.Address("PE2.left");
  for (auto _ : state) {
    reveal::Revelator revelator(prober);
    benchmark::DoNotOptimize(revelator.Reveal(x, y));
  }
}
BENCHMARK(BM_TunnelRevelation);

void BM_FullCampaign(benchmark::State& state) {
  for (auto _ : state) {
    gen::SyntheticInternet net({.seed = 42,
                                .transit_count = 4,
                                .stub_count = 10,
                                .vp_count = 4});
    campaign::Campaign campaign(net.engine(), net.vantage_points(), {});
    benchmark::DoNotOptimize(campaign.Run(net.AllLoopbacks()));
  }
}
BENCHMARK(BM_FullCampaign)->Unit(benchmark::kMillisecond);

void BM_CampaignParallelScaling(benchmark::State& state) {
  // One fixed synthetic Internet (built once, shared across thread
  // counts), 8 vantage points so every jobs level up to 8 has a full
  // shard to chew on. Compare the per-iteration times across the
  // jobs=1/2/4/8 rows for the end-to-end campaign speedup; the campaign
  // result itself is identical for every row.
  static gen::SyntheticInternet* net =
      new gen::SyntheticInternet({.seed = 42,
                                  .transit_count = 6,
                                  .stub_count = 16,
                                  .vp_count = 8});
  const auto loopbacks = net->AllLoopbacks();
  campaign::CampaignOptions options;
  options.jobs = static_cast<std::size_t>(state.range(0));
  std::uint64_t probes = 0;
  for (auto _ : state) {
    campaign::Campaign campaign(net->engine(), net->vantage_points(),
                                options);
    const auto result = campaign.Run(loopbacks);
    benchmark::DoNotOptimize(result.revelations.size());
    probes += result.probes_sent;
  }
  state.counters["jobs"] = static_cast<double>(options.jobs);
  state.counters["probes/s"] = benchmark::Counter(
      static_cast<double>(probes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignParallelScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
