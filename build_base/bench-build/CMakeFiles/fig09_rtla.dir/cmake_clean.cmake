file(REMOVE_RECURSE
  "../bench/fig09_rtla"
  "../bench/fig09_rtla.pdb"
  "CMakeFiles/fig09_rtla.dir/fig09_rtla.cpp.o"
  "CMakeFiles/fig09_rtla.dir/fig09_rtla.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_rtla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
