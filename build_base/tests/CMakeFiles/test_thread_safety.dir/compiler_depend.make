# Empty compiler generated dependencies file for test_thread_safety.
# This may be replaced when dependencies are built.
