# Empty compiler generated dependencies file for wormhole_gen.
# This may be replaced when dependencies are built.
