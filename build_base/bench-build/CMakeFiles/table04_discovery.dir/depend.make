# Empty dependencies file for table04_discovery.
# This may be replaced when dependencies are built.
