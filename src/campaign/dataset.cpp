#include "campaign/dataset.h"

namespace wormhole::campaign {

AliasResolver TruthResolver(const topo::Topology& topology) {
  return [&topology](netbase::Ipv4Address address) {
    const auto router = topology.FindRouterByAddress(address);
    return router ? topology.router(*router).loopback : address;
  };
}

AliasResolver InterfaceResolver() {
  return [](netbase::Ipv4Address address) { return address; };
}

AliasResolver NoisyResolver(const topo::Topology& topology,
                            double miss_rate, std::uint64_t seed) {
  return [&topology, miss_rate, seed](netbase::Ipv4Address address) {
    // splitmix64 over (address, seed): a stable per-address coin.
    std::uint64_t h = (std::uint64_t{address.value()} << 32) ^ seed;
    h += 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
    const double draw =
        static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
    if (draw < miss_rate) return address;  // alias missed
    const auto router = topology.FindRouterByAddress(address);
    return router ? topology.router(*router).loopback : address;
  };
}

void AddTraceToDataset(topo::ItdkDataset& dataset,
                       const probe::TraceResult& trace,
                       const AliasResolver& resolver,
                       const topo::Topology& topology) {
  topo::NodeId previous = topo::kNoNode;
  int previous_ttl = 0;
  for (const probe::Hop& hop : trace.hops) {
    if (!hop.address || hop.address->is_private()) {
      // A silent hop breaks adjacency (no link across the gap).
      if (!hop.address) previous = topo::kNoNode;
      continue;
    }
    // Fast path: once an address has been aliased its node is fixed, so
    // a single index lookup replaces the resolver call plus the
    // NodeOf/AddAlias pair (campaign reduces revisit the same responders
    // thousands of times).
    topo::NodeId node;
    if (const auto known = dataset.FindNode(*hop.address)) {
      node = *known;
    } else {
      const netbase::Ipv4Address key = resolver(*hop.address);
      node = dataset.NodeOf(key);
      dataset.AddAlias(node, *hop.address);
    }
    if (dataset.node(node).asn == 0) {
      dataset.SetAs(node, topology.AsOfAddress(*hop.address));
    }
    if (previous != topo::kNoNode && hop.probe_ttl == previous_ttl + 1) {
      dataset.AddLink(previous, node);
    }
    previous = node;
    previous_ttl = hop.probe_ttl;
  }
}

topo::ItdkDataset BuildDataset(const std::vector<probe::TraceResult>& traces,
                               const AliasResolver& resolver,
                               const topo::Topology& topology) {
  topo::ItdkDataset dataset;
  for (const probe::TraceResult& trace : traces) {
    AddTraceToDataset(dataset, trace, resolver, topology);
  }
  return dataset;
}

}  // namespace wormhole::campaign
