// Fig. 8: RFA computed from time-exceeded vs echo-reply replies of
// <255,64> (Juniper) egress LERs. The 255-initial time-exceeded counts the
// return tunnel (shift); the 64-initial echo-reply does not (centred).
#include <iostream>

#include <set>

#include "analysis/report.h"
#include "bench/common.h"
#include "probe/trace.h"
#include "reveal/frpla.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader(
      "RFA from time-exceeded vs echo-reply (Juniper egresses)", "Fig. 8");

  const auto world = bench::RunFlagshipCampaign();
  const auto& result = world.result;

  // The population: candidate egresses inside ASes where path revelation
  // confirmed invisible tunnels (the paper's campaign targets exactly the
  // suspicious clouds), with <255,64>-style (RTLA-usable) signatures.
  std::set<topo::AsNumber> suspicious;
  for (const auto& [pair, revelation] : result.revelations) {
    if (revelation.succeeded()) {
      suspicious.insert(world.net->topology().AsOfAddress(pair.egress));
    }
  }
  netbase::IntDistribution te_rfa;
  netbase::IntDistribution er_rfa;
  for (const auto& record : result.candidates) {
    if (!record.egress_echo_ttl) continue;
    if (!suspicious.contains(record.asn)) continue;
    // Only <255,64>-style responders (RTLA-usable) qualify.
    if (!reveal::ObserveRtla(record.pair.egress, record.egress_return_ttl,
                             *record.egress_echo_ttl)) {
      continue;
    }
    te_rfa.Add(reveal::ReturnPathLength(record.egress_return_ttl) -
               record.egress_forward_ttl);
    er_rfa.Add(reveal::ReturnPathLength(*record.egress_echo_ttl) -
               record.egress_forward_ttl);
  }

  std::cout << analysis::RenderPdfComparison(
      {{"TimeExceeded", &te_rfa}, {"EchoReply", &er_rfa}}, -8, 12);
  if (!te_rfa.empty() && !er_rfa.empty()) {
    std::cout << "\nmedians: time-exceeded " << te_rfa.Median()
              << ", echo-reply " << er_rfa.Median()
              << "  (paper: 4 vs ~0-2 — the TE curve shifts positive, the "
                 "ER curve stays near 0)\n";
  } else {
    std::cout << "\n(no Juniper egress candidates in this world — rerun "
                 "with a different seed)\n";
  }
  return 0;
}
