# Empty compiler generated dependencies file for wormhole_analysis.
# This may be replaced when dependencies are built.
