# Empty compiler generated dependencies file for fig11_pathlen.
# This may be replaced when dependencies are built.
