file(REMOVE_RECURSE
  "libwormhole_probe.a"
)
