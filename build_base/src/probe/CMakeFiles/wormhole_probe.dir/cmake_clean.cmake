file(REMOVE_RECURSE
  "CMakeFiles/wormhole_probe.dir/multipath.cpp.o"
  "CMakeFiles/wormhole_probe.dir/multipath.cpp.o.d"
  "CMakeFiles/wormhole_probe.dir/prober.cpp.o"
  "CMakeFiles/wormhole_probe.dir/prober.cpp.o.d"
  "CMakeFiles/wormhole_probe.dir/trace.cpp.o"
  "CMakeFiles/wormhole_probe.dir/trace.cpp.o.d"
  "libwormhole_probe.a"
  "libwormhole_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
