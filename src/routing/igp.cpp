#include "routing/igp.h"

#include <algorithm>
#include <queue>

namespace wormhole::routing {

namespace {

struct QueueItem {
  int distance;
  RouterId router;
  friend bool operator>(const QueueItem& x, const QueueItem& y) {
    return std::tie(x.distance, x.router) > std::tie(y.distance, y.router);
  }
};

}  // namespace

SpfResult ComputeSpf(const topo::Topology& topology, RouterId source) {
  const std::size_t n = topology.router_count();
  SpfResult result;
  result.source = source;
  result.distance.assign(n, kUnreachable);
  result.next_hops.assign(n, {});
  result.hop_count.assign(n, kUnreachable);

  const topo::AsNumber asn = topology.router(source).asn;
  result.distance[source] = 0;
  result.hop_count[source] = 0;

  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;
  queue.push({0, source});
  std::vector<bool> done(n, false);

  while (!queue.empty()) {
    const auto [dist, u] = queue.top();
    queue.pop();
    if (done[u]) continue;
    done[u] = true;

    for (const auto& [v, link_id] : topology.Neighbors(u)) {
      if (topology.router(v).asn != asn) continue;  // intra-AS only
      const int weight = topology.link(link_id).igp_metric;
      const int candidate = dist + weight;
      const int candidate_hops = result.hop_count[u] + 1;

      if (candidate < result.distance[v]) {
        result.distance[v] = candidate;
        result.hop_count[v] = candidate_hops;
        // First hop towards v: either the direct link (u == source) or
        // whatever already reaches u.
        if (u == source) {
          result.next_hops[v] = {NextHop{link_id, v}};
        } else {
          result.next_hops[v] = result.next_hops[u];
        }
        queue.push({candidate, v});
      } else if (candidate == result.distance[v]) {
        // Equal-cost path: merge first-hop sets (ECMP).
        const auto& extra = (u == source)
                                ? std::vector<NextHop>{NextHop{link_id, v}}
                                : result.next_hops[u];
        auto& hops = result.next_hops[v];
        hops.insert(hops.end(), extra.begin(), extra.end());
        std::sort(hops.begin(), hops.end());
        hops.erase(std::unique(hops.begin(), hops.end()), hops.end());
        result.hop_count[v] = std::min(result.hop_count[v], candidate_hops);
      }
    }
  }
  return result;
}

void InstallIgpRoutes(const topo::Topology& topology, topo::AsNumber asn,
                      std::vector<Fib>& fibs) {
  const auto& as = topology.as(asn);

  // Owners of every internal prefix, so each router can route a prefix via
  // its nearest owner. Subnets of inter-AS (eBGP) links are *not* carried
  // by the IGP — the border router injects them via iBGP with
  // next-hop-self (see InstallBgpRoutes), which is what lets transit
  // traffic towards them ride the LDP LSP to the border.
  std::vector<std::pair<netbase::Prefix, RouterId>> prefix_owners;
  for (const RouterId rid : as.routers) {
    const topo::Router& router = topology.router(rid);
    prefix_owners.emplace_back(netbase::Prefix::Host(router.loopback), rid);
    for (const topo::InterfaceId iid : router.interfaces) {
      const topo::Interface& iface = topology.interface(iid);
      if (iface.link != topo::kNoLink &&
          (!topology.link(iface.link).up ||
           !topology.IsInternalLink(iface.link))) {
        continue;
      }
      prefix_owners.emplace_back(iface.subnet, rid);
    }
  }

  for (const RouterId rid : as.routers) {
    const SpfResult spf = ComputeSpf(topology, rid);
    Fib& fib = fibs.at(rid);

    // Connected routes first (metric 0, empty next hops == local/attached).
    for (const netbase::Prefix& p : topology.ConnectedPrefixes(rid)) {
      FibEntry entry;
      entry.prefix = p;
      entry.source = RouteSource::kConnected;
      entry.metric = 0;
      fib.AddRoute(std::move(entry));
    }

    // Remote internal prefixes via their nearest owner.
    struct Best {
      int metric = kUnreachable;
      std::vector<NextHop> next_hops;
    };
    std::map<netbase::Prefix, Best> best;
    for (const auto& [prefix, owner] : prefix_owners) {
      if (owner == rid) continue;
      const int d = spf.distance[owner];
      if (d == kUnreachable) continue;
      auto& b = best[prefix];
      if (d < b.metric) {
        b.metric = d;
        b.next_hops = spf.next_hops[owner];
      } else if (d == b.metric) {
        auto& hops = b.next_hops;
        hops.insert(hops.end(), spf.next_hops[owner].begin(),
                    spf.next_hops[owner].end());
        std::sort(hops.begin(), hops.end());
        hops.erase(std::unique(hops.begin(), hops.end()), hops.end());
      }
    }
    for (auto& [prefix, b] : best) {
      if (fib.LookupExact(prefix) != nullptr) continue;  // connected wins
      FibEntry entry;
      entry.prefix = prefix;
      entry.source = RouteSource::kIgp;
      entry.metric = b.metric;
      entry.next_hops = std::move(b.next_hops);
      fib.AddRoute(std::move(entry));
    }
  }
}

int IgpDistance(const topo::Topology& topology, RouterId from, RouterId to) {
  if (topology.router(from).asn != topology.router(to).asn) {
    return kUnreachable;
  }
  return ComputeSpf(topology, from).distance[to];
}

int IgpHopDistance(const topo::Topology& topology, RouterId from,
                   RouterId to) {
  if (topology.router(from).asn != topology.router(to).asn) {
    return kUnreachable;
  }
  return ComputeSpf(topology, from).hop_count[to];
}

}  // namespace wormhole::routing
