file(REMOVE_RECURSE
  "libwormhole_io.a"
)
