// sem-const-mutation fixture, clean counterparts: the three accepted
// shapes for mutation in a const method — hold an RAII lock first, make
// the field atomic, or hand the field to clang TSA with GUARDED_BY.
#define GUARDED_BY(x)

namespace fix {

struct Mutex {
  void lock() {}
  void unlock() {}
};

struct MutexLock {
  explicit MutexLock(Mutex& mutex) : held(&mutex) { held->lock(); }
  ~MutexLock() { held->unlock(); }
  Mutex* held;
};

namespace std_like {
template <typename T>
struct atomic {
  T value{};
  void store(T v) { value = v; }
  T load() const { return value; }
};
}  // namespace std_like

class LockedCache {
 public:
  int Get(int key) const {
    MutexLock lock(mutex_);
    hits_ = hits_ + 1;  // OK: an RAII lock local precedes the write
    return key + hits_;
  }

 private:
  mutable Mutex mutex_;
  mutable int hits_ = 0;
};

class AtomicCache {
 public:
  int Get(int key) const {
    hits_.store(hits_.load() + 1);  // OK: the field is atomic
    return key + hits_.load();
  }

 private:
  mutable std_like::atomic<int> hits_;
};

class AnnotatedCache {
 public:
  int Get(int key) const {
    hits_ = hits_ + 1;  // OK: GUARDED_BY hands enforcement to clang TSA
    return key + hits_;
  }

 private:
  mutable Mutex mutex_;
  mutable int hits_ GUARDED_BY(mutex_) = 0;
};

}  // namespace fix
