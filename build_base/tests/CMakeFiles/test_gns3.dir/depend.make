# Empty dependencies file for test_gns3.
# This may be replaced when dependencies are built.
