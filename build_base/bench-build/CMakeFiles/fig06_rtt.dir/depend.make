# Empty dependencies file for fig06_rtt.
# This may be replaced when dependencies are built.
