#include "routing/fib.h"

#include <algorithm>
#include <bit>
#include <functional>

#include "exec/sync.h"
#include "netbase/contracts.h"

namespace wormhole::routing {

namespace {

// splitmix64 finalizer: avalanches the packed (address, length) key so
// linear probing sees a uniform slot distribution.
std::uint64_t HashKey(std::uint64_t key) {
  key += 0x9E3779B97F4A7C15ull;
  key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ull;
  key = (key ^ (key >> 27)) * 0x94D049BB133111EBull;
  return key ^ (key >> 31);
}

constexpr std::uint32_t MaskAddress(std::uint32_t address, int length) {
  return length <= 0 ? 0 : address & (~std::uint32_t{0} << (32 - length));
}

// A striped lock shared by all FIBs, keyed on the Fib address: sealing is
// a rare, short, build-time event, and a per-Fib mutex would cost 40
// bytes on every router for nothing — but the parallel convergence seals
// many distinct FIBs at once, so one global mutex would serialize that
// whole phase. Striping keeps the memory cost flat and lets unrelated
// FIBs seal concurrently. The stripe is selected dynamically, so the
// mutable index fields cannot be GUARDED_BY-named; the lock discipline
// below (acquire stripe -> recheck sealed_ -> build -> release-store) is
// instead pinned by tests/test_thread_safety.cpp's concurrent-seal race.
exec::Mutex& SealMutexFor(const void* fib) {
  static exec::StripedMutex stripes(64);
  return stripes.For(std::hash<const void*>{}(fib));
}

}  // namespace

void Fib::AddRoute(FibEntry entry) {
  WORMHOLE_ASSERT(
      entry.prefix.length() >= 0 && entry.prefix.length() <= 32,
      "FIB prefix length outside [0, 32]");
  std::sort(entry.next_hops.begin(), entry.next_hops.end());
  NextHop* const unique_end =
      std::unique(entry.next_hops.begin(), entry.next_hops.end());
  entry.next_hops.truncate(
      static_cast<std::size_t>(unique_end - entry.next_hops.begin()));
  const auto key = std::make_pair(entry.prefix.address().value(),
                                  entry.prefix.length());
  last_ = routes_.insert_or_assign(HintFor(), key, std::move(entry));
  Invalidate();
}

bool Fib::AddRouteIfAbsent(FibEntry entry) {
  WORMHOLE_ASSERT(
      entry.prefix.length() >= 0 && entry.prefix.length() <= 32,
      "FIB prefix length outside [0, 32]");
  std::sort(entry.next_hops.begin(), entry.next_hops.end());
  NextHop* const unique_end =
      std::unique(entry.next_hops.begin(), entry.next_hops.end());
  entry.next_hops.truncate(
      static_cast<std::size_t>(unique_end - entry.next_hops.begin()));
  const auto key = std::make_pair(entry.prefix.address().value(),
                                  entry.prefix.length());
  const std::size_t before = routes_.size();
  last_ = routes_.try_emplace(HintFor(), key, std::move(entry));
  const bool inserted = routes_.size() != before;
  if (inserted) Invalidate();
  return inserted;
}

void Fib::Seal() const {
  exec::MutexLock lock(SealMutexFor(this));
  if (sealed_.load(std::memory_order_relaxed)) return;

  // Load factor <= 0.5: next power of two >= 2 * size (minimum 8 so the
  // empty-slot terminator always exists).
  const std::uint64_t capacity =
      std::bit_ceil(std::max<std::uint64_t>(8, 2 * routes_.size()));
  WORMHOLE_ASSERT(capacity > routes_.size(),
                  "sealed index must keep at least one empty slot");
  slots_.assign(capacity, Slot{});
  slot_mask_ = capacity - 1;
  populated_lengths_ = 0;

  for (const auto& [key, entry] : routes_) {
    populated_lengths_ |= std::uint64_t{1} << key.second;
    const std::uint64_t packed = KeyOf(key.first, key.second);
    WORMHOLE_DCHECK(packed != 0, "KeyOf must never produce the empty key");
    std::uint64_t i = HashKey(packed) & slot_mask_;
    while (slots_[i].key != 0) i = (i + 1) & slot_mask_;
    slots_[i] = Slot{packed, &entry};
  }
  sealed_.store(true, std::memory_order_release);
}

const FibEntry* Fib::FindSealed(std::uint32_t address, int length) const {
  // Sealed-state transition contract: the flat index may only be probed
  // after the Seal() publication store; slot_mask_ == 0 would turn the
  // probe loop into a single-slot spin on stale data.
  WORMHOLE_DCHECK(sealed_.load(std::memory_order_acquire),
                  "FindSealed before Seal() published the index");
  WORMHOLE_DCHECK(slot_mask_ != 0, "sealed index has no slots");
  const std::uint64_t packed = KeyOf(address, length);
  for (std::uint64_t i = HashKey(packed) & slot_mask_;;
       i = (i + 1) & slot_mask_) {
    const Slot& slot = slots_[i];
    if (slot.key == packed) return slot.entry;
    if (slot.key == 0) return nullptr;
  }
}

const FibEntry* Fib::Lookup(Ipv4Address dst) const {
  if (!sealed_.load(std::memory_order_acquire)) Seal();
  // Probe only the prefix lengths that exist, most specific first: the
  // highest set bit of the remaining mask is the next candidate length.
  std::uint64_t lengths = populated_lengths_;
  const std::uint32_t address = dst.value();
  while (lengths != 0) {
    const int length = std::bit_width(lengths) - 1;
    lengths &= ~(std::uint64_t{1} << length);
    if (const FibEntry* entry =
            FindSealed(MaskAddress(address, length), length)) {
      return entry;
    }
  }
  return nullptr;
}

void Fib::PrefetchLookup(Ipv4Address dst) const {
  if (!sealed_.load(std::memory_order_acquire)) return;
  // Mirror Lookup's probe order, but only hint the first hash slot of the
  // two most specific populated lengths — the common LPM hit depth.
  std::uint64_t lengths = populated_lengths_;
  const std::uint32_t address = dst.value();
  for (int hinted = 0; lengths != 0 && hinted < 2; ++hinted) {
    const int length = std::bit_width(lengths) - 1;
    lengths &= ~(std::uint64_t{1} << length);
    const std::uint64_t packed = KeyOf(MaskAddress(address, length), length);
    __builtin_prefetch(&slots_[HashKey(packed) & slot_mask_]);
  }
}

const FibEntry* Fib::LookupExact(const Prefix& prefix) const {
  if (sealed_.load(std::memory_order_acquire)) {
    return FindSealed(prefix.address().value(), prefix.length());
  }
  const auto it = routes_.find({prefix.address().value(), prefix.length()});
  return it == routes_.end() ? nullptr : &it->second;
}

std::vector<const FibEntry*> Fib::Entries() const {
  std::vector<const FibEntry*> out;
  out.reserve(routes_.size());
  for (const auto& [key, entry] : routes_) out.push_back(&entry);
  return out;
}

}  // namespace wormhole::routing
