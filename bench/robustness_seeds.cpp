// Robustness across worlds: the campaign's headline discriminators must
// hold for *any* seed, not a cherry-picked one. Runs the full pipeline on
// ten generated Internets and aggregates revelation rates by ground-truth
// class plus the FRPLA shift.
#include <iostream>

#include "analysis/report.h"
#include "bench/common.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader("Multi-seed robustness of the campaign discriminators",
                     "Tables 3-5 across seeds");

  struct Tally {
    std::size_t pairs = 0;
    std::size_t revealed = 0;
  };
  Tally invisible_php, uhp, visible, none;
  netbase::IntDistribution egress_rfa, other_rfa;
  std::size_t uhp_hits = 0, uhp_misattributed = 0;

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    gen::InternetOptions options = bench::FlagshipOptions();
    options.seed = seed;
    gen::SyntheticInternet net(options);
    campaign::Campaign campaign(net.engine(), net.vantage_points(), {});
    const auto result = campaign.Run(net.AllLoopbacks());

    for (const auto& [pair, revelation] : result.revelations) {
      const auto asn = net.topology().AsOfAddress(pair.egress);
      const auto& profile = net.profile(asn);
      Tally* tally = &none;
      if (profile.mpls && !profile.ttl_propagate) {
        tally = profile.popping == mpls::Popping::kUhp ? &uhp
                                                       : &invisible_php;
      } else if (profile.mpls) {
        tally = &visible;
      }
      ++tally->pairs;
      if (revelation.succeeded()) ++tally->revealed;
    }
    egress_rfa.Merge(
        result.frpla.Combined(reveal::ResponderRole::kEgressRevealed));
    other_rfa.Merge(result.frpla.Combined(reveal::ResponderRole::kOther));
    for (const auto& [asn, count] : result.uhp_suspicions) {
      if (net.profile(asn).mpls &&
          net.profile(asn).popping == mpls::Popping::kUhp) {
        uhp_hits += count;
      } else {
        uhp_misattributed += count;
      }
    }
  }

  analysis::TextTable table(
      {"ground truth", "candidate pairs", "revealed", "rate"});
  const auto row = [&](const char* name, const Tally& tally) {
    table.AddRow({name, analysis::TextTable::Num(tally.pairs),
                  analysis::TextTable::Num(tally.revealed),
                  tally.pairs == 0
                      ? "-"
                      : analysis::TextTable::Pct(
                            100.0 * static_cast<double>(tally.revealed) /
                                static_cast<double>(tally.pairs),
                            1) + "%"});
  };
  row("invisible (PHP)", invisible_php);
  row("invisible (UHP)", uhp);
  row("visible MPLS", visible);
  row("no MPLS", none);
  std::cout << table.ToString();

  if (!egress_rfa.empty() && !other_rfa.empty()) {
    std::cout << "\nFRPLA across all seeds: egress-PR median "
              << egress_rfa.Median() << " (n=" << egress_rfa.total()
              << ") vs others median " << other_rfa.Median()
              << " (n=" << other_rfa.total() << ")\n";
  }
  std::cout << "UHP duplicate-hop suspicions: " << uhp_hits
            << " at true UHP clouds, " << uhp_misattributed
            << " elsewhere\n";
  std::cout << "\nexpected shape: PHP-invisible rate near 100%, UHP and "
               "visible near 0%, positive FRPLA separation, UHP signal "
               "concentrated on true UHP clouds.\n";
  return 0;
}
