// Convenience facade: computes the full converged control plane (IGP, BGP,
// LDP) for a topology + MPLS configuration and exposes a ready Engine.
//
// Convergence is phased over the shared routing::SpfEngine — one SPF per
// (AS, source) per topology generation — and each phase fans out over an
// exec::ThreadPool with deterministic merges, so the converged state is
// bit-identical at any jobs count (see docs/convergence.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "exec/sync.h"
#include "mpls/config.h"
#include "mpls/ldp.h"
#include "mpls/segment_routing.h"
#include "netbase/thread_annotations.h"
#include "routing/bgp.h"
#include "routing/delta.h"
#include "routing/fib.h"
#include "routing/igp.h"
#include "routing/spf_engine.h"
#include "sim/engine.h"
#include "topo/topology.h"

namespace wormhole::exec {
class ThreadPool;
}  // namespace wormhole::exec

namespace wormhole::sim {

class Network {
 public:
  /// `topology`, `configs` and `te` (if given) must outlive the network.
  /// `convergence_jobs`: worker threads for the control-plane build; 0 is
  /// auto (hardware concurrency), 1 forces the serial path. The converged
  /// state does not depend on the value.
  Network(const topo::Topology& topology, const mpls::MplsConfigMap& configs,
          routing::BgpPolicy bgp_policy = {}, EngineOptions options = {},
          const mpls::TeDatabase* te = nullptr,
          const mpls::SrDatabase* sr = nullptr,
          std::size_t convergence_jobs = 0);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Incremental reconvergence after topology.SetLinkUp(link): recomputes
  /// only the state the flip can affect and re-seals only the touched
  /// FIBs. The result is byte-identical to a full rebuild.
  ///
  ///  * Intra-AS link: that AS's SPF trees, IGP/BGP routes and LDP domain
  ///    are rebuilt; everything else (including the AS-level BGP state,
  ///    which only sees inter-AS links) is reused.
  ///  * Inter-AS link: no SPF tree changes, but the AS graph and the two
  ///    endpoint border routers' connected/injected subnets do — so BGP
  ///    (and the IGP-installed connected routes) are rebuilt everywhere
  ///    from the cached trees; LDP domains (internal FECs only) are kept.
  ///
  /// Call it once per SetLinkUp, before any further topology mutation,
  /// and never concurrently with Send/SendBatch: reconvergence is the
  /// exclusive write phase of the engine's shared read-only state (the
  /// `convergence_role_` capability below — every rebuild helper
  /// REQUIRES it, so mutation outside the phase fails to compile).
  ///
  /// Returns the convergence delta — what the reconvergence dropped and
  /// rebuilt, stamped with the new epoch — so epoch-versioned result
  /// caches (campaign::TraceCache) can invalidate exactly the entries
  /// the flip can have dirtied (docs/incremental.md). Callers that keep
  /// no cache may ignore it.
  routing::ConvergenceDelta OnLinkStateChange(topo::LinkId link);

  [[nodiscard]] Engine& engine() { return *engine_; }
  [[nodiscard]] const std::vector<routing::Fib>& fibs() const { return fibs_; }
  [[nodiscard]] const mpls::LdpTables& ldp() const { return ldp_; }
  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }
  /// The shared SPF cache (also the per-convergence SPF counting hook).
  [[nodiscard]] routing::SpfEngine& spf() { return spf_; }
  /// The engine's epoch counter, bumped by the constructor's full
  /// convergence and by every OnLinkStateChange — the single source of
  /// truth trace caches stamp entries with.
  [[nodiscard]] std::uint64_t convergence_epoch() const {
    return engine_->convergence_epoch();
  }
  /// The cached AS-level BGP state / policy, exposed so the AS-path
  /// oracle (routing::AsPathOracle) can mirror the converged AS-level
  /// routing when computing dirty sets.
  [[nodiscard]] const routing::BgpLevel& bgp_level() const {
    return bgp_level_;
  }
  [[nodiscard]] const routing::BgpPolicy& bgp_policy() const {
    return bgp_policy_;
  }

 private:
  /// Full phased build: prime SPF, install IGP+BGP per router, seal,
  /// build LDP, build the engine.
  void ConvergeFull() REQUIRES(convergence_role_);
  /// Rebuilds one AS after an internal link flip, filling `delta` with
  /// what was dropped (scope kIntraAs).
  void ReconvergeAs(topo::AsNumber asn, routing::ConvergenceDelta& delta)
      REQUIRES(convergence_role_);
  /// Rebuilds the BGP layer everywhere after an inter-AS link flip
  /// (delta scope kGlobal).
  void ReconvergeInterAs(routing::ConvergenceDelta& delta)
      REQUIRES(convergence_role_);
  /// Installs connected+IGP then BGP routes and seals, for each listed
  /// router, in parallel; `plans` must cover every listed router's AS.
  /// The fan-out tasks write disjoint FIB slots and read shared inputs
  /// published by the phase hand-off (see docs/static-analysis.md).
  void InstallRoutes(const std::vector<topo::RouterId>& routers,
                     const std::vector<routing::IgpPlan>& plans)
      REQUIRES(convergence_role_);

  /// The exclusive convergence phase: scoped (exec::RoleLock) by the
  /// constructor and OnLinkStateChange. `fibs_`, `ldp_`, `bgp_level_`
  /// and the engine caches are mutated only inside it and are read-only
  /// shared state for any number of prober threads outside it; the
  /// fields themselves stay un-GUARDED_BY because the parallel install
  /// tasks and the public read accessors touch them from outside the
  /// role by design.
  exec::Role convergence_role_;

  const topo::Topology* topology_;
  const mpls::MplsConfigMap* configs_;
  routing::BgpPolicy bgp_policy_;
  EngineOptions options_;
  const mpls::TeDatabase* te_;
  const mpls::SrDatabase* sr_;
  /// Null when the effective jobs count is 1 (every fan-out runs inline).
  std::unique_ptr<exec::ThreadPool> pool_;
  routing::SpfEngine spf_;
  /// Cached AS-level BGP state; reusable while no inter-AS link changes.
  routing::BgpLevel bgp_level_;
  std::vector<routing::Fib> fibs_;
  mpls::LdpTables ldp_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace wormhole::sim
