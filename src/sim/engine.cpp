#include "sim/engine.h"

#include <stdexcept>

#include "exec/thread_pool.h"
#include "sim/vendor.h"

namespace wormhole::sim {

namespace {

using netbase::LabelStack;
using netbase::LabelStackEntry;
using netbase::Packet;
using netbase::PacketKind;
using routing::FibEntry;
using routing::NextHop;
using topo::RouterId;

constexpr std::uint32_t kExplicitNull =
    static_cast<std::uint32_t>(netbase::ReservedLabel::kIpv4ExplicitNull);

// Deterministic per-(probe, router) coin for ICMP loss injection: the same
// probe always sees the same outcome, a retransmission (new probe id)
// re-rolls — like a token-bucket rate limiter seen from outside.
bool IcmpLost(const Packet& p, RouterId router, double probability) {
  if (probability <= 0.0) return false;
  // splitmix64 finalizer: avalanches small inputs over all 64 bits.
  std::uint64_t h = (std::uint64_t{p.probe_id} << 32) ^ router;
  h += 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  const double draw =
      static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
  return draw < probability;
}

std::uint64_t FlowHash(const Packet& p) {
  // FNV-1a over the ECMP key: (src, dst, flow id). Paris traceroute keeps
  // flow_id constant so every probe of a trace hashes identically.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(p.src.value());
  mix(p.dst.value());
  mix(p.flow_id);
  return h;
}

}  // namespace

Engine::Engine(const topo::Topology& topology,
               const mpls::MplsConfigMap& configs,
               const std::vector<routing::Fib>& fibs,
               const mpls::LdpTables& ldp, EngineOptions options,
               const mpls::TeDatabase* te, const mpls::SrDatabase* sr)
    : topology_(&topology),
      configs_(&configs),
      fibs_(&fibs),
      ldp_(&ldp),
      te_(te),
      sr_(sr),
      options_(options) {}

std::optional<Engine::LabelOp> Engine::ResolveLabel(
    topo::RouterId router, std::uint32_t label,
    const netbase::Packet& packet) const {
  // SR node SIDs: forward towards the SID's router along the IGP path; the
  // penultimate hop pops the segment (PHP), so the waypoint receives the
  // next SID (or the bare IP packet) directly.
  if (sr_ != nullptr) {
    if (const auto target = sr_->RouterOfSid(label)) {
      const FibEntry* route = fibs_->at(router).LookupExact(
          netbase::Prefix::Host(topology_->router(*target).loopback));
      if (route != nullptr && !route->next_hops.empty()) {
        LabelOp op;
        op.hop = PickNextHop(route->next_hops, packet);
        if (op.hop.neighbor == *target) {
          op.kind = LabelOp::Kind::kPop;
        } else {
          op.kind = LabelOp::Kind::kSwap;
          op.out_label = label;  // global SID: unchanged along the segment
        }
        return op;
      }
      return std::nullopt;
    }
  }

  // RSVP-TE labels live in their own range; check the TE database first.
  if (te_ != nullptr) {
    if (const auto te_op = te_->OpFor(router, label)) {
      LabelOp op;
      op.hop = routing::NextHop{te_op->link, te_op->next};
      op.out_label = te_op->out_label;
      switch (te_op->kind) {
        case mpls::TeLabelOp::Kind::kSwap:
          op.kind = LabelOp::Kind::kSwap;
          break;
        case mpls::TeLabelOp::Kind::kPop:
          op.kind = LabelOp::Kind::kPop;
          break;
        case mpls::TeLabelOp::Kind::kSwapExplicitNull:
          op.kind = LabelOp::Kind::kSwapExplicitNull;
          break;
      }
      return op;
    }
  }

  const mpls::LdpDomain* domain =
      ldp_->DomainOf(topology_->router(router).asn);
  if (domain == nullptr) return std::nullopt;
  const auto fec = domain->FecOfLabel(router, label);
  if (!fec) return std::nullopt;
  const FibEntry* route = fibs_->at(router).LookupExact(*fec);
  if (route == nullptr || route->next_hops.empty()) return std::nullopt;

  LabelOp op;
  op.hop = PickNextHop(route->next_hops, packet);
  const auto out = domain->BindingOf(op.hop.neighbor, *fec);
  if (!out || out->kind == mpls::BindingKind::kImplicitNull) {
    op.kind = LabelOp::Kind::kPop;
  } else if (out->kind == mpls::BindingKind::kExplicitNull) {
    op.kind = LabelOp::Kind::kSwapExplicitNull;
  } else {
    op.kind = LabelOp::Kind::kSwap;
    op.out_label = out->label;
  }
  return op;
}

EngineStats Engine::stats() const {
  EngineStats total;
  for (const StatShard& shard : stat_shards_) {
    total.packets_injected +=
        shard.packets_injected.load(std::memory_order_relaxed);
    total.hops_processed +=
        shard.hops_processed.load(std::memory_order_relaxed);
    total.icmp_generated +=
        shard.icmp_generated.load(std::memory_order_relaxed);
    total.labels_pushed +=
        shard.labels_pushed.load(std::memory_order_relaxed);
    total.labels_popped +=
        shard.labels_popped.load(std::memory_order_relaxed);
  }
  return total;
}

Engine::Outcome Engine::Send(netbase::Packet probe) const {
  const topo::Host* origin = topology_->FindHost(probe.src);
  if (origin == nullptr) {
    throw std::invalid_argument("Send: probe.src is not an attached host");
  }
  EngineStats local;
  ++local.packets_injected;

  Transit transit;
  transit.packet = std::move(probe);
  transit.packet.elapsed_ms += options_.host_stub_delay_ms;
  transit.router = origin->gateway;
  transit.in_interface = origin->stub_interface;

  const netbase::Ipv4Address origin_address = origin->address;
  Outcome final;
  while (true) {
    if (transit.packet.hops_traversed > options_.max_hops) {
      final = Outcome{.received = false, .loss = LossReason::kTtlLoop};
      break;
    }
    ++local.hops_processed;

    // Delivery to the origin host happens at its gateway, after the
    // gateway's normal forwarding decrement (handled inside ProcessIp).
    StepResult step = ProcessAt(std::move(transit), local);
    if (step.outcome) {
      // Only packets addressed to the origin terminate the simulation.
      final = step.outcome->reply.dst == origin_address
                  ? *step.outcome
                  : Outcome{.received = false, .loss = LossReason::kDropped};
      break;
    }
    if (!step.next) {
      final = Outcome{.received = false, .loss = step.loss};
      break;
    }
    transit = std::move(*step.next);
  }

  StatShard& shard = stat_shards_[exec::ThreadSlot(kStatShards)];
  shard.packets_injected.fetch_add(local.packets_injected,
                                   std::memory_order_relaxed);
  shard.hops_processed.fetch_add(local.hops_processed,
                                 std::memory_order_relaxed);
  shard.icmp_generated.fetch_add(local.icmp_generated,
                                 std::memory_order_relaxed);
  shard.labels_pushed.fetch_add(local.labels_pushed,
                                std::memory_order_relaxed);
  shard.labels_popped.fetch_add(local.labels_popped,
                                std::memory_order_relaxed);
  return final;
}

Engine::StepResult Engine::ProcessAt(Transit t, EngineStats& stats) const {
  if (t.packet.has_labels()) return ProcessMpls(std::move(t), stats);
  return ProcessIp(std::move(t), stats);
}

Engine::StepResult Engine::ProcessMpls(Transit t, EngineStats& stats) const {
  const RouterId r = t.router;
  LabelStackEntry& top = t.packet.labels.front();

  if (top.label == kExplicitNull) {
    // UHP disposition at the Egress LER. The LSE-TTL check still applies
    // (it can only fire under ttl-propagate).
    const LabelStack received = t.packet.labels;
    top.ttl = static_cast<std::uint8_t>(top.ttl - 1);
    if (top.ttl == 0) {
      if (t.packet.kind != PacketKind::kEchoRequest) {
        return StepResult{.loss = LossReason::kReplyExpired};
      }
      t.packet.labels = received;  // quote the stack as received
      return OriginateError(t, PacketKind::kTimeExceeded,
                            /*quote_labels=*/true, stats);
    }
    t.packet.labels.erase(t.packet.labels.begin());
    ++stats.labels_popped;
    // Emulation-calibrated: decrement without an expiry check, no min copy
    // (see engine.h); then a fresh IP pass with no further decrement.
    if (t.packet.ip_ttl > 0) --t.packet.ip_ttl;
    t.skip_ip_decrement = true;
    return ProcessIp(std::move(t), stats);
  }

  const auto op = ResolveLabel(r, top.label, t.packet);
  if (!op) return StepResult{.loss = LossReason::kDropped};

  const LabelStack received = t.packet.labels;
  top.ttl = static_cast<std::uint8_t>(top.ttl - 1);
  if (top.ttl == 0) {
    if (t.packet.kind != PacketKind::kEchoRequest) {
      return StepResult{.loss = LossReason::kReplyExpired};
    }
    t.packet.labels = received;  // quote pre-decrement values (RFC 4950)
    return OriginateError(t, PacketKind::kTimeExceeded,
                          /*quote_labels=*/true, stats);
  }

  switch (op->kind) {
    case LabelOp::Kind::kPop: {
      // PHP pop (or a neighbor without a binding — same data-plane
      // effect): the min rule applies between the popped LSE-TTL and
      // whatever gets exposed — the inner label of a stacked packet (SR
      // SID lists) or the IP header (RFC 3443 §5.4).
      const auto popped = static_cast<int>(top.ttl);
      t.packet.labels.erase(t.packet.labels.begin());
      ++stats.labels_popped;
      if (configs_->For(r).min_ttl_on_pop) {
        if (!t.packet.labels.empty()) {
          LabelStackEntry& exposed = t.packet.labels.front();
          exposed.ttl = static_cast<std::uint8_t>(
              std::min(static_cast<int>(exposed.ttl), popped));
        } else {
          t.packet.ip_ttl = std::min(t.packet.ip_ttl, popped);
        }
      }
      break;
    }
    case LabelOp::Kind::kSwapExplicitNull:
      top.label = kExplicitNull;
      break;
    case LabelOp::Kind::kSwap:
      top.label = op->out_label;
      break;
  }
  return StepResult{.next = Forward(t, op->hop)};
}

Engine::StepResult Engine::ProcessIp(Transit t, EngineStats& stats) const {
  const RouterId r = t.router;
  const topo::Router& router = topology_->router(r);
  Packet& p = t.packet;

  // Delivery to one of this router's own addresses happens before any
  // decrement (the packet has arrived).
  if (IsLocalAddress(r, p.dst)) {
    if (p.kind != PacketKind::kEchoRequest) {
      // A reply addressed to a router: nothing is waiting for it.
      return StepResult{.loss = LossReason::kDropped};
    }
    const mpls::MplsConfig& config = configs_->For(r);
    if (config.icmp_silent || IcmpLost(p, r, config.icmp_loss)) {
      return StepResult{.loss = LossReason::kDropped};
    }
    const VendorBehavior behavior = BehaviorOf(router.vendor);
    Packet reply = MakeEchoReply(t, p.dst, behavior.initial_ttl_echo_reply);
    ++stats.icmp_generated;
    Transit next;
    next.packet = std::move(reply);
    next.router = r;
    next.in_interface = t.in_interface;
    next.locally_originated = true;
    return StepResult{.next = std::move(next)};
  }

  // Transit decrement (skipped right after local origination or UHP pop).
  if (!t.locally_originated && !t.skip_ip_decrement) {
    --p.ip_ttl;
    if (p.ip_ttl <= 0) {
      if (p.kind != PacketKind::kEchoRequest) {
        return StepResult{.loss = LossReason::kReplyExpired};
      }
      return OriginateError(t, PacketKind::kTimeExceeded,
                            /*quote_labels=*/false, stats);
    }
  }
  t.locally_originated = false;
  t.skip_ip_decrement = false;

  // Delivery to an attached host (after the decrement — the stub segment
  // is an ordinary IP hop).
  if (const topo::Host* host = topology_->FindHost(p.dst);
      host != nullptr && host->gateway == r) {
    if (p.is_reply()) {
      Outcome outcome;
      outcome.received = true;
      outcome.reply = p;
      outcome.rtt_ms = p.elapsed_ms + options_.host_stub_delay_ms;
      return StepResult{.outcome = std::move(outcome)};
    }
    // An echo-request probing the host itself: the host answers.
    Packet reply = MakeEchoReply(t, p.dst, kHostEchoReplyTtl);
    reply.elapsed_ms += 2 * options_.host_stub_delay_ms;
    ++stats.icmp_generated;
    Transit next;
    next.packet = std::move(reply);
    next.router = r;
    next.in_interface = host->stub_interface;
    // The gateway forwards (and decrements) the host's reply normally.
    return StepResult{.next = std::move(next)};
  }

  // SR steering: the ingress imposes the policy's SID list; the packet
  // then waypoint-hops through the domain.
  if (sr_ != nullptr && configs_->For(r).enabled) {
    if (const mpls::SrPolicy* policy = sr_->PolicyFor(r, p.dst)) {
      const FibEntry* route = fibs_->at(r).LookupExact(netbase::Prefix::Host(
          topology_->router(policy->waypoints.front()).loopback));
      if (route != nullptr && !route->next_hops.empty()) {
        const NextHop hop = PickNextHop(route->next_hops, p);
        const bool propagate = configs_->For(r).ttl_propagate;
        netbase::LabelStack stack;
        for (const topo::RouterId waypoint : policy->waypoints) {
          LabelStackEntry lse;
          lse.label = mpls::NodeSid(waypoint);
          lse.ttl = static_cast<std::uint8_t>(propagate ? p.ip_ttl : 255);
          lse.bottom_of_stack = false;
          stack.push_back(lse);
        }
        if (!stack.empty()) stack.back().bottom_of_stack = true;
        if (hop.neighbor == policy->waypoints.front()) {
          stack.erase(stack.begin());  // PHP at push for the first segment
        }
        p.labels.insert(p.labels.begin(), stack.begin(), stack.end());
        stats.labels_pushed += stack.size();
        return StepResult{.next = Forward(t, hop)};
      }
    }
  }

  // RSVP-TE steering: a tunnel ingress pins selected prefixes onto an
  // explicit route, overriding the IGP next hop.
  if (te_ != nullptr && configs_->For(r).enabled) {
    if (const mpls::TeSteering* steering = te_->SteeringFor(r, p.dst)) {
      if (steering->labeled) {
        LabelStackEntry lse;
        lse.label = steering->label;
        lse.ttl = static_cast<std::uint8_t>(
            configs_->For(r).ttl_propagate ? p.ip_ttl : 255);
        p.labels.insert(p.labels.begin(), lse);
        ++stats.labels_pushed;
      }
      return StepResult{
          .next = Forward(t, NextHop{steering->link, steering->next})};
    }
  }

  const FibEntry* entry = fibs_->at(r).Lookup(p.dst);
  if (entry == nullptr) {
    if (p.kind != PacketKind::kEchoRequest) {
      return StepResult{.loss = LossReason::kNoRoute};
    }
    return OriginateError(t, PacketKind::kDestinationUnreachable,
                          /*quote_labels=*/false, stats);
  }

  if (entry->next_hops.empty()) {
    // Connected subnet: the destination is the far end of one of our links
    // (or an unassigned address => unreachable).
    for (const topo::InterfaceId iid : router.interfaces) {
      const topo::Interface& iface = topology_->interface(iid);
      if (iface.link == topo::kNoLink || iface.subnet != entry->prefix ||
          !topology_->link(iface.link).up) {
        continue;
      }
      const topo::Interface& peer = topology_->OtherEnd(iface.link, r);
      if (peer.address == p.dst) {
        return StepResult{
            .next = Forward(t, NextHop{iface.link, peer.router})};
      }
    }
    if (p.kind != PacketKind::kEchoRequest) {
      return StepResult{.loss = LossReason::kNoRoute};
    }
    return OriginateError(t, PacketKind::kDestinationUnreachable,
                          /*quote_labels=*/false, stats);
  }

  const NextHop& hop = PickNextHop(entry->next_hops, p);
  MaybeImpose(t, *entry, hop, p, stats);
  return StepResult{.next = Forward(t, hop)};
}

Engine::StepResult Engine::OriginateError(const Transit& t,
                                          netbase::PacketKind kind,
                                          bool quote_labels,
                                          EngineStats& stats) const {
  const RouterId r = t.router;
  const topo::Router& router = topology_->router(r);
  const mpls::MplsConfig& config = configs_->For(r);
  if (config.icmp_silent || IcmpLost(t.packet, r, config.icmp_loss)) {
    return StepResult{.loss = LossReason::kDropped};
  }
  const VendorBehavior behavior = BehaviorOf(router.vendor);
  ++stats.icmp_generated;

  Packet reply;
  reply.kind = kind;
  reply.src = topology_->interface(t.in_interface).address;
  reply.dst = t.packet.src;
  reply.ip_ttl = behavior.initial_ttl_time_exceeded;
  reply.flow_id = t.packet.flow_id;
  reply.probe_id = t.packet.probe_id;
  reply.quoted_dst = t.packet.dst;
  reply.elapsed_ms = t.packet.elapsed_ms;
  reply.hops_traversed = t.packet.hops_traversed;
  if (quote_labels && config.rfc4950) reply.quoted_labels = t.packet.labels;

  // An error generated mid-LSP is first forwarded along the tunnel: it is
  // sent out with the label the offending packet would have carried. When
  // the operation is a PHP pop (no label left), the reply is routed
  // directly instead.
  if (quote_labels && config.icmp_along_lsp && !t.packet.labels.empty()) {
    const auto op =
        ResolveLabel(r, t.packet.labels.front().label, t.packet);
    if (op && op->kind != LabelOp::Kind::kPop) {
      LabelStackEntry lse;
      lse.label = op->kind == LabelOp::Kind::kSwapExplicitNull
                      ? kExplicitNull
                      : op->out_label;
      lse.ttl = static_cast<std::uint8_t>(
          config.ttl_propagate ? reply.ip_ttl : 255);
      reply.labels = {lse};
      ++stats.labels_pushed;
      Transit next;
      next.packet = std::move(reply);
      next.router = r;
      next.in_interface = t.in_interface;
      return StepResult{.next = Forward(next, op->hop)};
    }
  }

  Transit next;
  next.packet = std::move(reply);
  next.router = r;
  next.in_interface = t.in_interface;
  next.locally_originated = true;
  return StepResult{.next = std::move(next)};
}

netbase::Packet Engine::MakeEchoReply(const Transit& t,
                                      netbase::Ipv4Address reply_src,
                                      int initial_ttl) const {
  Packet reply;
  reply.kind = PacketKind::kEchoReply;
  reply.src = reply_src;
  reply.dst = t.packet.src;
  reply.ip_ttl = initial_ttl;
  reply.flow_id = t.packet.flow_id;
  reply.probe_id = t.packet.probe_id;
  reply.elapsed_ms = t.packet.elapsed_ms;
  reply.hops_traversed = t.packet.hops_traversed;
  return reply;
}

Engine::Transit Engine::Forward(const Transit& t,
                                const routing::NextHop& hop) const {
  Transit next;
  next.packet = t.packet;
  double delay = topology_->link(hop.link).delay_ms;
  if (options_.delay_jitter_fraction > 0.0) {
    // Deterministic per (probe, link) jitter in [-f, +f] of the base delay.
    std::uint64_t h = (std::uint64_t{t.packet.probe_id} << 32) ^
                      (std::uint64_t{hop.link} * 0x9E3779B97F4A7C15ull);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
    const double unit =
        static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
    delay *= 1.0 + options_.delay_jitter_fraction * (2.0 * unit - 1.0);
  }
  next.packet.elapsed_ms += delay;
  ++next.packet.hops_traversed;
  next.router = hop.neighbor;
  next.in_interface = topology_->EndOn(hop.link, hop.neighbor).id;
  return next;
}

const routing::NextHop& Engine::PickNextHop(
    const std::vector<routing::NextHop>& hops,
    const netbase::Packet& packet) const {
  if (hops.size() == 1 || !options_.ecmp_enabled) return hops.front();
  return hops[FlowHash(packet) % hops.size()];
}

void Engine::MaybeImpose(const Transit& t, const routing::FibEntry& entry,
                         const routing::NextHop& hop,
                         netbase::Packet& packet,
                         EngineStats& stats) const {
  const mpls::MplsConfig& config = configs_->For(t.router);
  if (!config.enabled) return;
  const mpls::LdpDomain* domain =
      ldp_->DomainOf(topology_->router(t.router).asn);
  if (domain == nullptr) return;

  netbase::Prefix fec;
  switch (entry.source) {
    case routing::RouteSource::kBgp:
      // External traffic is switched via the LSP towards the BGP next hop
      // (the egress LER's loopback, next-hop-self).
      if (entry.bgp_next_hop.is_unspecified()) return;  // eBGP exit
      fec = netbase::Prefix::Host(entry.bgp_next_hop);
      break;
    case routing::RouteSource::kIgp:
      fec = entry.prefix;
      break;
    case routing::RouteSource::kConnected:
      return;
  }

  const auto binding = domain->BindingOf(hop.neighbor, fec);
  if (!binding) return;
  if (binding->kind == mpls::BindingKind::kImplicitNull) return;  // pop+push

  LabelStackEntry lse;
  lse.label = binding->kind == mpls::BindingKind::kExplicitNull
                  ? kExplicitNull
                  : binding->label;
  lse.ttl =
      static_cast<std::uint8_t>(config.ttl_propagate ? packet.ip_ttl : 255);
  packet.labels.insert(packet.labels.begin(), lse);
  ++stats.labels_pushed;
}

bool Engine::IsLocalAddress(topo::RouterId router,
                            netbase::Ipv4Address address) const {
  const auto owner = topology_->FindRouterByAddress(address);
  return owner && *owner == router;
}

}  // namespace wormhole::sim
