// Streaming-campaign equivalence: CampaignOptions::stream_shard_size
// bounds peak memory (per-shard compaction into CompactTraceLog) but must
// not change ONE byte of the analysis output — same engine stats, same
// probe counts, same report — at any shard size and any worker count.
// These tests pin that contract on the golden seed-17 world.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/campaign_report.h"
#include "campaign/campaign.h"
#include "campaign/compact_trace.h"
#include "campaign/targets.h"
#include "campaign/trace_cache.h"
#include "gen/internet.h"
#include "routing/as_path.h"
#include "sim/network.h"

namespace wormhole {
namespace {

/// Builds the golden-snapshot world, runs the campaign, and serializes
/// everything streaming mode is expected to reproduce (the buffered
/// trace buffer itself is deliberately excluded — streaming never
/// retains it; test_golden_campaign pins those bytes).
std::string RunCampaign(std::size_t jobs, std::size_t stream_shard_size) {
  gen::InternetOptions options;
  options.seed = 17;
  options.tier1_count = 2;
  options.transit_count = 4;
  options.stub_count = 10;
  options.vp_count = 3;
  options.anonymous_router_probability = 0.02;
  options.icmp_loss = 0.05;

  gen::SyntheticInternet net(options);
  campaign::Campaign campaign(
      net.engine(), net.vantage_points(),
      {.jobs = jobs, .stream_shard_size = stream_shard_size});
  const campaign::CampaignResult result = campaign.Run(net.AllLoopbacks());
  const sim::EngineStats stats = net.engine().stats();

  if (stream_shard_size > 0) {
    EXPECT_TRUE(result.traces.empty())
        << "streaming mode must not buffer traces";
  } else {
    EXPECT_EQ(result.trace_count, result.traces.size());
  }
  EXPECT_GT(result.trace_count, 0u);

  std::ostringstream out;
  out << "S packets_injected " << stats.packets_injected << "\n";
  out << "S hops_processed " << stats.hops_processed << "\n";
  out << "S icmp_generated " << stats.icmp_generated << "\n";
  out << "S labels_pushed " << stats.labels_pushed << "\n";
  out << "S labels_popped " << stats.labels_popped << "\n";
  out << "S probes_sent " << result.probes_sent << "\n";
  out << "S revelation_traces " << result.revelation_traces << "\n";
  out << "S revealed_count " << result.revealed_count() << "\n";
  out << "S trace_count " << result.trace_count << "\n";
  analysis::WriteCampaignReport(out, result, net.topology());
  return out.str();
}

TEST(StreamingCampaign, ShardSizeNeverChangesAByte) {
  // shard=1 retires every trace immediately, 64 exercises mid-stream
  // boundaries, 1<<20 is a single whole-run shard — three very different
  // memory schedules, identical bytes.
  const std::string buffered = RunCampaign(/*jobs=*/1, /*shard=*/0);
  ASSERT_FALSE(buffered.empty());
  for (const std::size_t shard : {std::size_t{1}, std::size_t{64},
                                  std::size_t{1} << 20}) {
    const std::string streamed = RunCampaign(/*jobs=*/1, shard);
    EXPECT_EQ(streamed, buffered) << "shard=" << shard;
  }
}

TEST(StreamingCampaign, WorkerCountNeverChangesAByte) {
  const std::string buffered = RunCampaign(/*jobs=*/1, /*shard=*/0);
  for (const std::size_t shard : {std::size_t{1}, std::size_t{64},
                                  std::size_t{1} << 20}) {
    const std::string streamed = RunCampaign(/*jobs=*/4, shard);
    EXPECT_EQ(streamed, buffered) << "jobs=4 shard=" << shard;
  }
}

gen::InternetOptions GoldenWorldOptions() {
  gen::InternetOptions options;
  options.seed = 17;
  options.tier1_count = 2;
  options.transit_count = 4;
  options.stub_count = 10;
  options.vp_count = 3;
  options.anonymous_router_probability = 0.02;
  options.icmp_loss = 0.05;
  return options;
}

/// The first internal link of an MPLS-enabled AS — same choice at every
/// (jobs, shard) combination, so all runs flap the same link.
topo::LinkId PickFlapLink(const gen::SyntheticInternet& world) {
  const topo::Topology& topology = world.topology();
  for (topo::LinkId l = 0; l < topology.link_count(); ++l) {
    if (!topology.IsInternalLink(l)) continue;
    const topo::AsNumber asn =
        topology.router(topology.interface(topology.link(l).a).router).asn;
    if (world.profile(asn).mpls) return l;
  }
  return topo::kNoLink;
}

/// What a delta run must reproduce byte-for-byte. Engine stats are
/// excluded (cache hits skip simulated packets — that saving is the
/// point); probe accounting is included (SkipProbes replays cached id
/// budgets).
std::string DeltaBytes(const campaign::CampaignResult& result,
                       const gen::SyntheticInternet& world) {
  std::ostringstream out;
  out << "S probes_sent " << result.probes_sent << "\n";
  out << "S revelation_traces " << result.revelation_traces << "\n";
  out << "S revealed_count " << result.revealed_count() << "\n";
  out << "S trace_count " << result.trace_count << "\n";
  analysis::WriteCampaignReport(out, result, world.topology());
  return out.str();
}

// The golden world has icmp_loss > 0, so reply bytes depend on probe-id
// offsets and the cache must fall back to its strict-offset guard: a hit
// is only served when the prober sits at exactly the id the trace was
// recorded at (Engine::RepliesDependOnProbeIds). This pins delta parity
// on the HARD world — lossy, anonymous routers — at every jobs/shard
// combination, against a cold buffered reference.
TEST(DeltaCampaign, LossyWorldParityAtEveryJobsAndShardCombination) {
  // Cold reference: a buffered (shard=0) run against the flapped world.
  std::string want;
  {
    gen::SyntheticInternet world(GoldenWorldOptions());
    const topo::LinkId link = PickFlapLink(world);
    ASSERT_NE(link, topo::kNoLink);
    world.mutable_topology().SetLinkUp(link, false);
    world.network().OnLinkStateChange(link);
    campaign::Campaign cold(world.engine(), world.vantage_points(),
                            {.jobs = 1});
    want = DeltaBytes(cold.Run(world.AllLoopbacks()), world);
    ASSERT_FALSE(want.empty());
  }

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t shard : {std::size_t{1}, std::size_t{64},
                                    std::size_t{0}}) {
      gen::SyntheticInternet world(GoldenWorldOptions());
      const auto targets = world.AllLoopbacks();
      const topo::LinkId link = PickFlapLink(world);
      campaign::Campaign campaign(
          world.engine(), world.vantage_points(),
          {.jobs = jobs, .stream_shard_size = shard});
      campaign::TraceCache cache;
      (void)campaign.RunDelta(targets, cache);

      world.mutable_topology().SetLinkUp(link, false);
      const routing::ConvergenceDelta delta =
          world.network().OnLinkStateChange(link);
      const routing::AsPathOracle oracle(world.topology(),
                                         world.network().bgp_level(),
                                         world.network().bgp_policy());
      cache.Invalidate(delta, oracle);

      const campaign::CampaignResult result =
          campaign.RunDelta(targets, cache);
      EXPECT_EQ(DeltaBytes(result, world), want)
          << "jobs=" << jobs << " shard=" << shard;
      EXPECT_GT(result.delta_pairs_total, 0u);
      EXPECT_LE(result.delta_pairs_reprobed, result.delta_pairs_total);
      // Even under the strict-offset guard each VP serves at least its
      // clean probing prefix from the cache.
      EXPECT_LT(result.delta_pairs_reprobed, result.delta_pairs_total)
          << "jobs=" << jobs << " shard=" << shard;
    }
  }
}

TEST(CompactTraceLog, RoundTripsEveryFieldTheReduceReads) {
  probe::TraceResult trace;
  trace.source = netbase::Ipv4Address(0x0A000001);
  trace.target = netbase::Ipv4Address(0x0A0000FE);
  trace.flow_id = 7;
  trace.reached = true;
  for (int ttl = 2; ttl <= 5; ++ttl) {
    probe::Hop hop;
    hop.probe_ttl = ttl;
    if (ttl != 3) {  // hop 3 is a timeout ("*")
      hop.address = netbase::Ipv4Address(0x0A000100u + ttl);
      hop.reply_kind = ttl == 5 ? netbase::PacketKind::kEchoReply
                                : netbase::PacketKind::kTimeExceeded;
      hop.reply_ip_ttl = 255 - ttl;
      hop.rtt_ms = 1.5;  // NOT retained, by contract
    }
    trace.hops.push_back(hop);
  }

  campaign::CompactTraceLog log;
  log.Append(trace);
  probe::TraceResult empty;
  empty.source = trace.source;
  empty.target = netbase::Ipv4Address(0x0A0000FD);
  empty.flow_id = 9;
  empty.unreachable = true;
  log.Append(empty);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.hop_count(), 4u);

  const probe::TraceResult back = log.Inflate(0);
  EXPECT_EQ(back.source, trace.source);
  EXPECT_EQ(back.target, trace.target);
  EXPECT_EQ(back.flow_id, trace.flow_id);
  EXPECT_TRUE(back.reached);
  EXPECT_FALSE(back.unreachable);
  ASSERT_EQ(back.hops.size(), trace.hops.size());
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    EXPECT_EQ(back.hops[i].probe_ttl, trace.hops[i].probe_ttl);
    EXPECT_EQ(back.hops[i].address, trace.hops[i].address);
    EXPECT_EQ(back.hops[i].reply_kind, trace.hops[i].reply_kind);
    EXPECT_EQ(back.hops[i].reply_ip_ttl, trace.hops[i].reply_ip_ttl);
  }

  const probe::TraceResult back1 = log.Inflate(1);
  EXPECT_EQ(back1.target, empty.target);
  EXPECT_TRUE(back1.unreachable);
  EXPECT_FALSE(back1.reached);
  EXPECT_TRUE(back1.hops.empty());
}

TEST(FixedShards, CoversEveryTargetInOrder) {
  std::vector<netbase::Ipv4Address> targets;
  for (std::uint32_t i = 0; i < 10; ++i) {
    targets.emplace_back(0x0A000000u + i);
  }

  const auto shards = campaign::FixedShards(targets, 4);
  ASSERT_EQ(shards.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(shards.back().size(), 2u);
  std::size_t seen = 0;
  for (const auto shard : shards) {
    for (const netbase::Ipv4Address a : shard) {
      EXPECT_EQ(a, targets[seen++]);
    }
  }
  EXPECT_EQ(seen, targets.size());

  // 0 = one whole-run shard; oversize = same.
  EXPECT_EQ(campaign::FixedShards(targets, 0).size(), 1u);
  EXPECT_EQ(campaign::FixedShards(targets, 100).size(), 1u);
}

}  // namespace
}  // namespace wormhole
