// Mixed-control-plane integration: ECMP inside invisible tunnels, and
// LDP + RSVP-TE + SR coexisting in one domain (their label spaces must
// never collide and each steering mechanism must win where configured).
#include <gtest/gtest.h>

#include "mpls/rsvp_te.h"
#include "mpls/segment_routing.h"
#include "probe/multipath.h"
#include "probe/prober.h"
#include "reveal/revelator.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace wormhole {
namespace {

using topo::RouterId;
using topo::Vendor;

// gw | in -< a | b >- out | dst : an ECMP diamond *inside* the cloud.
struct DiamondTunnel {
  topo::Topology topology;
  std::unique_ptr<mpls::MplsConfigMap> configs;
  std::unique_ptr<sim::Network> network;
  netbase::Ipv4Address vp;
  RouterId gw, in, a, b, out, dst;

  explicit DiamondTunnel(mpls::LdpPolicy ldp) {
    topology.AddAs(1, "src");
    topology.AddAs(2, "mpls");
    topology.AddAs(3, "dst");
    gw = topology.AddRouter(1, "gw", Vendor::kCiscoIos);
    in = topology.AddRouter(2, "in", Vendor::kCiscoIos);
    a = topology.AddRouter(2, "a", Vendor::kCiscoIos);
    b = topology.AddRouter(2, "b", Vendor::kCiscoIos);
    out = topology.AddRouter(2, "out", Vendor::kCiscoIos);
    dst = topology.AddRouter(3, "dst", Vendor::kCiscoIos);
    topology.AddLink(gw, in);
    topology.AddLink(in, a);
    topology.AddLink(in, b);
    topology.AddLink(a, out);
    topology.AddLink(b, out);
    topology.AddLink(out, dst);
    vp = topology.AttachHost(gw, "VP");
    configs = std::make_unique<mpls::MplsConfigMap>(topology);
    configs->EnableAs(2, {.ttl_propagate = false, .ldp_policy = ldp});
    network = std::make_unique<sim::Network>(
        topology, *configs, routing::BgpPolicy{.stub_ases = {1, 3}});
  }
};

class DiamondTunnelTest
    : public ::testing::TestWithParam<mpls::LdpPolicy> {};

TEST_P(DiamondTunnelTest, RevelationFindsOneOfTheEcmpBranches) {
  DiamondTunnel world(GetParam());
  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace =
      prober.Traceroute(world.topology.router(world.dst).loopback);
  ASSERT_TRUE(trace.reached);
  const auto last3 = trace.LastResponders(3);
  ASSERT_EQ(last3.size(), 3u);

  reveal::Revelator revelator(prober);
  const auto result = revelator.Reveal(last3[0], last3[1]);
  ASSERT_TRUE(result.succeeded());
  ASSERT_EQ(result.revealed.size(), 1u);
  const auto lsr = world.topology.FindRouterByAddress(result.revealed[0]);
  ASSERT_TRUE(lsr.has_value());
  EXPECT_TRUE(*lsr == world.a || *lsr == world.b);
}

TEST_P(DiamondTunnelTest, MultipathEnumerationSeesBothHiddenBranches) {
  // With the tunnel forced visible, flow variation must expose both
  // equal-cost interiors.
  DiamondTunnel world(GetParam());
  for (const topo::Router& router : world.topology.routers()) {
    if (router.asn == 2) {
      world.configs->Mutable(router.id).ttl_propagate = true;
    }
  }
  world.network = std::make_unique<sim::Network>(
      world.topology, *world.configs,
      routing::BgpPolicy{.stub_ases = {1, 3}});
  probe::Prober prober(world.network->engine(), world.vp);
  const auto result = probe::EnumeratePaths(
      prober, world.topology.router(world.dst).loopback, {.flows = 32});
  EXPECT_EQ(result.distinct_paths(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Policies, DiamondTunnelTest,
                         ::testing::Values(mpls::LdpPolicy::kAllPrefixes,
                                           mpls::LdpPolicy::kLoopbacksOnly));

TEST(MixedControlPlanes, LdpTeAndSrCoexist) {
  // One AS, three steering mechanisms: LDP carries plain traffic, a TE
  // tunnel pins prefix T, an SR policy pins prefix S. Ring topology so the
  // explicit routes differ from the IGP path.
  topo::Topology topology;
  topology.AddAs(1, "src");
  topology.AddAs(2, "mpls");
  topology.AddAs(3, "dstT");
  topology.AddAs(4, "dstS");
  topology.AddAs(5, "dstL");
  const auto gw = topology.AddRouter(1, "gw", Vendor::kCiscoIos);
  const auto in = topology.AddRouter(2, "in", Vendor::kCiscoIos);
  const auto u1 = topology.AddRouter(2, "u1", Vendor::kCiscoIos);
  const auto u2 = topology.AddRouter(2, "u2", Vendor::kCiscoIos);
  const auto d1 = topology.AddRouter(2, "d1", Vendor::kCiscoIos);
  const auto d2 = topology.AddRouter(2, "d2", Vendor::kCiscoIos);
  const auto out = topology.AddRouter(2, "out", Vendor::kCiscoIos);
  const auto t = topology.AddRouter(3, "t", Vendor::kCiscoIos);
  const auto s = topology.AddRouter(4, "s", Vendor::kCiscoIos);
  const auto l = topology.AddRouter(5, "l", Vendor::kCiscoIos);
  topology.AddLink(gw, in);
  // Upper path (2 hops) and lower path (2 hops) to out; IGP prefers the
  // direct middle link.
  topology.AddLink(in, u1);
  topology.AddLink(u1, u2);
  topology.AddLink(u2, out);
  topology.AddLink(in, d1);
  topology.AddLink(d1, d2);
  topology.AddLink(d2, out);
  topology.AddLink(in, out);  // the IGP shortcut
  topology.AddLink(out, t);
  topology.AddLink(out, s);
  topology.AddLink(out, l);
  const auto vp = topology.AttachHost(gw, "VP");

  mpls::MplsConfigMap configs(topology);
  configs.EnableAs(2, {.ttl_propagate = true,
                       .ldp_policy = mpls::LdpPolicy::kAllPrefixes});

  mpls::TeDatabase te;
  mpls::TeTunnelSpec te_spec;
  te_spec.path = {in, u1, u2, out};
  te_spec.steered_prefixes = {topology.as(3).block};
  te.AddTunnel(topology, te_spec);

  mpls::SrDatabase sr;
  sr.EnableAs(topology, 2);
  mpls::SrPolicy sr_policy;
  sr_policy.ingress = in;
  sr_policy.prefix = topology.as(4).block;
  sr_policy.waypoints = {d2, out};
  sr.AddPolicy(topology, sr_policy);

  sim::Network network(topology, configs,
                       routing::BgpPolicy{.stub_ases = {1, 3, 4, 5}},
                       sim::EngineOptions{}, &te, &sr);
  probe::Prober prober(network.engine(), vp);

  const auto path_names = [&](netbase::Ipv4Address target) {
    std::vector<std::string> names;
    for (const auto& hop : prober.Traceroute(target).hops) {
      if (hop.address) {
        names.push_back(
            topology.router(*topology.FindRouterByAddress(*hop.address))
                .name);
      }
    }
    return names;
  };

  // TE traffic detours over the upper ring.
  EXPECT_EQ(path_names(topology.router(t).loopback),
            (std::vector<std::string>{"gw", "in", "u1", "u2", "out", "t"}));
  // SR traffic detours over the lower ring.
  EXPECT_EQ(path_names(topology.router(s).loopback),
            (std::vector<std::string>{"gw", "in", "d1", "d2", "out", "s"}));
  // Plain (LDP) traffic takes the IGP shortcut.
  EXPECT_EQ(path_names(topology.router(l).loopback),
            (std::vector<std::string>{"gw", "in", "out", "l"}));
}

}  // namespace
}  // namespace wormhole
