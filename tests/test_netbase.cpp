#include <gtest/gtest.h>

#include <sstream>

#include "netbase/ipv4.h"
#include "netbase/label.h"
#include "netbase/rng.h"
#include "netbase/stats.h"

namespace wormhole::netbase {
namespace {

TEST(Ipv4Address, ParsesDottedQuad) {
  const auto a = Ipv4Address::Parse("10.1.2.3");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0x0A010203u);
  EXPECT_EQ(a->ToString(), "10.1.2.3");
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1..2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse(" 1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4 ").has_value());
}

TEST(Ipv4Address, RoundTripsThroughText) {
  for (const std::uint32_t v :
       {0u, 1u, 0xFFFFFFFFu, 0x05010203u, 0xC0A80101u}) {
    const Ipv4Address a(v);
    const auto parsed = Ipv4Address::Parse(a.ToString());
    ASSERT_TRUE(parsed.has_value()) << a.ToString();
    EXPECT_EQ(parsed->value(), v);
  }
}

TEST(Ipv4Address, DetectsPrivateRanges) {
  EXPECT_TRUE(Ipv4Address(10, 0, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(172, 31, 255, 255).is_private());
  EXPECT_TRUE(Ipv4Address(192, 168, 1, 1).is_private());
  EXPECT_FALSE(Ipv4Address(172, 32, 0, 1).is_private());
  EXPECT_FALSE(Ipv4Address(11, 0, 0, 1).is_private());
  EXPECT_FALSE(Ipv4Address(5, 0, 0, 1).is_private());
}

TEST(Ipv4Address, OrdersByValue) {
  EXPECT_LT(Ipv4Address(1, 0, 0, 0), Ipv4Address(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Address(5, 1, 2, 3), Ipv4Address(0x05010203u));
}

TEST(Prefix, NormalisesHostBits) {
  const Prefix p(Ipv4Address(10, 1, 2, 3), 24);
  EXPECT_EQ(p.address(), Ipv4Address(10, 1, 2, 0));
  EXPECT_EQ(p.length(), 24);
  EXPECT_EQ(p.ToString(), "10.1.2.0/24");
}

TEST(Prefix, ContainsAddressesAndPrefixes) {
  const Prefix p(Ipv4Address(10, 1, 0, 0), 16);
  EXPECT_TRUE(p.Contains(Ipv4Address(10, 1, 200, 7)));
  EXPECT_FALSE(p.Contains(Ipv4Address(10, 2, 0, 0)));
  EXPECT_TRUE(p.Contains(Prefix(Ipv4Address(10, 1, 3, 0), 24)));
  EXPECT_FALSE(p.Contains(Prefix(Ipv4Address(10, 0, 0, 0), 8)));
}

TEST(Prefix, HostPrefixIsSlash32) {
  const Prefix h = Prefix::Host(Ipv4Address(5, 0, 0, 9));
  EXPECT_TRUE(h.is_host());
  EXPECT_EQ(h.size(), 1u);
  EXPECT_TRUE(h.Contains(Ipv4Address(5, 0, 0, 9)));
  EXPECT_FALSE(h.Contains(Ipv4Address(5, 0, 0, 8)));
}

TEST(Prefix, ParseRoundTrip) {
  const auto p = Prefix::Parse("5.1.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ToString(), "5.1.0.0/16");
  EXPECT_FALSE(Prefix::Parse("5.1.0.0").has_value());
  EXPECT_FALSE(Prefix::Parse("5.1.0.0/33").has_value());
  EXPECT_FALSE(Prefix::Parse("5.1.0.0/-1").has_value());
}

TEST(Prefix, AtIndexesIntoPrefix) {
  const Prefix p(Ipv4Address(5, 0, 0, 0), 30);
  EXPECT_EQ(p.At(0), Ipv4Address(5, 0, 0, 0));
  EXPECT_EQ(p.At(3), Ipv4Address(5, 0, 0, 3));
  EXPECT_EQ(p.size(), 4u);
}

TEST(Label, ReservedValues) {
  EXPECT_TRUE(IsReserved(0));
  EXPECT_TRUE(IsReserved(3));
  EXPECT_TRUE(IsReserved(15));
  EXPECT_FALSE(IsReserved(kFirstUnreservedLabel));
}

TEST(Label, FormatsLikeFig4) {
  LabelStackEntry lse;
  lse.label = 19;
  lse.ttl = 1;
  EXPECT_EQ(ToString(lse), "Label 19 TTL=1");
}

TEST(IntDistribution, BasicMoments) {
  IntDistribution d;
  for (const int v : {1, 2, 2, 3, 3, 3}) d.Add(v);
  EXPECT_EQ(d.total(), 6u);
  EXPECT_DOUBLE_EQ(d.Mean(), 14.0 / 6.0);
  EXPECT_EQ(d.Median(), 2);
  EXPECT_EQ(d.Mode(), 3);
  EXPECT_EQ(d.Min(), 1);
  EXPECT_EQ(d.Max(), 3);
  EXPECT_DOUBLE_EQ(d.Pdf(2), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(d.Cdf(2), 0.5);
}

TEST(IntDistribution, QuantilesAndMerge) {
  IntDistribution a;
  IntDistribution b;
  for (int i = 1; i <= 50; ++i) a.Add(i);
  for (int i = 51; i <= 100; ++i) b.Add(i);
  a.Merge(b);
  EXPECT_EQ(a.total(), 100u);
  EXPECT_EQ(a.Quantile(0.0), 1);
  EXPECT_EQ(a.Quantile(1.0), 100);
  EXPECT_NEAR(a.Quantile(0.5), 50, 1);
  EXPECT_NEAR(a.Quantile(0.9), 90, 1);
}

TEST(IntDistribution, EmptyThrowsOnQuantile) {
  const IntDistribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_THROW((void)d.Quantile(0.5), std::logic_error);
  EXPECT_THROW((void)d.Min(), std::logic_error);
}

TEST(IntDistribution, AsymmetryAroundCenter) {
  IntDistribution d;
  for (const int v : {-1, 0, 1}) d.Add(v);
  EXPECT_DOUBLE_EQ(d.AsymmetryAround(0), 0.0);
  d.Add(5);
  d.Add(6);
  EXPECT_GT(d.AsymmetryAround(0), 0.0);
}

TEST(NormalFit, RecognisesRoughlyNormalData) {
  IntDistribution d;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    d.Add(static_cast<int>(std::lround(rng.Normal(0.0, 3.0))));
  }
  const NormalFit fit = FitNormal(d);
  EXPECT_NEAR(fit.mean, 0.0, 0.1);
  EXPECT_NEAR(fit.stddev, 3.0, 0.1);
  EXPECT_NEAR(fit.within_one_sigma, 0.68, 0.08);
}

TEST(Summary, QuantilesOnRealData) {
  Summary s;
  for (int i = 100; i >= 1; --i) s.Add(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_NEAR(s.Median(), 50.0, 1.0);
  EXPECT_NEAR(s.Mean(), 50.5, 1e-9);
}

TEST(IntDistribution, ModeBreaksTiesTowardsSmallerValue) {
  IntDistribution d;
  d.Add(3, 5);
  d.Add(7, 5);
  EXPECT_EQ(d.Mode(), 3);
}

TEST(IntDistribution, WeightedAddAccumulates) {
  IntDistribution d;
  d.Add(2, 10);
  d.Add(2, 5);
  EXPECT_EQ(d.CountOf(2), 15u);
  EXPECT_EQ(d.total(), 15u);
}

TEST(FormatPdf, RendersFixedRange) {
  IntDistribution d;
  d.Add(1, 1);
  d.Add(2, 3);
  const std::string out = FormatPdf(d, 1, 3);
  EXPECT_NE(out.find("0.2500"), std::string::npos);
  EXPECT_NE(out.find("0.7500"), std::string::npos);
  EXPECT_NE(out.find("0.0000"), std::string::npos);
}

TEST(Summary, StdDevOfConstantIsZero) {
  Summary s;
  s.Add(4.0);
  s.Add(4.0);
  s.Add(4.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
  EXPECT_THROW((void)Summary{}.Quantile(0.5), std::logic_error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(Rng, ParetoIntRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.ParetoInt(2.0, 10);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 10);
  }
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(11);
  const std::vector<double> weights{0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 10000; ++i) {
    counts[rng.WeightedIndex(weights)]++;
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

}  // namespace
}  // namespace wormhole::netbase
