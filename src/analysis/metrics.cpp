#include "analysis/metrics.h"

#include <cmath>
#include <deque>

namespace wormhole::analysis {

double LocalClustering(const topo::ItdkDataset& dataset, topo::NodeId node) {
  const auto& neighbors = dataset.NeighborsOf(node);
  const std::size_t k = neighbors.size();
  if (k < 2) return 0.0;
  std::size_t closed = 0;
  for (auto it = neighbors.begin(); it != neighbors.end(); ++it) {
    auto jt = it;
    for (++jt; jt != neighbors.end(); ++jt) {
      if (dataset.HasLink(*it, *jt)) ++closed;
    }
  }
  return 2.0 * static_cast<double>(closed) /
         (static_cast<double>(k) * static_cast<double>(k - 1));
}

double AverageClustering(const topo::ItdkDataset& dataset) {
  if (dataset.node_count() == 0) return 0.0;
  double sum = 0.0;
  for (const topo::ItdkNode& node : dataset.nodes()) {
    sum += LocalClustering(dataset, node.id);
  }
  return sum / static_cast<double>(dataset.node_count());
}

double GlobalDensity(const topo::ItdkDataset& dataset) {
  const double v = static_cast<double>(dataset.node_count());
  if (v < 2.0) return 0.0;
  return 2.0 * static_cast<double>(dataset.link_count()) / (v * (v - 1.0));
}

netbase::IntDistribution ShortestPathLengths(const topo::ItdkDataset& dataset,
                                             topo::NodeId source) {
  netbase::IntDistribution lengths;
  std::vector<int> distance(dataset.node_count(), -1);
  std::deque<topo::NodeId> queue{source};
  distance[source] = 0;
  while (!queue.empty()) {
    const topo::NodeId u = queue.front();
    queue.pop_front();
    for (const topo::NodeId v : dataset.NeighborsOf(u)) {
      if (distance[v] != -1) continue;
      distance[v] = distance[u] + 1;
      lengths.Add(distance[v]);
      queue.push_back(v);
    }
  }
  return lengths;
}

PathStats SampledPathStats(const topo::ItdkDataset& dataset,
                           std::size_t sample_count) {
  PathStats stats;
  const std::size_t n = dataset.node_count();
  if (n == 0) return stats;
  const std::size_t samples =
      sample_count == 0 ? n : std::min(sample_count, n);
  const std::size_t stride = std::max<std::size_t>(1, n / samples);
  for (std::size_t source = 0; source < n; source += stride) {
    stats.lengths.Merge(
        ShortestPathLengths(dataset, static_cast<topo::NodeId>(source)));
  }
  if (!stats.lengths.empty()) {
    stats.mean = stats.lengths.Mean();
    stats.diameter = stats.lengths.Max();
  }
  return stats;
}

double FitPowerLawAlpha(const netbase::IntDistribution& d, int x_min) {
  double log_sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& [value, count] : d.buckets()) {
    if (value < x_min) continue;
    log_sum += static_cast<double>(count) *
               std::log(static_cast<double>(value) /
                        (static_cast<double>(x_min) - 0.5));
    n += count;
  }
  if (n < 2 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

}  // namespace wormhole::analysis
