// Fixture: allocation and container growth inside a batch-hot region.
#include <cstddef>
#include <vector>

void SetupIsFine(std::vector<int>& arena) { arena.resize(64); }

int StepRounds(std::vector<int>& rows, std::size_t live) {
  int total = 0;
  // lint:batch-hot-begin
  while (live > 0) {
    std::vector<int> scratch;              // expect: batch-heap
    scratch.push_back(static_cast<int>(live));  // expect: batch-heap
    rows.push_back(total);                 // expect: batch-heap
    int* spill = new int[live];            // expect: batch-heap
    total += spill[0] + scratch[0];
    delete[] spill;
    --live;
  }
  // lint:batch-hot-end
  rows.push_back(total);  // after the region: fine again
  return total;
}
