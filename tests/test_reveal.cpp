// The four techniques on the emulation testbed: the heart of the paper.
#include <gtest/gtest.h>

#include "gen/gns3.h"
#include "probe/prober.h"
#include "reveal/frpla.h"
#include "reveal/revelator.h"
#include "reveal/rtla.h"

namespace wormhole::reveal {
namespace {

class RevealTest : public ::testing::Test {
 protected:
  void Build(gen::Gns3Scenario scenario,
             topo::Vendor vendor = topo::Vendor::kCiscoIos) {
    testbed_ = std::make_unique<gen::Gns3Testbed>(
        gen::Gns3Options{.scenario = scenario, .as2_vendor = vendor});
    prober_ = std::make_unique<probe::Prober>(testbed_->engine(),
                                              testbed_->vantage_point());
  }

  /// Traces to CE2 and runs the revelator on the last AS2-internal pair.
  RevelationResult RevealTunnel() {
    const auto trace =
        prober_->Traceroute(testbed_->Address("CE2.left"));
    // Suspected endpoints: PE1 (ingress) and PE2 (egress) appear adjacent.
    Revelator revelator(*prober_);
    return revelator.Reveal(testbed_->Address("PE1.left"),
                            testbed_->Address("PE2.left"));
  }

  std::vector<std::string> Names(
      const std::vector<netbase::Ipv4Address>& addresses) const {
    std::vector<std::string> names;
    names.reserve(addresses.size());
    for (const auto a : addresses) names.push_back(testbed_->NameOf(a));
    return names;
  }

  std::unique_ptr<gen::Gns3Testbed> testbed_;
  std::unique_ptr<probe::Prober> prober_;
};

// --- BRPR on the all-prefix (Cisco default) configuration ------------------
TEST_F(RevealTest, BrprPeelsTheTunnelBackwards) {
  Build(gen::Gns3Scenario::kBackwardRecursive);
  const RevelationResult result = RevealTunnel();
  EXPECT_EQ(result.method, RevelationMethod::kBrpr);
  EXPECT_EQ(Names(result.revealed),
            (std::vector<std::string>{"P1.left", "P2.left", "P3.left"}));
  EXPECT_EQ(result.tunnel_length(), 4);
  // One trace per revealed hop plus the final fruitless one.
  EXPECT_EQ(result.traces_used, 4);
  EXPECT_EQ(result.batch_sizes, (std::vector<int>{1, 1, 1}));
}

// --- DPR on the loopback-only (Juniper default) configuration --------------
TEST_F(RevealTest, DprRevealsTheTunnelInOneTrace) {
  Build(gen::Gns3Scenario::kExplicitRoute);
  const RevelationResult result = RevealTunnel();
  EXPECT_EQ(result.method, RevelationMethod::kDpr);
  EXPECT_EQ(Names(result.revealed),
            (std::vector<std::string>{"P1.left", "P2.left", "P3.left"}));
  EXPECT_EQ(result.batch_sizes, (std::vector<int>{3}));
  // The whole content came from the first extra trace; the second stops.
  EXPECT_EQ(result.traces_used, 2);
}

// --- UHP: nothing can be revealed -------------------------------------------
TEST_F(RevealTest, UhpTunnelStaysInvisible) {
  Build(gen::Gns3Scenario::kTotallyInvisible);
  const RevelationResult result = RevealTunnel();
  EXPECT_EQ(result.method, RevelationMethod::kNone);
  EXPECT_TRUE(result.revealed.empty());
}

// --- Explicit tunnels: nothing new to reveal (cross-validation base case) --
TEST_F(RevealTest, ExplicitTunnelRevealsNothingNew) {
  Build(gen::Gns3Scenario::kDefault);
  // All hops already visible; the revelator adds nothing between PE1/PE2's
  // *known* neighbors... it re-discovers the same addresses, which are not
  // "new" relative to an original trace that already contained them.
  const auto original = prober_->Traceroute(testbed_->Address("CE2.left"));
  EXPECT_TRUE(original.HasExplicitMpls());
  Revelator revelator(*prober_);
  const auto result = revelator.Reveal(testbed_->Address("P3.left"),
                                       testbed_->Address("PE2.left"));
  // P3 and PE2 are true neighbors: nothing hides between them.
  EXPECT_EQ(result.method, RevelationMethod::kNone);
}

// --- FRPLA ------------------------------------------------------------------
TEST_F(RevealTest, FrplaSeesTheShiftOnInvisibleEgress) {
  Build(gen::Gns3Scenario::kBackwardRecursive);
  const auto trace = prober_->Traceroute(testbed_->Address("CE2.left"));
  ASSERT_TRUE(trace.reached);

  // Hop 3 = PE2 (egress of the invisible tunnel): forward length 3, return
  // length (255-250)+1 = 6 -> RFA = +3 = the number of hidden LSRs (the
  // return counts P1..P3 via the min rule; routing here is symmetric).
  const auto& egress_hop = trace.hops[2];
  const auto rfa = ObserveRfa(egress_hop);
  ASSERT_TRUE(rfa.has_value());
  EXPECT_EQ(rfa->forward_length, 3);
  EXPECT_EQ(rfa->return_length, 6);
  EXPECT_EQ(rfa->rfa(), 3);

  // Hop 2 = PE1 (before the tunnel): no shift.
  const auto rfa_ingress = ObserveRfa(trace.hops[1]);
  ASSERT_TRUE(rfa_ingress.has_value());
  EXPECT_EQ(rfa_ingress->rfa(), 0);  // (255-254)+1 return vs 2 forward
}

TEST_F(RevealTest, FrplaSeesNoShiftOnExplicitTunnel) {
  Build(gen::Gns3Scenario::kDefault);
  const auto trace = prober_->Traceroute(testbed_->Address("CE2.left"));
  // Hop 6 = PE2: forward 6; return 255-250 = 5 -> RFA -1: no positive shift.
  const auto rfa = ObserveRfa(trace.hops[5]);
  ASSERT_TRUE(rfa.has_value());
  EXPECT_EQ(rfa->forward_length, 6);
  EXPECT_LE(rfa->rfa(), 0);
}

TEST(FrplaAnalysis, AggregatesPerAsAndRole) {
  FrplaAnalysis analysis;
  RfaObservation obs;
  obs.forward_length = 3;
  obs.return_length = 7;
  analysis.Add(2, ResponderRole::kEgressRevealed, obs);
  obs.return_length = 6;
  analysis.Add(2, ResponderRole::kEgressRevealed, obs);
  obs.return_length = 3;
  analysis.Add(2, ResponderRole::kOther, obs);

  EXPECT_EQ(analysis.Distribution(2, ResponderRole::kEgressRevealed).total(),
            2u);
  EXPECT_EQ(analysis.Combined(ResponderRole::kOther).Median(), 0);
  const auto estimate = analysis.EstimatedTunnelLength(2);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_EQ(*estimate, 3);  // median of {4, 3}
  EXPECT_EQ(analysis.Ases(), std::vector<topo::AsNumber>{2});
  EXPECT_FALSE(analysis.EstimatedTunnelLength(99).has_value());
}

// --- RTLA -------------------------------------------------------------------
TEST_F(RevealTest, RtlaComputesExactReturnTunnelLength) {
  Build(gen::Gns3Scenario::kBackwardRecursive, topo::Vendor::kJuniperJunos);
  const auto trace = prober_->Traceroute(testbed_->Address("CE2.left"));
  const auto& egress_hop = trace.hops[2];  // PE2, time-exceeded
  ASSERT_TRUE(egress_hop.address.has_value());
  const auto ping = prober_->Ping(*egress_hop.address);
  ASSERT_TRUE(ping.responded);

  const auto observation = ObserveRtla(*egress_hop.address,
                                       egress_hop.reply_ip_ttl,
                                       ping.reply_ip_ttl);
  ASSERT_TRUE(observation.has_value());
  // The return LSP PE2 -> P3 -> P2 -> P1 -> PE1 hides 3 LSRs.
  EXPECT_EQ(observation->return_tunnel_length(), 3);
}

TEST_F(RevealTest, RtlaNotApplicableToCisco) {
  Build(gen::Gns3Scenario::kBackwardRecursive, topo::Vendor::kCiscoIos);
  const auto trace = prober_->Traceroute(testbed_->Address("CE2.left"));
  const auto& egress_hop = trace.hops[2];
  const auto ping = prober_->Ping(*egress_hop.address);
  EXPECT_FALSE(ObserveRtla(*egress_hop.address, egress_hop.reply_ip_ttl,
                           ping.reply_ip_ttl)
                   .has_value());
}

TEST(RtlaAnalysis, AggregatesAndEstimates) {
  RtlaAnalysis analysis;
  RtlaObservation obs;
  obs.te_return_length = 8;
  obs.er_return_length = 5;
  analysis.Add(7, obs);
  obs.er_return_length = 4;
  analysis.Add(7, obs);
  EXPECT_EQ(analysis.Distribution(7).total(), 2u);
  const auto estimate = analysis.EstimatedTunnelLength(7);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_EQ(*estimate, 3);  // median of {3, 4}
  EXPECT_EQ(analysis.Combined().total(), 2u);
  EXPECT_FALSE(analysis.EstimatedTunnelLength(8).has_value());
}

TEST_F(RevealTest, MaxRecursionBoundsTheProbingCost) {
  Build(gen::Gns3Scenario::kBackwardRecursive);
  Revelator revelator(*prober_, {.max_recursion = 2});
  const auto result = revelator.Reveal(testbed_->Address("PE1.left"),
                                       testbed_->Address("PE2.left"));
  // Two rounds reveal P3 and P2 only; the tunnel stays partial.
  EXPECT_EQ(result.traces_used, 2);
  EXPECT_EQ(result.revealed.size(), 2u);
  EXPECT_EQ(result.method, RevelationMethod::kBrpr);
}

TEST_F(RevealTest, RevealIsIdempotentAcrossRepeats) {
  Build(gen::Gns3Scenario::kExplicitRoute);
  Revelator revelator(*prober_);
  const auto first = revelator.Reveal(testbed_->Address("PE1.left"),
                                      testbed_->Address("PE2.left"));
  const auto second = revelator.Reveal(testbed_->Address("PE1.left"),
                                       testbed_->Address("PE2.left"));
  EXPECT_EQ(first.revealed, second.revealed);
  EXPECT_EQ(first.method, second.method);
}

// --- Classification ---------------------------------------------------------
TEST(ClassifyBatches, CoversAllCases) {
  EXPECT_EQ(ClassifyBatches({}), RevelationMethod::kNone);
  EXPECT_EQ(ClassifyBatches({1}), RevelationMethod::kEither);
  EXPECT_EQ(ClassifyBatches({3}), RevelationMethod::kDpr);
  EXPECT_EQ(ClassifyBatches({2, 2}), RevelationMethod::kDpr);
  EXPECT_EQ(ClassifyBatches({1, 1, 1}), RevelationMethod::kBrpr);
  EXPECT_EQ(ClassifyBatches({3, 1}), RevelationMethod::kHybrid);
  EXPECT_EQ(ClassifyBatches({1, 2}), RevelationMethod::kHybrid);
}

}  // namespace
}  // namespace wormhole::reveal
