# Empty dependencies file for fig04_emulation.
# This may be replaced when dependencies are built.
