// Unit tests for the parallel-execution primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"

namespace wormhole::exec {
namespace {

TEST(Exec, HardwareConcurrencyIsAtLeastOne) {
  EXPECT_GE(HardwareConcurrency(), 1u);
}

TEST(Exec, ThreadSlotIsStableAndInRange) {
  const std::size_t slot = ThreadSlot(8);
  EXPECT_LT(slot, 8u);
  EXPECT_EQ(ThreadSlot(8), slot);  // stable for the same thread

  std::size_t other = 0;
  std::thread t([&other] { other = ThreadSlot(1u << 20); });
  t.join();
  EXPECT_NE(other, ThreadSlot(1u << 20));  // distinct live threads differ
}

TEST(Exec, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(pool, hits.size(),
              [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(Exec, ParallelForRunsInlineOnSingleWorkerPool) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  ParallelFor(pool, ran.size(),
              [&](std::size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto id : ran) EXPECT_EQ(id, caller);
}

TEST(Exec, ParallelForWritesToDistinctShardsNeedNoLocking) {
  ThreadPool pool(4);
  std::vector<std::vector<int>> shards(16);
  ParallelFor(pool, shards.size(), [&](std::size_t i) {
    shards[i].resize(1000);
    std::iota(shards[i].begin(), shards[i].end(), static_cast<int>(i));
  });
  for (std::size_t i = 0; i < shards.size(); ++i) {
    ASSERT_EQ(shards[i].size(), 1000u);
    EXPECT_EQ(shards[i].front(), static_cast<int>(i));
    EXPECT_EQ(shards[i].back(), static_cast<int>(i) + 999);
  }
}

TEST(Exec, ParallelForRethrowsTaskExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(pool, 16,
                           [](std::size_t i) {
                             if (i == 7) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> count{0};
  ParallelFor(pool, 16, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(Exec, StripedMutexMapsHashesWithinStripeCount) {
  StripedMutex striped(8);
  EXPECT_EQ(striped.stripes(), 8u);
  // Same hash, same stripe: lock/unlock through both paths must agree.
  Mutex& a = striped.For(13);
  Mutex& b = striped.For(13 + 8);
  EXPECT_EQ(&a, &b);
  MutexLock lock(a);
}

TEST(Exec, StripedMutexSerialisesContendingWriters) {
  ThreadPool pool(4);
  StripedMutex striped(4);
  std::vector<long> totals(4, 0);
  ParallelFor(pool, 64, [&](std::size_t i) {
    const std::size_t key = i % totals.size();
    MutexLock lock(striped.For(key));
    totals[key] += static_cast<long>(i);
  });
  long sum = 0;
  for (const long t : totals) sum += t;
  EXPECT_EQ(sum, 63 * 64 / 2);
}

}  // namespace
}  // namespace wormhole::exec
