// The packet-level IP + MPLS data plane.
//
// This is the GNS3/Internet substitute: it forwards one packet at a time,
// hop by hop, applying the TTL semantics the paper's techniques exploit.
// The rules are calibrated so that bench/fig04_emulation reproduces the
// per-hop addresses *and return TTLs* of the paper's Fig. 4 exactly:
//
//  * Plain IP hop: decrement IP-TTL; expiry => ICMP time-exceeded sourced
//    from the incoming interface, with the vendor's initial TTL.
//  * Ingress LER: IP hop first (decrement), then push; LSE-TTL := IP-TTL
//    under ttl-propagate, else 255.
//  * LSR: decrement only the top LSE-TTL. Expiry => time-exceeded quoting
//    the received LSE stack (RFC 4950); if the ICMP can still be label-
//    switched (the expiring hop's out-binding is a real or explicit-null
//    label) it is forwarded along the LSP to the tunnel end first, which
//    produces Fig. 4a's 247/248 return-TTL inversion.
//  * PHP pop (implicit-null out-binding): IP-TTL := min(IP-TTL, LSE-TTL)
//    ("min rule", RFC 3443 / Cisco), then forward without a further IP
//    decrement.
//  * UHP pop (packet arrives with explicit-null): pop, decrement IP-TTL
//    *without* an expiry check and with no min copy, then a fresh IP
//    lookup with no further decrement. This is the emulation-calibrated
//    behaviour that makes even the Egress LER invisible (Fig. 4d).
//  * Locally originated packets (all ICMP replies) are not decremented at
//    their originating router and may be label-imposed like any traffic.
//  * Errors are never generated about ICMP errors or echo replies: an
//    expiring reply is silently dropped (the probe times out).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mpls/config.h"
#include "mpls/ldp.h"
#include "mpls/rsvp_te.h"
#include "mpls/segment_routing.h"
#include "netbase/packet.h"
#include "routing/fib.h"
#include "topo/topology.h"

namespace wormhole::exec {
class ThreadPool;
}  // namespace wormhole::exec

namespace wormhole::sim {

struct EngineOptions {
  /// Spread traffic over equal-cost next hops by flow hash; with ECMP off
  /// the first (lowest) next hop is always taken.
  bool ecmp_enabled = true;
  /// Hard bound on data-plane hops per injected packet (loop guard).
  int max_hops = 256;
  /// One-way delay of a host stub segment, in milliseconds.
  double host_stub_delay_ms = 0.05;
  /// Per-packet delay jitter as a fraction of each link's base delay
  /// (0 = fully deterministic RTTs). The draw is deterministic per
  /// (probe id, link), so repeated sends of the same probe id see the
  /// same latency.
  double delay_jitter_fraction = 0.0;
};

/// Why an injected probe produced no answer.
enum class LossReason : std::uint8_t {
  kNone,
  kTtlLoop,          ///< exceeded max_hops
  kNoRoute,          ///< a reply (not the probe) hit a routing black hole
  kReplyExpired,     ///< a reply's own TTL ran out
  kDropped,          ///< malformed/label without binding
};

/// Counters for the perf bench and campaign accounting.
struct EngineStats {
  std::uint64_t packets_injected = 0;
  std::uint64_t hops_processed = 0;
  std::uint64_t icmp_generated = 0;
  std::uint64_t labels_pushed = 0;
  std::uint64_t labels_popped = 0;

  EngineStats& operator+=(const EngineStats& other) {
    packets_injected += other.packets_injected;
    hops_processed += other.hops_processed;
    icmp_generated += other.icmp_generated;
    labels_pushed += other.labels_pushed;
    labels_popped += other.labels_popped;
    return *this;
  }
  friend bool operator==(const EngineStats&, const EngineStats&) = default;
};

class Engine {
 public:
  /// All references must outlive the engine. `te` and `sr` may be null
  /// (no RSVP-TE tunnels / no Segment Routing). With a `pool`, the
  /// per-router caches are built in parallel (disjoint writes, identical
  /// content at any worker count).
  Engine(const topo::Topology& topology, const mpls::MplsConfigMap& configs,
         const std::vector<routing::Fib>& fibs, const mpls::LdpTables& ldp,
         EngineOptions options = {}, const mpls::TeDatabase* te = nullptr,
         const mpls::SrDatabase* sr = nullptr,
         exec::ThreadPool* pool = nullptr);

  /// Rebuilds the hot-path caches of just `routers` after an incremental
  /// reconvergence re-installed their routes/labels (the FIB vector and
  /// LDP tables keep their addresses; only derived state is re-resolved).
  /// Bumps the convergence epoch.
  void RefreshRouters(const std::vector<topo::RouterId>& routers);

  /// Monotone convergence-epoch counter: 1 after construction, +1 per
  /// RefreshRouters call (sim::Network calls it exactly once per
  /// reconvergence). A probe's outcome is a pure function of the state
  /// published under one epoch, so an epoch-stamped result cache knows a
  /// cached entry is only servable while the stamp matches — the single
  /// source of truth the delta-reprobe layer versions against
  /// (docs/incremental.md).
  [[nodiscard]] std::uint64_t convergence_epoch() const {
    return convergence_epoch_;
  }

  /// True when some router's ICMP-loss probability is non-zero: the loss
  /// draw is keyed by (probe id, router), so trace BYTES then depend on
  /// the probe-id offset a trace starts at. When false, reply existence
  /// and content are pure functions of the routing state (delay jitter
  /// only perturbs RTTs, which compact trace logs drop), so a cached
  /// trace replays byte-identically at any probe-id offset. Scans the
  /// live configs on each call — tests mutate them after construction.
  [[nodiscard]] bool RepliesDependOnProbeIds() const;

  struct Outcome {
    bool received = false;
    LossReason loss = LossReason::kNone;
    /// The reply as delivered to the origin host (ip_ttl = remaining TTL —
    /// the bracketed numbers in Fig. 4).
    netbase::Packet reply;
    /// Round-trip time: probe path + reply path.
    double rtt_ms = 0.0;

    friend bool operator==(const Outcome&, const Outcome&) = default;
  };

  /// Injects `probe` from the host owning `probe.src` and runs the data
  /// plane until a reply returns to that host or the packet dies.
  /// `probe.src` must be an attached host address.
  ///
  /// Thread-safe: Send is logically const — routing/LDP/topology state is
  /// shared read-only, and the stats counters are sharded per thread — so
  /// any number of probers may inject packets concurrently.
  Outcome Send(netbase::Packet probe) const;

  /// Results of one SendBatch call plus its recycled stepping state.
  ///
  /// All storage is reused across batches (capacity is kept on clear), so
  /// a caller that holds on to one BatchResult steps every subsequent
  /// batch without allocating. One BatchResult per calling thread; the
  /// engine never retains a pointer to it past the SendBatch call.
  class BatchResult {
   public:
    /// `outcomes[i]` is exactly what `Send(probes[i])` would have
    /// returned: completed outcomes are written to their original batch
    /// slot, whatever order the rounds retired them in.
    std::vector<Outcome> outcomes;
    /// Per-slot counter deltas (parallel to `outcomes`); their sum is what
    /// the batch contributed to `stats()`. Callers that defer the flush
    /// (SendBatchOptions::commit_stats == false) commit a subset of slots
    /// through Engine::CommitStats.
    std::vector<EngineStats> per_slot_stats;

   private:
    friend class Engine;
    // Packet arena: slot-indexed, sized once per batch so packets (and
    // their inline label stacks) never move while rounds run. Transits
    // reference arena packets by pointer.
    std::vector<netbase::Packet> arena;
    // Per-slot origin host address (reply acceptance check).
    std::vector<netbase::Ipv4Address> origin;
    // Live-transit SoA rows, compacted and grouped by router each round.
    // While a row is live these columns — not the arena packet — are the
    // AUTHORITATIVE copy of its top-of-stack (`ttl`, `top_label`;
    // kNoTopLabel when unlabelled, in which case `ttl` is the IP TTL),
    // elapsed time and hop count: shared-decision runs update only the
    // columns, and the packet is written back just before any generic
    // step, expiry or delivery (see StepBatchRow's prologue and the
    // kPop/impose write-backs in TryStepRunShared). The prefetch and
    // run-sharing decisions therefore never touch the packet.
    std::vector<std::uint32_t> slot;
    std::vector<topo::RouterId> router;
    std::vector<topo::InterfaceId> in_iface;
    std::vector<std::uint8_t> ttl;
    std::vector<std::uint32_t> top_label;
    std::vector<std::uint8_t> flags;
    std::vector<double> elapsed;
    std::vector<std::int32_t> hops;
    // Gather targets for the group-by-router permutation (swapped with
    // the rows above each round).
    std::vector<std::uint32_t> slot2;
    std::vector<topo::RouterId> router2;
    std::vector<topo::InterfaceId> in_iface2;
    std::vector<std::uint8_t> ttl2;
    std::vector<std::uint32_t> top_label2;
    std::vector<std::uint8_t> flags2;
    std::vector<double> elapsed2;
    std::vector<std::int32_t> hops2;
    // Sort scratch: the round's live permutation and per-router counts.
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> counts;
  };

  struct SendBatchOptions {
    /// Flush the batch's summed counters into this thread's stat shard
    /// before returning (one flush per batch). Callers that must
    /// attribute counters probe-by-probe (the speculative batched
    /// prober discards mispredicted slots) pass false and commit the
    /// consumed slots' sum through CommitStats themselves.
    bool commit_stats = true;
  };

  /// Steps all of `probes` through the data plane at once and writes
  /// `Send`-identical outcomes into `batch.outcomes`, slot for slot.
  ///
  /// Each round groups the live transits by current router (stable in
  /// batch order), so every lookup against one RouterCache, its FIB and
  /// its ldp_op tables happens back-to-back, with the next group's state
  /// software-prefetched while the current one is processed. Probes are
  /// consumed (moved into the batch arena). Every `probe.src` must be an
  /// attached host address (throws std::invalid_argument otherwise, in
  /// which case the batch contents are unspecified).
  ///
  /// Thread-safe under the same contract as Send, provided each thread
  /// uses its own BatchResult.
  void SendBatch(std::span<netbase::Packet> probes, BatchResult& batch,
                 SendBatchOptions batch_options) const;
  void SendBatch(std::span<netbase::Packet> probes, BatchResult& batch) const {
    SendBatch(probes, batch, SendBatchOptions{});
  }

  /// Adds `stats` to this thread's stat shard — the deferred-commit half
  /// of SendBatchOptions::commit_stats == false.
  void CommitStats(const EngineStats& stats) const;

  /// Totals merged across the per-thread stat shards.
  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }

 private:
  struct Transit {
    /// The in-flight packet. A pointer so one stepping code path serves
    /// both entry points: Send aims it at a stack local, SendBatch at a
    /// stable arena slot — either way the packet bytes never move while
    /// the hop loop runs.
    netbase::Packet* packet = nullptr;
    topo::RouterId router = topo::kNoRouter;
    topo::InterfaceId in_interface = topo::kNoInterface;
    /// Set while the packet sits at the router that just originated it;
    /// suppresses the IP decrement for that first hop.
    bool locally_originated = false;
    /// One-shot decrement suppression after a UHP pop at the same router.
    bool skip_ip_decrement = false;
  };

  // Each step either advances the caller's Transit IN PLACE (default
  // result: no outcome, loss == kNone), finishes with an Outcome, or
  // loses the packet. Threading one mutable Transit through the loop —
  // instead of returning a fresh one per hop — keeps the packet (with
  // its inline label stacks) unmoved in memory across hops.
  struct StepResult {
    std::optional<Outcome> outcome;
    LossReason loss = LossReason::kNone;
  };

  /// A resolved label operation: where the labelled packet goes next and
  /// what happens to its top label. Unifies LDP and RSVP-TE forwarding.
  struct LabelOp {
    routing::NextHop hop;
    enum class Kind : std::uint8_t {
      kSwap,
      kPop,               ///< PHP pop: min rule, then plain forwarding
      kSwapExplicitNull,  ///< UHP: hand an explicit-null to the egress
    } kind = Kind::kSwap;
    std::uint32_t out_label = 0;
  };

  /// A host hanging off a router, reduced to what the delivery check
  /// needs per hop.
  struct AttachedHost {
    netbase::Ipv4Address address;
    topo::InterfaceId stub_interface = topo::kNoInterface;
  };

  /// Per-router hot-path state resolved once at engine construction, so
  /// the per-hop loop never repeats the config / LDP-domain / FIB hash
  /// and bounds-checked lookups. Pointees are stable: MplsConfigMap and
  /// LdpTables are node-based maps that are never erased from, and the
  /// FIB vector is fixed-size for the engine's lifetime. Config *values*
  /// may still be tweaked after construction (tests do) — the cache holds
  /// pointers, not copies, so it always sees the live values. The derived
  /// tables (addresses, hosts, LDP ops) snapshot structures that the
  /// simulator never mutates after the control plane converged.
  struct RouterCache {
    const topo::Router* router = nullptr;
    const mpls::MplsConfig* config = nullptr;
    const mpls::LdpDomain* domain = nullptr;  ///< null: AS not MPLS-enabled
    const routing::Fib* fib = nullptr;
    /// Addresses owned by this router (loopback + every interface),
    /// scanned instead of the global address hash on local delivery.
    /// [addr_lo, addr_hi] brackets the set so the per-hop delivery check
    /// rejects almost every transit packet with two compares instead of
    /// a scan over a well-connected router's interface list.
    std::vector<netbase::Ipv4Address> local_addresses;
    netbase::Ipv4Address addr_lo;
    netbase::Ipv4Address addr_hi;
    /// Hosts whose gateway is this router (usually none or one).
    std::vector<AttachedHost> hosts;
    /// LDP forwarding, fully resolved in CSR form: in-label `l` maps to
    /// pool slice [offsets[l-16], offsets[l-16+1]) — one LabelOp per
    /// ECMP next hop of the FEC's route (empty slice: label unbound, or
    /// FEC without a usable route — resolves to nullopt). Collapses the
    /// FecOfLabel → LookupExact → BindingOf chain of the swap path into
    /// a single indexed load, with all of a router's ops in one
    /// contiguous buffer instead of a vector-of-vectors; valid because
    /// LDP labels are allocated densely from kFirstUnreservedLabel and
    /// the converged tables are immutable.
    std::vector<std::uint32_t> ldp_op_offsets;  ///< size labels+1 (or 0)
    std::vector<LabelOp> ldp_op_pool;
  };

  /// Builds one router's hot-path cache (everything except `hosts`, which
  /// the caller attaches from the topology's host list).
  [[nodiscard]] RouterCache BuildRouterCache(topo::RouterId r) const;

  /// Resolves `label` at `router`, consulting RSVP-TE then LDP tables.
  [[nodiscard]] std::optional<LabelOp> ResolveLabel(
      topo::RouterId router, std::uint32_t label,
      const netbase::Packet& packet) const;

  // The per-packet walk accumulates counters into a caller-local
  // EngineStats (no shared mutation on the hot path); Send flushes it
  // into this thread's shard once per injected packet.
  StepResult ProcessAt(Transit& t, EngineStats& stats) const;
  StepResult ProcessMpls(Transit& t, EngineStats& stats) const;
  StepResult ProcessIp(Transit& t, EngineStats& stats) const;

  /// Replaces `t.packet` with an ICMP error about it, sourced from the
  /// incoming interface, and hands it to routing (possibly along the LSP).
  /// `lsp_op` is the already-resolved label operation of the offending
  /// packet's top label (null when none resolved — plain IP expiry or an
  /// explicit-null top, which no table maps); it drives the
  /// ICMP-along-the-LSP forwarding without a second ResolveLabel.
  StepResult OriginateError(Transit& t, netbase::PacketKind kind,
                            bool quote_labels, EngineStats& stats,
                            const LabelOp* lsp_op = nullptr) const;
  netbase::Packet MakeEchoReply(const Transit& t,
                                netbase::Ipv4Address reply_src,
                                int initial_ttl) const;

  /// Forwards `t.packet` out of `t.router` towards `hop` in place:
  /// accumulates link delay and re-homes `t` at the neighbor. The packet
  /// bytes never move.
  void Forward(Transit& t, const routing::NextHop& hop) const;

  /// Chooses the ECMP next hop for this packet (stable per flow).
  const routing::NextHop& PickNextHop(
      const routing::NextHopSet& hops,
      const netbase::Packet& packet) const;

  /// Pushes a label if the route and LDP tables call for it.
  void MaybeImpose(const RouterCache& rc, const routing::FibEntry& entry,
                   const routing::NextHop& hop, netbase::Packet& packet,
                   EngineStats& stats) const;

  [[nodiscard]] bool IsLocalAddress(topo::RouterId router,
                                    netbase::Ipv4Address address) const;

  // --- batched stepping internals (see SendBatch) -----------------------

  /// Compacts the dead rows out of `batch`'s first `live` SoA rows and
  /// stable-sorts the survivors by current router (batch order within a
  /// router). Returns the new live count.
  std::size_t GroupLiveByRouter(BatchResult& batch, std::size_t live) const;

  /// Runs one generic data-plane step on row `pos` — exactly one
  /// iteration of Send's hop loop — writing a finished outcome to its
  /// slot (and tombstoning the row) or refreshing the row in place.
  void StepBatchRow(BatchResult& batch, std::size_t pos) const;

  /// Shared-decision fast path for rows [begin, end) of one router group
  /// that carry identical forwarding keys: resolves the routing decision
  /// once on the leader and applies it to every member with member-local
  /// TTL/delay arithmetic, byte-identical to StepBatchRow on each.
  /// Returns false (having stepped nothing) when the decision is not of a
  /// shareable kind; the caller then steps the rows generically.
  bool TryStepRunShared(BatchResult& batch, std::size_t begin,
                        std::size_t end) const;

  /// Re-derives row `pos`'s SoA fields (router, interface, TTL, top
  /// label, flags, elapsed, hops) from its transit after a step left it
  /// in flight — the packet is coherent at that point.
  void RefreshBatchRow(BatchResult& batch, std::size_t pos,
                       const Transit& t) const;

  /// Writes row `pos`'s column-resident state (top-of-stack TTL/label,
  /// elapsed time, hop count) back into its arena packet, restoring full
  /// packet coherence before a generic step runs Send's hop loop on it.
  void WriteBackBatchRow(BatchResult& batch, std::size_t pos) const;

  const topo::Topology* topology_;
  const mpls::MplsConfigMap* configs_;
  const std::vector<routing::Fib>* fibs_;
  const mpls::LdpTables* ldp_;
  const mpls::TeDatabase* te_;  ///< may be null
  const mpls::SrDatabase* sr_;  ///< may be null
  EngineOptions options_;
  /// Indexed by RouterId; built once in the constructor.
  std::vector<RouterCache> router_cache_;
  /// See convergence_epoch(). Written only inside the exclusive
  /// convergence phase (RefreshRouters), read freely outside it.
  std::uint64_t convergence_epoch_ = 1;

  // Cache-line-sized stat shards, one per thread slot (threads beyond the
  // shard count share slots, hence the relaxed atomics). stats() merges on
  // read. Concurrency contract: every field is an atomic touched only via
  // fetch_add (CommitStats) and load (stats), so the aggregate needs no
  // GUARDED_BY — there is no capability here, and thread-safety analysis
  // verifies atomics structurally. The semantic lint's const-mutation rule
  // recognizes this shape as its "atomic aggregate" exemption.
  static constexpr std::size_t kStatShards = 32;
  struct alignas(64) StatShard {
    std::atomic<std::uint64_t> packets_injected{0};
    std::atomic<std::uint64_t> hops_processed{0};
    std::atomic<std::uint64_t> icmp_generated{0};
    std::atomic<std::uint64_t> labels_pushed{0};
    std::atomic<std::uint64_t> labels_popped{0};
  };
  mutable std::array<StatShard, kStatShards> stat_shards_;
};

}  // namespace wormhole::sim
