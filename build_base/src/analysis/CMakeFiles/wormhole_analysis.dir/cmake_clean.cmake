file(REMOVE_RECURSE
  "CMakeFiles/wormhole_analysis.dir/campaign_report.cpp.o"
  "CMakeFiles/wormhole_analysis.dir/campaign_report.cpp.o.d"
  "CMakeFiles/wormhole_analysis.dir/correct.cpp.o"
  "CMakeFiles/wormhole_analysis.dir/correct.cpp.o.d"
  "CMakeFiles/wormhole_analysis.dir/metrics.cpp.o"
  "CMakeFiles/wormhole_analysis.dir/metrics.cpp.o.d"
  "CMakeFiles/wormhole_analysis.dir/report.cpp.o"
  "CMakeFiles/wormhole_analysis.dir/report.cpp.o.d"
  "CMakeFiles/wormhole_analysis.dir/tables.cpp.o"
  "CMakeFiles/wormhole_analysis.dir/tables.cpp.o.d"
  "libwormhole_analysis.a"
  "libwormhole_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
