# Empty compiler generated dependencies file for fig07_rfa.
# This may be replaced when dependencies are built.
