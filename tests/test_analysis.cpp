// Unit tests for the analysis module: dataset correction, graph metrics,
// table aggregation and report rendering.
#include <gtest/gtest.h>

#include "analysis/correct.h"
#include "analysis/metrics.h"
#include "analysis/report.h"
#include "analysis/tables.h"
#include "netbase/rng.h"

namespace wormhole::analysis {
namespace {

using netbase::Ipv4Address;
using topo::ItdkDataset;
using topo::NodeId;

ItdkDataset Triangle() {
  ItdkDataset d;
  const NodeId a = d.NodeOf(Ipv4Address(5, 0, 0, 1));
  const NodeId b = d.NodeOf(Ipv4Address(5, 0, 0, 2));
  const NodeId c = d.NodeOf(Ipv4Address(5, 0, 0, 3));
  d.AddLink(a, b);
  d.AddLink(b, c);
  d.AddLink(a, c);
  return d;
}

TEST(Metrics, ClusteringOfTriangleIsOne) {
  const ItdkDataset d = Triangle();
  EXPECT_DOUBLE_EQ(LocalClustering(d, 0), 1.0);
  EXPECT_DOUBLE_EQ(AverageClustering(d), 1.0);
  EXPECT_DOUBLE_EQ(GlobalDensity(d), 1.0);
}

TEST(Metrics, ClusteringOfStarIsZero) {
  ItdkDataset d;
  const NodeId hub = d.NodeOf(Ipv4Address(5, 0, 0, 1));
  for (int i = 2; i <= 5; ++i) {
    d.AddLink(hub, d.NodeOf(Ipv4Address(5, 0, 0, static_cast<uint8_t>(i))));
  }
  EXPECT_DOUBLE_EQ(LocalClustering(d, hub), 0.0);
  EXPECT_DOUBLE_EQ(AverageClustering(d), 0.0);
}

TEST(Metrics, ClusteringDropsWhenMeshDissolves) {
  // A full mesh of 4 "LERs" (the invisible-tunnel artefact) vs the same 4
  // nodes joined through 2 revealed core nodes.
  ItdkDataset mesh;
  std::vector<NodeId> ler;
  for (int i = 1; i <= 4; ++i) {
    ler.push_back(mesh.NodeOf(Ipv4Address(5, 0, 0, static_cast<uint8_t>(i))));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) mesh.AddLink(ler[i], ler[j]);
  }
  ItdkDataset corrected;
  std::vector<NodeId> ler2;
  for (int i = 1; i <= 4; ++i) {
    ler2.push_back(
        corrected.NodeOf(Ipv4Address(5, 0, 0, static_cast<uint8_t>(i))));
  }
  const NodeId core1 = corrected.NodeOf(Ipv4Address(5, 0, 0, 10));
  const NodeId core2 = corrected.NodeOf(Ipv4Address(5, 0, 0, 11));
  corrected.AddLink(core1, core2);
  corrected.AddLink(ler2[0], core1);
  corrected.AddLink(ler2[1], core1);
  corrected.AddLink(ler2[2], core2);
  corrected.AddLink(ler2[3], core2);

  EXPECT_GT(AverageClustering(mesh), AverageClustering(corrected));
  EXPECT_GT(GlobalDensity(mesh), GlobalDensity(corrected));
}

TEST(Metrics, ShortestPathsOnAChain) {
  ItdkDataset d;
  NodeId previous = d.NodeOf(Ipv4Address(5, 0, 0, 1));
  for (int i = 2; i <= 5; ++i) {
    const NodeId node =
        d.NodeOf(Ipv4Address(5, 0, 0, static_cast<uint8_t>(i)));
    d.AddLink(previous, node);
    previous = node;
  }
  const auto lengths = ShortestPathLengths(d, 0);
  EXPECT_EQ(lengths.total(), 4u);  // nodes 2..5
  EXPECT_EQ(lengths.Max(), 4);
  const auto stats = SampledPathStats(d);
  EXPECT_EQ(stats.diameter, 4);
  EXPECT_GT(stats.mean, 1.0);
}

TEST(Metrics, PowerLawAlphaRecoversKnownExponent) {
  // Sample from a (floored) Pareto whose density exponent is 2.5.
  // Flooring biases the head, so fit above the smallest values; the
  // estimate converges towards the true exponent as x_min grows.
  netbase::IntDistribution d;
  netbase::Rng rng(13);
  for (int i = 0; i < 50000; ++i) {
    d.Add(rng.ParetoInt(1.5, 100000));
  }
  EXPECT_NEAR(FitPowerLawAlpha(d, 5), 2.5, 0.25);
  EXPECT_LT(FitPowerLawAlpha(d, 1), FitPowerLawAlpha(d, 5));
}

TEST(Metrics, PowerLawAlphaDegenerateCases) {
  netbase::IntDistribution d;
  EXPECT_DOUBLE_EQ(FitPowerLawAlpha(d, 1), 0.0);
  d.Add(1);
  EXPECT_DOUBLE_EQ(FitPowerLawAlpha(d, 1), 0.0);
  d.Add(5);
  EXPECT_GT(FitPowerLawAlpha(d, 1), 1.0);
  // x_min above every sample: nothing qualifies.
  EXPECT_DOUBLE_EQ(FitPowerLawAlpha(d, 10), 0.0);
}

TEST(Correct, ReplacesFalseLinkWithChain) {
  ItdkDataset d;
  const NodeId ingress = d.NodeOf(Ipv4Address(5, 0, 0, 1));
  const NodeId egress = d.NodeOf(Ipv4Address(5, 0, 0, 2));
  d.AddLink(ingress, egress);

  reveal::RevelationResult revelation;
  revelation.ingress = Ipv4Address(5, 0, 0, 1);
  revelation.egress = Ipv4Address(5, 0, 0, 2);
  revelation.revealed = {Ipv4Address(5, 0, 0, 10),
                         Ipv4Address(5, 0, 0, 11)};
  revelation.method = reveal::RevelationMethod::kDpr;
  std::map<campaign::EndpointPair, reveal::RevelationResult> revelations;
  revelations.emplace(
      campaign::EndpointPair{revelation.ingress, revelation.egress},
      revelation);

  topo::Topology empty_topology;
  const auto identity = [](Ipv4Address a) { return a; };
  const auto stats =
      ApplyRevelations(d, revelations, identity, empty_topology);

  EXPECT_EQ(stats.tunnels_applied, 1u);
  EXPECT_EQ(stats.false_links_removed, 1u);
  EXPECT_EQ(stats.links_added, 3u);
  EXPECT_EQ(stats.addresses_new, 2u);
  EXPECT_FALSE(d.HasLink(ingress, egress));
  const auto h1 = d.FindNode(Ipv4Address(5, 0, 0, 10));
  const auto h2 = d.FindNode(Ipv4Address(5, 0, 0, 11));
  ASSERT_TRUE(h1 && h2);
  EXPECT_TRUE(d.HasLink(ingress, *h1));
  EXPECT_TRUE(d.HasLink(*h1, *h2));
  EXPECT_TRUE(d.HasLink(*h2, egress));
}

TEST(Correct, SkipsFailedRevelationsAndUnknownNodes) {
  ItdkDataset d;
  const NodeId a = d.NodeOf(Ipv4Address(5, 0, 0, 1));
  const NodeId b = d.NodeOf(Ipv4Address(5, 0, 0, 2));
  d.AddLink(a, b);

  std::map<campaign::EndpointPair, reveal::RevelationResult> revelations;
  reveal::RevelationResult failed;
  failed.ingress = Ipv4Address(5, 0, 0, 1);
  failed.egress = Ipv4Address(5, 0, 0, 2);
  failed.method = reveal::RevelationMethod::kNone;
  revelations.emplace(campaign::EndpointPair{failed.ingress, failed.egress},
                      failed);
  reveal::RevelationResult unknown;
  unknown.ingress = Ipv4Address(9, 0, 0, 1);  // not in the dataset
  unknown.egress = Ipv4Address(9, 0, 0, 2);
  unknown.revealed = {Ipv4Address(9, 0, 0, 3)};
  unknown.method = reveal::RevelationMethod::kEither;
  revelations.emplace(
      campaign::EndpointPair{unknown.ingress, unknown.egress}, unknown);

  topo::Topology empty_topology;
  const auto identity = [](Ipv4Address x) { return x; };
  const auto stats =
      ApplyRevelations(d, revelations, identity, empty_topology);
  EXPECT_EQ(stats.tunnels_applied, 0u);
  EXPECT_TRUE(d.HasLink(a, b));
}

TEST(Correct, IdempotentOnRepeatedApplication) {
  ItdkDataset d;
  d.AddLink(d.NodeOf(Ipv4Address(5, 0, 0, 1)),
            d.NodeOf(Ipv4Address(5, 0, 0, 2)));
  reveal::RevelationResult revelation;
  revelation.ingress = Ipv4Address(5, 0, 0, 1);
  revelation.egress = Ipv4Address(5, 0, 0, 2);
  revelation.revealed = {Ipv4Address(5, 0, 0, 10)};
  revelation.method = reveal::RevelationMethod::kEither;
  std::map<campaign::EndpointPair, reveal::RevelationResult> revelations;
  revelations.emplace(
      campaign::EndpointPair{revelation.ingress, revelation.egress},
      revelation);
  topo::Topology empty_topology;
  const auto identity = [](Ipv4Address x) { return x; };
  ApplyRevelations(d, revelations, identity, empty_topology);
  const std::size_t links = d.link_count();
  ApplyRevelations(d, revelations, identity, empty_topology);
  EXPECT_EQ(d.link_count(), links);
}

TEST(Report, TextTableAlignsColumns) {
  TextTable table({"a", "long-header", "c"});
  table.AddRow({"1", "2", "3"});
  table.AddRow({"wide-cell", "x"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  // Three lines of content: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Report, CellHelpers) {
  EXPECT_EQ(TextTable::Num(std::size_t{42}), "42");
  EXPECT_EQ(TextTable::Pct(12.345, 1), "12.3");
  EXPECT_EQ(TextTable::Real(0.5, 3), "0.500");
  EXPECT_EQ(TextTable::Opt(std::nullopt), "-");
  EXPECT_EQ(TextTable::Opt(7), "7");
}

TEST(Report, RenderPdfFoldsTailsIntoEnds) {
  netbase::IntDistribution d;
  d.Add(-10, 2);
  d.Add(0, 6);
  d.Add(10, 2);
  const std::string out = RenderPdf(d, -2, 2, "test");
  // The -10 mass folds into the -2 row and the +10 mass into +2.
  EXPECT_NE(out.find("0.2000"), std::string::npos);
  EXPECT_NE(out.find("0.6000"), std::string::npos);
}

TEST(Report, RenderPdfComparisonListsAllSeries) {
  netbase::IntDistribution a;
  a.Add(1);
  netbase::IntDistribution b;
  b.Add(2);
  const std::string out =
      RenderPdfComparison({{"first", &a}, {"second", &b}}, 1, 2);
  EXPECT_NE(out.find("first"), std::string::npos);
  EXPECT_NE(out.find("second"), std::string::npos);
}

}  // namespace
}  // namespace wormhole::analysis
