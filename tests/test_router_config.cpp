// The configuration emitter must render exactly the knobs each scenario
// sets — it documents what the simulated behaviours mean on real hardware.
#include <gtest/gtest.h>

#include "gen/gns3.h"
#include "gen/router_config.h"

namespace wormhole::gen {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

class RouterConfigTest : public ::testing::Test {
 protected:
  std::string ConfigOf(Gns3Scenario scenario, const char* router,
                       topo::Vendor vendor = topo::Vendor::kCiscoIos) {
    Gns3Testbed testbed({.scenario = scenario, .as2_vendor = vendor});
    const auto rid = *testbed.topology().FindRouterByName(router);
    if (vendor == topo::Vendor::kJuniperJunos) {
      return JunosStyleConfig(testbed.topology(), testbed.configs(), rid);
    }
    return CiscoStyleConfig(testbed.topology(), testbed.configs(), rid);
  }
};

TEST_F(RouterConfigTest, DefaultScenarioHasNoHidingKnobs) {
  const std::string config = ConfigOf(Gns3Scenario::kDefault, "PE1");
  EXPECT_TRUE(Contains(config, "hostname PE1"));
  EXPECT_TRUE(Contains(config, "mpls ip"));
  EXPECT_FALSE(Contains(config, "no mpls ip propagate-ttl"));
  EXPECT_FALSE(Contains(config, "host-routes"));
  EXPECT_FALSE(Contains(config, "explicit-null"));
}

TEST_F(RouterConfigTest, BackwardRecursiveDisablesTtlPropagation) {
  const std::string config =
      ConfigOf(Gns3Scenario::kBackwardRecursive, "PE1");
  EXPECT_TRUE(Contains(config, "no mpls ip propagate-ttl"));
  EXPECT_FALSE(Contains(config, "host-routes"));
}

TEST_F(RouterConfigTest, ExplicitRouteFiltersToHostRoutes) {
  const std::string config = ConfigOf(Gns3Scenario::kExplicitRoute, "P2");
  EXPECT_TRUE(
      Contains(config, "mpls ldp label allocate global host-routes"));
  EXPECT_TRUE(Contains(config, "no mpls ip propagate-ttl"));
}

TEST_F(RouterConfigTest, TotallyInvisibleEnablesExplicitNull) {
  const std::string config =
      ConfigOf(Gns3Scenario::kTotallyInvisible, "PE2");
  EXPECT_TRUE(Contains(config, "mpls ldp explicit-null"));
  EXPECT_TRUE(Contains(config, "no mpls ip propagate-ttl"));
}

TEST_F(RouterConfigTest, NonMplsRouterHasNoMplsCommands) {
  const std::string config = ConfigOf(Gns3Scenario::kDefault, "CE1");
  EXPECT_TRUE(Contains(config, "hostname CE1"));
  EXPECT_FALSE(Contains(config, "mpls"));
  EXPECT_TRUE(Contains(config, "router ospf 1"));
}

TEST_F(RouterConfigTest, BorderRoutersSpeakBgp) {
  const std::string pe1 = ConfigOf(Gns3Scenario::kDefault, "PE1");
  EXPECT_TRUE(Contains(pe1, "router bgp 2"));
  EXPECT_TRUE(Contains(pe1, "remote-as 1"));
  const std::string p2 = ConfigOf(Gns3Scenario::kDefault, "P2");
  EXPECT_FALSE(Contains(p2, "router bgp"));
}

TEST_F(RouterConfigTest, EbgpInterfacesStayOutOfIgpAndMpls) {
  Gns3Testbed testbed({.scenario = Gns3Scenario::kDefault});
  const auto pe2 = *testbed.topology().FindRouterByName("PE2");
  const std::string config =
      CiscoStyleConfig(testbed.topology(), testbed.configs(), pe2);
  // PE2's interface towards CE2 (inter-AS) must not carry "mpls ip"; its
  // internal one (towards P3) must.
  const auto left = config.find("description PE2.left");
  const auto right = config.find("description PE2.right");
  ASSERT_NE(left, std::string::npos);
  ASSERT_NE(right, std::string::npos);
  const std::string left_block = config.substr(left, 120);
  const std::string right_block = config.substr(right, 120);
  EXPECT_TRUE(Contains(left_block, "mpls ip"));
  EXPECT_FALSE(Contains(right_block, "mpls ip"));
}

TEST_F(RouterConfigTest, JunosSyntaxForJuniperTestbed) {
  const std::string config = ConfigOf(Gns3Scenario::kBackwardRecursive,
                                      "P1", topo::Vendor::kJuniperJunos);
  EXPECT_TRUE(Contains(config, "set system host-name P1"));
  EXPECT_TRUE(Contains(config, "set protocols mpls no-propagate-ttl"));
  // Backward-recursive forces all-prefix advertisement, which on Junos
  // needs an egress policy.
  EXPECT_TRUE(Contains(config, "egress-policy advertise-all-igp"));
}

TEST_F(RouterConfigTest, TestbedConfigsCoverEveryRouter) {
  Gns3Testbed testbed({.scenario = Gns3Scenario::kDefault});
  const std::string all =
      TestbedConfigs(testbed.topology(), testbed.configs());
  for (const char* name : {"CE1", "PE1", "P1", "P2", "P3", "PE2", "CE2"}) {
    EXPECT_TRUE(Contains(all, std::string("=== ") + name)) << name;
  }
}

}  // namespace
}  // namespace wormhole::gen
