file(REMOVE_RECURSE
  "CMakeFiles/wormhole_campaign.dir/campaign.cpp.o"
  "CMakeFiles/wormhole_campaign.dir/campaign.cpp.o.d"
  "CMakeFiles/wormhole_campaign.dir/crossval.cpp.o"
  "CMakeFiles/wormhole_campaign.dir/crossval.cpp.o.d"
  "CMakeFiles/wormhole_campaign.dir/dataset.cpp.o"
  "CMakeFiles/wormhole_campaign.dir/dataset.cpp.o.d"
  "CMakeFiles/wormhole_campaign.dir/targets.cpp.o"
  "CMakeFiles/wormhole_campaign.dir/targets.cpp.o.d"
  "libwormhole_campaign.a"
  "libwormhole_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
