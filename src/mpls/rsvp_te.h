// RSVP-TE (RFC 3209) in converged form: operator-pinned explicit-route
// LSPs. Unlike LDP tunnels (congruent with the IGP), a TE tunnel follows
// its ERO — which may diverge from the shortest path — and the ingress
// steers selected prefixes into it. The paper's survey: 42% of operators
// run RSVP-TE alongside LDP; UHP is "generally used only when the operator
// implements sophisticated traffic engineering".
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mpls/config.h"
#include "netbase/ipv4.h"
#include "netbase/label.h"
#include "topo/topology.h"

namespace wormhole::mpls {

/// TE labels live far above the LDP allocation range so the two label
/// spaces can never collide on a router.
constexpr std::uint32_t kTeLabelBase = 100000;

struct TeTunnelSpec {
  /// Full router path, ingress first, egress last; consecutive routers
  /// must be physically adjacent.
  std::vector<topo::RouterId> path;
  Popping popping = Popping::kPhp;
  /// Prefixes the ingress steers into the tunnel.
  std::vector<netbase::Prefix> steered_prefixes;
};

/// What a router does with a TE in-label / with steered traffic.
struct TeLabelOp {
  topo::LinkId link = topo::kNoLink;
  topo::RouterId next = topo::kNoRouter;
  enum class Kind : std::uint8_t {
    kSwap,              ///< swap to out_label
    kPop,               ///< PHP pop (min rule applies)
    kSwapExplicitNull,  ///< UHP: swap to explicit-null for the egress
  } kind = Kind::kSwap;
  std::uint32_t out_label = 0;
};

struct TeSteering {
  netbase::Prefix prefix;
  topo::LinkId link = topo::kNoLink;
  topo::RouterId next = topo::kNoRouter;
  /// First label of the tunnel; 0 means the tunnel is one hop (pop-at-push:
  /// traffic goes unlabelled straight to the egress).
  std::uint32_t label = 0;
  bool labeled = true;
};

/// The converged TE forwarding state of a topology.
class TeDatabase {
 public:
  TeDatabase() = default;

  /// Validates the ERO (adjacency, length >= 2, single AS) and installs
  /// the tunnel's label forwarding entries. Returns the tunnel id.
  /// Throws std::invalid_argument on a bad spec.
  std::size_t AddTunnel(const topo::Topology& topology,
                        const TeTunnelSpec& spec);

  /// The label operation for `label` at `router`; nullopt if unknown.
  [[nodiscard]] std::optional<TeLabelOp> OpFor(topo::RouterId router,
                                               std::uint32_t label) const;

  /// The steering entry at `router` covering `dst` (most specific wins);
  /// nullptr when no tunnel captures it.
  [[nodiscard]] const TeSteering* SteeringFor(topo::RouterId router,
                                              netbase::Ipv4Address dst) const;

  [[nodiscard]] std::size_t tunnel_count() const { return tunnels_; }
  [[nodiscard]] bool empty() const { return tunnels_ == 0; }

 private:
  std::size_t tunnels_ = 0;
  std::uint32_t next_label_ = kTeLabelBase;
  std::unordered_map<topo::RouterId,
                     std::unordered_map<std::uint32_t, TeLabelOp>>
      label_ops_;
  std::unordered_map<topo::RouterId, std::vector<TeSteering>> steering_;
};

}  // namespace wormhole::mpls
