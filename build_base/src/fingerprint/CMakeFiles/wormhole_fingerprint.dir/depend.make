# Empty dependencies file for wormhole_fingerprint.
# This may be replaced when dependencies are built.
