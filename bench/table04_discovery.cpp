// Table 4: invisible MPLS tunnel discovery per AS of interest — HDNs,
// candidate Ingress-Egress pairs, revelation rate, revealed LSPs/addresses,
// and the graph-density correction.
#include <iostream>

#include "analysis/correct.h"
#include "analysis/report.h"
#include "analysis/tables.h"
#include "bench/common.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader("Invisible MPLS tunnel discovery per AS", "Table 4");

  const auto world = bench::RunFlagshipCampaign();
  const auto& result = world.result;

  const auto corrected = analysis::CorrectedCopy(
      result.inferred, result.revelations,
      campaign::TruthResolver(world.net->topology()),
      world.net->topology());
  const auto rows = analysis::MakeDiscoveryTable(result, corrected,
                                                 world.net->topology(), 8);

  analysis::TextTable table({"AS", "HDNs", "HDN cand", "I-E pairs", "%Rev.",
                             "Raw LSPs", "#IPs LSRs", "%IPs LERs",
                             "Dens before", "Dens after", "ground truth"});
  for (const auto& row : rows) {
    const auto& profile = world.net->profile(row.asn);
    std::string truth = profile.mpls
                            ? (profile.invisible_tunnels()
                                   ? (profile.popping == mpls::Popping::kUhp
                                          ? "invisible (UHP)"
                                          : "invisible (PHP)")
                                   : "visible MPLS")
                            : "no MPLS";
    table.AddRow({"AS" + std::to_string(row.asn),
                  analysis::TextTable::Num(row.hdns_itdk),
                  analysis::TextTable::Num(row.hdns_candidate),
                  analysis::TextTable::Num(row.ie_pairs),
                  analysis::TextTable::Pct(row.pct_revealed),
                  analysis::TextTable::Num(row.raw_lsps),
                  analysis::TextTable::Num(row.lsr_ips),
                  analysis::TextTable::Pct(row.pct_ips_lers),
                  analysis::TextTable::Real(row.density_before),
                  analysis::TextTable::Real(row.density_after), truth});
  }
  std::cout << table.ToString();

  if (!result.uhp_suspicions.empty()) {
    std::cout << "\nUHP (duplicate-hop) suspicions — totally invisible "
                 "clouds the revelation techniques cannot open:\n";
    for (const auto& [asn, count] : result.uhp_suspicions) {
      const auto& profile = world.net->profile(asn);
      std::cout << "  AS" << asn << ": " << count << " traces  (truth: "
                << (profile.popping == mpls::Popping::kUhp ? "UHP"
                                                           : "not UHP")
                << ")\n";
    }
  }
  std::cout << "\ncampaign: " << result.probes_sent << " probes, "
            << result.traces.size() << " targeted traces, "
            << result.revelations.size() << " candidate pairs, "
            << result.revealed_count() << " revealed.\n";
  std::cout << "at the paper's probing rate (25 pkt/s per VP set) this "
               "campaign would take ~"
            << analysis::TextTable::Real(
                   static_cast<double>(result.probes_sent) / 25.0 / 60.0 /
                       static_cast<double>(
                           world.net->vantage_points().size()),
                   1)
            << " minutes of wall clock.\n";
  std::cout << "shape: invisible-PHP ASes reveal at high rate and their "
               "candidate-LER density drops sharply after correction "
               "(paper: e.g. Deutsche Telekom 0.108 -> 0.013); UHP or "
               "visible ASes reveal ~nothing.\n";
  return 0;
}
