// Performance micro-benchmarks (google-benchmark): control-plane
// convergence, data-plane forwarding throughput, probing and revelation
// speed. These are not paper results — they document that the simulator
// scales to campaign sizes.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "campaign/campaign.h"
#include "campaign/trace_cache.h"
#include "gen/gns3.h"
#include "gen/internet.h"
#include "mpls/ldp.h"
#include "netbase/label.h"
#include "netbase/packet.h"
#include "probe/prober.h"
#include "reveal/revelator.h"
#include "routing/as_path.h"
#include "routing/delta.h"
#include "routing/fib.h"
#include "routing/igp.h"
#include "routing/spf_engine.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace {

using namespace wormhole;

const gen::SyntheticInternet& SharedNet() {
  static gen::SyntheticInternet* net =
      new gen::SyntheticInternet({.seed = 42});
  return *net;
}

void BM_SpfSingleSource(benchmark::State& state) {
  const auto& net = SharedNet();
  // The largest AS.
  topo::AsNumber biggest = 0;
  std::size_t best = 0;
  for (const auto asn : net.topology().AsNumbers()) {
    if (net.topology().as(asn).routers.size() > best) {
      best = net.topology().as(asn).routers.size();
      biggest = asn;
    }
  }
  const auto source = net.topology().as(biggest).routers.front();
  // A persistent engine so each iteration pays for one Dijkstra, not for
  // re-snapshotting the whole topology's adjacency.
  routing::SpfEngine engine(net.topology());
  const std::vector<topo::RouterId> only_source{source};
  for (auto _ : state) {
    engine.InvalidateTrees(only_source);
    benchmark::DoNotOptimize(&engine.TreeOf(source));
  }
  state.counters["routers_in_as"] = static_cast<double>(best);
}
BENCHMARK(BM_SpfSingleSource);

/// Pre-built worlds per size class so the convergence benchmarks measure
/// the control-plane build alone, not topology generation.
gen::SyntheticInternet& WorldOfSize(int size) {
  static auto* worlds =
      new std::map<int, std::unique_ptr<gen::SyntheticInternet>>();
  std::unique_ptr<gen::SyntheticInternet>& slot = (*worlds)[size];
  if (!slot) {
    gen::InternetOptions options;
    options.seed = 42;
    switch (size) {
      case 0:
        options.transit_count = 4;
        options.stub_count = 10;
        break;
      case 2:
        options.transit_count = 20;
        options.stub_count = 72;
        break;
      default:
        break;  // size 1: the stock world
    }
    slot = std::make_unique<gen::SyntheticInternet>(options);
  }
  return *slot;
}

void BM_FullControlPlaneConvergence(benchmark::State& state) {
  // Args: (topology size class, convergence jobs). Compare rows at fixed
  // size for the thread-scaling curve; the converged state is identical
  // on every row (tests/test_convergence_parity.cpp).
  gen::SyntheticInternet& world =
      WorldOfSize(static_cast<int>(state.range(0)));
  const auto jobs = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    sim::Network net(world.topology(), world.configs(), world.bgp_policy(),
                     {}, nullptr, nullptr, jobs);
    benchmark::DoNotOptimize(net.fibs().size());
  }
  state.counters["routers"] =
      static_cast<double>(world.topology().router_count());
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_FullControlPlaneConvergence)
    ->ArgNames({"size", "jobs"})
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalReconvergence(benchmark::State& state) {
  // Flap one core link of the largest MPLS-enabled AS (down + up per
  // iteration) through Network::OnLinkStateChange — the steady-state cost
  // of tracking a link-state change without a full rebuild.
  gen::SyntheticInternet& world = WorldOfSize(1);
  topo::Topology& topology = world.mutable_topology();
  topo::LinkId flapped = topo::kNoLink;
  std::size_t best = 0;
  for (topo::LinkId l = 0; l < topology.link_count(); ++l) {
    if (!topology.IsInternalLink(l)) continue;
    const topo::AsNumber asn =
        topology.router(topology.interface(topology.link(l).a).router).asn;
    const std::size_t members = topology.as(asn).routers.size();
    if (world.profile(asn).mpls && members > best) {
      best = members;
      flapped = l;
    }
  }
  sim::Network net(topology, world.configs(), world.bgp_policy(), {},
                   nullptr, nullptr, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    topology.SetLinkUp(flapped, false);
    net.OnLinkStateChange(flapped);
    topology.SetLinkUp(flapped, true);
    net.OnLinkStateChange(flapped);
  }
  state.counters["as_routers"] = static_cast<double>(best);
  state.counters["jobs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_IncrementalReconvergence)
    ->ArgNames({"jobs"})
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_LdpDomainBuild(benchmark::State& state) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  for (auto _ : state) {
    mpls::LdpTables tables(testbed.topology(), testbed.configs(),
                           testbed.network().fibs());
    benchmark::DoNotOptimize(tables.DomainOf(2));
  }
}
BENCHMARK(BM_LdpDomainBuild);

void BM_FibLookup(benchmark::State& state) {
  // A representative mid-size table: one default route, a spread of /16
  // and /24 aggregates and a band of /32 host routes (loopbacks), like a
  // transit router's FIB in the synthetic Internet. The Arg selects the
  // matched prefix length: 32 (host-route hit), 24 (aggregate hit) or 0
  // (nothing more specific — the lookup walks every populated length and
  // lands on the default route).
  routing::Fib fib;
  routing::FibEntry e;
  e.prefix = *netbase::Prefix::Parse("0.0.0.0/0");
  fib.AddRoute(e);
  for (std::uint32_t i = 0; i < 64; ++i) {
    e.prefix = netbase::Prefix(netbase::Ipv4Address((10u << 24) | (i << 16)),
                               16);
    fib.AddRoute(e);
    e.prefix = netbase::Prefix(
        netbase::Ipv4Address((20u << 24) | (i << 8)), 24);
    fib.AddRoute(e);
    e.prefix = netbase::Prefix(netbase::Ipv4Address((30u << 24) | i), 32);
    fib.AddRoute(e);
  }
  fib.Seal();
  netbase::Ipv4Address target;
  switch (state.range(0)) {
    case 32: target = netbase::Ipv4Address((30u << 24) | 17); break;
    case 24:
      target = netbase::Ipv4Address((20u << 24) | (17u << 8) | 5);
      break;
    default: target = netbase::Ipv4Address(99u << 24); break;  // default route
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fib.Lookup(target));
  }
  state.counters["routes"] = static_cast<double>(fib.size());
}
BENCHMARK(BM_FibLookup)->Arg(32)->Arg(24)->Arg(0);

void BM_LabelStackPushPop(benchmark::State& state) {
  // The per-hop stack discipline at inline depth: imposition of a full
  // 4-deep SID list followed by the pops along the path. Zero-allocation
  // by construction (tests/test_fastpath.cpp asserts it); this measures
  // the residual cost.
  for (auto _ : state) {
    netbase::LabelStack stack;
    for (std::uint32_t i = 0; i < netbase::kInlineLabelStackDepth; ++i) {
      netbase::LabelStackEntry lse;
      lse.label = 16 + i;
      lse.ttl = 255;
      stack.push_back(lse);
    }
    while (!stack.empty()) stack.pop_back();
    benchmark::DoNotOptimize(stack);
  }
}
BENCHMARK(BM_LabelStackPushPop);

void BM_MplsSwapPath(benchmark::State& state) {
  // One ping straight through the BRPR tunnel: imposition at PE1, swaps
  // across P1..P3, PHP pop, delivery, and the reply's return LSP. This is
  // the steady-state per-packet cost of the MPLS data plane, without the
  // traceroute TTL sweep around it.
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kBackwardRecursive});
  const sim::Engine& engine = testbed.engine();
  netbase::Packet probe;
  probe.kind = netbase::PacketKind::kEchoRequest;
  probe.src = testbed.vantage_point();
  probe.dst = testbed.Address("CE2.left");
  probe.ip_ttl = 64;
  std::uint32_t id = 0;
  for (auto _ : state) {
    probe.probe_id = ++id;
    benchmark::DoNotOptimize(engine.Send(probe));
  }
  state.counters["packets/s"] =
      benchmark::Counter(static_cast<double>(id), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MplsSwapPath);

void BM_TracerouteThroughTunnel(benchmark::State& state) {
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kBackwardRecursive});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto target = testbed.Address("CE2.left");
  for (auto _ : state) {
    benchmark::DoNotOptimize(prober.Traceroute(target));
  }
  state.counters["probes/s"] = benchmark::Counter(
      static_cast<double>(prober.probes_sent()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TracerouteThroughTunnel);

void BM_SequentialTraceroute(benchmark::State& state) {
  // The one-probe-at-a-time tracer on the same worlds and target rotation
  // as BM_BatchedTraceroute — the apples-to-apples denominator for the
  // batched speedup (BM_TracerouteThroughTunnel runs on the tiny L1-warm
  // testbed, which understates what batching buys on a real topology).
  gen::SyntheticInternet& world =
      WorldOfSize(static_cast<int>(state.range(0)));
  probe::Prober prober(world.engine(), world.vantage_points().front());
  const auto loopbacks = world.AllLoopbacks();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prober.Traceroute(loopbacks[i % loopbacks.size()]));
    ++i;
  }
  state.counters["routers"] =
      static_cast<double>(world.topology().router_count());
  state.counters["probes/s"] = benchmark::Counter(
      static_cast<double>(prober.probes_sent()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialTraceroute)
    ->ArgNames({"size"})
    ->ArgsProduct({{0, 1, 2}});

void BM_BatchedTraceroute(benchmark::State& state) {
  // The batched tracer across real worlds. Args: (world size class,
  // batch window — 0 sweeps the whole remaining TTL range per batch).
  // Compare probes/s against BM_TracerouteThroughTunnel for the batched
  // speedup; the traces themselves are byte-identical to the sequential
  // tracer (tests/test_batch_parity.cpp).
  gen::SyntheticInternet& world =
      WorldOfSize(static_cast<int>(state.range(0)));
  probe::Prober prober(world.engine(), world.vantage_points().front());
  const auto loopbacks = world.AllLoopbacks();
  probe::TraceOptions options;
  options.batched = true;
  options.batch_window = static_cast<int>(state.range(1));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prober.Traceroute(loopbacks[i % loopbacks.size()], options));
    ++i;
  }
  state.counters["routers"] =
      static_cast<double>(world.topology().router_count());
  state.counters["probes/s"] = benchmark::Counter(
      static_cast<double>(prober.probes_sent()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchedTraceroute)
    ->ArgNames({"size", "window"})
    ->ArgsProduct({{0, 1, 2}, {0, 4, 8}});

void BM_SendBatchVsSend(benchmark::State& state) {
  // The raw engine-entry-point comparison on identical work: one
  // traceroute-shaped TTL fan (40 probes, TTL 1..40) through the BRPR
  // tunnel per iteration, probe ids preassigned so both paths replay the
  // same stochastic draws. Arg 0 steps the fan with sequential Send
  // calls, Arg 1 with one SendBatch; outcome equality is pinned by
  // tests/test_batch_parity.cpp, so the rows differ only in speed.
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kBackwardRecursive});
  const sim::Engine& engine = testbed.engine();
  const auto target = testbed.Address("CE2.left");
  constexpr int kFan = 40;
  const bool batched = state.range(0) != 0;
  std::vector<netbase::Packet> fan;
  sim::Engine::BatchResult batch;
  std::uint32_t id = 0;
  std::uint64_t probes = 0;
  for (auto _ : state) {
    fan.clear();
    for (int ttl = 1; ttl <= kFan; ++ttl) {
      netbase::Packet probe;
      probe.kind = netbase::PacketKind::kEchoRequest;
      probe.src = testbed.vantage_point();
      probe.dst = target;
      probe.ip_ttl = ttl;
      probe.probe_id = ++id;
      fan.push_back(probe);
    }
    if (batched) {
      engine.SendBatch(fan, batch);
      benchmark::DoNotOptimize(batch.outcomes.data());
    } else {
      for (netbase::Packet& probe : fan) {
        benchmark::DoNotOptimize(engine.Send(probe));
      }
    }
    probes += kFan;
  }
  state.counters["probes/s"] = benchmark::Counter(
      static_cast<double>(probes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SendBatchVsSend)
    ->ArgNames({"batched"})
    ->Arg(0)
    ->Arg(1);

void BM_PingAcrossInternet(benchmark::State& state) {
  auto& net = const_cast<gen::SyntheticInternet&>(SharedNet());
  probe::Prober prober(net.engine(), net.vantage_points().front());
  const auto loopbacks = net.AllLoopbacks();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prober.Ping(loopbacks[i % loopbacks.size()]));
    ++i;
  }
}
BENCHMARK(BM_PingAcrossInternet);

void BM_TunnelRevelation(benchmark::State& state) {
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kBackwardRecursive});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto x = testbed.Address("PE1.left");
  const auto y = testbed.Address("PE2.left");
  for (auto _ : state) {
    reveal::Revelator revelator(prober);
    benchmark::DoNotOptimize(revelator.Reveal(x, y));
  }
}
BENCHMARK(BM_TunnelRevelation);

void BM_FullCampaign(benchmark::State& state) {
  for (auto _ : state) {
    gen::SyntheticInternet net({.seed = 42,
                                .transit_count = 4,
                                .stub_count = 10,
                                .vp_count = 4});
    campaign::Campaign campaign(net.engine(), net.vantage_points(), {});
    benchmark::DoNotOptimize(campaign.Run(net.AllLoopbacks()));
  }
}
BENCHMARK(BM_FullCampaign)->Unit(benchmark::kMillisecond);

void BM_CampaignParallelScaling(benchmark::State& state) {
  // One fixed synthetic Internet (built once, shared across thread
  // counts), 8 vantage points so every jobs level up to 8 has a full
  // shard to chew on. Compare the per-iteration times across the
  // jobs=1/2/4/8 rows for the end-to-end campaign speedup; the campaign
  // result itself is identical for every row.
  static gen::SyntheticInternet* net =
      new gen::SyntheticInternet({.seed = 42,
                                  .transit_count = 6,
                                  .stub_count = 16,
                                  .vp_count = 8});
  const auto loopbacks = net->AllLoopbacks();
  campaign::CampaignOptions options;
  options.jobs = static_cast<std::size_t>(state.range(0));
  std::uint64_t probes = 0;
  for (auto _ : state) {
    campaign::Campaign campaign(net->engine(), net->vantage_points(),
                                options);
    const auto result = campaign.Run(loopbacks);
    benchmark::DoNotOptimize(result.revelations.size());
    probes += result.probes_sent;
  }
  state.counters["jobs"] = static_cast<double>(options.jobs);
  state.counters["probes/s"] = benchmark::Counter(
      static_cast<double>(probes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignParallelScaling)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/// Process peak RSS in MB (Linux ru_maxrss is KB, macOS bytes). Monotone
/// over the process lifetime — meaningful as a per-row number only when
/// the row runs in its own process (--benchmark_filter, as the CI
/// ceiling check does) or when rows run smallest-world-first, which is
/// how BM_CampaignScaling registers them.
double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

/// Hierarchical (internet-at-scale) worlds for the streaming-campaign
/// scaling curve, built once per size class. Size 2 is the ~90k-router
/// world — minutes of campaign per iteration, so it only registers when
/// WORMHOLE_BENCH_HUGE is set (see RegisterHugeCampaignScaling).
gen::SyntheticInternet& ScalingWorldOfSize(int size) {
  static auto* worlds =
      new std::map<int, std::unique_ptr<gen::SyntheticInternet>>();
  std::unique_ptr<gen::SyntheticInternet>& slot = (*worlds)[size];
  if (!slot) {
    gen::InternetOptions options;
    options.seed = 42;
    options.hierarchical = true;
    options.vp_count = 4;
    switch (size) {
      case 0:  // ~600 routers
        options.tier1_count = 2;
        options.transit_count = 6;
        options.stub_count = 60;
        break;
      case 1:  // ~9k routers
        options.tier1_count = 2;
        options.transit_count = 40;
        options.transit_routers = 32;
        options.stub_count = 2400;
        break;
      default:  // ~90k routers
        options.tier1_count = 3;
        options.tier1_routers = 150;
        options.transit_count = 300;
        options.transit_routers = 40;
        options.stub_count = 25000;
        break;
    }
    slot = std::make_unique<gen::SyntheticInternet>(options);
  }
  return *slot;
}

void BM_CampaignScaling(benchmark::State& state) {
  // The streaming-campaign scaling surface. Args: (world size class,
  // discovery-target cap — 0 probes every loopback, stride-sampled
  // otherwise — and stream shard size — 0 is the buffered pipeline).
  // Compare shard=0 to shard>0 rows at fixed size/targets: same bytes
  // out (tests/test_streaming_campaign.cpp), the peak_rss_mb counter is
  // the difference. The targeted phase uses the paper's disjoint VP
  // shards (shard_targets) so target volume scales the work, not the
  // VP count.
  gen::SyntheticInternet& world =
      ScalingWorldOfSize(static_cast<int>(state.range(0)));
  const auto all = world.AllLoopbacks();
  std::vector<netbase::Ipv4Address> targets;
  const auto cap = static_cast<std::size_t>(state.range(1));
  if (cap == 0 || cap >= all.size()) {
    targets = all;
  } else {
    const std::size_t stride = all.size() / cap;
    for (std::size_t i = 0; i < all.size() && targets.size() < cap;
         i += stride) {
      targets.push_back(all[i]);
    }
  }
  campaign::CampaignOptions options;
  options.jobs = 1;
  options.shard_targets = true;
  options.stream_shard_size = static_cast<std::size_t>(state.range(2));
  std::uint64_t probes = 0;
  std::uint64_t traces = 0;
  for (auto _ : state) {
    campaign::Campaign campaign(world.engine(), world.vantage_points(),
                                options);
    const auto result = campaign.Run(targets);
    probes += result.probes_sent;
    traces += result.trace_count;
    benchmark::DoNotOptimize(result.revelations.size());
  }
  state.counters["routers"] =
      static_cast<double>(world.topology().router_count());
  state.counters["targets"] = static_cast<double>(targets.size());
  state.counters["traces"] =
      static_cast<double>(traces) /
      static_cast<double>(state.iterations());
  state.counters["probes/s"] = benchmark::Counter(
      static_cast<double>(probes), benchmark::Counter::kIsRate);
  state.counters["peak_rss_mb"] = PeakRssMb();
}
BENCHMARK(BM_CampaignScaling)
    ->ArgNames({"size", "targets", "shard"})
    ->ArgsProduct({{0, 1}, {2048, 0}, {0, 64}})
    ->Unit(benchmark::kMillisecond);

/// The flap target for BM_DeltaReprobe: an internal link of an
/// MPLS-enabled transit AS — churn inside a carrier, the paper's setting
/// and the case delta re-probing is built for (a stub flap would be
/// trivially cheap, a tier-1 flap dirties most pairs). Transits that
/// peer with a vantage point's stub AS are skipped: every forward path
/// from that VP crosses its provider, so flapping it dirties ~all of the
/// VP's pairs — that is the full-rerun regime BM_CampaignScaling already
/// measures, not the steady-state "churn in a distant carrier" this
/// benchmark models.
topo::LinkId PickTransitFlapLink(const gen::SyntheticInternet& world) {
  const topo::Topology& topology = world.topology();
  std::set<topo::AsNumber> vp_ases;
  for (const netbase::Ipv4Address vp : world.vantage_points()) {
    if (const topo::Host* host = topology.FindHost(vp)) {
      vp_ases.insert(topology.router(host->gateway).asn);
    }
  }
  std::set<topo::AsNumber> vp_adjacent;
  for (topo::LinkId l = 0; l < topology.link_count(); ++l) {
    if (topology.IsInternalLink(l)) continue;
    const topo::AsNumber a =
        topology.router(topology.interface(topology.link(l).a).router).asn;
    const topo::AsNumber b =
        topology.router(topology.interface(topology.link(l).b).router).asn;
    if (vp_ases.contains(a)) vp_adjacent.insert(b);
    if (vp_ases.contains(b)) vp_adjacent.insert(a);
  }
  for (topo::LinkId l = 0; l < topology.link_count(); ++l) {
    if (!topology.IsInternalLink(l)) continue;
    const topo::AsNumber asn =
        topology.router(topology.interface(topology.link(l).a).router).asn;
    const gen::AsProfile& profile = world.profile(asn);
    if (profile.role == gen::AsRole::kTransit && profile.mpls &&
        !vp_adjacent.contains(asn)) {
      return l;
    }
  }
  return topo::kNoLink;
}

void BM_DeltaReprobe(benchmark::State& state) {
  // Flap-to-fresh-report latency (docs/incremental.md). Args: (world
  // size class, delta). Each iteration flaps one transit-internal link
  // down and back up; after every flap the campaign report is brought
  // back up to date. delta=0 re-runs the full streaming campaign (the
  // baseline, matching BM_CampaignScaling's shard=64 configuration);
  // delta=1 invalidates an epoch-versioned TraceCache with the
  // ConvergenceDelta + AS-path dirty set and re-probes only the dirty
  // (vp, target) pairs — identical output bytes
  // (tests/test_convergence_parity.cpp), so the rows differ only in
  // latency and the reprobe_frac counter.
  gen::SyntheticInternet& world =
      ScalingWorldOfSize(static_cast<int>(state.range(0)));
  topo::Topology& topology = world.mutable_topology();
  const bool use_delta = state.range(1) != 0;
  const auto targets = world.AllLoopbacks();
  const topo::LinkId flapped = PickTransitFlapLink(world);
  if (flapped == topo::kNoLink) {
    state.SkipWithError("no MPLS transit-internal link");
    return;
  }

  campaign::CampaignOptions options;
  options.jobs = 1;
  options.shard_targets = true;
  options.stream_shard_size = 64;
  campaign::Campaign campaign(world.engine(), world.vantage_points(),
                              options);
  campaign::TraceCache cache;
  // Warm fill (untimed): the steady state is "cache populated, link
  // churns" — the cold fill is just a streaming campaign.
  if (use_delta) benchmark::DoNotOptimize(campaign.RunDelta(targets, cache));

  std::uint64_t pairs_total = 0;
  std::uint64_t pairs_reprobed = 0;
  std::uint64_t reports = 0;
  for (auto _ : state) {
    for (const bool up : {false, true}) {
      topology.SetLinkUp(flapped, up);
      const routing::ConvergenceDelta delta =
          world.network().OnLinkStateChange(flapped);
      if (use_delta) {
        const routing::AsPathOracle oracle(topology,
                                           world.network().bgp_level(),
                                           world.network().bgp_policy());
        cache.Invalidate(delta, oracle);
        const auto result = campaign.RunDelta(targets, cache);
        pairs_total += result.delta_pairs_total;
        pairs_reprobed += result.delta_pairs_reprobed;
        benchmark::DoNotOptimize(result.revelations.size());
      } else {
        campaign::Campaign cold(world.engine(), world.vantage_points(),
                                options);
        const auto result = cold.Run(targets);
        benchmark::DoNotOptimize(result.revelations.size());
      }
      ++reports;
    }
  }
  state.counters["routers"] =
      static_cast<double>(world.topology().router_count());
  state.counters["reports/s"] = benchmark::Counter(
      static_cast<double>(reports), benchmark::Counter::kIsRate);
  if (use_delta) {
    state.counters["reprobe_frac"] =
        pairs_total == 0 ? 0.0
                         : static_cast<double>(pairs_reprobed) /
                               static_cast<double>(pairs_total);
    state.counters["cache_mb"] =
        static_cast<double>(cache.RetainedBytes()) / (1024.0 * 1024.0);
  }
  state.counters["peak_rss_mb"] = PeakRssMb();
}
BENCHMARK(BM_DeltaReprobe)
    ->ArgNames({"size", "delta"})
    ->ArgsProduct({{1}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/// The ~90k-router, >1M-probe acceptance point (docs/scaling.md). Opt in
/// with WORMHOLE_BENCH_HUGE=1: one iteration takes minutes and builds a
/// multi-GB world, which has no place in the CI smoke run.
const bool kHugeRegistered = [] {
  if (std::getenv("WORMHOLE_BENCH_HUGE") == nullptr) return false;
  // Streaming and buffered rows at the same point — run each under its
  // own --benchmark_filter so the monotone RSS counter stays per-row.
  benchmark::RegisterBenchmark("BM_CampaignScaling", BM_CampaignScaling)
      ->ArgNames({"size", "targets", "shard"})
      ->Args({2, 0, 4096})
      ->Args({2, 0, 0})
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  benchmark::RegisterBenchmark("BM_DeltaReprobe", BM_DeltaReprobe)
      ->ArgNames({"size", "delta"})
      ->Args({2, 0})
      ->Args({2, 1})
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
  return true;
}();

}  // namespace

BENCHMARK_MAIN();
