#!/usr/bin/env python3
"""Unit tests for determinism_lint.py, driven by the fixture mini-tree.

Each `bad_*` fixture marks its expected findings with `// expect: <rule>`
comments; the test asserts the linter reports exactly those (file, line,
rule) triples. Each `good_*` fixture (including every suppression form)
must produce zero findings. Run directly or via ctest (lint.fixtures).
"""

from __future__ import annotations

import re
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
FIXTURE_ROOT = HERE / "fixtures" / "tree"

sys.path.insert(0, str(HERE))

import determinism_lint  # noqa: E402

EXPECT = re.compile(r"//\s*expect:\s*([\w-]+)")


def expected_findings() -> set[tuple[str, int, str]]:
    expected: set[tuple[str, int, str]] = set()
    for path in sorted(FIXTURE_ROOT.rglob("*")):
        if path.suffix not in determinism_lint.SOURCE_EXTENSIONS:
            continue
        rel = path.relative_to(FIXTURE_ROOT).as_posix()
        lines = path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines, start=1):
            for match in EXPECT.finditer(line):
                expected.add((rel, lineno, match.group(1)))
    return expected


def actual_findings() -> set[tuple[str, int, str]]:
    files = determinism_lint.gather_files(FIXTURE_ROOT, [])
    names = determinism_lint.collect_unordered_names(files)
    found: set[tuple[str, int, str]] = set()
    for rel, path in files:
        for finding in determinism_lint.check_file(rel, path, names):
            found.add((finding.path, finding.line, finding.rule))
    return found


class DeterminismLintTest(unittest.TestCase):
    def setUp(self):
        self.assertTrue(
            FIXTURE_ROOT.is_dir(), f"missing fixture tree: {FIXTURE_ROOT}"
        )
        self.expected = expected_findings()
        self.actual = actual_findings()

    def test_every_annotated_violation_fires(self):
        missed = self.expected - self.actual
        self.assertFalse(
            missed,
            "annotated violations the linter failed to report: "
            f"{sorted(missed)}",
        )

    def test_no_spurious_findings(self):
        spurious = self.actual - self.expected
        self.assertFalse(
            spurious,
            "findings with no `// expect:` annotation (good fixtures and "
            f"suppressions must stay clean): {sorted(spurious)}",
        )

    def test_every_rule_is_exercised(self):
        fired = {rule for (_, _, rule) in self.expected}
        self.assertEqual(
            set(determinism_lint.RULES),
            fired,
            "each rule needs at least one bad-fixture line",
        )

    def test_suppression_forms_are_exercised(self):
        text = "\n".join(
            p.read_text(encoding="utf-8")
            for p in sorted(FIXTURE_ROOT.rglob("*.cpp"))
        )
        for form in ("lint:allow(", "lint:allow-next-line(",
                     "lint:allow-file("):
            self.assertIn(form, text, f"no fixture exercises {form}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
