file(REMOVE_RECURSE
  "CMakeFiles/test_rsvp_te.dir/test_rsvp_te.cpp.o"
  "CMakeFiles/test_rsvp_te.dir/test_rsvp_te.cpp.o.d"
  "test_rsvp_te"
  "test_rsvp_te.pdb"
  "test_rsvp_te[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rsvp_te.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
