// sem-unordered-flow fixture, entry side: report-producing code (an
// output dir) reaching an unordered iteration through a helper that
// lives outside the output dirs.
namespace fix {

class Core;

int ReportHelper(Core& core);

int Report(Core& core) { return ReportHelper(core); }

}  // namespace fix
