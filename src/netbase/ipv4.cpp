#include "netbase/ipv4.h"

#include <array>
#include <charconv>
#include <ostream>

namespace wormhole::netbase {

namespace {

// Parses one decimal octet out of [first, last); advances first past it.
std::optional<std::uint8_t> ParseOctet(const char*& first, const char* last) {
  unsigned value = 0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr == first || value > 255) return std::nullopt;
  first = ptr;
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  const char* first = text.data();
  const char* const last = text.data() + text.size();
  std::array<std::uint8_t, 4> octets{};
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (first == last || *first != '.') return std::nullopt;
      ++first;
    }
    const auto octet = ParseOctet(first, last);
    if (!octet) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = *octet;
  }
  if (first != last) return std::nullopt;
  return Ipv4Address(octets[0], octets[1], octets[2], octets[3]);
}

std::string Ipv4Address::ToString() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    if (shift != 24) out.push_back('.');
    out += std::to_string((value_ >> shift) & 0xFF);
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Ipv4Address address) {
  return os << address.ToString();
}

std::optional<Prefix> Prefix::Parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto address = Ipv4Address::Parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  int length = -1;
  const auto [ptr, ec] = std::from_chars(
      len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() ||
      length < 0 || length > 32) {
    return std::nullopt;
  }
  return Prefix(*address, length);
}

std::string Prefix::ToString() const {
  return address_.ToString() + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, const Prefix& prefix) {
  return os << prefix.ToString();
}

}  // namespace wormhole::netbase
