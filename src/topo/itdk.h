// An ITDK-like router-level dataset (CAIDA Internet Topology Data Kit
// stand-in): nodes are routers (sets of aliased interface addresses), links
// are inferred router adjacencies, and each node maps to an AS.
//
// The campaign module builds one of these from plain traceroute output —
// with invisible MPLS tunnels producing exactly the false links and
// high-degree meshes the paper studies — and the analysis module corrects
// it after tunnel revelation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/stats.h"
#include "topo/topology.h"

namespace wormhole::topo {

using NodeId = std::uint32_t;
constexpr NodeId kNoNode = static_cast<NodeId>(-1);

struct ItdkNode {
  NodeId id = kNoNode;
  std::vector<netbase::Ipv4Address> addresses;
  AsNumber asn = 0;
};

class ItdkDataset {
 public:
  /// Returns the node owning `address`, creating it if unseen.
  NodeId NodeOf(netbase::Ipv4Address address);
  /// Returns the node owning `address` without creating; nullopt if unseen.
  [[nodiscard]] std::optional<NodeId> FindNode(
      netbase::Ipv4Address address) const;

  /// Adds `address` as an alias of `node` (no-op if already present).
  void AddAlias(NodeId node, netbase::Ipv4Address address);

  /// Records an undirected link between two nodes (idempotent; self-links
  /// are ignored).
  void AddLink(NodeId a, NodeId b);
  /// Removes a link if present; used when revelation disproves an inferred
  /// adjacency between tunnel endpoints.
  void RemoveLink(NodeId a, NodeId b);
  [[nodiscard]] bool HasLink(NodeId a, NodeId b) const;

  void SetAs(NodeId node, AsNumber asn);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const ItdkNode& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] const std::vector<ItdkNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::set<std::pair<NodeId, NodeId>>& links() const {
    return links_;
  }

  [[nodiscard]] std::size_t Degree(NodeId node) const;
  [[nodiscard]] const std::set<NodeId>& NeighborsOf(NodeId node) const;

  /// Degree PDF over all nodes (Fig. 1 / Fig. 10 material).
  [[nodiscard]] netbase::IntDistribution DegreeDistribution() const;
  /// Degree PDF restricted to nodes of one AS (Fig. 10b).
  [[nodiscard]] netbase::IntDistribution DegreeDistribution(
      AsNumber asn) const;

  /// Nodes with degree >= threshold — the paper's HDN trigger (Sec. 4).
  [[nodiscard]] std::vector<NodeId> HighDegreeNodes(
      std::size_t threshold) const;

  /// Graph density 2E / (V (V-1)) over the nodes of one AS restricted to
  /// intra-AS links; Table 4's "Graph Density" columns restrict further to
  /// candidate LER nodes, which callers do by passing the node set.
  [[nodiscard]] double Density(const std::vector<NodeId>& nodes) const;

  // --- serialization (simple line format, see itdk.cpp) -------------------
  void Write(std::ostream& os) const;
  static ItdkDataset Read(std::istream& is);

 private:
  static std::uint64_t LinkKey(NodeId a, NodeId b) {
    return (std::uint64_t{a} << 32) | b;
  }

  std::vector<ItdkNode> nodes_;
  std::unordered_map<netbase::Ipv4Address, NodeId> address_to_node_;
  std::set<std::pair<NodeId, NodeId>> links_;
  /// O(1) mirror of links_ (normalized min<<32|max keys): campaign
  /// reduces call AddLink once per hop pair and almost always hit a
  /// duplicate, so the ordered-set lookup dominated dataset building.
  std::unordered_set<std::uint64_t> link_index_;
  std::unordered_map<NodeId, std::set<NodeId>> adjacency_;
};

/// Builds the ground-truth router-level dataset straight from a Topology —
/// perfect alias resolution, every physical link present. Used as the
/// reference when measuring how much of the truth a campaign recovers.
ItdkDataset GroundTruthDataset(const Topology& topology);

}  // namespace wormhole::topo
