// Trace records: what one traceroute (or ping) observed.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/label.h"
#include "netbase/packet.h"

namespace wormhole::probe {

using netbase::Ipv4Address;

/// One traceroute hop (one probe TTL).
struct Hop {
  int probe_ttl = 0;
  /// Replying address; nullopt for a timeout ("*").
  std::optional<Ipv4Address> address;
  netbase::PacketKind reply_kind = netbase::PacketKind::kTimeExceeded;
  /// Remaining IP-TTL of the reply when it reached the vantage point — the
  /// bracketed return TTL of Fig. 4, raw input of FRPLA/RTLA.
  int reply_ip_ttl = 0;
  /// RFC 4950 quoted label stack (empty when the tunnel is invisible).
  netbase::LabelStack labels;
  double rtt_ms = 0.0;

  [[nodiscard]] bool responded() const { return address.has_value(); }
  [[nodiscard]] bool has_labels() const { return !labels.empty(); }
};

struct TraceResult {
  Ipv4Address source;
  Ipv4Address target;
  std::uint16_t flow_id = 0;
  std::vector<Hop> hops;
  /// The target answered (echo-reply received).
  bool reached = false;
  /// A destination-unreachable cut the trace short.
  bool unreachable = false;

  /// Hop index (probe TTL) at which `address` replied; nullopt if absent.
  [[nodiscard]] std::optional<int> HopOf(Ipv4Address address) const;
  /// Addresses of the last `n` responding hops, nearest-to-target last.
  [[nodiscard]] std::vector<Ipv4Address> LastResponders(std::size_t n) const;
  /// True if any hop quoted an MPLS label (an *explicit* tunnel).
  [[nodiscard]] bool HasExplicitMpls() const;
  /// Number of the probe TTL of the final responding hop (path length as
  /// seen by traceroute); 0 when nothing answered.
  [[nodiscard]] int LastRespondingTtl() const;

  /// Multi-line rendering in the style of the paper's Fig. 4 (addresses can
  /// be replaced by router names via the resolver).
  [[nodiscard]] std::string Format(
      const std::function<std::string(Ipv4Address)>& name_of) const;
};

struct PingResult {
  Ipv4Address target;
  bool responded = false;
  /// Remaining IP-TTL of the echo-reply at the vantage point.
  int reply_ip_ttl = 0;
  double rtt_ms = 0.0;
};

/// Rounds a received TTL up to the nearest plausible initial TTL
/// (64, 128, 255) — the standard inference of [Vanaubel2013].
int InferInitialTtl(int received_ttl);

/// Path length implied by a received TTL: initial - received.
int PathLengthFromTtl(int received_ttl);

}  // namespace wormhole::probe
