// Golden end-to-end equivalence: a fixed synthetic-Internet campaign must
// serialize byte-for-byte to the snapshot in tests/data/, which was
// generated before the data-plane fast path (flat FIB, inline label
// stacks, per-router caches) landed. Any behavioral drift in the engine,
// the campaign pipeline, or the writers shows up here as a diff.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/campaign_report.h"
#include "campaign/campaign.h"
#include "gen/internet.h"
#include "io/tracefile.h"

namespace wormhole {
namespace {

std::string ReadGolden() {
  const std::string path =
      std::string(WORMHOLE_TEST_DATA_DIR) + "/golden_campaign.txt";
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.is_open()) << "missing " << path;
  std::ostringstream content;
  content << file.rdbuf();
  return content.str();
}

/// Builds the snapshot world, runs the campaign at `jobs`, and serializes
/// stats + traces + report exactly like the generator did.
std::string RunSnapshotCampaign(std::size_t jobs) {
  gen::InternetOptions options;
  options.seed = 17;
  options.tier1_count = 2;
  options.transit_count = 4;
  options.stub_count = 10;
  options.vp_count = 3;
  options.anonymous_router_probability = 0.02;
  options.icmp_loss = 0.05;

  gen::SyntheticInternet net(options);
  campaign::Campaign campaign(net.engine(), net.vantage_points(),
                              {.jobs = jobs});
  const campaign::CampaignResult result = campaign.Run(net.AllLoopbacks());
  const sim::EngineStats stats = net.engine().stats();

  std::ostringstream out;
  out << "# golden campaign snapshot (seed 17 world, jobs=1)\n";
  out << "S packets_injected " << stats.packets_injected << "\n";
  out << "S hops_processed " << stats.hops_processed << "\n";
  out << "S icmp_generated " << stats.icmp_generated << "\n";
  out << "S labels_pushed " << stats.labels_pushed << "\n";
  out << "S labels_popped " << stats.labels_popped << "\n";
  out << "S probes_sent " << result.probes_sent << "\n";
  out << "S revelation_traces " << result.revelation_traces << "\n";
  out << "S revealed_count " << result.revealed_count() << "\n";
  io::WriteTraces(out, result.traces);
  analysis::WriteCampaignReport(out, result, net.topology());
  return out.str();
}

TEST(GoldenCampaign, SequentialRunMatchesSnapshotByteForByte) {
  const std::string golden = ReadGolden();
  ASSERT_FALSE(golden.empty());
  const std::string now = RunSnapshotCampaign(/*jobs=*/1);
  // EXPECT_EQ on the whole blob would dump 100 KB on failure; compare
  // sizes and content separately for a readable diff signal.
  ASSERT_EQ(now.size(), golden.size());
  const auto mismatch =
      std::mismatch(now.begin(), now.end(), golden.begin()).first;
  EXPECT_TRUE(mismatch == now.end())
      << "first divergence at byte " << (mismatch - now.begin()) << ": ..."
      << now.substr(
             static_cast<std::size_t>(
                 std::max<std::ptrdiff_t>(0, mismatch - now.begin() - 40)),
             80)
      << "...";
}

TEST(GoldenCampaign, ParallelRunMatchesSnapshotByteForByte) {
  // The worker count must not leak into a single byte of the output:
  // stats are order-independent sums and the reduce phase is sequential.
  const std::string golden = ReadGolden();
  ASSERT_FALSE(golden.empty());
  const std::string now = RunSnapshotCampaign(/*jobs=*/4);
  ASSERT_EQ(now.size(), golden.size());
  EXPECT_TRUE(now == golden);
}

}  // namespace
}  // namespace wormhole
