// Randomised robustness sweeps: many generated worlds, permissive
// configurations, adversarial targets — the pipeline must stay crash-free
// and its inferences sound (never contradict ground truth).
#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "gen/internet.h"
#include "netbase/rng.h"
#include "probe/prober.h"
#include "reveal/revelator.h"

namespace wormhole {
namespace {

class FuzzWorld : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  gen::InternetOptions Options() const {
    // Small, fast worlds with everything dialled up: UHP more common,
    // anonymous routers, loss.
    netbase::Rng rng(GetParam() * 977);
    gen::InternetOptions options;
    options.seed = GetParam();
    options.tier1_count = rng.UniformInt(1, 3);
    options.transit_count = rng.UniformInt(2, 6);
    options.stub_count = rng.UniformInt(4, 12);
    options.tier1_routers = rng.UniformInt(10, 30);
    options.transit_routers = rng.UniformInt(8, 24);
    options.vp_count = rng.UniformInt(2, 6);
    options.uhp_probability = 0.3;
    options.no_ttl_propagate_probability = 0.7;
    options.anonymous_router_probability = 0.05;
    options.icmp_loss = 0.02;
    return options;
  }
};

TEST_P(FuzzWorld, TracesTerminateAndNeverLoop) {
  gen::SyntheticInternet net(Options());
  probe::Prober prober(net.engine(), net.vantage_points().front());
  netbase::Rng rng(GetParam());
  int traced = 0;
  for (const auto loopback : net.AllLoopbacks()) {
    if (!rng.Chance(0.3)) continue;  // sample
    const auto trace = prober.Traceroute(loopback);
    ++traced;
    EXPECT_LE(trace.hops.size(), 40u);
    // An address may repeat only at *consecutive* hops — the legitimate
    // UHP duplicate-hop artifact (the invisible egress absorbs one TTL
    // without expiring, so its neighbor answers twice). Non-adjacent
    // repeats would mean a forwarding loop.
    std::map<netbase::Ipv4Address, int> last_seen;
    for (const auto& hop : trace.hops) {
      if (!hop.address) continue;
      const auto it = last_seen.find(*hop.address);
      if (it != last_seen.end()) {
        EXPECT_EQ(it->second, hop.probe_ttl - 1)
            << "loop at " << hop.address->ToString();
      }
      last_seen[*hop.address] = hop.probe_ttl;
    }
  }
  EXPECT_GT(traced, 0);
}

TEST_P(FuzzWorld, ProbingAdversarialTargetsNeverCrashes) {
  gen::SyntheticInternet net(Options());
  probe::Prober prober(net.engine(), net.vantage_points().front());
  netbase::Rng rng(GetParam() ^ 0xABCDEF);
  for (int i = 0; i < 64; ++i) {
    // Random addresses: unassigned, private, inside random blocks.
    const netbase::Ipv4Address target(rng.UniformU32());
    const auto trace = prober.Traceroute(target, {.max_ttl = 20});
    EXPECT_LE(trace.hops.size(), 20u);
  }
  // Probing our own gateway-side addresses and the VP itself.
  const auto vp = net.vantage_points().front();
  EXPECT_NO_THROW(prober.Ping(vp));
  const topo::Host* host = net.topology().FindHost(vp);
  EXPECT_NO_THROW(prober.Ping(
      net.topology().interface(host->stub_interface).address));
}

TEST_P(FuzzWorld, CampaignInferencesStaySound) {
  gen::SyntheticInternet net(Options());
  campaign::CampaignOptions options;
  options.hdn_threshold = 6;  // small worlds
  campaign::Campaign campaign(net.engine(), net.vantage_points(), options);
  const auto result = campaign.Run(net.AllLoopbacks());

  for (const auto& [pair, revelation] : result.revelations) {
    if (!revelation.succeeded()) continue;
    const auto asn = net.topology().AsOfAddress(pair.egress);
    // Soundness: only invisible PHP clouds ever get revealed...
    EXPECT_TRUE(net.profile(asn).invisible_tunnels());
    EXPECT_EQ(net.profile(asn).popping, mpls::Popping::kPhp);
    // ...and revealed hops are genuine routers of that AS.
    for (const auto hop : revelation.revealed) {
      const auto router = net.topology().FindRouterByAddress(hop);
      ASSERT_TRUE(router.has_value());
      EXPECT_EQ(net.topology().router(*router).asn, asn);
    }
  }
}

TEST_P(FuzzWorld, RevelatorHandlesArbitraryEndpointPairs) {
  gen::SyntheticInternet net(Options());
  probe::Prober prober(net.engine(), net.vantage_points().front());
  reveal::Revelator revelator(prober);
  netbase::Rng rng(GetParam() + 31337);
  const auto loopbacks = net.AllLoopbacks();
  for (int i = 0; i < 16; ++i) {
    // Random (even nonsensical) X/Y pairs must terminate cleanly.
    const auto x = loopbacks[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(loopbacks.size()) - 1))];
    const auto y = loopbacks[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(loopbacks.size()) - 1))];
    const auto result = revelator.Reveal(x, y);
    EXPECT_LE(result.traces_used, 25);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzWorld,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u,
                                           106u, 107u, 108u));

TEST(GeneratorStatistics, DeploymentConvergesToSurveyRates) {
  // Over many small worlds, the drawn deployment probabilities must track
  // the survey constants the defaults come from.
  int mpls = 0, invisible = 0, uhp = 0, eligible = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    gen::InternetOptions options;
    options.seed = seed;
    options.tier1_count = 2;
    options.transit_count = 6;
    options.stub_count = 4;
    options.tier1_routers = 8;
    options.transit_routers = 8;
    options.vp_count = 1;
    gen::SyntheticInternet net(options);
    for (const auto& [asn, profile] : net.profiles()) {
      if (profile.role == gen::AsRole::kStub) continue;
      ++eligible;
      if (!profile.mpls) continue;
      ++mpls;
      if (!profile.ttl_propagate) ++invisible;
      if (profile.popping == mpls::Popping::kUhp) ++uhp;
    }
  }
  const double mpls_rate = static_cast<double>(mpls) / eligible;
  const double invisible_rate = static_cast<double>(invisible) / mpls;
  const double uhp_rate = static_cast<double>(uhp) / mpls;
  EXPECT_NEAR(mpls_rate, gen::survey::kMplsDeployment, 0.08);
  EXPECT_NEAR(invisible_rate, gen::survey::kNoTtlPropagate, 0.10);
  EXPECT_NEAR(uhp_rate, gen::survey::kUhp, 0.08);
}

}  // namespace
}  // namespace wormhole
