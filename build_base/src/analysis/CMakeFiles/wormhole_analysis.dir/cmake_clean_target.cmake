file(REMOVE_RECURSE
  "libwormhole_analysis.a"
)
