// Trace persistence — a warts-lite line format for campaign output, so
// measurement and analysis can run in separate processes (the paper's
// dataset is published exactly this way; see their scamper warts files).
//
// Format, one record per line:
//   T <src> <dst> <flow> <reached:0|1> <unreachable:0|1>     -- trace start
//   H <ttl> <addr|*> <kind:x|e|u> <reply_ttl> <rtt_ms> [L<label>:<ttl>]...
//   .                                                        -- trace end
// Lines starting with '#' are comments.
#pragma once

#include <iosfwd>
#include <vector>

#include "probe/trace.h"

namespace wormhole::io {

void WriteTrace(std::ostream& os, const probe::TraceResult& trace);
void WriteTraces(std::ostream& os,
                 const std::vector<probe::TraceResult>& traces);

/// Reads every trace from the stream; throws std::runtime_error on a
/// malformed record.
std::vector<probe::TraceResult> ReadTraces(std::istream& is);

}  // namespace wormhole::io
