file(REMOVE_RECURSE
  "libwormhole_exec.a"
)
