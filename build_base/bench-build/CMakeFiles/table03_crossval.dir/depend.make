# Empty dependencies file for table03_crossval.
# This may be replaced when dependencies are built.
