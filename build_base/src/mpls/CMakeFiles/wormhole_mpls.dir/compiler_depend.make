# Empty compiler generated dependencies file for wormhole_mpls.
# This may be replaced when dependencies are built.
