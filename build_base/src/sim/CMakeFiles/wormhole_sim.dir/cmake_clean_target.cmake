file(REMOVE_RECURSE
  "libwormhole_sim.a"
)
