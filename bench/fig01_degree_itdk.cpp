// Fig. 1: node degree distribution of the (ITDK-like) inferred router-level
// dataset. Invisible MPLS tunnels inflate the tail: entry LERs appear
// adjacent to every exit LER of their AS.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "analysis/metrics.h"
#include "analysis/report.h"
#include "bench/common.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader("Node degree distribution of the inferred dataset",
                     "Fig. 1");
  const auto world = bench::RunFlagshipCampaign();
  const auto& dataset = world.result.inferred;

  const auto degrees = dataset.DegreeDistribution();
  std::cout << "nodes: " << dataset.node_count()
            << "  links: " << dataset.link_count()
            << "  max degree: " << degrees.Max() << "\n\n";

  // Log-binned PDF (the paper plots log-log).
  std::cout << "degree-bin     PDF\n";
  std::cout << std::fixed << std::setprecision(6);
  int lo = 1;
  while (lo <= degrees.Max()) {
    const int hi = std::max(lo, lo * 2 - 1);
    std::uint64_t count = 0;
    for (int d = lo; d <= hi; ++d) count += degrees.CountOf(d);
    const double pdf =
        static_cast<double>(count) / static_cast<double>(degrees.total());
    std::cout << std::setw(4) << lo << "-" << std::setw(4) << hi << "   "
              << pdf << "\n";
    lo = hi + 1;
  }

  const auto hdns = dataset.HighDegreeNodes(8);
  std::cout << "\nHigh Degree Nodes (threshold 8, scaled from the paper's "
               "128): "
            << hdns.size() << "\n";
  std::cout << "power-law MLE alpha (x_min=2): "
            << analysis::TextTable::Real(
                   analysis::FitPowerLawAlpha(degrees, 2), 2)
            << "  (Faloutsos et al. report ~2.1-2.5 for traceroute-"
               "inferred Internet graphs)\n";
  std::cout << "paper shape: heavy tail — a significant share of nodes with "
               "degree far above the physical port count.\n";
  return 0;
}
