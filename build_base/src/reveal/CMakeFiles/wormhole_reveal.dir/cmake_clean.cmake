file(REMOVE_RECURSE
  "CMakeFiles/wormhole_reveal.dir/frpla.cpp.o"
  "CMakeFiles/wormhole_reveal.dir/frpla.cpp.o.d"
  "CMakeFiles/wormhole_reveal.dir/revelator.cpp.o"
  "CMakeFiles/wormhole_reveal.dir/revelator.cpp.o.d"
  "CMakeFiles/wormhole_reveal.dir/rtla.cpp.o"
  "CMakeFiles/wormhole_reveal.dir/rtla.cpp.o.d"
  "CMakeFiles/wormhole_reveal.dir/uhp_trigger.cpp.o"
  "CMakeFiles/wormhole_reveal.dir/uhp_trigger.cpp.o.d"
  "libwormhole_reveal.a"
  "libwormhole_reveal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_reveal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
