file(REMOVE_RECURSE
  "../bench/fig11_pathlen"
  "../bench/fig11_pathlen.pdb"
  "CMakeFiles/fig11_pathlen.dir/fig11_pathlen.cpp.o"
  "CMakeFiles/fig11_pathlen.dir/fig11_pathlen.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pathlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
