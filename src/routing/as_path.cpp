#include "routing/as_path.h"

#include <algorithm>

namespace wormhole::routing {

AsPathOracle::AsPathOracle(const topo::Topology& topology,
                           const BgpLevel& level, const BgpPolicy& policy)
    : topology_(&topology), level_(&level), policy_(&policy) {
  const std::vector<topo::AsNumber> as_numbers = topology.AsNumbers();
  blocks_.reserve(as_numbers.size());
  for (const topo::AsNumber asn : as_numbers) {
    blocks_.push_back(OwnedPrefix{topology.as(asn).block, asn});
    if (policy.hierarchical && !policy.stub_ases.contains(asn)) {
      const auto it = policy.aggregates.find(asn);
      aggregates_.push_back(OwnedPrefix{it != policy.aggregates.end()
                                            ? it->second
                                            : topology.as(asn).block,
                                        asn});
    }
  }
  const auto by_base = [](const OwnedPrefix& a, const OwnedPrefix& b) {
    return a.prefix.address().value() < b.prefix.address().value();
  };
  std::sort(blocks_.begin(), blocks_.end(), by_base);
  std::sort(aggregates_.begin(), aggregates_.end(), by_base);

  topo::AsNumber max_asn = 0;
  for (const topo::AsNumber asn : as_numbers) {
    max_asn = std::max(max_asn, asn);
  }
  stub_flat_.assign(max_asn + 1, 0);
  for (const topo::AsNumber asn : policy.stub_ases) {
    if (asn <= max_asn) stub_flat_[asn] = 1;
  }
  provider_flat_.assign(max_asn + 1, 0);
  for (const auto& [asn, peers] : level.adjacency) {
    if (asn > max_asn) continue;
    for (const auto& [peer, links] : peers) {
      if (!IsStub(peer)) {
        provider_flat_[asn] = peer;
        break;
      }
    }
  }
}

topo::AsNumber AsPathOracle::BlockOwnerOf(
    netbase::Ipv4Address address) const {
  // Blocks are disjoint and sorted: the only candidate is the last block
  // whose base is <= the address.
  auto it = std::upper_bound(
      blocks_.begin(), blocks_.end(), address,
      [](netbase::Ipv4Address a, const OwnedPrefix& p) {
        return a.value() < p.prefix.address().value();
      });
  if (it == blocks_.begin()) return 0;
  --it;
  return it->prefix.Contains(address) ? it->asn : 0;
}

topo::AsNumber AsPathOracle::AggregateOwnerOf(
    netbase::Ipv4Address address) const {
  auto it = std::upper_bound(
      aggregates_.begin(), aggregates_.end(), address,
      [](netbase::Ipv4Address a, const OwnedPrefix& p) {
        return a.value() < p.prefix.address().value();
      });
  if (it == aggregates_.begin()) return 0;
  --it;
  return it->prefix.Contains(address) ? it->asn : 0;
}

topo::AsNumber AsPathOracle::RouterOwnerOf(
    netbase::Ipv4Address address) const {
  if (const auto rid = topology_->FindRouterByAddress(address)) {
    return topology_->router(*rid).asn;
  }
  if (const topo::Host* host = topology_->FindHost(address)) {
    return topology_->router(host->gateway).asn;
  }
  return 0;
}

bool AsPathOracle::IsStub(topo::AsNumber asn) const {
  if (asn < stub_flat_.size()) return stub_flat_[asn] != 0;
  return IsStubSlow(asn);
}

bool AsPathOracle::IsStubSlow(topo::AsNumber asn) const {
  return policy_->stub_ases.contains(asn);
}

bool AsPathOracle::Adjacent(topo::AsNumber a, topo::AsNumber b) const {
  const auto row = level_->adjacency.find(a);
  return row != level_->adjacency.end() && row->second.contains(b);
}

topo::AsNumber AsPathOracle::PrimaryProviderOf(topo::AsNumber stub) const {
  if (stub < provider_flat_.size()) return provider_flat_[stub];
  return PrimaryProviderOfSlow(stub);
}

topo::AsNumber AsPathOracle::PrimaryProviderOfSlow(
    topo::AsNumber stub) const {
  const auto row = level_->adjacency.find(stub);
  if (row == level_->adjacency.end()) return 0;
  // adjacency is an ordered map: the first non-stub peer is the
  // lowest-ASN provider, exactly the default target
  // FlattenHierarchicalExits picks.
  for (const auto& [peer, links] : row->second) {
    if (!IsStub(peer)) return peer;
  }
  return 0;
}

bool AsPathOracle::CollectPathAses(topo::AsNumber from_as,
                                   netbase::Ipv4Address to_addr,
                                   std::vector<topo::AsNumber>& out) const {
  const topo::AsNumber owner = BlockOwnerOf(to_addr);
  const topo::AsNumber router_owner = RouterOwnerOf(to_addr);
  if (from_as == 0 || owner == 0 || router_owner == 0) return false;
  // The endpoints: source AS, the block owner the LPM walk steers by,
  // and the AS actually holding the address (differs from the block
  // owner for border-/31 addresses carved from the peer's block — the
  // final cross-link hop).
  out.push_back(from_as);
  out.push_back(owner);
  out.push_back(router_owner);

  topo::AsNumber cur = from_as;
  if (cur == owner) return true;
  // Each AS is visited at most once on a converged path; anything longer
  // is a loop (or a plan inconsistency) — bail conservatively.
  std::size_t guard = blocks_.size() + 2;

  if (!policy_->hierarchical) {
    // Flat mode: every AS routes toward the owner's block; replay
    // next_for hop by hop.
    const auto row = level_->next_for.find(owner);
    if (row == level_->next_for.end()) return false;
    while (cur != owner) {
      if (guard-- == 0) return false;
      const auto next = row->second.find(cur);
      if (next == row->second.end() || next->second == 0) return false;
      cur = next->second;
      out.push_back(cur);
    }
    return true;
  }

  // Hierarchical mode. A stub source carries a single default toward its
  // primary provider — the packet cannot leave the stub any other way.
  // (Destinations inside the stub returned above; destinations on the
  // stub's own border /31s are covered by owner/router_owner.)
  if (IsStub(cur)) {
    const topo::AsNumber provider = PrimaryProviderOf(cur);
    if (provider == 0) return false;
    cur = provider;
    out.push_back(cur);
    if (cur == owner) return true;
  }

  // Core walk. At each core AS the LPM match for `to_addr` is either a
  // direct customer-block route (the owner is an adjacent stub: the
  // packet is delivered next hop) or the covering core aggregate, which
  // routes toward the AS announcing it.
  const topo::AsNumber target_core =
      IsStub(owner) ? AggregateOwnerOf(to_addr) : owner;
  if (target_core == 0) return false;
  const auto row = level_->next_for.find(target_core);
  if (row == level_->next_for.end()) return false;
  while (true) {
    if (cur == owner) return true;
    if (IsStub(owner) && Adjacent(cur, owner)) return true;
    // Reached the aggregate's announcer but the owning stub is not a
    // neighbor: the plan is inconsistent with the address — bail.
    if (cur == target_core) return false;
    if (guard-- == 0) return false;
    const auto next = row->second.find(cur);
    if (next == row->second.end() || next->second == 0) return false;
    cur = next->second;
    out.push_back(cur);
  }
}

bool AsPathOracle::PathMayContain(topo::AsNumber from_as,
                                  netbase::Ipv4Address to_addr,
                                  topo::AsNumber asn) const {
  std::vector<topo::AsNumber> ases;
  if (!CollectPathAses(from_as, to_addr, ases)) return true;
  return std::find(ases.begin(), ases.end(), asn) != ases.end();
}

ReturnPathClassifier::ReturnPathClassifier(const AsPathOracle& oracle,
                                           netbase::Ipv4Address to_addr,
                                           topo::AsNumber touched)
    : oracle_(&oracle), touched_(touched) {
  topo::AsNumber max_asn = 0;
  for (const AsPathOracle::OwnedPrefix& block : oracle.blocks_) {
    max_asn = std::max(max_asn, block.asn);
  }
  core_.assign(max_asn + 1, kUnknown);
  verdicts_.assign(max_asn + 1, kUnknown);
  owner_ = oracle.BlockOwnerOf(to_addr);
  router_owner_ = oracle.RouterOwnerOf(to_addr);
  if (owner_ == 0 || router_owner_ == 0) {
    all_dirty_ = true;
    return;
  }
  if (oracle.policy_->hierarchical) {
    owner_stub_ = oracle.IsStub(owner_);
    target_core_ = owner_stub_ ? oracle.AggregateOwnerOf(to_addr) : owner_;
  } else {
    target_core_ = owner_;
  }
  // CollectPathAses only consults the aggregate / next_for row once the
  // walk actually enters the core, so hoisting the lookups here answers
  // dirty for a few sources the exact walk would have bounded first
  // (e.g. the destination's own AS when the row is missing) — a strict
  // over-approximation, and only on inconsistent plans.
  if (target_core_ == 0) {
    all_dirty_ = true;
    return;
  }
  const auto row = oracle.level_->next_for.find(target_core_);
  if (row == oracle.level_->next_for.end()) {
    all_dirty_ = true;
    return;
  }
  row_ = &row->second;
}

bool ReturnPathClassifier::MayContain(topo::AsNumber from_as) {
  if (all_dirty_ || from_as == 0 || from_as >= verdicts_.size()) return true;
  if (from_as == touched_ || owner_ == touched_ ||
      router_owner_ == touched_) {
    return true;
  }
  if (verdicts_[from_as] != kUnknown) return verdicts_[from_as] == kDirty;

  bool dirty;
  if (from_as == owner_) {
    // Path = {from, owner, router_owner}, none of them touched (above).
    dirty = false;
  } else if (oracle_->policy_->hierarchical && oracle_->IsStub(from_as)) {
    // The stub's single default toward its primary provider.
    const topo::AsNumber provider = oracle_->PrimaryProviderOf(from_as);
    if (provider == 0 || provider == touched_ ||
        provider >= core_.size()) {
      dirty = true;
    } else if (provider == owner_) {
      dirty = false;
    } else {
      dirty = CoreWalkDirty(provider);
    }
  } else {
    dirty = CoreWalkDirty(from_as);
  }
  verdicts_[from_as] = dirty ? kDirty : kClean;
  return dirty;
}

bool ReturnPathClassifier::CoreWalkDirty(topo::AsNumber start) {
  std::vector<topo::AsNumber> trail;
  topo::AsNumber cur = start;
  bool dirty;
  while (true) {
    // kInProgress = the walk rejoined itself: a loop, which the exact
    // walk's visit guard also classifies as unbounded.
    if (core_[cur] != kUnknown) {
      dirty = core_[cur] != kClean;
      break;
    }
    if (cur == owner_) {
      dirty = false;
      break;
    }
    if (owner_stub_ && oracle_->Adjacent(cur, owner_)) {
      // Direct customer-block route: delivered next hop.
      dirty = false;
      break;
    }
    if (cur == target_core_) {
      // Reached the announcer but the owning stub is not a neighbor —
      // the exact walk bails unbounded here.
      dirty = true;
      break;
    }
    core_[cur] = kInProgress;
    trail.push_back(cur);
    const auto next = row_->find(cur);
    if (next == row_->end() || next->second == 0 ||
        next->second >= core_.size()) {
      dirty = true;
      break;
    }
    cur = next->second;
    if (cur == touched_) {
      dirty = true;
      break;
    }
  }
  const std::uint8_t verdict = dirty ? kDirty : kClean;
  for (const topo::AsNumber a : trail) core_[a] = verdict;
  return dirty;
}

ForwardPathClassifier::ForwardPathClassifier(const AsPathOracle& oracle,
                                             ReturnPathClassifier& reply,
                                             topo::AsNumber from_as)
    : oracle_(&oracle), reply_(&reply), from_as_(from_as) {
  // Every forward path contains the source (and, for a stub source, its
  // primary provider): if either end's reply path is already dirty, so
  // is every entry — exactly what the exact per-target check concludes.
  if (from_as == 0 || reply.MayContain(from_as)) {
    all_dirty_ = true;
    return;
  }
  start_ = from_as;
  if (oracle.policy_->hierarchical && oracle.IsStub(from_as)) {
    start_ = oracle.PrimaryProviderOf(from_as);
    if (start_ == 0 || reply.MayContain(start_)) {
      all_dirty_ = true;
      return;
    }
  }
  topo::AsNumber max_asn = 0;
  for (const AsPathOracle::OwnedPrefix& block : oracle.blocks_) {
    max_asn = std::max(max_asn, block.asn);
  }
  owner_state_.assign(max_asn + 1, kUnknown);
  core_state_.assign(max_asn + 1, kUnknown);
  path_begin_.assign(max_asn + 1, 0);
  path_end_.assign(max_asn + 1, 0);
}

bool ForwardPathClassifier::Dirty(netbase::Ipv4Address target,
                                  topo::AsNumber owner) {
  if (all_dirty_ || owner == 0 || owner >= owner_state_.size()) return true;
  if (owner_state_[owner] != kUnknown) return owner_state_[owner] == kDirty;
  // The verdict is a pure function of the owner for a fixed source: the
  // announcer row is per-block, and the one per-address walk element —
  // RouterOwnerOf(target) — is the caller's footprint-scan job.
  const bool dirty = ComputeDirty(target, owner);
  owner_state_[owner] = dirty ? kDirty : kClean;
  return dirty;
}

bool ForwardPathClassifier::ComputeDirty(netbase::Ipv4Address target,
                                         topo::AsNumber owner) {
  if (reply_->MayContain(owner)) return true;
  // The endpoints are covered: the source (and a stub source's provider)
  // in the constructor, the owner above. A walk that starts delivered
  // is clean.
  if (owner == from_as_ || owner == start_) return false;
  const bool owner_stub =
      oracle_->policy_->hierarchical && oracle_->IsStub(owner);
  const topo::AsNumber announcer =
      owner_stub ? oracle_->AggregateOwnerOf(target) : owner;
  if (announcer == 0 || announcer >= core_state_.size()) return true;
  if (core_state_[announcer] == kUnknown) WalkCore(announcer);
  if (core_state_[announcer] == kDirty) return true;
  // Clean walk to the announcer. A non-stub owner IS the announcer: the
  // exact walk ends exactly there. A stub owner is delivered by the
  // first AS on the walk adjacent to it (the direct customer-block
  // route); without one the exact walk reaches the announcer and bails
  // unbounded — dirty.
  if (!owner_stub) return false;
  for (std::uint32_t i = path_begin_[announcer]; i < path_end_[announcer];
       ++i) {
    if (adj_store_[pool_adj_[i]][owner] != 0) return false;
  }
  return true;
}

std::uint32_t ForwardPathClassifier::AdjBitmapOf(topo::AsNumber asn) {
  const auto it = adj_of_.find(asn);
  if (it != adj_of_.end()) return it->second;
  std::vector<std::uint8_t> bits(owner_state_.size(), 0);
  const auto row = oracle_->level_->adjacency.find(asn);
  if (row != oracle_->level_->adjacency.end()) {
    for (const auto& [peer, links] : row->second) {
      if (peer < bits.size()) bits[peer] = 1;
    }
  }
  const auto index = static_cast<std::uint32_t>(adj_store_.size());
  adj_store_.push_back(std::move(bits));
  adj_of_.emplace(asn, index);
  return index;
}

void ForwardPathClassifier::WalkCore(topo::AsNumber announcer) {
  const auto row = oracle_->level_->next_for.find(announcer);
  if (row == oracle_->level_->next_for.end()) {
    core_state_[announcer] = kDirty;
    return;
  }
  const auto begin = static_cast<std::uint32_t>(pool_.size());
  topo::AsNumber cur = start_;
  // Same loop bound as the exact walk: each AS is visited at most once
  // on a converged path, so exhaustion means a loop — dirty.
  std::size_t guard = oracle_->blocks_.size() + 2;
  while (true) {
    pool_.push_back(cur);
    if (reply_->MayContain(cur)) break;
    if (cur == announcer) {
      core_state_[announcer] = kClean;
      path_begin_[announcer] = begin;
      path_end_[announcer] = static_cast<std::uint32_t>(pool_.size());
      pool_adj_.resize(pool_.size());
      for (std::uint32_t i = begin; i < pool_adj_.size(); ++i) {
        pool_adj_[i] = AdjBitmapOf(pool_[i]);
      }
      return;
    }
    if (guard-- == 0) break;
    const auto next = row->second.find(cur);
    if (next == row->second.end() || next->second == 0) break;
    cur = next->second;
  }
  // Dirty walks keep no path: no owner verdict ever reads one.
  pool_.resize(begin);
  core_state_[announcer] = kDirty;
}

}  // namespace wormhole::routing
