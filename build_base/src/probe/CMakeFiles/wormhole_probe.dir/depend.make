# Empty dependencies file for wormhole_probe.
# This may be replaced when dependencies are built.
