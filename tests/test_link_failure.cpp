// Link failure + reconvergence, and the MPLS path-stability effect the
// paper's related work measures (Al-Qudah et al.: invisible tunnels make
// Internet paths *look* more stable, because interior reroutes are hidden
// from traceroute).
#include <gtest/gtest.h>

#include "mpls/config.h"
#include "probe/prober.h"
#include "reveal/revelator.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace wormhole {
namespace {

using topo::RouterId;
using topo::Vendor;

// gw | in -< a | b >- out | dst with unequal branch costs: the IGP prefers
// via a; failing link in-a forces the b detour.
struct FailoverWorld {
  topo::Topology topology;
  std::unique_ptr<mpls::MplsConfigMap> configs;
  std::unique_ptr<sim::Network> network;
  netbase::Ipv4Address vp;
  RouterId gw, in, a, b, out, dst;
  topo::LinkId in_a = topo::kNoLink;

  explicit FailoverWorld(bool invisible) {
    topology.AddAs(1, "src");
    topology.AddAs(2, "mpls");
    topology.AddAs(3, "dst");
    gw = topology.AddRouter(1, "gw", Vendor::kCiscoIos);
    in = topology.AddRouter(2, "in", Vendor::kCiscoIos);
    a = topology.AddRouter(2, "a", Vendor::kCiscoIos);
    b = topology.AddRouter(2, "b", Vendor::kCiscoIos);
    out = topology.AddRouter(2, "out", Vendor::kCiscoIos);
    dst = topology.AddRouter(3, "dst", Vendor::kCiscoIos);
    topology.AddLink(gw, in);
    in_a = topology.AddLink(in, a);
    topology.AddLink(a, out);
    topology.AddLink(in, b, {.igp_metric = 5});
    topology.AddLink(b, out, {.igp_metric = 5});
    topology.AddLink(out, dst);
    vp = topology.AttachHost(gw, "VP");
    configs = std::make_unique<mpls::MplsConfigMap>(topology);
    configs->EnableAs(2, {.ttl_propagate = !invisible});
    Converge();
  }

  void Converge() {
    network = std::make_unique<sim::Network>(
        topology, *configs, routing::BgpPolicy{.stub_ases = {1, 3}});
  }

  std::vector<std::string> Path(netbase::Ipv4Address target) {
    probe::Prober prober(network->engine(), vp);
    std::vector<std::string> names;
    for (const auto& hop : prober.Traceroute(target).hops) {
      if (hop.address) {
        names.push_back(
            topology.router(*topology.FindRouterByAddress(*hop.address))
                .name);
      }
    }
    return names;
  }
};

TEST(LinkFailure, ReconvergenceReroutesAroundTheFailure) {
  FailoverWorld world(/*invisible=*/false);
  const auto target = world.topology.router(world.dst).loopback;
  EXPECT_EQ(world.Path(target),
            (std::vector<std::string>{"gw", "in", "a", "out", "dst"}));

  world.topology.SetLinkUp(world.in_a, false);
  world.Converge();
  EXPECT_EQ(world.Path(target),
            (std::vector<std::string>{"gw", "in", "b", "out", "dst"}));

  world.topology.SetLinkUp(world.in_a, true);
  world.Converge();
  EXPECT_EQ(world.Path(target),
            (std::vector<std::string>{"gw", "in", "a", "out", "dst"}));
}

TEST(LinkFailure, InvisibleTunnelHidesTheReroute) {
  // With the cloud invisible, the observable path is identical before and
  // after the interior failure — the Al-Qudah effect: MPLS makes paths
  // look stable even when the LSP reroutes underneath.
  FailoverWorld world(/*invisible=*/true);
  const auto target = world.topology.router(world.dst).loopback;
  const auto before = world.Path(target);
  EXPECT_EQ(before, (std::vector<std::string>{"gw", "in", "out", "dst"}));

  world.topology.SetLinkUp(world.in_a, false);
  world.Converge();
  EXPECT_EQ(world.Path(target), before);  // identical observable path

  // But revelation tells the truth: the hidden hop changed from a to b.
  // As in the real methodology, the candidate endpoints come from the
  // trace itself (the egress responds from its *current* incoming
  // interface).
  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace = prober.Traceroute(target);
  const auto last3 = trace.LastResponders(3);
  ASSERT_EQ(last3.size(), 3u);
  reveal::Revelator revelator(prober);
  const auto result = revelator.Reveal(last3[0], last3[1]);
  ASSERT_TRUE(result.succeeded());
  ASSERT_EQ(result.revealed.size(), 1u);
  EXPECT_EQ(world.topology.FindRouterByAddress(result.revealed[0]),
            std::optional<RouterId>(world.b));
}

TEST(LinkFailure, DownEbgpLinkShiftsToAnotherProvider) {
  // Two providers; failing the primary eBGP link must reroute the AS-level
  // path without black-holing.
  topo::Topology topology;
  topology.AddAs(1, "stub");
  topology.AddAs(2, "provider-a");
  topology.AddAs(3, "provider-b");
  topology.AddAs(4, "dst");
  const auto s = topology.AddRouter(1, "s", Vendor::kCiscoIos);
  const auto pa = topology.AddRouter(2, "pa", Vendor::kCiscoIos);
  const auto pb = topology.AddRouter(3, "pb", Vendor::kCiscoIos);
  const auto d = topology.AddRouter(4, "d", Vendor::kCiscoIos);
  const auto primary = topology.AddLink(s, pa);
  topology.AddLink(s, pb);
  topology.AddLink(pa, d);
  topology.AddLink(pb, d);
  const auto vp = topology.AttachHost(s, "VP");
  mpls::MplsConfigMap configs(topology);
  routing::BgpPolicy policy{.stub_ases = {1, 4}};

  sim::Network before(topology, configs, policy);
  probe::Prober prober_before(before.engine(), vp);
  ASSERT_TRUE(
      prober_before.Traceroute(topology.router(d).loopback).reached);

  topology.SetLinkUp(primary, false);
  sim::Network after(topology, configs, policy);
  probe::Prober prober_after(after.engine(), vp);
  const auto trace = prober_after.Traceroute(topology.router(d).loopback);
  ASSERT_TRUE(trace.reached);
  // The path now runs via provider B.
  bool via_b = false;
  for (const auto& hop : trace.hops) {
    if (hop.address &&
        topology.FindRouterByAddress(*hop.address) == pb) {
      via_b = true;
    }
  }
  EXPECT_TRUE(via_b);
}

TEST(LinkFailure, IsolatedRouterBecomesUnreachable) {
  FailoverWorld world(/*invisible=*/false);
  // Cut both of a's links: it vanishes from the IGP and stops answering.
  world.topology.SetLinkUp(world.in_a, false);
  for (const auto& [neighbor, link] : world.topology.Neighbors(world.a)) {
    world.topology.SetLinkUp(link, false);
  }
  world.Converge();
  probe::Prober prober(world.network->engine(), world.vp);
  const auto ping = prober.Ping(world.topology.router(world.a).loopback);
  EXPECT_FALSE(ping.responded);
  // The rest of the AS still works.
  EXPECT_TRUE(
      prober.Ping(world.topology.router(world.out).loopback).responded);
}

}  // namespace
}  // namespace wormhole
