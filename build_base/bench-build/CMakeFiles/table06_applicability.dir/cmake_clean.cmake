file(REMOVE_RECURSE
  "../bench/table06_applicability"
  "../bench/table06_applicability.pdb"
  "CMakeFiles/table06_applicability.dir/table06_applicability.cpp.o"
  "CMakeFiles/table06_applicability.dir/table06_applicability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_applicability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
