# Empty dependencies file for test_golden_campaign.
# This may be replaced when dependencies are built.
