#include <gtest/gtest.h>

#include <sstream>

#include "topo/itdk.h"
#include "topo/topology.h"

namespace wormhole::topo {
namespace {

Topology TwoAsChain() {
  // AS1: a - b; AS2: c; link b-c is inter-AS.
  Topology t;
  t.AddAs(1, "one");
  t.AddAs(2, "two");
  t.AddRouter(1, "a", Vendor::kCiscoIos);
  t.AddRouter(1, "b", Vendor::kJuniperJunos);
  t.AddRouter(2, "c", Vendor::kCiscoIos);
  t.AddLink(0, 1);
  t.AddLink(1, 2);
  return t;
}

TEST(Topology, AllocatesDisjointBlocksPerAs) {
  const Topology t = TwoAsChain();
  const Prefix b1 = t.as(1).block;
  const Prefix b2 = t.as(2).block;
  EXPECT_EQ(b1.length(), 16);
  EXPECT_FALSE(b1.Contains(b2));
  EXPECT_FALSE(b2.Contains(b1));
}

TEST(Topology, LoopbacksAndInterfacesAreAddressable) {
  const Topology t = TwoAsChain();
  const Router& a = t.router(0);
  EXPECT_TRUE(t.as(1).block.Contains(a.loopback));
  EXPECT_EQ(t.FindRouterByAddress(a.loopback), std::optional<RouterId>(0));
  for (const InterfaceId iid : a.interfaces) {
    EXPECT_EQ(t.FindRouterByAddress(t.interface(iid).address),
              std::optional<RouterId>(0));
  }
}

TEST(Topology, RejectsDuplicateAsAndRouterNames) {
  Topology t;
  t.AddAs(1, "one");
  EXPECT_THROW(t.AddAs(1, "again"), std::invalid_argument);
  t.AddRouter(1, "a", Vendor::kCiscoIos);
  EXPECT_THROW(t.AddRouter(1, "a", Vendor::kCiscoIos),
               std::invalid_argument);
  EXPECT_THROW(t.AddRouter(9, "b", Vendor::kCiscoIos),
               std::invalid_argument);
}

TEST(Topology, RejectsSelfLoops) {
  Topology t;
  t.AddAs(1, "one");
  t.AddRouter(1, "a", Vendor::kCiscoIos);
  EXPECT_THROW(t.AddLink(0, 0), std::invalid_argument);
}

TEST(Topology, LinkEndsAndNeighbors) {
  const Topology t = TwoAsChain();
  const RouterId a = 0, b = 1, c = 2;
  EXPECT_EQ(t.Neighbor(0, a), b);
  EXPECT_EQ(t.Neighbor(0, b), a);
  EXPECT_EQ(t.EndOn(0, a).router, a);
  EXPECT_EQ(t.OtherEnd(0, a).router, b);
  const auto neighbors_b = t.Neighbors(b);
  ASSERT_EQ(neighbors_b.size(), 2u);
  EXPECT_THROW((void)t.EndOn(0, c), std::invalid_argument);
}

TEST(Topology, InternalLinkDetection) {
  const Topology t = TwoAsChain();
  EXPECT_TRUE(t.IsInternalLink(0));   // a-b inside AS1
  EXPECT_FALSE(t.IsInternalLink(1));  // b-c crosses
}

TEST(Topology, InternalPrefixesExcludeInterAsSubnets) {
  const Topology t = TwoAsChain();
  const auto prefixes = t.InternalPrefixes(1);
  // Two loopbacks + one internal /31.
  EXPECT_EQ(prefixes.size(), 3u);
  const Prefix inter_as = t.link(1).subnet;
  for (const Prefix& p : prefixes) EXPECT_NE(p, inter_as);
}

TEST(Topology, HostsAttachBehindGateways) {
  Topology t = TwoAsChain();
  const Ipv4Address vp = t.AttachHost(0, "VP");
  const Host* host = t.FindHost(vp);
  ASSERT_NE(host, nullptr);
  EXPECT_EQ(host->gateway, 0u);
  // The gateway side of the stub is the even twin of the host address.
  const Interface& stub = t.interface(host->stub_interface);
  EXPECT_EQ(stub.address.value() + 1, vp.value());
  EXPECT_TRUE(stub.subnet.Contains(vp));
  // The stub does not create a router adjacency.
  EXPECT_EQ(t.Neighbors(0).size(), 1u);
}

TEST(Topology, ConnectedPrefixesCoverLoopbackLinksAndStubs) {
  Topology t = TwoAsChain();
  t.AttachHost(0, "VP");
  const auto prefixes = t.ConnectedPrefixes(0);
  // loopback + link a-b + host stub
  EXPECT_EQ(prefixes.size(), 3u);
}

TEST(ItdkDataset, NodesAliasesLinks) {
  ItdkDataset d;
  const NodeId n1 = d.NodeOf(Ipv4Address(5, 0, 0, 1));
  const NodeId n2 = d.NodeOf(Ipv4Address(5, 0, 0, 2));
  EXPECT_NE(n1, n2);
  d.AddAlias(n1, Ipv4Address(5, 0, 0, 3));
  EXPECT_EQ(d.NodeOf(Ipv4Address(5, 0, 0, 3)), n1);
  EXPECT_THROW(d.AddAlias(n2, Ipv4Address(5, 0, 0, 3)), std::logic_error);

  d.AddLink(n1, n2);
  d.AddLink(n2, n1);  // idempotent
  d.AddLink(n1, n1);  // ignored
  EXPECT_EQ(d.link_count(), 1u);
  EXPECT_EQ(d.Degree(n1), 1u);
  EXPECT_TRUE(d.HasLink(n1, n2));
  d.RemoveLink(n1, n2);
  EXPECT_FALSE(d.HasLink(n1, n2));
  EXPECT_EQ(d.Degree(n1), 0u);
}

TEST(ItdkDataset, DegreeDistributionAndHdns) {
  ItdkDataset d;
  // A star: hub with 5 spokes.
  const NodeId hub = d.NodeOf(Ipv4Address(5, 0, 0, 1));
  for (int i = 2; i <= 6; ++i) {
    d.AddLink(hub, d.NodeOf(Ipv4Address(5, 0, 0, static_cast<uint8_t>(i))));
  }
  const auto dist = d.DegreeDistribution();
  EXPECT_EQ(dist.CountOf(5), 1u);
  EXPECT_EQ(dist.CountOf(1), 5u);
  const auto hdns = d.HighDegreeNodes(5);
  ASSERT_EQ(hdns.size(), 1u);
  EXPECT_EQ(hdns[0], hub);
}

TEST(ItdkDataset, DensityOfSubset) {
  ItdkDataset d;
  const NodeId a = d.NodeOf(Ipv4Address(5, 0, 0, 1));
  const NodeId b = d.NodeOf(Ipv4Address(5, 0, 0, 2));
  const NodeId c = d.NodeOf(Ipv4Address(5, 0, 0, 3));
  d.AddLink(a, b);
  d.AddLink(b, c);
  d.AddLink(a, c);
  EXPECT_DOUBLE_EQ(d.Density({a, b, c}), 1.0);
  d.RemoveLink(a, c);
  EXPECT_DOUBLE_EQ(d.Density({a, b, c}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(d.Density({a}), 0.0);
}

TEST(ItdkDataset, SerializationRoundTrip) {
  ItdkDataset d;
  const NodeId a = d.NodeOf(Ipv4Address(5, 0, 0, 1));
  d.AddAlias(a, Ipv4Address(5, 0, 0, 9));
  const NodeId b = d.NodeOf(Ipv4Address(5, 1, 0, 1));
  d.AddLink(a, b);
  d.SetAs(a, 65001);
  d.SetAs(b, 65002);

  std::stringstream ss;
  d.Write(ss);
  const ItdkDataset back = ItdkDataset::Read(ss);
  EXPECT_EQ(back.node_count(), 2u);
  EXPECT_EQ(back.link_count(), 1u);
  const auto fa = back.FindNode(Ipv4Address(5, 0, 0, 9));
  ASSERT_TRUE(fa.has_value());
  EXPECT_EQ(back.node(*fa).asn, 65001u);
}

TEST(GroundTruthDataset, MatchesTopology) {
  Topology t = TwoAsChain();
  const ItdkDataset d = GroundTruthDataset(t);
  EXPECT_EQ(d.node_count(), t.router_count());
  EXPECT_EQ(d.link_count(), t.link_count());
  // Interface addresses alias to their router's node.
  const auto n0 = d.FindNode(t.router(0).loopback);
  ASSERT_TRUE(n0.has_value());
  for (const InterfaceId iid : t.router(0).interfaces) {
    EXPECT_EQ(d.FindNode(t.interface(iid).address), n0);
  }
  EXPECT_EQ(d.node(*n0).asn, 1u);
}

}  // namespace
}  // namespace wormhole::topo
