file(REMOVE_RECURSE
  "CMakeFiles/wormhole_exec.dir/thread_pool.cpp.o"
  "CMakeFiles/wormhole_exec.dir/thread_pool.cpp.o.d"
  "libwormhole_exec.a"
  "libwormhole_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
