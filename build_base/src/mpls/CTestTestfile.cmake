# CMake generated Testfile for 
# Source directory: /root/repo/src/mpls
# Build directory: /root/repo/build_base/src/mpls
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
