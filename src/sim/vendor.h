// Vendor data-plane behaviours relevant to TTL fingerprinting (paper
// Table 1): the initial TTL a router uses when originating each kind of
// ICMP message.
#pragma once

#include "topo/topology.h"

namespace wormhole::sim {

struct VendorBehavior {
  /// Initial IP-TTL of ICMP time-exceeded (and destination-unreachable).
  int initial_ttl_time_exceeded = 255;
  /// Initial IP-TTL of ICMP echo-reply.
  int initial_ttl_echo_reply = 255;
};

/// Table 1: Cisco <255,255>, Juniper Junos <255,64>, JunosE <128,128>,
/// Brocade/Linux <64,64>.
VendorBehavior BehaviorOf(topo::Vendor vendor);

/// Initial TTL used by end hosts answering pings (Linux-like).
constexpr int kHostEchoReplyTtl = 64;

}  // namespace wormhole::sim
