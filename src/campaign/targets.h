// HDN-driven target selection (paper Sec. 4): from the (inferred) dataset,
// take nodes of degree >= threshold as High Degree Nodes; set A is their
// neighbors, set B the neighbors of neighbors — probing A ∪ B simulates
// transit traffic traversing the suspicious ASes end to end.
#pragma once

#include <span>
#include <vector>

#include "topo/itdk.h"

namespace wormhole::campaign {

struct TargetSets {
  std::vector<topo::NodeId> hdns;
  /// One address per HDN neighbor node.
  std::vector<netbase::Ipv4Address> set_a;
  /// One address per neighbor-of-neighbor node (excluding set A nodes).
  std::vector<netbase::Ipv4Address> set_b;
  /// A ∪ B, deduplicated.
  std::vector<netbase::Ipv4Address> all;
};

TargetSets SelectTargets(const topo::ItdkDataset& dataset,
                         std::size_t hdn_threshold);

/// Splits `targets` into `shards` consistent subsets (the paper's five VP
/// teams probed disjoint destination sets).
std::vector<std::vector<netbase::Ipv4Address>> ShardTargets(
    const std::vector<netbase::Ipv4Address>& targets, std::size_t shards);

/// The streaming campaign's target stream: consecutive fixed-size shards
/// of `shard_size` targets (the final shard may be shorter). The views
/// point into `targets`, which must outlive them. `shard_size` 0 yields
/// a single whole-run shard. Shard boundaries never reorder targets, so
/// the trace stream — and every reduce consuming it — is identical at
/// any shard size.
std::vector<std::span<const netbase::Ipv4Address>> FixedShards(
    const std::vector<netbase::Ipv4Address>& targets, std::size_t shard_size);

}  // namespace wormhole::campaign
