#include "mpls/rsvp_te.h"

#include <stdexcept>

#include "netbase/contracts.h"

namespace wormhole::mpls {

namespace {

topo::LinkId LinkBetween(const topo::Topology& topology, topo::RouterId a,
                         topo::RouterId b) {
  for (const auto& [neighbor, link] : topology.Neighbors(a)) {
    if (neighbor == b) return link;
  }
  throw std::invalid_argument("TE path hop " + topology.router(a).name +
                              " -> " + topology.router(b).name +
                              " is not a physical adjacency");
}

}  // namespace

std::size_t TeDatabase::AddTunnel(const topo::Topology& topology,
                                  const TeTunnelSpec& spec) {
  if (spec.path.size() < 2) {
    throw std::invalid_argument("TE path needs at least ingress and egress");
  }
  const topo::AsNumber asn = topology.router(spec.path.front()).asn;
  for (const topo::RouterId rid : spec.path) {
    if (topology.router(rid).asn != asn) {
      throw std::invalid_argument("TE path crosses AS boundaries");
    }
  }
  // Validate the whole ERO up front so a bad spec cannot leave partial
  // forwarding state behind.
  for (std::size_t i = 0; i + 1 < spec.path.size(); ++i) {
    (void)LinkBetween(topology, spec.path[i], spec.path[i + 1]);
  }

  // Per-hop labels: label[i] carries the packet from path[i] to path[i+1].
  // Under PHP the penultimate hop pops; under UHP it swaps to explicit
  // null. A two-router tunnel under PHP degenerates to unlabelled
  // forwarding (pop at push).
  const std::size_t hops = spec.path.size() - 1;
  std::vector<std::uint32_t> labels(hops, 0);
  for (std::size_t i = 0; i < hops; ++i) labels[i] = next_label_++;
  // TE labels live in [kTeLabelBase, SRGB base): overflowing the 20-bit
  // space would alias LDP or SR labels in the shared ResolveLabel switch.
  WORMHOLE_ASSERT(next_label_ - 1 <= netbase::kMaxLabel,
                  "RSVP-TE label space overflow");

  for (std::size_t i = 1; i < hops; ++i) {
    const topo::RouterId router = spec.path[i];
    const topo::RouterId next = spec.path[i + 1];
    TeLabelOp op;
    op.link = LinkBetween(topology, router, next);
    op.next = next;
    if (i + 1 == spec.path.size() - 1) {
      // Penultimate hop.
      op.kind = spec.popping == Popping::kUhp
                    ? TeLabelOp::Kind::kSwapExplicitNull
                    : TeLabelOp::Kind::kPop;
    } else {
      op.kind = TeLabelOp::Kind::kSwap;
      op.out_label = labels[i];
    }
    label_ops_[router].emplace(labels[i - 1], op);
  }

  // Steering at the ingress.
  const topo::RouterId ingress = spec.path.front();
  const topo::RouterId first_hop = spec.path[1];
  for (const netbase::Prefix& prefix : spec.steered_prefixes) {
    TeSteering steering;
    steering.prefix = prefix;
    steering.link = LinkBetween(topology, ingress, first_hop);
    steering.next = first_hop;
    if (hops == 1) {
      // One-hop tunnel: PHP pops at push; UHP still imposes explicit null.
      if (spec.popping == Popping::kUhp) {
        steering.label = static_cast<std::uint32_t>(
            netbase::ReservedLabel::kIpv4ExplicitNull);
      } else {
        steering.labeled = false;
      }
    } else {
      steering.label = labels[0];
    }
    steering_[ingress].push_back(steering);
  }
  return tunnels_++;
}

std::optional<TeLabelOp> TeDatabase::OpFor(topo::RouterId router,
                                           std::uint32_t label) const {
  const auto router_it = label_ops_.find(router);
  if (router_it == label_ops_.end()) return std::nullopt;
  const auto it = router_it->second.find(label);
  if (it == router_it->second.end()) return std::nullopt;
  return it->second;
}

const TeSteering* TeDatabase::SteeringFor(topo::RouterId router,
                                          netbase::Ipv4Address dst) const {
  const auto it = steering_.find(router);
  if (it == steering_.end()) return nullptr;
  const TeSteering* best = nullptr;
  for (const TeSteering& steering : it->second) {
    if (!steering.prefix.Contains(dst)) continue;
    if (best == nullptr ||
        steering.prefix.length() > best->prefix.length()) {
      best = &steering;
    }
  }
  return best;
}

}  // namespace wormhole::mpls
