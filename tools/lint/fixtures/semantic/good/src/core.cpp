// sem-unordered-flow fixture, clean counterpart: the helper copies the
// unordered map into a sorted sequence before anything iterates it on
// the way to a report.
#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fix {

class Core {
 public:
  int DumpTable(int base) {
    std::vector<std::pair<int, int>> sorted(table_.begin(), table_.end());
    std::sort(sorted.begin(), sorted.end());
    int sum = base;
    for (const auto& kv : sorted) {  // deterministic order
      sum += kv.second;
    }
    return sum;
  }

 private:
  std::unordered_map<int, int> table_;
};

int ReportHelper(Core& core) { return core.DumpTable(0); }

}  // namespace fix
