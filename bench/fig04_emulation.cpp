// Fig. 4: the GNS3 emulation outputs, byte-for-byte. This bench *asserts*
// the per-hop addresses and return TTLs of all four configuration
// scenarios and exits non-zero on any mismatch — it is the calibration
// proof for the whole data plane.
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "gen/gns3.h"
#include "probe/prober.h"

namespace {

using namespace wormhole;

struct Expected {
  const char* name;
  int ttl;
};

int failures = 0;

void Check(gen::Gns3Testbed& testbed, const char* target,
           const std::vector<Expected>& expected) {
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto trace = prober.Traceroute(testbed.Address(target));
  std::cout << trace.Format(
      [&](netbase::Ipv4Address a) { return testbed.NameOf(a); });
  if (trace.hops.size() != expected.size()) {
    std::cout << "  MISMATCH: expected " << expected.size() << " hops\n";
    ++failures;
    return;
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto& hop = trace.hops[i];
    if (!hop.address ||
        testbed.NameOf(*hop.address) != expected[i].name ||
        hop.reply_ip_ttl != expected[i].ttl) {
      std::cout << "  MISMATCH at hop " << i + 1 << ": expected "
                << expected[i].name << " [" << expected[i].ttl << "]\n";
      ++failures;
    }
  }
}

}  // namespace

int main() {
  bench::PrintHeader("GNS3 emulation, four scenarios (exact hop/TTL match)",
                     "Fig. 4a-4d");
  {
    std::cout << "--- (a) Default configuration: explicit tunnel ---\n";
    gen::Gns3Testbed t({.scenario = gen::Gns3Scenario::kDefault});
    Check(t, "CE2.left",
          {{"CE1.left", 255},
           {"PE1.left", 254},
           {"P1.left", 247},
           {"P2.left", 248},
           {"P3.left", 251},
           {"PE2.left", 250},
           {"CE2.left", 249}});
  }
  {
    std::cout << "--- (b) Backward Recursive: BRPR, hop by hop ---\n";
    gen::Gns3Testbed t({.scenario = gen::Gns3Scenario::kBackwardRecursive});
    Check(t, "CE2.left", {{"CE1.left", 255},
                          {"PE1.left", 254},
                          {"PE2.left", 250},
                          {"CE2.left", 250}});
    Check(t, "PE2.left", {{"CE1.left", 255},
                          {"PE1.left", 254},
                          {"P3.left", 251},
                          {"PE2.left", 250}});
    Check(t, "P3.left", {{"CE1.left", 255},
                         {"PE1.left", 254},
                         {"P2.left", 252},
                         {"P3.left", 251}});
    Check(t, "P2.left", {{"CE1.left", 255},
                         {"PE1.left", 254},
                         {"P1.left", 253},
                         {"P2.left", 252}});
    Check(t, "P1.left",
          {{"CE1.left", 255}, {"PE1.left", 254}, {"P1.left", 253}});
  }
  {
    std::cout << "--- (c) Explicit Route: DPR, one probe ---\n";
    gen::Gns3Testbed t({.scenario = gen::Gns3Scenario::kExplicitRoute});
    Check(t, "CE2.left", {{"CE1.left", 255},
                          {"PE1.left", 254},
                          {"PE2.left", 250},
                          {"CE2.left", 250}});
    Check(t, "PE2.left", {{"CE1.left", 255},
                          {"PE1.left", 254},
                          {"P1.left", 253},
                          {"P2.left", 252},
                          {"P3.left", 251},
                          {"PE2.left", 250}});
  }
  {
    std::cout << "--- (d) Totally Invisible: UHP ---\n";
    gen::Gns3Testbed t({.scenario = gen::Gns3Scenario::kTotallyInvisible});
    Check(t, "CE2.left",
          {{"CE1.left", 255}, {"PE1.left", 254}, {"CE2.left", 252}});
    Check(t, "PE2.left",
          {{"CE1.left", 255}, {"PE1.left", 254}, {"PE2.left", 253}});
  }
  if (failures == 0) {
    std::cout << "\nALL Fig. 4 outputs reproduced exactly.\n";
    return 0;
  }
  std::cout << "\n" << failures << " MISMATCHES against Fig. 4.\n";
  return 1;
}
