// sem-hot-alloc fixture: the allocation is two calls below the entry
// point, so a line-oriented scanner scoped to Send's file would miss it.
#include <vector>

namespace fix {

class Engine {
 public:
  int Send(int packet);

 private:
  int Step(int value);
  int Classify(int value);
  int ColdRebuild(int value);
};

int Engine::Send(int packet) {
  return Step(packet) + ColdRebuild(packet);
}

// Reachable from Send but listed in hot_alloc_exempt: the documented
// cold path (a lazy one-time rebuild) may allocate.
int Engine::ColdRebuild(int value) {
  std::vector<int> table(8, value);
  return static_cast<int>(table.size());
}

int Engine::Step(int value) { return Classify(value + 1); }

int Engine::Classify(int value) {
  int* scratch = new int[8];  // BAD: allocation on the per-packet path
  scratch[0] = value;
  std::vector<int> hops;  // BAD: owning-container local on the hot path
  hops.push_back(value);
  int out = scratch[0] + static_cast<int>(hops.size());
  delete[] scratch;
  return out;
}

}  // namespace fix
