# Empty dependencies file for test_link_failure.
# This may be replaced when dependencies are built.
