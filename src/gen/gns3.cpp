#include "gen/gns3.h"

#include <array>
#include <stdexcept>

namespace wormhole::gen {

namespace {

using topo::RouterId;
using topo::Vendor;

}  // namespace

const char* ToString(Gns3Scenario scenario) {
  switch (scenario) {
    case Gns3Scenario::kDefault: return "Default";
    case Gns3Scenario::kBackwardRecursive: return "Backward Recursive";
    case Gns3Scenario::kExplicitRoute: return "Explicit Route";
    case Gns3Scenario::kTotallyInvisible: return "Totally Invisible";
  }
  return "?";
}

Gns3Testbed::Gns3Testbed(const Gns3Options& options) : configs_(topology_) {
  topology_.AddAs(1, "AS1");
  topology_.AddAs(2, "AS2");
  topology_.AddAs(3, "AS3");

  const RouterId ce1 = topology_.AddRouter(1, "CE1", Vendor::kCiscoIos);
  const RouterId pe1 = topology_.AddRouter(2, "PE1", options.as2_vendor);
  const RouterId p1 = topology_.AddRouter(2, "P1", options.as2_vendor);
  const RouterId p2 = topology_.AddRouter(2, "P2", options.as2_vendor);
  const RouterId p3 = topology_.AddRouter(2, "P3", options.as2_vendor);
  const RouterId pe2 = topology_.AddRouter(2, "PE2", options.as2_vendor);
  const RouterId ce2 = topology_.AddRouter(3, "CE2", Vendor::kCiscoIos);

  vp_ = topology_.AttachHost(ce1, "VP");
  topology_.RenameInterface(topology_.FindHost(vp_)->stub_interface,
                            "CE1.left");

  const std::array<RouterId, 7> chain{ce1, pe1, p1, p2, p3, pe2, ce2};
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const topo::LinkId link = topology_.AddLink(chain[i], chain[i + 1]);
    topology_.RenameInterface(
        topology_.EndOn(link, chain[i]).id,
        topology_.router(chain[i]).name + ".right");
    topology_.RenameInterface(
        topology_.EndOn(link, chain[i + 1]).id,
        topology_.router(chain[i + 1]).name + ".left");
  }

  mpls::MplsConfigMap::AsOptions as2;
  switch (options.scenario) {
    case Gns3Scenario::kDefault:
      as2.ttl_propagate = true;
      as2.ldp_policy = mpls::LdpPolicy::kAllPrefixes;
      break;
    case Gns3Scenario::kBackwardRecursive:
      as2.ttl_propagate = false;
      as2.ldp_policy = mpls::LdpPolicy::kAllPrefixes;
      break;
    case Gns3Scenario::kExplicitRoute:
      as2.ttl_propagate = false;
      as2.ldp_policy = mpls::LdpPolicy::kLoopbacksOnly;
      break;
    case Gns3Scenario::kTotallyInvisible:
      as2.ttl_propagate = false;
      as2.popping = mpls::Popping::kUhp;
      as2.ldp_policy = mpls::LdpPolicy::kAllPrefixes;
      break;
  }
  configs_.EnableAs(2, as2);

  Reconverge();
}

void Gns3Testbed::Reconverge() {
  routing::BgpPolicy policy;
  policy.stub_ases = {1, 3};
  network_ = std::make_unique<sim::Network>(topology_, configs_, policy);
}

netbase::Ipv4Address Gns3Testbed::Address(const std::string& name) const {
  if (name == "VP") return vp_;
  for (const topo::Interface& iface : topology_.interfaces()) {
    if (iface.name == name) return iface.address;
  }
  // Router name or "<router>.lo": the loopback.
  std::string router_name = name;
  if (const auto dot = name.rfind(".lo");
      dot != std::string::npos && dot + 3 == name.size()) {
    router_name = name.substr(0, dot);
  }
  if (const auto rid = topology_.FindRouterByName(router_name)) {
    return topology_.router(*rid).loopback;
  }
  throw std::invalid_argument("Gns3Testbed: unknown name " + name);
}

std::string Gns3Testbed::NameOf(netbase::Ipv4Address address) const {
  if (address == vp_) return "VP";
  if (const auto iid = topology_.FindInterfaceByAddress(address)) {
    return topology_.interface(*iid).name;
  }
  if (const auto rid = topology_.FindRouterByAddress(address)) {
    return topology_.router(*rid).name + ".lo";
  }
  return address.ToString();
}

}  // namespace wormhole::gen
