file(REMOVE_RECURSE
  "../bench/perf_micro"
  "../bench/perf_micro.pdb"
  "CMakeFiles/perf_micro.dir/perf_micro.cpp.o"
  "CMakeFiles/perf_micro.dir/perf_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
