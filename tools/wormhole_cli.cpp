// wormhole — command-line frontend to the library.
//
//   wormhole emulate <default|brpr|dpr|uhp>   Fig. 4-style testbed traces
//   wormhole configs <default|brpr|dpr|uhp>   router configs for a scenario
//   wormhole campaign [seed] [tracefile]      full measurement campaign
//   wormhole crossval [seed]                  Table-3 cross-validation
//   wormhole replay <tracefile>               analyse a persisted tracefile
//
// --jobs N spreads campaign probing over N worker threads (default: the
// hardware concurrency); the results are identical for every N.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/campaign_report.h"
#include "analysis/correct.h"
#include "analysis/metrics.h"
#include "analysis/report.h"
#include "analysis/tables.h"
#include "campaign/campaign.h"
#include "campaign/crossval.h"
#include "gen/gns3.h"
#include "gen/internet.h"
#include "gen/router_config.h"
#include "io/tracefile.h"
#include "probe/prober.h"

namespace {

using namespace wormhole;

int Usage() {
  std::cerr <<
      "usage:\n"
      "  wormhole emulate <default|brpr|dpr|uhp>\n"
      "  wormhole configs <default|brpr|dpr|uhp>\n"
      "  wormhole campaign [--jobs N] [seed] [tracefile.out]\n"
      "  wormhole report [--jobs N] [seed] [outdir]\n"
      "  wormhole crossval [seed]\n"
      "  wormhole replay <tracefile>\n"
      "\n"
      "  --jobs N   worker threads for campaign probing\n"
      "             (0 or omitted: hardware concurrency)\n";
  return 2;
}

/// Strips `--jobs N` / `--jobs=N` from `args` and returns N (0 = default).
std::size_t ExtractJobs(std::vector<std::string>& args) {
  std::size_t jobs = 0;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--jobs" && i + 1 < args.size()) {
      jobs = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i].rfind("--jobs=", 0) == 0) {
      jobs = std::strtoull(args[i].c_str() + 7, nullptr, 10);
    } else {
      rest.push_back(args[i]);
    }
  }
  args = std::move(rest);
  return jobs;
}

std::optional<gen::Gns3Scenario> ParseScenario(const std::string& name) {
  if (name == "default") return gen::Gns3Scenario::kDefault;
  if (name == "brpr") return gen::Gns3Scenario::kBackwardRecursive;
  if (name == "dpr") return gen::Gns3Scenario::kExplicitRoute;
  if (name == "uhp") return gen::Gns3Scenario::kTotallyInvisible;
  return std::nullopt;
}

int Emulate(const std::string& scenario_name) {
  const auto scenario = ParseScenario(scenario_name);
  if (!scenario) return Usage();
  gen::Gns3Testbed testbed({.scenario = *scenario});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  std::cout << "=== " << ToString(*scenario) << " ===\n";
  for (const char* target : {"CE2.left", "PE2.left"}) {
    std::cout << prober.Traceroute(testbed.Address(target))
                     .Format([&](netbase::Ipv4Address a) {
                       return testbed.NameOf(a);
                     })
              << "\n";
  }
  return 0;
}

int Configs(const std::string& scenario_name) {
  const auto scenario = ParseScenario(scenario_name);
  if (!scenario) return Usage();
  gen::Gns3Testbed testbed({.scenario = *scenario});
  std::cout << gen::TestbedConfigs(testbed.topology(), testbed.configs());
  return 0;
}

int RunCampaign(std::uint64_t seed, const std::string& tracefile,
                std::size_t jobs) {
  gen::SyntheticInternet net({.seed = seed});
  std::cout << "world: " << net.profiles().size() << " ASes, "
            << net.topology().router_count() << " routers\n";
  campaign::Campaign campaign(net.engine(), net.vantage_points(),
                              {.jobs = jobs});
  std::cout << "probing with " << campaign.jobs() << " worker thread(s)\n";
  const auto result = campaign.Run(net.AllLoopbacks());
  std::cout << "campaign: " << result.probes_sent << " probes, "
            << result.revelations.size() << " candidate pairs, "
            << result.revealed_count() << " tunnels revealed\n\n";

  const auto corrected = analysis::CorrectedCopy(
      result.inferred, result.revelations,
      campaign::TruthResolver(net.topology()), net.topology());
  analysis::TextTable table({"AS", "pairs", "%rev", "LSR IPs", "density",
                             "->"});
  for (const auto& row : analysis::MakeDiscoveryTable(
           result, corrected, net.topology(), 8)) {
    table.AddRow({"AS" + std::to_string(row.asn),
                  analysis::TextTable::Num(row.ie_pairs),
                  analysis::TextTable::Pct(row.pct_revealed, 0),
                  analysis::TextTable::Num(row.lsr_ips),
                  analysis::TextTable::Real(row.density_before, 2),
                  analysis::TextTable::Real(row.density_after, 2)});
  }
  std::cout << table.ToString();

  std::cout << "\ngraph: degree max "
            << result.inferred.DegreeDistribution().Max() << " -> "
            << corrected.DegreeDistribution().Max()
            << ", clustering "
            << analysis::TextTable::Real(
                   analysis::AverageClustering(result.inferred), 3)
            << " -> "
            << analysis::TextTable::Real(
                   analysis::AverageClustering(corrected), 3)
            << "\n";
  if (!tracefile.empty()) {
    std::ofstream out(tracefile);
    io::WriteTraces(out, result.traces);
    std::cout << "wrote " << result.traces.size() << " traces to "
              << tracefile << "\n";
  }
  return 0;
}

int RunReport(std::uint64_t seed, const std::string& directory,
              std::size_t jobs) {
  gen::SyntheticInternet net({.seed = seed});
  campaign::Campaign campaign(net.engine(), net.vantage_points(),
                              {.jobs = jobs});
  const auto result = campaign.Run(net.AllLoopbacks());
  const auto path = analysis::WriteCampaignArtifacts(directory, result,
                                                     net.topology());
  std::cout << "wrote " << path << " plus CSV series to " << directory
            << "\n";
  return 0;
}

int RunCrossval(std::uint64_t seed) {
  gen::SyntheticInternet net({.seed = seed});
  net.ForceTtlPropagation(true);
  std::vector<probe::Prober> probers;
  for (const auto vp : net.vantage_points()) {
    probers.emplace_back(net.engine(), vp);
  }
  std::vector<probe::TraceResult> traces;
  for (auto& prober : probers) {
    for (const auto loopback : net.AllLoopbacks()) {
      traces.push_back(prober.Traceroute(loopback, {.first_ttl = 2}));
    }
  }
  const auto tunnels =
      campaign::ExtractExplicitTunnels(traces, net.topology());
  const auto summary =
      campaign::CrossValidateAll(probers, tunnels, {.first_ttl = 2});
  std::cout << "explicit tunnels: " << tunnels.size()
            << "  rerun failed: " << summary.rerun_failed << "\n";
  const auto pct = [&](std::size_t v) {
    return 100.0 * static_cast<double>(v) /
           static_cast<double>(std::max<std::size_t>(1, summary.validated()));
  };
  std::cout << "fail " << pct(summary.fail) << "%  DPR " << pct(summary.dpr)
            << "%  BRPR " << pct(summary.brpr) << "%  hybrid "
            << pct(summary.hybrid) << "%  either " << pct(summary.either)
            << "%\n";
  return 0;
}

int Replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  const auto traces = io::ReadTraces(in);
  std::cout << traces.size() << " traces\n";
  topo::Topology empty;
  const auto dataset = campaign::BuildDataset(
      traces, campaign::InterfaceResolver(), empty);
  const auto degrees = dataset.DegreeDistribution();
  std::cout << "interface-level graph: " << dataset.node_count()
            << " nodes, " << dataset.link_count() << " links, max degree "
            << (degrees.empty() ? 0 : degrees.Max()) << "\n";
  netbase::IntDistribution lengths;
  std::size_t with_mpls = 0;
  for (const auto& trace : traces) {
    if (trace.LastRespondingTtl() > 0) lengths.Add(trace.LastRespondingTtl());
    if (trace.HasExplicitMpls()) ++with_mpls;
  }
  if (!lengths.empty()) {
    std::cout << "path length: median " << lengths.Median() << ", mean "
              << analysis::TextTable::Real(lengths.Mean(), 2) << "\n";
  }
  std::cout << "traces with explicit MPLS labels: " << with_mpls << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  const std::size_t jobs = ExtractJobs(args);
  if (command == "emulate" && !args.empty()) return Emulate(args[0]);
  if (command == "configs" && !args.empty()) return Configs(args[0]);
  if (command == "campaign") {
    const std::uint64_t seed =
        !args.empty() ? std::strtoull(args[0].c_str(), nullptr, 10) : 29;
    return RunCampaign(seed, args.size() >= 2 ? args[1] : "", jobs);
  }
  if (command == "report") {
    const std::uint64_t seed =
        !args.empty() ? std::strtoull(args[0].c_str(), nullptr, 10) : 29;
    return RunReport(seed, args.size() >= 2 ? args[1] : "wormhole-report",
                     jobs);
  }
  if (command == "crossval") {
    const std::uint64_t seed =
        !args.empty() ? std::strtoull(args[0].c_str(), nullptr, 10) : 29;
    return RunCrossval(seed);
  }
  if (command == "replay" && !args.empty()) return Replay(args[0]);
  return Usage();
}
