#include "routing/igp.h"

#include <algorithm>
#include <utility>

namespace wormhole::routing {

SpfResult ComputeSpf(const topo::Topology& topology, RouterId source) {
  SpfEngine engine(topology);
  const SpfTree& tree = engine.TreeOf(source);
  // Expand the windowed tree back to router_count-sized arrays — this
  // compatibility view is for tests and small worlds only.
  SpfResult result;
  result.source = source;
  const std::size_t n = topology.router_count();
  result.distance.assign(n, kUnreachable);
  result.hop_count.assign(n, kUnreachable);
  result.next_hops.resize(n);
  for (std::size_t i = 0; i < tree.distance.size(); ++i) {
    const RouterId v = tree.base + static_cast<RouterId>(i);
    result.distance[v] = tree.distance[i];
    result.hop_count[v] = tree.hop_count[i];
    const auto span = tree.FirstHops(v);
    result.next_hops[v].assign(span.begin(), span.end());
  }
  return result;
}

IgpPlan BuildIgpPlan(const topo::Topology& topology, topo::AsNumber asn) {
  // Owners of every internal prefix, so each router can route a prefix via
  // its nearest owner. Subnets of inter-AS (eBGP) links are *not* carried
  // by the IGP — the border router injects them via iBGP with
  // next-hop-self (see InstallBgpRoutes), which is what lets transit
  // traffic towards them ride the LDP LSP to the border.
  std::vector<std::pair<netbase::Prefix, RouterId>> prefix_owners;
  for (const RouterId rid : topology.as(asn).routers) {
    const topo::Router& router = topology.router(rid);
    prefix_owners.emplace_back(netbase::Prefix::Host(router.loopback), rid);
    for (const topo::InterfaceId iid : router.interfaces) {
      const topo::Interface& iface = topology.interface(iid);
      if (iface.link != topo::kNoLink &&
          (!topology.link(iface.link).up ||
           !topology.IsInternalLink(iface.link))) {
        continue;
      }
      prefix_owners.emplace_back(iface.subnet, rid);
    }
  }
  std::stable_sort(prefix_owners.begin(), prefix_owners.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  IgpPlan plan;
  plan.asn = asn;
  for (const auto& [prefix, owner] : prefix_owners) {
    if (plan.prefixes.empty() || plan.prefixes.back().prefix != prefix) {
      plan.prefixes.push_back(IgpPrefixOwners{prefix, {}});
    }
    plan.prefixes.back().owners.push_back(owner);
  }
  return plan;
}

void InstallIgpRoutesForRouter(const topo::Topology& topology,
                               const IgpPlan& plan, const SpfTree& tree,
                               RouterId rid, Fib& fib) {
  // Connected routes first (metric 0, empty next hops == local/attached).
  for (const netbase::Prefix& p : topology.ConnectedPrefixes(rid)) {
    FibEntry entry;
    entry.prefix = p;
    entry.source = RouteSource::kConnected;
    entry.metric = 0;
    fib.AddRoute(std::move(entry));
  }

  // Remote internal prefixes via their nearest owner. The plan is sorted
  // by prefix, so install order (and thus build-side content) matches the
  // historical std::map walk.
  for (const IgpPrefixOwners& group : plan.prefixes) {
    int best = kUnreachable;
    RouterId best_owner = topo::kNoRouter;
    bool multiple = false;
    for (const RouterId owner : group.owners) {
      if (owner == rid) continue;
      const int d = tree.DistanceTo(owner);
      if (d == kUnreachable || d > best) continue;
      if (d < best) {
        best = d;
        best_owner = owner;
        multiple = false;
      } else {
        multiple = true;
      }
    }
    if (best == kUnreachable) continue;

    FibEntry entry;
    entry.prefix = group.prefix;
    entry.source = RouteSource::kIgp;
    entry.metric = best;
    if (!multiple) {
      const auto span = tree.FirstHops(best_owner);
      entry.next_hops.assign(span.data(), span.data() + span.size());
    } else {
      // Equidistant owners (both ends of a /31 at the same metric): the
      // route's ECMP set is the union; AddRoute sorts and dedupes.
      for (const RouterId owner : group.owners) {
        if (owner == rid || tree.DistanceTo(owner) != best) continue;
        const auto span = tree.FirstHops(owner);
        entry.next_hops.append(span.data(), span.data() + span.size());
      }
    }
    // Connected wins: a prefix already present (installed above) is kept.
    fib.AddRouteIfAbsent(std::move(entry));
  }
}

void InstallIgpRoutes(const topo::Topology& topology, topo::AsNumber asn,
                      std::vector<Fib>& fibs) {
  SpfEngine engine(topology);
  const IgpPlan plan = BuildIgpPlan(topology, asn);
  for (const RouterId rid : topology.as(asn).routers) {
    InstallIgpRoutesForRouter(topology, plan, engine.TreeOf(rid), rid,
                              fibs.at(rid));
  }
}

int IgpDistance(const topo::Topology& topology, RouterId from, RouterId to) {
  if (topology.router(from).asn != topology.router(to).asn) {
    return kUnreachable;
  }
  SpfEngine engine(topology);
  return engine.TreeOf(from).DistanceTo(to);
}

int IgpDistance(SpfEngine& engine, RouterId from, RouterId to) {
  if (engine.topology().router(from).asn !=
      engine.topology().router(to).asn) {
    return kUnreachable;
  }
  return engine.TreeOf(from).DistanceTo(to);
}

int IgpHopDistance(const topo::Topology& topology, RouterId from,
                   RouterId to) {
  if (topology.router(from).asn != topology.router(to).asn) {
    return kUnreachable;
  }
  SpfEngine engine(topology);
  return engine.TreeOf(from).HopCountTo(to);
}

int IgpHopDistance(SpfEngine& engine, RouterId from, RouterId to) {
  if (engine.topology().router(from).asn !=
      engine.topology().router(to).asn) {
    return kUnreachable;
  }
  return engine.TreeOf(from).HopCountTo(to);
}

}  // namespace wormhole::routing
