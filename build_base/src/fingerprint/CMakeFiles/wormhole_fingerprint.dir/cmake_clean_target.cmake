file(REMOVE_RECURSE
  "libwormhole_fingerprint.a"
)
