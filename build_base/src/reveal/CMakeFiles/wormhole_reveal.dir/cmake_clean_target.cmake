file(REMOVE_RECURSE
  "libwormhole_reveal.a"
)
