// Thread-safety fixture, clean counterpart: the same counter with the
// lock held through the repo's annotated primitives. Must compile
// cleanly under -Wthread-safety -Wthread-safety-beta
// -Werror=thread-safety-analysis, exercising the RAII scoped
// capability, REQUIRES on a private helper, EXCLUDES on the public
// entry, and the zero-cost Role phase capability.
#include "exec/sync.h"
#include "netbase/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  void Increment() EXCLUDES(mutex_) {
    wormhole::exec::MutexLock lock(mutex_);
    IncrementLocked();
  }

  [[nodiscard]] int value() EXCLUDES(mutex_) {
    wormhole::exec::MutexLock lock(mutex_);
    return value_;
  }

 private:
  void IncrementLocked() REQUIRES(mutex_) { value_ += 1; }

  wormhole::exec::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

class Phased {
 public:
  void Rebuild() {
    wormhole::exec::RoleLock build(role_);
    generation_ += 1;
    RebuildLocked();
  }

 private:
  void RebuildLocked() REQUIRES(role_) { generation_ += 1; }

  wormhole::exec::Role role_;
  int generation_ GUARDED_BY(role_) = 0;
};

}  // namespace fixture

int main() {
  fixture::Counter counter;
  counter.Increment();
  fixture::Phased phased;
  phased.Rebuild();
  return counter.value();
}
