// Fixture: tests/ are exempt from raw-threading (they exercise exec
// primitives directly).
#include <thread>

void TestBody() {
  std::thread t([] {});
  t.join();
}
