// Convergence parity: the phased, thread-pooled control-plane build and the
// incremental reconvergence path must both be *byte-identical* to the serial
// full rebuild — same sealed FIB contents, same LDP label tables — in the
// style of test_golden_campaign. Also pins the SpfEngine's "exactly one SPF
// per (AS, router) per convergence" contract via the counting hook.
//
// These tests run in the TSan CI matrix: the jobs>1 builds exercise the
// parallel Prime / install / seal phases under the race detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/campaign_report.h"
#include "campaign/campaign.h"
#include "campaign/trace_cache.h"
#include "gen/internet.h"
#include "mpls/ldp.h"
#include "routing/as_path.h"
#include "routing/delta.h"
#include "routing/fib.h"
#include "routing/igp.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace wormhole {
namespace {

gen::InternetOptions SmallWorld() {
  gen::InternetOptions options;
  options.seed = 17;
  options.tier1_count = 2;
  options.transit_count = 4;
  options.stub_count = 10;
  options.vp_count = 3;
  return options;
}

/// Serializes every sealed FIB entry and every LDP binding of `net` into
/// one deterministic blob. Two Networks with equal dumps forward packets
/// identically.
std::string DumpControlPlane(sim::Network& net) {
  const topo::Topology& topology = net.topology();
  std::ostringstream out;
  for (std::size_t r = 0; r < topology.router_count(); ++r) {
    out << "R " << r << "\n";
    for (const routing::FibEntry* entry : net.fibs()[r].Entries()) {
      out << "F " << entry->prefix.ToString() << " s"
          << static_cast<int>(entry->source) << " m" << entry->metric
          << " nh[";
      for (const routing::NextHop& hop : entry->next_hops) {
        out << hop.link << ":" << hop.neighbor << ",";
      }
      out << "] bgp " << entry->bgp_next_hop.ToString() << "\n";
    }
  }
  for (const topo::AsNumber asn : topology.AsNumbers()) {
    const mpls::LdpDomain* domain = net.ldp().DomainOf(asn);
    if (domain == nullptr) continue;
    out << "L " << asn << "\n";
    for (const topo::RouterId rid : topology.as(asn).routers) {
      std::vector<netbase::Prefix> fecs = domain->FecsOf(rid);
      std::sort(fecs.begin(), fecs.end());
      for (const netbase::Prefix& fec : fecs) {
        const auto binding = domain->BindingOf(rid, fec);
        EXPECT_TRUE(binding.has_value()) << "advertised FEC without binding";
        if (!binding.has_value()) continue;
        out << "B " << rid << " " << fec.ToString() << " k"
            << static_cast<int>(binding->kind) << " l" << binding->label
            << "\n";
      }
    }
  }
  return out.str();
}

void ExpectSameDump(const std::string& got, const std::string& want) {
  ASSERT_EQ(got.size(), want.size());
  const auto mismatch =
      std::mismatch(got.begin(), got.end(), want.begin()).first;
  EXPECT_TRUE(mismatch == got.end())
      << "first divergence at byte " << (mismatch - got.begin()) << ": ..."
      << got.substr(static_cast<std::size_t>(std::max<std::ptrdiff_t>(
                        0, mismatch - got.begin() - 40)),
                    80)
      << "...";
}

TEST(ConvergenceParity, ParallelBuildMatchesSerialByteForByte) {
  gen::SyntheticInternet world(SmallWorld());
  sim::Network serial(world.topology(), world.configs(), world.bgp_policy(),
                      {}, nullptr, nullptr, /*convergence_jobs=*/1);
  const std::string want = DumpControlPlane(serial);
  ASSERT_FALSE(want.empty());

  for (const std::size_t jobs : {std::size_t{3}, std::size_t{8}}) {
    sim::Network parallel(world.topology(), world.configs(),
                          world.bgp_policy(), {}, nullptr, nullptr, jobs);
    const std::string got = DumpControlPlane(parallel);
    ExpectSameDump(got, want);
  }
}

/// The first internal link of an MPLS-enabled AS (an LSP hop, so the flap
/// also churns the LDP domain), or any internal link as fallback.
topo::LinkId PickInternalLink(const gen::SyntheticInternet& world) {
  const topo::Topology& topology = world.topology();
  topo::LinkId fallback = topo::kNoLink;
  for (topo::LinkId l = 0; l < topology.link_count(); ++l) {
    if (!topology.IsInternalLink(l)) continue;
    if (fallback == topo::kNoLink) fallback = l;
    const topo::AsNumber asn =
        topology.router(topology.interface(topology.link(l).a).router).asn;
    if (world.profile(asn).mpls) return l;
  }
  return fallback;
}

topo::LinkId PickExternalLink(const gen::SyntheticInternet& world) {
  const topo::Topology& topology = world.topology();
  for (topo::LinkId l = 0; l < topology.link_count(); ++l) {
    if (!topology.IsInternalLink(l)) return l;
  }
  return topo::kNoLink;
}

TEST(ConvergenceParity, IncrementalInternalFlapMatchesFullRebuild) {
  gen::SyntheticInternet world(SmallWorld());
  topo::Topology& topology = world.mutable_topology();
  const topo::LinkId link = PickInternalLink(world);
  ASSERT_NE(link, topo::kNoLink);

  sim::Network incremental(topology, world.configs(), world.bgp_policy(), {},
                           nullptr, nullptr, /*convergence_jobs=*/2);
  const std::string before = DumpControlPlane(incremental);

  topology.SetLinkUp(link, false);
  incremental.OnLinkStateChange(link);
  sim::Network rebuilt(topology, world.configs(), world.bgp_policy(), {},
                       nullptr, nullptr, /*convergence_jobs=*/1);
  ExpectSameDump(DumpControlPlane(incremental), DumpControlPlane(rebuilt));

  // Restoring the link must restore the original control plane exactly.
  topology.SetLinkUp(link, true);
  incremental.OnLinkStateChange(link);
  ExpectSameDump(DumpControlPlane(incremental), before);
}

TEST(ConvergenceParity, IncrementalExternalFlapMatchesFullRebuild) {
  gen::SyntheticInternet world(SmallWorld());
  topo::Topology& topology = world.mutable_topology();
  const topo::LinkId link = PickExternalLink(world);
  ASSERT_NE(link, topo::kNoLink);

  sim::Network incremental(topology, world.configs(), world.bgp_policy(), {},
                           nullptr, nullptr, /*convergence_jobs=*/2);
  const std::string before = DumpControlPlane(incremental);

  topology.SetLinkUp(link, false);
  incremental.OnLinkStateChange(link);
  sim::Network rebuilt(topology, world.configs(), world.bgp_policy(), {},
                       nullptr, nullptr, /*convergence_jobs=*/1);
  ExpectSameDump(DumpControlPlane(incremental), DumpControlPlane(rebuilt));

  topology.SetLinkUp(link, true);
  incremental.OnLinkStateChange(link);
  ExpectSameDump(DumpControlPlane(incremental), before);
}

TEST(ConvergenceParity, OneSpfPerRouterPerConvergence) {
  gen::SyntheticInternet world(SmallWorld());
  topo::Topology& topology = world.mutable_topology();
  sim::Network net(topology, world.configs(), world.bgp_policy(), {},
                   nullptr, nullptr, /*convergence_jobs=*/2);

  // Full convergence: IGP install, BGP hot-potato and LDP all shared the
  // cache — exactly one Dijkstra per router, none duplicated.
  EXPECT_EQ(net.spf().computations(), topology.router_count());

  // Ground-truth queries ride the cache too.
  const topo::AsNumber asn = topology.AsNumbers().front();
  const std::vector<topo::RouterId>& members = topology.as(asn).routers;
  ASSERT_GE(members.size(), 2u);
  (void)routing::IgpDistance(net.spf(), members[0], members[1]);
  (void)routing::IgpHopDistance(net.spf(), members[0], members[1]);
  EXPECT_EQ(net.spf().computations(), topology.router_count());

  // An internal flap recomputes only the affected AS's members.
  const topo::LinkId link = PickInternalLink(world);
  ASSERT_NE(link, topo::kNoLink);
  const topo::AsNumber flapped =
      topology.router(topology.interface(topology.link(link).a).router).asn;
  topology.SetLinkUp(link, false);
  net.OnLinkStateChange(link);
  EXPECT_EQ(net.spf().computations(),
            topology.router_count() + topology.as(flapped).routers.size());

  // An external flap reuses every cached tree: zero new SPF runs.
  const topo::LinkId external = PickExternalLink(world);
  ASSERT_NE(external, topo::kNoLink);
  topology.SetLinkUp(external, false);
  net.OnLinkStateChange(external);
  EXPECT_EQ(net.spf().computations(),
            topology.router_count() + topology.as(flapped).routers.size());
}

// ---------------------------------------------------------------------------
// Delta re-probing (docs/incremental.md): the epoch-versioned TraceCache +
// dirty-set invalidation must keep every RunDelta byte-identical to a cold
// campaign against the current routing state. The exhaustive per-link test
// below is the safety net for the dirty-set over-approximation rule — a
// single under-approximated pair shows up as a byte diff.

/// A world small enough to flap EVERY link with a campaign parity check
/// per flap.
gen::InternetOptions TinyWorld(bool hierarchical) {
  gen::InternetOptions options;
  options.seed = 11;
  options.tier1_count = 2;
  options.transit_count = 2;
  options.stub_count = hierarchical ? 4 : 3;
  options.tier1_routers = 5;
  options.transit_routers = 4;
  options.stub_routers = 2;
  options.vp_count = 2;
  options.hierarchical = hierarchical;
  return options;
}

/// Everything a delta run must reproduce. Engine stats are deliberately
/// excluded: serving a trace from the cache skips the simulated packets a
/// cold run would inject, and that saving is the whole point. Probe
/// accounting IS included — SkipProbes replays cached id budgets, so the
/// totals must match a cold run exactly.
std::string CampaignBytes(const campaign::CampaignResult& result,
                          const topo::Topology& topology) {
  std::ostringstream out;
  out << "S probes_sent " << result.probes_sent << "\n";
  out << "S revelation_traces " << result.revelation_traces << "\n";
  out << "S revealed_count " << result.revealed_count() << "\n";
  out << "S trace_count " << result.trace_count << "\n";
  analysis::WriteCampaignReport(out, result, topology);
  return out.str();
}

campaign::CampaignOptions DeltaCampaignOptions(std::size_t jobs) {
  campaign::CampaignOptions options;
  options.jobs = jobs;
  options.stream_shard_size = 16;
  return options;
}

/// A cold reference campaign against the engine's CURRENT routing state:
/// fresh probers, no cache.
std::string ColdBytes(gen::SyntheticInternet& world,
                      const std::vector<netbase::Ipv4Address>& targets) {
  campaign::Campaign cold(world.engine(), world.vantage_points(),
                          DeltaCampaignOptions(/*jobs=*/1));
  return CampaignBytes(cold.Run(targets), world.topology());
}

void ExhaustiveFlapParity(bool hierarchical) {
  gen::SyntheticInternet world(TinyWorld(hierarchical));
  topo::Topology& topology = world.mutable_topology();
  const auto targets = world.AllLoopbacks();

  campaign::Campaign delta_campaign(world.engine(), world.vantage_points(),
                                    DeltaCampaignOptions(/*jobs=*/2));
  campaign::TraceCache cache;

  // Cold fill: with an empty cache RunDelta IS a cold run.
  const std::string baseline = ColdBytes(world, targets);
  {
    const auto fill = delta_campaign.RunDelta(targets, cache);
    EXPECT_EQ(CampaignBytes(fill, topology), baseline);
    EXPECT_EQ(fill.delta_pairs_reprobed, fill.delta_pairs_total);
  }

  std::uint64_t pairs_total = 0;
  std::uint64_t pairs_reprobed = 0;
  for (topo::LinkId link = 0; link < topology.link_count(); ++link) {
    for (const bool up : {false, true}) {
      topology.SetLinkUp(link, up);
      const routing::ConvergenceDelta delta =
          world.network().OnLinkStateChange(link);
      ASSERT_EQ(delta.epoch, world.network().convergence_epoch());
      const routing::AsPathOracle oracle(topology,
                                         world.network().bgp_level(),
                                         world.network().bgp_policy());
      cache.Invalidate(delta, oracle);
      const auto result = delta_campaign.RunDelta(targets, cache);
      pairs_total += result.delta_pairs_total;
      pairs_reprobed += result.delta_pairs_reprobed;
      const std::string want = up ? baseline : ColdBytes(world, targets);
      ExpectSameDump(CampaignBytes(result, topology), want);
    }
  }
  // The dirty sets must actually be subsets somewhere, or the cache is a
  // no-op: across the sweep a meaningful share of pairs is served cached.
  ASSERT_GT(pairs_total, 0u);
  EXPECT_LT(pairs_reprobed, pairs_total);
}

TEST(DeltaReprobe, ExhaustiveFlapParityFlat) {
  ExhaustiveFlapParity(/*hierarchical=*/false);
}

TEST(DeltaReprobe, ExhaustiveFlapParityHierarchical) {
  ExhaustiveFlapParity(/*hierarchical=*/true);
}

TEST(DeltaReprobe, FlapStormMatchesColdAtEveryStep) {
  gen::SyntheticInternet world(SmallWorld());
  topo::Topology& topology = world.mutable_topology();
  const auto targets = world.AllLoopbacks();
  campaign::Campaign delta_campaign(world.engine(), world.vantage_points(),
                                    DeltaCampaignOptions(/*jobs=*/2));
  campaign::TraceCache cache;
  (void)delta_campaign.RunDelta(targets, cache);

  // A deterministic storm: walk a fixed stride over the link table,
  // toggling each visited link's state (so links go down and later come
  // back up in an interleaved pattern).
  std::vector<bool> is_up(topology.link_count(), true);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int flap = 0; flap < 6; ++flap) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const topo::LinkId link =
        static_cast<topo::LinkId>((x >> 33) % topology.link_count());
    is_up[link] = !is_up[link];
    topology.SetLinkUp(link, is_up[link]);
    const routing::ConvergenceDelta delta =
        world.network().OnLinkStateChange(link);
    const routing::AsPathOracle oracle(topology,
                                       world.network().bgp_level(),
                                       world.network().bgp_policy());
    cache.Invalidate(delta, oracle);
    const auto result = delta_campaign.RunDelta(targets, cache);
    ExpectSameDump(CampaignBytes(result, topology),
                   ColdBytes(world, targets));
  }
}

// Runs in the TSan CI matrix: four worker threads serve cache hits and
// record re-probes into their own (phase, vp) slots concurrently over a
// warm cache. Any cross-slot write (or a Begin/Invalidate racing the
// fan-out) is a TSan report; the byte check pins that concurrency also
// changed nothing.
TEST(DeltaReprobe, ConcurrentCacheReadsAndReprobes) {
  gen::InternetOptions options = TinyWorld(/*hierarchical=*/false);
  options.vp_count = 4;
  options.stub_count = 6;
  gen::SyntheticInternet world(options);
  topo::Topology& topology = world.mutable_topology();
  const auto targets = world.AllLoopbacks();

  campaign::Campaign serial(world.engine(), world.vantage_points(),
                            DeltaCampaignOptions(/*jobs=*/1));
  campaign::Campaign parallel(world.engine(), world.vantage_points(),
                              DeltaCampaignOptions(/*jobs=*/4));
  campaign::TraceCache serial_cache;
  campaign::TraceCache parallel_cache;
  (void)serial.RunDelta(targets, serial_cache);
  (void)parallel.RunDelta(targets, parallel_cache);

  const topo::LinkId link = topo::LinkId{0};
  topology.SetLinkUp(link, false);
  const routing::ConvergenceDelta delta =
      world.network().OnLinkStateChange(link);
  const routing::AsPathOracle oracle(topology, world.network().bgp_level(),
                                     world.network().bgp_policy());
  serial_cache.Invalidate(delta, oracle);
  parallel_cache.Invalidate(delta, oracle);

  const auto serial_result = serial.RunDelta(targets, serial_cache);
  const auto parallel_result = parallel.RunDelta(targets, parallel_cache);
  ExpectSameDump(CampaignBytes(parallel_result, topology),
                 CampaignBytes(serial_result, topology));
  EXPECT_EQ(parallel_result.delta_pairs_total,
            serial_result.delta_pairs_total);
  EXPECT_EQ(parallel_result.delta_pairs_reprobed,
            serial_result.delta_pairs_reprobed);
}

TEST(ConvergenceDelta, ReportsScopeEpochAndDroppedState) {
  gen::SyntheticInternet world(SmallWorld());
  topo::Topology& topology = world.mutable_topology();
  sim::Network& net = world.network();
  const std::uint64_t epoch0 = net.convergence_epoch();
  EXPECT_GE(epoch0, 1u);

  const topo::LinkId internal = PickInternalLink(world);
  ASSERT_NE(internal, topo::kNoLink);
  const topo::AsNumber asn =
      topology.router(topology.interface(topology.link(internal).a).router)
          .asn;
  topology.SetLinkUp(internal, false);
  const routing::ConvergenceDelta delta = net.OnLinkStateChange(internal);
  EXPECT_EQ(delta.scope, routing::ConvergenceDelta::Scope::kIntraAs);
  EXPECT_EQ(delta.epoch, epoch0 + 1);
  EXPECT_EQ(delta.epoch, net.convergence_epoch());
  EXPECT_EQ(delta.touched_as, asn);
  EXPECT_EQ(delta.stale_spf_sources, topology.as(asn).routers);
  EXPECT_TRUE(delta.has_spf_window());
  for (const topo::RouterId rid : topology.as(asn).routers) {
    EXPECT_GE(rid, delta.spf_window_lo);
    EXPECT_LE(rid, delta.spf_window_hi);
  }
  EXPECT_TRUE(delta.touched_aggregate.Contains(topology.as(asn).block));
  if (world.profile(asn).mpls) {
    EXPECT_TRUE(delta.has_label_range());
    EXPECT_EQ(delta.label_lo, netbase::kFirstUnreservedLabel);
  }
  topology.SetLinkUp(internal, true);
  net.OnLinkStateChange(internal);

  const topo::LinkId external = PickExternalLink(world);
  ASSERT_NE(external, topo::kNoLink);
  topology.SetLinkUp(external, false);
  const routing::ConvergenceDelta global = net.OnLinkStateChange(external);
  EXPECT_EQ(global.scope, routing::ConvergenceDelta::Scope::kGlobal);
  EXPECT_EQ(global.epoch, delta.epoch + 2);
}

}  // namespace
}  // namespace wormhole
