file(REMOVE_RECURSE
  "CMakeFiles/test_golden_campaign.dir/test_golden_campaign.cpp.o"
  "CMakeFiles/test_golden_campaign.dir/test_golden_campaign.cpp.o.d"
  "test_golden_campaign"
  "test_golden_campaign.pdb"
  "test_golden_campaign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
