// The measurement front end: ping and Paris traceroute from one vantage
// point, mirroring the paper's scamper usage (ICMP echo-request probes,
// constant flow identifier per trace so ECMP cannot fan the path out).
#pragma once

#include <vector>

#include "probe/trace.h"
#include "sim/engine.h"

namespace wormhole::probe {

struct TraceOptions {
  /// First probed TTL; the paper's campaign starts at 2 to skip the
  /// vantage point's own gateway.
  int first_ttl = 1;
  int max_ttl = 40;
  /// Paris flow identifier (kept constant across the whole trace).
  std::uint16_t flow_id = 0;
  /// Stop after this many consecutive unresponsive hops.
  int gap_limit = 4;
  /// Probes per hop before declaring it unresponsive (scamper-style
  /// retries; each retry uses a fresh probe id, which re-rolls simulated
  /// ICMP rate limiting).
  int attempts = 2;
  /// Step the trace's probes through Engine::SendBatch in speculative
  /// TTL-sweep batches instead of one Send per probe. Results, probe-id
  /// sequence and engine stats are byte-identical to the sequential
  /// tracer (mispredicted speculative probes are discarded and replayed);
  /// campaigns turn this on for throughput.
  bool batched = false;
  /// Cap on probes per speculative batch when `batched`. 0 picks windows
  /// adaptively: the prober opens with a window sized by its previous
  /// trace's length and extends in short increments, which bounds the
  /// discarded speculative tail. The window never changes the observable
  /// trace, only how much speculative work is thrown away.
  int batch_window = 0;
};

class Prober {
 public:
  /// `vantage_point` must be a host attached via Topology::AttachHost.
  /// The engine is only ever read (Engine::Send is thread-safe), so many
  /// probers — one per worker thread — can share one engine; a single
  /// Prober instance is still single-threaded (it owns the probe-id
  /// sequence).
  Prober(const sim::Engine& engine, netbase::Ipv4Address vantage_point);

  [[nodiscard]] netbase::Ipv4Address vantage_point() const { return source_; }

  /// Paris traceroute with ICMP echo-request probes.
  TraceResult Traceroute(netbase::Ipv4Address target,
                         const TraceOptions& options = {});

  /// One echo-request with a large TTL; returns the reply's remaining TTL
  /// (the second half of the fingerprint signature).
  PingResult Ping(netbase::Ipv4Address target, std::uint16_t flow_id = 0);

  /// Number of probe packets issued so far (campaign accounting).
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }

  /// Advances the probe-id sequence and the sent counter by `n` without
  /// sending anything, replaying the id consumption of a trace served
  /// from a cache (campaign::TraceCache) so every later live probe
  /// carries exactly the id it would have carried in a cold run. The
  /// adaptive window hint is deliberately left alone: it only shapes
  /// discarded speculation, never observable bytes.
  void SkipProbes(std::uint64_t n) {
    next_probe_id_ += static_cast<std::uint32_t>(n);
    probes_sent_ += n;
  }

 private:
  TraceResult TracerouteBatched(netbase::Ipv4Address target,
                                const TraceOptions& options);

  const sim::Engine* engine_;
  netbase::Ipv4Address source_;
  std::uint32_t next_probe_id_ = 1;
  std::uint64_t probes_sent_ = 0;
  /// Reused across TracerouteBatched calls so steady-state campaign
  /// batches allocate nothing.
  std::vector<netbase::Packet> batch_probes_;
  sim::Engine::BatchResult batch_;
  /// TTL count of the last completed trace — seeds the adaptive batch
  /// window (batch_window == 0). Purely a speed hint; see TraceOptions.
  int window_hint_ = 0;
};

}  // namespace wormhole::probe
