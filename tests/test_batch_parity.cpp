// Batch-vs-sequential parity: Engine::SendBatch must produce outcomes,
// per-slot stats and campaign results byte-identical to N sequential
// Engine::Send calls — across every LossReason, the UHP/PHP/explicit-null
// tunnel edges, ECMP fans, mixed live/dead batches and the speculative
// batched tracer. This is the contract that lets campaigns switch to
// batched stepping (campaign::CampaignOptions::batched_stepping) without
// moving a single byte of the golden snapshot.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/campaign_report.h"
#include "campaign/campaign.h"
#include "gen/gns3.h"
#include "gen/internet.h"
#include "io/tracefile.h"
#include "netbase/label.h"
#include "netbase/packet.h"
#include "probe/prober.h"
#include "sim/network.h"

namespace wormhole {
namespace {

using netbase::Packet;
using netbase::PacketKind;
using sim::Engine;
using sim::EngineStats;

Packet Probe(netbase::Ipv4Address src, netbase::Ipv4Address dst, int ttl,
             std::uint32_t id, std::uint16_t flow = 0,
             PacketKind kind = PacketKind::kEchoRequest) {
  Packet p;
  p.kind = kind;
  p.src = src;
  p.dst = dst;
  p.ip_ttl = ttl;
  p.flow_id = flow;
  p.probe_id = id;
  return p;
}

EngineStats Minus(const EngineStats& after, const EngineStats& before) {
  EngineStats d;
  d.packets_injected = after.packets_injected - before.packets_injected;
  d.hops_processed = after.hops_processed - before.hops_processed;
  d.icmp_generated = after.icmp_generated - before.icmp_generated;
  d.labels_pushed = after.labels_pushed - before.labels_pushed;
  d.labels_popped = after.labels_popped - before.labels_popped;
  return d;
}

/// Runs `probes` through sequential Send and through one SendBatch and
/// asserts outcome-for-outcome equality, plus equality of the summed
/// stat deltas (the stats-equivalence half of the contract). Returns the
/// outcomes so callers can assert scenario-specific coverage.
std::vector<Engine::Outcome> ExpectParity(const Engine& engine,
                                          const std::vector<Packet>& probes) {
  std::vector<Engine::Outcome> sequential;
  sequential.reserve(probes.size());
  const EngineStats before = engine.stats();
  for (const Packet& probe : probes) {
    sequential.push_back(engine.Send(probe));
  }
  const EngineStats seq_delta = Minus(engine.stats(), before);

  std::vector<Packet> batch_input = probes;  // SendBatch consumes its span
  Engine::BatchResult batch;
  engine.SendBatch(batch_input, batch);
  const EngineStats batch_delta = Minus(engine.stats(), before);

  EXPECT_EQ(batch.outcomes.size(), probes.size());
  if (batch.outcomes.size() != probes.size()) return sequential;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(batch.outcomes[i].received, sequential[i].received)
        << "slot " << i;
    EXPECT_EQ(batch.outcomes[i].loss, sequential[i].loss) << "slot " << i;
    EXPECT_EQ(batch.outcomes[i].rtt_ms, sequential[i].rtt_ms)
        << "slot " << i;
    EXPECT_EQ(batch.outcomes[i], sequential[i]) << "slot " << i;
  }

  // The batch's commit must equal the sequential flushes, and the
  // per-slot shards must sum to exactly that commit.
  EXPECT_EQ(Minus(batch_delta, seq_delta), seq_delta);
  EngineStats slot_sum;
  for (const EngineStats& s : batch.per_slot_stats) slot_sum += s;
  EXPECT_EQ(slot_sum, seq_delta);
  return sequential;
}

/// A traceroute-shaped TTL fan plus a ping, two flows deep.
std::vector<Packet> FanTo(netbase::Ipv4Address src, netbase::Ipv4Address dst,
                          std::uint32_t& id, int max_ttl = 24) {
  std::vector<Packet> probes;
  for (std::uint16_t flow : {std::uint16_t{0}, std::uint16_t{7}}) {
    for (int ttl = 1; ttl <= max_ttl; ++ttl) {
      probes.push_back(Probe(src, dst, ttl, ++id, flow));
    }
    probes.push_back(Probe(src, dst, 64, ++id, flow));
  }
  return probes;
}

class BatchParityScenario
    : public ::testing::TestWithParam<gen::Gns3Scenario> {};

TEST_P(BatchParityScenario, TunnelFanMatchesSequential) {
  // kDefault exercises PHP with TTL propagation, kBackwardRecursive the
  // invisible (no-propagate) tunnel, kExplicitRoute the DPR shape, and
  // kTotallyInvisible the UHP disposition with its explicit-null edge —
  // between them every label operation the testbed can produce.
  gen::Gns3Testbed testbed({.scenario = GetParam()});
  std::uint32_t id = 0;
  std::vector<Packet> probes;
  for (const char* target : {"CE2.left", "PE2.left", "P2.lo"}) {
    const auto fan =
        FanTo(testbed.vantage_point(), testbed.Address(target), id);
    probes.insert(probes.end(), fan.begin(), fan.end());
  }
  const auto outcomes = ExpectParity(testbed.engine(), probes);
  // Sanity: the whole fan really ran (the testbed has no ICMP loss, so
  // every TTL elicits an answer — the batch still mixes live and retired
  // rows because each TTL's probe dies in a different round).
  std::size_t received = 0;
  for (const auto& o : outcomes) received += o.received ? 1 : 0;
  EXPECT_EQ(received, probes.size());
}

INSTANTIATE_TEST_SUITE_P(Scenarios, BatchParityScenario,
                         ::testing::Values(
                             gen::Gns3Scenario::kDefault,
                             gen::Gns3Scenario::kBackwardRecursive,
                             gen::Gns3Scenario::kExplicitRoute,
                             gen::Gns3Scenario::kTotallyInvisible));

TEST(BatchParity, EveryLossReasonMatchesSequential) {
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kBackwardRecursive});
  const auto vp = testbed.vantage_point();
  const auto far = testbed.Address("CE2.left");
  std::set<sim::LossReason> seen;

  {
    // kTtlLoop: an engine whose loop guard trips immediately, built on
    // the same converged tables.
    sim::Network& network = testbed.network();
    Engine strict(testbed.topology(), testbed.configs(), network.fibs(),
                  network.ldp(), {.max_hops = 0});
    std::vector<Packet> probes;
    for (std::uint32_t i = 1; i <= 8; ++i) {
      probes.push_back(Probe(vp, far, 10 + static_cast<int>(i), i));
    }
    for (const auto& o : ExpectParity(strict, probes)) {
      EXPECT_EQ(o.loss, sim::LossReason::kTtlLoop);
      seen.insert(o.loss);
    }
  }

  const Engine& engine = testbed.engine();
  std::vector<Packet> probes;
  std::uint32_t id = 100;
  // kDropped: probes carrying an unreserved label no LSR ever bound.
  for (int i = 0; i < 4; ++i) {
    Packet p = Probe(vp, far, 32, ++id);
    netbase::LabelStackEntry lse;
    lse.label = 1048575;  // top of the 20-bit space, never allocated
    lse.ttl = 32;
    p.labels.push_back(lse);
    probes.push_back(p);
  }
  // kReplyExpired: injected reply-kind packets whose TTL dies en route
  // (a reply expiring generates no ICMP-about-ICMP).
  for (int i = 0; i < 4; ++i) {
    probes.push_back(
        Probe(vp, far, 2, ++id, 0, PacketKind::kTimeExceeded));
  }
  // kNone: ordinary delivered probes interleaved, so the batch mixes
  // live rows with rows that died in round one.
  for (int i = 0; i < 4; ++i) {
    probes.push_back(Probe(vp, far, 64, ++id));
  }
  // kDropped via delivered-elsewhere: a reply-kind packet addressed to a
  // distant router's loopback (nothing is waiting for it there).
  for (int i = 0; i < 2; ++i) {
    probes.push_back(Probe(vp, testbed.Address("P2.lo"), 64, ++id, 0,
                           PacketKind::kTimeExceeded));
  }
  for (const auto& o : ExpectParity(engine, probes)) seen.insert(o.loss);

  seen.insert(sim::LossReason::kNoRoute);  // covered below, split world
  EXPECT_EQ(seen.size(), 5u) << "a LossReason lost its trigger";
}

TEST(BatchParity, NoRouteReplyMatchesSequential) {
  // A reply-kind packet that reaches a router whose FIB cannot route it
  // further is the kNoRoute shape. The synthetic Internet's stub ASes
  // have no default route to unallocated space, so a reply aimed at an
  // address outside every advertised prefix black-holes deterministically.
  gen::SyntheticInternet net(
      {.seed = 11, .transit_count = 2, .stub_count = 4});
  const auto vp = net.vantage_points().front();
  std::vector<Packet> probes;
  std::uint32_t id = 0;
  for (int i = 0; i < 4; ++i) {
    probes.push_back(Probe(vp, netbase::Ipv4Address(0xF0000001u + i), 40,
                           ++id, 0, PacketKind::kTimeExceeded));
    probes.push_back(Probe(vp, net.AllLoopbacks()[i], 30, ++id));
  }
  const auto outcomes = ExpectParity(net.engine(), probes);
  bool saw_no_route = false;
  for (const auto& o : outcomes) {
    saw_no_route |= o.loss == sim::LossReason::kNoRoute;
  }
  EXPECT_TRUE(saw_no_route);
}

TEST(BatchParity, EcmpFanoutAcrossTheInternetMatchesSequential) {
  // Wide world, many targets, several flows: exercises ECMP hashing,
  // label imposition at different ingresses and the grouped-round
  // scheduler's counting-sort branch (batch larger than routers/8).
  gen::SyntheticInternet net({.seed = 23, .icmp_loss = 0.05});
  const auto vp = net.vantage_points().front();
  const auto loopbacks = net.AllLoopbacks();
  std::vector<Packet> probes;
  std::uint32_t id = 0;
  for (std::size_t t = 0; t < loopbacks.size(); t += 7) {
    for (int ttl = 1; ttl <= 12; ++ttl) {
      probes.push_back(Probe(vp, loopbacks[t], ttl, ++id,
                             static_cast<std::uint16_t>(t % 3)));
    }
  }
  ExpectParity(net.engine(), probes);
}

TEST(BatchParity, BatchedTracerMatchesSequentialTracer) {
  // The speculative batched tracer must reproduce the sequential tracer's
  // hops, probe count AND probe-id stream — under simulated ICMP loss,
  // where any misprediction in the replay would shift every later
  // splitmix64 draw and change the trace.
  gen::SyntheticInternet net({.seed = 31, .icmp_loss = 0.08});
  const auto loopbacks = net.AllLoopbacks();
  probe::Prober sequential(net.engine(), net.vantage_points().front());
  probe::Prober batched(net.engine(), net.vantage_points().front());
  for (int window : {0, 1, 5}) {
    probe::TraceOptions batched_options;
    batched_options.batched = true;
    batched_options.batch_window = window;
    for (std::size_t t = 0; t < loopbacks.size(); t += 5) {
      const auto a = sequential.Traceroute(loopbacks[t]);
      const auto b = batched.Traceroute(loopbacks[t], batched_options);
      ASSERT_EQ(a.hops.size(), b.hops.size())
          << "window " << window << " target " << t;
      for (std::size_t h = 0; h < a.hops.size(); ++h) {
        EXPECT_EQ(a.hops[h].probe_ttl, b.hops[h].probe_ttl);
        EXPECT_EQ(a.hops[h].address, b.hops[h].address);
        EXPECT_EQ(a.hops[h].reply_kind, b.hops[h].reply_kind);
        EXPECT_EQ(a.hops[h].reply_ip_ttl, b.hops[h].reply_ip_ttl);
        EXPECT_EQ(a.hops[h].labels, b.hops[h].labels);
        EXPECT_EQ(a.hops[h].rtt_ms, b.hops[h].rtt_ms);
      }
      EXPECT_EQ(a.reached, b.reached);
      EXPECT_EQ(a.unreachable, b.unreachable);
      ASSERT_EQ(sequential.probes_sent(), batched.probes_sent())
          << "probe-id streams diverged at window " << window;
    }
  }
}

std::string CampaignFingerprint(bool batched, std::size_t jobs) {
  gen::InternetOptions options;
  options.seed = 17;
  options.tier1_count = 2;
  options.transit_count = 4;
  options.stub_count = 10;
  options.vp_count = 3;
  options.anonymous_router_probability = 0.02;
  options.icmp_loss = 0.05;
  gen::SyntheticInternet net(options);
  campaign::Campaign campaign(
      net.engine(), net.vantage_points(),
      {.batched_stepping = batched, .jobs = jobs});
  const campaign::CampaignResult result = campaign.Run(net.AllLoopbacks());
  const EngineStats stats = net.engine().stats();
  std::ostringstream out;
  out << stats.packets_injected << " " << stats.hops_processed << " "
      << stats.icmp_generated << " " << stats.labels_pushed << " "
      << stats.labels_popped << " " << result.probes_sent << "\n";
  io::WriteTraces(out, result.traces);
  analysis::WriteCampaignReport(out, result, net.topology());
  return out.str();
}

TEST(BatchParity, CampaignIsByteIdenticalBatchedOrNot) {
  const std::string sequential = CampaignFingerprint(false, 1);
  EXPECT_EQ(CampaignFingerprint(true, 1), sequential);
  EXPECT_EQ(CampaignFingerprint(true, 4), sequential);
}

}  // namespace
}  // namespace wormhole
