// Multipath (ECMP) enumeration — a lightweight MDA in the spirit of
// [Augustin et al., IMC 2007], which the paper cites when discussing why
// per-flow load balancing can make a re-traced tunnel differ from the
// original (Sec. 3.3 fn. 11). Varying the Paris flow identifier walks the
// distinct forwarding paths to a target.
#pragma once

#include <set>
#include <vector>

#include "probe/prober.h"

namespace wormhole::probe {

struct MultiPathOptions {
  /// How many distinct flow identifiers to try.
  std::uint16_t flows = 16;
  TraceOptions trace_options;
};

struct MultiPathResult {
  netbase::Ipv4Address target;
  /// One trace per *distinct* responding-hop sequence.
  std::vector<TraceResult> distinct_traces;
  /// Addresses observed at each probe TTL across all flows (index 0 =
  /// first probed TTL).
  std::vector<std::set<netbase::Ipv4Address>> addresses_at_ttl;
  std::uint16_t flows_probed = 0;

  [[nodiscard]] std::size_t distinct_paths() const {
    return distinct_traces.size();
  }
  /// Widest fan-out at any hop distance (1 on a single path).
  [[nodiscard]] std::size_t MaxWidth() const;
};

/// Traces `target` under `options.flows` different flow identifiers and
/// aggregates the distinct paths.
MultiPathResult EnumeratePaths(Prober& prober, netbase::Ipv4Address target,
                               const MultiPathOptions& options = {});

}  // namespace wormhole::probe
