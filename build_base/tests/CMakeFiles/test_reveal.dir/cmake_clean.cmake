file(REMOVE_RECURSE
  "CMakeFiles/test_reveal.dir/test_reveal.cpp.o"
  "CMakeFiles/test_reveal.dir/test_reveal.cpp.o.d"
  "test_reveal"
  "test_reveal.pdb"
  "test_reveal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reveal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
