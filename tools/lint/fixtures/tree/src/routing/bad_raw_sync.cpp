// Fixture: the C++20 synchronization vocabulary outside src/exec must
// fire too — raw-threading covers more than std::thread/std::mutex.
#include <barrier>
#include <future>
#include <latch>
#include <semaphore>
#include <stop_token>

int Fanout() {
  std::latch done(1);                             // expect: raw-threading
  std::barrier sync(2);                           // expect: raw-threading
  std::counting_semaphore<4> slots(4);            // expect: raw-threading
  std::binary_semaphore gate(0);                  // expect: raw-threading
  std::promise<int> value;                        // expect: raw-threading
  std::future<int> result = value.get_future();   // expect: raw-threading
  std::packaged_task<int()> task([] { return 1; });  // expect: raw-threading
  std::stop_source stopper;                       // expect: raw-threading
  std::stop_token token = stopper.get_token();    // expect: raw-threading
  std::once_flag once;                            // expect: raw-threading
  std::call_once(once, [] {});                    // expect: raw-threading
  std::this_thread::yield();                      // expect: raw-threading
  value.set_value(7);
  done.count_down();
  done.wait();
  return result.get();
}
