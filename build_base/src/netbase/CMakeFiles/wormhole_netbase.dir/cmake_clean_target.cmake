file(REMOVE_RECURSE
  "libwormhole_netbase.a"
)
