// sem-nondet-reach fixture, clean counterpart: every stochastic draw
// flows through a seeded generator object and time is simulated, so a
// replay with the same seed is bit-exact.
namespace fix {

class SeededRng {
 public:
  explicit SeededRng(unsigned seed) : state_(seed) {}
  unsigned Next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_;
  }

 private:
  unsigned state_;
};

class Probe {
 public:
  int Send(int packet) { return Jitter(packet) + Stamp(packet); }

 private:
  int Jitter(int value) {
    return value + static_cast<int>(rng_.Next() % 3);  // seeded draw
  }
  int Stamp(int value) {
    simulated_ms_ += 1;  // simulated time, not the wall clock
    return value + simulated_ms_ % 2;
  }

  SeededRng rng_{7};
  int simulated_ms_ = 0;
};

}  // namespace fix
