file(REMOVE_RECURSE
  "../bench/fig10_degree"
  "../bench/fig10_degree.pdb"
  "CMakeFiles/fig10_degree.dir/fig10_degree.cpp.o"
  "CMakeFiles/fig10_degree.dir/fig10_degree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
