// The shared SPF engine: one Dijkstra per (AS, source router) per topology
// generation, computed allocation-light and cached for every consumer.
//
// Before this engine existed, InstallIgpRoutes, InstallBgpRoutes, LdpDomain
// and the IgpDistance/IgpHopDistance ground-truth queries each re-ran
// Dijkstra from scratch — the same (AS, source) tree two-plus times per
// convergence, each run allocating a fresh distance vector, a visited
// bitmap and one std::vector<NextHop> per relaxed node. The engine computes
// each tree exactly once, into a flat pooled representation, and hands out
// const references.
//
// Determinism contract: a tree's content is a pure function of the
// topology (links, metrics, up flags). The ECMP first-hop set of every
// destination is the union of source-adjacent (link, neighbor) arcs over
// all shortest paths — a set, independent of relaxation order — emitted in
// ascending (link, neighbor) order, which is exactly what the historical
// sort+unique merge produced. Trees may therefore be computed on any
// thread, in any order, and the result is bit-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "exec/sync.h"
#include "netbase/thread_annotations.h"
#include "routing/fib.h"
#include "topo/topology.h"

namespace wormhole::exec {
class ThreadPool;
}  // namespace wormhole::exec

namespace wormhole::routing {

constexpr int kUnreachable = std::numeric_limits<int>::max();

/// One source router's shortest-path tree, flat and pooled. The arrays
/// are windowed over the contiguous RouterId range the source actually
/// reaches (its own AS — the adjacency holds intra-AS arcs only): element
/// i describes router `base + i`. Everything outside the window is
/// unreachable by construction. Windowing is what keeps a fully primed
/// SPF cache at O(sum of AS-size²) instead of O(routers × AS count) —
/// with router_count-sized arrays per tree, a 100k-router world's cache
/// alone needed >100 GB.
struct SpfTree {
  RouterId source = topo::kNoRouter;
  /// First router id covered by the arrays; window is
  /// [base, base + distance.size()).
  RouterId base = 0;
  std::vector<int> distance;   ///< indexed by v - base
  std::vector<int> hop_count;  ///< indexed by v - base
  /// first_hop_begin[i] .. first_hop_begin[i + 1] delimits router
  /// (base + i)'s slice of first_hop_pool (sorted by (link, neighbor),
  /// duplicates merged).
  std::vector<std::uint32_t> first_hop_begin;
  std::vector<NextHop> first_hop_pool;

  /// Metric distance to `v`; kUnreachable outside the window.
  [[nodiscard]] int DistanceTo(RouterId v) const {
    const std::uint32_t i = v - base;  // below-base wraps to a huge index
    return i < distance.size() ? distance[i] : kUnreachable;
  }
  /// Hop-count distance to `v`; kUnreachable outside the window.
  [[nodiscard]] int HopCountTo(RouterId v) const {
    const std::uint32_t i = v - base;
    return i < hop_count.size() ? hop_count[i] : kUnreachable;
  }
  /// ECMP first-hop set towards `v`; empty outside the window.
  [[nodiscard]] std::span<const NextHop> FirstHops(RouterId v) const {
    const std::uint32_t i = v - base;
    if (i >= distance.size()) return {};
    return std::span<const NextHop>(first_hop_pool)
        .subspan(first_hop_begin[i],
                 first_hop_begin[i + 1] - first_hop_begin[i]);
  }
};

/// What one invalidation dropped: the stale sources and the union of
/// their primed trees' router-id windows (empty — lo > hi — when none of
/// the dropped sources had a primed tree). Consumed by the convergence
/// delta (routing/delta.h): a router outside the window was unreachable
/// from every dropped source, so no dropped tree ever routed through it.
struct SpfInvalidation {
  std::vector<RouterId> sources;
  RouterId window_lo = 1;
  RouterId window_hi = 0;

  [[nodiscard]] bool has_window() const { return window_lo <= window_hi; }
};

/// Per-topology SPF cache + the allocation-light Dijkstra that fills it.
///
/// The engine snapshots the topology's intra-AS adjacency into a flat CSR
/// (compressed sparse row) table and tracks topo::Topology::version() to
/// notice staleness: any cached tree is only served while the topology
/// generation it was computed under is current.
///
/// Threading: Prime() computes missing trees in parallel on an optional
/// exec::ThreadPool (fixed contiguous shards, one scratch per shard task,
/// disjoint writes — deterministic by construction). All other mutating
/// members are single-threaded; CachedTree() is const and safe to call
/// concurrently once the trees it reads were primed. The single-threaded
/// mutation phase is expressed as the `build_role_` capability: every
/// public mutator scopes it with an exec::RoleLock, and the cache/version
/// internals are GUARDED_BY / REQUIRES it, so a future caller that tries
/// to resync the version or reuse the serial scratch from outside the
/// build phase fails to compile under clang's thread-safety analysis.
class SpfEngine {
 public:
  explicit SpfEngine(const topo::Topology& topology);

  SpfEngine(const SpfEngine&) = delete;
  SpfEngine& operator=(const SpfEngine&) = delete;

  /// The tree rooted at `source`, computing it now if absent or stale.
  const SpfTree& TreeOf(RouterId source);

  /// The already-primed tree rooted at `source`. Hardened builds assert
  /// that the tree exists; use from parallel read-only phases.
  [[nodiscard]] const SpfTree& CachedTree(RouterId source) const;

  /// Ensures every tree in `sources` is computed, fanning the missing ones
  /// out over `pool` (null: serial). Safe to call with already-primed
  /// sources; only misses are computed.
  void Prime(const std::vector<RouterId>& sources, exec::ThreadPool* pool);

  /// Adopts the current topology version after a mutation the caller can
  /// bound: only the trees rooted at `stale_sources` are dropped, every
  /// other cached tree is kept. The caller asserts that no other source's
  /// shortest paths changed (e.g. an intra-AS link flip only invalidates
  /// that AS's members; an inter-AS flip invalidates none). Returns what
  /// was dropped, windows captured before the reset, for the convergence
  /// delta.
  SpfInvalidation ApplyTopologyChange(
      const std::vector<RouterId>& stale_sources);

  /// Drops the listed trees without touching the version or adjacency —
  /// for benchmarks and tests that force recomputation. Returns the same
  /// invalidation summary as ApplyTopologyChange.
  SpfInvalidation InvalidateTrees(const std::vector<RouterId>& sources);

  /// Total Dijkstra runs since construction (the "exactly one SPF per
  /// (AS, router) per convergence" counting hook).
  [[nodiscard]] std::uint64_t computations() const {
    return computations_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }

 private:
  /// One directed intra-AS arc of the CSR adjacency snapshot.
  struct Arc {
    RouterId to = topo::kNoRouter;
    topo::LinkId link = topo::kNoLink;
    int metric = 1;
  };

  /// Reusable per-worker Dijkstra state. All arrays are reset via the
  /// touched list, so a run costs O(visited), not O(router_count), after
  /// the first use.
  struct Scratch {
    std::vector<int> distance;
    std::vector<int> hops;
    /// Per-router ECMP bitmask over the source's arcs: bit r set means
    /// "reachable through the source arc with sorted rank r". `words`
    /// 64-bit words per router.
    std::vector<std::uint64_t> mask;
    std::size_t words = 0;
    std::vector<RouterId> touched;
    /// Binary heap of (distance, router), lowest first.
    std::vector<std::pair<int, RouterId>> heap;
    /// The source's arcs as NextHops, sorted by (link, neighbor) — the
    /// expansion table for the bitmasks.
    std::vector<NextHop> source_hops;
    /// CSR position (relative to the source's row) → sorted rank.
    std::vector<std::uint32_t> arc_rank;
    std::vector<std::uint32_t> order;
  };

  /// Recomputes the CSR adjacency and drops every tree if the topology
  /// version moved since the last sync.
  void SyncVersion() REQUIRES(build_role_);
  void RebuildAdjacency() REQUIRES(build_role_);
  void ComputeInto(RouterId source, SpfTree& tree, Scratch& scratch) const;

  const topo::Topology* topology_;
  /// The exclusive build phase: held (via RoleLock) by every public
  /// mutator. Zero-cost — a compile-time phase token, not a lock.
  exec::Role build_role_;
  std::uint64_t seen_version_ GUARDED_BY(build_role_) = 0;
  /// CSR rows: arcs of router r are arcs_[adjacency_begin_[r] ..
  /// adjacency_begin_[r + 1]]. Intra-AS up links only. Rebuilt only
  /// under build_role_; read lock-free by ComputeInto, whose shard tasks
  /// run strictly inside a Prime() fan-out (publication via the pool's
  /// task hand-off) — not GUARDED_BY-annotated for that reason.
  std::vector<std::uint32_t> adjacency_begin_;
  std::vector<Arc> arcs_;
  /// Indexed by RouterId; null until computed. Prime's shard tasks write
  /// disjoint slots, so the vector itself is phase-published like the
  /// adjacency, not GUARDED_BY-annotated.
  std::vector<std::unique_ptr<SpfTree>> trees_;
  /// Scratch for the serial TreeOf path (Prime shards own their own).
  Scratch serial_scratch_ GUARDED_BY(build_role_);
  mutable std::atomic<std::uint64_t> computations_{0};
};

}  // namespace wormhole::routing
