// Deterministic random number generation.
//
// Every stochastic component (topology generation, ECMP tie-breaking in
// generators, delay jitter) draws from an explicitly seeded engine so that
// campaigns, tests and benches are reproducible run to run.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace wormhole::netbase {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int UniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  std::uint32_t UniformU32() {
    return static_cast<std::uint32_t>(engine_());
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal draw.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Pareto-like heavy-tailed integer >= 1 with shape alpha, capped at max.
  int ParetoInt(double alpha, int max);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  template <typename Container>
  std::size_t WeightedIndex(const Container& weights) {
    double total = 0.0;
    for (const double w : weights) total += w;
    double draw = UniformReal(0.0, total);
    std::size_t i = 0;
    for (const double w : weights) {
      draw -= w;
      if (draw <= 0.0) return i;
      ++i;
    }
    return weights.size() - 1;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

inline int Rng::ParetoInt(double alpha, int max) {
  // Inverse-CDF sampling of a Pareto(1, alpha), truncated.
  const double u = UniformReal(0.0, 1.0);
  const double x = 1.0 / std::pow(1.0 - u, 1.0 / alpha);
  const int v = static_cast<int>(x);
  return v < 1 ? 1 : (v > max ? max : v);
}

}  // namespace wormhole::netbase
