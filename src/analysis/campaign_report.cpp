#include "analysis/campaign_report.h"

#include <filesystem>
#include <fstream>
#include <ostream>

#include "analysis/correct.h"
#include "analysis/metrics.h"
#include "analysis/report.h"
#include "analysis/tables.h"

namespace wormhole::analysis {

void WriteCampaignReport(std::ostream& os,
                         const campaign::CampaignResult& result,
                         const topo::Topology& topology,
                         const ReportOptions& options) {
  os << "# Invisible MPLS tunnel campaign report\n\n";
  os << "| | |\n|---|---|\n";
  os << "| probes sent | " << result.probes_sent << " |\n";
  os << "| targeted traces | " << result.trace_count << " |\n";
  os << "| HDNs (threshold " << options.hdn_threshold << ") | "
     << result.targets.hdns.size() << " |\n";
  os << "| candidate Ingress-Egress pairs | " << result.revelations.size()
     << " |\n";
  os << "| tunnels revealed | " << result.revealed_count() << " |\n";
  os << "| extra traces spent on revelation | " << result.revelation_traces
     << " |\n\n";

  const auto corrected =
      CorrectedCopy(result.inferred, result.revelations,
                    campaign::TruthResolver(topology), topology);

  os << "## Graph correction\n\n";
  const auto before = result.inferred.DegreeDistribution();
  const auto after = corrected.DegreeDistribution();
  os << "| metric | inferred | corrected |\n|---|---|---|\n";
  if (!before.empty() && !after.empty()) {
    os << "| max degree | " << before.Max() << " | " << after.Max()
       << " |\n";
    os << "| mean degree | " << TextTable::Real(before.Mean(), 2) << " | "
       << TextTable::Real(after.Mean(), 2) << " |\n";
  }
  os << "| clustering | "
     << TextTable::Real(AverageClustering(result.inferred), 3) << " | "
     << TextTable::Real(AverageClustering(corrected), 3) << " |\n";
  os << "| density | "
     << TextTable::Real(GlobalDensity(result.inferred), 5) << " | "
     << TextTable::Real(GlobalDensity(corrected), 5) << " |\n\n";

  os << "## Discovery per AS (Table 4 style)\n\n```\n";
  const auto discovery = MakeDiscoveryTable(result, corrected, topology,
                                            options.hdn_threshold);
  TextTable discovery_table({"AS", "HDNs", "I-E pairs", "%Rev.", "Raw LSPs",
                             "#IPs LSRs", "Dens before", "Dens after"});
  for (const auto& row : discovery) {
    discovery_table.AddRow({"AS" + std::to_string(row.asn),
                            TextTable::Num(row.hdns_itdk),
                            TextTable::Num(row.ie_pairs),
                            TextTable::Pct(row.pct_revealed),
                            TextTable::Num(row.raw_lsps),
                            TextTable::Num(row.lsr_ips),
                            TextTable::Real(row.density_before),
                            TextTable::Real(row.density_after)});
  }
  os << discovery_table.ToString() << "```\n\n";

  os << "## Deployment per AS (Table 5 style)\n\n```\n";
  TextTable deployment_table({"AS", "<255,255>", "<255,64>", "<64,64>",
                              "DPR%", "BRPR%", "either%", "FRPLA", "RTLA",
                              "FTL"});
  for (const auto& row : MakeDeploymentTable(result, topology)) {
    deployment_table.AddRow({"AS" + std::to_string(row.asn),
                             TextTable::Pct(row.pct_cisco, 0),
                             TextTable::Pct(row.pct_junos, 0),
                             TextTable::Pct(row.pct_6464, 0),
                             TextTable::Pct(row.pct_dpr, 0),
                             TextTable::Pct(row.pct_brpr, 0),
                             TextTable::Pct(row.pct_either, 0),
                             TextTable::Opt(row.frpla_median),
                             TextTable::Opt(row.rtla_median),
                             TextTable::Opt(row.ftl_median)});
  }
  os << deployment_table.ToString() << "```\n\n";

  if (!result.uhp_suspicions.empty()) {
    os << "## UHP (duplicate-hop) suspicions\n\n";
    for (const auto& [asn, count] : result.uhp_suspicions) {
      os << "* AS" << asn << ": " << count << " traces\n";
    }
    os << "\n";
  }

  if (options.include_distributions) {
    os << "## Headline distributions\n\n";
    const auto ftl = result.AllTunnelLengths();
    if (!ftl.empty()) {
      os << "* forward tunnel length: median " << ftl.Median() << ", max "
         << ftl.Max() << " (n=" << ftl.total() << ")\n";
    }
    const auto egress =
        result.frpla.Combined(reveal::ResponderRole::kEgressRevealed);
    const auto others = result.frpla.Combined(reveal::ResponderRole::kOther);
    if (!egress.empty() && !others.empty()) {
      os << "* RFA: egress-PR median " << egress.Median()
         << " vs others median " << others.Median() << "\n";
    }
    const auto rtl = result.rtla.Combined();
    if (!rtl.empty()) {
      os << "* return tunnel length (RTLA): median " << rtl.Median()
         << " (n=" << rtl.total() << ")\n";
    }
    if (!result.path_length_invisible.empty()) {
      os << "* path length over tunnel-crossing traces: "
         << TextTable::Real(result.path_length_invisible.Mean(), 2)
         << " -> "
         << TextTable::Real(result.path_length_visible.Mean(), 2)
         << " after correction\n";
    }
  }
}

void WriteDistributionCsv(std::ostream& os,
                          const netbase::IntDistribution& distribution) {
  os << "value,count,pdf\n";
  for (const auto& [value, count] : distribution.buckets()) {
    os << value << ',' << count << ',' << distribution.Pdf(value) << '\n';
  }
}

std::string WriteCampaignArtifacts(const std::string& directory,
                                   const campaign::CampaignResult& result,
                                   const topo::Topology& topology,
                                   const ReportOptions& options) {
  namespace fs = std::filesystem;
  fs::create_directories(directory);
  const auto csv = [&](const std::string& name,
                       const netbase::IntDistribution& d) {
    std::ofstream out(fs::path(directory) / name);
    WriteDistributionCsv(out, d);
  };
  csv("ftl.csv", result.AllTunnelLengths());
  csv("rfa_egress.csv",
      result.frpla.Combined(reveal::ResponderRole::kEgressRevealed));
  csv("rfa_others.csv",
      result.frpla.Combined(reveal::ResponderRole::kOther));
  csv("rtl.csv", result.rtla.Combined());
  csv("pathlen_invisible.csv", result.path_length_invisible);
  csv("pathlen_visible.csv", result.path_length_visible);
  csv("degree.csv", result.inferred.DegreeDistribution());

  const fs::path report_path = fs::path(directory) / "report.md";
  std::ofstream report(report_path);
  WriteCampaignReport(report, result, topology, options);
  return report_path.string();
}

}  // namespace wormhole::analysis
