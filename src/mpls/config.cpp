#include "mpls/config.h"

namespace wormhole::mpls {

MplsConfig DefaultConfigFor(topo::Vendor vendor) {
  MplsConfig config;
  switch (vendor) {
    case topo::Vendor::kCiscoIos:
    case topo::Vendor::kCiscoIosXr:
      config.ldp_policy = LdpPolicy::kAllPrefixes;
      break;
    case topo::Vendor::kJuniperJunos:
    case topo::Vendor::kJuniperJunosE:
      config.ldp_policy = LdpPolicy::kLoopbacksOnly;
      break;
    case topo::Vendor::kBrocade:
    case topo::Vendor::kLinux:
      // The paper observes <64,64> cores behaving like Juniper (Sec. 6,
      // AS3549 discussion): loopback-only advertisement.
      config.ldp_policy = LdpPolicy::kLoopbacksOnly;
      break;
  }
  return config;
}

void MplsConfigMap::EnableAs(topo::AsNumber asn, const AsOptions& options) {
  for (const topo::RouterId rid : topology_->as(asn).routers) {
    MplsConfig config = DefaultConfigFor(topology_->router(rid).vendor);
    config.enabled = true;
    config.ttl_propagate = options.ttl_propagate;
    config.popping = options.popping;
    if (options.ldp_policy) config.ldp_policy = *options.ldp_policy;
    configs_[rid] = config;
  }
}

void MplsConfigMap::Set(topo::RouterId router, MplsConfig config) {
  configs_[router] = config;
}

const MplsConfig& MplsConfigMap::For(topo::RouterId router) const {
  const auto it = configs_.find(router);
  if (it != configs_.end()) return it->second;
  // Lazily materialise the vendor default (disabled) so we can hand out a
  // stable reference.
  return configs_
      .emplace(router, DefaultConfigFor(topology_->router(router).vendor))
      .first->second;
}

MplsConfig& MplsConfigMap::Mutable(topo::RouterId router) {
  const auto it = configs_.find(router);
  if (it != configs_.end()) return it->second;
  return configs_
      .emplace(router, DefaultConfigFor(topology_->router(router).vendor))
      .first->second;
}

}  // namespace wormhole::mpls
