// Ablation of the data-plane behaviours the paper's techniques depend on
// (DESIGN.md design-choice index):
//   1. the min(TTL) rule on PHP pops — without it, FRPLA and RTLA go blind;
//   2. ICMP-forwarded-along-the-LSP — the source of Fig. 4a's return-TTL
//      inversion (and of interior return-path inflation);
//   3. per-flow ECMP — the main source of revelation re-run mismatches.
#include <iostream>

#include "analysis/report.h"
#include "bench/common.h"
#include "gen/gns3.h"
#include "probe/prober.h"
#include "reveal/frpla.h"
#include "reveal/rtla.h"

namespace {

using namespace wormhole;

struct Signal {
  int frpla_rfa = 0;
  int rtla_gap = 0;
  int first_lsr_return_ttl = 0;
  int last_lsr_return_ttl = 0;
};

Signal Measure(bool min_rule, bool icmp_along_lsp) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault,
                            .as2_vendor = topo::Vendor::kJuniperJunos});
  mpls::MplsConfigMap::AsOptions options;
  options.ttl_propagate = false;
  options.ldp_policy = mpls::LdpPolicy::kAllPrefixes;
  testbed.configs().EnableAs(2, options);
  for (const topo::Router& router : testbed.topology().routers()) {
    if (router.asn != 2) continue;
    testbed.configs().Mutable(router.id).min_ttl_on_pop = min_rule;
    testbed.configs().Mutable(router.id).icmp_along_lsp = icmp_along_lsp;
  }
  testbed.Reconverge();

  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  Signal signal;

  // FRPLA/RTLA at the (invisible) egress.
  const auto trace = prober.Traceroute(testbed.Address("CE2.left"));
  const auto& egress_hop = trace.hops[2];  // PE2
  if (egress_hop.address) {
    const auto rfa = reveal::ObserveRfa(egress_hop);
    if (rfa) signal.frpla_rfa = rfa->rfa();
    const auto ping = prober.Ping(*egress_hop.address);
    if (ping.responded) {
      const auto rtla = reveal::ObserveRtla(
          *egress_hop.address, egress_hop.reply_ip_ttl, ping.reply_ip_ttl);
      if (rtla) signal.rtla_gap = rtla->return_tunnel_length();
    }
  }

  // Return-TTL inversion needs a visible tunnel: flip propagate on.
  for (const topo::Router& router : testbed.topology().routers()) {
    if (router.asn == 2) {
      testbed.configs().Mutable(router.id).ttl_propagate = true;
    }
  }
  testbed.Reconverge();
  probe::Prober visible_prober(testbed.engine(), testbed.vantage_point());
  const auto visible = visible_prober.Traceroute(testbed.Address("CE2.left"));
  signal.first_lsr_return_ttl = visible.hops[2].reply_ip_ttl;  // P1
  signal.last_lsr_return_ttl = visible.hops[4].reply_ip_ttl;   // P3
  return signal;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: min-TTL rule, ICMP-along-LSP, ECMP",
      "design choices behind Secs. 3.1/3.3");

  analysis::TextTable table({"min rule", "icmp-along-lsp", "FRPLA RFA",
                             "RTLA gap", "P1 ret-TTL", "P3 ret-TTL"});
  for (const bool min_rule : {true, false}) {
    for (const bool along : {true, false}) {
      const Signal s = Measure(min_rule, along);
      table.AddRow({min_rule ? "on" : "OFF", along ? "on" : "OFF",
                    analysis::TextTable::Num(s.frpla_rfa),
                    analysis::TextTable::Num(s.rtla_gap),
                    analysis::TextTable::Num(s.first_lsr_return_ttl),
                    analysis::TextTable::Num(s.last_lsr_return_ttl)});
    }
  }
  std::cout << table.ToString();
  std::cout <<
      "\nreading: with the min rule ON the egress RFA (+3) and RTLA gap (3)"
      "\n  equal the hidden LSR count; turning it OFF zeroes both — the"
      "\n  paper's techniques rely on that single data-plane behaviour."
      "\nICMP-along-LSP inverts interior return TTLs (P1 < P3 when on)."
      "\n";

  // ECMP's effect on revelation re-runs: measured as the share of
  // candidate pairs the campaign fails to reveal in an invisible world
  // with ECMP on vs off.
  std::cout << "\n--- ECMP vs revelation success (flagship world) ---\n";
  for (const bool ecmp : {true, false}) {
    gen::InternetOptions options = bench::FlagshipOptions();
    gen::SyntheticInternet net(options);
    // Rebuild the network with ECMP toggled.
    sim::EngineOptions engine_options;
    engine_options.ecmp_enabled = ecmp;
    sim::Network network(net.topology(), net.configs(), net.bgp_policy(),
                         engine_options);
    campaign::Campaign campaign(network.engine(), net.vantage_points(), {});
    const auto result = campaign.Run(net.AllLoopbacks());
    std::size_t failed = 0;
    for (const auto& [pair, revelation] : result.revelations) {
      const auto asn = net.topology().AsOfAddress(pair.egress);
      if (net.profile(asn).invisible_tunnels() &&
          net.profile(asn).popping == mpls::Popping::kPhp &&
          !revelation.succeeded()) {
        ++failed;
      }
    }
    std::cout << "  ecmp=" << (ecmp ? "on " : "off") << "  pairs="
              << result.revelations.size() << "  revealed="
              << result.revealed_count() << "  failed-in-PHP-clouds="
              << failed << "\n";
  }
  return 0;
}
