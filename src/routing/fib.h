// Per-router forwarding table.
//
// One FIB per router, filled by the IGP (intra-AS prefixes) and BGP-lite
// (external prefixes). Longest-prefix-match lookup; entries carry their ECMP
// next-hop set and, for BGP routes, the recursive next hop (the egress LER
// loopback) that drives MPLS label imposition.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "netbase/ipv4.h"
#include "topo/topology.h"

namespace wormhole::routing {

using netbase::Ipv4Address;
using netbase::Prefix;
using topo::LinkId;
using topo::RouterId;

enum class RouteSource : std::uint8_t {
  kConnected,  ///< prefix on a local interface (or the loopback)
  kIgp,        ///< learned via intra-AS SPF
  kBgp,        ///< external, via the AS-level best path
};

/// One forwarding adjacency: send over `link` to `neighbor`.
struct NextHop {
  LinkId link = topo::kNoLink;
  RouterId neighbor = topo::kNoRouter;

  friend bool operator==(const NextHop&, const NextHop&) = default;
  friend auto operator<=>(const NextHop&, const NextHop&) = default;
};

struct FibEntry {
  Prefix prefix;
  RouteSource source = RouteSource::kConnected;
  /// IGP metric to the prefix (0 for connected; AS-internal part for BGP).
  int metric = 0;
  /// Equal-cost next hops, sorted for determinism. Empty for a connected
  /// prefix on the router itself (local delivery).
  std::vector<NextHop> next_hops;
  /// For BGP routes on non-border routers: the loopback of the chosen
  /// egress border router (next-hop-self). Unspecified otherwise.
  Ipv4Address bgp_next_hop;
};

class Fib {
 public:
  /// Inserts or replaces the route for `entry.prefix`.
  void AddRoute(FibEntry entry);

  /// Longest-prefix-match; nullptr when no route covers `dst`.
  [[nodiscard]] const FibEntry* Lookup(Ipv4Address dst) const;

  /// Exact-match on a prefix (FEC lookup for LDP); nullptr if absent.
  [[nodiscard]] const FibEntry* LookupExact(const Prefix& prefix) const;

  [[nodiscard]] std::size_t size() const { return routes_.size(); }

  /// All entries, most-specific first within each address.
  [[nodiscard]] std::vector<const FibEntry*> Entries() const;

 private:
  // Keyed by (address, -length) so that lower_bound walks from the most
  // specific candidate; LPM scans a handful of shorter candidates.
  std::map<std::pair<std::uint32_t, int>, FibEntry> routes_;
};

}  // namespace wormhole::routing
