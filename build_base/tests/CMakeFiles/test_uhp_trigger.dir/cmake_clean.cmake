file(REMOVE_RECURSE
  "CMakeFiles/test_uhp_trigger.dir/test_uhp_trigger.cpp.o"
  "CMakeFiles/test_uhp_trigger.dir/test_uhp_trigger.cpp.o.d"
  "test_uhp_trigger"
  "test_uhp_trigger.pdb"
  "test_uhp_trigger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uhp_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
