#include "analysis/tables.h"

#include <algorithm>
#include <map>
#include <set>

namespace wormhole::analysis {

namespace {

using campaign::CampaignResult;
using campaign::EndpointPair;
using topo::AsNumber;
using topo::NodeId;

double Percent(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

}  // namespace

std::vector<DiscoveryRow> MakeDiscoveryTable(
    const CampaignResult& result, const topo::ItdkDataset& corrected,
    const topo::Topology& topology, std::size_t hdn_threshold) {
  // Group the campaign's candidate pairs / revelations by AS.
  struct Bucket {
    std::set<EndpointPair> pairs;
    std::set<EndpointPair> revealed_pairs;
    std::set<std::vector<netbase::Ipv4Address>> raw_lsps;
    std::set<netbase::Ipv4Address> lsr_ips;
    std::set<netbase::Ipv4Address> ler_ips;
    std::set<NodeId> candidate_nodes;  ///< nodes acting as I or E
  };
  std::map<AsNumber, Bucket> buckets;

  for (const campaign::CandidateRecord& record : result.candidates) {
    Bucket& bucket = buckets[record.asn];
    bucket.pairs.insert(record.pair);
    bucket.ler_ips.insert(record.pair.ingress);
    bucket.ler_ips.insert(record.pair.egress);
    if (const auto n = result.inferred.FindNode(record.pair.ingress)) {
      bucket.candidate_nodes.insert(*n);
    }
    if (const auto n = result.inferred.FindNode(record.pair.egress)) {
      bucket.candidate_nodes.insert(*n);
    }
  }
  for (const auto& [pair, revelation] : result.revelations) {
    if (!revelation.succeeded()) continue;
    const auto node = result.inferred.FindNode(pair.egress);
    if (!node) continue;
    Bucket& bucket = buckets[result.inferred.node(*node).asn];
    bucket.revealed_pairs.insert(pair);
    bucket.raw_lsps.insert(revelation.revealed);
    bucket.lsr_ips.insert(revelation.revealed.begin(),
                          revelation.revealed.end());
  }

  std::vector<DiscoveryRow> rows;
  for (const auto& [asn, bucket] : buckets) {
    DiscoveryRow row;
    row.asn = asn;
    row.name = topology.HasAs(asn) ? topology.as(asn).name : "?";

    // HDNs of this AS in the inferred dataset.
    for (const NodeId hdn : result.targets.hdns) {
      if (result.inferred.node(hdn).asn == asn) ++row.hdns_itdk;
    }
    for (const NodeId node : bucket.candidate_nodes) {
      if (result.inferred.Degree(node) >= hdn_threshold) {
        ++row.hdns_candidate;
      }
    }
    row.ie_pairs = bucket.pairs.size();
    row.pct_revealed = Percent(bucket.revealed_pairs.size(),
                               bucket.pairs.size());
    row.raw_lsps = bucket.raw_lsps.size();
    row.lsr_ips = bucket.lsr_ips.size();
    std::size_t also_ler = 0;
    for (const netbase::Ipv4Address ip : bucket.lsr_ips) {
      if (bucket.ler_ips.contains(ip)) ++also_ler;
    }
    row.pct_ips_lers = Percent(also_ler, bucket.lsr_ips.size());

    // Density over the candidate LER nodes, before/after correction.
    const std::vector<NodeId> nodes(bucket.candidate_nodes.begin(),
                                    bucket.candidate_nodes.end());
    row.density_before = result.inferred.Density(nodes);
    // Node ids are stable across the corrected copy (it only adds nodes).
    row.density_after = corrected.Density(nodes);
    rows.push_back(std::move(row));
  }

  // Largest candidate counts first, like the paper's Table 4 ordering.
  std::sort(rows.begin(), rows.end(),
            [](const DiscoveryRow& a, const DiscoveryRow& b) {
              return a.hdns_itdk > b.hdns_itdk;
            });
  return rows;
}

std::vector<DeploymentRow> MakeDeploymentTable(
    const CampaignResult& result, const topo::Topology& topology) {
  struct Bucket {
    std::size_t cisco = 0, junos = 0, b6464 = 0, other = 0, total = 0;
    std::size_t dpr = 0, brpr = 0, either = 0, hybrid = 0, revealed = 0;
    netbase::IntDistribution ftl;
  };
  std::map<AsNumber, Bucket> buckets;

  // Signature mix per AS over every fingerprinted address.
  for (const auto& [address, signature] : result.signatures.SortedEntries()) {
    const AsNumber asn = topology.AsOfAddress(address);
    if (asn == 0) continue;
    if (!result.signatures.SignatureOf(address)) continue;
    Bucket& bucket = buckets[asn];
    ++bucket.total;
    switch (fingerprint::Classify(signature)) {
      case fingerprint::SignatureClass::kCisco: ++bucket.cisco; break;
      case fingerprint::SignatureClass::kJuniperJunos: ++bucket.junos; break;
      case fingerprint::SignatureClass::kBrocadeLinux: ++bucket.b6464; break;
      default: ++bucket.other; break;
    }
  }

  // Discovery technique mix per AS.
  for (const auto& [pair, revelation] : result.revelations) {
    if (!revelation.succeeded()) continue;
    const AsNumber asn = topology.AsOfAddress(pair.egress);
    if (asn == 0) continue;
    Bucket& bucket = buckets[asn];
    ++bucket.revealed;
    bucket.ftl.Add(static_cast<int>(revelation.revealed.size()));
    switch (revelation.method) {
      case reveal::RevelationMethod::kDpr: ++bucket.dpr; break;
      case reveal::RevelationMethod::kBrpr: ++bucket.brpr; break;
      case reveal::RevelationMethod::kEither: ++bucket.either; break;
      case reveal::RevelationMethod::kHybrid: ++bucket.hybrid; break;
      case reveal::RevelationMethod::kNone: break;
    }
  }

  std::vector<DeploymentRow> rows;
  for (const auto& [asn, bucket] : buckets) {
    if (bucket.revealed == 0) continue;  // ASes with no revealed tunnels
    DeploymentRow row;
    row.asn = asn;
    row.pct_cisco = Percent(bucket.cisco, bucket.total);
    row.pct_junos = Percent(bucket.junos, bucket.total);
    row.pct_6464 = Percent(bucket.b6464, bucket.total);
    row.pct_other = Percent(bucket.other, bucket.total);
    row.pct_dpr = Percent(bucket.dpr, bucket.revealed);
    row.pct_brpr = Percent(bucket.brpr, bucket.revealed);
    row.pct_either = Percent(bucket.either, bucket.revealed);
    row.pct_hybrid = Percent(bucket.hybrid, bucket.revealed);
    row.frpla_median = result.frpla.EstimatedTunnelLength(asn);
    row.rtla_median = result.rtla.EstimatedTunnelLength(asn);
    if (!bucket.ftl.empty()) row.ftl_median = bucket.ftl.Median();
    rows.push_back(std::move(row));
  }

  // Sort by Cisco share descending, like the paper's Table 5.
  std::sort(rows.begin(), rows.end(),
            [](const DeploymentRow& a, const DeploymentRow& b) {
              return a.pct_cisco > b.pct_cisco;
            });
  return rows;
}

}  // namespace wormhole::analysis
