# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build_base/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build_base/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tunnel_hunter "/root/repo/build_base/examples/tunnel_hunter")
set_tests_properties(example_tunnel_hunter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_delay_anomaly "/root/repo/build_base/examples/delay_anomaly")
set_tests_properties(example_delay_anomaly PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_internet_campaign "/root/repo/build_base/examples/internet_campaign" "7")
set_tests_properties(example_internet_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
