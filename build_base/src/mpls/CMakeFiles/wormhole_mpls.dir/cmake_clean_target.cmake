file(REMOVE_RECURSE
  "libwormhole_mpls.a"
)
