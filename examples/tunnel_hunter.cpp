// tunnel_hunter — the "modified traceroute" the paper's conclusion
// envisions (Sec. 8 / Table 6): run a normal Paris traceroute, use FRPLA
// and RTLA as *triggers* for invisible-tunnel suspicion at each hop pair,
// and when a hop pair looks suspicious, fire DPR/BRPR to reveal the hidden
// LSRs on the fly.
#include <iomanip>
#include <iostream>

#include "gen/internet.h"
#include "probe/prober.h"
#include "reveal/frpla.h"
#include "reveal/revelator.h"
#include "reveal/rtla.h"
#include "reveal/uhp_trigger.h"

using namespace wormhole;

namespace {

std::string NameOf(const topo::Topology& topology, netbase::Ipv4Address a) {
  const auto router = topology.FindRouterByAddress(a);
  return router ? topology.router(*router).name : a.ToString();
}

void Hunt(gen::SyntheticInternet& net, probe::Prober& prober,
          netbase::Ipv4Address target) {
  const auto& topology = net.topology();
  std::cout << "tracing " << NameOf(topology, target) << " ("
            << target << ")\n";
  const auto trace = prober.Traceroute(target, {.first_ttl = 2});

  // Trigger 0 — UHP: a duplicated consecutive hop marks a *totally*
  // invisible cloud nothing below can open.
  for (const auto& suspicion : reveal::DetectUhpSuspicions(trace)) {
    std::cout << "  !! UHP suspicion: " << NameOf(topology,
                                                  suspicion.duplicate)
              << " answered twice (TTL " << suspicion.first_ttl << "/"
              << suspicion.first_ttl + 1 << ") — invisible UHP cloud"
              << (suspicion.before
                      ? " behind " + NameOf(topology, *suspicion.before)
                      : std::string())
              << "\n";
  }

  std::optional<netbase::Ipv4Address> previous;
  for (const auto& hop : trace.hops) {
    std::cout << "  " << std::setw(2) << hop.probe_ttl << "  ";
    if (!hop.address) {
      std::cout << "*\n";
      previous.reset();
      continue;
    }
    std::cout << std::left << std::setw(18) << NameOf(topology, *hop.address)
              << std::right << " [" << hop.reply_ip_ttl << "]";

    // Trigger 1 — FRPLA: does the return path look longer than the
    // forward one by more than routing asymmetry should allow?
    bool suspicious = false;
    if (hop.reply_kind == netbase::PacketKind::kTimeExceeded) {
      if (const auto rfa = reveal::ObserveRfa(hop); rfa && rfa->rfa() >= 2) {
        std::cout << "  <- FRPLA trigger (RFA " << rfa->rfa() << ")";
        suspicious = true;
      }
      // Trigger 2 — RTLA, when the responder is <255,64>.
      const auto ping = prober.Ping(*hop.address);
      if (ping.responded) {
        const auto rtla = reveal::ObserveRtla(
            *hop.address, hop.reply_ip_ttl, ping.reply_ip_ttl);
        if (rtla && rtla->return_tunnel_length() >= 1) {
          std::cout << "  <- RTLA trigger (return tunnel "
                    << rtla->return_tunnel_length() << " LSRs)";
          suspicious = true;
        }
      }
    }
    std::cout << "\n";

    if (suspicious && previous) {
      reveal::Revelator revelator(prober,
                                  {.trace_options = {.first_ttl = 2}});
      const auto result = revelator.Reveal(*previous, *hop.address);
      if (result.succeeded()) {
        std::cout << "      revealed via " << reveal::ToString(result.method)
                  << ":";
        for (const auto lsr : result.revealed) {
          std::cout << "  " << NameOf(topology, lsr);
        }
        std::cout << "\n";
      } else {
        std::cout << "      revelation failed (UHP or no tunnel)\n";
      }
    }
    previous = hop.address;
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  gen::SyntheticInternet net({.seed = 29});
  probe::Prober prober(net.engine(), net.vantage_points().front());

  // Hunt across a few far-away loopbacks: transit paths crossing the
  // MPLS clouds.
  int hunted = 0;
  for (const auto& [asn, profile] : net.profiles()) {
    if (profile.role != gen::AsRole::kStub || hunted >= 4) continue;
    const auto target =
        net.topology().router(profile.edge_routers.front()).loopback;
    Hunt(net, prober, target);
    ++hunted;
  }
  std::cout << "probes spent: " << prober.probes_sent() << "\n";
  return 0;
}
