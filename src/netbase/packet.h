// The simulated packet model.
//
// A single struct covers probe packets (ICMP echo-request, as sent by the
// paper's scamper/Paris-traceroute campaign) and the replies they elicit
// (echo-reply, time-exceeded, destination-unreachable). Replies carry the
// RFC 4950 quotation of the MPLS label stack when the generating router
// implements that extension.
#pragma once

#include <cstdint>

#include "netbase/ipv4.h"
#include "netbase/label.h"

namespace wormhole::netbase {

enum class PacketKind : std::uint8_t {
  kEchoRequest,
  kEchoReply,
  kTimeExceeded,
  kDestinationUnreachable,
};

inline const char* ToString(PacketKind kind) {
  switch (kind) {
    case PacketKind::kEchoRequest: return "echo-request";
    case PacketKind::kEchoReply: return "echo-reply";
    case PacketKind::kTimeExceeded: return "time-exceeded";
    case PacketKind::kDestinationUnreachable: return "destination-unreachable";
  }
  return "?";
}

/// A simulated IPv4 packet, possibly MPLS-encapsulated.
struct Packet {
  PacketKind kind = PacketKind::kEchoRequest;
  Ipv4Address src;
  Ipv4Address dst;
  /// IP header TTL. `int` rather than uint8_t so that arithmetic never
  /// silently wraps (ES.106); the data plane clamps/expires explicitly.
  int ip_ttl = 64;
  /// MPLS shim, in-flight order: TOP of stack at the BACK (push/pop are
  /// O(1) and allocation-free up to kInlineLabelStackDepth); empty when
  /// not encapsulated.
  LabelStack labels;

  /// Flow identifier standing in for the (ports, ICMP checksum) fields that
  /// per-flow ECMP hashes on. Paris traceroute keeps it constant.
  std::uint16_t flow_id = 0;
  /// Probe identifier used to match replies with probes (ICMP echo id/seq).
  std::uint32_t probe_id = 0;

  // --- reply-only fields (quotation of the offending packet) -------------
  /// RFC 4950: label stack of the packet whose TTL expired, as quoted by the
  /// replying router — in WIRE order (top of stack first, see QuoteStack).
  /// Empty if the router does not implement RFC 4950 or the packet carried
  /// no labels.
  LabelStack quoted_labels;
  /// Address the offending probe was heading to (quoted IP header).
  Ipv4Address quoted_dst;

  /// One-way delay accumulated so far, in milliseconds (for RTT reports).
  double elapsed_ms = 0.0;
  /// Number of data-plane hops traversed so far; a loop guard only.
  int hops_traversed = 0;

  [[nodiscard]] bool is_reply() const {
    return kind != PacketKind::kEchoRequest;
  }
  [[nodiscard]] bool has_labels() const { return !labels.empty(); }

  /// Field-for-field equality (batch-vs-sequential parity checks).
  friend bool operator==(const Packet&, const Packet&) = default;
};

}  // namespace wormhole::netbase
