// Table 3: cross-validation of DPR and BRPR on *explicit* tunnels — force
// ttl-propagate on, harvest Ingress-Egress pairs with fully revealed LSR
// content, re-run the revelation machinery, classify outcomes.
#include <iostream>

#include "analysis/report.h"
#include "bench/common.h"
#include "campaign/crossval.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader("Cross-validation on explicit tunnels", "Table 3");

  gen::SyntheticInternet net(bench::FlagshipOptions());
  net.ForceTtlPropagation(true);

  std::vector<probe::Prober> probers;
  for (const auto vp : net.vantage_points()) {
    probers.emplace_back(net.engine(), vp);
  }
  std::vector<probe::TraceResult> traces;
  for (auto& prober : probers) {
    for (const auto loopback : net.AllLoopbacks()) {
      traces.push_back(prober.Traceroute(loopback, {.first_ttl = 2}));
    }
  }
  const auto tunnels =
      campaign::ExtractExplicitTunnels(traces, net.topology());
  std::cout << "traces collected: " << traces.size()
            << "   distinct Ingress-Egress pairs with revealed LSRs: "
            << tunnels.size() << "\n\n";

  const auto summary =
      campaign::CrossValidateAll(probers, tunnels, {.first_ttl = 2});

  const auto pct = [&](std::size_t v) {
    return analysis::TextTable::Pct(
        100.0 * static_cast<double>(v) /
            static_cast<double>(std::max<std::size_t>(1, summary.validated())),
        1);
  };
  analysis::TextTable table({"outcome", "share (%)", "paper (%)"});
  table.AddRow({"BRPR or DPR fail", pct(summary.fail), "8"});
  table.AddRow({"DPR successful", pct(summary.dpr), "57"});
  table.AddRow({"BRPR successful", pct(summary.brpr), "3"});
  table.AddRow({"hybrid DPR/BRPR", pct(summary.hybrid), "5"});
  table.AddRow({"BRPR or DPR (1 LSR)", pct(summary.either), "26"});
  std::cout << table.ToString();
  std::cout << "\npairs whose re-run failed to rediscover the LERs: "
            << summary.rerun_failed << " (paper: 9,407 of 14,771)\n";
  std::cout << "shape: the vast majority validates; DPR dominates BRPR "
               "whenever loopback-only LDP filtering is common; single-LSR "
               "tunnels are ambiguous. Our synthetic vendor mix has more "
               "all-prefix (Cisco-default) ASes than the real Internet, so "
               "BRPR's share is higher than the paper's 3%.\n";
  return 0;
}
