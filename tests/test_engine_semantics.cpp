// Deeper data-plane semantic cases: UHP under ttl-propagate (visible UHP),
// explicit-null quoting, multi-AS transit TTL accounting, and stacked-label
// TTL rules.
#include <gtest/gtest.h>

#include "gen/gns3.h"
#include "mpls/config.h"
#include "probe/prober.h"
#include "reveal/revelator.h"
#include "sim/network.h"

namespace wormhole::sim {
namespace {

using gen::Gns3Scenario;
using gen::Gns3Testbed;

TEST(UhpSemantics, VisibleUhpQuotesExplicitNullAtTheEgress) {
  // UHP *with* ttl-propagate: the LSE-TTL can expire at the egress, which
  // then quotes the explicit-null label (value 0).
  Gns3Testbed testbed({.scenario = Gns3Scenario::kTotallyInvisible});
  for (const topo::Router& router : testbed.topology().routers()) {
    if (router.asn == 2) {
      testbed.configs().Mutable(router.id).ttl_propagate = true;
    }
  }
  testbed.Reconverge();
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto trace = prober.Traceroute(testbed.Address("CE2.left"));
  ASSERT_TRUE(trace.reached);
  // All five AS2 routers visible: CE1, PE1, P1, P2, P3, PE2, CE2.
  ASSERT_EQ(trace.hops.size(), 7u);
  // The egress (hop 6 = PE2) expired in label space and quotes label 0.
  const auto& egress = trace.hops[5];
  ASSERT_TRUE(egress.address.has_value());
  EXPECT_EQ(testbed.NameOf(*egress.address), "PE2.left");
  ASSERT_TRUE(egress.has_labels());
  EXPECT_EQ(egress.labels[0].label,
            static_cast<std::uint32_t>(
                netbase::ReservedLabel::kIpv4ExplicitNull));
  // Interior LSRs quote real labels.
  ASSERT_TRUE(trace.hops[2].has_labels());
  EXPECT_GE(trace.hops[2].labels[0].label, netbase::kFirstUnreservedLabel);
}

TEST(UhpSemantics, UhpDoesNotApplyMinRule) {
  // Under UHP + no-propagate, the egress pop must NOT copy min(IP, LSE):
  // otherwise replies crossing the return tunnel would suddenly "count"
  // its interior. Verified through the return TTL of the reply from the
  // router *behind* the cloud.
  Gns3Testbed testbed({.scenario = Gns3Scenario::kTotallyInvisible});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto trace = prober.Traceroute(testbed.Address("CE2.left"));
  ASSERT_TRUE(trace.reached);
  // CE2's echo reply: initial 255; decrements at PE2 (ingress of the
  // return tunnel), PE1 (UHP pop + forward), CE1 => 252 (Fig. 4d).
  EXPECT_EQ(trace.hops.back().reply_ip_ttl, 252);
}

TEST(MultiAsTransit, TtlAccountingAcrossTwoMplsClouds) {
  // src | AS2: in1-m1-out1 | AS3: in2-m2-out2 | dst — both clouds
  // invisible. The trace shows the four LERs and hides both interiors.
  topo::Topology topology;
  topology.AddAs(1, "src");
  topology.AddAs(2, "cloud-a");
  topology.AddAs(3, "cloud-b");
  topology.AddAs(4, "dst");
  const auto gw = topology.AddRouter(1, "gw", topo::Vendor::kCiscoIos);
  const auto in1 = topology.AddRouter(2, "in1", topo::Vendor::kCiscoIos);
  const auto m1 = topology.AddRouter(2, "m1", topo::Vendor::kCiscoIos);
  const auto out1 = topology.AddRouter(2, "out1", topo::Vendor::kCiscoIos);
  const auto in2 = topology.AddRouter(3, "in2", topo::Vendor::kCiscoIos);
  const auto m2 = topology.AddRouter(3, "m2", topo::Vendor::kCiscoIos);
  const auto out2 = topology.AddRouter(3, "out2", topo::Vendor::kCiscoIos);
  const auto dst = topology.AddRouter(4, "dst", topo::Vendor::kCiscoIos);
  topology.AddLink(gw, in1);
  topology.AddLink(in1, m1);
  topology.AddLink(m1, out1);
  topology.AddLink(out1, in2);
  topology.AddLink(in2, m2);
  topology.AddLink(m2, out2);
  topology.AddLink(out2, dst);
  const auto vp = topology.AttachHost(gw, "VP");

  mpls::MplsConfigMap configs(topology);
  configs.EnableAs(2, {.ttl_propagate = false});
  configs.EnableAs(3, {.ttl_propagate = false});
  Network network(topology, configs,
                  routing::BgpPolicy{.stub_ases = {1, 4}});
  probe::Prober prober(network.engine(), vp);

  const auto trace = prober.Traceroute(topology.router(dst).loopback);
  ASSERT_TRUE(trace.reached);
  // gw, in1, out1, in2, out2, dst — m1 and m2 hidden.
  ASSERT_EQ(trace.hops.size(), 6u);
  const auto name = [&](std::size_t i) {
    return topology
        .router(*topology.FindRouterByAddress(*trace.hops[i].address))
        .name;
  };
  EXPECT_EQ(name(1), "in1");
  EXPECT_EQ(name(2), "out1");
  EXPECT_EQ(name(3), "in2");
  EXPECT_EQ(name(4), "out2");
}

TEST(MultiAsTransit, OnlyTheLastTunnelIsRevealedPerTrace) {
  // The paper (Sec. 7): when a trace crosses several invisible tunnels,
  // the methodology only reveals the last one — because candidate
  // extraction looks at the final X, Y, D. Verify the earlier cloud's
  // interior is still revealable by explicitly targeting it.
  topo::Topology topology;
  topology.AddAs(1, "src");
  topology.AddAs(2, "cloud-a");
  topology.AddAs(3, "cloud-b");
  topology.AddAs(4, "dst");
  const auto gw = topology.AddRouter(1, "gw", topo::Vendor::kCiscoIos);
  const auto in1 = topology.AddRouter(2, "in1", topo::Vendor::kCiscoIos);
  const auto m1 = topology.AddRouter(2, "m1", topo::Vendor::kCiscoIos);
  const auto out1 = topology.AddRouter(2, "out1", topo::Vendor::kCiscoIos);
  const auto in2 = topology.AddRouter(3, "in2", topo::Vendor::kCiscoIos);
  const auto m2 = topology.AddRouter(3, "m2", topo::Vendor::kCiscoIos);
  const auto out2 = topology.AddRouter(3, "out2", topo::Vendor::kCiscoIos);
  const auto dst = topology.AddRouter(4, "dst", topo::Vendor::kCiscoIos);
  topology.AddLink(gw, in1);
  topology.AddLink(in1, m1);
  topology.AddLink(m1, out1);
  topology.AddLink(out1, in2);
  topology.AddLink(in2, m2);
  topology.AddLink(m2, out2);
  topology.AddLink(out2, dst);
  const auto vp = topology.AttachHost(gw, "VP");

  mpls::MplsConfigMap configs(topology);
  configs.EnableAs(2, {.ttl_propagate = false});
  configs.EnableAs(3, {.ttl_propagate = false});
  Network network(topology, configs,
                  routing::BgpPolicy{.stub_ases = {1, 4}});
  probe::Prober prober(network.engine(), vp);

  reveal::Revelator revelator(prober);
  // The incoming (VP-facing) interface of each LER is its first one —
  // links were added in path order.
  const auto incoming = [&](topo::RouterId rid) {
    return topology.EndOn(topology.Neighbors(rid)[0].second, rid).address;
  };
  // Last tunnel: in2 -> out2.
  const auto last = revelator.Reveal(incoming(in2), incoming(out2));
  EXPECT_TRUE(last.succeeded());
  ASSERT_EQ(last.revealed.size(), 1u);
  EXPECT_EQ(topology.FindRouterByAddress(last.revealed[0]),
            std::optional<topo::RouterId>(m2));
  // Earlier tunnel: in1 -> out1, revealed when targeted directly.
  const auto first = revelator.Reveal(incoming(in1), incoming(out1));
  EXPECT_TRUE(first.succeeded());
  ASSERT_EQ(first.revealed.size(), 1u);
  EXPECT_EQ(topology.FindRouterByAddress(first.revealed[0]),
            std::optional<topo::RouterId>(m1));
}

TEST(UhpSemantics, UhpProducesTheDuplicateHopSignature) {
  // An invisible UHP egress decrements the IP-TTL without ever expiring,
  // so the router *behind* the cloud answers two consecutive probe TTLs —
  // the duplicate-hop artifact real UHP deployments exhibit (used as a
  // UHP trigger by the authors' follow-up work).
  topo::Topology topology;
  topology.AddAs(1, "src");
  topology.AddAs(2, "uhp-cloud");
  topology.AddAs(3, "dst");
  const auto gw = topology.AddRouter(1, "gw", topo::Vendor::kCiscoIos);
  const auto in = topology.AddRouter(2, "in", topo::Vendor::kCiscoIos);
  const auto m = topology.AddRouter(2, "m", topo::Vendor::kCiscoIos);
  const auto out = topology.AddRouter(2, "out", topo::Vendor::kCiscoIos);
  const auto d1 = topology.AddRouter(3, "d1", topo::Vendor::kCiscoIos);
  const auto d2 = topology.AddRouter(3, "d2", topo::Vendor::kCiscoIos);
  topology.AddLink(gw, in);
  topology.AddLink(in, m);
  topology.AddLink(m, out);
  topology.AddLink(out, d1);
  topology.AddLink(d1, d2);
  const auto vp = topology.AttachHost(gw, "VP");
  mpls::MplsConfigMap configs(topology);
  configs.EnableAs(2, {.ttl_propagate = false,
                       .popping = mpls::Popping::kUhp});
  Network network(topology, configs,
                  routing::BgpPolicy{.stub_ases = {1, 3}});
  probe::Prober prober(network.engine(), vp);

  const auto trace = prober.Traceroute(topology.router(d2).loopback);
  ASSERT_TRUE(trace.reached);
  // gw, in, d1, d1 (duplicate!), d2 — the cloud absorbed one TTL.
  ASSERT_EQ(trace.hops.size(), 5u);
  ASSERT_TRUE(trace.hops[2].address && trace.hops[3].address);
  EXPECT_EQ(*trace.hops[2].address, *trace.hops[3].address);
  EXPECT_EQ(topology.FindRouterByAddress(*trace.hops[2].address),
            std::optional<topo::RouterId>(d1));
}

TEST(MinRuleConfig, DisablingMinRuleHidesTheReturnTunnelFromFrpla) {
  // The ablation knob: with min_ttl_on_pop off, the return LSP leaves the
  // reply's IP-TTL untouched, so the egress reply comes back "too fresh".
  Gns3Testbed testbed({.scenario = Gns3Scenario::kBackwardRecursive});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const int with_min =
      prober.Traceroute(testbed.Address("CE2.left")).hops[2].reply_ip_ttl;

  for (const topo::Router& router : testbed.topology().routers()) {
    if (router.asn == 2) {
      testbed.configs().Mutable(router.id).min_ttl_on_pop = false;
    }
  }
  testbed.Reconverge();
  probe::Prober no_min_prober(testbed.engine(), testbed.vantage_point());
  const int without_min = no_min_prober.Traceroute(testbed.Address("CE2.left"))
                              .hops[2]
                              .reply_ip_ttl;
  // With the min rule: 250 (tunnel counted). Without: 253 (only PE1, CE1
  // decrement the reply) — the FRPLA signal is gone.
  EXPECT_EQ(with_min, 250);
  EXPECT_EQ(without_min, 253);
}

TEST(ReplyRouting, DestinationUnreachableComesFromTheLastRouter) {
  Gns3Testbed testbed({.scenario = Gns3Scenario::kDefault});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  // An unassigned address inside AS3's block: routed until CE2, which has
  // no matching route and answers destination-unreachable.
  const auto block = testbed.topology().as(3).block;
  const auto bogus = block.At(block.size() - 2);
  const auto trace = prober.Traceroute(bogus);
  ASSERT_TRUE(trace.unreachable);
  const auto& last = trace.hops.back();
  ASSERT_TRUE(last.address.has_value());
  EXPECT_EQ(testbed.topology().AsOfAddress(*last.address), 3u);
  EXPECT_EQ(last.reply_kind, netbase::PacketKind::kDestinationUnreachable);
}

}  // namespace
}  // namespace wormhole::sim
