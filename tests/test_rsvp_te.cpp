// RSVP-TE extension: explicit-route tunnels, steering, and their
// interaction with traceroute visibility (the paper's "UHP is mainly for
// TE" observation).
#include <gtest/gtest.h>

#include "mpls/rsvp_te.h"
#include "probe/prober.h"
#include "reveal/revelator.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace wormhole::mpls {
namespace {

using topo::RouterId;
using topo::Vendor;

// AS1(gw) | AS2: in - a - b - out  plus a detour in - c - d - out | AS3(dst)
struct TeWorld {
  topo::Topology topology;
  std::unique_ptr<MplsConfigMap> configs;
  TeDatabase te;
  std::unique_ptr<sim::Network> network;
  netbase::Ipv4Address vp;
  RouterId gw, in, a, b, c, d, out, dst;

  TeWorld() {
    topology.AddAs(1, "src");
    topology.AddAs(2, "mpls");
    topology.AddAs(3, "dst");
    gw = topology.AddRouter(1, "gw", Vendor::kCiscoIos);
    in = topology.AddRouter(2, "in", Vendor::kCiscoIos);
    a = topology.AddRouter(2, "a", Vendor::kCiscoIos);
    b = topology.AddRouter(2, "b", Vendor::kCiscoIos);
    c = topology.AddRouter(2, "c", Vendor::kCiscoIos);
    d = topology.AddRouter(2, "d", Vendor::kCiscoIos);
    out = topology.AddRouter(2, "out", Vendor::kCiscoIos);
    dst = topology.AddRouter(3, "dst", Vendor::kCiscoIos);
    topology.AddLink(gw, in);
    // Short IGP path (2 interior hops)...
    topology.AddLink(in, a);
    topology.AddLink(a, b);
    topology.AddLink(b, out);
    // ...and a longer detour the TE tunnel will pin.
    topology.AddLink(in, c, {.igp_metric = 10});
    topology.AddLink(c, d, {.igp_metric = 10});
    topology.AddLink(d, out, {.igp_metric = 10});
    topology.AddLink(out, dst);
    vp = topology.AttachHost(gw, "VP");
    configs = std::make_unique<MplsConfigMap>(topology);
    // LDP off: this is a pure RSVP-TE domain (enabled, but loopback-only
    // LDP with no bindings used for steered traffic either way).
    MplsConfigMap::AsOptions options;
    options.ttl_propagate = false;
    configs->EnableAs(2, options);
  }

  void Converge() {
    network = std::make_unique<sim::Network>(
        topology, *configs, routing::BgpPolicy{.stub_ases = {1, 3}},
        sim::EngineOptions{}, &te);
  }
};

TEST(TeDatabase, RejectsBadSpecs) {
  TeWorld world;
  TeTunnelSpec spec;
  spec.path = {world.in};
  EXPECT_THROW(world.te.AddTunnel(world.topology, spec),
               std::invalid_argument);
  spec.path = {world.in, world.b};  // not adjacent
  EXPECT_THROW(world.te.AddTunnel(world.topology, spec),
               std::invalid_argument);
  spec.path = {world.gw, world.in};  // crosses the AS boundary
  EXPECT_THROW(world.te.AddTunnel(world.topology, spec),
               std::invalid_argument);
}

TEST(TeDatabase, InstallsSwapChainAndSteering) {
  TeWorld world;
  TeTunnelSpec spec;
  spec.path = {world.in, world.c, world.d, world.out};
  spec.steered_prefixes = {world.topology.as(3).block};
  world.te.AddTunnel(world.topology, spec);

  const auto* steering = world.te.SteeringFor(
      world.in, world.topology.as(3).block.At(7));
  ASSERT_NE(steering, nullptr);
  EXPECT_EQ(steering->next, world.c);
  EXPECT_TRUE(steering->labeled);
  EXPECT_GE(steering->label, kTeLabelBase);

  // c swaps, d pops (penultimate under PHP).
  const auto op_c = world.te.OpFor(world.c, steering->label);
  ASSERT_TRUE(op_c.has_value());
  EXPECT_EQ(op_c->kind, TeLabelOp::Kind::kSwap);
  const auto op_d = world.te.OpFor(world.d, op_c->out_label);
  ASSERT_TRUE(op_d.has_value());
  EXPECT_EQ(op_d->kind, TeLabelOp::Kind::kPop);
  EXPECT_EQ(op_d->next, world.out);

  // Unknown routers/labels resolve to nothing.
  EXPECT_FALSE(world.te.OpFor(world.a, steering->label).has_value());
  EXPECT_EQ(world.te.SteeringFor(world.a,
                                 world.topology.as(3).block.At(7)),
            nullptr);
}

TEST(TeTunnel, SteersTrafficOntoTheExplicitRoute) {
  TeWorld world;
  TeTunnelSpec spec;
  spec.path = {world.in, world.c, world.d, world.out};
  spec.steered_prefixes = {world.topology.as(3).block};
  world.te.AddTunnel(world.topology, spec);
  world.Converge();

  probe::Prober prober(world.network->engine(), world.vp);
  // With no-ttl-propagate the TE interior (c, d) is hidden: gw, in, out,
  // dst. Crucially the path is the *detour*, which we can see from the
  // RTT: detour links cost the same 1 ms, so check hop count instead —
  // "out" appears at hop 3 even though the IGP path also has 2 interior
  // hops; instead verify by making the tunnel visible below.
  const auto trace =
      prober.Traceroute(world.topology.router(world.dst).loopback);
  ASSERT_TRUE(trace.reached);
  EXPECT_EQ(trace.hops.size(), 4u);  // gw, in, out, dst — c/d hidden

  // Turn propagation on: the detour c, d must appear (proof the packet
  // took the pinned route, not the IGP one via a, b).
  for (const topo::Router& router : world.topology.routers()) {
    if (router.asn == 2) {
      world.configs->Mutable(router.id).ttl_propagate = true;
    }
  }
  world.Converge();
  probe::Prober visible_prober(world.network->engine(), world.vp);
  const auto visible =
      visible_prober.Traceroute(world.topology.router(world.dst).loopback);
  ASSERT_TRUE(visible.reached);
  ASSERT_EQ(visible.hops.size(), 6u);
  const auto name_of = [&](std::size_t i) {
    return world.topology
        .router(*world.topology.FindRouterByAddress(*visible.hops[i].address))
        .name;
  };
  EXPECT_EQ(name_of(2), "c");
  EXPECT_EQ(name_of(3), "d");
  // RFC 4950: the TE labels are quoted like any MPLS labels.
  EXPECT_TRUE(visible.hops[2].has_labels());
  EXPECT_GE(visible.hops[2].labels[0].label, kTeLabelBase);
}

TEST(TeTunnel, UhpTeTunnelIsTotallyInvisible) {
  TeWorld world;
  TeTunnelSpec spec;
  spec.path = {world.in, world.c, world.d, world.out};
  spec.popping = Popping::kUhp;
  spec.steered_prefixes = {world.topology.as(3).block};
  world.te.AddTunnel(world.topology, spec);
  world.Converge();

  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace =
      prober.Traceroute(world.topology.router(world.dst).loopback);
  ASSERT_TRUE(trace.reached);
  // Even the egress "out" disappears: gw, in, dst.
  EXPECT_EQ(trace.hops.size(), 3u);

  // And revelation gets nothing (the paper's conclusion about RSVP-TE+UHP).
  reveal::Revelator revelator(prober);
  const auto last3 = trace.LastResponders(3);
  ASSERT_EQ(last3.size(), 3u);
  const auto result = revelator.Reveal(last3[0], last3[1]);
  EXPECT_FALSE(result.succeeded());
}

TEST(TeTunnel, PhpTeTunnelStillLeaksViaFrpla) {
  TeWorld world;
  TeTunnelSpec spec;
  spec.path = {world.in, world.c, world.d, world.out};
  spec.steered_prefixes = {world.topology.as(3).block};
  world.te.AddTunnel(world.topology, spec);
  world.Converge();

  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace =
      prober.Traceroute(world.topology.router(world.dst).loopback);
  ASSERT_TRUE(trace.reached);
  // The egress is hop 3; its time-exceeded reply returns over plain IGP
  // (no return TE tunnel), whose path is the short one — the return TTL
  // still counts more hops than the forward trace shows.
  const auto& egress_hop = trace.hops[2];
  ASSERT_TRUE(egress_hop.address.has_value());
  EXPECT_EQ(world.topology.FindRouterByAddress(*egress_hop.address),
            std::optional<topo::RouterId>(world.out));
}

TEST(TeTunnel, OneHopTunnelDegeneratesGracefully) {
  TeWorld world;
  TeTunnelSpec spec;
  spec.path = {world.in, world.a};
  spec.steered_prefixes = {world.topology.as(3).block};
  world.te.AddTunnel(world.topology, spec);
  world.Converge();

  probe::Prober prober(world.network->engine(), world.vp);
  const auto trace =
      prober.Traceroute(world.topology.router(world.dst).loopback);
  // PHP with a one-hop tunnel = pop at push: plain forwarding to "a",
  // then normal IGP the rest of the way. Everything stays reachable.
  EXPECT_TRUE(trace.reached);
}

}  // namespace
}  // namespace wormhole::mpls
