// Fig. 9: (a) return tunnel length distribution as inferred by RTLA;
// (b) tunnel asymmetry = RTL − FTL (revealed forward length), expected to
// centre on 0 under near-symmetric routing.
#include <iostream>

#include <set>

#include "analysis/report.h"
#include "bench/common.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader("RTLA: return tunnel length & tunnel asymmetry",
                     "Fig. 9a/9b");

  const auto world = bench::RunFlagshipCampaign();
  const auto& result = world.result;

  // RTL over candidates in ASes where path revelation confirmed invisible
  // tunnels (the paper's suspicious-AS population).
  std::set<topo::AsNumber> suspicious;
  for (const auto& [pair, revelation] : result.revelations) {
    if (revelation.succeeded()) {
      suspicious.insert(world.net->topology().AsOfAddress(pair.egress));
    }
  }
  netbase::IntDistribution rtl;
  for (const auto& record : result.candidates) {
    if (!record.egress_echo_ttl || !suspicious.contains(record.asn)) {
      continue;
    }
    const auto obs =
        reveal::ObserveRtla(record.pair.egress, record.egress_return_ttl,
                            *record.egress_echo_ttl);
    if (obs) rtl.Add(obs->return_tunnel_length());
  }
  std::cout << "--- (a) Return Tunnel Length (RTL) ---\n"
            << analysis::RenderPdf(rtl, -4, 12, "RTL (RTLA inference)");
  if (!rtl.empty()) {
    std::cout << "median RTL: " << rtl.Median() << "\n";
  }

  netbase::IntDistribution asymmetry;
  for (const auto& record : result.candidates) {
    if (!record.revealed || !record.egress_echo_ttl) continue;
    const auto obs =
        reveal::ObserveRtla(record.pair.egress, record.egress_return_ttl,
                            *record.egress_echo_ttl);
    if (!obs) continue;
    asymmetry.Add(obs->return_tunnel_length() - record.revealed_count);
  }
  std::cout << "\n--- (b) Tunnel asymmetry (RTL - FTL) ---\n"
            << analysis::RenderPdf(asymmetry, -8, 8, "RTL - FTL");
  if (!asymmetry.empty()) {
    std::cout << "median asymmetry: " << asymmetry.Median()
              << "  (paper: distribution ~normal centred on 0)\n";
  }
  std::cout << "shape (paper): RTL distribution mirrors the forward tunnel "
               "lengths of Fig. 5; the RTL-FTL residual centres on 0, "
               "validating RTLA against DPR/BRPR ground truth.\n";
  return 0;
}
