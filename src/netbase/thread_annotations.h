// Clang Thread Safety Analysis macro layer.
//
// These macros attach compile-time lock contracts to the concurrency
// surface: which mutex guards which field (GUARDED_BY), which capability
// a function needs held (REQUIRES) or acquires/releases (ACQUIRE /
// RELEASE), and which it must NOT hold on entry (EXCLUDES). Under clang
// with `-Wthread-safety` (CI's thread-safety job promotes the analysis
// group to an error) every violation is a build break; under every other
// compiler they expand to nothing, so the annotations are zero-cost
// documentation that cannot rot.
//
// The annotated capability types that make the analysis see through RAII
// locking (`exec::Mutex`, `exec::MutexLock`, `exec::CondVar`,
// `exec::Role`) live in src/exec/sync.h — concurrency machinery stays in
// src/exec per the determinism lint; this header is pure attributes and
// safe to include anywhere.
//
// Conventions (see docs/static-analysis.md, "Thread-safety annotations"):
//  * GUARDED_BY(mu) on a field: every read and write must hold `mu`.
//  * REQUIRES(cap) on a function: callers hold `cap`; the function body
//    is analyzed as if it does. Use for private helpers below a lock or
//    a Role-guarded phase.
//  * ACQUIRE/RELEASE on the functions that take and drop a capability
//    (lock wrappers, RAII guards via SCOPED_CAPABILITY).
//  * EXCLUDES(cap) on a function that takes `cap` itself (deadlock
//    guard); analysis warns if a caller already holds it.
//  * NO_THREAD_SAFETY_ANALYSIS is the suppression of last resort; like a
//    lint:allow it must carry a one-line justification comment.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define WORMHOLE_TSA_HAS(x) __has_attribute(x)
#else
#define WORMHOLE_TSA_HAS(x) 0
#endif

#if WORMHOLE_TSA_HAS(capability)
#define WORMHOLE_TSA(x) __attribute__((x))
#else
#define WORMHOLE_TSA(x)  // no-op outside clang
#endif

/// Marks a type as a capability ("mutex", "role", ...). Instances can be
/// named in the other annotations.
#define CAPABILITY(x) WORMHOLE_TSA(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (exec::MutexLock, exec::RoleLock).
#define SCOPED_CAPABILITY WORMHOLE_TSA(scoped_lockable)

/// Field `x` may only be touched while holding capability `x`'s guard.
#define GUARDED_BY(x) WORMHOLE_TSA(guarded_by(x))

/// Pointer field: the pointee (not the pointer) is guarded.
#define PT_GUARDED_BY(x) WORMHOLE_TSA(pt_guarded_by(x))

/// The function may only be called with the capabilities held.
#define REQUIRES(...) \
  WORMHOLE_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  WORMHOLE_TSA(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capabilities and does not release them.
#define ACQUIRE(...) WORMHOLE_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  WORMHOLE_TSA(acquire_shared_capability(__VA_ARGS__))

/// The function releases capabilities the caller holds.
#define RELEASE(...) WORMHOLE_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  WORMHOLE_TSA(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  WORMHOLE_TSA(try_acquire_capability(b, __VA_ARGS__))

/// The function must be called WITHOUT the capabilities held (it takes
/// them itself — the deadlock-by-reentry guard).
#define EXCLUDES(...) WORMHOLE_TSA(locks_excluded(__VA_ARGS__))

/// Asserts at analysis level that the capability is held here (for
/// dynamic schemes the analysis cannot follow).
#define ASSERT_CAPABILITY(x) WORMHOLE_TSA(assert_capability(x))

/// The function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) WORMHOLE_TSA(lock_returned(x))

/// Suppression of last resort; requires a justification comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  WORMHOLE_TSA(no_thread_safety_analysis)
