#include "routing/bgp.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "routing/igp.h"

namespace wormhole::routing {

namespace {

using topo::AsNumber;
using topo::LinkId;
using topo::RouterId;
using topo::Topology;

/// One eBGP adjacency: local border router + the link to the remote AS.
struct BorderLink {
  RouterId local = topo::kNoRouter;
  RouterId remote = topo::kNoRouter;
  LinkId link = topo::kNoLink;
};

/// AS-level adjacency map: for each AS, its eBGP links grouped by peer AS.
using AsAdjacency =
    std::map<AsNumber, std::map<AsNumber, std::vector<BorderLink>>>;

AsAdjacency BuildAsAdjacency(const Topology& topology) {
  AsAdjacency adjacency;
  for (const topo::Link& link : topology.links()) {
    if (!link.up) continue;
    const RouterId ra = topology.interface(link.a).router;
    const RouterId rb = topology.interface(link.b).router;
    const AsNumber as_a = topology.router(ra).asn;
    const AsNumber as_b = topology.router(rb).asn;
    if (as_a == as_b) continue;
    adjacency[as_a][as_b].push_back({ra, rb, link.id});
    adjacency[as_b][as_a].push_back({rb, ra, link.id});
  }
  return adjacency;
}

/// BFS over the AS graph from destination `to_as`, honouring the stub
/// policy. Returns, for every AS, its chosen next AS towards `to_as`
/// (0 when unreachable; `to_as` maps to itself).
std::map<AsNumber, AsNumber> ComputeNextAs(const Topology& topology,
                                           const AsAdjacency& adjacency,
                                           const BgpPolicy& policy,
                                           AsNumber to_as) {
  std::map<AsNumber, int> distance;
  std::map<AsNumber, AsNumber> next_as;
  for (const AsNumber asn : topology.AsNumbers()) {
    distance[asn] = -1;
    next_as[asn] = 0;
  }
  distance[to_as] = 0;
  next_as[to_as] = to_as;

  std::deque<AsNumber> queue{to_as};
  while (!queue.empty()) {
    const AsNumber current = queue.front();
    queue.pop_front();
    // A stub AS may receive traffic (be `to_as`) but never forwards it;
    // do not expand through it unless it is the destination itself.
    if (policy.stub_ases.contains(current) && current != to_as) continue;

    const auto it = adjacency.find(current);
    if (it == adjacency.end()) continue;
    for (const auto& [peer, links] : it->second) {
      if (distance[peer] == -1) {
        distance[peer] = distance[current] + 1;
        next_as[peer] = current;
        queue.push_back(peer);
      } else if (distance[peer] == distance[current] + 1 &&
                 current < next_as[peer]) {
        // Deterministic tie-break: prefer the lower next ASN.
        next_as[peer] = current;
      }
    }
  }
  return next_as;
}

}  // namespace

AsNumber BgpNextAs(const Topology& topology, const BgpPolicy& policy,
                   AsNumber from_as, AsNumber to_as) {
  if (from_as == to_as) return 0;
  const AsAdjacency adjacency = BuildAsAdjacency(topology);
  const auto next = ComputeNextAs(topology, adjacency, policy, to_as);
  const auto it = next.find(from_as);
  return it == next.end() ? 0 : it->second;
}

void InstallBgpRoutes(const Topology& topology, const BgpPolicy& policy,
                      std::vector<Fib>& fibs) {
  const AsAdjacency adjacency = BuildAsAdjacency(topology);

  // AS-level next hops for every destination AS, computed once.
  std::map<AsNumber, std::map<AsNumber, AsNumber>> next_for;
  for (const AsNumber to_as : topology.AsNumbers()) {
    next_for[to_as] = ComputeNextAs(topology, adjacency, policy, to_as);
  }

  // Process one source AS at a time so only that AS's SPF results are live
  // (hot-potato needs each router's distances to its borders).
  for (const AsNumber from_as : topology.AsNumbers()) {
    std::unordered_map<RouterId, SpfResult> spf;
    for (const RouterId rid : topology.as(from_as).routers) {
      spf.emplace(rid, ComputeSpf(topology, rid));
    }

    // Border routers inject the subnets of their eBGP links into their own
    // AS via iBGP with next-hop-self: other routers of the AS reach such a
    // subnet through the border's loopback, i.e. over an LDP LSP when MPLS
    // is on. (The IGP deliberately does not carry these prefixes.)
    for (const RouterId border : topology.as(from_as).routers) {
      for (const topo::InterfaceId iid : topology.router(border).interfaces) {
        const topo::Interface& iface = topology.interface(iid);
        if (iface.link == topo::kNoLink ||
            !topology.link(iface.link).up ||
            topology.IsInternalLink(iface.link)) {
          continue;
        }
        for (const RouterId rid : topology.as(from_as).routers) {
          if (rid == border) continue;  // connected route already present
          if (fibs.at(rid).LookupExact(iface.subnet) != nullptr) continue;
          const SpfResult& rs = spf.at(rid);
          if (rs.distance[border] == kUnreachable) continue;
          FibEntry entry;
          entry.prefix = iface.subnet;
          entry.source = RouteSource::kBgp;
          entry.metric = rs.distance[border];
          entry.next_hops = rs.next_hops[border];
          entry.bgp_next_hop = topology.router(border).loopback;
          fibs.at(rid).AddRoute(std::move(entry));
        }
      }
    }

    for (const AsNumber to_as : topology.AsNumbers()) {
      if (from_as == to_as) continue;
      const netbase::Prefix announced = topology.as(to_as).block;
      const AsNumber via = next_for.at(to_as).at(from_as);
      if (via == 0) continue;  // unreachable

      // Border routers of from_as peering with the chosen next AS.
      const auto& border_links = adjacency.at(from_as).at(via);

      for (const RouterId rid : topology.as(from_as).routers) {
        FibEntry entry;
        entry.prefix = announced;
        entry.source = RouteSource::kBgp;

        // Direct eBGP exit(s) from this router, if it is itself a border.
        std::vector<NextHop> external;
        for (const BorderLink& bl : border_links) {
          if (bl.local == rid) external.push_back({bl.link, bl.remote});
        }
        if (!external.empty()) {
          entry.metric = 0;
          entry.next_hops = std::move(external);
        } else {
          // Hot-potato: nearest border router by IGP metric; ties broken on
          // lower router id via the scan order.
          const SpfResult& rs = spf.at(rid);
          RouterId egress = topo::kNoRouter;
          int best = kUnreachable;
          for (const BorderLink& bl : border_links) {
            const int d = rs.distance[bl.local];
            if (d < best) {
              best = d;
              egress = bl.local;
            }
          }
          if (egress == topo::kNoRouter) continue;  // partitioned AS
          entry.metric = best;
          entry.next_hops = rs.next_hops[egress];
          entry.bgp_next_hop = topology.router(egress).loopback;
        }
        fibs.at(rid).AddRoute(std::move(entry));
      }
    }
  }
}

}  // namespace wormhole::routing
