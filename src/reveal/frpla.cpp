#include "reveal/frpla.h"

#include <algorithm>

namespace wormhole::reveal {

int ReturnPathLength(int reply_ip_ttl) {
  return probe::PathLengthFromTtl(reply_ip_ttl) + 1;
}

std::optional<RfaObservation> ObserveRfa(const probe::Hop& hop) {
  if (!hop.responded()) return std::nullopt;
  RfaObservation observation;
  observation.responder = *hop.address;
  observation.forward_length = hop.probe_ttl;
  observation.return_length = ReturnPathLength(hop.reply_ip_ttl);
  return observation;
}

void FrplaAnalysis::Add(topo::AsNumber asn, ResponderRole role,
                        const RfaObservation& observation) {
  per_as_[{asn, role}].Add(observation.rfa());
}

const netbase::IntDistribution& FrplaAnalysis::Distribution(
    topo::AsNumber asn, ResponderRole role) const {
  static const netbase::IntDistribution kEmpty;
  const auto it = per_as_.find({asn, role});
  return it == per_as_.end() ? kEmpty : it->second;
}

netbase::IntDistribution FrplaAnalysis::Combined(ResponderRole role) const {
  netbase::IntDistribution combined;
  for (const auto& [key, distribution] : per_as_) {
    if (key.second == role) combined.Merge(distribution);
  }
  return combined;
}

std::optional<int> FrplaAnalysis::EstimatedTunnelLength(
    topo::AsNumber asn) const {
  netbase::IntDistribution egress;
  egress.Merge(Distribution(asn, ResponderRole::kEgressRevealed));
  egress.Merge(Distribution(asn, ResponderRole::kEgressHidden));
  if (egress.empty()) return std::nullopt;
  return egress.Median();
}

std::vector<topo::AsNumber> FrplaAnalysis::Ases() const {
  std::vector<topo::AsNumber> out;
  for (const auto& [key, distribution] : per_as_) out.push_back(key.first);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace wormhole::reveal
