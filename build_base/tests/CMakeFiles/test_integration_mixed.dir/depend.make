# Empty dependencies file for test_integration_mixed.
# This may be replaced when dependencies are built.
