#include "campaign/campaign.h"

#include <algorithm>
#include <stdexcept>
#include <set>

#include "netbase/contracts.h"

namespace wormhole::campaign {

using netbase::PacketKind;

std::size_t CampaignResult::revealed_count() const {
  std::size_t count = 0;
  for (const auto& [pair, revelation] : revelations) {
    if (revelation.succeeded()) ++count;
  }
  return count;
}

netbase::IntDistribution CampaignResult::TunnelLengths(
    reveal::RevelationMethod method) const {
  netbase::IntDistribution d;
  for (const auto& [pair, revelation] : revelations) {
    if (revelation.method == method) d.Add(revelation.tunnel_length());
  }
  return d;
}

netbase::IntDistribution CampaignResult::AllTunnelLengths() const {
  netbase::IntDistribution d;
  for (const auto& [pair, revelation] : revelations) {
    if (revelation.succeeded()) d.Add(revelation.tunnel_length());
  }
  return d;
}

Campaign::Campaign(const sim::Engine& engine,
                   std::vector<netbase::Ipv4Address> vps,
                   CampaignOptions options)
    : engine_(&engine),
      options_(options),
      pool_(options.jobs != 0 ? options.jobs : exec::HardwareConcurrency()) {
  options_.trace_options.batched = options_.batched_stepping;
  probers_.reserve(vps.size());
  for (const netbase::Ipv4Address vp : vps) {
    probers_.emplace_back(engine, vp);
  }
  if (probers_.empty()) {
    throw std::invalid_argument("Campaign: no vantage points");
  }
}

std::vector<std::vector<probe::TraceResult>> Campaign::TraceShards(
    const std::vector<std::vector<netbase::Ipv4Address>>& shards) {
  // One task per vantage point: probers_[vp] is touched by that task only,
  // and it walks its shard in order, so the probe-id stream of every
  // prober — and with it every simulated reply — is independent of the
  // worker count and of scheduling.
  std::vector<std::vector<probe::TraceResult>> per_vp(probers_.size());
  exec::ParallelFor(pool_, probers_.size(), [&](std::size_t vp) {
    per_vp[vp].reserve(shards[vp].size());
    for (const netbase::Ipv4Address target : shards[vp]) {
      per_vp[vp].push_back(
          probers_[vp].Traceroute(target, options_.trace_options));
    }
  });
  return per_vp;
}

std::vector<probe::TraceResult> Campaign::RunDiscovery(
    const std::vector<netbase::Ipv4Address>& targets) {
  const auto shards = ShardTargets(targets, probers_.size());
  auto per_vp = TraceShards(shards);

  std::vector<probe::TraceResult> traces;
  traces.reserve(targets.size());
  for (auto& vp_traces : per_vp) {
    for (auto& trace : vp_traces) traces.push_back(std::move(trace));
  }
  return traces;
}

CampaignResult Campaign::Run(
    const std::vector<netbase::Ipv4Address>& discovery_targets) {
  if (options_.stream_shard_size > 0) return RunStreaming(discovery_targets);
  CampaignResult result;
  const topo::Topology& topology = engine_->topology();
  const AliasResolver resolver = TruthResolver(topology);

  // Phase 0: plain discovery campaign; infer the (biased) dataset.
  const auto discovery = RunDiscovery(discovery_targets);
  result.inferred = BuildDataset(discovery, resolver, topology);

  // Phase 1: HDN-guided probing.
  result.targets = SelectTargets(result.inferred, options_.hdn_threshold);
  const std::unordered_set<topo::NodeId> hdn_set(
      result.targets.hdns.begin(), result.targets.hdns.end());
  auto shards = options_.shard_targets
                    ? ShardTargets(result.targets.all, probers_.size())
                    : std::vector<std::vector<netbase::Ipv4Address>>(
                          probers_.size(), result.targets.all);

  // Probing (the traceroutes do not read the evolving dataset) runs
  // concurrently across VP shards; the order-dependent part — dataset
  // mutation, candidate analysis, revelation dedup — is a sequential
  // reduce over the merged traces in (vp, target-index) order, exactly
  // the order the sequential implementation used.
  auto per_vp = TraceShards(shards);
  std::size_t total_traces = 0;
  for (const auto& vp_traces : per_vp) total_traces += vp_traces.size();

  std::vector<std::optional<EndpointPair>> trace_pair;
  trace_pair.reserve(total_traces);
  result.traces.reserve(total_traces);
  for (std::size_t vp = 0; vp < probers_.size(); ++vp) {
    for (probe::TraceResult& trace : per_vp[vp]) {
      AddTraceToDataset(result.inferred, trace, resolver, topology);
      trace_pair.push_back(
          AnalyzeTrace(trace, result, vp, probers_[vp], hdn_set));
      result.traces.push_back(std::move(trace));
    }
  }
  result.trace_count = result.traces.size();

  ClassifyFrpla(result);

  // Fig. 11 material: observed vs revelation-corrected path lengths, over
  // the traces that crossed a suspected tunnel (the paper's campaign is
  // exactly that population — transit paths through suspicious ASes).
  for (std::size_t i = 0; i < result.traces.size(); ++i) {
    if (!trace_pair[i]) continue;
    const int observed = result.traces[i].LastRespondingTtl();
    if (observed == 0) continue;
    result.path_length_invisible.Add(observed);
    int corrected = observed;
    const auto it = result.revelations.find(*trace_pair[i]);
    if (it != result.revelations.end() && it->second.succeeded()) {
      corrected += static_cast<int>(it->second.revealed.size());
    }
    result.path_length_visible.Add(corrected);
  }

  for (const probe::Prober& prober : probers_) {
    result.probes_sent += prober.probes_sent();
  }
  return result;
}

std::vector<CompactTraceLog> Campaign::TraceShardsStreaming(
    const std::vector<std::vector<netbase::Ipv4Address>>& shards) {
  // Same single-task-per-prober discipline as TraceShards — each VP's
  // probe-id stream depends only on its own target order, so carving the
  // walk into fixed-size shards changes when memory is freed and nothing
  // else. `scratch` holds one shard of full traces; once the shard is
  // compacted the vector is reused, so the per-VP high-water mark is
  // stream_shard_size traces instead of the whole target list.
  // A probing pass must never span a reconvergence: reconvergence is the
  // engine's exclusive write phase, and a mid-shard epoch bump would mean
  // traces of two routing states under one epoch stamp.
  const std::uint64_t epoch = engine_->convergence_epoch();
  std::vector<CompactTraceLog> logs(probers_.size());
  exec::ParallelFor(pool_, probers_.size(), [&](std::size_t vp) {
    std::vector<probe::TraceResult> scratch;
    for (const auto shard : FixedShards(shards[vp],
                                        options_.stream_shard_size)) {
      WORMHOLE_ASSERT(engine_->convergence_epoch() == epoch,
                      "reconvergence during a probing shard");
      scratch.clear();
      scratch.reserve(shard.size());
      for (const netbase::Ipv4Address target : shard) {
        scratch.push_back(
            probers_[vp].Traceroute(target, options_.trace_options));
      }
      for (const probe::TraceResult& trace : scratch) {
        logs[vp].Append(trace);
      }
    }
  });
  return logs;
}

CampaignResult Campaign::RunStreaming(
    const std::vector<netbase::Ipv4Address>& discovery_targets) {
  return StreamingCampaign(discovery_targets, nullptr);
}

CampaignResult Campaign::RunDelta(
    const std::vector<netbase::Ipv4Address>& discovery_targets,
    TraceCache& cache) {
  ResetProbers();
  return StreamingCampaign(discovery_targets, &cache);
}

void Campaign::ResetProbers() {
  for (probe::Prober& prober : probers_) {
    prober = probe::Prober(*engine_, prober.vantage_point());
  }
}

std::vector<CompactTraceLog> Campaign::TraceShardsDelta(
    TraceCache::Phase phase,
    const std::vector<std::vector<netbase::Ipv4Address>>& shards,
    TraceCache& cache, std::uint64_t epoch, bool strict_offsets,
    std::vector<std::uint64_t>& served, std::vector<std::uint64_t>& total) {
  // One task per VP, targets walked in the same order as
  // TraceShardsStreaming, so the live probes land on exactly the ids the
  // cold run gave them (cache hits replay their id budget via
  // SkipProbes). Each task reads and writes only its own (phase, vp)
  // cache slot — see the TraceCache thread-safety contract.
  std::vector<CompactTraceLog> logs(probers_.size());
  exec::ParallelFor(pool_, probers_.size(), [&](std::size_t vp) {
    probe::Prober& prober = probers_[vp];
    for (const auto shard : FixedShards(shards[vp],
                                        options_.stream_shard_size)) {
      WORMHOLE_ASSERT(engine_->convergence_epoch() == epoch,
                      "reconvergence during a probing shard");
      for (const netbase::Ipv4Address target : shard) {
        ++total[vp];
        const TraceCache::Lookup cached =
            cache.Find(phase, vp, target, epoch, prober.probes_sent(),
                       strict_offsets);
        if (cached.hit) {
          logs[vp].AppendFrom(cache.LogOf(phase, vp), cached.trace_index);
          prober.SkipProbes(cached.probes_used);
          ++served[vp];
          continue;
        }
        const std::uint64_t before = prober.probes_sent();
        const probe::TraceResult trace =
            prober.Traceroute(target, options_.trace_options);
        cache.Record(phase, vp, trace, epoch, before,
                     prober.probes_sent() - before);
        logs[vp].Append(trace);
      }
    }
  });
  return logs;
}

CampaignResult Campaign::StreamingCampaign(
    const std::vector<netbase::Ipv4Address>& discovery_targets,
    TraceCache* cache) {
  CampaignResult result;
  const topo::Topology& topology = engine_->topology();
  const AliasResolver resolver = TruthResolver(topology);

  const std::uint64_t epoch = engine_->convergence_epoch();
  // On a lossy world the reply bytes depend on probe ids, so a cached
  // trace may only be served at the exact id offset it was recorded at;
  // loss-free worlds can serve at any offset (docs/incremental.md).
  const bool strict_offsets =
      cache != nullptr && engine_->RepliesDependOnProbeIds();
  if (cache != nullptr) cache->Begin(topology, probers_.size());
  // Route the reduce's echo pings (fingerprint echo halves, candidate
  // egress probes) through the cache's ping table for the rest of this
  // run; revelation probing always runs live.
  delta_cache_ = cache;
  delta_epoch_ = epoch;
  delta_strict_ = strict_offsets;
  std::vector<std::uint64_t> served(probers_.size(), 0);
  std::vector<std::uint64_t> total(probers_.size(), 0);

  // Phase 0: streamed discovery. The buffered path flattens the per-VP
  // trace vectors vp-major before BuildDataset; replaying the compact
  // logs in the same vp-major order feeds AddTraceToDataset the exact
  // same hop sequence. The logs die with the scope.
  {
    const auto discovery_shards =
        ShardTargets(discovery_targets, probers_.size());
    const auto logs =
        cache != nullptr
            ? TraceShardsDelta(TraceCache::Phase::kDiscovery,
                               discovery_shards, *cache, epoch,
                               strict_offsets, served, total)
            : TraceShardsStreaming(discovery_shards);
    probe::TraceResult scratch;
    for (const CompactTraceLog& log : logs) {
      for (std::size_t i = 0; i < log.size(); ++i) {
        log.InflateInto(i, scratch);
        AddTraceToDataset(result.inferred, scratch, resolver, topology);
      }
    }
  }

  // Phase 1: HDN-guided probing, shard-compacted the same way.
  result.targets = SelectTargets(result.inferred, options_.hdn_threshold);
  const std::unordered_set<topo::NodeId> hdn_set(
      result.targets.hdns.begin(), result.targets.hdns.end());
  const auto shards = options_.shard_targets
                          ? ShardTargets(result.targets.all, probers_.size())
                          : std::vector<std::vector<netbase::Ipv4Address>>(
                                probers_.size(), result.targets.all);
  const auto logs =
      cache != nullptr
          ? TraceShardsDelta(TraceCache::Phase::kTargeted, shards, *cache,
                             epoch, strict_offsets, served, total)
          : TraceShardsStreaming(shards);

  // Sequential reduce in (vp, target-index) order, inflating one trace
  // at a time. All probing above is already done, so the analysis probes
  // AnalyzeTrace issues (fingerprint pings, revelation traces) extend
  // each prober's id stream in exactly the positions the buffered reduce
  // would — every simulated reply, and therefore every byte of the
  // result, matches buffered mode.
  std::size_t total_traces = 0;
  for (const CompactTraceLog& log : logs) total_traces += log.size();
  std::vector<std::optional<EndpointPair>> trace_pair;
  trace_pair.reserve(total_traces);
  std::vector<int> observed_ttls;
  observed_ttls.reserve(total_traces);
  probe::TraceResult scratch;
  for (std::size_t vp = 0; vp < probers_.size(); ++vp) {
    for (std::size_t i = 0; i < logs[vp].size(); ++i) {
      logs[vp].InflateInto(i, scratch);
      AddTraceToDataset(result.inferred, scratch, resolver, topology);
      trace_pair.push_back(
          AnalyzeTrace(scratch, result, vp, probers_[vp], hdn_set));
      observed_ttls.push_back(scratch.LastRespondingTtl());
    }
  }
  result.trace_count = total_traces;

  // FRPLA needs the full revelation map, so it is a second pass over the
  // compact logs — same trace order as the buffered pass over
  // result.traces.
  const FrplaSets sets = FrplaSetsOf(result);
  for (const CandidateRecord& record : result.candidates) {
    RfaSampleFromCandidate(record, result);
  }
  for (const CompactTraceLog& log : logs) {
    for (std::size_t i = 0; i < log.size(); ++i) {
      log.InflateInto(i, scratch);
      FrplaFromTrace(scratch, sets, result);
    }
  }

  // Fig. 11 material from the per-trace notes taken during the reduce.
  for (std::size_t i = 0; i < total_traces; ++i) {
    if (!trace_pair[i]) continue;
    const int observed = observed_ttls[i];
    if (observed == 0) continue;
    result.path_length_invisible.Add(observed);
    int corrected = observed;
    const auto it = result.revelations.find(*trace_pair[i]);
    if (it != result.revelations.end() && it->second.succeeded()) {
      corrected += static_cast<int>(it->second.revealed.size());
    }
    result.path_length_visible.Add(corrected);
  }

  for (const probe::Prober& prober : probers_) {
    result.probes_sent += prober.probes_sent();
  }
  if (cache != nullptr) {
    for (std::size_t vp = 0; vp < probers_.size(); ++vp) {
      result.delta_pairs_total += total[vp];
      result.delta_pairs_reprobed += total[vp] - served[vp];
    }
  }
  delta_cache_ = nullptr;
  delta_epoch_ = 0;
  delta_strict_ = false;
  return result;
}

probe::PingResult Campaign::CachedPing(std::size_t vp,
                                       probe::Prober& prober,
                                       netbase::Ipv4Address address) {
  if (delta_cache_ == nullptr) return prober.Ping(address);
  const TraceCache::PingLookup cached = delta_cache_->FindPing(
      vp, address, delta_epoch_, prober.probes_sent(), delta_strict_);
  if (cached.hit) {
    prober.SkipProbes(cached.probes_used);
    return cached.result;
  }
  const std::uint64_t before = prober.probes_sent();
  const probe::PingResult ping = prober.Ping(address);
  delta_cache_->RecordPing(vp, prober.vantage_point(), ping, delta_epoch_,
                           before, prober.probes_sent() - before);
  return ping;
}

std::optional<EndpointPair> Campaign::AnalyzeTrace(
    const probe::TraceResult& trace, CampaignResult& result, std::size_t vp,
    probe::Prober& prober,
    const std::unordered_set<topo::NodeId>& hdn_set) {
  // UHP signatures: attribute each duplicate-hop suspicion to the AS of
  // the hop before it (the suspected Ingress LER of the invisible cloud).
  for (const auto& suspicion : reveal::DetectUhpSuspicions(trace)) {
    if (!suspicion.before) continue;
    const auto node = result.inferred.FindNode(*suspicion.before);
    const topo::AsNumber asn =
        node ? result.inferred.node(*node).asn
             : engine_->topology().AsOfAddress(*suspicion.before);
    if (asn != 0) ++result.uhp_suspicions[asn];
  }

  // Fingerprinting: the time-exceeded half comes for free from the trace;
  // the echo-reply half needs one ping per new address.
  for (const probe::Hop& hop : trace.hops) {
    if (!hop.address) continue;
    if (hop.reply_kind == PacketKind::kTimeExceeded) {
      result.signatures.RecordTimeExceeded(*hop.address, hop.reply_ip_ttl);
    } else if (hop.reply_kind == PacketKind::kEchoReply) {
      result.signatures.RecordEchoReply(*hop.address, hop.reply_ip_ttl);
    }
    if (options_.fingerprint &&
        result.signatures.NeedsEchoReply(*hop.address)) {
      const probe::PingResult ping = CachedPing(vp, prober, *hop.address);
      if (ping.responded) {
        result.signatures.RecordEchoReply(*hop.address, ping.reply_ip_ttl);
      }
    }
  }

  // Candidate endpoints: the trace must have reached D with ... X, Y, D and
  // X, Y apparently adjacent in the same AS (paper Sec. 4).
  if (!trace.reached) return std::nullopt;
  const auto last3 = trace.LastResponders(3);
  if (last3.size() < 3) return std::nullopt;
  const netbase::Ipv4Address x = last3[0];
  const netbase::Ipv4Address y = last3[1];

  const auto nx = result.inferred.FindNode(x);
  const auto ny = result.inferred.FindNode(y);
  if (!nx || !ny || *nx == *ny) return std::nullopt;
  const topo::AsNumber asn = result.inferred.node(*ny).asn;
  if (asn == 0 || result.inferred.node(*nx).asn != asn) return std::nullopt;

  const auto hop_x = trace.HopOf(x);
  const auto hop_y = trace.HopOf(y);
  if (!hop_x || !hop_y || *hop_y != *hop_x + 1) return std::nullopt;

  if (options_.require_hdn_endpoints) {
    if (!hdn_set.contains(*nx) || !hdn_set.contains(*ny)) {
      return std::nullopt;
    }
  }

  const EndpointPair pair{x, y};
  auto it = result.revelations.find(pair);
  if (it == result.revelations.end()) {
    reveal::Revelator revelator(prober,
                                {.trace_options = options_.trace_options});
    reveal::RevelationResult revelation = revelator.Reveal(x, y);
    result.revelation_traces +=
        static_cast<std::uint64_t>(revelation.traces_used);
    it = result.revelations.emplace(pair, std::move(revelation)).first;
  }

  CandidateRecord record;
  record.pair = pair;
  record.asn = asn;
  const probe::Hop& egress_hop =
      trace.hops.at(static_cast<std::size_t>(*hop_y) -
                    static_cast<std::size_t>(trace.hops[0].probe_ttl));
  record.egress_forward_ttl = egress_hop.probe_ttl;
  record.egress_return_ttl = egress_hop.reply_ip_ttl;
  const probe::PingResult ping = CachedPing(vp, prober, y);
  if (ping.responded) record.egress_echo_ttl = ping.reply_ip_ttl;
  record.revealed = it->second.succeeded();
  record.revealed_count = static_cast<int>(it->second.revealed.size());
  result.candidates.push_back(record);

  // RTLA applies when the egress has a <255,64>-style signature.
  if (record.egress_echo_ttl) {
    const auto observation = reveal::ObserveRtla(
        y, record.egress_return_ttl, *record.egress_echo_ttl);
    if (observation) result.rtla.Add(asn, *observation);
  }
  return pair;
}

Campaign::FrplaSets Campaign::FrplaSetsOf(const CampaignResult& result) {
  FrplaSets sets;
  for (const auto& [pair, revelation] : result.revelations) {
    sets.ingresses.insert(pair.ingress);
    sets.egresses.insert(pair.egress);
  }
  return sets;
}

void Campaign::FrplaFromTrace(const probe::TraceResult& trace,
                              const FrplaSets& sets,
                              CampaignResult& result) {
  for (const probe::Hop& hop : trace.hops) {
    if (!hop.address) continue;
    if (hop.reply_kind != PacketKind::kTimeExceeded) continue;
    // Egresses are handled by RfaSampleFromCandidate.
    if (sets.egresses.contains(*hop.address)) continue;
    const auto observation = reveal::ObserveRfa(hop);
    if (!observation) continue;
    const auto node = result.inferred.FindNode(*hop.address);
    if (!node) continue;
    const topo::AsNumber asn = result.inferred.node(*node).asn;
    if (asn == 0) continue;

    const reveal::ResponderRole role =
        sets.ingresses.contains(*hop.address)
            ? reveal::ResponderRole::kIngress
            : reveal::ResponderRole::kOther;
    result.frpla.Add(asn, role, *observation);
  }
}

void Campaign::ClassifyFrpla(CampaignResult& result) const {
  const FrplaSets sets = FrplaSetsOf(result);

  // Egress RFA samples come from the traces in which the address actually
  // acted as a tunnel egress (the candidate observations). A trace aimed
  // *at* the same PE follows a route that hides nothing, so counting every
  // appearance would wash the shift out.
  for (const CandidateRecord& record : result.candidates) {
    RfaSampleFromCandidate(record, result);
  }

  for (const probe::TraceResult& trace : result.traces) {
    FrplaFromTrace(trace, sets, result);
  }
}

void Campaign::RfaSampleFromCandidate(const CandidateRecord& record,
                                      CampaignResult& result) {
  reveal::RfaObservation observation;
  observation.responder = record.pair.egress;
  observation.forward_length = record.egress_forward_ttl;
  observation.return_length =
      reveal::ReturnPathLength(record.egress_return_ttl);
  result.frpla.Add(record.asn,
                   record.revealed
                       ? reveal::ResponderRole::kEgressRevealed
                       : reveal::ResponderRole::kEgressHidden,
                   observation);
}

}  // namespace wormhole::campaign
