// LDP (RFC 5036) in converged form.
//
// We do not simulate session establishment; we compute the steady state the
// protocol converges to: for every MPLS-enabled router and every FEC its
// policy allows, a label binding advertised to all neighbors (downstream
// unsolicited, liberal retention — a router advertises the *same* label for
// a FEC to every neighbor, as the paper notes in Sec. 2.1).
//
// A router that reaches a FEC over a directly connected interface is an
// Egress LER for it and advertises implicit-null (PHP) or explicit-null
// (UHP), which is what places the pop at the penultimate hop.
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mpls/config.h"
#include "netbase/ipv4.h"
#include "netbase/label.h"
#include "routing/fib.h"
#include "topo/topology.h"

namespace wormhole::exec {
class ThreadPool;
}  // namespace wormhole::exec

namespace wormhole::mpls {

using netbase::Prefix;
using topo::RouterId;

enum class BindingKind : std::uint8_t {
  kLabel,         ///< ordinary label: upstream swaps to it
  kImplicitNull,  ///< label 3: upstream pops (PHP)
  kExplicitNull,  ///< label 0: upstream swaps to 0; egress pops (UHP)
};

struct Binding {
  BindingKind kind = BindingKind::kLabel;
  std::uint32_t label = 0;  ///< meaningful for kLabel only

  friend bool operator==(const Binding&, const Binding&) = default;
};

/// The converged label state of one MPLS-enabled AS.
class LdpDomain {
 public:
  /// An empty domain (no bindings); staging value for InstallDomain.
  LdpDomain() = default;

  /// Computes bindings for every enabled router of `asn`. `fibs` must
  /// already contain the IGP routes (FECs are taken from the RIB).
  LdpDomain(const topo::Topology& topology, const MplsConfigMap& configs,
            topo::AsNumber asn, const std::vector<routing::Fib>& fibs);

  /// The binding `advertiser` distributes for `fec`; nullopt when the
  /// router does not advertise that FEC (policy filter / not in RIB /
  /// MPLS disabled).
  [[nodiscard]] std::optional<Binding> BindingOf(RouterId advertiser,
                                                 const Prefix& fec) const;

  /// Reverse lookup: which FEC does `label` select on `router`?
  [[nodiscard]] std::optional<Prefix> FecOfLabel(RouterId router,
                                                 std::uint32_t label) const;

  /// All FECs `router` advertises (tests / reports).
  [[nodiscard]] std::vector<Prefix> FecsOf(RouterId router) const;

  /// All (FEC, binding) pairs `router` advertises, sorted by FEC — the
  /// zero-copy view behind FecsOf, for bulk consumers (engine cache
  /// build).
  [[nodiscard]] std::span<const std::pair<Prefix, Binding>> BindingsOf(
      RouterId router) const;

  [[nodiscard]] topo::AsNumber asn() const { return asn_; }

  /// One past the highest label any router of this domain allocated
  /// (labels are dense from netbase::kFirstUnreservedLabel, so this is
  /// kFirstUnreservedLabel + the largest per-router binding count);
  /// kFirstUnreservedLabel when nothing is bound. The convergence delta
  /// uses [kFirstUnreservedLabel, ceiling) as the conservative "touched
  /// label range" of a rebuilt domain. The max over the unordered table
  /// is order-independent, so the result is deterministic.
  [[nodiscard]] std::uint32_t LabelCeiling() const {
    std::size_t labels = 0;
    for (const auto& [rid, tables] : tables_) {
      labels = std::max(labels, tables.label_to_fec.size());
    }
    return netbase::kFirstUnreservedLabel +
           static_cast<std::uint32_t>(labels);
  }

 private:
  /// Flat converged tables: ~10^2 FECs per router makes binary search on
  /// a sorted vector beat a node-based hash map on both build cost (zero
  /// per-FEC allocations) and lookup locality.
  struct RouterTables {
    /// Sorted by FEC — the build appends ascending candidate FECs.
    std::vector<std::pair<Prefix, Binding>> bindings;
    /// FEC of label (kFirstUnreservedLabel + i): labels are allocated
    /// densely in binding order, so the reverse map is a plain array.
    std::vector<Prefix> label_to_fec;
  };

  topo::AsNumber asn_ = 0;
  std::unordered_map<RouterId, RouterTables> tables_;
};

/// All LDP domains of a topology, keyed by AS. ASes without any MPLS-enabled
/// router get no domain.
class LdpTables {
 public:
  LdpTables() = default;
  /// Builds every AS's domain; with a pool, domains are computed in
  /// parallel (one task per enabled AS) and installed in AS-number order,
  /// so the result is identical to the serial build.
  LdpTables(const topo::Topology& topology, const MplsConfigMap& configs,
            const std::vector<routing::Fib>& fibs,
            exec::ThreadPool* pool = nullptr);

  [[nodiscard]] const LdpDomain* DomainOf(topo::AsNumber asn) const;

  /// Replaces (or adds) one AS's domain in place. The map node for an
  /// existing AS is reused — mapped-value assignment — so sim::Engine's
  /// cached LdpDomain pointers stay valid across an incremental
  /// reconvergence.
  void InstallDomain(topo::AsNumber asn, LdpDomain domain);

 private:
  std::unordered_map<topo::AsNumber, LdpDomain> domains_;
};

}  // namespace wormhole::mpls
