#include "reveal/uhp_trigger.h"

namespace wormhole::reveal {

std::vector<UhpSuspicion> DetectUhpSuspicions(
    const probe::TraceResult& trace) {
  std::vector<UhpSuspicion> suspicions;
  std::optional<netbase::Ipv4Address> previous;
  int previous_ttl = 0;
  std::optional<netbase::Ipv4Address> before_previous;

  for (const probe::Hop& hop : trace.hops) {
    if (!hop.address) {
      // A timeout between the two answers breaks the signature (we cannot
      // distinguish it from plain loss).
      before_previous = previous;
      previous.reset();
      continue;
    }
    if (previous && *previous == *hop.address &&
        hop.probe_ttl == previous_ttl + 1) {
      UhpSuspicion suspicion;
      suspicion.duplicate = *hop.address;
      suspicion.first_ttl = previous_ttl;
      suspicion.before = before_previous;
      suspicions.push_back(suspicion);
    } else {
      before_previous = previous;
    }
    previous = hop.address;
    previous_ttl = hop.probe_ttl;
  }
  return suspicions;
}

bool LooksLikeUhp(const probe::TraceResult& trace) {
  return !DetectUhpSuspicions(trace).empty();
}

}  // namespace wormhole::reveal
