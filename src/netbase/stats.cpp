#include "netbase/stats.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace wormhole::netbase {

void IntDistribution::Add(int value, std::uint64_t count) {
  buckets_[value] += count;
  total_ += count;
}

void IntDistribution::Merge(const IntDistribution& other) {
  for (const auto& [value, count] : other.buckets_) Add(value, count);
}

std::uint64_t IntDistribution::CountOf(int value) const {
  const auto it = buckets_.find(value);
  return it == buckets_.end() ? 0 : it->second;
}

double IntDistribution::Pdf(int value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(CountOf(value)) / static_cast<double>(total_);
}

double IntDistribution::Cdf(int value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (const auto& [v, c] : buckets_) {
    if (v > value) break;
    below += c;
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double IntDistribution::Mean() const {
  if (total_ == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [v, c] : buckets_) sum += static_cast<double>(v) * c;
  return sum / static_cast<double>(total_);
}

double IntDistribution::Variance() const {
  if (total_ == 0) return 0.0;
  const double mean = Mean();
  double sum = 0.0;
  for (const auto& [v, c] : buckets_) {
    const double d = static_cast<double>(v) - mean;
    sum += d * d * static_cast<double>(c);
  }
  return sum / static_cast<double>(total_);
}

double IntDistribution::StdDev() const { return std::sqrt(Variance()); }

int IntDistribution::Quantile(double q) const {
  if (total_ == 0) throw std::logic_error("quantile of empty distribution");
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (const auto& [v, c] : buckets_) {
    seen += c;
    if (seen > target) return v;
  }
  return buckets_.rbegin()->first;
}

int IntDistribution::Min() const {
  if (total_ == 0) throw std::logic_error("min of empty distribution");
  return buckets_.begin()->first;
}

int IntDistribution::Max() const {
  if (total_ == 0) throw std::logic_error("max of empty distribution");
  return buckets_.rbegin()->first;
}

int IntDistribution::Mode() const {
  if (total_ == 0) throw std::logic_error("mode of empty distribution");
  int best_value = buckets_.begin()->first;
  std::uint64_t best_count = 0;
  for (const auto& [v, c] : buckets_) {
    if (c > best_count) {
      best_count = c;
      best_value = v;
    }
  }
  return best_value;
}

std::vector<std::pair<int, double>> IntDistribution::PdfSeries() const {
  std::vector<std::pair<int, double>> series;
  series.reserve(buckets_.size());
  for (const auto& [v, c] : buckets_) {
    series.emplace_back(v, static_cast<double>(c) /
                               static_cast<double>(total_));
  }
  return series;
}

double IntDistribution::AsymmetryAround(int center) const {
  if (total_ == 0) return 0.0;
  std::uint64_t above = 0;
  std::uint64_t below = 0;
  for (const auto& [v, c] : buckets_) {
    if (v > center) above += c;
    if (v < center) below += c;
  }
  return (static_cast<double>(above) - static_cast<double>(below)) /
         static_cast<double>(total_);
}

void Summary::Add(double value) {
  values_.push_back(value);
  sorted_ = false;
}

double Summary::Mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Summary::StdDev() const {
  if (values_.size() < 2) return 0.0;
  const double mean = Mean();
  double sum = 0.0;
  for (const double v : values_) sum += (v - mean) * (v - mean);
  return std::sqrt(sum / static_cast<double>(values_.size()));
}

double Summary::Min() const {
  if (values_.empty()) return 0.0;
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::Max() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::Quantile(double q) const {
  if (values_.empty()) throw std::logic_error("quantile of empty summary");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(values_.size() - 1));
  return values_[index];
}

NormalFit FitNormal(const IntDistribution& d) {
  NormalFit fit;
  fit.mean = d.Mean();
  fit.stddev = d.StdDev();
  if (d.total() == 0 || fit.stddev == 0.0) {
    fit.within_one_sigma = d.total() == 0 ? 0.0 : 1.0;
    return fit;
  }
  std::uint64_t inside = 0;
  for (const auto& [v, c] : d.buckets()) {
    if (std::abs(static_cast<double>(v) - fit.mean) <= fit.stddev) {
      inside += c;
    }
  }
  fit.within_one_sigma =
      static_cast<double>(inside) / static_cast<double>(d.total());
  return fit;
}

std::string FormatPdf(const IntDistribution& d, int min_value, int max_value) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  for (int v = min_value; v <= max_value; ++v) {
    os << std::setw(5) << v << "  " << d.Pdf(v) << "\n";
  }
  return os.str();
}

}  // namespace wormhole::netbase
