file(REMOVE_RECURSE
  "CMakeFiles/test_segment_routing.dir/test_segment_routing.cpp.o"
  "CMakeFiles/test_segment_routing.dir/test_segment_routing.cpp.o.d"
  "test_segment_routing"
  "test_segment_routing.pdb"
  "test_segment_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_segment_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
