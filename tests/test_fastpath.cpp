// Allocation-behavior tests for the data-plane fast path: the inline
// label stack (netbase::InlineVec) must keep stacks up to
// kInlineLabelStackDepth off the heap, and the steady-state MPLS swap
// path of the engine must not allocate at all.
//
// This translation unit replaces the global allocation functions with
// counting wrappers; it must therefore stay its own test binary.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>

#include "gen/gns3.h"
#include "netbase/label.h"
#include "netbase/packet.h"
#include "probe/prober.h"
#include "sim/network.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) & ~(a - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace wormhole {
namespace {

using netbase::kInlineLabelStackDepth;
using netbase::LabelStack;
using netbase::LabelStackEntry;

/// Allocations performed by `fn`.
template <typename Fn>
std::uint64_t CountAllocations(Fn&& fn) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  fn();
  return g_allocations.load(std::memory_order_relaxed) - before;
}

LabelStackEntry Entry(std::uint32_t label) {
  LabelStackEntry lse;
  lse.label = label;
  lse.ttl = 42;
  return lse;
}

TEST(InlineLabelStack, StaysInlineUpToTheDepthBound) {
  const std::uint64_t allocs = CountAllocations([] {
    LabelStack stack;
    for (std::uint32_t i = 0; i < kInlineLabelStackDepth; ++i) {
      stack.push_back(Entry(16 + i));
    }
    EXPECT_TRUE(stack.is_inline());
    EXPECT_EQ(stack.size(), kInlineLabelStackDepth);
    EXPECT_EQ(stack.back().label, 16 + kInlineLabelStackDepth - 1);
    while (!stack.empty()) stack.pop_back();
    EXPECT_TRUE(stack.is_inline());
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(InlineLabelStack, SpillsToTheHeapPastTheDepthBound) {
  LabelStack stack;
  for (std::uint32_t i = 0; i < kInlineLabelStackDepth; ++i) {
    stack.push_back(Entry(16 + i));
  }
  const std::uint64_t allocs =
      CountAllocations([&] { stack.push_back(Entry(99)); });
  EXPECT_EQ(allocs, 1u);  // exactly the spill, nothing else
  EXPECT_FALSE(stack.is_inline());
  ASSERT_EQ(stack.size(), kInlineLabelStackDepth + 1);
  // Every element survived the relocation.
  for (std::uint32_t i = 0; i < kInlineLabelStackDepth; ++i) {
    EXPECT_EQ(stack[i].label, 16 + i);
  }
  EXPECT_EQ(stack.back().label, 99u);
}

TEST(InlineLabelStack, CopyOfAnInlineStackDoesNotAllocate) {
  LabelStack a;
  a.push_back(Entry(17));
  a.push_back(Entry(18));
  const std::uint64_t allocs = CountAllocations([&] {
    LabelStack b = a;
    EXPECT_TRUE(b.is_inline());
    EXPECT_EQ(b, a);
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(InlineLabelStack, MoveStealsTheHeapBuffer) {
  LabelStack a;
  for (std::uint32_t i = 0; i < kInlineLabelStackDepth + 2; ++i) {
    a.push_back(Entry(16 + i));
  }
  ASSERT_FALSE(a.is_inline());
  const std::uint64_t allocs = CountAllocations([&] {
    LabelStack b = std::move(a);
    EXPECT_FALSE(b.is_inline());
    EXPECT_EQ(b.size(), kInlineLabelStackDepth + 2);
    EXPECT_EQ(b.back().label, 16 + kInlineLabelStackDepth + 1);
  });
  EXPECT_EQ(allocs, 0u);
  // The moved-from stack is empty and back on its inline storage.
  EXPECT_TRUE(a.empty());
  EXPECT_TRUE(a.is_inline());
  a.push_back(Entry(7));  // and still usable
  EXPECT_EQ(a.back().label, 7u);
}

TEST(InlineLabelStack, QuoteStackReversesIntoWireOrder) {
  // In-flight: bottom pushed first, top at the back.
  LabelStack in_flight;
  in_flight.push_back(Entry(100));  // bottom
  in_flight.push_back(Entry(200));
  in_flight.push_back(Entry(300));  // top
  std::uint64_t allocs = 0;
  LabelStack quoted;
  allocs = CountAllocations([&] { quoted = netbase::QuoteStack(in_flight); });
  EXPECT_EQ(allocs, 0u);
  // Wire order: top of stack first, as RFC 4950 quotes it.
  ASSERT_EQ(quoted.size(), 3u);
  EXPECT_EQ(quoted[0].label, 300u);
  EXPECT_EQ(quoted[1].label, 200u);
  EXPECT_EQ(quoted[2].label, 100u);
}

TEST(EngineFastPath, SteadyStateMplsSwapPathDoesNotAllocate) {
  // A ping through the BRPR testbed's LSP exercises the full swap path:
  // IP hop at CE1, label imposition at PE1, swaps at P1..P3, PHP pop at
  // P3, delivery at CE2 and the reply's return trip through the reverse
  // tunnel. After one warm-up send (thread-local stat-shard setup), the
  // whole round trip must run without touching the heap: label stacks
  // stay inline, FIB lookups hit the sealed flat index, and Transit moves
  // through Forward instead of being copied.
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kBackwardRecursive});
  const sim::Engine& engine = testbed.engine();

  netbase::Packet probe;
  probe.kind = netbase::PacketKind::kEchoRequest;
  probe.src = testbed.vantage_point();
  probe.dst = testbed.Address("CE2.left");
  probe.ip_ttl = 64;
  probe.probe_id = 1;

  const auto warm = engine.Send(probe);
  ASSERT_TRUE(warm.received);

  const std::uint64_t allocs = CountAllocations([&] {
    probe.probe_id = 2;
    const auto outcome = engine.Send(probe);
    EXPECT_TRUE(outcome.received);
    EXPECT_EQ(outcome.reply.kind, netbase::PacketKind::kEchoReply);
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(EngineFastPath, SteadyStateSendBatchRecyclesItsArena) {
  // A traceroute-shaped batch through the tunnel, twice. The first batch
  // may size the arena, the SoA rows and the outcome vectors; the second
  // batch of the same shape must recycle all of it — the round loop, the
  // group-by-router sort and the per-slot outcome writes run without one
  // heap allocation.
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kBackwardRecursive});
  const sim::Engine& engine = testbed.engine();
  const auto target = testbed.Address("CE2.left");

  std::vector<netbase::Packet> fan;
  sim::Engine::BatchResult batch;
  std::uint32_t id = 0;
  const auto fill = [&] {
    fan.clear();
    for (int ttl = 1; ttl <= 16; ++ttl) {
      netbase::Packet probe;
      probe.kind = netbase::PacketKind::kEchoRequest;
      probe.src = testbed.vantage_point();
      probe.dst = target;
      probe.ip_ttl = ttl;
      probe.probe_id = ++id;
      fan.push_back(probe);
    }
  };

  fill();
  fan.reserve(fan.size());
  engine.SendBatch(fan, batch);  // warm-up: sizes every buffer

  const std::uint64_t allocs = CountAllocations([&] {
    fill();
    engine.SendBatch(fan, batch);
    std::size_t received = 0;
    for (const auto& outcome : batch.outcomes) {
      received += outcome.received ? 1 : 0;
    }
    EXPECT_EQ(received, std::size_t{16});
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(EngineFastPath, SteadyStateSoAColumnsSurviveAReshuffledBatch) {
  // The per-row elapsed/hops/top-of-stack SoA columns are the
  // authoritative copy of a live transit's state during shared-decision
  // runs. Reordering the fan (same multiset of TTLs, different slot
  // order) reshuffles the group-by-router permutation every round; the
  // second batch must still run entirely in the recycled columns — zero
  // heap traffic — and land every outcome in its original slot.
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kBackwardRecursive});
  const sim::Engine& engine = testbed.engine();
  const auto target = testbed.Address("CE2.left");

  std::vector<netbase::Packet> fan;
  sim::Engine::BatchResult batch;
  std::uint32_t id = 0;
  const auto fill = [&](bool reversed) {
    fan.clear();
    for (int i = 0; i < 16; ++i) {
      netbase::Packet probe;
      probe.kind = netbase::PacketKind::kEchoRequest;
      probe.src = testbed.vantage_point();
      probe.dst = target;
      probe.ip_ttl = reversed ? 16 - i : 1 + i;
      probe.probe_id = ++id;
      fan.push_back(probe);
    }
  };

  fill(/*reversed=*/false);
  engine.SendBatch(fan, batch);  // warm-up: sizes columns and arena
  // Calibrate from the warm-up: kind_by_ttl[t] is what a TTL-(t+1) probe
  // gets back (the testbed is deterministic, so the reversed batch must
  // reproduce it TTL for TTL).
  std::array<netbase::PacketKind, 16> kind_by_ttl{};
  ASSERT_EQ(batch.outcomes.size(), kind_by_ttl.size());
  for (std::size_t i = 0; i < kind_by_ttl.size(); ++i) {
    ASSERT_TRUE(batch.outcomes[i].received) << "warm-up slot " << i;
    kind_by_ttl[i] = batch.outcomes[i].reply.kind;
  }

  const std::uint64_t allocs = CountAllocations([&] {
    fill(/*reversed=*/true);
    engine.SendBatch(fan, batch);
    for (std::size_t i = 0; i < batch.outcomes.size(); ++i) {
      ASSERT_TRUE(batch.outcomes[i].received) << "slot " << i;
      // Slot i carried TTL 16-i this time: its outcome must be the one
      // the warm-up saw for that TTL — outcomes never migrate between
      // slots however the live rows were regrouped.
      EXPECT_EQ(batch.outcomes[i].reply.kind, kind_by_ttl[15 - i])
          << "slot " << i;
    }
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(EngineFastPath, ExpiringInsideTheTunnelStillQuotesCorrectly) {
  // The same world, but the probe dies on an LSR: the quoted stack must
  // come back in wire order with the LSR's label on top. (Guards the
  // QuoteStack conversion at the only place stacks are reordered.)
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto trace = prober.Traceroute(testbed.Address("CE2.left"));
  ASSERT_TRUE(trace.reached);
  bool saw_labels = false;
  for (const auto& hop : trace.hops) {
    if (!hop.has_labels()) continue;
    saw_labels = true;
    // Fig. 4a: every quoted entry arrives with TTL 1 and a real label
    // (or explicit-null); the top of the quotation is hop.labels[0].
    EXPECT_EQ(static_cast<int>(hop.labels[0].ttl), 1);
  }
  EXPECT_TRUE(saw_labels);
}

}  // namespace
}  // namespace wormhole
