# Empty compiler generated dependencies file for wormhole_topo.
# This may be replaced when dependencies are built.
