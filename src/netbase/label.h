// MPLS label stack entries (RFC 3032).
#pragma once

#include <cstdint>
#include <string>

#include "netbase/inline_vec.h"

namespace wormhole::netbase {

/// Reserved MPLS label values (RFC 3032 §2.1).
enum class ReservedLabel : std::uint32_t {
  kIpv4ExplicitNull = 0,  ///< advertised by an Egress LER requesting UHP
  kRouterAlert = 1,
  kIpv6ExplicitNull = 2,
  kImplicitNull = 3,      ///< advertised by an Egress LER requesting PHP
};

constexpr std::uint32_t kFirstUnreservedLabel = 16;
constexpr std::uint32_t kMaxLabel = (1u << 20) - 1;

/// One label stack entry: 20-bit label, 3-bit traffic class, bottom-of-stack
/// flag and an 8-bit TTL with the same role as the IP TTL (RFC 3443).
struct LabelStackEntry {
  std::uint32_t label = 0;
  std::uint8_t traffic_class = 0;
  bool bottom_of_stack = true;
  std::uint8_t ttl = 0;

  friend bool operator==(const LabelStackEntry&,
                         const LabelStackEntry&) = default;
};

/// Stacks up to this deep never touch the heap (see InlineVec). Real
/// campaigns rarely exceed depth 2 (LDP transport + one inner label); SR
/// SID lists are the only way past 4, and those spill gracefully.
inline constexpr std::size_t kInlineLabelStackDepth = 4;

/// A full label stack. Two orderings are in use, per field:
///
///  * In-flight stacks (`Packet::labels`): TOP of stack LAST (`back()`),
///    so the data plane's push/swap/pop are O(1) writes at the end and
///    never shift or reallocate.
///  * Quoted/wire-order stacks (`Packet::quoted_labels`,
///    `probe::Hop::labels`, trace files): top of stack FIRST (index 0),
///    matching RFC 4950 extension order and the paper's Fig. 4 output.
///
/// `QuoteStack` converts from the former to the latter.
using LabelStack = InlineVec<LabelStackEntry, kInlineLabelStackDepth>;

/// Copies an in-flight stack (top at back) into wire order (top first), as
/// an RFC 4950 quotation does. Allocation-free for stacks within the
/// inline depth.
inline LabelStack QuoteStack(const LabelStack& in_flight) {
  LabelStack quoted;
  quoted.reserve(in_flight.size());
  for (auto it = in_flight.end(); it != in_flight.begin();) {
    quoted.push_back(*--it);
  }
  return quoted;
}

/// Renders "Label 19 TTL=1" like the paris-traceroute output of Fig. 4a.
// lint:allow-next-line(fastpath-heap): render-only report helper
inline std::string ToString(const LabelStackEntry& lse) {
  return "Label " + std::to_string(lse.label) +
         " TTL=" + std::to_string(static_cast<int>(lse.ttl));
}

inline bool IsReserved(std::uint32_t label) {
  return label < kFirstUnreservedLabel;
}

}  // namespace wormhole::netbase
