#include <gtest/gtest.h>

#include "gen/gns3.h"
#include "mpls/config.h"
#include "mpls/ldp.h"
#include "routing/igp.h"

namespace wormhole::mpls {
namespace {

using topo::Vendor;

TEST(MplsConfig, VendorDefaults) {
  EXPECT_EQ(DefaultConfigFor(Vendor::kCiscoIos).ldp_policy,
            LdpPolicy::kAllPrefixes);
  EXPECT_EQ(DefaultConfigFor(Vendor::kJuniperJunos).ldp_policy,
            LdpPolicy::kLoopbacksOnly);
  EXPECT_FALSE(DefaultConfigFor(Vendor::kCiscoIos).enabled);
  EXPECT_TRUE(DefaultConfigFor(Vendor::kCiscoIos).ttl_propagate);
  EXPECT_TRUE(DefaultConfigFor(Vendor::kCiscoIos).rfc4950);
}

TEST(MplsConfigMap, EnableAsAppliesOverrides) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  const auto& t = testbed.topology();
  MplsConfigMap configs(t);
  MplsConfigMap::AsOptions options;
  options.ttl_propagate = false;
  options.popping = Popping::kUhp;
  options.ldp_policy = LdpPolicy::kLoopbacksOnly;
  configs.EnableAs(2, options);

  const auto pe1 = *t.FindRouterByName("PE1");
  EXPECT_TRUE(configs.For(pe1).enabled);
  EXPECT_FALSE(configs.For(pe1).ttl_propagate);
  EXPECT_EQ(configs.For(pe1).popping, Popping::kUhp);
  EXPECT_EQ(configs.For(pe1).ldp_policy, LdpPolicy::kLoopbacksOnly);
  // Routers outside AS2 stay disabled.
  EXPECT_FALSE(configs.For(*t.FindRouterByName("CE1")).enabled);
}

// Builds the Fig. 2 testbed and inspects its LDP domain.
class LdpTest : public ::testing::Test {
 protected:
  void Build(gen::Gns3Scenario scenario) {
    testbed_ = std::make_unique<gen::Gns3Testbed>(
        gen::Gns3Options{.scenario = scenario});
  }
  topo::RouterId Router(const std::string& name) const {
    return *testbed_->topology().FindRouterByName(name);
  }
  const LdpDomain* Domain() const {
    return testbed_->network().ldp().DomainOf(2);
  }
  std::unique_ptr<gen::Gns3Testbed> testbed_;
};

TEST_F(LdpTest, AllPrefixPolicyBindsEveryInternalPrefix) {
  Build(gen::Gns3Scenario::kDefault);
  const auto* domain = Domain();
  ASSERT_NE(domain, nullptr);
  const auto& t = testbed_->topology();
  const auto fecs = domain->FecsOf(Router("P2"));
  // 5 loopbacks + 4 internal link subnets.
  EXPECT_EQ(fecs.size(), t.InternalPrefixes(2).size());
}

TEST_F(LdpTest, LoopbackOnlyPolicyBindsHostsOnly) {
  Build(gen::Gns3Scenario::kExplicitRoute);
  const auto* domain = Domain();
  ASSERT_NE(domain, nullptr);
  for (const auto& fec : domain->FecsOf(Router("P2"))) {
    EXPECT_TRUE(fec.is_host()) << fec.ToString();
  }
  EXPECT_EQ(domain->FecsOf(Router("P2")).size(), 5u);
}

TEST_F(LdpTest, ConnectedFecAdvertisesImplicitNull) {
  Build(gen::Gns3Scenario::kDefault);
  const auto* domain = Domain();
  const auto pe2 = Router("PE2");
  const auto binding = domain->BindingOf(
      pe2, netbase::Prefix::Host(testbed_->topology().router(pe2).loopback));
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->kind, BindingKind::kImplicitNull);
}

TEST_F(LdpTest, UhpAdvertisesExplicitNull) {
  Build(gen::Gns3Scenario::kTotallyInvisible);
  const auto* domain = Domain();
  const auto pe2 = Router("PE2");
  const auto binding = domain->BindingOf(
      pe2, netbase::Prefix::Host(testbed_->topology().router(pe2).loopback));
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->kind, BindingKind::kExplicitNull);
}

TEST_F(LdpTest, TransitRoutersAdvertiseRealLabels) {
  Build(gen::Gns3Scenario::kDefault);
  const auto* domain = Domain();
  const auto p1 = Router("P1");
  const auto fec = netbase::Prefix::Host(
      testbed_->topology().router(Router("PE2")).loopback);
  const auto binding = domain->BindingOf(p1, fec);
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->kind, BindingKind::kLabel);
  EXPECT_GE(binding->label, netbase::kFirstUnreservedLabel);
  // Reverse lookup resolves the FEC.
  EXPECT_EQ(domain->FecOfLabel(p1, binding->label), fec);
}

TEST_F(LdpTest, RoutersOutsideTheDomainHaveNoBindings) {
  Build(gen::Gns3Scenario::kDefault);
  const auto* domain = Domain();
  EXPECT_TRUE(domain->FecsOf(Router("CE1")).empty());
  EXPECT_EQ(testbed_->network().ldp().DomainOf(1), nullptr);
  EXPECT_EQ(testbed_->network().ldp().DomainOf(3), nullptr);
}

TEST_F(LdpTest, LabelsAreUniquePerRouter) {
  Build(gen::Gns3Scenario::kDefault);
  const auto* domain = Domain();
  for (const char* name : {"PE1", "P1", "P2", "P3", "PE2"}) {
    const auto rid = Router(name);
    std::set<std::uint32_t> seen;
    for (const auto& fec : domain->FecsOf(rid)) {
      const auto b = domain->BindingOf(rid, fec);
      ASSERT_TRUE(b.has_value());
      if (b->kind == BindingKind::kLabel) {
        EXPECT_TRUE(seen.insert(b->label).second)
            << name << " reused label " << b->label;
      }
    }
  }
}

}  // namespace
}  // namespace wormhole::mpls
