file(REMOVE_RECURSE
  "../bench/fig01_degree_itdk"
  "../bench/fig01_degree_itdk.pdb"
  "CMakeFiles/fig01_degree_itdk.dir/fig01_degree_itdk.cpp.o"
  "CMakeFiles/fig01_degree_itdk.dir/fig01_degree_itdk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_degree_itdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
