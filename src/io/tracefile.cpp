#include "io/tracefile.h"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace wormhole::io {

namespace {

using netbase::PacketKind;

char KindCode(PacketKind kind) {
  switch (kind) {
    case PacketKind::kTimeExceeded: return 'x';
    case PacketKind::kEchoReply: return 'e';
    case PacketKind::kDestinationUnreachable: return 'u';
    case PacketKind::kEchoRequest: break;
  }
  return '?';
}

PacketKind KindFromCode(char code) {
  switch (code) {
    case 'x': return PacketKind::kTimeExceeded;
    case 'e': return PacketKind::kEchoReply;
    case 'u': return PacketKind::kDestinationUnreachable;
    default:
      throw std::runtime_error(std::string("bad reply kind code: ") + code);
  }
}

netbase::Ipv4Address ParseAddress(const std::string& text) {
  const auto address = netbase::Ipv4Address::Parse(text);
  if (!address) throw std::runtime_error("bad address: " + text);
  return *address;
}

}  // namespace

void WriteTrace(std::ostream& os, const probe::TraceResult& trace) {
  os << "T " << trace.source << ' ' << trace.target << ' ' << trace.flow_id
     << ' ' << (trace.reached ? 1 : 0) << ' ' << (trace.unreachable ? 1 : 0)
     << '\n';
  for (const probe::Hop& hop : trace.hops) {
    os << "H " << hop.probe_ttl << ' ';
    if (hop.address) {
      os << *hop.address << ' ' << KindCode(hop.reply_kind) << ' '
         << hop.reply_ip_ttl << ' ' << std::fixed << std::setprecision(3)
         << hop.rtt_ms;
      for (const auto& lse : hop.labels) {
        os << " L" << lse.label << ':' << static_cast<int>(lse.ttl);
      }
    } else {
      os << '*';
    }
    os << '\n';
  }
  os << ".\n";
}

void WriteTraces(std::ostream& os,
                 const std::vector<probe::TraceResult>& traces) {
  os << "# wormhole tracefile v1, " << traces.size() << " traces\n";
  for (const probe::TraceResult& trace : traces) WriteTrace(os, trace);
}

std::vector<probe::TraceResult> ReadTraces(std::istream& is) {
  std::vector<probe::TraceResult> traces;
  probe::TraceResult current;
  bool in_trace = false;
  std::string line;

  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;

    if (tag == "T") {
      if (in_trace) throw std::runtime_error("nested trace record");
      std::string src, dst;
      int reached = 0;
      int unreachable = 0;
      current = probe::TraceResult{};
      ss >> src >> dst >> current.flow_id >> reached >> unreachable;
      if (!ss) throw std::runtime_error("malformed T record: " + line);
      current.source = ParseAddress(src);
      current.target = ParseAddress(dst);
      current.reached = reached != 0;
      current.unreachable = unreachable != 0;
      in_trace = true;
    } else if (tag == "H") {
      if (!in_trace) throw std::runtime_error("H record outside trace");
      probe::Hop hop;
      std::string addr;
      ss >> hop.probe_ttl >> addr;
      if (!ss) throw std::runtime_error("malformed H record: " + line);
      if (addr != "*") {
        hop.address = ParseAddress(addr);
        std::string kind;
        ss >> kind >> hop.reply_ip_ttl >> hop.rtt_ms;
        if (!ss || kind.size() != 1) {
          throw std::runtime_error("malformed H record: " + line);
        }
        hop.reply_kind = KindFromCode(kind[0]);
        std::string label_text;
        while (ss >> label_text) {
          if (label_text.empty() || label_text[0] != 'L') {
            throw std::runtime_error("bad label field: " + label_text);
          }
          const auto colon = label_text.find(':');
          if (colon == std::string::npos) {
            throw std::runtime_error("bad label field: " + label_text);
          }
          netbase::LabelStackEntry lse;
          lse.label = static_cast<std::uint32_t>(
              std::stoul(label_text.substr(1, colon - 1)));
          lse.ttl = static_cast<std::uint8_t>(
              std::stoi(label_text.substr(colon + 1)));
          hop.labels.push_back(lse);
        }
      }
      current.hops.push_back(std::move(hop));
    } else if (tag == ".") {
      if (!in_trace) throw std::runtime_error("stray trace terminator");
      traces.push_back(std::move(current));
      in_trace = false;
    } else {
      throw std::runtime_error("unknown record tag: " + tag);
    }
  }
  if (in_trace) throw std::runtime_error("unterminated trace record");
  return traces;
}

}  // namespace wormhole::io
