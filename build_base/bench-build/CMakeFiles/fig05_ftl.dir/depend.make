# Empty dependencies file for fig05_ftl.
# This may be replaced when dependencies are built.
