file(REMOVE_RECURSE
  "../bench/fig05_ftl"
  "../bench/fig05_ftl.pdb"
  "CMakeFiles/fig05_ftl.dir/fig05_ftl.cpp.o"
  "CMakeFiles/fig05_ftl.dir/fig05_ftl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
