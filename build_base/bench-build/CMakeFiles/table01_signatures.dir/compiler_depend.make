# Empty compiler generated dependencies file for table01_signatures.
# This may be replaced when dependencies are built.
