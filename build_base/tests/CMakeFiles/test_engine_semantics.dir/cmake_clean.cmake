file(REMOVE_RECURSE
  "CMakeFiles/test_engine_semantics.dir/test_engine_semantics.cpp.o"
  "CMakeFiles/test_engine_semantics.dir/test_engine_semantics.cpp.o.d"
  "test_engine_semantics"
  "test_engine_semantics.pdb"
  "test_engine_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
