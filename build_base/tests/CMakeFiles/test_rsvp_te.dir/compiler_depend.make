# Empty compiler generated dependencies file for test_rsvp_te.
# This may be replaced when dependencies are built.
