#!/usr/bin/env python3
"""Semantic (call-graph-aware) determinism and hot-path analyzer.

The determinism lint (determinism_lint.py) is a line-oriented scanner: it
sees one line at a time and knows nothing about who calls whom. This tool
builds a lightweight semantic model of the C++ tree — namespaces, classes
with their fields (mutable / GUARDED_BY / atomic), function definitions
with bodies, and a cross-translation-unit call graph with type-based
receiver resolution — and checks *flow* properties that a grep cannot:

  sem-hot-alloc       No allocation (new / malloc / make_unique /
                      make_shared / an owning-container local) in any
                      function reachable from a hot entry point
                      (Engine::Send, Engine::SendBatch, Fib::Lookup by
                      default). The per-packet steady state is
                      allocation-free by contract; a helper three calls
                      deep still breaks it. Container *growth* on
                      pre-sized members is deliberately not flagged here
                      (the batch-heap region lint owns that).
  sem-unordered-flow  No unordered-container iteration in any function
                      reachable from report/trace-producing code (the
                      output dirs), even when the function itself lives
                      in a "safe" directory. Hash-order reaching a report
                      through two helper calls is still hash-order in the
                      output.
  sem-const-mutation  A const member function that writes a `mutable`
                      field must hold a lock (an RAII lock local declared
                      before the write) — unless the field is atomic,
                      GUARDED_BY-annotated (clang TSA already owns it),
                      or an aggregate whose members are all atomic (the
                      stat-shard shape).
  sem-nondet-reach    No wall-clock or raw-RNG call in any function
                      reachable from a deterministic entry point (probe
                      injection, convergence). The determinism lint bans
                      these tree-wide; this rule additionally prints the
                      call chain that makes a violation *reachable*, so a
                      future relaxation of the flat ban cannot silently
                      put nondeterminism back on the replayable paths.

The translation-unit list comes from a compile_commands.json when one is
given (or found in ./build); headers and any unlisted sources are picked
up by the same directory scan the determinism lint uses, so the tool
works on a pristine checkout too.

The analyzer is deliberately self-contained (no libclang — the analysis
container has no clang at all): a comment/string-stripping pass keeps
byte offsets stable, a brace-tracking scope machine recovers namespaces,
classes, fields and function bodies, and receivers are resolved through
declared types (params, locals, fields, smart-pointer payloads).
Unresolvable calls (virtual through unknown types, function pointers)
drop edges — the rules err toward silence, and the fixture suite pins
the shapes that must keep working.

Suppressions use the determinism-lint syntax and rule ids above:

  ... code ...  // lint:allow(sem-hot-alloc): reason
  // lint:allow-next-line(sem-const-mutation): reason
  // lint:allow-file(sem-unordered-flow): reason

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import bisect
import json
import re
import sys
from pathlib import Path

SOURCE_EXTENSIONS = {".cpp", ".cc", ".cxx", ".h", ".hpp"}
SCAN_DIRS = ("src", "tools", "bench", "tests", "examples")
EXCLUDED_PARTS = {"fixtures", "build", "build-tsan"}

DEFAULT_CONFIG = {
    # Suffix-matched against fully qualified function names.
    "hot_entries": [
        "sim::Engine::Send",
        "sim::Engine::SendBatch",
        "routing::Fib::Lookup",
    ],
    # Functions allowed to allocate although hot-reachable. Fib::Seal is
    # the documented lazy cold path: the first Lookup pays one build.
    "hot_alloc_exempt": [
        "routing::Fib::Seal",
    ],
    "deterministic_entries": [
        "sim::Engine::Send",
        "sim::Engine::SendBatch",
        "sim::Network::OnLinkStateChange",
        "sim::Network::ConvergeFull",
        # The streaming campaign's shard scheduler and replay reduce: the
        # byte-identity contract (docs/scaling.md) dies the moment either
        # can reach a clock or an unseeded RNG.
        "campaign::Campaign::TraceShardsStreaming",
        "campaign::Campaign::RunStreaming",
        "campaign::CompactTraceLog::Append",
        "campaign::CompactTraceLog::Inflate",
    ],
    # Directories whose functions feed report/trace output.
    "output_dirs": ["src/analysis", "src/io", "src/fingerprint", "tools"],
    "unordered_flow_exempt": [],
    # The seeded-RNG home may name the raw engines it wraps.
    "nondet_exempt_files": ["src/netbase/rng.h"],
}

RULES = (
    "sem-hot-alloc",
    "sem-unordered-flow",
    "sem-const-mutation",
    "sem-nondet-reach",
)

ALLOW_LINE = re.compile(r"//\s*lint:allow\(([\w,\s-]+)\)")
ALLOW_NEXT = re.compile(r"//\s*lint:allow-next-line\(([\w,\s-]+)\)")
ALLOW_FILE = re.compile(r"//\s*lint:allow-file\(([\w,\s-]+)\)")

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "do",
    "else", "new", "delete", "case", "default", "throw", "static_cast",
    "dynamic_cast", "const_cast", "reinterpret_cast", "alignof",
    "alignas", "decltype", "static_assert", "noexcept", "co_await",
    "co_return", "co_yield", "assert", "defined",
}

OWNING_CONTAINERS = (
    "vector", "string", "deque", "list", "map", "set", "unordered_map",
    "unordered_set", "multimap", "multiset", "function", "basic_string",
)

ALLOC_CALL = re.compile(
    r"\bnew\b(?!\s*\()"  # placement new is not a fresh allocation
    r"|\b(?:std::)?(?:malloc|calloc|realloc)\s*\("
    r"|\b(?:std::)?make_(?:unique|shared)\s*<"
)
OWNING_LOCAL = re.compile(
    r"\b(?:std::)?(?:" + "|".join(OWNING_CONTAINERS) + r")\s*<[^;()]*?>\s+"
    r"(\w+)\s*[;={(]"
    r"|\b(?:std::)?string\s+(\w+)\s*[;={(]"
)
WALL_CLOCK = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
    r"|\b(gettimeofday|clock_gettime|localtime|gmtime|timespec_get)\s*\("
    r"|\bstd::time\s*\(|[^:\w]time\s*\(\s*(nullptr|NULL|0)?\s*\)"
)
RAW_RNG = re.compile(
    r"std::random_device|\bstd::mt19937(_64)?\b"
    r"|[^:.\w](rand|srand|random|srandom|drand48)\s*\("
)
RANGE_FOR = re.compile(r"\bfor\s*\([^();]*?:\s*([^()]+?)\)")
UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;={(]"
)
LOCK_DECL = re.compile(
    r"\b(?:\w+::)*(MutexLock|RoleLock|ReaderLock|WriterLock|lock_guard|"
    r"scoped_lock|unique_lock|shared_lock)\b[^;]{0,120}?\("
)
MUTATING_METHODS = (
    "push_back", "emplace_back", "pop_back", "resize", "reserve", "clear",
    "insert", "emplace", "erase", "assign", "store", "swap", "append",
)
CALL_SITE = re.compile(
    r"(?:(\w+)\s*(\.|->)\s*)?((?:\w+::)*~?\w+)\s*\("
)
LOCAL_DECL = re.compile(
    r"\b((?:const\s+)?(?:\w+::)*\w+(?:<[^;<>]*(?:<[^<>]*>)?[^;<>]*>)?)"
    r"\s*[&*]*\s+(\w+)\s*(?:=|\{|\(|;)"
)


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_text(text: str) -> str:
    """Blanks comments, string/char contents and preprocessor lines.

    The result has identical length and newline positions, so byte
    offsets and line numbers computed on it map 1:1 onto the original.
    """
    out = list(text)
    i = 0
    n = len(text)
    at_line_start = True

    def blank(a: int, b: int):
        for k in range(a, min(b, n)):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        ch = text[i]
        if at_line_start and ch in " \t":
            i += 1
            continue
        if at_line_start and ch == "#":
            # Preprocessor line (with continuations).
            start = i
            while i < n:
                if text[i] == "\n" and text[i - 1] != "\\":
                    break
                i += 1
            blank(start, i)
            continue
        at_line_start = ch == "\n"
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            start = i
            while i < n and text[i] != "\n":
                i += 1
            blank(start, i)
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            start = i
            end = text.find("*/", i + 2)
            i = n if end == -1 else end + 2
            blank(start, i)
            continue
        if ch == "R" and text.startswith('R"', i):
            # Raw string: R"delim( ... )delim"
            paren = text.find("(", i + 2)
            if paren != -1:
                delim = text[i + 2 : paren]
                close = text.find(")" + delim + '"', paren)
                end = n if close == -1 else close + len(delim) + 2
                blank(i, end)
                i = end
                continue
        if ch in "\"'":
            quote = ch
            start = i
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i = min(i + 1, n)
            blank(start + 1, i - 1)
            continue
        i += 1
    return "".join(out)


class Field:
    def __init__(self, name: str, type_text: str, is_mutable: bool,
                 guarded: bool):
        self.name = name
        self.type_text = type_text
        self.is_mutable = is_mutable
        self.guarded = guarded
        self.atomic = "atomic" in type_text


class ClassInfo:
    def __init__(self, qname: str):
        self.qname = qname
        self.fields: dict[str, Field] = {}

    def all_fields_atomic(self) -> bool:
        return bool(self.fields) and all(
            f.atomic for f in self.fields.values()
        )


class FuncDef:
    def __init__(self, qname: str, rel: str, line: int, body: tuple[int, int],
                 is_const: bool, class_qname: str | None,
                 params: dict[str, str]):
        self.qname = qname
        self.rel = rel
        self.line = line
        self.body = body  # (start, end) offsets into the stripped text
        self.is_const = is_const
        self.class_qname = class_qname
        self.params = params  # name -> type text


class FileInfo:
    def __init__(self, rel: str, text: str):
        self.rel = rel
        self.text = text
        self.stripped = strip_text(text)
        self.raw_lines = text.splitlines()
        self.line_starts = [0]
        for k, ch in enumerate(text):
            if ch == "\n":
                self.line_starts.append(k + 1)
        self.file_allowed: set[str] = set()
        for line in self.raw_lines:
            for match in ALLOW_FILE.finditer(line):
                self.file_allowed |= {
                    r.strip() for r in match.group(1).split(",") if r.strip()
                }

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self.line_starts, offset)

    def allowed_at(self, line: int) -> set[str]:
        allowed = set(self.file_allowed)
        for source_line, pattern in (
            (line, ALLOW_LINE), (line - 1, ALLOW_NEXT)
        ):
            if 1 <= source_line <= len(self.raw_lines):
                for match in pattern.finditer(
                    self.raw_lines[source_line - 1]
                ):
                    allowed |= {
                        r.strip()
                        for r in match.group(1).split(",")
                        if r.strip()
                    }
        return allowed


class Model:
    """The semantic model of the tree: types, functions, call graph."""

    def __init__(self):
        self.files: dict[str, FileInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.class_by_name: dict[str, list[str]] = {}
        self.functions: dict[str, list[FuncDef]] = {}
        self.func_by_name: dict[str, list[str]] = {}
        self.calls: dict[str, set[str]] = {}
        self.unordered_names: set[str] = set()

    # -- construction ---------------------------------------------------

    def add_file(self, rel: str, text: str):
        info = FileInfo(rel, text)
        self.files[rel] = info
        self._parse_scopes(info)
        for match in UNORDERED_DECL.finditer(info.stripped):
            self.unordered_names.add(match.group(1))

    def _class_at(self, qname: str) -> ClassInfo:
        if qname not in self.classes:
            self.classes[qname] = ClassInfo(qname)
            base = qname.rsplit("::", 1)[-1]
            self.class_by_name.setdefault(base, []).append(qname)
        return self.classes[qname]

    def _parse_scopes(self, info: FileInfo):
        """The brace-tracking scope machine.

        Walks the stripped text once, classifying every `{` by the
        statement that precedes it (namespace / class / enum / function
        / plain block) and flushing field declarations at each `;` that
        ends a statement directly inside a class body.
        """
        text = info.stripped
        n = len(text)
        # Each scope: (kind, name) with kind in
        # {namespace, class, enum, function, block}.
        scopes: list[tuple[str, str]] = []
        stmt_start = 0
        i = 0
        paren_depth = 0
        while i < n:
            ch = text[i]
            if ch == "(":
                paren_depth += 1
            elif ch == ")":
                paren_depth = max(0, paren_depth - 1)
            elif ch == "{" and paren_depth == 0:
                stmt = text[stmt_start:i]
                kind, name = self._classify_brace(stmt, scopes)
                if kind == "function":
                    end = self._matching_brace(text, i)
                    self._record_function(info, stmt, i, end, scopes)
                    # The whole body was consumed; the scope stack is
                    # unchanged.
                    i = end + 1
                    stmt_start = i
                    continue
                if (
                    kind == "block"
                    and scopes
                    and scopes[-1][0] == "class"
                ):
                    # A default-member-initializer brace
                    # (`std::atomic<bool> sealed_{false};`): skip it but
                    # keep accumulating the declaration statement so the
                    # field flushes intact at the `;`.
                    i = self._matching_brace(text, i) + 1
                    continue
                scopes.append((kind, name))
                stmt_start = i + 1
            elif ch == "}" and paren_depth == 0:
                if scopes:
                    scopes.pop()
                stmt_start = i + 1
            elif ch == ";" and paren_depth == 0:
                stmt = text[stmt_start:i].strip()
                if stmt and scopes and scopes[-1][0] == "class":
                    self._record_field(stmt, scopes)
                stmt_start = i + 1
            i += 1

    @staticmethod
    def _matching_brace(text: str, open_idx: int) -> int:
        depth = 0
        for k in range(open_idx, len(text)):
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
                if depth == 0:
                    return k
        return len(text) - 1

    _CLASS_HEAD = re.compile(
        r"\b(?:class|struct)\b(?!\s*;)(?![^;{]*[;=])"
    )
    _FUNC_NAME = re.compile(
        r"((?:\w+::)*(?:~?\w+|operator\s*[^\s(]{1,3}))\s*$"
    )

    def _classify_brace(
        self, stmt: str, scopes: list[tuple[str, str]]
    ) -> tuple[str, str]:
        s = stmt.strip()
        # Specifiers that precede a constructor/function name and would
        # otherwise shadow it (the paren of `explicit(false)` is not the
        # parameter list).
        s = re.sub(r"\bexplicit\s*\(\s*(?:true|false)\s*\)", " ", s)
        s = re.sub(r"\b(explicit|virtual|friend)\b", " ", s).strip()
        ns = re.search(r"\bnamespace\s+((?:\w+::)*\w+)\s*$", s)
        if ns:
            return "namespace", ns.group(1)
        if re.search(r"\bnamespace\s*$", s):
            return "namespace", ""
        if re.search(r"\benum\b", s):
            return "enum", ""
        head = self._CLASS_HEAD.search(s)
        if head is not None and "(" not in s[: head.start()]:
            # Name: the identifier before any base clause / `final`.
            tail = s[head.end():]
            tail = re.split(r":(?!:)", tail, maxsplit=1)[0]
            tail = re.sub(r"\bfinal\b", "", tail)
            words = re.findall(r"\w+", tail)
            # Skip attribute-macro args: take the LAST identifier, which
            # is the class name in `class CAPABILITY("x") Name`.
            if words:
                return "class", words[-1]
            return "block", ""
        # Function definition: `name(params) quals [: init-list]`, not a
        # control statement and not an `=`-initializer.
        if "(" in s:
            paren = s.index("(")
            name_match = self._FUNC_NAME.search(s[:paren].rstrip())
            if name_match:
                name = name_match.group(1)
                base = name.rsplit("::", 1)[-1]
                if base not in KEYWORDS and not re.search(
                    r"=\s*$", s
                ):
                    return "function", name
        return "block", ""

    @staticmethod
    def _split_params(params_text: str) -> dict[str, str]:
        params: dict[str, str] = {}
        depth = 0
        part_start = 0
        parts: list[str] = []
        for k, ch in enumerate(params_text):
            if ch in "<([":
                depth += 1
            elif ch in ">)]":
                depth -= 1
            elif ch == "," and depth == 0:
                parts.append(params_text[part_start:k])
                part_start = k + 1
        parts.append(params_text[part_start:])
        for part in parts:
            part = part.split("=", 1)[0].strip()
            m = re.search(r"([\w:<>,\s]+?)\s*[&*]*\s*(\w+)\s*$", part)
            if m and m.group(2) not in KEYWORDS:
                params[m.group(2)] = m.group(1)
        return params

    def _record_function(
        self,
        info: FileInfo,
        stmt: str,
        body_open: int,
        body_close: int,
        scopes: list[tuple[str, str]],
    ):
        s = stmt.strip()
        # Drop a constructor init-list: everything after the last `)` up
        # to a top-level `:` belongs to the header, the rest is inits.
        header = s
        init = re.search(r"\)\s*[^:]*?:(?!:)", s)
        if init:
            header = s[: s.rindex(")", 0, init.end()) + 1]
        paren = header.index("(")
        close = self._find_close_paren(header, paren)
        name = self._FUNC_NAME.search(header[:paren].rstrip())
        if not name:
            return
        quals = header[close + 1 :]
        is_const = re.search(r"\bconst\b", quals) is not None
        params = self._split_params(header[paren + 1 : close])

        ns_parts = [n for k, n in scopes if k == "namespace" and n]
        class_parts = [n for k, n in scopes if k == "class" and n]
        fn = name.group(1)
        class_qname = None
        if class_parts:
            class_qname = "::".join(ns_parts + class_parts)
        elif "::" in fn:
            # Out-of-line member definition: Class::Method. Resolve the
            # qualifier against known classes (suffix match).
            qual = fn.rsplit("::", 1)[0]
            resolved = self.resolve_class(qual, ns_parts)
            if resolved:
                class_qname = resolved
        if class_qname and "::" not in fn:
            qname = class_qname + "::" + fn
        elif class_qname:
            qname = class_qname + "::" + fn.rsplit("::", 1)[-1]
        else:
            qname = "::".join(ns_parts + [fn]) if ns_parts else fn

        func = FuncDef(
            qname,
            info.rel,
            info.line_of(body_open),
            (body_open + 1, body_close),
            is_const,
            class_qname,
            params,
        )
        self.functions.setdefault(qname, []).append(func)
        base = qname.rsplit("::", 1)[-1]
        self.func_by_name.setdefault(base, []).append(qname)

    @staticmethod
    def _find_close_paren(text: str, open_idx: int) -> int:
        depth = 0
        for k in range(open_idx, len(text)):
            if text[k] == "(":
                depth += 1
            elif text[k] == ")":
                depth -= 1
                if depth == 0:
                    return k
        return len(text) - 1

    def _record_field(self, stmt: str, scopes: list[tuple[str, str]]):
        ns_parts = [n for k, n in scopes if k == "namespace" and n]
        class_parts = [n for k, n in scopes if k == "class" and n]
        if not class_parts:
            return
        qname = "::".join(ns_parts + class_parts)
        s = re.sub(r"\b(public|private|protected)\s*:", "", stmt).strip()
        if re.match(
            r"(using|typedef|friend|static_assert|template|static)\b", s
        ):
            return
        guarded = "GUARDED_BY" in s or "PT_GUARDED_BY" in s
        is_mutable = re.match(r"\s*mutable\b", s) is not None
        decl = re.sub(r"\b(GUARDED_BY|PT_GUARDED_BY)\s*\([^)]*\)", "", s)
        decl = decl.split("=", 1)[0].strip()
        decl = re.sub(r"\{.*\}\s*$", "", decl, flags=re.S).strip()
        if not decl or "(" in decl:
            # A `(` that survives the annotation/initializer strip means
            # a method or operator declaration, not a field.
            return
        m = re.search(r"([\w:<>,\s&*\[\]]+?)\s*[&*]*\s*(\w+)\s*$", decl)
        if not m:
            return
        name, type_text = m.group(2), m.group(1).strip()
        if (
            name in KEYWORDS
            or name in ("const", "override", "final", "noexcept", "delete",
                        "default")
            or not type_text
        ):
            return
        info = self._class_at(qname)
        info.fields[name] = Field(name, type_text, is_mutable, guarded)

    # -- resolution -----------------------------------------------------

    def resolve_class(
        self, name: str, ns_hint: list[str] | None = None
    ) -> str | None:
        """Resolves a (possibly partial) class name to a known qname."""
        name = name.strip()
        if name in self.classes:
            return name
        base = name.rsplit("::", 1)[-1]
        candidates = [
            q
            for q in self.class_by_name.get(base, [])
            if q == name or q.endswith("::" + name)
        ]
        if not candidates:
            candidates = self.class_by_name.get(base, [])
        if len(candidates) == 1:
            return candidates[0]
        if candidates and ns_hint:
            prefix = "::".join(ns_hint)
            for q in candidates:
                if q.startswith(prefix + "::"):
                    return q
        return None

    @staticmethod
    def _payload_type(type_text: str) -> str:
        """unique_ptr<T>/shared_ptr<T>/array<T, N> -> T, else itself."""
        m = re.search(
            r"\b(?:unique_ptr|shared_ptr|array|optional)\s*<\s*"
            r"((?:\w+::)*\w+)",
            type_text,
        )
        return m.group(1) if m else type_text

    def _type_to_class(self, type_text: str) -> str | None:
        cleaned = re.sub(r"\b(const|mutable|struct|class)\b", "",
                        self._payload_type(type_text))
        cleaned = cleaned.split("<", 1)[0].strip().strip("&* ")
        if not cleaned:
            return None
        return self.resolve_class(cleaned)

    def _resolve_call(
        self, func: FuncDef, receiver: str | None, callee: str,
        locals_map: dict[str, str],
    ) -> str | None:
        base = callee.rsplit("::", 1)[-1]
        if base in KEYWORDS or base.startswith("~"):
            return None
        if "::" in callee:
            qual = callee.rsplit("::", 1)[0]
            cls = self.resolve_class(qual)
            if cls and cls + "::" + base in self.functions:
                return cls + "::" + base
            for q in self.func_by_name.get(base, []):
                if q == callee or q.endswith("::" + callee):
                    return q
            return None
        if receiver:
            type_text = None
            if receiver == "this" and func.class_qname:
                type_text = func.class_qname
            else:
                type_text = locals_map.get(receiver) or func.params.get(
                    receiver
                )
                if type_text is None and func.class_qname:
                    cls_info = self.classes.get(func.class_qname)
                    if cls_info and receiver in cls_info.fields:
                        type_text = cls_info.fields[receiver].type_text
            if type_text is None:
                return None
            cls = self._type_to_class(type_text)
            if cls and cls + "::" + base in self.functions:
                return cls + "::" + base
            return None
        # Bare call: same class, then same namespace, then unique global.
        if func.class_qname and func.class_qname + "::" + base in (
            self.functions
        ):
            return func.class_qname + "::" + base
        candidates = self.func_by_name.get(base, [])
        if func.qname.count("::"):
            ns = func.qname.rsplit("::", 2)[0]
            for q in candidates:
                if q == ns + "::" + base:
                    return q
        if len(candidates) == 1:
            return candidates[0]
        return None

    def build_call_graph(self):
        for defs in self.functions.values():
            for func in defs:
                info = self.files[func.rel]
                body = info.stripped[func.body[0] : func.body[1]]
                locals_map: dict[str, str] = {}
                for m in LOCAL_DECL.finditer(body):
                    type_text, name = m.group(1), m.group(2)
                    head = type_text.split("<", 1)[0].strip()
                    head_base = head.rsplit("::", 1)[-1]
                    if head_base in KEYWORDS or head_base in (
                        "return", "auto", "co_yield", "throw"
                    ):
                        continue
                    locals_map.setdefault(name, type_text)
                func.locals_map = locals_map
                edges = self.calls.setdefault(func.qname, set())
                for m in CALL_SITE.finditer(body):
                    receiver, _, callee = m.group(1), m.group(2), m.group(3)
                    target = self._resolve_call(
                        func, receiver, callee, locals_map
                    )
                    if target and target != func.qname:
                        edges.add(target)

    # -- queries --------------------------------------------------------

    def match_entries(self, specs: list[str]) -> dict[str, str]:
        """qname -> matched spec, for every function a spec names."""
        matched: dict[str, str] = {}
        for qname in self.functions:
            for spec in specs:
                if qname == spec or qname.endswith("::" + spec):
                    matched[qname] = spec
        return matched

    def reachable_from(
        self, roots: dict[str, str]
    ) -> dict[str, list[str]]:
        """BFS closure: qname -> call chain (root, ..., qname)."""
        chains: dict[str, list[str]] = {
            q: [q] for q in roots
        }
        frontier = list(roots)
        while frontier:
            nxt: list[str] = []
            for q in frontier:
                for callee in sorted(self.calls.get(q, ())):
                    if callee not in chains:
                        chains[callee] = chains[q] + [callee]
                        nxt.append(callee)
            frontier = nxt
        return chains


def fmt_chain(chain: list[str]) -> str:
    names = [q.split("::")[-2] + "::" + q.split("::")[-1]
             if q.count("::") >= 2 else q for q in chain]
    return " -> ".join(names)


def matches_any(qname: str, specs: list[str]) -> bool:
    return any(
        qname == s or qname.endswith("::" + s) for s in specs
    )


class Analyzer:
    def __init__(self, model: Model, config: dict):
        self.model = model
        self.config = config
        self.findings: list[Finding] = []

    def report(self, rel: str, offset: int, rule: str, message: str):
        info = self.model.files[rel]
        line = info.line_of(offset)
        if rule in info.allowed_at(line):
            return
        self.findings.append(Finding(rel, line, rule, message))

    def run(self) -> list[Finding]:
        self.check_hot_alloc()
        self.check_unordered_flow()
        self.check_const_mutation()
        self.check_nondet_reach()
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings

    def _each_reachable_func(self, chains: dict[str, list[str]]):
        for qname, chain in sorted(chains.items()):
            for func in self.model.functions[qname]:
                yield qname, chain, func

    def check_hot_alloc(self):
        roots = self.model.match_entries(self.config["hot_entries"])
        chains = self.model.reachable_from(roots)
        exempt = self.config.get("hot_alloc_exempt", [])
        for qname, chain, func in self._each_reachable_func(chains):
            if matches_any(qname, exempt):
                continue
            info = self.model.files[func.rel]
            body = info.stripped[func.body[0] : func.body[1]]
            for m in ALLOC_CALL.finditer(body):
                self.report(
                    func.rel,
                    func.body[0] + m.start(),
                    "sem-hot-alloc",
                    f"allocation in hot-reachable '{qname}' "
                    f"(reachable via {fmt_chain(chain)}); the per-packet "
                    "steady state is allocation-free by contract",
                )
            for m in OWNING_LOCAL.finditer(body):
                self.report(
                    func.rel,
                    func.body[0] + m.start(),
                    "sem-hot-alloc",
                    "owning-container local "
                    f"'{m.group(1) or m.group(2)}' in hot-reachable "
                    f"'{qname}' (via {fmt_chain(chain)}); hoist the "
                    "buffer into a caller-owned scratch",
                )

    def check_unordered_flow(self):
        output_dirs = tuple(self.config["output_dirs"])
        roots = {
            qname: qname
            for qname, defs in self.model.functions.items()
            if any(
                d.rel == od or d.rel.startswith(od + "/")
                for d in defs
                for od in output_dirs
            )
        }
        chains = self.model.reachable_from(roots)
        exempt = self.config.get("unordered_flow_exempt", [])
        unordered_names = self.model.unordered_names
        for qname, chain, func in self._each_reachable_func(chains):
            if matches_any(qname, exempt):
                continue
            info = self.model.files[func.rel]
            body = info.stripped[func.body[0] : func.body[1]]
            for m in RANGE_FOR.finditer(body):
                expr = m.group(1).strip()
                tail = re.split(r"[.\->\s]+", expr)[-1]
                local_type = getattr(func, "locals_map", {}).get(tail, "")
                field_type = ""
                if func.class_qname:
                    cls = self.model.classes.get(func.class_qname)
                    if cls and tail in cls.fields:
                        field_type = cls.fields[tail].type_text
                if (
                    "unordered" in expr
                    or "unordered" in local_type
                    or "unordered" in field_type
                    or tail in unordered_names
                ):
                    via = (
                        ""
                        if len(chain) == 1
                        else f" (feeds output via {fmt_chain(chain)})"
                    )
                    self.report(
                        func.rel,
                        func.body[0] + m.start(),
                        "sem-unordered-flow",
                        f"iterating '{expr}' (unordered container) on an "
                        f"output-reachable path{via}; copy into a sorted "
                        "sequence first",
                    )

    def check_const_mutation(self):
        for qname, defs in sorted(self.model.functions.items()):
            for func in defs:
                if not func.is_const or not func.class_qname:
                    continue
                cls = self.model.classes.get(func.class_qname)
                if cls is None:
                    continue
                info = self.model.files[func.rel]
                body = info.stripped[func.body[0] : func.body[1]]
                lock = LOCK_DECL.search(body)
                lock_at = lock.start() if lock else None
                for name, field in sorted(cls.fields.items()):
                    if not field.is_mutable or field.atomic or field.guarded:
                        continue
                    payload = self.model._type_to_class(field.type_text)
                    if payload:
                        payload_info = self.model.classes.get(payload)
                        if payload_info and payload_info.all_fields_atomic():
                            continue  # the stat-shard shape
                    for m in re.finditer(
                        r"\b"
                        + re.escape(name)
                        + r"\s*(?:=(?!=)|\+=|-=|\*=|/=|\|=|&=|\^=|<<=|>>="
                        r"|\+\+|--|\.\s*(?:"
                        + "|".join(MUTATING_METHODS)
                        + r")\s*\()",
                        body,
                    ):
                        if lock_at is not None and lock_at < m.start():
                            continue
                        self.report(
                            func.rel,
                            func.body[0] + m.start(),
                            "sem-const-mutation",
                            f"const method '{qname}' writes mutable field "
                            f"'{name}' without holding a lock (no RAII "
                            "lock local precedes the write); guard it, "
                            "make it atomic, or annotate GUARDED_BY",
                        )

    def check_nondet_reach(self):
        roots = self.model.match_entries(
            self.config["deterministic_entries"]
        )
        chains = self.model.reachable_from(roots)
        exempt_files = set(self.config.get("nondet_exempt_files", []))
        for qname, chain, func in self._each_reachable_func(chains):
            if func.rel in exempt_files:
                continue
            info = self.model.files[func.rel]
            body = info.stripped[func.body[0] : func.body[1]]
            for kind, pattern in (
                ("wall-clock", WALL_CLOCK), ("raw-RNG", RAW_RNG)
            ):
                for m in pattern.finditer(body):
                    self.report(
                        func.rel,
                        func.body[0] + m.start(),
                        "sem-nondet-reach",
                        f"{kind} source in '{qname}', reachable from a "
                        f"deterministic entry via {fmt_chain(chain)}; "
                        "campaigns must replay bit-exactly",
                    )


def gather_files(
    root: Path, paths: list[str], compile_commands: Path | None
) -> list[tuple[str, Path]]:
    seen: dict[str, Path] = {}

    def add(path: Path):
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            return
        if any(part in EXCLUDED_PARTS for part in rel.split("/")):
            return
        if path.suffix in SOURCE_EXTENSIONS:
            seen.setdefault(rel, path)

    if compile_commands is not None and compile_commands.is_file():
        try:
            entries = json.loads(compile_commands.read_text())
            for entry in entries:
                p = Path(entry["file"])
                if not p.is_absolute():
                    p = Path(entry.get("directory", ".")) / p
                if p.is_file():
                    add(p)
        except (json.JSONDecodeError, KeyError, OSError):
            pass

    if paths:
        for entry in paths:
            p = Path(entry)
            if not p.is_absolute():
                p = root / p
            if p.is_dir():
                for child in sorted(p.rglob("*")):
                    if child.is_file():
                        add(child)
            elif p.is_file():
                add(p)
            else:
                print(f"error: no such path: {entry}", file=sys.stderr)
                sys.exit(2)
    else:
        for d in SCAN_DIRS:
            base = root / d
            if not base.is_dir():
                continue
            for child in sorted(base.rglob("*")):
                if child.is_file():
                    add(child)
    return sorted(seen.items())


def load_config(path: Path | None) -> dict:
    config = dict(DEFAULT_CONFIG)
    if path is not None:
        try:
            config.update(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: bad config {path}: {error}", file=sys.stderr)
            sys.exit(2)
    return config


def build_model(files: list[tuple[str, Path]]) -> Model:
    model = Model()
    for rel, path in files:
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        model.add_file(rel, text)
    model.build_call_graph()
    return model


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument(
        "--config",
        default=None,
        help="rules config JSON (default: tools/lint/semantic_rules.json "
        "under --root when present, else built-in defaults)",
    )
    parser.add_argument(
        "--compile-commands",
        default=None,
        help="compile_commands.json for the TU list (default: "
        "<root>/build/compile_commands.json when present)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    parser.add_argument(
        "--dump-calls",
        action="store_true",
        help="print the resolved call graph and exit (debugging aid)",
    )
    parser.add_argument("paths", nargs="*", help="files or dirs to lint")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"error: bad --root: {args.root}", file=sys.stderr)
        return 2

    config_path = (
        Path(args.config)
        if args.config
        else (
            root / "tools/lint/semantic_rules.json"
            if (root / "tools/lint/semantic_rules.json").is_file()
            else None
        )
    )
    config = load_config(config_path)

    cc = (
        Path(args.compile_commands)
        if args.compile_commands
        else root / "build/compile_commands.json"
    )

    files = gather_files(root, args.paths, cc)
    model = build_model(files)

    if args.dump_calls:
        for qname in sorted(model.calls):
            for callee in sorted(model.calls[qname]):
                print(f"{qname} -> {callee}")
        return 0

    findings = Analyzer(model, config).run()
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"semantic-lint: {len(findings)} finding(s) in "
            f"{len({f.path for f in findings})} file(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"semantic-lint: {len(files)} files, "
        f"{sum(len(d) for d in model.functions.values())} functions, "
        f"{sum(len(c) for c in model.calls.values())} call edges — clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
