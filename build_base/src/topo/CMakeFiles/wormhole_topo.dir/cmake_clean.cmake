file(REMOVE_RECURSE
  "CMakeFiles/wormhole_topo.dir/itdk.cpp.o"
  "CMakeFiles/wormhole_topo.dir/itdk.cpp.o.d"
  "CMakeFiles/wormhole_topo.dir/topology.cpp.o"
  "CMakeFiles/wormhole_topo.dir/topology.cpp.o.d"
  "libwormhole_topo.a"
  "libwormhole_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
