# Empty dependencies file for delay_anomaly.
# This may be replaced when dependencies are built.
