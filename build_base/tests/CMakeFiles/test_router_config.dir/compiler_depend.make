# Empty compiler generated dependencies file for test_router_config.
# This may be replaced when dependencies are built.
