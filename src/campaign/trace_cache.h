// Epoch-versioned campaign trace cache (docs/incremental.md).
//
// One entry per (phase, vantage point, target): the packed trace bytes
// (CompactTraceLog), the probe-id budget the trace consumed, and the
// convergence epoch the trace is valid for. After a link flap the owner
// calls Invalidate with the ConvergenceDelta from
// sim::Network::OnLinkStateChange and an AsPathOracle over the (new) AS
// level: entries whose forward path, responder set and candidate return
// paths all provably avoid the touched AS are promoted to the new epoch;
// everything else is left stale and re-probed live by the next
// Campaign::RunDelta. The dirty set is a conservative over-approximation
// — keeping a clean entry stale only costs probes, promoting a dirty one
// would corrupt results, so every ambiguity (unknown AS, unbounded oracle
// walk, global reconvergence) resolves to "dirty".
//
// Reduce-time echo pings (the fingerprint echo-reply half and the
// candidate-egress ping) get the same treatment in a per-VP ping table:
// a ping's bytes depend only on the forward path to the address and the
// reply path back, so the trace dirty rule applies verbatim with the
// pinged address in the role of the target. Revelation probing is never
// cached: it is multi-probe, state-dependent inference and re-running it
// live against the current epoch is what keeps delta runs exact.
//
// Memory model: v1 never evicts. A re-probed target overwrites its index
// slot; the superseded packed bytes stay in the log until the next global
// reconvergence resets the slot. Per entry the steady-state cost is
// sizeof(Entry) (~40 B) + 16 B header + 8 B per hop + the AS-set slice
// (4 B per distinct AS on the path).
//
// Thread safety: Begin and Invalidate require exclusivity. Find / Record
// / LogOf touch only the (phase, vp) slot they name, so any number of
// worker threads may use DISTINCT (phase, vp) pairs concurrently — the
// exact discipline Campaign's one-task-per-VP fan-out follows.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "campaign/compact_trace.h"
#include "probe/trace.h"
#include "routing/as_path.h"
#include "routing/delta.h"
#include "topo/topology.h"

namespace wormhole::campaign {

class TraceCache {
 public:
  /// The two cached probing phases of a campaign run. Reduce-time echo
  /// pings have their own per-VP table (FindPing / RecordPing);
  /// revelation probes are never cached and always re-run live.
  enum class Phase : std::uint8_t { kDiscovery = 0, kTargeted = 1 };

  struct Lookup {
    bool hit = false;
    /// Index into LogOf(phase, vp) when hit.
    std::uint32_t trace_index = 0;
    /// Probe ids the cached trace consumed (Prober::SkipProbes replay).
    std::uint64_t probes_used = 0;
  };

  /// Binds the cache to a topology and sizes the slot table; idempotent
  /// while the vantage-point count is unchanged, resets everything when
  /// it changes. `topology` must outlive the cache.
  void Begin(const topo::Topology& topology, std::size_t vp_count);

  /// Cache probe for one (phase, vp, target) pair. A hit requires the
  /// entry to carry `epoch` exactly; when `strict_offsets` (lossy worlds:
  /// reply bytes depend on probe ids) it additionally requires the
  /// prober's current probes_sent to equal the count the trace was
  /// recorded at — a mismatched offset would replay bytes a cold run
  /// would not produce, so it re-traces live instead.
  [[nodiscard]] Lookup Find(Phase phase, std::size_t vp,
                            netbase::Ipv4Address target, std::uint64_t epoch,
                            std::uint64_t probes_sent,
                            bool strict_offsets) const;

  /// Records a freshly traced result for (phase, vp, trace.target),
  /// superseding any older entry for the same target.
  void Record(Phase phase, std::size_t vp, const probe::TraceResult& trace,
              std::uint64_t epoch, std::uint64_t start_probe_count,
              std::uint64_t probes_used);

  /// The packed log Lookup::trace_index points into.
  [[nodiscard]] const CompactTraceLog& LogOf(Phase phase,
                                             std::size_t vp) const;

  struct PingLookup {
    bool hit = false;
    /// The cached reply bytes (valid when hit).
    probe::PingResult result;
    /// Probe ids the cached ping consumed (Prober::SkipProbes replay).
    std::uint64_t probes_used = 0;
  };

  /// Cache probe for one reduce-time echo ping from vantage point `vp`
  /// to `address`. Epoch and offset semantics are identical to Find's.
  [[nodiscard]] PingLookup FindPing(std::size_t vp,
                                    netbase::Ipv4Address address,
                                    std::uint64_t epoch,
                                    std::uint64_t probes_sent,
                                    bool strict_offsets) const;

  /// Records a freshly issued ping for (vp, ping.target), superseding
  /// any older entry for the same address. `source` is the vantage
  /// point's address (binds the per-VP ping slot).
  void RecordPing(std::size_t vp, netbase::Ipv4Address source,
                  const probe::PingResult& ping, std::uint64_t epoch,
                  std::uint64_t start_probe_count,
                  std::uint64_t probes_used);

  /// Applies a convergence delta: kGlobal drops everything; kIntraAs
  /// promotes every provably-unaffected previous-epoch entry to
  /// delta.epoch and leaves the (conservative) dirty set stale. The
  /// oracle must mirror the POST-reconvergence AS level — for an
  /// intra-AS flap that equals the pre-flap level, so a single oracle
  /// stays valid until the next kGlobal delta.
  void Invalidate(const routing::ConvergenceDelta& delta,
                  const routing::AsPathOracle& oracle);

  /// Live entries currently stored (dead superseded entries excluded).
  [[nodiscard]] std::size_t entry_count() const;

  /// Bytes retained by logs, entries, AS slices and indexes (bench/test
  /// memory accounting).
  [[nodiscard]] std::size_t RetainedBytes() const;

 private:
  struct Entry {
    netbase::Ipv4Address target;
    std::uint32_t trace_index = 0;
    std::uint64_t epoch = 0;
    std::uint64_t start_probe_count = 0;
    std::uint32_t probes_used = 0;
    /// [as_begin, as_end) slice of Slot::as_pool: sorted distinct ASes
    /// of the vantage point, the target and every responding hop.
    std::uint32_t as_begin = 0;
    std::uint32_t as_end = 0;
    /// Some address did not resolve to an AS — always dirty.
    bool any_unknown_as = false;
  };
  struct Slot {
    netbase::Ipv4Address vantage_point{};
    topo::AsNumber vp_as = 0;
    bool bound = false;
    CompactTraceLog log;
    std::vector<Entry> entries;
    /// target address value -> index of the LIVE entry for that target.
    std::unordered_map<std::uint32_t, std::uint32_t> index;
    std::vector<topo::AsNumber> as_pool;
  };
  struct PingEntry {
    netbase::Ipv4Address address;
    /// AddressAs(address) at record time; 0 (unresolved) = always dirty.
    topo::AsNumber asn = 0;
    std::uint64_t epoch = 0;
    std::uint64_t start_probe_count = 0;
    std::uint32_t probes_used = 0;
    bool responded = false;
    int reply_ip_ttl = 0;
    double rtt_ms = 0.0;
  };
  struct PingSlot {
    netbase::Ipv4Address vantage_point{};
    topo::AsNumber vp_as = 0;
    bool bound = false;
    std::vector<PingEntry> entries;
    /// pinged address value -> index of the LIVE entry for it.
    std::unordered_map<std::uint32_t, std::uint32_t> index;
  };

  [[nodiscard]] const Slot& SlotOf(Phase phase, std::size_t vp) const;
  [[nodiscard]] Slot& SlotOf(Phase phase, std::size_t vp);
  /// The AS of the router owning `address`, or of the gateway of the
  /// host owning it; 0 when neither resolves.
  [[nodiscard]] topo::AsNumber AddressAs(netbase::Ipv4Address address) const;

  const topo::Topology* topology_ = nullptr;
  std::size_t vp_count_ = 0;
  /// 2 * vp_count_ slots: [phase][vp].
  std::vector<Slot> slots_;
  /// vp_count_ reduce-time echo-ping slots. The reduce is sequential,
  /// so unlike slots_ these never see concurrent access.
  std::vector<PingSlot> ping_slots_;
};

}  // namespace wormhole::campaign
