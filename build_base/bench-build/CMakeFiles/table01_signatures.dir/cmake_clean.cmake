file(REMOVE_RECURSE
  "../bench/table01_signatures"
  "../bench/table01_signatures.pdb"
  "CMakeFiles/table01_signatures.dir/table01_signatures.cpp.o"
  "CMakeFiles/table01_signatures.dir/table01_signatures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
