#include "probe/multipath.h"

#include <algorithm>

namespace wormhole::probe {

namespace {

/// The responding-hop sequence that identifies a path.
std::vector<std::optional<netbase::Ipv4Address>> PathKey(
    const TraceResult& trace) {
  std::vector<std::optional<netbase::Ipv4Address>> key;
  key.reserve(trace.hops.size());
  for (const Hop& hop : trace.hops) key.push_back(hop.address);
  return key;
}

}  // namespace

std::size_t MultiPathResult::MaxWidth() const {
  std::size_t width = 0;
  for (const auto& addresses : addresses_at_ttl) {
    width = std::max(width, addresses.size());
  }
  return width;
}

MultiPathResult EnumeratePaths(Prober& prober, netbase::Ipv4Address target,
                               const MultiPathOptions& options) {
  MultiPathResult result;
  result.target = target;
  std::set<std::vector<std::optional<netbase::Ipv4Address>>> seen;

  for (std::uint16_t flow = 0; flow < options.flows; ++flow) {
    TraceOptions trace_options = options.trace_options;
    trace_options.flow_id = flow;
    TraceResult trace = prober.Traceroute(target, trace_options);
    ++result.flows_probed;

    for (std::size_t i = 0; i < trace.hops.size(); ++i) {
      if (result.addresses_at_ttl.size() <= i) {
        result.addresses_at_ttl.emplace_back();
      }
      if (trace.hops[i].address) {
        result.addresses_at_ttl[i].insert(*trace.hops[i].address);
      }
    }
    if (seen.insert(PathKey(trace)).second) {
      result.distinct_traces.push_back(std::move(trace));
    }
  }
  return result;
}

}  // namespace wormhole::probe
