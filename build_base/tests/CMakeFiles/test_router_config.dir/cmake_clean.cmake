file(REMOVE_RECURSE
  "CMakeFiles/test_router_config.dir/test_router_config.cpp.o"
  "CMakeFiles/test_router_config.dir/test_router_config.cpp.o.d"
  "test_router_config"
  "test_router_config.pdb"
  "test_router_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
