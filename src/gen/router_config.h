// Router configuration emitter — the repo's analogue of the GNS3
// configuration scripts the paper publishes alongside its dataset: for any
// Topology + MplsConfigMap, renders per-router IOS-style (or Junos-style)
// configuration text that would produce the simulated behaviour on real
// hardware. Useful both as documentation of what each scenario *means* and
// for replaying a generated world in an actual emulator.
#pragma once

#include <string>

#include "mpls/config.h"
#include "topo/topology.h"

namespace wormhole::gen {

/// IOS-style configuration for one router: hostname, loopback and physical
/// interfaces (with `mpls ip` where enabled), OSPF over the AS's prefixes,
/// BGP for border routers, and the MPLS knobs of the paper's scenarios
/// (`no mpls ip propagate-ttl`, `mpls ldp label allocate global
/// host-routes`, `mpls ldp explicit-null`).
std::string CiscoStyleConfig(const topo::Topology& topology,
                             const mpls::MplsConfigMap& configs,
                             topo::RouterId router);

/// Junos-style configuration for the same router (set-command format).
std::string JunosStyleConfig(const topo::Topology& topology,
                             const mpls::MplsConfigMap& configs,
                             topo::RouterId router);

/// Emits the whole testbed: one config blob per router, in vendor-matching
/// syntax, separated by banner comments.
std::string TestbedConfigs(const topo::Topology& topology,
                           const mpls::MplsConfigMap& configs);

}  // namespace wormhole::gen
