// Per-router forwarding table.
//
// One FIB per router, filled by the IGP (intra-AS prefixes) and BGP-lite
// (external prefixes). Longest-prefix-match lookup; entries carry their ECMP
// next-hop set and, for BGP routes, the recursive next hop (the egress LER
// loopback) that drives MPLS label imposition.
//
// Two-sided design: AddRoute fills a mutable build-side (an ordered map,
// which also serves deterministic enumeration), and Seal() compiles an
// immutable flat query-side — a populated-prefix-length bitmask plus an
// open-addressing hash over (masked address, length) — that Lookup probes.
// LPM then touches only the handful of prefix lengths that actually exist
// in the table instead of walking all 33, and each probe is a single hash
// slot chase instead of a red-black-tree descent. Sealing happens lazily on
// the first Lookup (thread-safely) or eagerly via Seal(); AddRoute
// invalidates the index, so build → query → rebuild cycles just work.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "netbase/ipv4.h"
#include "topo/topology.h"

namespace wormhole::routing {

using netbase::Ipv4Address;
using netbase::Prefix;
using topo::LinkId;
using topo::RouterId;

enum class RouteSource : std::uint8_t {
  kConnected,  ///< prefix on a local interface (or the loopback)
  kIgp,        ///< learned via intra-AS SPF
  kBgp,        ///< external, via the AS-level best path
};

/// One forwarding adjacency: send over `link` to `neighbor`.
struct NextHop {
  LinkId link = topo::kNoLink;
  RouterId neighbor = topo::kNoRouter;

  friend bool operator==(const NextHop&, const NextHop&) = default;
  friend auto operator<=>(const NextHop&, const NextHop&) = default;
};

struct FibEntry {
  Prefix prefix;
  RouteSource source = RouteSource::kConnected;
  /// IGP metric to the prefix (0 for connected; AS-internal part for BGP).
  int metric = 0;
  /// Equal-cost next hops, sorted for determinism. Empty for a connected
  /// prefix on the router itself (local delivery).
  std::vector<NextHop> next_hops;
  /// For BGP routes on non-border routers: the loopback of the chosen
  /// egress border router (next-hop-self). Unspecified otherwise.
  Ipv4Address bgp_next_hop;
};

class Fib {
 public:
  Fib() = default;
  // The sealed index holds pointers into this object's own route map, so
  // copies and moves transfer only the build-side and re-seal lazily.
  Fib(const Fib& other) : routes_(other.routes_) {}
  Fib(Fib&& other) noexcept : routes_(std::move(other.routes_)) {}
  Fib& operator=(const Fib& other) {
    if (this != &other) {
      routes_ = other.routes_;
      Invalidate();
    }
    return *this;
  }
  Fib& operator=(Fib&& other) noexcept {
    if (this != &other) {
      routes_ = std::move(other.routes_);
      Invalidate();
    }
    return *this;
  }

  /// Inserts or replaces the route for `entry.prefix`. Build-side only:
  /// not safe to call concurrently with Lookup.
  void AddRoute(FibEntry entry);

  /// Compiles the flat query index (idempotent, thread-safe). The first
  /// Lookup seals automatically; calling this eagerly after route
  /// installation (sim::Network does) keeps the first packet fast.
  void Seal() const;

  /// Longest-prefix-match; nullptr when no route covers `dst`.
  [[nodiscard]] const FibEntry* Lookup(Ipv4Address dst) const;

  /// Exact-match on a prefix (FEC lookup for LDP); nullptr if absent.
  /// Uses the sealed index when available, the build map otherwise (so
  /// interleaved AddRoute/LookupExact during route installation never
  /// pays for resealing).
  [[nodiscard]] const FibEntry* LookupExact(const Prefix& prefix) const;

  [[nodiscard]] std::size_t size() const { return routes_.size(); }

  /// All entries, in (address, length-ascending) order.
  [[nodiscard]] std::vector<const FibEntry*> Entries() const;

 private:
  struct Slot {
    std::uint64_t key = 0;  ///< 0 = empty (KeyOf never returns 0)
    const FibEntry* entry = nullptr;
  };

  /// Packs (masked address, length) so that no valid route collides with
  /// the empty-slot sentinel: length 0..32 maps to low bits 1..33.
  static constexpr std::uint64_t KeyOf(std::uint32_t address, int length) {
    return (std::uint64_t{address} << 8) |
           static_cast<std::uint64_t>(length + 1);
  }

  [[nodiscard]] const FibEntry* FindSealed(std::uint32_t address,
                                           int length) const;
  void Invalidate() { sealed_.store(false, std::memory_order_release); }

  // Build side. Ordered so Entries() is deterministic; node-based so
  // sealed-slot and caller-held FibEntry pointers stay valid across
  // further AddRoute calls.
  std::map<std::pair<std::uint32_t, int>, FibEntry> routes_;

  // Query side, built by Seal(). `sealed_` is the publication point:
  // readers acquire-load it before touching the index.
  mutable std::atomic<bool> sealed_{false};
  mutable std::vector<Slot> slots_;
  mutable std::uint64_t slot_mask_ = 0;
  /// Bit l set ⇔ some /l route exists; Lookup probes only these lengths,
  /// most-specific first.
  mutable std::uint64_t populated_lengths_ = 0;
};

}  // namespace wormhole::routing
