// Synthetic multi-AS Internet generator — the stand-in for the paper's
// measurement environment (PlanetLab vantage points probing the real
// Internet guided by CAIDA ITDK).
//
// Structure: a few fully-meshed Tier-1 ASes, a layer of transit ASes
// multi-homed to them, and stub ASes hanging off the transits. Each transit
// or Tier-1 AS has a PoP-structured router-level topology (core ring +
// chords, edge PE routers per PoP); inter-AS links attach at the PEs —
// which is why entry PEs of MPLS clouds turn into high-degree nodes once
// interior hops are hidden.
//
// The per-AS MPLS deployment (enabled? no-ttl-propagate? UHP? hardware mix?)
// is drawn from the paper's operator-survey proportions (Sec. 1-2), and the
// full ground truth is kept per AS so campaign inferences can be scored
// against reality.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "gen/survey.h"
#include "mpls/config.h"
#include "netbase/rng.h"
#include "routing/bgp.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace wormhole::gen {

enum class AsRole : std::uint8_t { kTier1, kTransit, kStub };
const char* ToString(AsRole role);

/// Hardware deployment profile of an AS (drives Table 5's signature mix).
enum class HardwareProfile : std::uint8_t {
  kCisco,    ///< all <255,255>
  kJuniper,  ///< all <255,64>
  kMixed,    ///< Juniper edges, <64,64> cores (the paper's AS3549 pattern)
  kOther,    ///< JunosE/Brocade boxes
};
const char* ToString(HardwareProfile profile);

/// Ground truth about one generated AS.
struct AsProfile {
  topo::AsNumber asn = 0;
  AsRole role = AsRole::kStub;
  HardwareProfile hardware = HardwareProfile::kCisco;
  bool mpls = false;
  bool ttl_propagate = true;
  mpls::Popping popping = mpls::Popping::kPhp;
  std::vector<topo::RouterId> core_routers;
  std::vector<topo::RouterId> edge_routers;

  [[nodiscard]] bool invisible_tunnels() const {
    return mpls && !ttl_propagate;
  }
};

struct InternetOptions {
  std::uint64_t seed = 1;

  int tier1_count = 3;
  int transit_count = 10;
  int stub_count = 36;
  /// Routers per AS by role (jittered ±25%).
  int tier1_routers = 44;
  int transit_routers = 24;
  int stub_routers = 3;
  /// Vantage-point hosts, placed in distinct stub ASes.
  int vp_count = 12;

  /// Internet-at-scale mode. Off (default), every AS gets a /16 and BGP
  /// gives every router a route per AS — byte-identical to the historic
  /// generator, fine up to a few thousand routers. On, the generator
  /// plans the AS level first (arena-built per-provider customer lists),
  /// allocates each stub a small block contiguously inside its primary
  /// provider's aggregate, pre-reserves the topology's flat containers,
  /// and converges BGP in hierarchical mode (stub defaults + provider
  /// aggregates; see routing::BgpPolicy::hierarchical) — per-router FIB
  /// state drops from O(#ASes) to O(#core ASes), which is what lets
  /// 100k-router worlds build in seconds instead of not at all.
  bool hierarchical = false;

  // Survey-driven deployment probabilities (applied to transit/Tier-1 ASes;
  // stubs never run MPLS here). Sources: gen/survey.h.
  double mpls_probability = survey::kMplsDeployment;
  /// P(no-ttl-propagate | MPLS) — the share of *invisible* clouds.
  double no_ttl_propagate_probability = survey::kNoTtlPropagate;
  /// P(UHP | MPLS).
  double uhp_probability = survey::kUhp;
  // Hardware mix (normalised): survey says 58% Cisco / 28% Juniper with
  // 25% of operators mixing vendors.
  double cisco_weight = 0.45;
  double juniper_weight = 0.22;
  double mixed_weight = 0.25;
  double other_weight = 0.08;

  // --- failure injection ---------------------------------------------------
  /// Fraction of routers that never answer probes (anonymous routers).
  double anonymous_router_probability = 0.0;
  /// Per-reply ICMP loss probability on every router (rate limiting).
  double icmp_loss = 0.0;

  /// Worker threads for control-plane convergence (sim::Network); 0 is
  /// auto, 1 forces the serial path. Never affects the converged state.
  std::size_t convergence_jobs = 0;
};

class SyntheticInternet {
 public:
  explicit SyntheticInternet(const InternetOptions& options = {});
  SyntheticInternet(const SyntheticInternet&) = delete;
  SyntheticInternet& operator=(const SyntheticInternet&) = delete;

  [[nodiscard]] const topo::Topology& topology() const { return topology_; }
  /// Mutable access for failure experiments (SetLinkUp + the network's
  /// OnLinkStateChange, or a full Reconverge-style rebuild).
  [[nodiscard]] topo::Topology& mutable_topology() { return topology_; }
  [[nodiscard]] const mpls::MplsConfigMap& configs() const { return configs_; }
  [[nodiscard]] sim::Network& network() { return *network_; }
  [[nodiscard]] sim::Engine& engine() { return network_->engine(); }
  [[nodiscard]] const routing::BgpPolicy& bgp_policy() const {
    return bgp_policy_;
  }
  [[nodiscard]] const std::vector<netbase::Ipv4Address>& vantage_points()
      const {
    return vantage_points_;
  }
  [[nodiscard]] const std::map<topo::AsNumber, AsProfile>& profiles() const {
    return profiles_;
  }
  [[nodiscard]] const AsProfile& profile(topo::AsNumber asn) const {
    return profiles_.at(asn);
  }

  /// Every router loopback — the default plain-campaign target list.
  [[nodiscard]] std::vector<netbase::Ipv4Address> AllLoopbacks() const;

  /// Rebuilds the control plane with TTL propagation forced ON everywhere
  /// (for the Table 3 cross-validation on *explicit* tunnels). Call
  /// RestoreConfiguredPropagation() to go back.
  void ForceTtlPropagation(bool propagate_everywhere);

 private:
  void BuildAsLevel(const InternetOptions& options, netbase::Rng& rng);
  void BuildRouterLevel(AsProfile& profile, int router_count,
                        netbase::Rng& rng);
  void Reconverge();

  topo::Topology topology_;
  mpls::MplsConfigMap configs_;
  routing::BgpPolicy bgp_policy_;
  std::size_t convergence_jobs_ = 0;
  std::map<topo::AsNumber, AsProfile> profiles_;
  std::vector<netbase::Ipv4Address> vantage_points_;
  std::unique_ptr<sim::Network> network_;
};

}  // namespace wormhole::gen
