// IPv4 addresses and prefixes.
//
// The whole simulator works on plain 32-bit host-order addresses; textual
// dotted-quad form is only used at the I/O boundary (tests, reports, dataset
// files), following the Core Guidelines advice to keep messy conversions at
// the edges (P.11).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>

namespace wormhole::netbase {

/// A single IPv4 address, stored in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("10.0.0.1"); returns nullopt on any
  /// syntactic error (out-of-range octet, missing dot, trailing junk).
  static std::optional<Ipv4Address> Parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_unspecified() const { return value_ == 0; }

  /// True for addresses in the RFC1918 private ranges. The campaign code
  /// prunes these from ITDK-like datasets exactly as the paper does.
  [[nodiscard]] constexpr bool is_private() const {
    const std::uint32_t v = value_;
    return (v >> 24) == 10 ||                         // 10.0.0.0/8
           (v >> 20) == 0xAC1 ||                      // 172.16.0.0/12
           (v >> 16) == 0xC0A8;                       // 192.168.0.0/16
  }

  [[nodiscard]] std::string ToString() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4Address address);

/// An IPv4 prefix (address + mask length), normalised so that host bits are
/// always zero. Used as the FEC key for LDP and as the RIB key for the IGP.
class Prefix {
 public:
  constexpr Prefix() = default;

  /// Builds a prefix, zeroing any host bits of `address`.
  constexpr Prefix(Ipv4Address address, int length)
      : address_(Mask(address.value(), length)), length_(length) {}

  /// Parses "a.b.c.d/len"; returns nullopt on error.
  static std::optional<Prefix> Parse(std::string_view text);

  /// The /32 prefix of a single address (loopback FECs).
  static constexpr Prefix Host(Ipv4Address address) {
    return Prefix(address, 32);
  }

  [[nodiscard]] constexpr Ipv4Address address() const { return address_; }
  [[nodiscard]] constexpr int length() const { return length_; }
  [[nodiscard]] constexpr bool is_host() const { return length_ == 32; }

  [[nodiscard]] constexpr bool Contains(Ipv4Address a) const {
    return Mask(a.value(), length_) == address_.value();
  }
  [[nodiscard]] constexpr bool Contains(const Prefix& other) const {
    return other.length_ >= length_ && Contains(other.address_);
  }

  /// Number of addresses covered (2^(32-len)); saturates for /0.
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// The n-th address inside the prefix (n < size()).
  [[nodiscard]] constexpr Ipv4Address At(std::uint32_t n) const {
    return Ipv4Address(address_.value() + n);
  }

  [[nodiscard]] std::string ToString() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  static constexpr std::uint32_t Mask(std::uint32_t v, int length) {
    return length <= 0 ? 0
                       : v & (~std::uint32_t{0} << (32 - length));
  }

  Ipv4Address address_;
  int length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Prefix& prefix);

}  // namespace wormhole::netbase

template <>
struct std::hash<wormhole::netbase::Ipv4Address> {
  std::size_t operator()(wormhole::netbase::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<wormhole::netbase::Prefix> {
  std::size_t operator()(const wormhole::netbase::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.address().value()} << 8) |
        static_cast<std::uint64_t>(p.length()));
  }
};
