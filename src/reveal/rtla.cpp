#include "reveal/rtla.h"

#include "probe/trace.h"

namespace wormhole::reveal {

std::optional<RtlaObservation> ObserveRtla(netbase::Ipv4Address responder,
                                           int te_reply_ttl,
                                           int er_reply_ttl) {
  const fingerprint::Signature signature{
      probe::InferInitialTtl(te_reply_ttl),
      probe::InferInitialTtl(er_reply_ttl)};
  if (!fingerprint::UsableForRtla(signature)) return std::nullopt;

  RtlaObservation observation;
  observation.responder = responder;
  observation.te_return_length =
      signature.time_exceeded_initial - te_reply_ttl;
  observation.er_return_length = signature.echo_reply_initial - er_reply_ttl;
  return observation;
}

void RtlaAnalysis::Add(topo::AsNumber asn,
                       const RtlaObservation& observation) {
  per_as_[asn].Add(observation.return_tunnel_length());
}

const netbase::IntDistribution& RtlaAnalysis::Distribution(
    topo::AsNumber asn) const {
  static const netbase::IntDistribution kEmpty;
  const auto it = per_as_.find(asn);
  return it == per_as_.end() ? kEmpty : it->second;
}

netbase::IntDistribution RtlaAnalysis::Combined() const {
  netbase::IntDistribution combined;
  for (const auto& [asn, distribution] : per_as_) {
    combined.Merge(distribution);
  }
  return combined;
}

std::optional<int> RtlaAnalysis::EstimatedTunnelLength(
    topo::AsNumber asn) const {
  const auto it = per_as_.find(asn);
  if (it == per_as_.end() || it->second.empty()) return std::nullopt;
  return it->second.Median();
}

}  // namespace wormhole::reveal
