// Per-router forwarding table.
//
// One FIB per router, filled by the IGP (intra-AS prefixes) and BGP-lite
// (external prefixes). Longest-prefix-match lookup; entries carry their ECMP
// next-hop set and, for BGP routes, the recursive next hop (the egress LER
// loopback) that drives MPLS label imposition.
//
// Two-sided design: AddRoute fills a mutable build-side (an ordered map,
// which also serves deterministic enumeration), and Seal() compiles an
// immutable flat query-side — a populated-prefix-length bitmask plus an
// open-addressing hash over (masked address, length) — that Lookup probes.
// LPM then touches only the handful of prefix lengths that actually exist
// in the table instead of walking all 33, and each probe is a single hash
// slot chase instead of a red-black-tree descent. Sealing happens lazily on
// the first Lookup (thread-safely) or eagerly via Seal(); AddRoute
// invalidates the index, so build → query → rebuild cycles just work.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "netbase/contracts.h"
#include "netbase/inline_vec.h"
#include "netbase/ipv4.h"
#include "topo/topology.h"

namespace wormhole::routing {

using netbase::Ipv4Address;
using netbase::Prefix;
using topo::LinkId;
using topo::RouterId;

enum class RouteSource : std::uint8_t {
  kConnected,  ///< prefix on a local interface (or the loopback)
  kIgp,        ///< learned via intra-AS SPF
  kBgp,        ///< external, via the AS-level best path
};

/// One forwarding adjacency: send over `link` to `neighbor`.
struct NextHop {
  LinkId link = topo::kNoLink;
  RouterId neighbor = topo::kNoRouter;

  friend bool operator==(const NextHop&, const NextHop&) = default;
  friend auto operator<=>(const NextHop&, const NextHop&) = default;
};

/// An ECMP next-hop set. Real sets are almost always 1-3 hops, so they
/// live inline in the FibEntry — installing ~10^5 routes per convergence
/// must not mean ~10^5 heap vectors.
using NextHopSet = netbase::InlineVec<NextHop, 4>;

struct FibEntry {
  Prefix prefix;
  RouteSource source = RouteSource::kConnected;
  /// IGP metric to the prefix (0 for connected; AS-internal part for BGP).
  int metric = 0;
  /// Equal-cost next hops, sorted for determinism. Empty for a connected
  /// prefix on the router itself (local delivery).
  NextHopSet next_hops;
  /// For BGP routes on non-border routers: the loopback of the chosen
  /// egress border router (next-hop-self). Unspecified otherwise.
  Ipv4Address bgp_next_hop;
};

/// A recycling fixed-size-node pool: allocation pops a free list backed by
/// chunked slabs, deallocation pushes back onto it. Route-map nodes are
/// all one size, so the ~10^2 node allocations of a router's FIB build
/// collapse into a handful of slab mallocs — and destruction into a
/// handful of frees.
class FibNodePool {
 public:
  FibNodePool() = default;
  FibNodePool(const FibNodePool&) = delete;
  FibNodePool& operator=(const FibNodePool&) = delete;

  void* Allocate(std::size_t bytes) {
    if (free_list_ != nullptr) {
      void* node = free_list_;
      free_list_ = *static_cast<void**>(node);
      return node;
    }
    if (node_size_ == 0) node_size_ = SlotSize(bytes);
    WORMHOLE_ASSERT(SlotSize(bytes) == node_size_,
                    "FibNodePool serves exactly one node size");
    if (next_in_chunk_ == per_chunk_) {
      chunks_.push_back(std::make_unique<std::byte[]>(
          node_size_ * kChunkNodes));
      next_in_chunk_ = 0;
      per_chunk_ = kChunkNodes;
    }
    return chunks_.back().get() + node_size_ * next_in_chunk_++;
  }

  void Deallocate(void* node) {
    *static_cast<void**>(node) = free_list_;
    free_list_ = node;
  }

 private:
  static constexpr std::size_t kChunkNodes = 64;
  static constexpr std::size_t SlotSize(std::size_t bytes) {
    // Room for the free-list link, and 16-byte slots so any node type is
    // aligned within the (operator-new-aligned) slab.
    const std::size_t n = bytes < sizeof(void*) ? sizeof(void*) : bytes;
    return (n + 15) / 16 * 16;
  }

  std::size_t node_size_ = 0;
  std::size_t per_chunk_ = 0;
  std::size_t next_in_chunk_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  void* free_list_ = nullptr;
};

/// The std-allocator face of FibNodePool. Single-size nodes go through
/// the pool; anything else (never requested by the route map in practice)
/// falls back to operator new.
template <typename T>
class FibPoolAllocator {
 public:
  using value_type = T;

  explicit FibPoolAllocator(FibNodePool* pool) : pool_(pool) {}
  template <typename U>
  explicit(false) FibPoolAllocator(const FibPoolAllocator<U>& other)
      : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    if (n == 1) return static_cast<T*>(pool_->Allocate(sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    if (n == 1) {
      pool_->Deallocate(p);
    } else {
      ::operator delete(p);
    }
  }

  [[nodiscard]] FibNodePool* pool() const { return pool_; }

  template <typename U>
  friend bool operator==(const FibPoolAllocator& a,
                         const FibPoolAllocator<U>& b) {
    return a.pool_ == b.pool();
  }

 private:
  FibNodePool* pool_;
};

class Fib {
 public:
  Fib() : routes_(RouteAlloc(&pool_)) {}
  // The sealed index holds pointers into this object's own route map, so
  // copies and moves transfer only the build-side and re-seal lazily.
  // Nodes always come from this object's own pool, so moves with a
  // populated source are element-wise (the unequal-allocator path) — the
  // *source* map's nodes survive with moved-from values, so a moved-from
  // source must drop its sealed index too: it would otherwise keep
  // serving entries whose contents the move just gutted.
  Fib(const Fib& other) : routes_(other.routes_, RouteAlloc(&pool_)) {}
  Fib(Fib&& other) : routes_(std::move(other.routes_), RouteAlloc(&pool_)) {
    other.last_ = other.routes_.end();
    other.Invalidate();
  }
  Fib& operator=(const Fib& other) {
    if (this != &other) {
      routes_ = other.routes_;
      last_ = routes_.end();
      Invalidate();
    }
    return *this;
  }
  Fib& operator=(Fib&& other) {
    if (this != &other) {
      routes_ = std::move(other.routes_);
      last_ = routes_.end();
      other.last_ = other.routes_.end();
      Invalidate();
      other.Invalidate();
    }
    return *this;
  }

  /// Inserts or replaces the route for `entry.prefix`. Build-side only:
  /// not safe to call concurrently with Lookup.
  void AddRoute(FibEntry entry);

  /// Inserts only when no route for `entry.prefix` exists yet; returns
  /// whether it inserted. One tree descent — the connected-wins pattern
  /// of the install loops, without a LookupExact probe first.
  bool AddRouteIfAbsent(FibEntry entry);

  /// Compiles the flat query index (idempotent, thread-safe). The first
  /// Lookup seals automatically; calling this eagerly after route
  /// installation (sim::Network does) keeps the first packet fast.
  void Seal() const;

  /// Longest-prefix-match; nullptr when no route covers `dst`.
  [[nodiscard]] const FibEntry* Lookup(Ipv4Address dst) const;

  /// Best-effort cache warming for an imminent Lookup(dst): prefetches
  /// the first-probe hash slots of the most specific populated prefix
  /// lengths. Purely advisory — no effect on results, and a no-op before
  /// the index is sealed (prefetching never triggers the seal).
  void PrefetchLookup(Ipv4Address dst) const;

  /// Exact-match on a prefix (FEC lookup for LDP); nullptr if absent.
  /// Uses the sealed index when available, the build map otherwise (so
  /// interleaved AddRoute/LookupExact during route installation never
  /// pays for resealing).
  [[nodiscard]] const FibEntry* LookupExact(const Prefix& prefix) const;

  [[nodiscard]] std::size_t size() const { return routes_.size(); }

  /// All entries, in (address, length-ascending) order.
  [[nodiscard]] std::vector<const FibEntry*> Entries() const;

 private:
  struct Slot {
    std::uint64_t key = 0;  ///< 0 = empty (KeyOf never returns 0)
    const FibEntry* entry = nullptr;
  };

  /// Packs (masked address, length) so that no valid route collides with
  /// the empty-slot sentinel: length 0..32 maps to low bits 1..33.
  static constexpr std::uint64_t KeyOf(std::uint32_t address, int length) {
    return (std::uint64_t{address} << 8) |
           static_cast<std::uint64_t>(length + 1);
  }

  [[nodiscard]] const FibEntry* FindSealed(std::uint32_t address,
                                           int length) const;
  void Invalidate() { sealed_.store(false, std::memory_order_release); }

  /// Upper-bound insertion hint for ascending-order adds: the position
  /// just after the last touched element.
  [[nodiscard]] auto HintFor() {
    return last_ == routes_.end() ? last_ : std::next(last_);
  }

  using RouteKey = std::pair<std::uint32_t, int>;
  using RouteAlloc =
      FibPoolAllocator<std::pair<const RouteKey, FibEntry>>;

  using RouteMap =
      std::map<RouteKey, FibEntry, std::less<RouteKey>, RouteAlloc>;

  // Build side. Ordered so Entries() is deterministic; node-based so
  // sealed-slot and caller-held FibEntry pointers stay valid across
  // further AddRoute calls. Nodes live in pool_, declared first so it
  // outlives the map's destructor.
  FibNodePool pool_;
  RouteMap routes_;
  /// Last element touched by AddRoute/AddRouteIfAbsent. The install
  /// loops add routes in ascending prefix order, so std::next(last_) is
  /// the correct hint and those inserts are amortized O(1); out-of-order
  /// adds just make the hint stale, which costs the ordinary descent.
  RouteMap::iterator last_ = routes_.end();

  // Query side, built by Seal(). `sealed_` is the publication point:
  // readers acquire-load it before touching the index. Concurrency
  // contract: these fields are written only inside Seal() while holding
  // the per-Fib stripe of the seal StripedMutex (fib.cpp) and read
  // lock-free strictly after the `sealed_` release-store — the stripe is
  // dynamic, so the guard is not GUARDED_BY-nameable; the discipline is
  // pinned by tests/test_thread_safety.cpp instead.
  mutable std::atomic<bool> sealed_{false};
  mutable std::vector<Slot> slots_;
  mutable std::uint64_t slot_mask_ = 0;
  /// Bit l set ⇔ some /l route exists; Lookup probes only these lengths,
  /// most-specific first.
  mutable std::uint64_t populated_lengths_ = 0;
};

}  // namespace wormhole::routing
