// Building an ITDK-like router-level dataset out of traceroute output.
//
// Consecutive responding hops of a trace become links between their
// (alias-resolved) nodes — which is precisely how invisible MPLS tunnels
// poison real-world datasets: the Ingress and Egress LER appear adjacent
// and entry points grow into high-degree nodes.
#pragma once

#include <functional>
#include <vector>

#include "probe/trace.h"
#include "topo/itdk.h"
#include "topo/topology.h"

namespace wormhole::campaign {

/// Maps an address to its alias-group key (e.g. the owning router's
/// loopback). Addresses mapping to the same key form one node.
using AliasResolver =
    std::function<netbase::Ipv4Address(netbase::Ipv4Address)>;

/// Perfect alias resolution from ground truth: every address of a router
/// maps to its loopback. (The paper leans on CAIDA's alias resolution; we
/// substitute the truth, so dataset distortions come from *tunnels only*.)
AliasResolver TruthResolver(const topo::Topology& topology);

/// No alias resolution at all: every interface is its own node (the raw
/// IP-level graph before any MIDAR/kapar-style processing).
AliasResolver InterfaceResolver();

/// Imperfect alias resolution: like TruthResolver, but each address
/// independently fails to be merged with probability `miss_rate`
/// (deterministic per address for a given seed). Models alias-resolution
/// incompleteness in real ITDK-style datasets.
AliasResolver NoisyResolver(const topo::Topology& topology,
                            double miss_rate, std::uint64_t seed);

/// Adds one trace's inferred links/nodes to `dataset`. Private addresses
/// are pruned (the paper's ITDK cleanup); hops separated by a timeout do
/// not produce a link.
void AddTraceToDataset(topo::ItdkDataset& dataset,
                       const probe::TraceResult& trace,
                       const AliasResolver& resolver,
                       const topo::Topology& topology);

/// Builds a dataset from a whole batch of traces.
topo::ItdkDataset BuildDataset(const std::vector<probe::TraceResult>& traces,
                               const AliasResolver& resolver,
                               const topo::Topology& topology);

}  // namespace wormhole::campaign
