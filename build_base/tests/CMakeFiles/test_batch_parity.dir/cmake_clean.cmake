file(REMOVE_RECURSE
  "CMakeFiles/test_batch_parity.dir/test_batch_parity.cpp.o"
  "CMakeFiles/test_batch_parity.dir/test_batch_parity.cpp.o.d"
  "test_batch_parity"
  "test_batch_parity.pdb"
  "test_batch_parity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
