// Inter-AS routing (BGP-lite).
//
// Model: every AS announces its address block; best path = shortest AS path
// (ties broken on lowest neighbor ASN, deterministically); inside an AS each
// router picks its *nearest* border router towards the chosen next-hop AS
// (hot-potato), with next-hop-self semantics — the recursive BGP next hop is
// the egress border's loopback, which is what an Ingress LER resolves
// through an LDP LSP. Hot-potato egress choice is the mechanism that makes
// forward and return paths asymmetric, which FRPLA must tolerate (paper
// Sec. 3.4).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "routing/fib.h"
#include "routing/spf_engine.h"
#include "topo/topology.h"

namespace wormhole::routing {

struct BgpPolicy {
  /// ASes that never transit traffic (stub/customer ASes). They can be the
  /// source or destination AS of a path but are not expanded through.
  std::set<topo::AsNumber> stub_ases;

  /// Hierarchical (valley-free) scale mode. Off, every router carries one
  /// route per reachable AS — O(#ASes) FIB entries per router, which is
  /// fine for testbed worlds and fatal at 100k routers. On, routing
  /// mirrors provider aggregation in the real Internet: a stub AS
  /// installs its intra-AS routes plus a single 0.0.0.0/0 default toward
  /// its (lowest-ASN) provider; a core AS installs one covering
  /// `aggregates` prefix per other core AS plus a direct route per
  /// adjacent stub customer. Per-router FIB size drops from O(#ASes) to
  /// O(#core ASes + own customers), and the AS-level BFS shrinks from
  /// the full AS graph to the core graph. Requires customer address
  /// blocks to be allocated inside their provider's announced aggregate
  /// (gen::internet's hierarchical address plan does this).
  bool hierarchical = false;
  /// Covering prefix each core AS announces (its own block plus its
  /// customers' blocks); a core AS absent from the map announces just
  /// its own block. Ignored unless `hierarchical`.
  std::map<topo::AsNumber, Prefix> aggregates;
};

/// One eBGP adjacency: local border router + the link to the remote AS.
struct BorderLink {
  RouterId local = topo::kNoRouter;
  RouterId remote = topo::kNoRouter;
  topo::LinkId link = topo::kNoLink;
};

/// One pre-resolved inter-AS destination for the routers of a source AS:
/// the destination's address block and the source's border links toward
/// the chosen next AS.
struct BgpExit {
  Prefix prefix;
  const std::vector<BorderLink>* borders = nullptr;
};

/// One eBGP-link subnet a border router injects into its AS via iBGP.
struct BorderSubnet {
  Prefix subnet;
  RouterId border = topo::kNoRouter;
};

/// The AS-level view of a converged BGP: the eBGP adjacency (per AS,
/// grouped by peer, in link-id order — which fixes all hot-potato
/// tie-breaks) and, for every destination AS, each source AS's chosen
/// next AS (0 when unreachable; the destination maps to itself).
///
/// `exits` and `border_subnets` are the same data flattened into each
/// source AS's install order, resolved once in ComputeBgpLevel so the
/// per-router install loop does no map descents. `exits` points into
/// `adjacency`: moving a BgpLevel is fine (map nodes survive), copying
/// one is not.
struct BgpLevel {
  std::map<topo::AsNumber,
           std::map<topo::AsNumber, std::vector<BorderLink>>>
      adjacency;
  std::map<topo::AsNumber, std::map<topo::AsNumber, topo::AsNumber>>
      next_for;
  std::map<topo::AsNumber, std::vector<BgpExit>> exits;
  std::map<topo::AsNumber, std::vector<BorderSubnet>> border_subnets;
};

/// Computes the AS-level state once. Depends only on the topology's
/// inter-AS links and the policy — not on any FIB — so it can run before
/// (or concurrently with) IGP installation.
BgpLevel ComputeBgpLevel(const topo::Topology& topology,
                         const BgpPolicy& policy);

/// Installs BGP routes for one router from its SPF tree and the AS-level
/// state. Requires `fib` to already hold the router's connected + IGP
/// routes. Writes only `fib` — safe to fan out across routers.
void InstallBgpRoutesForRouter(const topo::Topology& topology,
                               const BgpLevel& level, const SpfTree& tree,
                               RouterId rid, Fib& fib);

/// Computes AS-level best paths for every destination AS and installs BGP
/// routes into every router's FIB. IGP routes must already be installed
/// (hot-potato needs intra-AS distances). Serial convenience wrapper that
/// builds a private SpfEngine.
void InstallBgpRoutes(const topo::Topology& topology, const BgpPolicy& policy,
                      std::vector<Fib>& fibs);

/// The chosen next AS from `from_as` towards `to_as`; 0 if unreachable or
/// equal. Exposed for tests and for the generator's sanity checks.
topo::AsNumber BgpNextAs(const topo::Topology& topology,
                         const BgpPolicy& policy, topo::AsNumber from_as,
                         topo::AsNumber to_as);

}  // namespace wormhole::routing
