#include "campaign/targets.h"

#include <algorithm>
#include <set>

namespace wormhole::campaign {

TargetSets SelectTargets(const topo::ItdkDataset& dataset,
                         std::size_t hdn_threshold) {
  TargetSets sets;
  sets.hdns = dataset.HighDegreeNodes(hdn_threshold);

  std::set<topo::NodeId> a_nodes;
  for (const topo::NodeId hdn : sets.hdns) {
    for (const topo::NodeId neighbor : dataset.NeighborsOf(hdn)) {
      a_nodes.insert(neighbor);
    }
  }
  std::set<topo::NodeId> b_nodes;
  for (const topo::NodeId a : a_nodes) {
    for (const topo::NodeId neighbor : dataset.NeighborsOf(a)) {
      if (!a_nodes.contains(neighbor)) b_nodes.insert(neighbor);
    }
  }

  const auto first_address = [&](topo::NodeId node) {
    return dataset.node(node).addresses.front();
  };
  for (const topo::NodeId n : a_nodes) {
    sets.set_a.push_back(first_address(n));
  }
  for (const topo::NodeId n : b_nodes) {
    sets.set_b.push_back(first_address(n));
  }

  std::set<netbase::Ipv4Address> all(sets.set_a.begin(), sets.set_a.end());
  all.insert(sets.set_b.begin(), sets.set_b.end());
  sets.all.assign(all.begin(), all.end());
  return sets;
}

std::vector<std::span<const netbase::Ipv4Address>> FixedShards(
    const std::vector<netbase::Ipv4Address>& targets,
    std::size_t shard_size) {
  const std::span<const netbase::Ipv4Address> all(targets);
  if (shard_size == 0 || targets.empty()) return {all};
  std::vector<std::span<const netbase::Ipv4Address>> out;
  out.reserve((targets.size() + shard_size - 1) / shard_size);
  for (std::size_t begin = 0; begin < targets.size(); begin += shard_size) {
    out.push_back(all.subspan(begin,
                              std::min(shard_size, targets.size() - begin)));
  }
  return out;
}

std::vector<std::vector<netbase::Ipv4Address>> ShardTargets(
    const std::vector<netbase::Ipv4Address>& targets, std::size_t shards) {
  std::vector<std::vector<netbase::Ipv4Address>> out(std::max<std::size_t>(
      shards, 1));
  for (std::size_t i = 0; i < targets.size(); ++i) {
    out[i % out.size()].push_back(targets[i]);
  }
  return out;
}

}  // namespace wormhole::campaign
