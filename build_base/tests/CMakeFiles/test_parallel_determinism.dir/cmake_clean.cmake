file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_determinism.dir/test_parallel_determinism.cpp.o"
  "CMakeFiles/test_parallel_determinism.dir/test_parallel_determinism.cpp.o.d"
  "test_parallel_determinism"
  "test_parallel_determinism.pdb"
  "test_parallel_determinism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
