file(REMOVE_RECURSE
  "CMakeFiles/delay_anomaly.dir/delay_anomaly.cpp.o"
  "CMakeFiles/delay_anomaly.dir/delay_anomaly.cpp.o.d"
  "delay_anomaly"
  "delay_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
