file(REMOVE_RECURSE
  "CMakeFiles/tunnel_hunter.dir/tunnel_hunter.cpp.o"
  "CMakeFiles/tunnel_hunter.dir/tunnel_hunter.cpp.o.d"
  "tunnel_hunter"
  "tunnel_hunter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunnel_hunter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
