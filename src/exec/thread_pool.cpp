#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace wormhole::exec {

std::size_t HardwareConcurrency() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t ThreadSlot(std::size_t modulus) {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id % std::max<std::size_t>(1, modulus);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (pool.size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Join {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t pending;
    std::exception_ptr error;
  } join;
  join.pending = n;

  for (std::size_t i = 0; i < n; ++i) {
    pool.Submit([&join, &fn, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(join.mutex);
        if (!join.error) join.error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(join.mutex);
      if (--join.pending == 0) join.cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(join.mutex);
  join.cv.wait(lock, [&join] { return join.pending == 0; });
  if (join.error) std::rethrow_exception(join.error);
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr) {
    ParallelFor(*pool, n, fn);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

std::size_t ResolveJobs(std::size_t requested) {
  return requested == 0 ? HardwareConcurrency()
                        : std::max<std::size_t>(1, requested);
}

StripedMutex::StripedMutex(std::size_t stripes)
    : stripes_(std::max<std::size_t>(1, stripes)),
      mutexes_(std::make_unique<std::mutex[]>(stripes_)) {}

}  // namespace wormhole::exec
