file(REMOVE_RECURSE
  "../bench/fig07_rfa"
  "../bench/fig07_rfa.pdb"
  "CMakeFiles/fig07_rfa.dir/fig07_rfa.cpp.o"
  "CMakeFiles/fig07_rfa.dir/fig07_rfa.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_rfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
