#include "fingerprint/signature.h"

#include <algorithm>

#include "probe/trace.h"

namespace wormhole::fingerprint {

const char* ToString(SignatureClass cls) {
  switch (cls) {
    case SignatureClass::kCisco: return "Cisco (IOS, IOS XR)";
    case SignatureClass::kJuniperJunos: return "Juniper (Junos)";
    case SignatureClass::kJuniperJunosE: return "Juniper (JunosE)";
    case SignatureClass::kBrocadeLinux: return "Brocade, Alcatel, Linux";
    case SignatureClass::kUnknown: return "unknown";
  }
  return "?";
}

SignatureClass Classify(const Signature& signature) {
  if (signature.time_exceeded_initial == 255) {
    if (signature.echo_reply_initial == 255) return SignatureClass::kCisco;
    if (signature.echo_reply_initial == 64) {
      return SignatureClass::kJuniperJunos;
    }
  }
  if (signature.time_exceeded_initial == 128 &&
      signature.echo_reply_initial == 128) {
    return SignatureClass::kJuniperJunosE;
  }
  if (signature.time_exceeded_initial == 64 &&
      signature.echo_reply_initial == 64) {
    return SignatureClass::kBrocadeLinux;
  }
  return SignatureClass::kUnknown;
}

bool UsableForRtla(const Signature& signature) {
  return signature.echo_reply_initial != 0 &&
         signature.time_exceeded_initial != 0 &&
         signature.echo_reply_initial < signature.time_exceeded_initial;
}

void SignatureCollector::RecordTimeExceeded(netbase::Ipv4Address address,
                                            int reply_ip_ttl) {
  partial_[address].time_exceeded_initial =
      probe::InferInitialTtl(reply_ip_ttl);
}

void SignatureCollector::RecordEchoReply(netbase::Ipv4Address address,
                                         int reply_ip_ttl) {
  partial_[address].echo_reply_initial = probe::InferInitialTtl(reply_ip_ttl);
}

void SignatureCollector::EnsureEchoReply(probe::Prober& prober,
                                         netbase::Ipv4Address address) {
  if (!NeedsEchoReply(address)) return;
  const probe::PingResult result = prober.Ping(address);
  if (result.responded) RecordEchoReply(address, result.reply_ip_ttl);
}

bool SignatureCollector::NeedsEchoReply(netbase::Ipv4Address address) const {
  const auto it = partial_.find(address);
  return it == partial_.end() || it->second.echo_reply_initial == 0;
}

std::vector<std::pair<netbase::Ipv4Address, Signature>>
SignatureCollector::SortedEntries() const {
  std::vector<std::pair<netbase::Ipv4Address, Signature>> entries(
      partial_.begin(), partial_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return entries;
}

std::optional<Signature> SignatureCollector::SignatureOf(
    netbase::Ipv4Address address) const {
  const auto it = partial_.find(address);
  if (it == partial_.end() || it->second.time_exceeded_initial == 0 ||
      it->second.echo_reply_initial == 0) {
    return std::nullopt;
  }
  return it->second;
}

SignatureClass SignatureCollector::ClassOf(
    netbase::Ipv4Address address) const {
  const auto signature = SignatureOf(address);
  return signature ? Classify(*signature) : SignatureClass::kUnknown;
}

}  // namespace wormhole::fingerprint
