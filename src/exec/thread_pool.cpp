#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace wormhole::exec {

std::size_t HardwareConcurrency() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t ThreadSlot(std::size_t modulus) {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id % std::max<std::size_t>(1, modulus);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.Wait(mutex_);
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (pool.size() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // GUARDED_BY on a stack-local works because the lambdas below are the
  // only other holders of a reference, and each is analyzed like any
  // function: touching `pending`/`error` without the lock is an error.
  struct Join {
    explicit Join(std::size_t n) : pending(n) {}
    Mutex mutex;
    CondVar cv;
    std::size_t pending GUARDED_BY(mutex);
    std::exception_ptr error GUARDED_BY(mutex);
  } join(n);

  for (std::size_t i = 0; i < n; ++i) {
    pool.Submit([&join, &fn, i] {
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(join.mutex);
        if (!join.error) join.error = std::current_exception();
      }
      MutexLock lock(join.mutex);
      if (--join.pending == 0) join.cv.NotifyAll();
    });
  }

  MutexLock lock(join.mutex);
  while (join.pending != 0) join.cv.Wait(join.mutex);
  if (join.error) std::rethrow_exception(join.error);
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (pool != nullptr) {
    ParallelFor(*pool, n, fn);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

std::size_t ResolveJobs(std::size_t requested) {
  return requested == 0 ? HardwareConcurrency()
                        : std::max<std::size_t>(1, requested);
}

}  // namespace wormhole::exec
