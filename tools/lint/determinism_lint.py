#!/usr/bin/env python3
"""Repo-specific determinism lint for the wormhole codebase.

The paper's techniques (FRPLA/RTLA shift statistics, DPR/BRPR revelation)
only mean anything if a campaign is bit-exact run to run, across thread
counts and across machines. Generic static analyzers cannot know which
invariants guarantee that here, so this checker enforces the repo's own
rules:

  wall-clock          No wall-clock or OS-time source anywhere. Simulated
                      time is the only clock; real time would leak into
                      RTTs and reports.
  raw-rng             No std::random_device / rand() / srand() / direct
                      mt19937 construction outside src/netbase/rng.h.
                      Every stochastic draw must flow through the seeded
                      netbase::Rng so campaigns replay exactly.
  unordered-iteration Report/trace-producing code (src/analysis, src/io,
                      src/fingerprint, tools) must not iterate unordered
                      containers: hash-order would reorder output lines
                      between runs and libstdc++ versions.
  raw-threading       No raw std::thread / std::mutex / condition
                      variables — nor the C++20 sync vocabulary (latch,
                      barrier, semaphores, futures, call_once, stop
                      tokens, this_thread) — outside src/exec;
                      concurrency is centralized there so determinism
                      (sharded merge order) is auditable in one place.
                      tests/ are exempt (they exercise the exec
                      primitives directly).
  fastpath-heap       The sealed fast-path files (inline label stacks,
                      packet model) must not use heap-allocating std
                      containers; the steady-state swap path is
                      allocation-free by contract.
  batch-heap          Regions bracketed by `// lint:batch-hot-begin` /
                      `// lint:batch-hot-end` (the batched-stepping round
                      loops) must neither declare heap-allocating std
                      containers nor grow one (push_back/resize/...);
                      batch arenas are sized before the rounds start and
                      recycled, so steady state is allocation-free.
  label-range         Integer literals at label-assignment sites must be
                      0 (unset / explicit-null sentinel) or within
                      [16, 2^20 - 1]. Reserved labels 1..15 must be
                      spelled via netbase::ReservedLabel, and anything
                      past 20 bits cannot be encoded in a shim header.

Suppressions (each finding names the rule to use):

  ... code ...  // lint:allow(rule-id): reason
  // lint:allow-next-line(rule-id): reason
  // lint:allow-file(rule-id): reason        (anywhere in the file)

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_EXTENSIONS = {".cpp", ".cc", ".cxx", ".h", ".hpp"}
SCAN_DIRS = ("src", "tools", "bench", "tests", "examples")
EXCLUDED_PARTS = {"fixtures", "build", "build-tsan"}

# Files whose steady-state path must stay allocation-free (PR 2's sealed
# fast path). Paths are repo-relative, forward-slash.
FASTPATH_FILES = {
    "src/netbase/inline_vec.h",
    "src/netbase/label.h",
    "src/netbase/packet.h",
}

# Directories whose iteration order feeds report/trace output.
OUTPUT_DIRS = ("src/analysis", "src/io", "src/fingerprint", "tools")

RNG_HOME = "src/netbase/rng.h"
EXEC_DIR = "src/exec"

ALLOW_LINE = re.compile(r"//\s*lint:allow\(([\w,\s-]+)\)")
ALLOW_NEXT = re.compile(r"//\s*lint:allow-next-line\(([\w,\s-]+)\)")
ALLOW_FILE = re.compile(r"//\s*lint:allow-file\(([\w,\s-]+)\)")
BATCH_HOT_BEGIN = re.compile(r"//\s*lint:batch-hot-begin\b")
BATCH_HOT_END = re.compile(r"//\s*lint:batch-hot-end\b")

WALL_CLOCK = re.compile(
    r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"
    r"|\b(gettimeofday|clock_gettime|localtime|gmtime|timespec_get)\s*\("
    r"|\bstd::time\s*\(|[^:\w]time\s*\(\s*(nullptr|NULL|0)?\s*\)"
)
RAW_RNG = re.compile(
    r"std::random_device|\bstd::mt19937(_64)?\b"
    r"|[^:.\w](rand|srand|random|srandom|drand48)\s*\("
)
RAW_THREADING = re.compile(
    r"std::(thread|jthread|mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|async|latch|barrier|future|shared_future|"
    r"promise|packaged_task|counting_semaphore|binary_semaphore|"
    r"call_once|once_flag|stop_token|stop_source|this_thread)\b"
)
HEAP_CONTAINER = re.compile(
    r"std::(vector|string|deque|list|map|set|unordered_map|unordered_set|"
    r"multimap|multiset|function|shared_ptr|unique_ptr)\b"
    r"|\bnew\b|\bmalloc\s*\(|\bcalloc\s*\("
)
# Container growth inside a batch-hot region. Even growth that usually
# hits reserved capacity is banned: sizing belongs to batch setup, where
# a reallocation is visible and paid once.
CONTAINER_GROWTH = re.compile(
    r"\.\s*(push_back|emplace_back|resize|reserve|assign|insert|emplace|"
    r"append)\s*\("
)
UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;={(]"
)
RANGE_FOR = re.compile(r"\bfor\s*\(.*?:\s*([^)]+)\)")
# Label-assignment sites: `label = 42`, `.label = 42`, `label{42}`,
# `label(42)`, `out_label = 42`, `lse.label = 42`, `PushLabel(42)`.
LABEL_LITERAL = re.compile(
    r"(?:\b\w*label\w*\s*(?:=|\{|\()\s*|PushLabel\s*\(\s*)(\d+)\b"
)

LABEL_MIN = 16
LABEL_MAX = (1 << 20) - 1

RULES = (
    "wall-clock",
    "raw-rng",
    "unordered-iteration",
    "raw-threading",
    "fastpath-heap",
    "batch-heap",
    "label-range",
)


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def parse_rule_list(text: str) -> set[str]:
    return {part.strip() for part in text.split(",") if part.strip()}


def strip_code(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Removes comments and string/char literal contents from one line.

    Returns the scannable remainder and the block-comment state after the
    line. Suppression markers must be read from the RAW line, not this.
    """
    out: list[str] = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        ch = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            break
        if ch == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            continue
        if ch in "\"'":
            quote = ch
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(ch)
        i += 1
    return "".join(out), in_block_comment


def collect_unordered_names(files: list[tuple[str, Path]]) -> set[str]:
    """Names declared anywhere in the tree as unordered containers.

    File-local type knowledge is enough in practice: the repo's unordered
    members keep their names (`tables_`, `host_index_`, ...) at use sites.
    """
    names: set[str] = set()
    for _, path in files:
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        for match in UNORDERED_DECL.finditer(text):
            names.add(match.group(1))
    return names


def in_dirs(rel: str, dirs: tuple[str, ...]) -> bool:
    return any(rel == d or rel.startswith(d + "/") for d in dirs)


def check_file(
    rel: str, path: Path, unordered_names: set[str]
) -> list[Finding]:
    try:
        raw_lines = path.read_text(
            encoding="utf-8", errors="replace"
        ).splitlines()
    except OSError as error:
        return [Finding(rel, 0, "io", f"unreadable: {error}")]

    file_allowed: set[str] = set()
    for line in raw_lines:
        for match in ALLOW_FILE.finditer(line):
            file_allowed |= parse_rule_list(match.group(1))

    findings: list[Finding] = []
    next_line_allowed: set[str] = set()
    in_block = False
    in_batch_hot = False

    is_fastpath = rel in FASTPATH_FILES
    is_output_dir = in_dirs(rel, OUTPUT_DIRS)
    is_test = in_dirs(rel, ("tests",))
    in_exec = in_dirs(rel, (EXEC_DIR,))
    is_rng_home = rel == RNG_HOME

    def report(lineno: int, rule: str, message: str, allowed: set[str]):
        if rule in allowed:
            return
        findings.append(Finding(rel, lineno, rule, message))

    for lineno, raw in enumerate(raw_lines, start=1):
        allowed = file_allowed | next_line_allowed
        next_line_allowed = set()
        for match in ALLOW_NEXT.finditer(raw):
            next_line_allowed |= parse_rule_list(match.group(1))
        for match in ALLOW_LINE.finditer(raw):
            allowed |= parse_rule_list(match.group(1))

        # Region markers live in comments, so they are read from the raw
        # line. The marker lines themselves are not part of the region.
        if BATCH_HOT_END.search(raw):
            in_batch_hot = False

        code, in_block = strip_code(raw, in_block)
        if not code.strip():
            if BATCH_HOT_BEGIN.search(raw):
                in_batch_hot = True
            continue

        if WALL_CLOCK.search(code):
            report(
                lineno,
                "wall-clock",
                "wall-clock/OS time source; simulated time is the only "
                "clock (delays come from the topology)",
                allowed,
            )
        if not is_rng_home and RAW_RNG.search(code):
            report(
                lineno,
                "raw-rng",
                "raw randomness source; draw through the seeded "
                "netbase::Rng (src/netbase/rng.h) instead",
                allowed,
            )
        if not is_test and not in_exec and RAW_THREADING.search(code):
            report(
                lineno,
                "raw-threading",
                "raw threading primitive outside src/exec; use the "
                "exec:: facilities (ThreadPool, ParallelFor, "
                "StripedMutex)",
                allowed,
            )
        if is_fastpath and HEAP_CONTAINER.search(code):
            report(
                lineno,
                "fastpath-heap",
                "heap-allocating construct in a sealed fast-path file; "
                "the steady-state swap path is allocation-free by "
                "contract",
                allowed,
            )
        if in_batch_hot and (
            HEAP_CONTAINER.search(code) or CONTAINER_GROWTH.search(code)
        ):
            report(
                lineno,
                "batch-heap",
                "heap allocation or container growth inside a "
                "lint:batch-hot region; size batch arenas before the "
                "round loop starts",
                allowed,
            )
        if is_output_dir:
            for match in RANGE_FOR.finditer(code):
                expr = match.group(1).strip()
                tail = re.split(r"[.\->\s]+", expr)[-1]
                if "unordered" in expr or tail in unordered_names:
                    report(
                        lineno,
                        "unordered-iteration",
                        f"iterating '{expr}' (unordered container) in "
                        "report/trace-producing code; copy into a sorted "
                        "sequence first",
                        allowed,
                    )
        for match in LABEL_LITERAL.finditer(code):
            value = int(match.group(1))
            if value != 0 and not (LABEL_MIN <= value <= LABEL_MAX):
                report(
                    lineno,
                    "label-range",
                    f"label literal {value} outside [16, 2^20-1]; "
                    "reserved labels must use netbase::ReservedLabel",
                    allowed,
                )
        if BATCH_HOT_BEGIN.search(raw):
            in_batch_hot = True

    return findings


def gather_files(root: Path, paths: list[str]) -> list[tuple[str, Path]]:
    files: list[tuple[str, Path]] = []

    def add(path: Path):
        rel = path.relative_to(root).as_posix()
        if any(part in EXCLUDED_PARTS for part in rel.split("/")):
            return
        if path.suffix in SOURCE_EXTENSIONS:
            files.append((rel, path))

    if paths:
        for entry in paths:
            p = Path(entry)
            if not p.is_absolute():
                p = root / p
            if p.is_dir():
                for child in sorted(p.rglob("*")):
                    if child.is_file():
                        add(child)
            elif p.is_file():
                add(p)
            else:
                print(f"error: no such path: {entry}", file=sys.stderr)
                sys.exit(2)
    else:
        for d in SCAN_DIRS:
            base = root / d
            if not base.is_dir():
                continue
            for child in sorted(base.rglob("*")):
                if child.is_file():
                    add(child)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (scopes like src/exec are resolved "
        "against this)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the standard scan "
        "set under --root)",
    )
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"error: bad --root: {args.root}", file=sys.stderr)
        return 2

    files = gather_files(root, args.paths)
    unordered_names = collect_unordered_names(files)

    findings: list[Finding] = []
    for rel, path in files:
        findings.extend(check_file(rel, path, unordered_names))

    for finding in findings:
        print(finding)
    if findings:
        count = len(findings)
        print(
            f"determinism-lint: {count} finding(s) in "
            f"{len({f.path for f in findings})} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"determinism-lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
