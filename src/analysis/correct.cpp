#include "analysis/correct.h"

namespace wormhole::analysis {

CorrectionStats ApplyRevelations(
    topo::ItdkDataset& dataset,
    const std::map<campaign::EndpointPair, reveal::RevelationResult>&
        revelations,
    const campaign::AliasResolver& resolver,
    const topo::Topology& topology) {
  CorrectionStats stats;
  for (const auto& [pair, revelation] : revelations) {
    if (!revelation.succeeded()) continue;
    const auto ingress = dataset.FindNode(pair.ingress);
    const auto egress = dataset.FindNode(pair.egress);
    if (!ingress || !egress) continue;

    ++stats.tunnels_applied;
    if (dataset.HasLink(*ingress, *egress)) {
      dataset.RemoveLink(*ingress, *egress);
      ++stats.false_links_removed;
    }

    topo::NodeId previous = *ingress;
    for (const netbase::Ipv4Address address : revelation.revealed) {
      const netbase::Ipv4Address key = resolver(address);
      const bool existed = dataset.FindNode(key).has_value();
      const topo::NodeId node = dataset.NodeOf(key);
      dataset.AddAlias(node, address);
      if (dataset.node(node).asn == 0) {
        dataset.SetAs(node, topology.AsOfAddress(address));
      }
      existed ? ++stats.addresses_mapped : ++stats.addresses_new;
      if (!dataset.HasLink(previous, node)) {
        dataset.AddLink(previous, node);
        ++stats.links_added;
      }
      previous = node;
    }
    if (!dataset.HasLink(previous, *egress)) {
      dataset.AddLink(previous, *egress);
      ++stats.links_added;
    }
  }
  return stats;
}

topo::ItdkDataset CorrectedCopy(
    const topo::ItdkDataset& dataset,
    const std::map<campaign::EndpointPair, reveal::RevelationResult>&
        revelations,
    const campaign::AliasResolver& resolver,
    const topo::Topology& topology) {
  topo::ItdkDataset copy = dataset;
  ApplyRevelations(copy, revelations, resolver, topology);
  return copy;
}

}  // namespace wormhole::analysis
