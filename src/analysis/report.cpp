#include "analysis/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace wormhole::analysis {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
  for (const std::size_t w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::Num(std::size_t v) { return std::to_string(v); }
std::string TextTable::Num(int v) { return std::to_string(v); }

std::string TextTable::Pct(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string TextTable::Real(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string TextTable::Opt(const std::optional<int>& v) {
  return v ? std::to_string(*v) : "-";
}

namespace {

std::string Sparkline(double fraction) {
  const int width = 40;
  const int filled = static_cast<int>(fraction * width + 0.5);
  return std::string(static_cast<std::size_t>(std::clamp(filled, 0, width)),
                     '#');
}

double ClampedPdf(const netbase::IntDistribution& d, int v, int min_value,
                  int max_value) {
  if (d.empty()) return 0.0;
  double p = d.Pdf(v);
  if (v == min_value) p = d.Cdf(v);                 // mass below folds in
  if (v == max_value) p = 1.0 - d.Cdf(v - 1);       // mass above folds in
  return p;
}

}  // namespace

std::string RenderPdf(const netbase::IntDistribution& d, int min_value,
                      int max_value, const std::string& label) {
  std::ostringstream os;
  os << "# " << label << " (n=" << d.total() << ")\n";
  os << std::fixed << std::setprecision(4);
  for (int v = min_value; v <= max_value; ++v) {
    const double p = ClampedPdf(d, v, min_value, max_value);
    os << std::setw(5) << v << "  " << p << "  " << Sparkline(p) << '\n';
  }
  return os.str();
}

std::string RenderPdfComparison(
    const std::vector<std::pair<std::string, const netbase::IntDistribution*>>&
        series,
    int min_value, int max_value) {
  std::ostringstream os;
  std::vector<int> widths;
  os << std::setw(5) << "x";
  for (const auto& [label, d] : series) {
    const std::string header = label + "(n=" + std::to_string(d->total()) +
                               ")";
    widths.push_back(std::max<int>(10, static_cast<int>(header.size())));
    os << "  " << std::setw(widths.back()) << header;
  }
  os << '\n' << std::fixed << std::setprecision(4);
  for (int v = min_value; v <= max_value; ++v) {
    os << std::setw(5) << v;
    for (std::size_t s = 0; s < series.size(); ++s) {
      os << "  " << std::setw(widths[s])
         << ClampedPdf(*series[s].second, v, min_value, max_value);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace wormhole::analysis
