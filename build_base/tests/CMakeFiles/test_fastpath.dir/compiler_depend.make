# Empty compiler generated dependencies file for test_fastpath.
# This may be replaced when dependencies are built.
