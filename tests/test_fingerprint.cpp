#include <gtest/gtest.h>

#include "fingerprint/signature.h"
#include "gen/gns3.h"
#include "probe/prober.h"

namespace wormhole::fingerprint {
namespace {

TEST(Signature, ClassifiesTable1) {
  EXPECT_EQ(Classify({255, 255}), SignatureClass::kCisco);
  EXPECT_EQ(Classify({255, 64}), SignatureClass::kJuniperJunos);
  EXPECT_EQ(Classify({128, 128}), SignatureClass::kJuniperJunosE);
  EXPECT_EQ(Classify({64, 64}), SignatureClass::kBrocadeLinux);
  EXPECT_EQ(Classify({128, 64}), SignatureClass::kUnknown);
}

TEST(Signature, RtlaUsability) {
  EXPECT_TRUE(UsableForRtla({255, 64}));
  EXPECT_TRUE(UsableForRtla({255, 128}));
  EXPECT_FALSE(UsableForRtla({255, 255}));
  EXPECT_FALSE(UsableForRtla({64, 64}));
  EXPECT_FALSE(UsableForRtla({0, 64}));
}

TEST(Signature, FormatsLikeTable1) {
  EXPECT_EQ((Signature{255, 64}).ToString(), "<255,64>");
}

// End-to-end: infer every AS2 router's signature through actual probing,
// for each vendor the testbed supports.
struct VendorCase {
  topo::Vendor vendor;
  SignatureClass expected;
};

class FingerprintVendorTest : public ::testing::TestWithParam<VendorCase> {};

TEST_P(FingerprintVendorTest, InfersVendorFromProbes) {
  const auto [vendor, expected] = GetParam();
  // Default scenario: the tunnel is explicit so traceroute elicits
  // time-exceeded from every LSR.
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kDefault, .as2_vendor = vendor});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());

  SignatureCollector collector;
  const auto trace = prober.Traceroute(testbed.Address("CE2.left"));
  for (const auto& hop : trace.hops) {
    if (!hop.address) continue;
    collector.RecordTimeExceeded(*hop.address, hop.reply_ip_ttl);
    collector.EnsureEchoReply(prober, *hop.address);
  }

  // Every AS2 hop must classify as the configured vendor.
  int classified = 0;
  for (const auto& hop : trace.hops) {
    if (!hop.address) continue;
    if (testbed.topology().AsOfAddress(*hop.address) != 2) continue;
    EXPECT_EQ(collector.ClassOf(*hop.address), expected)
        << testbed.NameOf(*hop.address);
    ++classified;
  }
  EXPECT_GE(classified, 4);
}

INSTANTIATE_TEST_SUITE_P(
    Vendors, FingerprintVendorTest,
    ::testing::Values(
        VendorCase{topo::Vendor::kCiscoIos, SignatureClass::kCisco},
        VendorCase{topo::Vendor::kJuniperJunos,
                   SignatureClass::kJuniperJunos},
        VendorCase{topo::Vendor::kJuniperJunosE,
                   SignatureClass::kJuniperJunosE},
        VendorCase{topo::Vendor::kBrocade, SignatureClass::kBrocadeLinux}));

TEST(SignatureCollector, PartialSignatureIsNotClassified) {
  SignatureCollector collector;
  const netbase::Ipv4Address a(5, 0, 0, 1);
  collector.RecordTimeExceeded(a, 250);
  EXPECT_FALSE(collector.SignatureOf(a).has_value());
  EXPECT_EQ(collector.ClassOf(a), SignatureClass::kUnknown);
  collector.RecordEchoReply(a, 60);
  const auto signature = collector.SignatureOf(a);
  ASSERT_TRUE(signature.has_value());
  EXPECT_EQ(*signature, (Signature{255, 64}));
}

}  // namespace
}  // namespace wormhole::fingerprint
