// Fixture: all three suppression forms silence their rule (and only
// their rule).
// lint:allow-file(wall-clock): fixture exercises the file-level form
#include <chrono>
#include <cstdlib>
#include <mutex>

void Suppressed() {
  auto t = std::chrono::system_clock::now();  // file-level allow
  (void)t;
  std::mutex m;  // lint:allow(raw-threading): same-line form
  m.lock();
  m.unlock();
  // lint:allow-next-line(raw-rng): next-line form
  int r = rand();
  (void)r;
}
