// Fixture: a clean batch-hot region — arenas are sized before the round
// loop, the loop itself only indexes into them.
#include <cstddef>
#include <vector>

int StepRounds(std::size_t live) {
  std::vector<int> rows;
  rows.resize(live);  // sizing belongs to setup, outside the region
  int total = 0;
  // lint:batch-hot-begin
  while (live > 0) {
    --live;
    rows[live] = static_cast<int>(live);
    total += rows[live];
    // A suppressed growth: the one sanctioned re-sizing point.
    // lint:allow-next-line(batch-heap): documented amortized growth
    rows.push_back(total);
  }
  // lint:batch-hot-end
  return total;
}
