// One-call campaign reporting: a self-contained markdown report plus
// plot-ready CSV series from a CampaignResult — what a downstream user
// wants after running the pipeline on their own topology.
#pragma once

#include <iosfwd>
#include <string>

#include "campaign/campaign.h"

namespace wormhole::analysis {

struct ReportOptions {
  std::size_t hdn_threshold = 8;
  /// Ground-truth annotations are included when the topology is the
  /// generated one (they are derived from the address space only).
  bool include_distributions = true;
};

/// Writes a markdown report: campaign summary, per-AS discovery and
/// deployment tables, headline distributions and UHP suspicions.
void WriteCampaignReport(std::ostream& os,
                         const campaign::CampaignResult& result,
                         const topo::Topology& topology,
                         const ReportOptions& options = {});

/// Writes one distribution as CSV ("value,count,pdf\n" rows).
void WriteDistributionCsv(std::ostream& os,
                          const netbase::IntDistribution& distribution);

/// Writes report.md plus ftl.csv / rfa_egress.csv / rfa_others.csv /
/// rtl.csv / pathlen_invisible.csv / pathlen_visible.csv / degree.csv
/// into `directory` (created if missing). Returns the report path.
std::string WriteCampaignArtifacts(const std::string& directory,
                                   const campaign::CampaignResult& result,
                                   const topo::Topology& topology,
                                   const ReportOptions& options = {});

}  // namespace wormhole::analysis
