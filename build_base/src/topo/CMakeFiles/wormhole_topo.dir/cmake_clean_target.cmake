file(REMOVE_RECURSE
  "libwormhole_topo.a"
)
