# Empty compiler generated dependencies file for wormhole_routing.
# This may be replaced when dependencies are built.
