file(REMOVE_RECURSE
  "CMakeFiles/test_integration_mixed.dir/test_integration_mixed.cpp.o"
  "CMakeFiles/test_integration_mixed.dir/test_integration_mixed.cpp.o.d"
  "test_integration_mixed"
  "test_integration_mixed.pdb"
  "test_integration_mixed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
