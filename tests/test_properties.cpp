// Property-style parameterised sweeps:
//  * the full Table 2 visibility matrix (LDP policy × TTL policy × target),
//  * "revelation == ground truth" over seeds and configurations,
//  * traceroute/SPF consistency on random topologies.
#include <gtest/gtest.h>

#include "gen/gns3.h"
#include "gen/internet.h"
#include "probe/prober.h"
#include "reveal/frpla.h"
#include "reveal/revelator.h"
#include "reveal/rtla.h"
#include "routing/igp.h"
#include "sim/network.h"

namespace wormhole {
namespace {

using gen::Gns3Scenario;
using topo::Vendor;

// --- Table 2: visibility matrix ---------------------------------------------

struct Table2Case {
  mpls::LdpPolicy ldp;
  bool ttl_propagate;
  bool external_target;  // CE2.left (external) vs PE2.left (internal)
  // expectations
  bool tunnel_visible;     // interior hops appear in the trace
  bool labels_quoted;      // RFC4950 LSEs in the trace
  bool shift;              // FRPLA-positive RFA at the egress
};

std::string CaseName(const ::testing::TestParamInfo<Table2Case>& info) {
  const auto& c = info.param;
  std::string name;
  name += c.ldp == mpls::LdpPolicy::kAllPrefixes ? "AllPrefixes" : "Loopback";
  name += c.ttl_propagate ? "Propagate" : "NoPropagate";
  name += c.external_target ? "External" : "Internal";
  return name;
}

class Table2Test : public ::testing::TestWithParam<Table2Case> {};

TEST_P(Table2Test, VisibilityMatrix) {
  const Table2Case& c = GetParam();
  // Build the Fig. 2 testbed with the exact knob combination.
  gen::Gns3Testbed testbed({.scenario = Gns3Scenario::kDefault});
  mpls::MplsConfigMap::AsOptions options;
  options.ttl_propagate = c.ttl_propagate;
  options.ldp_policy = c.ldp;
  auto& configs = testbed.configs();
  configs.EnableAs(2, options);
  testbed.Reconverge();

  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto target =
      testbed.Address(c.external_target ? "CE2.left" : "PE2.left");
  const auto trace = prober.Traceroute(target);
  ASSERT_TRUE(trace.reached);

  // Interior visibility: do P1/P2/P3 appear?
  int interior = 0;
  for (const char* name : {"P1.left", "P2.left", "P3.left"}) {
    if (trace.HopOf(testbed.Address(name))) ++interior;
  }
  if (c.tunnel_visible) {
    EXPECT_GE(interior, c.external_target ? 3 : 1);
  } else {
    EXPECT_EQ(interior, 0);
  }
  EXPECT_EQ(trace.HasExplicitMpls(), c.labels_quoted);

  // FRPLA shift at the trace's last AS2 hop.
  const probe::Hop* egress_hop = nullptr;
  for (const auto& hop : trace.hops) {
    if (hop.address &&
        testbed.topology().AsOfAddress(*hop.address) == 2) {
      egress_hop = &hop;
    }
  }
  ASSERT_NE(egress_hop, nullptr);
  const auto rfa = reveal::ObserveRfa(*egress_hop);
  ASSERT_TRUE(rfa.has_value());
  if (c.shift) {
    EXPECT_GT(rfa->rfa(), 0);
  } else {
    EXPECT_LE(rfa->rfa(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VisibilityMatrix, Table2Test,
    ::testing::Values(
        // ttl-propagate: explicit LSP, no shift — both policies, both
        // targets (internal + loopback-only rides the plain IGP route:
        // visible but label-free).
        Table2Case{mpls::LdpPolicy::kAllPrefixes, true, true, true, true,
                   false},
        Table2Case{mpls::LdpPolicy::kAllPrefixes, true, false, true, true,
                   false},
        Table2Case{mpls::LdpPolicy::kLoopbacksOnly, true, true, true, true,
                   false},
        Table2Case{mpls::LdpPolicy::kLoopbacksOnly, true, false, true,
                   false, false},
        // no-ttl-propagate: invisible LSP + FRPLA shift for external
        // targets; internal targets leak the LH (all-prefix) or the whole
        // route (loopback-only).
        Table2Case{mpls::LdpPolicy::kAllPrefixes, false, true, false, false,
                   true},
        Table2Case{mpls::LdpPolicy::kAllPrefixes, false, false, true, false,
                   true},
        Table2Case{mpls::LdpPolicy::kLoopbacksOnly, false, true, false,
                   false, true},
        Table2Case{mpls::LdpPolicy::kLoopbacksOnly, false, false, true,
                   false, false}),
    CaseName);

// --- RTLA gap == true return tunnel length over tunnel lengths --------------

class RtlaSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(RtlaSweepTest, GapEqualsTunnelLength) {
  const int lsr_count = GetParam();
  // Chain: gw | in - m1 .. m<k> - out | dst, Juniper AS2, invisible.
  topo::Topology topology;
  topology.AddAs(1, "src");
  topology.AddAs(2, "mpls");
  topology.AddAs(3, "dst");
  const auto gw = topology.AddRouter(1, "gw", Vendor::kCiscoIos);
  const auto in = topology.AddRouter(2, "in", Vendor::kJuniperJunos);
  topo::RouterId previous = in;
  for (int i = 0; i < lsr_count; ++i) {
    const auto m = topology.AddRouter(2, "m" + std::to_string(i),
                                      Vendor::kJuniperJunos);
    topology.AddLink(previous, m);
    previous = m;
  }
  const auto out = topology.AddRouter(2, "out", Vendor::kJuniperJunos);
  topology.AddLink(previous, out);
  const auto dst = topology.AddRouter(3, "dst", Vendor::kCiscoIos);
  topology.AddLink(gw, in);
  topology.AddLink(out, dst);
  const auto vp = topology.AttachHost(gw, "VP");

  mpls::MplsConfigMap configs(topology);
  configs.EnableAs(2, {.ttl_propagate = false,
                       .ldp_policy = mpls::LdpPolicy::kAllPrefixes});
  sim::Network network(topology, configs,
                       routing::BgpPolicy{.stub_ases = {1, 3}});
  probe::Prober prober(network.engine(), vp);

  const auto trace = prober.Traceroute(topology.router(dst).loopback);
  ASSERT_TRUE(trace.reached);
  // The egress "out" is the last AS2 hop.
  const probe::Hop* egress_hop = nullptr;
  for (const auto& hop : trace.hops) {
    if (hop.address && topology.AsOfAddress(*hop.address) == 2) {
      egress_hop = &hop;
    }
  }
  ASSERT_NE(egress_hop, nullptr);
  const auto ping = prober.Ping(*egress_hop->address);
  ASSERT_TRUE(ping.responded);
  const auto obs = reveal::ObserveRtla(
      *egress_hop->address, egress_hop->reply_ip_ttl, ping.reply_ip_ttl);
  ASSERT_TRUE(obs.has_value());
  EXPECT_EQ(obs->return_tunnel_length(), lsr_count);
}

INSTANTIATE_TEST_SUITE_P(TunnelLengths, RtlaSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

// --- BRPR/DPR vs ground truth over tunnel lengths and policies --------------

struct RevealCase {
  int lsr_count;
  mpls::LdpPolicy ldp;
};

class RevealSweepTest : public ::testing::TestWithParam<RevealCase> {};

TEST_P(RevealSweepTest, RevealsExactlyTheHiddenChain) {
  const auto [lsr_count, ldp] = GetParam();
  topo::Topology topology;
  topology.AddAs(1, "src");
  topology.AddAs(2, "mpls");
  topology.AddAs(3, "dst");
  const auto gw = topology.AddRouter(1, "gw", Vendor::kCiscoIos);
  const auto in = topology.AddRouter(2, "in", Vendor::kCiscoIos);
  std::vector<topo::RouterId> lsrs;
  topo::RouterId previous = in;
  for (int i = 0; i < lsr_count; ++i) {
    lsrs.push_back(topology.AddRouter(2, "m" + std::to_string(i),
                                      Vendor::kCiscoIos));
    topology.AddLink(previous, lsrs.back());
    previous = lsrs.back();
  }
  const auto out = topology.AddRouter(2, "out", Vendor::kCiscoIos);
  topology.AddLink(previous, out);
  const auto dst = topology.AddRouter(3, "dst", Vendor::kCiscoIos);
  topology.AddLink(gw, in);
  topology.AddLink(out, dst);
  const auto vp = topology.AttachHost(gw, "VP");

  mpls::MplsConfigMap configs(topology);
  configs.EnableAs(2, {.ttl_propagate = false, .ldp_policy = ldp});
  sim::Network network(topology, configs,
                       routing::BgpPolicy{.stub_ases = {1, 3}});
  probe::Prober prober(network.engine(), vp);

  // The invisible trace shows in, out adjacent.
  const auto trace = prober.Traceroute(topology.router(dst).loopback);
  ASSERT_TRUE(trace.reached);
  const auto last3 = trace.LastResponders(3);
  ASSERT_EQ(last3.size(), 3u);

  reveal::Revelator revelator(prober);
  const auto result = revelator.Reveal(last3[0], last3[1]);
  ASSERT_TRUE(result.succeeded());
  ASSERT_EQ(result.revealed.size(), static_cast<std::size_t>(lsr_count));
  for (int i = 0; i < lsr_count; ++i) {
    const auto owner = topology.FindRouterByAddress(
        result.revealed[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(*owner, lsrs[static_cast<std::size_t>(i)])
        << "hop " << i << " mismatched";
  }
  // Method matches the LDP policy (single-LSR tunnels stay ambiguous).
  if (lsr_count > 1) {
    EXPECT_EQ(result.method, ldp == mpls::LdpPolicy::kAllPrefixes
                                 ? reveal::RevelationMethod::kBrpr
                                 : reveal::RevelationMethod::kDpr);
  } else {
    EXPECT_EQ(result.method, reveal::RevelationMethod::kEither);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Chains, RevealSweepTest,
    ::testing::Values(RevealCase{1, mpls::LdpPolicy::kAllPrefixes},
                      RevealCase{2, mpls::LdpPolicy::kAllPrefixes},
                      RevealCase{4, mpls::LdpPolicy::kAllPrefixes},
                      RevealCase{7, mpls::LdpPolicy::kAllPrefixes},
                      RevealCase{1, mpls::LdpPolicy::kLoopbacksOnly},
                      RevealCase{2, mpls::LdpPolicy::kLoopbacksOnly},
                      RevealCase{4, mpls::LdpPolicy::kLoopbacksOnly},
                      RevealCase{7, mpls::LdpPolicy::kLoopbacksOnly}));

// --- UHP sweep: total invisibility scales with tunnel length ----------------

class UhpSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(UhpSweepTest, UhpHidesInteriorPlusEgressAndResistsRevelation) {
  const int lsr_count = GetParam();
  topo::Topology topology;
  topology.AddAs(1, "src");
  topology.AddAs(2, "uhp");
  topology.AddAs(3, "dst");
  const auto gw = topology.AddRouter(1, "gw", Vendor::kCiscoIos);
  const auto in = topology.AddRouter(2, "in", Vendor::kCiscoIos);
  topo::RouterId previous = in;
  for (int i = 0; i < lsr_count; ++i) {
    const auto m = topology.AddRouter(2, "m" + std::to_string(i),
                                      Vendor::kCiscoIos);
    topology.AddLink(previous, m);
    previous = m;
  }
  const auto out = topology.AddRouter(2, "out", Vendor::kCiscoIos);
  topology.AddLink(previous, out);
  const auto dst = topology.AddRouter(3, "dst", Vendor::kCiscoIos);
  topology.AddLink(gw, in);
  topology.AddLink(out, dst);
  const auto vp = topology.AttachHost(gw, "VP");

  mpls::MplsConfigMap configs(topology);
  configs.EnableAs(2, {.ttl_propagate = false,
                       .popping = mpls::Popping::kUhp});
  sim::Network network(topology, configs,
                       routing::BgpPolicy{.stub_ases = {1, 3}});
  probe::Prober prober(network.engine(), vp);

  const auto trace = prober.Traceroute(topology.router(dst).loopback);
  ASSERT_TRUE(trace.reached);
  // Physical path: gw, in, m*, out, dst = lsr_count + 4 routers; observed:
  // gw, in, dst — the k LSRs AND the egress disappear, regardless of k.
  std::vector<topo::RouterId> responders;
  for (const auto& hop : trace.hops) {
    if (hop.address) {
      responders.push_back(*topology.FindRouterByAddress(*hop.address));
    }
  }
  EXPECT_EQ(responders, (std::vector<topo::RouterId>{gw, in, dst}));

  // And nothing can be revealed between the apparent neighbors.
  const auto last3 = trace.LastResponders(3);
  ASSERT_EQ(last3.size(), 3u);
  reveal::Revelator revelator(prober);
  EXPECT_FALSE(revelator.Reveal(last3[0], last3[1]).succeeded());
}

INSTANTIATE_TEST_SUITE_P(TunnelLengths, UhpSweepTest,
                         ::testing::Values(1, 2, 4, 7, 11));

// --- traceroute vs SPF on random internets ----------------------------------

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, TraceLengthMatchesSpfWithoutMpls) {
  // Disable MPLS entirely: traceroute hop counts must equal the routing
  // distance (intra-AS SPF hops + inter-AS segments).
  gen::InternetOptions options;
  options.seed = GetParam();
  options.tier1_count = 2;
  options.transit_count = 3;
  options.stub_count = 8;
  options.mpls_probability = 0.0;
  options.vp_count = 2;
  gen::SyntheticInternet net(options);
  probe::Prober prober(net.engine(), net.vantage_points().front());

  int checked = 0;
  for (const auto loopback : net.AllLoopbacks()) {
    const auto trace = prober.Traceroute(loopback);
    if (!trace.reached) continue;
    ++checked;
    // Monotone hop numbering with no repeats.
    std::set<netbase::Ipv4Address> seen;
    for (const auto& hop : trace.hops) {
      if (!hop.address) continue;
      EXPECT_TRUE(seen.insert(*hop.address).second)
          << "address repeated in trace (loop?)";
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_P(SeedSweepTest, InvisibleTunnelsOnlyShortenPaths) {
  gen::InternetOptions options;
  options.seed = GetParam();
  options.tier1_count = 2;
  options.transit_count = 3;
  options.stub_count = 8;
  options.vp_count = 2;
  options.no_ttl_propagate_probability = 1.0;  // every MPLS AS invisible
  options.uhp_probability = 0.0;
  gen::SyntheticInternet net(options);

  // Compare observed lengths against the same world with tunnels forced
  // visible: hidden <= visible, per destination.
  probe::Prober hidden_prober(net.engine(), net.vantage_points().front());
  std::map<netbase::Ipv4Address, int> hidden_lengths;
  for (const auto loopback : net.AllLoopbacks()) {
    const auto trace = hidden_prober.Traceroute(loopback);
    if (trace.reached) hidden_lengths[loopback] = trace.LastRespondingTtl();
  }
  net.ForceTtlPropagation(true);
  probe::Prober visible_prober(net.engine(), net.vantage_points().front());
  int compared = 0;
  int strictly_shorter = 0;
  for (const auto& [loopback, hidden_length] : hidden_lengths) {
    const auto trace = visible_prober.Traceroute(loopback);
    if (!trace.reached) continue;
    ++compared;
    EXPECT_LE(hidden_length, trace.LastRespondingTtl());
    if (hidden_length < trace.LastRespondingTtl()) ++strictly_shorter;
  }
  EXPECT_GT(compared, 0);
  EXPECT_GT(strictly_shorter, 0);  // some tunnel actually hid hops
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace wormhole
