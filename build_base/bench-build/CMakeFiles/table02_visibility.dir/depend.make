# Empty dependencies file for table02_visibility.
# This may be replaced when dependencies are built.
