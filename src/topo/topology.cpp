#include "topo/topology.h"

#include <algorithm>
#include <stdexcept>

namespace wormhole::topo {

const char* ToString(Vendor vendor) {
  switch (vendor) {
    case Vendor::kCiscoIos: return "Cisco IOS";
    case Vendor::kCiscoIosXr: return "Cisco IOS XR";
    case Vendor::kJuniperJunos: return "Juniper Junos";
    case Vendor::kJuniperJunosE: return "Juniper JunosE";
    case Vendor::kBrocade: return "Brocade";
    case Vendor::kLinux: return "Linux";
  }
  return "?";
}

AsNumber Topology::AddAs(AsNumber asn, std::string name, int block_bits) {
  if (as_index_.contains(asn)) {
    throw std::invalid_argument("AS " + std::to_string(asn) +
                                " already exists");
  }
  if (block_bits < 8 || block_bits > 30) {
    throw std::invalid_argument("AddAs: block_bits outside [8, 30]");
  }
  AutonomousSystem as;
  as.asn = asn;
  as.name = std::move(name);
  // Bump-allocate a size-aligned block. Default /16s reproduce the
  // historic layout exactly: 5.b.0.0/16 with b incrementing per AS,
  // spilling into 6.0.0.0/8 etc.
  const auto size =
      static_cast<std::uint32_t>(std::uint64_t{1} << (32 - block_bits));
  const std::uint32_t base = (next_addr_ + size - 1) & ~(size - 1);
  if (base + (size - 1) < base) {
    throw std::runtime_error("topology address space exhausted");
  }
  next_addr_ = base + size;
  as.block = Prefix(Ipv4Address(base), block_bits);
  as_index_[asn] = ases_.size();
  ases_.push_back(std::move(as));
  ++version_;
  return asn;
}

Prefix Topology::BeginAggregate(int bits) {
  if (bits < 2 || bits > 30) {
    throw std::invalid_argument("BeginAggregate: bits outside [2, 30]");
  }
  const auto size =
      static_cast<std::uint32_t>(std::uint64_t{1} << (32 - bits));
  const std::uint32_t base = (next_addr_ + size - 1) & ~(size - 1);
  if (base + (size - 1) < base) {
    throw std::runtime_error("topology address space exhausted");
  }
  next_addr_ = base;
  return Prefix(Ipv4Address(base), bits);
}

void Topology::Reserve(std::size_t routers, std::size_t interfaces,
                       std::size_t links, std::size_t hosts) {
  routers_.reserve(routers);
  interfaces_.reserve(interfaces);
  links_.reserve(links);
  hosts_.reserve(hosts);
  name_to_router_.reserve(routers);
  host_index_.reserve(hosts);
}

const AutonomousSystem& Topology::as(AsNumber asn) const {
  const auto it = as_index_.find(asn);
  if (it == as_index_.end()) {
    throw std::out_of_range("unknown AS " + std::to_string(asn));
  }
  return ases_[it->second];
}

std::vector<AsNumber> Topology::AsNumbers() const {
  std::vector<AsNumber> out;
  out.reserve(ases_.size());
  for (const auto& as : ases_) out.push_back(as.asn);
  return out;
}

Prefix Topology::AllocateSubnet(AsNumber asn, int length) {
  auto& as = ases_[as_index_.at(asn)];
  auto& offset = as.next_offset;
  const auto size = static_cast<std::uint32_t>(
      std::uint64_t{1} << (32 - length));
  // Align the offset to the subnet size.
  offset = (offset + size - 1) & ~(size - 1);
  if (offset + size > as.block.size()) {
    throw std::runtime_error("AS " + std::to_string(asn) +
                             " address block exhausted");
  }
  const Prefix subnet(as.block.At(offset), length);
  offset += size;
  return subnet;
}

void Topology::IndexAddress(Ipv4Address address, InterfaceId iface) {
  const std::uint32_t off = address.value() - kBlockBase;
  const std::size_t page = off / kAddressPageSize;
  if (page >= address_pages_.size()) address_pages_.resize(page + 1);
  auto& slots = address_pages_[page];
  if (slots.empty()) slots.assign(kAddressPageSize, kNoInterface);
  slots[off % kAddressPageSize] = iface;
}

RouterId Topology::AddRouter(AsNumber asn, std::string name, Vendor vendor) {
  const auto it = as_index_.find(asn);
  if (it == as_index_.end()) {
    throw std::invalid_argument("AddRouter: unknown AS " +
                                std::to_string(asn));
  }
  if (name_to_router_.contains(name)) {
    throw std::invalid_argument("duplicate router name: " + name);
  }

  const RouterId id = static_cast<RouterId>(routers_.size());
  Router router;
  router.id = id;
  router.name = std::move(name);
  router.asn = asn;
  router.vendor = vendor;

  const Prefix loopback = AllocateSubnet(asn, 32);
  router.loopback = loopback.address();

  Interface lo;
  lo.id = static_cast<InterfaceId>(interfaces_.size());
  lo.router = id;
  lo.link = kNoLink;
  lo.address = loopback.address();
  lo.subnet = loopback;
  lo.name = router.name + ".lo";
  router.loopback_interface = lo.id;

  IndexAddress(lo.address, lo.id);
  name_to_router_[router.name] = id;
  interfaces_.push_back(std::move(lo));
  ases_[it->second].routers.push_back(id);
  routers_.push_back(std::move(router));
  ++version_;
  return id;
}

LinkId Topology::AddLink(RouterId a, RouterId b, LinkOptions options) {
  if (a == b) throw std::invalid_argument("AddLink: self-loop");
  Router& ra = routers_.at(a);
  Router& rb = routers_.at(b);

  const AsNumber owner_asn = std::min(ra.asn, rb.asn);
  const Prefix subnet = AllocateSubnet(owner_asn, 31);

  const LinkId link_id = static_cast<LinkId>(links_.size());
  Link link;
  link.id = link_id;
  link.subnet = subnet;
  link.igp_metric = options.igp_metric;
  link.delay_ms = options.delay_ms;

  // Interface naming mirrors the paper's "X.if<n>" style; the GNS3 builder
  // overrides these with ".left"/".right" labels.
  const auto make_interface = [&](Router& router, std::uint32_t host) {
    Interface iface;
    iface.id = static_cast<InterfaceId>(interfaces_.size());
    iface.router = router.id;
    iface.link = link_id;
    iface.address = subnet.At(host);
    iface.subnet = subnet;
    iface.name = router.name + ".if" +
                 std::to_string(router.interfaces.size());
    IndexAddress(iface.address, iface.id);
    router.interfaces.push_back(iface.id);
    interfaces_.push_back(iface);
    return iface.id;
  };

  link.a = make_interface(ra, 0);
  link.b = make_interface(rb, 1);
  if (ra.asn == rb.asn) {
    ases_[as_index_.at(ra.asn)].internal_links.push_back(link_id);
  }
  links_.push_back(link);
  ++version_;
  return link_id;
}

Ipv4Address Topology::AttachHost(RouterId gateway, std::string name) {
  Router& router = routers_.at(gateway);
  const Prefix subnet = AllocateSubnet(router.asn, 31);

  Interface stub;
  stub.id = static_cast<InterfaceId>(interfaces_.size());
  stub.router = gateway;
  stub.link = kNoLink;
  stub.address = subnet.At(0);
  stub.subnet = subnet;
  stub.name = router.name + ".stub" + std::to_string(hosts_.size());
  IndexAddress(stub.address, stub.id);
  router.interfaces.push_back(stub.id);

  Host host;
  host.address = subnet.At(1);
  host.gateway = gateway;
  host.stub_interface = stub.id;
  host.name = std::move(name);
  host_index_[host.address] = hosts_.size();
  interfaces_.push_back(std::move(stub));
  hosts_.push_back(std::move(host));
  ++version_;
  return hosts_.back().address;
}

const Host* Topology::FindHost(Ipv4Address address) const {
  const auto it = host_index_.find(address);
  return it == host_index_.end() ? nullptr : &hosts_[it->second];
}

std::optional<RouterId> Topology::FindRouterByAddress(
    Ipv4Address address) const {
  const auto iface = FindInterfaceByAddress(address);
  if (!iface) return std::nullopt;
  return interfaces_[*iface].router;
}

std::optional<InterfaceId> Topology::FindInterfaceByAddress(
    Ipv4Address address) const {
  const std::uint32_t value = address.value();
  if (value < kBlockBase) return std::nullopt;
  const std::uint32_t off = value - kBlockBase;
  const std::size_t page = off / kAddressPageSize;
  if (page >= address_pages_.size()) return std::nullopt;
  const auto& slots = address_pages_[page];
  if (slots.empty()) return std::nullopt;
  const InterfaceId iface = slots[off % kAddressPageSize];
  if (iface == kNoInterface) return std::nullopt;
  return iface;
}

std::optional<RouterId> Topology::FindRouterByName(
    std::string_view name) const {
  const auto it = name_to_router_.find(std::string(name));
  if (it == name_to_router_.end()) return std::nullopt;
  return it->second;
}

const Interface& Topology::EndOn(LinkId link, RouterId router) const {
  const Link& l = links_.at(link);
  const Interface& ia = interfaces_.at(l.a);
  if (ia.router == router) return ia;
  const Interface& ib = interfaces_.at(l.b);
  if (ib.router == router) return ib;
  throw std::invalid_argument("router not on link");
}

const Interface& Topology::OtherEnd(LinkId link, RouterId router) const {
  const Link& l = links_.at(link);
  const Interface& ia = interfaces_.at(l.a);
  const Interface& ib = interfaces_.at(l.b);
  if (ia.router == router) return ib;
  if (ib.router == router) return ia;
  throw std::invalid_argument("router not on link");
}

RouterId Topology::Neighbor(LinkId link, RouterId router) const {
  return OtherEnd(link, router).router;
}

std::vector<std::pair<RouterId, LinkId>> Topology::Neighbors(
    RouterId router) const {
  std::vector<std::pair<RouterId, LinkId>> out;
  const Router& r = routers_.at(router);
  out.reserve(r.interfaces.size());
  for (const InterfaceId iid : r.interfaces) {
    const Interface& iface = interfaces_.at(iid);
    if (iface.link == kNoLink) continue;  // host stub, no router across it
    if (!links_.at(iface.link).up) continue;
    out.emplace_back(Neighbor(iface.link, router), iface.link);
  }
  return out;
}

std::vector<Prefix> Topology::ConnectedPrefixes(RouterId router) const {
  std::vector<Prefix> out;
  const Router& r = routers_.at(router);
  out.push_back(Prefix::Host(r.loopback));
  for (const InterfaceId iid : r.interfaces) {
    const Interface& iface = interfaces_.at(iid);
    // Connected routes are withdrawn while the link is down.
    if (iface.link != kNoLink && !links_.at(iface.link).up) continue;
    out.push_back(iface.subnet);
  }
  return out;
}

std::vector<Prefix> Topology::InternalPrefixes(AsNumber asn) const {
  std::vector<Prefix> out;
  const AutonomousSystem& as = this->as(asn);
  out.reserve(as.routers.size() + as.internal_links.size());
  for (const RouterId rid : as.routers) {
    out.push_back(Prefix::Host(routers_.at(rid).loopback));
  }
  // Per-AS link list: O(AS size), not O(total links) — at 100k routers
  // the global scan made convergence quadratic in world size.
  for (const LinkId lid : as.internal_links) {
    const Link& link = links_[lid];
    if (link.up) out.push_back(link.subnet);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Topology::IsInternalLink(LinkId link) const {
  const Link& l = links_.at(link);
  return routers_.at(interfaces_.at(l.a).router).asn ==
         routers_.at(interfaces_.at(l.b).router).asn;
}

AsNumber Topology::AsOfAddress(Ipv4Address address) const {
  const auto router = FindRouterByAddress(address);
  return router ? routers_.at(*router).asn : 0;
}

}  // namespace wormhole::topo
