file(REMOVE_RECURSE
  "../bench/table02_visibility"
  "../bench/table02_visibility.pdb"
  "CMakeFiles/table02_visibility.dir/table02_visibility.cpp.o"
  "CMakeFiles/table02_visibility.dir/table02_visibility.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
