# Empty compiler generated dependencies file for fig01_degree_itdk.
# This may be replaced when dependencies are built.
