// The paper's GNS3 emulation testbed (Fig. 2): three ASes in a chain,
//
//   VP -- CE1 | PE1 -- P1 -- P2 -- P3 -- PE2 | CE2
//       (AS1)  (          AS2, MPLS        )  (AS3)
//
// with the four configuration scenarios of Sec. 3.3. Interfaces are named
// "X.left"/"X.right" like the paper so bench/fig04_emulation can print the
// exact paris-traceroute outputs of Fig. 4.
#pragma once

#include <memory>
#include <string>

#include "mpls/config.h"
#include "netbase/ipv4.h"
#include "sim/network.h"
#include "topo/topology.h"

namespace wormhole::gen {

/// The four scenarios of paper Sec. 3.3 / Fig. 4.
enum class Gns3Scenario : std::uint8_t {
  kDefault,            ///< ttl-propagate, PHP, all prefixes: explicit tunnel
  kBackwardRecursive,  ///< no-ttl-propagate, PHP, all prefixes: BRPR case
  kExplicitRoute,      ///< no-ttl-propagate, PHP, loopbacks only: DPR case
  kTotallyInvisible,   ///< no-ttl-propagate, UHP: nothing is revealable
};

const char* ToString(Gns3Scenario scenario);

struct Gns3Options {
  Gns3Scenario scenario = Gns3Scenario::kDefault;
  /// Hardware of the AS2 routers (the paper also ran a Juniper testbed).
  topo::Vendor as2_vendor = topo::Vendor::kCiscoIos;
};

/// The built testbed. Non-movable: `configs` and `network` reference
/// `topology` in place.
class Gns3Testbed {
 public:
  explicit Gns3Testbed(const Gns3Options& options);
  Gns3Testbed(const Gns3Testbed&) = delete;
  Gns3Testbed& operator=(const Gns3Testbed&) = delete;

  [[nodiscard]] const topo::Topology& topology() const { return topology_; }
  [[nodiscard]] const mpls::MplsConfigMap& configs() const { return configs_; }
  [[nodiscard]] mpls::MplsConfigMap& configs() { return configs_; }
  [[nodiscard]] sim::Network& network() { return *network_; }
  [[nodiscard]] sim::Engine& engine() { return network_->engine(); }
  [[nodiscard]] netbase::Ipv4Address vantage_point() const { return vp_; }

  /// Address of a named interface ("PE2.left", "CE2.left", ...) or router
  /// loopback ("P2.lo" / bare router name).
  [[nodiscard]] netbase::Ipv4Address Address(const std::string& name) const;
  /// Reverse: human name of an address ("P3.left"), or the dotted quad.
  [[nodiscard]] std::string NameOf(netbase::Ipv4Address address) const;

  /// Recomputes the control plane after config changes (tests tweak
  /// individual routers).
  void Reconverge();

 private:
  topo::Topology topology_;
  mpls::MplsConfigMap configs_;
  netbase::Ipv4Address vp_;
  std::unique_ptr<sim::Network> network_;
};

}  // namespace wormhole::gen
