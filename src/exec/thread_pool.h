// Minimal parallel-execution primitives for campaign-scale fan-out.
//
// The design goal is deterministic parallelism: work is split into
// per-worker shards whose *contents* are fixed up front (not stolen
// dynamically), so every run issues exactly the same operations per shard
// regardless of scheduling, and results can be merged in a fixed order.
//
// All shared state here carries thread-safety annotations (see
// src/netbase/thread_annotations.h); CI's clang thread-safety job
// promotes a missed lock to a compile error.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "exec/sync.h"
#include "netbase/thread_annotations.h"

namespace wormhole::exec {

/// std::thread::hardware_concurrency(), but never 0.
std::size_t HardwareConcurrency();

/// A small stable slot index in [0, modulus) for the calling thread.
/// Distinct live threads get distinct slots until `modulus` is exhausted;
/// after that slots are reused (callers must tolerate sharing, e.g. with
/// atomic counters). The slot is assigned on first call and never changes
/// for the lifetime of the thread.
std::size_t ThreadSlot(std::size_t modulus);

/// Fixed-size worker pool. Workers are spawned once in the constructor and
/// joined in the destructor; tasks are run FIFO.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues one task. Never blocks.
  void Submit(std::function<void()> task) EXCLUDES(mutex_);

 private:
  void WorkerLoop() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
};

/// Runs fn(0), ..., fn(n-1) and blocks until all complete. With a
/// single-worker pool (or n <= 1) everything runs inline on the calling
/// thread — the jobs=1 path adds no synchronisation at all. Exceptions
/// from tasks are captured and the first one is rethrown on the caller.
/// Must not be called from inside a pool worker (the caller blocks).
void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// Null-tolerant variant: with `pool == nullptr` everything runs inline,
/// in index order, on the calling thread. Lets callers carry one optional
/// pool pointer instead of branching at every fan-out site.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// Resolves a user-facing jobs count: 0 means "auto" (hardware
/// concurrency), anything else is taken literally (minimum 1).
std::size_t ResolveJobs(std::size_t requested);

}  // namespace wormhole::exec
