// Intra-AS routing: link-state SPF (OSPF-like) with ECMP.
//
// For every AS, runs Dijkstra from each member router over the AS's internal
// links and installs routes for every internal prefix (loopbacks and link
// subnets) into the per-router FIBs. A prefix shared by two routers (a /31
// link subnet) is reached via the *nearer* owner — which is what makes the
// PHP-popped last hop own the Egress LER's incoming prefix, the property
// BRPR exploits (paper Sec. 3.2).
#pragma once

#include <limits>
#include <vector>

#include "routing/fib.h"
#include "topo/topology.h"

namespace wormhole::routing {

constexpr int kUnreachable = std::numeric_limits<int>::max();

/// SPF result from one source router: distance and ECMP next hops per
/// destination router of the same AS.
struct SpfResult {
  RouterId source = topo::kNoRouter;
  /// Metric distance per destination router id (kUnreachable outside AS).
  std::vector<int> distance;
  /// ECMP next hops towards each destination router.
  std::vector<std::vector<NextHop>> next_hops;
  /// Hop count (min number of links) per destination, for path analyses.
  std::vector<int> hop_count;
};

/// Runs Dijkstra from `source` restricted to `source`'s AS.
SpfResult ComputeSpf(const topo::Topology& topology, RouterId source);

/// Installs connected + IGP routes for every router of `asn` into `fibs`
/// (indexed by RouterId across the whole topology).
void InstallIgpRoutes(const topo::Topology& topology, topo::AsNumber asn,
                      std::vector<Fib>& fibs);

/// Metric distance between two routers of the same AS (kUnreachable if in
/// different ASes or disconnected). Convenience wrapper over ComputeSpf.
int IgpDistance(const topo::Topology& topology, RouterId from, RouterId to);

/// Minimum hop count between two routers of the same AS.
int IgpHopDistance(const topo::Topology& topology, RouterId from, RouterId to);

}  // namespace wormhole::routing
