// Quickstart: build the paper's Fig. 2 testbed, watch an MPLS tunnel
// appear/disappear across the four configurations (paper Fig. 4), then run
// the paper's techniques against the invisible one: FRPLA and RTLA to
// *detect* it, DPR/BRPR to *reveal* its content.
#include <iostream>

#include "gen/gns3.h"
#include "probe/prober.h"
#include "reveal/frpla.h"
#include "reveal/revelator.h"
#include "reveal/rtla.h"

int main() {
  using namespace wormhole;

  // 1. The tunnel in its four configurations.
  for (const auto scenario :
       {gen::Gns3Scenario::kDefault, gen::Gns3Scenario::kBackwardRecursive,
        gen::Gns3Scenario::kExplicitRoute,
        gen::Gns3Scenario::kTotallyInvisible}) {
    gen::Gns3Testbed testbed({.scenario = scenario});
    probe::Prober prober(testbed.engine(), testbed.vantage_point());
    const probe::TraceResult trace =
        prober.Traceroute(testbed.Address("CE2.left"));
    std::cout << "=== " << gen::ToString(scenario) << " ===\n"
              << trace.Format(
                     [&](netbase::Ipv4Address a) { return testbed.NameOf(a); })
              << "\n";
  }

  // 2. Hunt the invisible one.
  std::cout << "=== hunting the Backward Recursive tunnel ===\n";
  gen::Gns3Testbed testbed(
      {.scenario = gen::Gns3Scenario::kBackwardRecursive});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  const auto trace = prober.Traceroute(testbed.Address("CE2.left"));

  // FRPLA: the egress's reply TTL says the return path is longer than the
  // forward one — something is hidden.
  const auto rfa = reveal::ObserveRfa(trace.hops[2]);
  std::cout << "FRPLA at PE2: forward " << rfa->forward_length
            << " hops, return " << rfa->return_length << " hops -> RFA +"
            << rfa->rfa() << " (tunnel suspected)\n";

  // DPR/BRPR: pull the hidden LSRs out.
  reveal::Revelator revelator(prober);
  const auto revelation = revelator.Reveal(testbed.Address("PE1.left"),
                                           testbed.Address("PE2.left"));
  std::cout << "revelation via " << reveal::ToString(revelation.method)
            << ":";
  for (const auto hop : revelation.revealed) {
    std::cout << "  " << testbed.NameOf(hop);
  }
  std::cout << "\n(" << revelation.traces_used
            << " extra traces; tunnel length " << revelation.tunnel_length()
            << " hops)\n";
  return 0;
}
