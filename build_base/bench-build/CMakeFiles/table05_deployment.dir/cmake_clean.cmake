file(REMOVE_RECURSE
  "../bench/table05_deployment"
  "../bench/table05_deployment.pdb"
  "CMakeFiles/table05_deployment.dir/table05_deployment.cpp.o"
  "CMakeFiles/table05_deployment.dir/table05_deployment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
