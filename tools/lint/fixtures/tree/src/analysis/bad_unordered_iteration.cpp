// Fixture: iterating an unordered container in report-producing code
// must fire unordered-iteration (hash order would reorder output).
#include <cstdio>
#include <string>
#include <unordered_map>

struct Report {
  std::unordered_map<int, std::string> rows_;

  void Print() const {
    for (const auto& [id, text] : rows_) {  // expect: unordered-iteration
      std::printf("%d %s\n", id, text.c_str());
    }
    for (const auto& row : std::unordered_map<int, int>{}) {  // expect: unordered-iteration
      std::printf("%d\n", row.first);
    }
  }
};
