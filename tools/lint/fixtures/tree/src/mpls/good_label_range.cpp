// Fixture: in-range literals, the 0 sentinel, and suppressed reserved
// values are all accepted.
#include <cstdint>

struct Lse {
  std::uint32_t label = 0;  // 0 = unset sentinel, allowed
};

void Build() {
  Lse a;
  a.label = 16;       // first unreserved label
  a.label = 1048575;  // 2^20 - 1, the top of the space
  a.label = 1;  // lint:allow(label-range): router-alert, fixture-only
}
