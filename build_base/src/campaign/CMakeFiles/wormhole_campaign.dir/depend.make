# Empty dependencies file for wormhole_campaign.
# This may be replaced when dependencies are built.
