#include "topo/itdk.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace wormhole::topo {

NodeId ItdkDataset::NodeOf(netbase::Ipv4Address address) {
  const auto it = address_to_node_.find(address);
  if (it != address_to_node_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  ItdkNode node;
  node.id = id;
  node.addresses.push_back(address);
  nodes_.push_back(std::move(node));
  address_to_node_[address] = id;
  return id;
}

std::optional<NodeId> ItdkDataset::FindNode(
    netbase::Ipv4Address address) const {
  const auto it = address_to_node_.find(address);
  if (it == address_to_node_.end()) return std::nullopt;
  return it->second;
}

void ItdkDataset::AddAlias(NodeId node, netbase::Ipv4Address address) {
  const auto it = address_to_node_.find(address);
  if (it != address_to_node_.end()) {
    if (it->second != node) {
      throw std::logic_error("address already aliased to another node");
    }
    return;
  }
  nodes_.at(node).addresses.push_back(address);
  address_to_node_[address] = node;
}

void ItdkDataset::AddLink(NodeId a, NodeId b) {
  if (a == b) return;
  const auto key = std::minmax(a, b);
  if (!link_index_.insert(LinkKey(key.first, key.second)).second) return;
  links_.emplace(key.first, key.second);
  adjacency_[a].insert(b);
  adjacency_[b].insert(a);
}

void ItdkDataset::RemoveLink(NodeId a, NodeId b) {
  const auto key = std::minmax(a, b);
  if (link_index_.erase(LinkKey(key.first, key.second)) > 0) {
    links_.erase({key.first, key.second});
    adjacency_[a].erase(b);
    adjacency_[b].erase(a);
  }
}

bool ItdkDataset::HasLink(NodeId a, NodeId b) const {
  const auto key = std::minmax(a, b);
  return link_index_.contains(LinkKey(key.first, key.second));
}

void ItdkDataset::SetAs(NodeId node, AsNumber asn) {
  nodes_.at(node).asn = asn;
}

std::size_t ItdkDataset::Degree(NodeId node) const {
  const auto it = adjacency_.find(node);
  return it == adjacency_.end() ? 0 : it->second.size();
}

const std::set<NodeId>& ItdkDataset::NeighborsOf(NodeId node) const {
  static const std::set<NodeId> kEmpty;
  const auto it = adjacency_.find(node);
  return it == adjacency_.end() ? kEmpty : it->second;
}

netbase::IntDistribution ItdkDataset::DegreeDistribution() const {
  netbase::IntDistribution d;
  for (const ItdkNode& node : nodes_) {
    d.Add(static_cast<int>(Degree(node.id)));
  }
  return d;
}

netbase::IntDistribution ItdkDataset::DegreeDistribution(AsNumber asn) const {
  netbase::IntDistribution d;
  for (const ItdkNode& node : nodes_) {
    if (node.asn == asn) d.Add(static_cast<int>(Degree(node.id)));
  }
  return d;
}

std::vector<NodeId> ItdkDataset::HighDegreeNodes(std::size_t threshold) const {
  std::vector<NodeId> out;
  for (const ItdkNode& node : nodes_) {
    if (Degree(node.id) >= threshold) out.push_back(node.id);
  }
  return out;
}

double ItdkDataset::Density(const std::vector<NodeId>& nodes) const {
  if (nodes.size() < 2) return 0.0;
  const std::set<NodeId> in_set(nodes.begin(), nodes.end());
  std::size_t edges = 0;
  for (const auto& [a, b] : links_) {
    if (in_set.contains(a) && in_set.contains(b)) ++edges;
  }
  const double v = static_cast<double>(in_set.size());
  return 2.0 * static_cast<double>(edges) / (v * (v - 1.0));
}

void ItdkDataset::Write(std::ostream& os) const {
  // Format (one record per line, CAIDA-flavoured):
  //   node N<i>: addr addr ...
  //   node.AS N<i> <asn>
  //   link N<i> N<j>
  for (const ItdkNode& node : nodes_) {
    os << "node N" << node.id << ":";
    for (const auto address : node.addresses) os << ' ' << address;
    os << '\n';
  }
  for (const ItdkNode& node : nodes_) {
    if (node.asn != 0) os << "node.AS N" << node.id << ' ' << node.asn << '\n';
  }
  for (const auto& [a, b] : links_) {
    os << "link N" << a << " N" << b << '\n';
  }
}

namespace {

NodeId ParseNodeRef(const std::string& token) {
  if (token.empty() || token[0] != 'N') {
    throw std::runtime_error("bad node reference: " + token);
  }
  return static_cast<NodeId>(std::stoul(token.substr(1)));
}

}  // namespace

ItdkDataset ItdkDataset::Read(std::istream& is) {
  ItdkDataset dataset;
  std::unordered_map<NodeId, NodeId> remap;  // file id -> dataset id
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string keyword;
    ss >> keyword;
    if (keyword == "node") {
      std::string ref;
      ss >> ref;
      if (!ref.empty() && ref.back() == ':') ref.pop_back();
      const NodeId file_id = ParseNodeRef(ref);
      std::string addr_text;
      NodeId id = kNoNode;
      while (ss >> addr_text) {
        const auto address = netbase::Ipv4Address::Parse(addr_text);
        if (!address) throw std::runtime_error("bad address: " + addr_text);
        if (id == kNoNode) {
          id = dataset.NodeOf(*address);
        } else {
          dataset.AddAlias(id, *address);
        }
      }
      if (id == kNoNode) throw std::runtime_error("node with no addresses");
      remap[file_id] = id;
    } else if (keyword == "node.AS") {
      std::string ref;
      AsNumber asn = 0;
      ss >> ref >> asn;
      dataset.SetAs(remap.at(ParseNodeRef(ref)), asn);
    } else if (keyword == "link") {
      std::string ra, rb;
      ss >> ra >> rb;
      dataset.AddLink(remap.at(ParseNodeRef(ra)), remap.at(ParseNodeRef(rb)));
    } else {
      throw std::runtime_error("unknown record: " + keyword);
    }
  }
  return dataset;
}

ItdkDataset GroundTruthDataset(const Topology& topology) {
  ItdkDataset dataset;
  std::vector<NodeId> node_of_router(topology.router_count(), kNoNode);
  for (const Router& router : topology.routers()) {
    const NodeId node = dataset.NodeOf(router.loopback);
    node_of_router[router.id] = node;
    dataset.SetAs(node, router.asn);
    for (const InterfaceId iid : router.interfaces) {
      dataset.AddAlias(node, topology.interface(iid).address);
    }
  }
  for (const Link& link : topology.links()) {
    dataset.AddLink(node_of_router[topology.interface(link.a).router],
                    node_of_router[topology.interface(link.b).router]);
  }
  return dataset;
}

}  // namespace wormhole::topo
