// A small-buffer vector: the first N elements live inline (no heap), and
// only growing past N spills to an ordinary heap buffer.
//
// This is the storage behind netbase::LabelStack — the data-plane label
// stack of every simulated packet — so the steady-state MPLS swap path
// (push/pop/quote of stacks up to N deep) performs zero allocations per
// hop. The container is deliberately restricted to trivially copyable
// element types: relocation is a memcpy, copies never run user code, and
// the whole thing stays cheap enough to live inside a by-value Packet.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <utility>

#include "netbase/contracts.h"

namespace wormhole::netbase {

template <typename T, std::size_t N>
class InlineVec {
  static_assert(N > 0, "inline capacity must be non-zero");
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is restricted to trivially copyable types");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() = default;
  InlineVec(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
  }

  InlineVec(const InlineVec& other) { assign(other.begin(), other.end()); }
  InlineVec(InlineVec&& other) noexcept { StealFrom(other); }

  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }
  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      StealFrom(other);
    }
    return *this;
  }
  InlineVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  ~InlineVec() { FreeHeap(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// True while the elements still live in the inline buffer (no heap).
  [[nodiscard]] bool is_inline() const { return data_ == inline_; }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t i) {
    WORMHOLE_DCHECK(i < size_, "InlineVec index out of bounds");
    return data_[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    WORMHOLE_DCHECK(i < size_, "InlineVec index out of bounds");
    return data_[i];
  }
  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data_[size_++] = value;
  }

  void pop_back() {
    WORMHOLE_DCHECK(size_ > 0, "pop_back on empty InlineVec");
    --size_;
  }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > capacity_) Grow(n);
  }

  /// Shrinks to the first `n` elements (n must not exceed size(); growth
  /// would need a default value, which zero-fill cannot supply for types
  /// whose default state is non-zero).
  void truncate(std::size_t n) {
    WORMHOLE_DCHECK(n <= size_, "truncate cannot grow an InlineVec");
    size_ = n;
  }

  void assign(const T* first, const T* last) {
    const auto n = static_cast<std::size_t>(last - first);
    if (n > capacity_) Grow(n);
    if (n > 0) std::memmove(data_, first, n * sizeof(T));
    size_ = n;
  }

  /// Appends [first, last) (must not alias this container's storage).
  void append(const T* first, const T* last) {
    const auto n = static_cast<std::size_t>(last - first);
    if (size_ + n > capacity_) Grow(size_ + n);
    if (n > 0) std::memcpy(data_ + size_, first, n * sizeof(T));
    size_ += n;
  }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void Grow(std::size_t target) {
    const std::size_t new_capacity = std::max(target, capacity_ * 2);
    WORMHOLE_ASSERT(new_capacity > capacity_ && new_capacity >= size_,
                    "InlineVec growth must strictly enlarge capacity");
    // The spill past the inline capacity is this container's whole
    // reason to exist; steady-state stacks (depth <= N) never reach it.
    // lint:allow-next-line(fastpath-heap): deliberate spill allocation
    T* heap = new T[new_capacity];
    if (size_ > 0) std::memcpy(heap, data_, size_ * sizeof(T));
    FreeHeap();
    data_ = heap;
    capacity_ = new_capacity;
  }

  void FreeHeap() {
    if (data_ != inline_) delete[] data_;
  }

  /// Takes `other`'s heap buffer (or copies its inline elements) and
  /// leaves `other` empty with its inline storage.
  void StealFrom(InlineVec& other) {
    if (other.data_ == other.inline_) {
      data_ = inline_;
      capacity_ = N;
      size_ = other.size_;
      if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(T));
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_;
      other.capacity_ = N;
    }
    other.size_ = 0;
  }

  std::size_t size_ = 0;
  std::size_t capacity_ = N;
  T* data_ = inline_;
  T inline_[N] = {};
};

}  // namespace wormhole::netbase
