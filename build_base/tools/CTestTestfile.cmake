# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build_base/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build_base/tools/wormhole")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_emulate "/root/repo/build_base/tools/wormhole" "emulate" "uhp")
set_tests_properties(cli_emulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_configs "/root/repo/build_base/tools/wormhole" "configs" "dpr")
set_tests_properties(cli_configs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_campaign "/root/repo/build_base/tools/wormhole" "campaign" "7" "/root/repo/build_base/cli_test.traces")
set_tests_properties(cli_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_replay "/root/repo/build_base/tools/wormhole" "replay" "/root/repo/build_base/cli_test.traces")
set_tests_properties(cli_replay PROPERTIES  DEPENDS "cli_campaign" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_replay_missing_file "/root/repo/build_base/tools/wormhole" "replay" "/nonexistent.traces")
set_tests_properties(cli_replay_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_report "/root/repo/build_base/tools/wormhole" "report" "7" "/root/repo/build_base/cli_report_out")
set_tests_properties(cli_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lint.fixtures "/root/.pyenv/shims/python3" "/root/repo/tools/lint/lint_test.py")
set_tests_properties(lint.fixtures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;43;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lint.determinism "/root/.pyenv/shims/python3" "/root/repo/tools/lint/determinism_lint.py" "--root" "/root/repo")
set_tests_properties(lint.determinism PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;46;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lint.semantic.fixtures "/root/.pyenv/shims/python3" "/root/repo/tools/lint/semantic_lint_test.py")
set_tests_properties(lint.semantic.fixtures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;50;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lint.semantic "/root/.pyenv/shims/python3" "/root/repo/tools/lint/semantic_lint.py" "--root" "/root/repo" "--compile-commands" "/root/repo/build_base/compile_commands.json")
set_tests_properties(lint.semantic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;53;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lint.thread_safety "/root/.pyenv/shims/python3" "/root/repo/tools/lint/thread_safety_fixture_test.py")
set_tests_properties(lint.thread_safety PROPERTIES  SKIP_RETURN_CODE "77" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;59;add_test;/root/repo/tools/CMakeLists.txt;0;")
