# Empty dependencies file for wormhole_reveal.
# This may be replaced when dependencies are built.
