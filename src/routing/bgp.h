// Inter-AS routing (BGP-lite).
//
// Model: every AS announces its address block; best path = shortest AS path
// (ties broken on lowest neighbor ASN, deterministically); inside an AS each
// router picks its *nearest* border router towards the chosen next-hop AS
// (hot-potato), with next-hop-self semantics — the recursive BGP next hop is
// the egress border's loopback, which is what an Ingress LER resolves
// through an LDP LSP. Hot-potato egress choice is the mechanism that makes
// forward and return paths asymmetric, which FRPLA must tolerate (paper
// Sec. 3.4).
#pragma once

#include <set>
#include <vector>

#include "routing/fib.h"
#include "topo/topology.h"

namespace wormhole::routing {

struct BgpPolicy {
  /// ASes that never transit traffic (stub/customer ASes). They can be the
  /// source or destination AS of a path but are not expanded through.
  std::set<topo::AsNumber> stub_ases;
};

/// Computes AS-level best paths for every destination AS and installs BGP
/// routes into every router's FIB. IGP routes must already be installed
/// (hot-potato needs intra-AS distances).
void InstallBgpRoutes(const topo::Topology& topology, const BgpPolicy& policy,
                      std::vector<Fib>& fibs);

/// The chosen next AS from `from_as` towards `to_as`; 0 if unreachable or
/// equal. Exposed for tests and for the generator's sanity checks.
topo::AsNumber BgpNextAs(const topo::Topology& topology,
                         const BgpPolicy& policy, topo::AsNumber from_as,
                         topo::AsNumber to_as);

}  // namespace wormhole::routing
