// The ground-truth network model: routers, interfaces, point-to-point links
// and autonomous systems, with automatic address allocation.
//
// Everything downstream (IGP, LDP, the data plane, the campaign) works on
// this container through small integer ids; objects are stored contiguously
// and referenced by index (stable — we never remove elements).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/ipv4.h"

namespace wormhole::topo {

using netbase::Ipv4Address;
using netbase::Prefix;

using RouterId = std::uint32_t;
using InterfaceId = std::uint32_t;
using LinkId = std::uint32_t;
using AsNumber = std::uint32_t;

constexpr RouterId kNoRouter = static_cast<RouterId>(-1);
constexpr InterfaceId kNoInterface = static_cast<InterfaceId>(-1);

/// Router hardware/OS class. Determines the initial-TTL signature (Table 1)
/// and the vendor-default MPLS behaviour (LDP policy, ping-reply TTL).
enum class Vendor : std::uint8_t {
  kCiscoIos,      ///< <255,255>
  kCiscoIosXr,    ///< <255,255>
  kJuniperJunos,  ///< <255,64>
  kJuniperJunosE, ///< <128,128>
  kBrocade,       ///< <64,64>
  kLinux,         ///< <64,64>
};

const char* ToString(Vendor vendor);

/// A router interface: one end of a point-to-point link, or the loopback.
struct Interface {
  InterfaceId id = kNoInterface;
  RouterId router = kNoRouter;
  /// Link this interface sits on; kNoLink for the loopback.
  LinkId link;
  Ipv4Address address;
  Prefix subnet;
  std::string name;  ///< "P3.left"-style label for emulation printouts
};

constexpr LinkId kNoLink = static_cast<LinkId>(-1);

/// An undirected point-to-point link between two interfaces.
struct Link {
  LinkId id = 0;
  InterfaceId a = kNoInterface;
  InterfaceId b = kNoInterface;
  Prefix subnet;
  /// IGP cost, both directions (we model symmetric link metrics).
  int igp_metric = 1;
  /// One-way propagation delay in milliseconds.
  double delay_ms = 1.0;
  /// Administrative/physical state. Down links are invisible to the IGP,
  /// BGP and the data plane (failure experiments flip this and
  /// reconverge).
  bool up = true;
};

struct Router {
  RouterId id = kNoRouter;
  std::string name;
  AsNumber asn = 0;
  Vendor vendor = Vendor::kCiscoIos;
  Ipv4Address loopback;
  InterfaceId loopback_interface = kNoInterface;
  std::vector<InterfaceId> interfaces;  ///< physical only, loopback excluded
};

struct AutonomousSystem {
  AsNumber asn = 0;
  std::string name;
  std::vector<RouterId> routers;
  /// Links with both endpoints in this AS (kept by AddLink), so per-AS
  /// consumers (InternalPrefixes, IGP planning) never scan the global
  /// link table.
  std::vector<LinkId> internal_links;
  /// Address block from which this AS's loopbacks and subnets are carved;
  /// doubles as the AS's externally announced aggregate.
  Prefix block;
  /// Next free offset inside `block` (bump allocator).
  std::uint32_t next_offset = 0;
};

/// Options for AddLink.
struct LinkOptions {
  int igp_metric = 1;
  double delay_ms = 1.0;
};

/// An end host (vantage point or traceroute target) hanging off a router
/// via a stub subnet. Hosts source probes and absorb replies; they answer
/// echo-requests with a Linux-like initial TTL.
struct Host {
  Ipv4Address address;
  RouterId gateway = kNoRouter;
  /// The gateway-side interface of the stub subnet.
  InterfaceId stub_interface = kNoInterface;
  std::string name;
};

class Topology {
 public:
  /// Declares an AS and reserves an address block for it. Blocks are
  /// carved from 5.0.0.0/8 onward (synthetic "public" space — the
  /// campaign prunes RFC1918 addresses like the paper prunes
  /// non-routable ones) by a bump allocator that aligns each block to
  /// its own size. The default /16 preserves the historic "5.b.0.0/16
  /// per AS" layout; scale worlds pass smaller blocks (e.g. /24) for
  /// their thousands of stub ASes so the address space — and the flat
  /// address table over it — stays compact.
  AsNumber AddAs(AsNumber asn, std::string name, int block_bits = 16);

  /// Aligns the allocation cursor up to a 2^(32-bits) boundary and
  /// returns the covering prefix WITHOUT reserving it: the next AddAs
  /// calls carve their blocks from inside it. Hierarchical scale worlds
  /// use this to place a provider and its customer ASes contiguously
  /// under one announceable aggregate.
  Prefix BeginAggregate(int bits);

  /// Pre-sizes the flat containers (routers/interfaces/links/hosts and
  /// the address table) so large generated worlds build without
  /// incremental reallocation. Call before the first AddRouter.
  void Reserve(std::size_t routers, std::size_t interfaces,
               std::size_t links, std::size_t hosts = 0);

  /// Adds a router to an existing AS; allocates its loopback (/32).
  RouterId AddRouter(AsNumber asn, std::string name, Vendor vendor);

  /// Connects two routers with a point-to-point link; carves a /31 subnet
  /// from the first router's AS block (inter-AS links use the lower ASN's
  /// block) and creates the two interfaces.
  LinkId AddLink(RouterId a, RouterId b, LinkOptions options = {});

  /// Attaches an end host to `gateway` over a fresh stub /31. The gateway
  /// side gets the even address (this is the "CE1.left" that shows up as
  /// hop 1 of a trace); the host gets the odd one. Must be called before
  /// route computation so the stub prefix enters the IGP.
  Ipv4Address AttachHost(RouterId gateway, std::string name);

  [[nodiscard]] const Host* FindHost(Ipv4Address address) const;
  [[nodiscard]] const std::vector<Host>& hosts() const { return hosts_; }

  /// Renames an interface (testbed builders use paper-style names such as
  /// "P3.left"). Names are labels only — no uniqueness is enforced.
  void RenameInterface(InterfaceId id, std::string name) {
    interfaces_.at(id).name = std::move(name);
  }

  /// Fails/restores a link. The caller must reconverge the control plane
  /// afterwards — either a full rebuild (sim::Network) or the targeted
  /// sim::Network::OnLinkStateChange(id).
  void SetLinkUp(LinkId id, bool up) {
    links_.at(id).up = up;
    ++version_;
  }

  /// Monotonic generation counter, bumped by every structural mutation
  /// (AddAs/AddRouter/AddLink/AttachHost) and by SetLinkUp. Consumers that
  /// cache per-topology derived state (routing::SpfEngine) compare it to
  /// decide when their caches are stale.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  // --- accessors ---------------------------------------------------------
  [[nodiscard]] const Router& router(RouterId id) const {
    return routers_.at(id);
  }
  [[nodiscard]] Router& router(RouterId id) { return routers_.at(id); }
  [[nodiscard]] const Interface& interface(InterfaceId id) const {
    return interfaces_.at(id);
  }
  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id); }
  [[nodiscard]] Link& link(LinkId id) { return links_.at(id); }
  [[nodiscard]] const AutonomousSystem& as(AsNumber asn) const;
  [[nodiscard]] bool HasAs(AsNumber asn) const {
    return as_index_.contains(asn);
  }

  [[nodiscard]] std::size_t router_count() const { return routers_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const std::vector<Router>& routers() const { return routers_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] const std::vector<Interface>& interfaces() const {
    return interfaces_;
  }
  [[nodiscard]] std::vector<AsNumber> AsNumbers() const;

  /// Router owning `address` (interface or loopback); nullopt if unknown.
  [[nodiscard]] std::optional<RouterId> FindRouterByAddress(
      Ipv4Address address) const;
  /// Interface with exactly this address; nullopt for loopbacks/unknown.
  [[nodiscard]] std::optional<InterfaceId> FindInterfaceByAddress(
      Ipv4Address address) const;
  /// Router whose name is `name`; nullopt if absent.
  [[nodiscard]] std::optional<RouterId> FindRouterByName(
      std::string_view name) const;

  /// The interface of `router` on `link`; its peer is OtherEnd.
  [[nodiscard]] const Interface& EndOn(LinkId link, RouterId router) const;
  [[nodiscard]] const Interface& OtherEnd(LinkId link, RouterId router) const;
  /// The neighbouring router across `link` from `router`.
  [[nodiscard]] RouterId Neighbor(LinkId link, RouterId router) const;

  /// All (neighbor router, link) pairs of `router`.
  [[nodiscard]] std::vector<std::pair<RouterId, LinkId>> Neighbors(
      RouterId router) const;

  /// Connected IGP prefixes of one router: loopback /32 + link subnets.
  [[nodiscard]] std::vector<Prefix> ConnectedPrefixes(RouterId router) const;

  /// All prefixes inside one AS (loopbacks + internal link subnets).
  [[nodiscard]] std::vector<Prefix> InternalPrefixes(AsNumber asn) const;

  /// True if both endpoints of the link are in the same AS.
  [[nodiscard]] bool IsInternalLink(LinkId link) const;

  /// AS of the router owning `address`; 0 if unknown.
  [[nodiscard]] AsNumber AsOfAddress(Ipv4Address address) const;

 private:
  Prefix AllocateSubnet(AsNumber asn, int length);

  /// Registers an allocated interface address in the flat address table.
  void IndexAddress(Ipv4Address address, InterfaceId iface);

  std::vector<Router> routers_;
  std::vector<Interface> interfaces_;
  std::vector<Link> links_;
  std::vector<Host> hosts_;
  std::unordered_map<Ipv4Address, std::size_t> host_index_;
  std::vector<AutonomousSystem> ases_;
  std::unordered_map<AsNumber, std::size_t> as_index_;
  std::unordered_map<std::string, RouterId> name_to_router_;

  // Flat paged address table over the allocator's contiguous range
  // [kBlockBase, next_addr_): page p holds the InterfaceId owning
  // address kBlockBase + p * kAddressPageSize + slot (kNoInterface when
  // unassigned). Every allocated address is dense in that range, so this
  // replaces the two per-address hash maps with one indexed load — the
  // lookup the per-hop data plane and the million-row campaign reducers
  // hit — at a fraction of the memory.
  static constexpr std::uint32_t kAddressPageSize = 4096;
  /// First address the block allocator hands out (5.0.0.0).
  static constexpr std::uint32_t kBlockBase = 0x05000000;
  std::vector<std::vector<InterfaceId>> address_pages_;

  /// Bump cursor of the block allocator (absolute address).
  std::uint32_t next_addr_ = kBlockBase;
  std::uint64_t version_ = 0;
};

}  // namespace wormhole::topo
