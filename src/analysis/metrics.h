// Additional graph metrics the paper names as biased by invisible tunnels
// (Sec. 1 / Sec. 7): clustering coefficient, density, and shortest-path
// statistics over ITDK-like datasets.
#pragma once

#include "netbase/stats.h"
#include "topo/itdk.h"

namespace wormhole::analysis {

/// Local clustering coefficient of one node: fraction of its neighbor
/// pairs that are themselves adjacent (0 for degree < 2).
double LocalClustering(const topo::ItdkDataset& dataset, topo::NodeId node);

/// Average local clustering coefficient over all nodes (Watts–Strogatz).
/// Invisible tunnels inflate this: a full mesh of LERs has coefficient 1.
double AverageClustering(const topo::ItdkDataset& dataset);

/// Graph density over the whole dataset (2E / V(V-1)).
double GlobalDensity(const topo::ItdkDataset& dataset);

/// BFS shortest-path-length distribution from `source` to every reachable
/// node (unit link weights).
netbase::IntDistribution ShortestPathLengths(const topo::ItdkDataset& dataset,
                                             topo::NodeId source);

/// Sampled all-pairs shortest path statistics: runs BFS from
/// `sample_count` evenly spaced sources (or all when 0).
struct PathStats {
  double mean = 0.0;
  int diameter = 0;  ///< longest shortest path observed
  netbase::IntDistribution lengths;
};
PathStats SampledPathStats(const topo::ItdkDataset& dataset,
                           std::size_t sample_count = 0);

/// Discrete maximum-likelihood estimate of a power-law exponent alpha for
/// P(X = k) ∝ k^-alpha over samples >= x_min (Clauset-Shalizi-Newman's
/// continuous approximation: alpha = 1 + n / Σ ln(x_i / (x_min - 0.5))).
/// Returns 0 when fewer than 2 qualifying samples exist. Degree
/// distributions of traceroute-inferred graphs famously fit alpha ≈ 2-3
/// (Faloutsos et al., the paper's Fig. 1 reference).
double FitPowerLawAlpha(const netbase::IntDistribution& d, int x_min = 1);

}  // namespace wormhole::analysis
