file(REMOVE_RECURSE
  "CMakeFiles/wormhole.dir/wormhole_cli.cpp.o"
  "CMakeFiles/wormhole.dir/wormhole_cli.cpp.o.d"
  "wormhole"
  "wormhole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
