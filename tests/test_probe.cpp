// Unit tests for the probe module's trace utilities and prober behaviour.
#include <gtest/gtest.h>

#include "gen/gns3.h"
#include "probe/prober.h"
#include "probe/trace.h"

namespace wormhole::probe {
namespace {

using netbase::Ipv4Address;
using netbase::PacketKind;

TEST(TraceUtil, InferInitialTtlRoundsUp) {
  EXPECT_EQ(InferInitialTtl(1), 64);
  EXPECT_EQ(InferInitialTtl(64), 64);
  EXPECT_EQ(InferInitialTtl(65), 128);
  EXPECT_EQ(InferInitialTtl(128), 128);
  EXPECT_EQ(InferInitialTtl(129), 255);
  EXPECT_EQ(InferInitialTtl(255), 255);
}

TEST(TraceUtil, PathLengthFromTtl) {
  EXPECT_EQ(PathLengthFromTtl(255), 0);
  EXPECT_EQ(PathLengthFromTtl(250), 5);
  EXPECT_EQ(PathLengthFromTtl(60), 4);
  EXPECT_EQ(PathLengthFromTtl(120), 8);
}

TraceResult MakeTrace() {
  TraceResult trace;
  trace.target = Ipv4Address(9, 0, 0, 1);
  for (int i = 1; i <= 5; ++i) {
    Hop hop;
    hop.probe_ttl = i;
    if (i != 3) {  // hop 3 times out
      hop.address = Ipv4Address(5, 0, 0, static_cast<uint8_t>(i));
      hop.reply_kind = i == 5 ? PacketKind::kEchoReply
                              : PacketKind::kTimeExceeded;
      hop.reply_ip_ttl = 255 - i;
    }
    trace.hops.push_back(hop);
  }
  trace.reached = true;
  return trace;
}

TEST(TraceResult, HopOfFindsAddresses) {
  const TraceResult trace = MakeTrace();
  EXPECT_EQ(trace.HopOf(Ipv4Address(5, 0, 0, 2)), std::optional<int>(2));
  EXPECT_FALSE(trace.HopOf(Ipv4Address(5, 0, 0, 3)).has_value());
}

TEST(TraceResult, LastRespondersSkipsTimeouts) {
  const TraceResult trace = MakeTrace();
  const auto last3 = trace.LastResponders(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0], Ipv4Address(5, 0, 0, 2));
  EXPECT_EQ(last3[1], Ipv4Address(5, 0, 0, 4));
  EXPECT_EQ(last3[2], Ipv4Address(5, 0, 0, 5));
  EXPECT_EQ(trace.LastResponders(10).size(), 4u);
}

TEST(TraceResult, LastRespondingTtl) {
  const TraceResult trace = MakeTrace();
  EXPECT_EQ(trace.LastRespondingTtl(), 5);
  TraceResult empty;
  EXPECT_EQ(empty.LastRespondingTtl(), 0);
}

TEST(TraceResult, FormatRendersTimeoutsAndLabels) {
  TraceResult trace = MakeTrace();
  trace.hops[1].labels = {{19, 0, true, 1}};
  const std::string out =
      trace.Format([](Ipv4Address a) { return a.ToString(); });
  EXPECT_NE(out.find("*"), std::string::npos);
  EXPECT_NE(out.find("Label 19 TTL=1"), std::string::npos);
  EXPECT_NE(out.find("[253]"), std::string::npos);
}

TEST(Prober, RejectsNonHostVantagePoint) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  EXPECT_THROW(
      Prober(testbed.engine(), testbed.Address("PE1.left")),
      std::invalid_argument);
}

TEST(Prober, FirstTtlSkipsNearHops) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  Prober prober(testbed.engine(), testbed.vantage_point());
  const auto trace = prober.Traceroute(testbed.Address("CE2.left"),
                                       {.first_ttl = 3});
  ASSERT_FALSE(trace.hops.empty());
  EXPECT_EQ(trace.hops.front().probe_ttl, 3);
  EXPECT_TRUE(trace.reached);
}

TEST(Prober, GapLimitStopsAfterSilence) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  Prober prober(testbed.engine(), testbed.vantage_point());
  // An address inside AS2's block that routes (covered by the /16 via
  // BGP from AS1... it does not route internally — dest unreachable) —
  // use an address outside every block instead: no route at the gateway.
  const auto trace =
      prober.Traceroute(Ipv4Address(200, 0, 0, 1), {.gap_limit = 3});
  // The gateway answers destination-unreachable immediately: trace ends.
  EXPECT_TRUE(trace.unreachable || trace.hops.size() <= 4u);
}

TEST(Prober, MaxTtlBoundsTheTrace) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  Prober prober(testbed.engine(), testbed.vantage_point());
  const auto trace = prober.Traceroute(testbed.Address("CE2.left"),
                                       {.max_ttl = 3});
  EXPECT_FALSE(trace.reached);
  EXPECT_LE(trace.hops.size(), 3u);
}

TEST(Prober, CountsProbes) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  Prober prober(testbed.engine(), testbed.vantage_point());
  EXPECT_EQ(prober.probes_sent(), 0u);
  prober.Ping(testbed.Address("PE1.left"));
  EXPECT_EQ(prober.probes_sent(), 1u);
  const auto trace = prober.Traceroute(testbed.Address("CE2.left"));
  EXPECT_EQ(prober.probes_sent(), 1u + trace.hops.size());
}

}  // namespace
}  // namespace wormhole::probe
