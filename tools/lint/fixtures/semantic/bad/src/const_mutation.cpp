// sem-const-mutation fixture: a const method mutating a mutable,
// non-atomic, unannotated field with no lock in sight — the classic
// "logically const" cache that is a data race the moment two threads
// share the object.
namespace fix {

class Cache {
 public:
  int Get(int key) const {
    hits_ = hits_ + 1;  // BAD: unguarded write in a const method
    return key + hits_;
  }

 private:
  mutable int hits_ = 0;
};

}  // namespace fix
