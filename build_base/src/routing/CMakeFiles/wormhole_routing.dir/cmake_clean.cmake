file(REMOVE_RECURSE
  "CMakeFiles/wormhole_routing.dir/bgp.cpp.o"
  "CMakeFiles/wormhole_routing.dir/bgp.cpp.o.d"
  "CMakeFiles/wormhole_routing.dir/fib.cpp.o"
  "CMakeFiles/wormhole_routing.dir/fib.cpp.o.d"
  "CMakeFiles/wormhole_routing.dir/igp.cpp.o"
  "CMakeFiles/wormhole_routing.dir/igp.cpp.o.d"
  "CMakeFiles/wormhole_routing.dir/spf_engine.cpp.o"
  "CMakeFiles/wormhole_routing.dir/spf_engine.cpp.o.d"
  "libwormhole_routing.a"
  "libwormhole_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
