file(REMOVE_RECURSE
  "CMakeFiles/test_fastpath.dir/test_fastpath.cpp.o"
  "CMakeFiles/test_fastpath.dir/test_fastpath.cpp.o.d"
  "test_fastpath"
  "test_fastpath.pdb"
  "test_fastpath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
