// Fixture: every wall-clock source must fire the wall-clock rule.
#include <chrono>
#include <ctime>

double Now() {
  auto t = std::chrono::system_clock::now();  // expect: wall-clock
  auto s = std::chrono::steady_clock::now();  // expect: wall-clock
  long raw = time(nullptr);                   // expect: wall-clock
  return static_cast<double>(raw) +
         t.time_since_epoch().count() + s.time_since_epoch().count();
}
