# Empty dependencies file for table05_deployment.
# This may be replaced when dependencies are built.
