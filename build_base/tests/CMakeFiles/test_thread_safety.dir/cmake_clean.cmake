file(REMOVE_RECURSE
  "CMakeFiles/test_thread_safety.dir/test_thread_safety.cpp.o"
  "CMakeFiles/test_thread_safety.dir/test_thread_safety.cpp.o.d"
  "test_thread_safety"
  "test_thread_safety.pdb"
  "test_thread_safety[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
