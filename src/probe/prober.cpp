#include "probe/prober.h"

#include <stdexcept>

namespace wormhole::probe {

using netbase::Packet;
using netbase::PacketKind;

Prober::Prober(const sim::Engine& engine, netbase::Ipv4Address vantage_point)
    : engine_(&engine), source_(vantage_point) {
  if (engine.topology().FindHost(vantage_point) == nullptr) {
    throw std::invalid_argument("Prober: vantage point is not a host");
  }
}

TraceResult Prober::Traceroute(netbase::Ipv4Address target,
                               const TraceOptions& options) {
  TraceResult result;
  result.source = source_;
  result.target = target;
  result.flow_id = options.flow_id;

  int consecutive_timeouts = 0;
  for (int ttl = options.first_ttl; ttl <= options.max_ttl; ++ttl) {
    sim::Engine::Outcome outcome;
    for (int attempt = 0; attempt < std::max(1, options.attempts);
         ++attempt) {
      Packet probe;
      probe.kind = PacketKind::kEchoRequest;
      probe.src = source_;
      probe.dst = target;
      probe.ip_ttl = ttl;
      probe.flow_id = options.flow_id;
      probe.probe_id = next_probe_id_++;
      ++probes_sent_;
      outcome = engine_->Send(std::move(probe));
      if (outcome.received) break;
    }

    Hop hop;
    hop.probe_ttl = ttl;
    if (outcome.received) {
      hop.address = outcome.reply.src;
      hop.reply_kind = outcome.reply.kind;
      hop.reply_ip_ttl = outcome.reply.ip_ttl;
      hop.labels = outcome.reply.quoted_labels;
      hop.rtt_ms = outcome.rtt_ms;
      consecutive_timeouts = 0;
    } else {
      ++consecutive_timeouts;
    }
    result.hops.push_back(std::move(hop));

    if (outcome.received) {
      if (outcome.reply.kind == PacketKind::kEchoReply) {
        result.reached = true;
        break;
      }
      if (outcome.reply.kind == PacketKind::kDestinationUnreachable) {
        result.unreachable = true;
        break;
      }
    }
    if (consecutive_timeouts >= options.gap_limit) break;
  }
  return result;
}

PingResult Prober::Ping(netbase::Ipv4Address target, std::uint16_t flow_id) {
  Packet probe;
  probe.kind = PacketKind::kEchoRequest;
  probe.src = source_;
  probe.dst = target;
  probe.ip_ttl = 64;  // plenty; ping is not a TTL-limited probe
  probe.flow_id = flow_id;
  probe.probe_id = next_probe_id_++;
  ++probes_sent_;

  const sim::Engine::Outcome outcome = engine_->Send(std::move(probe));
  PingResult result;
  result.target = target;
  if (outcome.received &&
      outcome.reply.kind == PacketKind::kEchoReply) {
    result.responded = true;
    result.reply_ip_ttl = outcome.reply.ip_ttl;
    result.rtt_ms = outcome.rtt_ms;
  }
  return result;
}

}  // namespace wormhole::probe
