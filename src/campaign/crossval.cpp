#include "campaign/crossval.h"

#include "reveal/revelator.h"

#include <algorithm>
#include <map>
#include <set>

namespace wormhole::campaign {

const char* ToString(CrossValOutcome outcome) {
  switch (outcome) {
    case CrossValOutcome::kRerunFailed: return "rerun failed";
    case CrossValOutcome::kFail: return "BRPR or DPR fail";
    case CrossValOutcome::kDpr: return "DPR successful";
    case CrossValOutcome::kBrpr: return "BRPR successful";
    case CrossValOutcome::kHybrid: return "hybrid DPR/BRPR";
    case CrossValOutcome::kEither: return "BRPR or DPR";
  }
  return "?";
}

void CrossValSummary::Count(CrossValOutcome outcome) {
  ++pairs_total;
  switch (outcome) {
    case CrossValOutcome::kRerunFailed: ++rerun_failed; break;
    case CrossValOutcome::kFail: ++fail; break;
    case CrossValOutcome::kDpr: ++dpr; break;
    case CrossValOutcome::kBrpr: ++brpr; break;
    case CrossValOutcome::kHybrid: ++hybrid; break;
    case CrossValOutcome::kEither: ++either; break;
  }
}

std::vector<ExplicitTunnel> ExtractExplicitTunnels(
    const std::vector<probe::TraceResult>& traces,
    const topo::Topology& topology) {
  std::vector<ExplicitTunnel> tunnels;
  std::set<std::pair<netbase::Ipv4Address, netbase::Ipv4Address>> seen;

  for (const probe::TraceResult& trace : traces) {
    for (std::size_t i = 0; i < trace.hops.size(); ++i) {
      if (!trace.hops[i].has_labels()) continue;
      // Found the start of a labelled run; it must be preceded by a
      // responding unlabelled hop (the Ingress LER).
      if (i == 0 || !trace.hops[i - 1].address ||
          trace.hops[i - 1].has_labels()) {
        continue;
      }
      std::size_t j = i;
      ExplicitTunnel tunnel;
      bool clean = true;
      while (j < trace.hops.size() && trace.hops[j].has_labels()) {
        if (!trace.hops[j].address) {
          clean = false;  // anonymous LSR: content not fully revealed
          break;
        }
        tunnel.lsrs.push_back(*trace.hops[j].address);
        ++j;
      }
      if (!clean || j >= trace.hops.size() || !trace.hops[j].address) {
        continue;
      }
      // The tunnel must be *transited*: the egress hop has to be a
      // time-exceeded reply, whose source is the PHP-revealed incoming
      // interface that BRPR re-targets. A final echo-reply hop answers
      // from the probed address itself (e.g. a loopback), for which any
      // retrace rides the LSP end to end and reveals nothing.
      if (trace.hops[j].reply_kind != netbase::PacketKind::kTimeExceeded) {
        continue;
      }
      tunnel.ingress = *trace.hops[i - 1].address;
      tunnel.egress = *trace.hops[j].address;
      tunnel.observer = trace.source;

      // Both LERs must sit in the same AS (paper requirement).
      const topo::AsNumber asn = topology.AsOfAddress(tunnel.ingress);
      if (asn == 0 || topology.AsOfAddress(tunnel.egress) != asn) continue;
      tunnel.asn = asn;
      if (seen.emplace(tunnel.ingress, tunnel.egress).second) {
        tunnels.push_back(std::move(tunnel));
      }
    }
  }
  return tunnels;
}

namespace {

struct WindowHop {
  netbase::Ipv4Address address;
  bool labeled = false;
};

/// Responding hops strictly between `after` and `before`; nullopt when
/// either endpoint is missing (or an anonymous hop hides the window).
std::optional<std::vector<WindowHop>> Window(const probe::TraceResult& trace,
                                             netbase::Ipv4Address after,
                                             netbase::Ipv4Address before) {
  std::vector<WindowHop> out;
  bool in_window = false;
  for (const probe::Hop& hop : trace.hops) {
    if (!hop.address) {
      if (in_window) return std::nullopt;
      continue;
    }
    if (*hop.address == after) {
      in_window = true;
      out.clear();
      continue;
    }
    if (*hop.address == before) {
      if (!in_window) return std::nullopt;
      return out;
    }
    if (in_window) out.push_back({*hop.address, hop.has_labels()});
  }
  return std::nullopt;
}

}  // namespace

CrossValOutcome CrossValidate(probe::Prober& prober,
                              const ExplicitTunnel& tunnel,
                              const probe::TraceOptions& options) {
  const std::set<netbase::Ipv4Address> truth(tunnel.lsrs.begin(),
                                             tunnel.lsrs.end());
  std::set<netbase::Ipv4Address> revealed_label_free;
  std::vector<int> batch_sizes;

  netbase::Ipv4Address target = tunnel.egress;
  for (int depth = 0; depth < 24; ++depth) {
    const probe::TraceResult trace = prober.Traceroute(target, options);
    const auto window = Window(trace, tunnel.ingress, target);
    if (!window) {
      // The very first re-trace must re-discover both LERs.
      if (depth == 0) return CrossValOutcome::kRerunFailed;
      break;
    }

    // Only label-free hops count as revealed. A hop that showed up
    // *labelled* in an earlier step is still fair game: each backward
    // recursion step moves the PHP pop point one hop closer to the
    // ingress, freeing exactly the hop BRPR is after.
    std::vector<netbase::Ipv4Address> batch;
    for (const WindowHop& hop : *window) {
      if (hop.labeled) continue;
      if (hop.address == tunnel.ingress || hop.address == tunnel.egress) {
        continue;
      }
      if (revealed_label_free.contains(hop.address)) continue;
      batch.push_back(hop.address);
    }
    if (batch.empty()) break;
    revealed_label_free.insert(batch.begin(), batch.end());
    batch_sizes.push_back(static_cast<int>(batch.size()));
    target = batch.front();
  }

  // Success follows the paper's criterion: the re-run must recover the
  // hidden path label-free. ECMP may expose a parallel path with distinct
  // addresses — still a success (Sec. 3.3, fn. 11) — so we compare hop
  // *counts*, tolerating one hop of equal-cost path-length wobble.
  const auto revealed_count =
      static_cast<std::ptrdiff_t>(revealed_label_free.size());
  const auto truth_count = static_cast<std::ptrdiff_t>(truth.size());
  if (revealed_count < truth_count - 1 || revealed_count > truth_count + 1 ||
      revealed_count == 0) {
    return CrossValOutcome::kFail;
  }

  switch (reveal::ClassifyBatches(batch_sizes)) {
    case reveal::RevelationMethod::kEither:
      return CrossValOutcome::kEither;
    case reveal::RevelationMethod::kDpr:
      return CrossValOutcome::kDpr;
    case reveal::RevelationMethod::kBrpr:
      return CrossValOutcome::kBrpr;
    case reveal::RevelationMethod::kHybrid:
      return CrossValOutcome::kHybrid;
    case reveal::RevelationMethod::kNone:
      break;
  }
  return CrossValOutcome::kFail;
}

CrossValSummary CrossValidateAll(std::vector<probe::Prober>& probers,
                                 const std::vector<ExplicitTunnel>& tunnels,
                                 const probe::TraceOptions& options) {
  CrossValSummary summary;
  for (std::size_t i = 0; i < tunnels.size(); ++i) {
    // Prefer the vantage point that observed the tunnel; fall back to
    // round-robin when it is not among the probers.
    probe::Prober* prober = &probers[i % probers.size()];
    for (probe::Prober& candidate : probers) {
      if (candidate.vantage_point() == tunnels[i].observer) {
        prober = &candidate;
        break;
      }
    }
    summary.Count(CrossValidate(*prober, tunnels[i], options));
  }
  return summary;
}

}  // namespace wormhole::campaign
