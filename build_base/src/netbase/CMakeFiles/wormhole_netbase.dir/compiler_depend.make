# Empty compiler generated dependencies file for wormhole_netbase.
# This may be replaced when dependencies are built.
