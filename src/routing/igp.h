// Intra-AS routing: link-state SPF (OSPF-like) with ECMP.
//
// For every AS, runs Dijkstra from each member router over the AS's internal
// links and installs routes for every internal prefix (loopbacks and link
// subnets) into the per-router FIBs. A prefix shared by two routers (a /31
// link subnet) is reached via the *nearer* owner — which is what makes the
// PHP-popped last hop own the Egress LER's incoming prefix, the property
// BRPR exploits (paper Sec. 3.2).
//
// All SPF work goes through routing::SpfEngine (see spf_engine.h), so a
// convergence computes each (AS, source) tree exactly once, shared between
// IGP installation, BGP hot-potato, LDP and the ground-truth queries.
#pragma once

#include <vector>

#include "routing/fib.h"
#include "routing/spf_engine.h"
#include "topo/topology.h"

namespace wormhole::routing {

/// SPF result from one source router: distance and ECMP next hops per
/// destination router of the same AS. Compatibility view over SpfTree for
/// callers that want owning vectors.
struct SpfResult {
  RouterId source = topo::kNoRouter;
  /// Metric distance per destination router id (kUnreachable outside AS).
  std::vector<int> distance;
  /// ECMP next hops towards each destination router.
  std::vector<std::vector<NextHop>> next_hops;
  /// Hop count (min number of links) per destination, for path analyses.
  std::vector<int> hop_count;
};

/// Runs Dijkstra from `source` restricted to `source`'s AS. One-shot
/// convenience wrapper over SpfEngine (no caching across calls).
SpfResult ComputeSpf(const topo::Topology& topology, RouterId source);

/// One internal prefix of an AS together with every router that owns it
/// (a /31 link subnet has two owners; a loopback has one).
struct IgpPrefixOwners {
  netbase::Prefix prefix;
  std::vector<RouterId> owners;
};

/// The per-AS IGP installation plan: every internal prefix with its
/// owners, sorted by prefix. Computed once per AS per convergence and
/// shared by all member routers' installs.
struct IgpPlan {
  topo::AsNumber asn = 0;
  std::vector<IgpPrefixOwners> prefixes;
};

IgpPlan BuildIgpPlan(const topo::Topology& topology, topo::AsNumber asn);

/// Installs connected + IGP routes for one router from its SPF tree and
/// its AS's plan. Writes only `fib` — safe to fan out across routers.
void InstallIgpRoutesForRouter(const topo::Topology& topology,
                               const IgpPlan& plan, const SpfTree& tree,
                               RouterId rid, Fib& fib);

/// Installs connected + IGP routes for every router of `asn` into `fibs`
/// (indexed by RouterId across the whole topology). Serial convenience
/// wrapper that builds a private SpfEngine.
void InstallIgpRoutes(const topo::Topology& topology, topo::AsNumber asn,
                      std::vector<Fib>& fibs);

/// Metric distance between two routers of the same AS (kUnreachable if in
/// different ASes or disconnected). The engine overloads reuse cached
/// trees; the topology overloads run a one-shot SPF.
int IgpDistance(const topo::Topology& topology, RouterId from, RouterId to);
int IgpDistance(SpfEngine& engine, RouterId from, RouterId to);

/// Minimum hop count between two routers of the same AS.
int IgpHopDistance(const topo::Topology& topology, RouterId from,
                   RouterId to);
int IgpHopDistance(SpfEngine& engine, RouterId from, RouterId to);

}  // namespace wormhole::routing
