#include "routing/bgp.h"

#include <algorithm>
#include <deque>
#include <utility>

namespace wormhole::routing {

namespace {

using topo::AsNumber;
using topo::Topology;

using AsAdjacency =
    std::map<AsNumber, std::map<AsNumber, std::vector<BorderLink>>>;

AsAdjacency BuildAsAdjacency(const Topology& topology) {
  AsAdjacency adjacency;
  for (const topo::Link& link : topology.links()) {
    if (!link.up) continue;
    const RouterId ra = topology.interface(link.a).router;
    const RouterId rb = topology.interface(link.b).router;
    const AsNumber as_a = topology.router(ra).asn;
    const AsNumber as_b = topology.router(rb).asn;
    if (as_a == as_b) continue;
    adjacency[as_a][as_b].push_back({ra, rb, link.id});
    adjacency[as_b][as_a].push_back({rb, ra, link.id});
  }
  return adjacency;
}

/// BFS over the AS graph from destination `to_as`, honouring the stub
/// policy. Returns, for every AS, its chosen next AS towards `to_as`
/// (0 when unreachable; `to_as` maps to itself).
std::map<AsNumber, AsNumber> ComputeNextAs(const Topology& topology,
                                           const AsAdjacency& adjacency,
                                           const BgpPolicy& policy,
                                           AsNumber to_as) {
  std::map<AsNumber, int> distance;
  std::map<AsNumber, AsNumber> next_as;
  for (const AsNumber asn : topology.AsNumbers()) {
    distance[asn] = -1;
    next_as[asn] = 0;
  }
  distance[to_as] = 0;
  next_as[to_as] = to_as;

  std::deque<AsNumber> queue{to_as};
  while (!queue.empty()) {
    const AsNumber current = queue.front();
    queue.pop_front();
    // A stub AS may receive traffic (be `to_as`) but never forwards it;
    // do not expand through it unless it is the destination itself.
    if (policy.stub_ases.contains(current) && current != to_as) continue;

    const auto it = adjacency.find(current);
    if (it == adjacency.end()) continue;
    for (const auto& [peer, links] : it->second) {
      if (distance[peer] == -1) {
        distance[peer] = distance[current] + 1;
        next_as[peer] = current;
        queue.push_back(peer);
      } else if (distance[peer] == distance[current] + 1 &&
                 current < next_as[peer]) {
        // Deterministic tie-break: prefer the lower next ASN.
        next_as[peer] = current;
      }
    }
  }
  return next_as;
}

/// Hierarchical-mode BFS over the CORE AS graph only (stubs are leaves:
/// never expanded, never given entries). Same distances and tie-breaks as
/// ComputeNextAs restricted to non-stub ASes.
std::map<AsNumber, AsNumber> ComputeNextAsCore(
    const std::vector<AsNumber>& core, const AsAdjacency& adjacency,
    const BgpPolicy& policy, AsNumber to_as) {
  std::map<AsNumber, int> distance;
  std::map<AsNumber, AsNumber> next_as;
  for (const AsNumber asn : core) {
    distance[asn] = -1;
    next_as[asn] = 0;
  }
  distance[to_as] = 0;
  next_as[to_as] = to_as;

  std::deque<AsNumber> queue{to_as};
  while (!queue.empty()) {
    const AsNumber current = queue.front();
    queue.pop_front();
    const auto it = adjacency.find(current);
    if (it == adjacency.end()) continue;
    for (const auto& [peer, links] : it->second) {
      if (policy.stub_ases.contains(peer)) continue;
      if (distance[peer] == -1) {
        distance[peer] = distance[current] + 1;
        next_as[peer] = current;
        queue.push_back(peer);
      } else if (distance[peer] == distance[current] + 1 &&
                 current < next_as[peer]) {
        next_as[peer] = current;
      }
    }
  }
  return next_as;
}

/// The covering prefix a core AS announces in hierarchical mode.
Prefix AggregateOf(const Topology& topology, const BgpPolicy& policy,
                   AsNumber asn) {
  const auto it = policy.aggregates.find(asn);
  return it != policy.aggregates.end() ? it->second : topology.as(asn).block;
}

/// Flattens the hierarchical per-source install plans: core ASes get one
/// aggregate exit per other core AS plus a direct exit per stub customer;
/// stub ASes get a single default exit toward their lowest-ASN provider.
void FlattenHierarchicalExits(const Topology& topology,
                              const BgpPolicy& policy,
                              const std::vector<AsNumber>& core,
                              BgpLevel& level) {
  for (const AsNumber from_as : topology.AsNumbers()) {
    std::vector<BgpExit>& exits = level.exits[from_as];
    const auto adjacency_it = level.adjacency.find(from_as);
    if (adjacency_it == level.adjacency.end()) continue;

    if (policy.stub_ases.contains(from_as)) {
      // Default toward the primary (lowest-ASN core) provider; its other
      // providers still reach it directly, so dual-homing stays useful
      // for inbound traffic.
      for (const auto& [peer, links] : adjacency_it->second) {
        if (policy.stub_ases.contains(peer)) continue;
        exits.push_back({Prefix(netbase::Ipv4Address(0), 0), &links});
        break;  // adjacency is ASN-ordered: first core peer is lowest
      }
      continue;
    }

    for (const AsNumber to_as : core) {
      if (from_as == to_as) continue;
      const AsNumber via = level.next_for.at(to_as).at(from_as);
      if (via == 0) continue;  // unreachable
      exits.push_back({AggregateOf(topology, policy, to_as),
                       &adjacency_it->second.at(via)});
    }
    // Direct customer routes: more specific than any aggregate, so the
    // LPM prefers them regardless of install order.
    for (const auto& [peer, links] : adjacency_it->second) {
      if (!policy.stub_ases.contains(peer)) continue;
      exits.push_back({topology.as(peer).block, &links});
    }
  }
}

}  // namespace

BgpLevel ComputeBgpLevel(const Topology& topology, const BgpPolicy& policy) {
  BgpLevel level;
  level.adjacency = BuildAsAdjacency(topology);
  if (policy.hierarchical) {
    std::vector<AsNumber> core;
    for (const AsNumber asn : topology.AsNumbers()) {
      if (!policy.stub_ases.contains(asn)) core.push_back(asn);
    }
    std::sort(core.begin(), core.end());
    for (const AsNumber to_as : core) {
      level.next_for[to_as] =
          ComputeNextAsCore(core, level.adjacency, policy, to_as);
    }
    FlattenHierarchicalExits(topology, policy, core, level);
    for (const AsNumber from_as : topology.AsNumbers()) {
      std::vector<BorderSubnet>& subnets = level.border_subnets[from_as];
      for (const RouterId border : topology.as(from_as).routers) {
        for (const topo::InterfaceId iid :
             topology.router(border).interfaces) {
          const topo::Interface& iface = topology.interface(iid);
          if (iface.link == topo::kNoLink ||
              !topology.link(iface.link).up ||
              topology.IsInternalLink(iface.link)) {
            continue;
          }
          subnets.push_back({iface.subnet, border});
        }
      }
    }
    return level;
  }
  for (const AsNumber to_as : topology.AsNumbers()) {
    level.next_for[to_as] =
        ComputeNextAs(topology, level.adjacency, policy, to_as);
  }

  // Flatten both per-source-AS install plans once, here, so the install
  // loop below runs map-free per router. Orders mirror the historical
  // per-router scans exactly: destinations ascending; border subnets in
  // AS-member then interface order.
  for (const AsNumber from_as : topology.AsNumbers()) {
    std::vector<BgpExit>& exits = level.exits[from_as];
    const auto adjacency_it = level.adjacency.find(from_as);
    for (const AsNumber to_as : topology.AsNumbers()) {
      if (from_as == to_as) continue;
      const AsNumber via = level.next_for.at(to_as).at(from_as);
      if (via == 0) continue;  // unreachable
      // via != 0 implies from_as has at least one eBGP adjacency.
      exits.push_back(
          {topology.as(to_as).block, &adjacency_it->second.at(via)});
    }

    std::vector<BorderSubnet>& subnets = level.border_subnets[from_as];
    for (const RouterId border : topology.as(from_as).routers) {
      for (const topo::InterfaceId iid :
           topology.router(border).interfaces) {
        const topo::Interface& iface = topology.interface(iid);
        if (iface.link == topo::kNoLink || !topology.link(iface.link).up ||
            topology.IsInternalLink(iface.link)) {
          continue;
        }
        subnets.push_back({iface.subnet, border});
      }
    }
  }
  return level;
}

AsNumber BgpNextAs(const Topology& topology, const BgpPolicy& policy,
                   AsNumber from_as, AsNumber to_as) {
  if (from_as == to_as) return 0;
  const AsAdjacency adjacency = BuildAsAdjacency(topology);
  const auto next = ComputeNextAs(topology, adjacency, policy, to_as);
  const auto it = next.find(from_as);
  return it == next.end() ? 0 : it->second;
}

void InstallBgpRoutesForRouter(const Topology& topology,
                               const BgpLevel& level, const SpfTree& tree,
                               RouterId rid, Fib& fib) {
  const AsNumber from_as = topology.router(rid).asn;

  // Border routers inject the subnets of their eBGP links into their own
  // AS via iBGP with next-hop-self: other routers of the AS reach such a
  // subnet through the border's loopback, i.e. over an LDP LSP when MPLS
  // is on. (The IGP deliberately does not carry these prefixes.) The
  // subnet list was flattened per AS in ComputeBgpLevel; AddRouteIfAbsent
  // keeps the connected-route-wins rule in a single tree descent.
  for (const BorderSubnet& bs : level.border_subnets.at(from_as)) {
    if (bs.border == rid) continue;  // connected route already present
    const int border_distance = tree.DistanceTo(bs.border);
    if (border_distance == kUnreachable) continue;
    FibEntry entry;
    entry.prefix = bs.subnet;
    entry.source = RouteSource::kBgp;
    entry.metric = border_distance;
    const auto span = tree.FirstHops(bs.border);
    entry.next_hops.assign(span.data(), span.data() + span.size());
    entry.bgp_next_hop = topology.router(bs.border).loopback;
    fib.AddRouteIfAbsent(std::move(entry));
  }

  for (const BgpExit& exit : level.exits.at(from_as)) {
    // Border routers of from_as peering with the chosen next AS.
    const auto& border_links = *exit.borders;

    FibEntry entry;
    entry.prefix = exit.prefix;
    entry.source = RouteSource::kBgp;

    // Direct eBGP exit(s) from this router, if it is itself a border.
    NextHopSet external;
    for (const BorderLink& bl : border_links) {
      if (bl.local == rid) external.push_back({bl.link, bl.remote});
    }
    if (!external.empty()) {
      entry.metric = 0;
      entry.next_hops = std::move(external);
    } else {
      // Hot-potato: nearest border router by IGP metric; ties broken on
      // lower router id via the link-id scan order.
      RouterId egress = topo::kNoRouter;
      int best = kUnreachable;
      for (const BorderLink& bl : border_links) {
        const int d = tree.DistanceTo(bl.local);
        if (d < best) {
          best = d;
          egress = bl.local;
        }
      }
      if (egress == topo::kNoRouter) continue;  // partitioned AS
      entry.metric = best;
      const auto span = tree.FirstHops(egress);
      entry.next_hops.assign(span.data(), span.data() + span.size());
      entry.bgp_next_hop = topology.router(egress).loopback;
    }
    fib.AddRoute(std::move(entry));
  }
}

void InstallBgpRoutes(const Topology& topology, const BgpPolicy& policy,
                      std::vector<Fib>& fibs) {
  const BgpLevel level = ComputeBgpLevel(topology, policy);
  SpfEngine engine(topology);
  for (const AsNumber from_as : topology.AsNumbers()) {
    for (const RouterId rid : topology.as(from_as).routers) {
      InstallBgpRoutesForRouter(topology, level, engine.TreeOf(rid), rid,
                                fibs.at(rid));
    }
  }
}

}  // namespace wormhole::routing
