// Fixture: a justified, explicitly suppressed allocation in a fast-path
// file must NOT fire (suppression syntax: lint:allow-next-line).
#pragma once

#include <cstddef>

template <typename T>
struct Spill {
  T* Grow(std::size_t n) {
    // lint:allow-next-line(fastpath-heap): deliberate spill allocation
    return new T[n];
  }
};
