#include "sim/engine.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "exec/thread_pool.h"
#include "netbase/contracts.h"
#include "sim/vendor.h"

namespace wormhole::sim {

namespace {

using netbase::LabelStack;
using netbase::LabelStackEntry;
using netbase::Packet;
using netbase::PacketKind;
using routing::FibEntry;
using routing::NextHop;
using topo::RouterId;

constexpr std::uint32_t kExplicitNull =
    static_cast<std::uint32_t>(netbase::ReservedLabel::kIpv4ExplicitNull);

// Deterministic per-(probe, router) coin for ICMP loss injection: the same
// probe always sees the same outcome, a retransmission (new probe id)
// re-rolls — like a token-bucket rate limiter seen from outside.
bool IcmpLost(const Packet& p, RouterId router, double probability) {
  if (probability <= 0.0) return false;
  // splitmix64 finalizer: avalanches small inputs over all 64 bits.
  std::uint64_t h = (std::uint64_t{p.probe_id} << 32) ^ router;
  h += 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  const double draw =
      static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
  return draw < probability;
}

std::uint64_t FlowHash(const Packet& p) {
  // FNV-1a over the ECMP key: (src, dst, flow id). Paris traceroute keeps
  // flow_id constant so every probe of a trace hashes identically.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(p.src.value());
  mix(p.dst.value());
  mix(p.flow_id);
  return h;
}

}  // namespace

Engine::Engine(const topo::Topology& topology,
               const mpls::MplsConfigMap& configs,
               const std::vector<routing::Fib>& fibs,
               const mpls::LdpTables& ldp, EngineOptions options,
               const mpls::TeDatabase* te, const mpls::SrDatabase* sr,
               exec::ThreadPool* pool)
    : topology_(&topology),
      configs_(&configs),
      fibs_(&fibs),
      ldp_(&ldp),
      te_(te),
      sr_(sr),
      options_(options) {
  // Resolve every per-router hash lookup (config, LDP domain, FIB) once,
  // up front; the forwarding loop then indexes straight into this vector.
  // Each slot is written by exactly one task and each cache's content
  // depends only on this router's converged state, so the parallel build
  // is bit-identical to the serial one.
  router_cache_.resize(topology.router_count());
  exec::ParallelFor(pool, topology.router_count(), [&](std::size_t r) {
    router_cache_[r] = BuildRouterCache(static_cast<RouterId>(r));
  });
  for (const topo::Host& host : topology.hosts()) {
    router_cache_[host.gateway].hosts.push_back(
        AttachedHost{host.address, host.stub_interface});
  }
}

Engine::RouterCache Engine::BuildRouterCache(topo::RouterId r) const {
  const topo::Topology& topology = *topology_;
  RouterCache rc;
  rc.router = &topology.router(r);
  rc.config = &configs_->For(r);
  rc.domain = ldp_->DomainOf(rc.router->asn);
  rc.fib = &fibs_->at(r);

  rc.local_addresses.reserve(rc.router->interfaces.size() + 1);
  rc.local_addresses.push_back(rc.router->loopback);
  for (const topo::InterfaceId iid : rc.router->interfaces) {
    rc.local_addresses.push_back(topology.interface(iid).address);
  }

  // Pre-resolve every LDP in-label this router can receive into the
  // per-next-hop LabelOp the swap path would compute: exactly the
  // FecOfLabel → LookupExact → BindingOf chain of the converged
  // tables, evaluated once per (label, neighbor) here instead of per
  // packet. Labels are allocated densely from kFirstUnreservedLabel in
  // ascending FEC order, so walking the sorted bindings appends both CSR
  // arrays in final order with no per-label vectors.
  if (rc.domain != nullptr) {
    // Neighbor bindings are consulted in ascending FEC order (the outer
    // walk is sorted), so a monotone cursor per neighbor replaces a
    // binary search per (label, next hop). The neighbor set of one
    // router is small; linear scan beats a hash.
    struct NeighborCursor {
      RouterId neighbor;
      std::span<const std::pair<netbase::Prefix, mpls::Binding>> bindings;
      std::size_t pos = 0;
    };
    std::vector<NeighborCursor> cursors;
    const auto neighbor_binding =
        [&](RouterId neighbor,
            const netbase::Prefix& fec) -> const mpls::Binding* {
      NeighborCursor* cursor = nullptr;
      for (NeighborCursor& c : cursors) {
        if (c.neighbor == neighbor) {
          cursor = &c;
          break;
        }
      }
      if (cursor == nullptr) {
        cursors.push_back({neighbor, rc.domain->BindingsOf(neighbor)});
        cursor = &cursors.back();
      }
      while (cursor->pos < cursor->bindings.size() &&
             cursor->bindings[cursor->pos].first < fec) {
        ++cursor->pos;
      }
      if (cursor->pos < cursor->bindings.size() &&
          cursor->bindings[cursor->pos].first == fec) {
        return &cursor->bindings[cursor->pos].second;
      }
      return nullptr;
    };

    rc.ldp_op_offsets.push_back(0);
    for (const auto& [fec, own] : rc.domain->BindingsOf(r)) {
      if (own.kind != mpls::BindingKind::kLabel) continue;
      // CSR validity: the dense (label - 16) indexing below is only
      // sound for labels in the unreserved 20-bit range.
      WORMHOLE_ASSERT(own.label >= netbase::kFirstUnreservedLabel &&
                          own.label <= netbase::kMaxLabel,
                      "LDP binding outside the unreserved label range");
      const std::size_t index = own.label - netbase::kFirstUnreservedLabel;
      WORMHOLE_DCHECK(index + 1 == rc.ldp_op_offsets.size(),
                      "LDP labels must arrive densely, in binding order");
      const routing::FibEntry* route = rc.fib->LookupExact(fec);
      if (route != nullptr) {
        for (const NextHop& hop : route->next_hops) {
          LabelOp op;
          op.hop = hop;
          const mpls::Binding* out = neighbor_binding(hop.neighbor, fec);
          if (out == nullptr ||
              out->kind == mpls::BindingKind::kImplicitNull) {
            op.kind = LabelOp::Kind::kPop;
          } else if (out->kind == mpls::BindingKind::kExplicitNull) {
            op.kind = LabelOp::Kind::kSwapExplicitNull;
          } else {
            op.kind = LabelOp::Kind::kSwap;
            op.out_label = out->label;
          }
          rc.ldp_op_pool.push_back(op);
        }
      }
      rc.ldp_op_offsets.push_back(
          static_cast<std::uint32_t>(rc.ldp_op_pool.size()));
    }
  }
  return rc;
}

void Engine::RefreshRouters(const std::vector<topo::RouterId>& routers) {
  for (const RouterId r : routers) {
    router_cache_[r] = BuildRouterCache(r);
  }
  // Re-attach hosts lost with the replaced caches.
  for (const topo::Host& host : topology_->hosts()) {
    if (std::find(routers.begin(), routers.end(), host.gateway) ==
        routers.end()) {
      continue;
    }
    router_cache_[host.gateway].hosts.push_back(
        AttachedHost{host.address, host.stub_interface});
  }
}

std::optional<Engine::LabelOp> Engine::ResolveLabel(
    topo::RouterId router, std::uint32_t label,
    const netbase::Packet& packet) const {
  WORMHOLE_DCHECK(router < router_cache_.size(),
                  "ResolveLabel router id outside the cache");
  WORMHOLE_ASSERT(label <= netbase::kMaxLabel,
                  "label exceeds the 20-bit MPLS label space");
  // SR node SIDs: forward towards the SID's router along the IGP path; the
  // penultimate hop pops the segment (PHP), so the waypoint receives the
  // next SID (or the bare IP packet) directly.
  if (sr_ != nullptr) {
    if (const auto target = sr_->RouterOfSid(label)) {
      const FibEntry* route = router_cache_[router].fib->LookupExact(
          netbase::Prefix::Host(topology_->router(*target).loopback));
      if (route != nullptr && !route->next_hops.empty()) {
        LabelOp op;
        op.hop = PickNextHop(route->next_hops, packet);
        if (op.hop.neighbor == *target) {
          op.kind = LabelOp::Kind::kPop;
        } else {
          op.kind = LabelOp::Kind::kSwap;
          op.out_label = label;  // global SID: unchanged along the segment
        }
        return op;
      }
      return std::nullopt;
    }
  }

  // RSVP-TE labels live in their own range; check the TE database first.
  if (te_ != nullptr) {
    if (const auto te_op = te_->OpFor(router, label)) {
      LabelOp op;
      op.hop = routing::NextHop{te_op->link, te_op->next};
      op.out_label = te_op->out_label;
      switch (te_op->kind) {
        case mpls::TeLabelOp::Kind::kSwap:
          op.kind = LabelOp::Kind::kSwap;
          break;
        case mpls::TeLabelOp::Kind::kPop:
          op.kind = LabelOp::Kind::kPop;
          break;
        case mpls::TeLabelOp::Kind::kSwapExplicitNull:
          op.kind = LabelOp::Kind::kSwapExplicitNull;
          break;
      }
      return op;
    }
  }

  // LDP: the constructor pre-resolved every (in-label, next hop) pair
  // into router_cache_; what remains is the ECMP choice, which must match
  // PickNextHop bit-for-bit (the ops are parallel to the route's sorted
  // next_hops).
  if (label < netbase::kFirstUnreservedLabel) return std::nullopt;
  const RouterCache& rc = router_cache_[router];
  const std::size_t index = label - netbase::kFirstUnreservedLabel;
  if (index + 1 >= rc.ldp_op_offsets.size()) return std::nullopt;
  const std::uint32_t begin = rc.ldp_op_offsets[index];
  const std::uint32_t count = rc.ldp_op_offsets[index + 1] - begin;
  if (count == 0) return std::nullopt;
  const LabelOp* per_hop = rc.ldp_op_pool.data() + begin;
  if (count == 1 || !options_.ecmp_enabled) return per_hop[0];
  return per_hop[FlowHash(packet) % count];
}

EngineStats Engine::stats() const {
  EngineStats total;
  for (const StatShard& shard : stat_shards_) {
    total.packets_injected +=
        shard.packets_injected.load(std::memory_order_relaxed);
    total.hops_processed +=
        shard.hops_processed.load(std::memory_order_relaxed);
    total.icmp_generated +=
        shard.icmp_generated.load(std::memory_order_relaxed);
    total.labels_pushed +=
        shard.labels_pushed.load(std::memory_order_relaxed);
    total.labels_popped +=
        shard.labels_popped.load(std::memory_order_relaxed);
  }
  return total;
}

Engine::Outcome Engine::Send(netbase::Packet probe) const {
  const topo::Host* origin = topology_->FindHost(probe.src);
  if (origin == nullptr) {
    throw std::invalid_argument("Send: probe.src is not an attached host");
  }
  EngineStats local;
  ++local.packets_injected;

  Transit transit;
  transit.packet = std::move(probe);
  transit.packet.elapsed_ms += options_.host_stub_delay_ms;
  transit.router = origin->gateway;
  transit.in_interface = origin->stub_interface;

  const netbase::Ipv4Address origin_address = origin->address;
  Outcome final;
  while (true) {
    if (transit.packet.hops_traversed > options_.max_hops) {
      final = Outcome{.received = false, .loss = LossReason::kTtlLoop};
      break;
    }
    ++local.hops_processed;

    // Delivery to the origin host happens at its gateway, after the
    // gateway's normal forwarding decrement (handled inside ProcessIp).
    // Each step advances `transit` in place.
    StepResult step = ProcessAt(transit, local);
    if (step.outcome) {
      // Only packets addressed to the origin terminate the simulation.
      final = step.outcome->reply.dst == origin_address
                  ? std::move(*step.outcome)
                  : Outcome{.received = false, .loss = LossReason::kDropped};
      break;
    }
    if (step.loss != LossReason::kNone) {
      final = Outcome{.received = false, .loss = step.loss};
      break;
    }
  }

  StatShard& shard = stat_shards_[exec::ThreadSlot(kStatShards)];
  shard.packets_injected.fetch_add(local.packets_injected,
                                   std::memory_order_relaxed);
  shard.hops_processed.fetch_add(local.hops_processed,
                                 std::memory_order_relaxed);
  shard.icmp_generated.fetch_add(local.icmp_generated,
                                 std::memory_order_relaxed);
  shard.labels_pushed.fetch_add(local.labels_pushed,
                                std::memory_order_relaxed);
  shard.labels_popped.fetch_add(local.labels_popped,
                                std::memory_order_relaxed);
  return final;
}

Engine::StepResult Engine::ProcessAt(Transit& t, EngineStats& stats) const {
  if (t.packet.has_labels()) return ProcessMpls(t, stats);
  return ProcessIp(t, stats);
}

Engine::StepResult Engine::ProcessMpls(Transit& t, EngineStats& stats) const {
  const RouterId r = t.router;
  WORMHOLE_DCHECK(t.packet.has_labels(),
                  "ProcessMpls entered without a label stack");
  // In-flight stacks keep the top of stack at the BACK: push/swap/pop are
  // O(1) writes at the end, and the expiry path below is the only place
  // the stack is ever copied (for the RFC 4950 quotation) — an untouched
  // pre-decrement stack is quoted directly, so the non-expiring hop never
  // copies anything.
  LabelStackEntry& top = t.packet.labels.back();

  if (top.label == kExplicitNull) {
    // UHP disposition at the Egress LER. The LSE-TTL check still applies
    // (it can only fire under ttl-propagate).
    const auto decremented = static_cast<std::uint8_t>(top.ttl - 1);
    if (decremented == 0) {
      if (t.packet.kind != PacketKind::kEchoRequest) {
        return StepResult{.loss = LossReason::kReplyExpired};
      }
      // Stack still as received: quote it. No table maps explicit-null,
      // so there is no label operation to forward the ICMP along.
      return OriginateError(t, PacketKind::kTimeExceeded,
                            /*quote_labels=*/true, stats);
    }
    t.packet.labels.pop_back();
    ++stats.labels_popped;
    // Emulation-calibrated: decrement without an expiry check, no min copy
    // (see engine.h); then a fresh IP pass with no further decrement.
    if (t.packet.ip_ttl > 0) --t.packet.ip_ttl;
    t.skip_ip_decrement = true;
    return ProcessIp(t, stats);
  }

  const auto op = ResolveLabel(r, top.label, t.packet);
  if (!op) return StepResult{.loss = LossReason::kDropped};

  const auto decremented = static_cast<std::uint8_t>(top.ttl - 1);
  if (decremented == 0) {
    if (t.packet.kind != PacketKind::kEchoRequest) {
      return StepResult{.loss = LossReason::kReplyExpired};
    }
    // Stack still holds the pre-decrement values (RFC 4950 quotes the
    // packet as received); reuse the op resolved above for the
    // ICMP-along-the-LSP decision instead of resolving again.
    return OriginateError(t, PacketKind::kTimeExceeded,
                          /*quote_labels=*/true, stats, &*op);
  }
  top.ttl = decremented;

  switch (op->kind) {
    case LabelOp::Kind::kPop: {
      // PHP pop (or a neighbor without a binding — same data-plane
      // effect): the min rule applies between the popped LSE-TTL and
      // whatever gets exposed — the inner label of a stacked packet (SR
      // SID lists) or the IP header (RFC 3443 §5.4).
      const auto popped = static_cast<int>(decremented);
      t.packet.labels.pop_back();
      ++stats.labels_popped;
      if (router_cache_[r].config->min_ttl_on_pop) {
        if (!t.packet.labels.empty()) {
          LabelStackEntry& exposed = t.packet.labels.back();
          exposed.ttl = static_cast<std::uint8_t>(
              std::min(static_cast<int>(exposed.ttl), popped));
        } else {
          t.packet.ip_ttl = std::min(t.packet.ip_ttl, popped);
        }
      }
      break;
    }
    case LabelOp::Kind::kSwapExplicitNull:
      top.label = kExplicitNull;
      break;
    case LabelOp::Kind::kSwap:
      top.label = op->out_label;
      break;
  }
  Forward(t, op->hop);
  return {};
}

Engine::StepResult Engine::ProcessIp(Transit& t, EngineStats& stats) const {
  const RouterId r = t.router;
  // RFC 3443 TTL domain: the IP TTL is an 8-bit field; `int` storage only
  // exists so arithmetic never silently wraps (see Packet::ip_ttl).
  WORMHOLE_ASSERT(t.packet.ip_ttl >= 0 && t.packet.ip_ttl <= 255,
                  "IP TTL outside [0, 255]");
  const RouterCache& rc = router_cache_[r];
  const topo::Router& router = *rc.router;
  // One config resolution per hop: the SR check, the TE check and
  // MaybeImpose below all read this reference instead of re-fetching.
  const mpls::MplsConfig& config = *rc.config;
  Packet& p = t.packet;

  // Delivery to one of this router's own addresses happens before any
  // decrement (the packet has arrived).
  if (IsLocalAddress(r, p.dst)) {
    if (p.kind != PacketKind::kEchoRequest) {
      // A reply addressed to a router: nothing is waiting for it.
      return StepResult{.loss = LossReason::kDropped};
    }
    if (config.icmp_silent || IcmpLost(p, r, config.icmp_loss)) {
      return StepResult{.loss = LossReason::kDropped};
    }
    const VendorBehavior behavior = BehaviorOf(router.vendor);
    Packet reply = MakeEchoReply(t, p.dst, behavior.initial_ttl_echo_reply);
    ++stats.icmp_generated;
    t.packet = std::move(reply);  // answered at the same router
    t.locally_originated = true;
    return {};
  }

  // Transit decrement (skipped right after local origination or UHP pop).
  if (!t.locally_originated && !t.skip_ip_decrement) {
    --p.ip_ttl;
    if (p.ip_ttl <= 0) {
      if (p.kind != PacketKind::kEchoRequest) {
        return StepResult{.loss = LossReason::kReplyExpired};
      }
      return OriginateError(t, PacketKind::kTimeExceeded,
                            /*quote_labels=*/false, stats);
    }
  }
  t.locally_originated = false;
  t.skip_ip_decrement = false;

  // Delivery to an attached host (after the decrement — the stub segment
  // is an ordinary IP hop). Only hosts gatewayed by THIS router matter,
  // so the cached per-router list replaces the global host hash.
  for (const AttachedHost& host : rc.hosts) {
    if (host.address != p.dst) continue;
    if (p.is_reply()) {
      Outcome outcome;
      outcome.received = true;
      outcome.rtt_ms = p.elapsed_ms + options_.host_stub_delay_ms;
      outcome.reply = std::move(p);
      return StepResult{.outcome = std::move(outcome)};
    }
    // An echo-request probing the host itself: the host answers.
    Packet reply = MakeEchoReply(t, p.dst, kHostEchoReplyTtl);
    reply.elapsed_ms += 2 * options_.host_stub_delay_ms;
    ++stats.icmp_generated;
    t.packet = std::move(reply);
    t.in_interface = host.stub_interface;
    // The gateway forwards (and decrements) the host's reply normally:
    // locally_originated stays false.
    return {};
  }

  // SR steering: the ingress imposes the policy's SID list; the packet
  // then waypoint-hops through the domain.
  if (sr_ != nullptr && config.enabled) {
    if (const mpls::SrPolicy* policy = sr_->PolicyFor(r, p.dst)) {
      const FibEntry* route = rc.fib->LookupExact(netbase::Prefix::Host(
          topology_->router(policy->waypoints.front()).loopback));
      if (route != nullptr && !route->next_hops.empty()) {
        const NextHop hop = PickNextHop(route->next_hops, p);
        const bool propagate = config.ttl_propagate;
        // Impose the SID list directly onto the in-flight stack: deepest
        // segment first, so the first waypoint's SID ends up on top (the
        // back). The deepest new entry carries the bottom-of-stack flag.
        const std::size_t before = p.labels.size();
        const auto& waypoints = policy->waypoints;
        WORMHOLE_DCHECK(!propagate || (p.ip_ttl >= 1 && p.ip_ttl <= 255),
                        "propagated LSE TTL outside [1, 255]");
        for (auto it = waypoints.rbegin(); it != waypoints.rend(); ++it) {
          LabelStackEntry lse;
          lse.label = mpls::NodeSid(*it);
          WORMHOLE_ASSERT(lse.label <= netbase::kMaxLabel,
                          "SR node SID exceeds the 20-bit label space");
          lse.ttl = static_cast<std::uint8_t>(propagate ? p.ip_ttl : 255);
          lse.bottom_of_stack = false;
          p.labels.push_back(lse);
        }
        if (p.labels.size() > before) {
          p.labels[before].bottom_of_stack = true;
        }
        if (hop.neighbor == waypoints.front()) {
          p.labels.pop_back();  // PHP at push for the first segment
        }
        stats.labels_pushed += p.labels.size() - before;
        Forward(t, hop);
        return {};
      }
    }
  }

  // RSVP-TE steering: a tunnel ingress pins selected prefixes onto an
  // explicit route, overriding the IGP next hop.
  if (te_ != nullptr && config.enabled) {
    if (const mpls::TeSteering* steering = te_->SteeringFor(r, p.dst)) {
      if (steering->labeled) {
        LabelStackEntry lse;
        lse.label = steering->label;
        WORMHOLE_ASSERT(lse.label <= netbase::kMaxLabel,
                        "TE steering label exceeds the 20-bit label space");
        WORMHOLE_DCHECK(
            !config.ttl_propagate || (p.ip_ttl >= 1 && p.ip_ttl <= 255),
            "propagated LSE TTL outside [1, 255]");
        lse.ttl = static_cast<std::uint8_t>(
            config.ttl_propagate ? p.ip_ttl : 255);
        p.labels.push_back(lse);
        ++stats.labels_pushed;
      }
      Forward(t, NextHop{steering->link, steering->next});
      return {};
    }
  }

  const FibEntry* entry = rc.fib->Lookup(p.dst);
  if (entry == nullptr) {
    if (p.kind != PacketKind::kEchoRequest) {
      return StepResult{.loss = LossReason::kNoRoute};
    }
    return OriginateError(t, PacketKind::kDestinationUnreachable,
                          /*quote_labels=*/false, stats);
  }

  if (entry->next_hops.empty()) {
    // Connected subnet: the destination is the far end of one of our links
    // (or an unassigned address => unreachable).
    for (const topo::InterfaceId iid : router.interfaces) {
      const topo::Interface& iface = topology_->interface(iid);
      if (iface.link == topo::kNoLink || iface.subnet != entry->prefix ||
          !topology_->link(iface.link).up) {
        continue;
      }
      const topo::Interface& peer = topology_->OtherEnd(iface.link, r);
      if (peer.address == p.dst) {
        Forward(t, NextHop{iface.link, peer.router});
        return {};
      }
    }
    if (p.kind != PacketKind::kEchoRequest) {
      return StepResult{.loss = LossReason::kNoRoute};
    }
    return OriginateError(t, PacketKind::kDestinationUnreachable,
                          /*quote_labels=*/false, stats);
  }

  const NextHop& hop = PickNextHop(entry->next_hops, p);
  MaybeImpose(rc, *entry, hop, p, stats);
  Forward(t, hop);
  return {};
}

Engine::StepResult Engine::OriginateError(Transit& t,
                                          netbase::PacketKind kind,
                                          bool quote_labels,
                                          EngineStats& stats,
                                          const LabelOp* lsp_op) const {
  const RouterId r = t.router;
  const RouterCache& rc = router_cache_[r];
  const mpls::MplsConfig& config = *rc.config;
  if (config.icmp_silent || IcmpLost(t.packet, r, config.icmp_loss)) {
    return StepResult{.loss = LossReason::kDropped};
  }
  const VendorBehavior behavior = BehaviorOf(rc.router->vendor);
  ++stats.icmp_generated;

  Packet reply;
  reply.kind = kind;
  reply.src = topology_->interface(t.in_interface).address;
  reply.dst = t.packet.src;
  reply.ip_ttl = behavior.initial_ttl_time_exceeded;
  reply.flow_id = t.packet.flow_id;
  reply.probe_id = t.packet.probe_id;
  reply.quoted_dst = t.packet.dst;
  reply.elapsed_ms = t.packet.elapsed_ms;
  reply.hops_traversed = t.packet.hops_traversed;
  if (quote_labels && config.rfc4950) {
    reply.quoted_labels = netbase::QuoteStack(t.packet.labels);
  }

  // An error generated mid-LSP is first forwarded along the tunnel: it is
  // sent out with the label the offending packet would have carried
  // (`lsp_op`, resolved once by the caller). When the operation is a PHP
  // pop (no label left), the reply is routed directly instead.
  if (quote_labels && config.icmp_along_lsp && !t.packet.labels.empty()) {
    if (lsp_op != nullptr && lsp_op->kind != LabelOp::Kind::kPop) {
      LabelStackEntry lse;
      lse.label = lsp_op->kind == LabelOp::Kind::kSwapExplicitNull
                      ? kExplicitNull
                      : lsp_op->out_label;
      lse.ttl = static_cast<std::uint8_t>(
          config.ttl_propagate ? reply.ip_ttl : 255);
      reply.labels = {lse};
      ++stats.labels_pushed;
      t.packet = std::move(reply);  // same router, same incoming interface
      Forward(t, lsp_op->hop);
      return {};
    }
  }

  t.packet = std::move(reply);
  t.locally_originated = true;
  t.skip_ip_decrement = false;
  return {};
}

netbase::Packet Engine::MakeEchoReply(const Transit& t,
                                      netbase::Ipv4Address reply_src,
                                      int initial_ttl) const {
  Packet reply;
  reply.kind = PacketKind::kEchoReply;
  reply.src = reply_src;
  reply.dst = t.packet.src;
  reply.ip_ttl = initial_ttl;
  reply.flow_id = t.packet.flow_id;
  reply.probe_id = t.packet.probe_id;
  reply.elapsed_ms = t.packet.elapsed_ms;
  reply.hops_traversed = t.packet.hops_traversed;
  return reply;
}

void Engine::Forward(Transit& t, const routing::NextHop& hop) const {
  WORMHOLE_DCHECK(hop.link != topo::kNoLink && hop.neighbor != topo::kNoRouter,
                  "Forward over an unresolved next hop");
  double delay = topology_->link(hop.link).delay_ms;
  if (options_.delay_jitter_fraction > 0.0) {
    // Deterministic per (probe, link) jitter in [-f, +f] of the base delay.
    std::uint64_t h = (std::uint64_t{t.packet.probe_id} << 32) ^
                      (std::uint64_t{hop.link} * 0x9E3779B97F4A7C15ull);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
    const double unit =
        static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
    delay *= 1.0 + options_.delay_jitter_fraction * (2.0 * unit - 1.0);
  }
  t.packet.elapsed_ms += delay;
  ++t.packet.hops_traversed;
  t.router = hop.neighbor;
  t.in_interface = topology_->EndOn(hop.link, hop.neighbor).id;
  // The one-shot flags describe the router the packet just left, never the
  // neighbor it arrives at.
  t.locally_originated = false;
  t.skip_ip_decrement = false;
}

const routing::NextHop& Engine::PickNextHop(
    const routing::NextHopSet& hops,
    const netbase::Packet& packet) const {
  if (hops.size() == 1 || !options_.ecmp_enabled) return hops.front();
  return hops[FlowHash(packet) % hops.size()];
}

void Engine::MaybeImpose(const RouterCache& rc,
                         const routing::FibEntry& entry,
                         const routing::NextHop& hop,
                         netbase::Packet& packet,
                         EngineStats& stats) const {
  const mpls::MplsConfig& config = *rc.config;
  if (!config.enabled) return;
  const mpls::LdpDomain* domain = rc.domain;
  if (domain == nullptr) return;

  netbase::Prefix fec;
  switch (entry.source) {
    case routing::RouteSource::kBgp:
      // External traffic is switched via the LSP towards the BGP next hop
      // (the egress LER's loopback, next-hop-self).
      if (entry.bgp_next_hop.is_unspecified()) return;  // eBGP exit
      fec = netbase::Prefix::Host(entry.bgp_next_hop);
      break;
    case routing::RouteSource::kIgp:
      fec = entry.prefix;
      break;
    case routing::RouteSource::kConnected:
      return;
  }

  const auto binding = domain->BindingOf(hop.neighbor, fec);
  if (!binding) return;
  if (binding->kind == mpls::BindingKind::kImplicitNull) return;  // pop+push

  LabelStackEntry lse;
  lse.label = binding->kind == mpls::BindingKind::kExplicitNull
                  ? kExplicitNull
                  : binding->label;
  WORMHOLE_ASSERT(lse.label == kExplicitNull ||
                      (lse.label >= netbase::kFirstUnreservedLabel &&
                       lse.label <= netbase::kMaxLabel),
                  "imposed label outside the unreserved range");
  WORMHOLE_DCHECK(
      !config.ttl_propagate || (packet.ip_ttl >= 1 && packet.ip_ttl <= 255),
      "propagated LSE TTL outside [1, 255]");
  lse.ttl =
      static_cast<std::uint8_t>(config.ttl_propagate ? packet.ip_ttl : 255);
  packet.labels.push_back(lse);  // in-flight order: new top goes at the back
  ++stats.labels_pushed;
}

bool Engine::IsLocalAddress(topo::RouterId router,
                            netbase::Ipv4Address address) const {
  // Scanning this router's few addresses beats the global address hash;
  // the set is exactly what FindRouterByAddress would map to `router`.
  for (const netbase::Ipv4Address local :
       router_cache_[router].local_addresses) {
    if (local == address) return true;
  }
  return false;
}

}  // namespace wormhole::sim
