file(REMOVE_RECURSE
  "CMakeFiles/wormhole_gen.dir/gns3.cpp.o"
  "CMakeFiles/wormhole_gen.dir/gns3.cpp.o.d"
  "CMakeFiles/wormhole_gen.dir/internet.cpp.o"
  "CMakeFiles/wormhole_gen.dir/internet.cpp.o.d"
  "CMakeFiles/wormhole_gen.dir/router_config.cpp.o"
  "CMakeFiles/wormhole_gen.dir/router_config.cpp.o.d"
  "libwormhole_gen.a"
  "libwormhole_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
