// Annotated synchronisation primitives: the capability types behind the
// thread-safety macro layer (src/netbase/thread_annotations.h).
//
// std::mutex and std::lock_guard carry no capability attributes, so code
// locking them is invisible to clang's Thread Safety Analysis. These thin
// wrappers make every acquisition and release analyzable:
//
//  * Mutex      — a CAPABILITY("mutex") over std::mutex.
//  * MutexLock  — the SCOPED_CAPABILITY RAII guard for a Mutex.
//  * CondVar    — condition variable usable with Mutex; Wait REQUIRES
//                 the mutex (the internal unlock/relock is invisible to
//                 the analysis, which treats the capability as held
//                 throughout — the standard safe approximation).
//  * Role       — a zero-cost CAPABILITY("role"): a compile-time-only
//                 phase token for structures that are not lock-guarded
//                 but phase-disciplined ("mutate only during
//                 convergence, read-only while probes are in flight").
//                 RoleLock scopes the phase; helpers marked
//                 REQUIRES(role) cannot be called from outside it.
//  * StripedMutex — hash-to-stripe Mutex selection (moved here from
//                 thread_pool.h); the stripe a call site locks is
//                 dynamic, so fields guarded by a stripe cannot be
//                 GUARDED_BY-named, but acquisitions through MutexLock
//                 are still balance-checked.
//
// Everything is header-only and as thin as the std types underneath; the
// annotations compile away entirely outside clang.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>

#include "netbase/thread_annotations.h"

namespace wormhole::exec {

/// std::mutex as an analyzable capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mutex_.lock(); }
  void unlock() RELEASE() { mutex_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// RAII exclusive lock over a Mutex (std::lock_guard, analyzable).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable for Mutex. Callers wait in the standard
/// `while (!predicate()) cv.Wait(mutex);` shape — an explicit loop, not
/// a predicate lambda, so the guarded reads stay inside the annotated
/// caller where the analysis can see the held capability.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex` and blocks; re-acquires before
  /// returning. Spurious wakeups happen: always wait in a loop.
  void Wait(Mutex& mutex) REQUIRES(mutex) { cv_.wait(mutex); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any works with any BasicLockable, so it can
  // release/re-acquire the annotated Mutex directly (the std internals
  // are unannotated and therefore invisible to the analysis, which is
  // exactly the approximation Wait's REQUIRES encodes).
  std::condition_variable_any cv_;
};

/// A compile-time-only capability: no runtime state, no blocking. Use it
/// to put phase contracts under the analyzer for data that is *not*
/// lock-guarded — e.g. "this field is only touched during convergence".
/// Acquire/Release are free; the value is that helpers annotated
/// REQUIRES(role) become uncallable from un-scoped code at compile time.
class CAPABILITY("role") Role {
 public:
  Role() = default;
  Role(const Role&) = delete;
  Role& operator=(const Role&) = delete;

  void Acquire() ACQUIRE() {}
  void Release() RELEASE() {}
};

/// Scopes a Role: the annotated equivalent of "we are now in the phase".
class SCOPED_CAPABILITY RoleLock {
 public:
  explicit RoleLock(Role& role) ACQUIRE(role) : role_(role) {
    role_.Acquire();
  }
  ~RoleLock() RELEASE() { role_.Release(); }
  RoleLock(const RoleLock&) = delete;
  RoleLock& operator=(const RoleLock&) = delete;

 private:
  Role& role_;
};

/// A striped lock: maps a hash to one of a fixed set of mutexes, so
/// unrelated keys of a shared structure rarely contend. The selected
/// stripe is dynamic, so guarded fields cannot name it in GUARDED_BY;
/// lock/unlock balance is still analyzed through MutexLock.
class StripedMutex {
 public:
  explicit StripedMutex(std::size_t stripes = 16)
      : stripes_(stripes < 1 ? 1 : stripes),
        mutexes_(std::make_unique<Mutex[]>(stripes_)) {}

  [[nodiscard]] std::size_t stripes() const { return stripes_; }
  [[nodiscard]] Mutex& For(std::size_t hash) {
    return mutexes_[hash % stripes_];
  }

 private:
  std::size_t stripes_;
  std::unique_ptr<Mutex[]> mutexes_;
};

}  // namespace wormhole::exec
