// DPR + BRPR — the active revelation driver (paper Sec. 3.2 and Sec. 4).
//
// Given a trace whose last hops ... X, Y suggest an invisible tunnel between
// X (candidate Ingress LER) and Y (candidate Egress LER), the driver:
//
//   1. traceroutes Y itself. Internal prefixes may be routed outside LSPs
//      (loopback-only LDP => DPR reveals the whole hidden path in one shot)
//      or via an LSP whose PHP exposes the last hop (all-prefix LDP =>
//      one new hop appears).
//   2. recurses backwards: each newly revealed hop nearest the ingress
//      becomes the next target (BRPR), until no new hop shows up or the
//      trace no longer passes through X.
//
// Classification follows Table 3 / Table 5:
//   kDpr:    one extra trace revealed 2+ hops at once;
//   kBrpr:   hops were revealed strictly one at a time (2+ total);
//   kEither: exactly one hop revealed — the two methods are
//            indistinguishable on single-LSR tunnels;
//   kHybrid: a mix (a multi-hop batch plus recursive single reveals);
//   kNone:   nothing revealed.
#pragma once

#include <set>
#include <vector>

#include "probe/prober.h"

namespace wormhole::reveal {

enum class RevelationMethod : std::uint8_t {
  kNone,
  kDpr,
  kBrpr,
  kEither,
  kHybrid,
};

const char* ToString(RevelationMethod method);

struct RevelationResult {
  netbase::Ipv4Address ingress;  ///< X
  netbase::Ipv4Address egress;   ///< Y
  /// Hidden hops in forward order (nearest the ingress first).
  std::vector<netbase::Ipv4Address> revealed;
  RevelationMethod method = RevelationMethod::kNone;
  /// Extra traces spent (the paper reports the BRPR probing overhead).
  int traces_used = 0;
  /// Sizes of each reveal batch, in discovery order (first = trace to Y).
  std::vector<int> batch_sizes;

  [[nodiscard]] bool succeeded() const {
    return method != RevelationMethod::kNone;
  }
  /// Tunnel length in the paper's Fig. 5 sense: hops from ingress to
  /// egress = revealed LSRs + 1.
  [[nodiscard]] int tunnel_length() const {
    return static_cast<int>(revealed.size()) + 1;
  }
};

struct RevelatorOptions {
  /// Upper bound on recursion depth (defensive; real tunnels are short).
  int max_recursion = 24;
  probe::TraceOptions trace_options;
};

class Revelator {
 public:
  explicit Revelator(probe::Prober& prober, RevelatorOptions options = {});

  /// Attempts to reveal the content of a suspected invisible tunnel whose
  /// endpoints appeared adjacent as ... X, Y in a previous trace.
  RevelationResult Reveal(netbase::Ipv4Address x, netbase::Ipv4Address y);

 private:
  /// Responding addresses strictly between `after` and `before` in `trace`
  /// (empty when either is missing or out of order).
  static std::vector<netbase::Ipv4Address> HopsBetween(
      const probe::TraceResult& trace, netbase::Ipv4Address after,
      netbase::Ipv4Address before);

  probe::Prober* prober_;
  RevelatorOptions options_;
};

/// Pure classification from the batch sizes (unit-testable without probing).
RevelationMethod ClassifyBatches(const std::vector<int>& batch_sizes);

}  // namespace wormhole::reveal
