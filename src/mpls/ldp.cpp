#include "mpls/ldp.h"

#include <algorithm>
#include <utility>

#include "exec/thread_pool.h"
#include "netbase/contracts.h"

namespace wormhole::mpls {

namespace {

bool PolicyAllows(const MplsConfig& config, const Prefix& fec) {
  switch (config.ldp_policy) {
    case LdpPolicy::kAllPrefixes:
      return true;
    case LdpPolicy::kLoopbacksOnly:
      return fec.is_host();
  }
  return false;
}

}  // namespace

LdpDomain::LdpDomain(const topo::Topology& topology,
                     const MplsConfigMap& configs, topo::AsNumber asn,
                     const std::vector<routing::Fib>& fibs)
    : asn_(asn) {
  // Candidate FECs: every internal prefix of the AS. Which of them a router
  // actually binds is filtered per router below.
  std::vector<Prefix> candidate_fecs = topology.InternalPrefixes(asn);
  std::sort(candidate_fecs.begin(), candidate_fecs.end());

  for (const topo::RouterId rid : topology.as(asn).routers) {
    const MplsConfig& config = configs.For(rid);
    if (!config.enabled) continue;

    RouterTables tables;
    tables.bindings.reserve(candidate_fecs.size());
    std::uint32_t next_label = netbase::kFirstUnreservedLabel;

    // candidate_fecs is sorted and visited in order, so `bindings` comes
    // out sorted by FEC and labels come out dense — both flat tables are
    // built in their final order with zero per-FEC rebalancing. The FIBs
    // are sealed by the time LDP runs, so LookupExact is an O(1) probe.
    for (const Prefix& fec : candidate_fecs) {
      if (!PolicyAllows(config, fec)) continue;
      const routing::FibEntry* route = fibs.at(rid).LookupExact(fec);
      if (route == nullptr) continue;  // not in this router's RIB

      Binding binding;
      if (route->source == routing::RouteSource::kConnected) {
        // Egress LER for this FEC: request PHP (implicit null) or UHP
        // (explicit null) from the upstream neighbor.
        binding.kind = config.popping == Popping::kUhp
                           ? BindingKind::kExplicitNull
                           : BindingKind::kImplicitNull;
      } else {
        binding.kind = BindingKind::kLabel;
        binding.label = next_label++;
        // Dense allocation from kFirstUnreservedLabel is what lets the
        // engine pre-resolve bindings into a flat ldp_ops vector.
        WORMHOLE_ASSERT(binding.label <= netbase::kMaxLabel,
                        "LDP label space exhausted (20-bit overflow)");
        tables.label_to_fec.push_back(fec);
      }
      tables.bindings.emplace_back(fec, binding);
    }
    tables_.emplace(rid, std::move(tables));
  }
}

std::optional<Binding> LdpDomain::BindingOf(RouterId advertiser,
                                            const Prefix& fec) const {
  const auto router_it = tables_.find(advertiser);
  if (router_it == tables_.end()) return std::nullopt;
  const auto& bindings = router_it->second.bindings;
  const auto it = std::lower_bound(
      bindings.begin(), bindings.end(), fec,
      [](const auto& entry, const Prefix& key) { return entry.first < key; });
  if (it == bindings.end() || it->first != fec) return std::nullopt;
  return it->second;
}

std::optional<Prefix> LdpDomain::FecOfLabel(RouterId router,
                                            std::uint32_t label) const {
  const auto router_it = tables_.find(router);
  if (router_it == tables_.end()) return std::nullopt;
  const auto& label_to_fec = router_it->second.label_to_fec;
  if (label < netbase::kFirstUnreservedLabel) return std::nullopt;
  const std::size_t index = label - netbase::kFirstUnreservedLabel;
  if (index >= label_to_fec.size()) return std::nullopt;
  return label_to_fec[index];
}

std::vector<Prefix> LdpDomain::FecsOf(RouterId router) const {
  std::vector<Prefix> out;
  const auto router_it = tables_.find(router);
  if (router_it == tables_.end()) return out;
  out.reserve(router_it->second.bindings.size());
  // `bindings` is kept sorted by FEC, so the copy is already in order.
  for (const auto& [fec, binding] : router_it->second.bindings) {
    out.push_back(fec);
  }
  return out;
}

std::span<const std::pair<Prefix, Binding>> LdpDomain::BindingsOf(
    RouterId router) const {
  const auto router_it = tables_.find(router);
  if (router_it == tables_.end()) return {};
  return router_it->second.bindings;
}

LdpTables::LdpTables(const topo::Topology& topology,
                     const MplsConfigMap& configs,
                     const std::vector<routing::Fib>& fibs,
                     exec::ThreadPool* pool) {
  std::vector<topo::AsNumber> enabled;
  for (const topo::AsNumber asn : topology.AsNumbers()) {
    const bool any_enabled = std::any_of(
        topology.as(asn).routers.begin(), topology.as(asn).routers.end(),
        [&](topo::RouterId rid) { return configs.For(rid).enabled; });
    if (any_enabled) enabled.push_back(asn);
  }

  // Each domain is a pure function of (topology, configs, its AS's FIBs),
  // so domains can be built in any order on any thread; installing into
  // the map in the fixed `enabled` order afterwards makes the table
  // independent of the pool size.
  std::vector<LdpDomain> built(enabled.size());
  exec::ParallelFor(pool, enabled.size(), [&](std::size_t i) {
    built[i] = LdpDomain(topology, configs, enabled[i], fibs);
  });
  for (std::size_t i = 0; i < enabled.size(); ++i) {
    domains_.emplace(enabled[i], std::move(built[i]));
  }
}

const LdpDomain* LdpTables::DomainOf(topo::AsNumber asn) const {
  const auto it = domains_.find(asn);
  return it == domains_.end() ? nullptr : &it->second;
}

void LdpTables::InstallDomain(topo::AsNumber asn, LdpDomain domain) {
  const auto it = domains_.find(asn);
  if (it == domains_.end()) {
    domains_.emplace(asn, std::move(domain));
  } else {
    it->second = std::move(domain);  // node (and pointers to it) reused
  }
}

}  // namespace wormhole::mpls
