file(REMOVE_RECURSE
  "CMakeFiles/test_gns3.dir/test_gns3.cpp.o"
  "CMakeFiles/test_gns3.dir/test_gns3.cpp.o.d"
  "test_gns3"
  "test_gns3.pdb"
  "test_gns3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gns3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
