// Fig. 10: node degree distribution before (tunnels invisible) and after
// (revealed LSRs re-inserted) correction — overall and for the AS with the
// strongest full-mesh artefact.
#include <iostream>

#include "analysis/correct.h"
#include "analysis/report.h"
#include "bench/common.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader("Degree distribution: invisible vs visible",
                     "Fig. 10a/10b");

  const auto world = bench::RunFlagshipCampaign();
  const auto& result = world.result;
  const auto corrected = analysis::CorrectedCopy(
      result.inferred, result.revelations,
      campaign::TruthResolver(world.net->topology()),
      world.net->topology());

  const auto before = result.inferred.DegreeDistribution();
  const auto after = corrected.DegreeDistribution();
  std::cout << "--- (a) all ASes ---\n"
            << analysis::RenderPdfComparison(
                   {{"Invisible", &before}, {"Visible", &after}}, 1, 40);
  std::cout << "\nmax degree: " << before.Max() << " -> " << after.Max()
            << "\n";

  // (b) the AS whose candidate nodes deflate the most.
  topo::AsNumber worst = 0;
  double worst_drop = 0.0;
  for (const auto& [pair, revelation] : result.revelations) {
    if (!revelation.succeeded()) continue;
    const auto node = result.inferred.FindNode(pair.egress);
    if (!node) continue;
    const topo::AsNumber asn = result.inferred.node(*node).asn;
    const auto b = result.inferred.DegreeDistribution(asn);
    const auto a = corrected.DegreeDistribution(asn);
    if (b.empty() || a.empty()) continue;
    const double drop = b.Mean() - a.Mean();
    if (drop > worst_drop) {
      worst_drop = drop;
      worst = asn;
    }
  }
  if (worst != 0) {
    const auto b = result.inferred.DegreeDistribution(worst);
    const auto a = corrected.DegreeDistribution(worst);
    std::cout << "\n--- (b) AS" << worst << " (largest mean-degree drop, "
              << analysis::TextTable::Real(worst_drop, 2) << ") ---\n"
              << analysis::RenderPdfComparison(
                     {{"Invisible", &b}, {"Visible", &a}}, 1, 40);
  }
  std::cout << "\nshape (paper): the invisible curve carries artificial "
               "high-degree peaks (full meshes of LERs, e.g. 23 for "
               "AS3320); revelation removes them and mass moves to low "
               "degrees.\n";
  return 0;
}
