#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "routing/bgp.h"
#include "routing/fib.h"
#include "routing/igp.h"
#include "topo/topology.h"

namespace wormhole::routing {
namespace {

using topo::RouterId;
using topo::Topology;
using topo::Vendor;

// A 2x2 grid inside one AS (ECMP between opposite corners):
//   r0 - r1
//   |     |
//   r2 - r3
Topology Grid() {
  Topology t;
  t.AddAs(1, "grid");
  for (const char* name : {"r0", "r1", "r2", "r3"}) {
    t.AddRouter(1, name, Vendor::kCiscoIos);
  }
  t.AddLink(0, 1);
  t.AddLink(0, 2);
  t.AddLink(1, 3);
  t.AddLink(2, 3);
  return t;
}

TEST(Fib, LongestPrefixMatchWins) {
  Fib fib;
  FibEntry wide;
  wide.prefix = *netbase::Prefix::Parse("5.0.0.0/8");
  wide.source = RouteSource::kBgp;
  fib.AddRoute(wide);
  FibEntry narrow;
  narrow.prefix = *netbase::Prefix::Parse("5.1.0.0/16");
  narrow.source = RouteSource::kIgp;
  fib.AddRoute(narrow);

  const FibEntry* hit = fib.Lookup(*netbase::Ipv4Address::Parse("5.1.2.3"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->prefix.length(), 16);
  hit = fib.Lookup(*netbase::Ipv4Address::Parse("5.2.2.3"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->prefix.length(), 8);
  EXPECT_EQ(fib.Lookup(*netbase::Ipv4Address::Parse("9.0.0.1")), nullptr);
}

TEST(Fib, ExactMatchAndReplace) {
  Fib fib;
  FibEntry e;
  e.prefix = *netbase::Prefix::Parse("5.0.0.0/16");
  e.metric = 5;
  fib.AddRoute(e);
  e.metric = 2;
  fib.AddRoute(e);  // replaces
  const FibEntry* hit = fib.LookupExact(e.prefix);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->metric, 2);
  EXPECT_EQ(fib.size(), 1u);
}

TEST(Fib, DeduplicatesNextHops) {
  Fib fib;
  FibEntry e;
  e.prefix = *netbase::Prefix::Parse("5.0.0.0/16");
  e.next_hops = {{3, 7}, {1, 5}, {3, 7}};
  fib.AddRoute(e);
  const FibEntry* hit = fib.LookupExact(e.prefix);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->next_hops.size(), 2u);
  EXPECT_EQ(hit->next_hops[0], (NextHop{1, 5}));
}

TEST(Fib, DefaultRouteCatchesEverythingUncovered) {
  Fib fib;
  FibEntry def;
  def.prefix = *netbase::Prefix::Parse("0.0.0.0/0");
  def.source = RouteSource::kBgp;
  fib.AddRoute(def);
  FibEntry narrow;
  narrow.prefix = *netbase::Prefix::Parse("5.1.0.0/16");
  narrow.source = RouteSource::kIgp;
  fib.AddRoute(narrow);

  // Covered address: the /16 wins over /0.
  const FibEntry* hit = fib.Lookup(*netbase::Ipv4Address::Parse("5.1.9.9"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->prefix.length(), 16);
  // Anything else falls through to the default route, never to nullptr.
  for (const char* addr : {"5.2.0.1", "9.0.0.1", "0.0.0.0",
                           "255.255.255.255"}) {
    hit = fib.Lookup(*netbase::Ipv4Address::Parse(addr));
    ASSERT_NE(hit, nullptr) << addr;
    EXPECT_EQ(hit->prefix.length(), 0) << addr;
  }
}

TEST(Fib, OverlappingPrefixesMostSpecificWins) {
  // A full nesting chain /8 ⊃ /16 ⊃ /24 ⊃ /32 around one address: each
  // probe address must land on exactly the deepest prefix covering it.
  Fib fib;
  for (const char* p : {"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24",
                        "10.1.2.3/32"}) {
    FibEntry e;
    e.prefix = *netbase::Prefix::Parse(p);
    fib.AddRoute(e);
  }
  const auto probe = [&](const char* addr) {
    const FibEntry* hit = fib.Lookup(*netbase::Ipv4Address::Parse(addr));
    return hit == nullptr ? -1 : hit->prefix.length();
  };
  EXPECT_EQ(probe("10.1.2.3"), 32);
  EXPECT_EQ(probe("10.1.2.4"), 24);
  EXPECT_EQ(probe("10.1.3.3"), 16);
  EXPECT_EQ(probe("10.2.2.3"), 8);
  EXPECT_EQ(probe("11.1.2.3"), -1);
}

TEST(Fib, HostRoutesMatchExactlyOneAddress) {
  Fib fib;
  FibEntry host;
  host.prefix = netbase::Prefix::Host(*netbase::Ipv4Address::Parse("7.7.7.7"));
  fib.AddRoute(host);
  const FibEntry* hit = fib.Lookup(*netbase::Ipv4Address::Parse("7.7.7.7"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->prefix.length(), 32);
  // The neighboring addresses share 31 leading bits but must not match.
  EXPECT_EQ(fib.Lookup(*netbase::Ipv4Address::Parse("7.7.7.6")), nullptr);
  EXPECT_EQ(fib.Lookup(*netbase::Ipv4Address::Parse("7.7.7.8")), nullptr);
}

TEST(Fib, LookupExactMissesOnUnpopulatedLengths) {
  Fib fib;
  FibEntry e;
  e.prefix = *netbase::Prefix::Parse("10.0.0.0/8");
  fib.AddRoute(e);
  e.prefix = *netbase::Prefix::Parse("10.1.2.0/24");
  fib.AddRoute(e);
  // Force both code paths: unsealed (map) first, then sealed (flat index).
  for (int pass = 0; pass < 2; ++pass) {
    EXPECT_EQ(fib.LookupExact(*netbase::Prefix::Parse("10.1.0.0/16")),
              nullptr) << "pass " << pass;
    EXPECT_EQ(fib.LookupExact(*netbase::Prefix::Parse("10.0.0.0/9")),
              nullptr) << "pass " << pass;
    EXPECT_NE(fib.LookupExact(*netbase::Prefix::Parse("10.1.2.0/24")),
              nullptr) << "pass " << pass;
    fib.Seal();
  }
}

TEST(Fib, AddRouteAfterLookupRebuildsTheIndex) {
  Fib fib;
  FibEntry wide;
  wide.prefix = *netbase::Prefix::Parse("5.0.0.0/8");
  fib.AddRoute(wide);
  const auto addr = *netbase::Ipv4Address::Parse("5.1.2.3");
  const FibEntry* hit = fib.Lookup(addr);  // seals lazily
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->prefix.length(), 8);

  // Installing a more-specific route after the first Lookup must
  // invalidate and rebuild the sealed index.
  FibEntry narrow;
  narrow.prefix = *netbase::Prefix::Parse("5.1.0.0/16");
  fib.AddRoute(narrow);
  hit = fib.Lookup(addr);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->prefix.length(), 16);
}

TEST(Spf, DistancesOnGrid) {
  const Topology t = Grid();
  const SpfResult spf = ComputeSpf(t, 0);
  EXPECT_EQ(spf.distance[0], 0);
  EXPECT_EQ(spf.distance[1], 1);
  EXPECT_EQ(spf.distance[2], 1);
  EXPECT_EQ(spf.distance[3], 2);
  EXPECT_EQ(spf.hop_count[3], 2);
}

TEST(Spf, EcmpKeepsBothNextHops) {
  const Topology t = Grid();
  const SpfResult spf = ComputeSpf(t, 0);
  EXPECT_EQ(spf.next_hops[3].size(), 2u);  // via r1 and via r2
  EXPECT_EQ(spf.next_hops[1].size(), 1u);
}

TEST(Spf, EcmpMergedNextHopSetIsSortedAndDeduped) {
  // Regression pin for the bitmask ECMP merge that replaced the
  // sort+unique-per-relaxation hot spot: the first-hop set of every
  // destination must be the union over all shortest paths, emitted in
  // ascending (link, neighbor) order with parallel links kept distinct.
  //
  //       link0
  //   s ======== a --- d      s→d costs 2 via a (either parallel link)
  //   |   link1      link3    and 2 via b — three first hops total.
  //   | link2
  //   b ------------- d'
  //          link4
  Topology t;
  t.AddAs(1, "ecmp");
  for (const char* name : {"s", "a", "b", "d"}) {
    t.AddRouter(1, name, Vendor::kCiscoIos);
  }
  t.AddLink(0, 1);  // link 0: s-a
  t.AddLink(0, 1);  // link 1: s-a (parallel)
  t.AddLink(0, 2);  // link 2: s-b
  t.AddLink(1, 3);  // link 3: a-d
  t.AddLink(2, 3);  // link 4: b-d

  const SpfResult spf = ComputeSpf(t, 0);
  // Towards a: both parallel links, distinct (different LinkId), sorted.
  EXPECT_EQ(spf.next_hops[1],
            (std::vector<NextHop>{{0, 1}, {1, 1}}));
  // Towards d: the union of the via-a and via-b shortest paths.
  EXPECT_EQ(spf.distance[3], 2);
  EXPECT_EQ(spf.next_hops[3],
            (std::vector<NextHop>{{0, 1}, {1, 1}, {2, 2}}));

  // The cached engine tree serves the same spans.
  SpfEngine engine(t);
  const SpfTree& tree = engine.TreeOf(0);
  const std::span<const NextHop> hops = tree.FirstHops(3);
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_TRUE(std::is_sorted(hops.begin(), hops.end()));
  EXPECT_TRUE(std::equal(hops.begin(), hops.end(),
                         spf.next_hops[3].begin()));
}

TEST(Spf, RespectsMetrics) {
  Topology t;
  t.AddAs(1, "m");
  t.AddRouter(1, "a", Vendor::kCiscoIos);
  t.AddRouter(1, "b", Vendor::kCiscoIos);
  t.AddRouter(1, "c", Vendor::kCiscoIos);
  t.AddLink(0, 1, {.igp_metric = 10});
  t.AddLink(0, 2, {.igp_metric = 1});
  t.AddLink(2, 1, {.igp_metric = 1});
  const SpfResult spf = ComputeSpf(t, 0);
  EXPECT_EQ(spf.distance[1], 2);  // via c, not the direct metric-10 link
  ASSERT_EQ(spf.next_hops[1].size(), 1u);
  EXPECT_EQ(spf.next_hops[1][0].neighbor, 2u);
}

TEST(Spf, StaysInsideTheAs) {
  Topology t;
  t.AddAs(1, "one");
  t.AddAs(2, "two");
  t.AddRouter(1, "a", Vendor::kCiscoIos);
  t.AddRouter(2, "b", Vendor::kCiscoIos);
  t.AddLink(0, 1);
  const SpfResult spf = ComputeSpf(t, 0);
  EXPECT_EQ(spf.distance[1], kUnreachable);
  EXPECT_EQ(IgpDistance(t, 0, 1), kUnreachable);
}

TEST(Igp, InstallsRoutesForAllInternalPrefixes) {
  const Topology t = Grid();
  std::vector<Fib> fibs(t.router_count());
  InstallIgpRoutes(t, 1, fibs);
  // r0 must reach every loopback and every link subnet.
  for (RouterId r = 0; r < 4; ++r) {
    const FibEntry* e =
        fibs[0].LookupExact(netbase::Prefix::Host(t.router(r).loopback));
    ASSERT_NE(e, nullptr) << "loopback of r" << r;
    if (r == 0) {
      EXPECT_EQ(e->source, RouteSource::kConnected);
    } else {
      EXPECT_EQ(e->source, RouteSource::kIgp);
      EXPECT_FALSE(e->next_hops.empty());
    }
  }
  for (const topo::Link& link : t.links()) {
    EXPECT_NE(fibs[0].LookupExact(link.subnet), nullptr);
  }
}

TEST(Igp, SharedLinkSubnetRoutedViaNearestOwner) {
  // Chain a - b - c; the b-c subnet seen from a should be reached via b
  // (the nearer owner), which is the property PHP/BRPR relies on.
  Topology t;
  t.AddAs(1, "chain");
  t.AddRouter(1, "a", Vendor::kCiscoIos);
  t.AddRouter(1, "b", Vendor::kCiscoIos);
  t.AddRouter(1, "c", Vendor::kCiscoIos);
  t.AddLink(0, 1);
  const topo::LinkId bc = t.AddLink(1, 2);
  std::vector<Fib> fibs(t.router_count());
  InstallIgpRoutes(t, 1, fibs);
  const FibEntry* e = fibs[0].LookupExact(t.link(bc).subnet);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->metric, 1);  // distance to b, not to c
  ASSERT_EQ(e->next_hops.size(), 1u);
  EXPECT_EQ(e->next_hops[0].neighbor, 1u);
}

// --- BGP ------------------------------------------------------------------

// AS chain 1 - 2 - 3 with AS2 as transit; plus a shortcut 1 - 4 - 3 to
// exercise path selection.
struct BgpWorld {
  Topology t;
  std::vector<Fib> fibs;
};

BgpWorld MakeBgpWorld(bool with_shortcut) {
  BgpWorld w;
  w.t.AddAs(1, "one");
  w.t.AddAs(2, "two");
  w.t.AddAs(3, "three");
  const RouterId a = w.t.AddRouter(1, "a", Vendor::kCiscoIos);
  const RouterId b1 = w.t.AddRouter(2, "b1", Vendor::kCiscoIos);
  const RouterId b2 = w.t.AddRouter(2, "b2", Vendor::kCiscoIos);
  const RouterId c = w.t.AddRouter(3, "c", Vendor::kCiscoIos);
  w.t.AddLink(a, b1);
  w.t.AddLink(b1, b2);
  w.t.AddLink(b2, c);
  if (with_shortcut) {
    w.t.AddAs(4, "four");
    const RouterId d = w.t.AddRouter(4, "d", Vendor::kCiscoIos);
    w.t.AddLink(a, d);
    w.t.AddLink(d, c);
  }
  w.fibs.resize(w.t.router_count());
  for (const topo::AsNumber asn : w.t.AsNumbers()) {
    InstallIgpRoutes(w.t, asn, w.fibs);
  }
  InstallBgpRoutes(w.t, {}, w.fibs);
  return w;
}

TEST(Bgp, InstallsRoutesAcrossAses) {
  const BgpWorld w = MakeBgpWorld(false);
  // a must have a BGP route to AS3's block via its eBGP link to b1.
  const FibEntry* e = w.fibs[0].Lookup(w.t.router(3).loopback);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->source, RouteSource::kBgp);
  ASSERT_EQ(e->next_hops.size(), 1u);
  EXPECT_EQ(e->next_hops[0].neighbor, 1u);  // b1
  EXPECT_TRUE(e->bgp_next_hop.is_unspecified());  // direct eBGP exit
}

TEST(Bgp, NonBorderRoutersUseEgressLoopbackNextHop) {
  const BgpWorld w = MakeBgpWorld(false);
  // b1's route to AS3 goes via egress b2 with next-hop-self.
  const FibEntry* e = w.fibs[1].Lookup(w.t.router(3).loopback);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->bgp_next_hop, w.t.router(2).loopback);
}

TEST(Bgp, PrefersShorterAsPath) {
  const BgpWorld w = MakeBgpWorld(true);
  // From AS1, AS3 is reachable via AS2 (2 AS hops) or AS4 (2 AS hops);
  // tie-break prefers the lower next ASN: AS2.
  EXPECT_EQ(BgpNextAs(w.t, {}, 1, 3), 2u);
}

TEST(Bgp, StubAsesDoNotTransit) {
  BgpPolicy policy;
  policy.stub_ases = {2};
  const BgpWorld w = MakeBgpWorld(true);
  // With AS2 declared a stub, traffic AS1 -> AS3 must go via AS4.
  EXPECT_EQ(BgpNextAs(w.t, policy, 1, 3), 4u);
}

TEST(Bgp, InjectsExternalLinkSubnetsViaIbgp) {
  const BgpWorld w = MakeBgpWorld(false);
  // The b2-c eBGP link subnet is NOT in AS2's IGP, but b1 must still reach
  // it — via iBGP with next-hop-self b2 (this is what keeps traces to such
  // addresses inside LSPs).
  const topo::Link& ebgp_link = w.t.links()[2];
  const FibEntry* e = w.fibs[1].LookupExact(ebgp_link.subnet);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->source, RouteSource::kBgp);
  EXPECT_EQ(e->bgp_next_hop, w.t.router(2).loopback);
}

}  // namespace
}  // namespace wormhole::routing
