// Fig. 11: path length distribution of the campaign's traces before and
// after adding back the hops hidden by revealed tunnels.
#include <iostream>

#include "analysis/report.h"
#include "bench/common.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader("Path length distribution: invisible vs visible",
                     "Fig. 11");

  const auto world = bench::RunFlagshipCampaign();
  const auto& result = world.result;

  const auto& invisible = result.path_length_invisible;
  const auto& visible = result.path_length_visible;
  std::cout << analysis::RenderPdfComparison(
      {{"Invisible", &invisible}, {"Visible", &visible}}, 1, 30);
  std::cout << "\nmeans: invisible "
            << analysis::TextTable::Real(invisible.Mean(), 2) << "  visible "
            << analysis::TextTable::Real(visible.Mean(), 2)
            << "   (paper: 10 -> 12)\n";
  std::cout << "shape (paper): both bell-shaped; revealing hidden hops "
               "shifts the distribution towards longer routes — still an "
               "underestimate, since only the last tunnel of a trace is "
               "revealed.\n";
  return 0;
}
