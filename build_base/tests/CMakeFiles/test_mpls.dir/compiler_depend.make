# Empty compiler generated dependencies file for test_mpls.
# This may be replaced when dependencies are built.
