#include "mpls/ldp.h"

#include <algorithm>

#include "netbase/contracts.h"

namespace wormhole::mpls {

namespace {

bool PolicyAllows(const MplsConfig& config, const Prefix& fec) {
  switch (config.ldp_policy) {
    case LdpPolicy::kAllPrefixes:
      return true;
    case LdpPolicy::kLoopbacksOnly:
      return fec.is_host();
  }
  return false;
}

}  // namespace

LdpDomain::LdpDomain(const topo::Topology& topology,
                     const MplsConfigMap& configs, topo::AsNumber asn,
                     const std::vector<routing::Fib>& fibs)
    : asn_(asn) {
  // Candidate FECs: every internal prefix of the AS. Which of them a router
  // actually binds is filtered per router below.
  std::vector<Prefix> candidate_fecs = topology.InternalPrefixes(asn);
  std::sort(candidate_fecs.begin(), candidate_fecs.end());

  for (const topo::RouterId rid : topology.as(asn).routers) {
    const MplsConfig& config = configs.For(rid);
    if (!config.enabled) continue;

    RouterTables tables;
    std::uint32_t next_label = netbase::kFirstUnreservedLabel;

    for (const Prefix& fec : candidate_fecs) {
      if (!PolicyAllows(config, fec)) continue;
      const routing::FibEntry* route = fibs.at(rid).LookupExact(fec);
      if (route == nullptr) continue;  // not in this router's RIB

      Binding binding;
      if (route->source == routing::RouteSource::kConnected) {
        // Egress LER for this FEC: request PHP (implicit null) or UHP
        // (explicit null) from the upstream neighbor.
        binding.kind = config.popping == Popping::kUhp
                           ? BindingKind::kExplicitNull
                           : BindingKind::kImplicitNull;
      } else {
        binding.kind = BindingKind::kLabel;
        binding.label = next_label++;
        // Dense allocation from kFirstUnreservedLabel is what lets the
        // engine pre-resolve bindings into a flat ldp_ops vector.
        WORMHOLE_ASSERT(binding.label <= netbase::kMaxLabel,
                        "LDP label space exhausted (20-bit overflow)");
        tables.label_to_fec.emplace(binding.label, fec);
      }
      tables.bindings.emplace(fec, binding);
    }
    tables_.emplace(rid, std::move(tables));
  }
}

std::optional<Binding> LdpDomain::BindingOf(RouterId advertiser,
                                            const Prefix& fec) const {
  const auto router_it = tables_.find(advertiser);
  if (router_it == tables_.end()) return std::nullopt;
  const auto it = router_it->second.bindings.find(fec);
  if (it == router_it->second.bindings.end()) return std::nullopt;
  return it->second;
}

std::optional<Prefix> LdpDomain::FecOfLabel(RouterId router,
                                            std::uint32_t label) const {
  const auto router_it = tables_.find(router);
  if (router_it == tables_.end()) return std::nullopt;
  const auto it = router_it->second.label_to_fec.find(label);
  if (it == router_it->second.label_to_fec.end()) return std::nullopt;
  return it->second;
}

std::vector<Prefix> LdpDomain::FecsOf(RouterId router) const {
  std::vector<Prefix> out;
  const auto router_it = tables_.find(router);
  if (router_it == tables_.end()) return out;
  out.reserve(router_it->second.bindings.size());
  for (const auto& [fec, binding] : router_it->second.bindings) {
    out.push_back(fec);
  }
  std::sort(out.begin(), out.end());
  return out;
}

LdpTables::LdpTables(const topo::Topology& topology,
                     const MplsConfigMap& configs,
                     const std::vector<routing::Fib>& fibs) {
  for (const topo::AsNumber asn : topology.AsNumbers()) {
    const bool any_enabled = std::any_of(
        topology.as(asn).routers.begin(), topology.as(asn).routers.end(),
        [&](topo::RouterId rid) { return configs.For(rid).enabled; });
    if (!any_enabled) continue;
    domains_.emplace(asn, LdpDomain(topology, configs, asn, fibs));
  }
}

const LdpDomain* LdpTables::DomainOf(topo::AsNumber asn) const {
  const auto it = domains_.find(asn);
  return it == domains_.end() ? nullptr : &it->second;
}

}  // namespace wormhole::mpls
