// Fixture: this path is on the sealed fast-path list, so any
// heap-allocating construct must fire fastpath-heap.
#pragma once

#include <cstdint>
#include <vector>

struct Packet {
  std::vector<std::uint32_t> labels;  // expect: fastpath-heap
};
