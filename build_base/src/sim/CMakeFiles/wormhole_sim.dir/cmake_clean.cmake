file(REMOVE_RECURSE
  "CMakeFiles/wormhole_sim.dir/engine.cpp.o"
  "CMakeFiles/wormhole_sim.dir/engine.cpp.o.d"
  "CMakeFiles/wormhole_sim.dir/network.cpp.o"
  "CMakeFiles/wormhole_sim.dir/network.cpp.o.d"
  "CMakeFiles/wormhole_sim.dir/vendor.cpp.o"
  "CMakeFiles/wormhole_sim.dir/vendor.cpp.o.d"
  "libwormhole_sim.a"
  "libwormhole_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
