file(REMOVE_RECURSE
  "../bench/fig04_emulation"
  "../bench/fig04_emulation.pdb"
  "CMakeFiles/fig04_emulation.dir/fig04_emulation.cpp.o"
  "CMakeFiles/fig04_emulation.dir/fig04_emulation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
