file(REMOVE_RECURSE
  "CMakeFiles/test_link_failure.dir/test_link_failure.cpp.o"
  "CMakeFiles/test_link_failure.dir/test_link_failure.cpp.o.d"
  "test_link_failure"
  "test_link_failure.pdb"
  "test_link_failure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_link_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
