#include "sim/network.h"

#include "routing/igp.h"

namespace wormhole::sim {

Network::Network(const topo::Topology& topology,
                 const mpls::MplsConfigMap& configs,
                 routing::BgpPolicy bgp_policy, EngineOptions options,
                 const mpls::TeDatabase* te, const mpls::SrDatabase* sr)
    : topology_(&topology) {
  fibs_.resize(topology.router_count());
  for (const topo::AsNumber asn : topology.AsNumbers()) {
    routing::InstallIgpRoutes(topology, asn, fibs_);
  }
  routing::InstallBgpRoutes(topology, bgp_policy, fibs_);
  ldp_ = mpls::LdpTables(topology, configs, fibs_);
  // Route installation is done: compile every FIB's flat query index now,
  // off the packet path, instead of lazily on each router's first lookup.
  for (const routing::Fib& fib : fibs_) fib.Seal();
  engine_ = std::make_unique<Engine>(topology, configs, fibs_, ldp_,
                                     options, te, sr);
}

}  // namespace wormhole::sim
