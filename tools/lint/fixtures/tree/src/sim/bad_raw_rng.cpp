// Fixture: unseeded/raw randomness outside netbase/rng must fire raw-rng.
#include <cstdlib>
#include <random>

int Draw() {
  std::random_device device;              // expect: raw-rng
  std::mt19937 engine(device());         // expect: raw-rng
  return static_cast<int>(engine()) + rand();  // expect: raw-rng
}
