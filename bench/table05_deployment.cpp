// Table 5: MPLS deployment per AS — TTL-signature mix, hidden-hop discovery
// technique mix, and the median hidden-hop estimates of FRPLA / RTLA vs the
// actually revealed forward tunnel length (FTL).
#include <iostream>

#include "analysis/report.h"
#include "analysis/tables.h"
#include "bench/common.h"

int main() {
  using namespace wormhole;
  bench::PrintHeader("MPLS deployment per AS", "Table 5");

  const auto world = bench::RunFlagshipCampaign();
  const auto rows =
      analysis::MakeDeploymentTable(world.result, world.net->topology());

  analysis::TextTable table({"AS", "<255,255>", "<255,64>", "<64,64>",
                             "other", "DPR%", "BRPR%", "either%", "hybrid%",
                             "FRPLA", "RTLA", "FTL", "hardware truth"});
  for (const auto& row : rows) {
    table.AddRow({"AS" + std::to_string(row.asn),
                  analysis::TextTable::Pct(row.pct_cisco, 0),
                  analysis::TextTable::Pct(row.pct_junos, 0),
                  analysis::TextTable::Pct(row.pct_6464, 0),
                  analysis::TextTable::Pct(row.pct_other, 0),
                  analysis::TextTable::Pct(row.pct_dpr, 0),
                  analysis::TextTable::Pct(row.pct_brpr, 0),
                  analysis::TextTable::Pct(row.pct_either, 0),
                  analysis::TextTable::Pct(row.pct_hybrid, 0),
                  analysis::TextTable::Opt(row.frpla_median),
                  analysis::TextTable::Opt(row.rtla_median),
                  analysis::TextTable::Opt(row.ftl_median),
                  ToString(world.net->profile(row.asn).hardware)});
  }
  std::cout << table.ToString();
  std::cout <<
      "\nshape (paper): Cisco-heavy ASes lean BRPR, Juniper-heavy ones lean "
      "DPR;\n  FRPLA medians sit near the true tunnel length (asymmetry "
      "noise aside); RTLA, when applicable, matches FTL closely.\n";
  return 0;
}
