// Fixture: label literals outside [16, 2^20-1] (other than the 0
// sentinel) must fire label-range.
#include <cstdint>

struct Lse {
  std::uint32_t label = 0;
};

void Build() {
  Lse a;
  a.label = 3;        // expect: label-range (reserved: use ReservedLabel)
  a.label = 15;       // expect: label-range
  a.label = 1048576;  // expect: label-range (past 20 bits)
  std::uint32_t out_label = 2000000;  // expect: label-range
  (void)out_label;
}
