# Empty dependencies file for test_reveal.
# This may be replaced when dependencies are built.
