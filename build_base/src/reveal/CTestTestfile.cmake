# CMake generated Testfile for 
# Source directory: /root/repo/src/reveal
# Build directory: /root/repo/build_base/src/reveal
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
