// Trace persistence round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "gen/gns3.h"
#include "io/tracefile.h"
#include "probe/prober.h"

namespace wormhole::io {
namespace {

TEST(Tracefile, RoundTripsRealTraces) {
  gen::Gns3Testbed testbed({.scenario = gen::Gns3Scenario::kDefault});
  probe::Prober prober(testbed.engine(), testbed.vantage_point());
  std::vector<probe::TraceResult> traces;
  traces.push_back(prober.Traceroute(testbed.Address("CE2.left")));
  traces.push_back(prober.Traceroute(testbed.Address("P2.left")));
  traces.push_back(
      prober.Traceroute(testbed.Address("PE2.left"), {.flow_id = 9}));

  std::stringstream ss;
  WriteTraces(ss, traces);
  const auto back = ReadTraces(ss);

  ASSERT_EQ(back.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto& a = traces[i];
    const auto& b = back[i];
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.target, b.target);
    EXPECT_EQ(a.flow_id, b.flow_id);
    EXPECT_EQ(a.reached, b.reached);
    EXPECT_EQ(a.unreachable, b.unreachable);
    ASSERT_EQ(a.hops.size(), b.hops.size());
    for (std::size_t h = 0; h < a.hops.size(); ++h) {
      EXPECT_EQ(a.hops[h].probe_ttl, b.hops[h].probe_ttl);
      EXPECT_EQ(a.hops[h].address, b.hops[h].address);
      EXPECT_EQ(a.hops[h].reply_kind, b.hops[h].reply_kind);
      EXPECT_EQ(a.hops[h].reply_ip_ttl, b.hops[h].reply_ip_ttl);
      EXPECT_EQ(a.hops[h].labels, b.hops[h].labels);
      EXPECT_NEAR(a.hops[h].rtt_ms, b.hops[h].rtt_ms, 1e-3);
    }
  }
}

TEST(Tracefile, RoundTripsTimeoutsAndLabels) {
  probe::TraceResult trace;
  trace.source = netbase::Ipv4Address(5, 0, 0, 1);
  trace.target = netbase::Ipv4Address(5, 1, 0, 1);
  trace.flow_id = 17;
  probe::Hop silent;
  silent.probe_ttl = 1;
  trace.hops.push_back(silent);
  probe::Hop labeled;
  labeled.probe_ttl = 2;
  labeled.address = netbase::Ipv4Address(5, 0, 0, 9);
  labeled.reply_kind = netbase::PacketKind::kTimeExceeded;
  labeled.reply_ip_ttl = 247;
  labeled.labels = {{19, 0, true, 1}, {24, 0, false, 3}};
  trace.hops.push_back(labeled);

  std::stringstream ss;
  WriteTrace(ss, trace);
  const auto back = ReadTraces(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_FALSE(back[0].hops[0].address.has_value());
  ASSERT_EQ(back[0].hops[1].labels.size(), 2u);
  EXPECT_EQ(back[0].hops[1].labels[0].label, 19u);
  EXPECT_EQ(back[0].hops[1].labels[1].ttl, 3);
}

TEST(Tracefile, RejectsMalformedInput) {
  const auto reject = [](const std::string& text) {
    std::stringstream ss(text);
    EXPECT_THROW(ReadTraces(ss), std::runtime_error) << text;
  };
  reject("H 1 5.0.0.1 x 255 0.1\n");             // hop outside a trace
  reject("T 5.0.0.1 5.0.0.2 0 1 0\nT 5.0.0.1 5.0.0.2 0 1 0\n");  // nested
  reject("T 5.0.0.1 5.0.0.2 0 1 0\n");            // unterminated
  reject("T bogus 5.0.0.2 0 1 0\n.\n");           // bad address
  reject("T 5.0.0.1 5.0.0.2 0 1 0\nH 1 5.0.0.3 z 255 0.1\n.\n");  // bad kind
  reject("Z nonsense\n");                          // unknown tag
  reject("T 5.0.0.1 5.0.0.2 0 1 0\nH 1 5.0.0.3 x 255 0.1 Lbroken\n.\n");
}

TEST(Tracefile, IgnoresCommentsAndBlankLines) {
  std::stringstream ss(
      "# a comment\n\nT 5.0.0.1 5.0.0.2 3 0 0\n# inside\nH 1 *\n.\n");
  const auto traces = ReadTraces(ss);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].flow_id, 3);
  EXPECT_EQ(traces[0].hops.size(), 1u);
}

}  // namespace
}  // namespace wormhole::io
