# Empty compiler generated dependencies file for wormhole_exec.
# This may be replaced when dependencies are built.
