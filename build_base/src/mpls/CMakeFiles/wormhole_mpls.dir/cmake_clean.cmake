file(REMOVE_RECURSE
  "CMakeFiles/wormhole_mpls.dir/config.cpp.o"
  "CMakeFiles/wormhole_mpls.dir/config.cpp.o.d"
  "CMakeFiles/wormhole_mpls.dir/ldp.cpp.o"
  "CMakeFiles/wormhole_mpls.dir/ldp.cpp.o.d"
  "CMakeFiles/wormhole_mpls.dir/rsvp_te.cpp.o"
  "CMakeFiles/wormhole_mpls.dir/rsvp_te.cpp.o.d"
  "CMakeFiles/wormhole_mpls.dir/segment_routing.cpp.o"
  "CMakeFiles/wormhole_mpls.dir/segment_routing.cpp.o.d"
  "libwormhole_mpls.a"
  "libwormhole_mpls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_mpls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
