// Small statistics toolkit used by the analysis and reveal modules:
// integer-bucketed empirical distributions (the paper's PDFs over hop
// counts / degrees), quantiles, moments and a normal fit.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wormhole::netbase {

/// An empirical distribution over integers (hop counts, degrees, TTL
/// shifts). Accumulates counts; derives PDF, CDF, moments and quantiles.
class IntDistribution {
 public:
  void Add(int value, std::uint64_t count = 1);
  void Merge(const IntDistribution& other);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] bool empty() const { return total_ == 0; }
  [[nodiscard]] std::uint64_t CountOf(int value) const;

  /// Probability mass at `value` (0 if unseen).
  [[nodiscard]] double Pdf(int value) const;
  /// P(X <= value).
  [[nodiscard]] double Cdf(int value) const;

  [[nodiscard]] double Mean() const;
  [[nodiscard]] double Variance() const;
  [[nodiscard]] double StdDev() const;
  /// q in [0,1]; q=0.5 is the median. Uses the lower-nearest convention.
  [[nodiscard]] int Quantile(double q) const;
  [[nodiscard]] int Median() const { return Quantile(0.5); }
  [[nodiscard]] int Min() const;
  [[nodiscard]] int Max() const;
  /// The value with the highest probability mass (smallest on ties).
  [[nodiscard]] int Mode() const;

  /// All (value, count) pairs in increasing value order.
  [[nodiscard]] const std::map<int, std::uint64_t>& buckets() const {
    return buckets_;
  }

  /// (value, pdf) series, ready for plotting / bench output.
  [[nodiscard]] std::vector<std::pair<int, double>> PdfSeries() const;

  /// Crude symmetry check around `center`: |P(X > c) - P(X < c)|.
  [[nodiscard]] double AsymmetryAround(int center) const;

 private:
  std::map<int, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Simple running summary for real-valued samples (RTTs, densities).
class Summary {
 public:
  void Add(double value);
  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double Mean() const;
  [[nodiscard]] double StdDev() const;
  [[nodiscard]] double Min() const;
  [[nodiscard]] double Max() const;
  [[nodiscard]] double Quantile(double q) const;
  [[nodiscard]] double Median() const { return Quantile(0.5); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Result of fitting a normal distribution by moments.
struct NormalFit {
  double mean = 0.0;
  double stddev = 0.0;
  /// Fraction of mass within one stddev of the mean; ~0.68 when the data is
  /// roughly normal. Used by FRPLA's "asymmetry looks like a normal law
  /// centred on 0" sanity checks.
  double within_one_sigma = 0.0;
};

NormalFit FitNormal(const IntDistribution& d);

/// Formats a PDF as aligned "value probability" lines for bench output.
std::string FormatPdf(const IntDistribution& d, int min_value, int max_value);

}  // namespace wormhole::netbase
