file(REMOVE_RECURSE
  "libwormhole_routing.a"
)
