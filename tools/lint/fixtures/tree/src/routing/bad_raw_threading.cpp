// Fixture: raw threading primitives outside src/exec must fire.
#include <mutex>
#include <thread>

void Race() {
  std::mutex m;                    // expect: raw-threading
  std::thread t([] {});            // expect: raw-threading
  m.lock();
  m.unlock();
  t.join();
}
