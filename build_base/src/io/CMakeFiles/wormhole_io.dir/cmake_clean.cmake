file(REMOVE_RECURSE
  "CMakeFiles/wormhole_io.dir/tracefile.cpp.o"
  "CMakeFiles/wormhole_io.dir/tracefile.cpp.o.d"
  "libwormhole_io.a"
  "libwormhole_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormhole_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
