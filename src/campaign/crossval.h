// Cross-validation of DPR and BRPR on *explicit* tunnels (paper Sec. 3.3,
// Table 3): collect traces over a network with ttl-propagate enabled so
// tunnels show up with RFC 4950 labels, extract Ingress–Egress LER pairs
// with their fully revealed LSR content, then re-run the revelation
// machinery against them and check it finds the same hops — using the
// paper's success criteria:
//   * DPR succeeds if targeting the Egress yields the same hop count
//     between Ingress and Egress with ALL labels gone;
//   * BRPR succeeds if at every recursion step the hop revealed before the
//     target carries no label.
#pragma once

#include <vector>

#include "probe/prober.h"
#include "topo/topology.h"

namespace wormhole::campaign {

/// One explicit tunnel observed in a trace.
struct ExplicitTunnel {
  netbase::Ipv4Address ingress;
  netbase::Ipv4Address egress;
  /// The labelled LSR hops between them, in forward order.
  std::vector<netbase::Ipv4Address> lsrs;
  topo::AsNumber asn = 0;
  /// Vantage point whose trace exposed the tunnel; re-validation probes
  /// from the same place (like the paper's per-team re-runs).
  netbase::Ipv4Address observer;
};

/// Scans traces for maximal runs of label-quoting hops whose surrounding
/// hops are in the same AS; anonymous hops disqualify a run (the paper
/// requires the LSP content fully revealed).
std::vector<ExplicitTunnel> ExtractExplicitTunnels(
    const std::vector<probe::TraceResult>& traces,
    const topo::Topology& topology);

enum class CrossValOutcome : std::uint8_t {
  kRerunFailed,  ///< ingress or egress not re-discovered at all
  kFail,         ///< re-discovered but neither technique validated
  kDpr,
  kBrpr,
  kHybrid,
  kEither,       ///< single-LSR tunnel: methods indistinguishable
};
const char* ToString(CrossValOutcome outcome);

struct CrossValSummary {
  std::size_t pairs_total = 0;
  std::size_t rerun_failed = 0;
  std::size_t fail = 0;
  std::size_t dpr = 0;
  std::size_t brpr = 0;
  std::size_t hybrid = 0;
  std::size_t either = 0;

  [[nodiscard]] std::size_t validated() const {
    return pairs_total - rerun_failed;
  }
  void Count(CrossValOutcome outcome);
};

/// Re-validates one explicit tunnel with fresh probing (label-aware).
CrossValOutcome CrossValidate(probe::Prober& prober,
                              const ExplicitTunnel& tunnel,
                              const probe::TraceOptions& options = {});

/// Convenience: extract + re-validate everything, spreading pairs over the
/// available probers round-robin.
CrossValSummary CrossValidateAll(std::vector<probe::Prober>& probers,
                                 const std::vector<ExplicitTunnel>& tunnels,
                                 const probe::TraceOptions& options = {});

}  // namespace wormhole::campaign
